package placement

import (
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// buildRun constructs the same machine and workload twice: a data page
// homed badly (node 7) but used intensely by nodes 0 and 1.
func buildRun(t *testing.T) (*core.Machine, memory.VAddr) {
	t.Helper()
	m, err := core.NewMachine(core.DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(7, 1)
	for _, n := range []mesh.NodeID{0, 1} {
		n := n
		m.Spawn(n, func(th *proc.Thread) {
			for i := 0; i < 100; i++ {
				th.Read(data + memory.VAddr(i%64))
				th.Compute(50)
			}
		})
	}
	return m, data
}

func TestProfileGuidedPlacementSpeedsSecondRun(t *testing.T) {
	// Run 1: measure.
	m1, data := buildRun(t)
	e1, err := m1.Run()
	if err != nil {
		t.Fatal(err)
	}
	plan := Compute(m1, Options{})
	if plan.Pages() == 0 {
		t.Fatal("profile produced an empty plan")
	}
	// The heaviest referencer (node 0 or 1) must become the master.
	if dst, ok := plan.Migrate[data.Page()]; !ok || (dst != 0 && dst != 1) {
		t.Fatalf("plan.Migrate = %v", plan.Migrate)
	}

	// Run 2: identical setup, plan applied before the run.
	m2, _ := buildRun(t)
	if err := Apply(m2, plan); err != nil {
		t.Fatal(err)
	}
	e2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("profile-guided run (%d) not faster than first run (%d)", e2, e1)
	}
	// The second run's reads are local for the new master holder.
	tot := m2.Stats().Totals()
	if tot.RemoteReads >= m1.Stats().Totals().RemoteReads {
		t.Fatalf("remote reads did not drop: %d -> %d",
			m1.Stats().Totals().RemoteReads, tot.RemoteReads)
	}
}

func TestComputeThresholds(t *testing.T) {
	m, _ := buildRun(t)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// A sky-high migration threshold yields an empty plan.
	plan := Compute(m, Options{MigrateMinRefs: 1 << 40})
	if plan.Pages() != 0 {
		t.Fatalf("plan not empty: %v", plan.Migrate)
	}
}

func TestComputeReplicasBounded(t *testing.T) {
	// Every node reads the same page equally: replicas capped by
	// MaxCopies.
	m, err := core.NewMachine(core.DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(7, 1)
	for n := 0; n < 7; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < 40; i++ {
				th.Read(data)
				th.Compute(30)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	plan := Compute(m, Options{MaxCopies: 3})
	if got := len(plan.Replicate[data.Page()]); got > 2 {
		t.Fatalf("replicas = %d, exceeds MaxCopies-1", got)
	}
}

func TestReplicateHot(t *testing.T) {
	m, err := core.NewMachine(core.DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	hot := m.Alloc(0, 2)
	if err := ReplicateHot(m, []memory.VPage{hot.Page(), hot.Page() + 1}, 4); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		vp := hot.Page() + memory.VPage(p)
		// copies = 4 over 8 nodes → masters/copies at nodes 0, 2, 4, 6
		// (node 0 already holds the master; no duplicate copy).
		for _, n := range []mesh.NodeID{0, 2, 4, 6} {
			if !m.Kernel().HasCopy(vp, n) {
				t.Fatalf("page %d missing copy on node %d", vp, n)
			}
		}
		if got := len(m.Kernel().CopyList(vp)); got != 4 {
			t.Fatalf("page %d has %d copies, want 4", vp, got)
		}
	}
	// Asking for more copies than nodes clamps instead of wrapping.
	deep := m.Alloc(1, 1)
	if err := ReplicateHot(m, []memory.VPage{deep.Page()}, 99); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Kernel().CopyList(deep.Page())); got != 8 {
		t.Fatalf("clamped replication left %d copies, want 8", got)
	}
	if err := ReplicateHot(m, []memory.VPage{1234}, 2); err == nil {
		t.Fatal("unallocated hot page accepted")
	}
}

func TestApplyRejectsUnknownPage(t *testing.T) {
	m, err := core.NewMachine(core.DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Migrate: map[memory.VPage]mesh.NodeID{99: 1}}
	if err := Apply(m, plan); err == nil {
		t.Fatal("unknown page accepted")
	}
}
