// Package placement implements the second of the paper's three page-
// management modes (§2.4): "If the access pattern is not data
// dependent, it can be measured during one run of the application and
// the results of the measurement used to optimally allocate memory in
// subsequent runs."
//
// A profiling run leaves the hardware remote-reference counters
// populated; Compute turns them into a Plan — per page, the node that
// referenced it most becomes the new master (migration) and other
// heavy referencers get replicas — and Apply installs the plan on a
// fresh machine before its run. Because the simulator is
// deterministic, page numbering is identical across runs of the same
// setup code, so the plan transfers directly.
package placement

import (
	"fmt"
	"sort"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
)

// Plan is a memory layout derived from a profile.
type Plan struct {
	// Migrate maps pages to their new master node (only pages whose
	// best node differs from the current master appear).
	Migrate map[memory.VPage]mesh.NodeID
	// Replicate lists extra copy holders per page.
	Replicate map[memory.VPage][]mesh.NodeID
}

// Options tune plan computation.
type Options struct {
	// MigrateMinRefs is the minimum remote-reference count before a
	// page is considered for migration (default 8).
	MigrateMinRefs uint64
	// ReplicateFrac in [0,1]: nodes with at least this fraction of the
	// top node's references get replicas (default 0.5).
	ReplicateFrac float64
	// MaxCopies bounds copies per page including the master (default 4
	// — uncontrolled replication floods the network with updates,
	// §2.5).
	MaxCopies int
}

func (o Options) withDefaults() Options {
	if o.MigrateMinRefs == 0 {
		o.MigrateMinRefs = 8
	}
	if o.ReplicateFrac == 0 {
		o.ReplicateFrac = 0.5
	}
	if o.MaxCopies == 0 {
		o.MaxCopies = 4
	}
	return o
}

// Compute builds a Plan from the profiled machine's reference
// counters.
func Compute(profiled *core.Machine, opts Options) Plan {
	opts = opts.withDefaults()
	prof := profiled.Kernel().RemoteRefProfile()
	plan := Plan{
		Migrate:   make(map[memory.VPage]mesh.NodeID),
		Replicate: make(map[memory.VPage][]mesh.NodeID),
	}
	for vp, byNode := range prof {
		type nc struct {
			n mesh.NodeID
			c uint64
		}
		var ranked []nc
		for n, c := range byNode {
			ranked = append(ranked, nc{n, c})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].c != ranked[j].c {
				return ranked[i].c > ranked[j].c
			}
			return ranked[i].n < ranked[j].n
		})
		top := ranked[0]
		if top.c < opts.MigrateMinRefs {
			continue
		}
		master := profiled.Kernel().CopyList(vp)[0].Node
		if top.n != master {
			plan.Migrate[vp] = top.n
		}
		copies := 1
		for _, r := range ranked[1:] {
			if copies+1 >= opts.MaxCopies {
				break
			}
			if float64(r.c) < opts.ReplicateFrac*float64(top.c) {
				break
			}
			plan.Replicate[vp] = append(plan.Replicate[vp], r.n)
			copies++
		}
	}
	return plan
}

// Apply installs the plan on a fresh machine before its run: masters
// migrate to their heaviest users and replicas appear where the
// profile says they pay. Must be called before Machine.Run (the
// machine is quiescent).
func Apply(m *core.Machine, plan Plan) error {
	for vp, dst := range plan.Migrate {
		list := m.Kernel().CopyList(vp)
		if len(list) == 0 {
			return fmt.Errorf("placement: plan references unallocated page %d", vp)
		}
		from := list[0].Node
		if from != dst && !m.Kernel().HasCopy(vp, dst) {
			m.Kernel().Migrate(vp, from, dst)
		}
	}
	for vp, nodes := range plan.Replicate {
		if len(m.Kernel().CopyList(vp)) == 0 {
			return fmt.Errorf("placement: plan references unallocated page %d", vp)
		}
		for _, n := range nodes {
			m.Kernel().ReplicateNow(vp, n)
		}
	}
	return nil
}

// ReplicateHot pre-replicates the hottest pages of a skewed workload
// before the run — the static "replicated-hot" placement policy. The
// caller names the hot pages (for a Zipfian key space they are known
// a priori: the lowest-ranked keys' pages); each gets copies on
// `copies` nodes spread evenly across the mesh in node order, so the
// read traffic for a hot page splits across the machine instead of
// converging on its master. Replicas that would land on the master
// (or an existing copy holder) are skipped, not double-installed.
// Must be called before Machine.Run.
func ReplicateHot(m *core.Machine, pages []memory.VPage, copies int) error {
	n := m.Nodes()
	if copies > n {
		copies = n
	}
	for _, vp := range pages {
		if len(m.Kernel().CopyList(vp)) == 0 {
			return fmt.Errorf("placement: hot page %d not allocated", vp)
		}
		for i := 0; i < copies; i++ {
			dst := mesh.NodeID(i * n / copies)
			m.Kernel().ReplicateNow(vp, dst)
		}
	}
	return nil
}

// Pages returns how many pages the plan touches.
func (p Plan) Pages() int {
	touched := make(map[memory.VPage]bool)
	for vp := range p.Migrate {
		touched[vp] = true
	}
	for vp := range p.Replicate {
		touched[vp] = true
	}
	return len(touched)
}
