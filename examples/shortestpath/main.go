// Shortestpath runs the paper's Single Point Shortest Path workload
// (§2.5) at several replication levels and shows the Table 2-1
// trade-off: replication converts remote reads into local ones at the
// price of update traffic — and it pays off in wall-clock time.
package main

import (
	"fmt"
	"log"

	"plus/apps/sssp"
)

func main() {
	fmt.Println("SSSP on 16 processors, 1024 vertices (min-xchng relaxation,")
	fmt.Println("per-node hardware queues, work stealing):")
	fmt.Println()
	fmt.Printf("%-7s %10s %12s %12s %12s %10s\n",
		"Copies", "Elapsed", "Reads L/R", "Writes L/R", "Total/Upd", "Util")
	for copies := 1; copies <= 5; copies++ {
		res, err := sssp.Run(sssp.Config{
			MeshW: 4, MeshH: 4, Procs: 16,
			Vertices: 1024, Degree: 4, Seed: 42,
			Copies: copies, Validate: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := "-"
		if res.Updates > 0 {
			ratio = fmt.Sprintf("%.2f", res.UpdateRatio)
		}
		fmt.Printf("%-7d %10d %12.2f %12.2f %12s %10.3f\n",
			copies, res.Elapsed, res.ReadRatio, res.WriteRatio, ratio, res.Utilization)
	}
	fmt.Println()
	fmt.Println("Every run is validated against sequential Dijkstra.")
}
