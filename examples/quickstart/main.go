// Quickstart: a 4x4 PLUS machine, page replication, write-update
// coherence, the explicit fence, and a delayed fetch-and-add — the
// whole public API in one file.
package main

import (
	"fmt"
	"log"

	"plus"
)

func main() {
	// A 16-node machine with the paper's timing (40 ns cycles, 24-cycle
	// adjacent round trips, 8 outstanding writes/delayed ops per node).
	m, err := plus.New(plus.DefaultConfig(4, 4))
	if err != nil {
		log.Fatal(err)
	}

	// One page of shared memory homed on node 0 (the master copy),
	// replicated onto nodes 5 and 15. Every node maps the page to its
	// closest copy; writes start at the master and propagate down the
	// kernel-ordered copy-list.
	data := m.Alloc(0, 1)
	m.Replicate(data, 5, 15)

	counter := m.Alloc(12, 1) // a remote counter for delayed ops

	m.Spawn(5, func(t *plus.Thread) {
		// Writes are non-blocking: they go to the master and fan out to
		// the copies while the processor keeps running.
		for i := 0; i < 8; i++ {
			t.Write(data+plus.VAddr(i), plus.Word(100+i))
		}
		// The fence drains the pending-writes cache: after it, every
		// copy of every written word is up to date, machine-wide.
		start := t.Now()
		t.Fence()
		fmt.Printf("fence drained 8 writes in %d cycles\n", t.Now()-start)

		// A delayed fetch-and-add: issue now, compute meanwhile, read
		// the old value when it is needed.
		h := t.Fadd(counter, 7)
		t.Compute(200) // useful work overlapping the round trip
		old := t.Verify(h)
		fmt.Printf("fetch-and-add returned old value %d\n", old)
	})

	m.Spawn(15, func(t *plus.Thread) {
		// Node 15 reads its own replica — local memory, no network.
		t.Compute(4000) // let the writer's fence pass first
		v := t.Read(data + 3)
		fmt.Printf("node 15 read %d from its local copy\n", v)
	})

	elapsed, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run took %d cycles (%.1f µs at 25 MHz)\n", elapsed, float64(elapsed)*0.04)
	fmt.Printf("network: %d messages, %d of them updates\n",
		m.Stats().Messages(), m.Stats().MsgUpdate)
	fmt.Printf("counter is now %d\n", m.Peek(counter))
}
