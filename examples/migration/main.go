// Migration demonstrates the §2.4 page-management machinery: explicit
// page migration (create a copy, delete the old one) and the
// competitive replication policy, where hardware reference counters
// trip an interrupt that makes the kernel replicate a hot remote page.
package main

import (
	"fmt"
	"log"

	"plus"
)

func main() {
	// Part 1: explicit migration. A page homed far from its only user
	// is moved next to it; reads turn local.
	m, err := plus.New(plus.DefaultConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	data := m.Alloc(3, 1) // homed on the far end of the mesh
	m.Poke(data, 7)

	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < 50; i++ {
			t.Read(data)
			t.Compute(100)
		}
	})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before migration: %d remote reads from node 0\n",
		m.Stats().Nodes[0].RemoteReads)

	// Quiesce, then migrate the page to node 0 (replicate + delete,
	// exactly as §2.4 describes).
	m.Kernel().Migrate(data.Page(), 3, 0)
	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < 50; i++ {
			t.Read(data)
			t.Compute(100)
		}
	})
	before := m.Stats().Nodes[0].RemoteReads
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after migration:  %d further remote reads (page now local)\n",
		m.Stats().Nodes[0].RemoteReads-before)

	// Part 2: competitive replication. The same access pattern, but the
	// kernel watches the hardware reference counters and replicates the
	// page automatically once 25 remote references accumulate.
	cfg := plus.DefaultConfig(4, 1)
	cfg.CompetitiveThreshold = 25
	m2, err := plus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hot := m2.Alloc(3, 1)
	m2.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < 200; i++ {
			t.Read(hot)
			t.Compute(100)
		}
	})
	if _, err := m2.Run(); err != nil {
		log.Fatal(err)
	}
	n0 := m2.Stats().Nodes[0]
	fmt.Printf("\ncompetitive policy: %d remote reads before the counter tripped,\n", n0.RemoteReads)
	fmt.Printf("then %d local reads against the automatic replica\n", n0.LocalReads)
	fmt.Printf("(kernel performed %d background replications, %d page copied)\n",
		m2.Kernel().Replications, m2.Stats().Totals().PagesCopied)
}
