// Prodcons demonstrates the weak-ordering discipline of §2.1 on a
// bounded producer/consumer buffer: the buffer and its flag live in
// different pages (replicated on the consumer's node), so without the
// explicit fence the consumer could observe the flag before the data.
// It also shows the semaphore-based version built on the delayed
// operations.
package main

import (
	"fmt"
	"log"

	"plus"
	psync "plus/sync"
)

const items = 32

func main() {
	m, err := plus.New(plus.DefaultConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}

	// Buffer homed on the producer's node, flag on a third node; both
	// replicated on the consumer's node so its polling reads are local
	// — the exact configuration where weak ordering bites.
	buf := m.Alloc(0, 1)
	flag := m.Alloc(1, 1)
	m.Replicate(buf, 3)
	m.Replicate(flag, 3)

	var sum plus.Word
	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < items; i++ {
			t.Write(buf+plus.VAddr(i), plus.Word(i+1))
		}
		// Without this fence the flag write could reach node 3's
		// replica before the buffer writes do.
		t.Fence()
		t.Write(flag, 1)
	})
	m.Spawn(3, func(t *plus.Thread) {
		for t.Read(flag) == 0 {
			t.Compute(100)
		}
		for i := 0; i < items; i++ {
			sum += t.Read(buf + plus.VAddr(i))
		}
	})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	want := plus.Word(items * (items + 1) / 2)
	fmt.Printf("flag-and-fence: consumer summed %d (want %d) — %s\n",
		sum, want, verdict(sum == want))

	// The same pipeline with counting semaphores (P/V of §3): the V
	// fences internally, so the discipline is packaged in the library.
	m2, err := plus.New(plus.DefaultConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	ring := m2.Alloc(0, 1)
	full := psync.NewSemaphore(m2, 1, 0)
	empty := psync.NewSemaphore(m2, 1, 8)
	var got []plus.Word
	m2.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < items; i++ {
			empty.P(t)
			t.Write(ring+plus.VAddr(i%8), plus.Word(100+i))
			full.V(t)
		}
	})
	m2.Spawn(3, func(t *plus.Thread) {
		for i := 0; i < items; i++ {
			full.P(t)
			got = append(got, t.Read(ring+plus.VAddr(i%8)))
			empty.V(t)
		}
	})
	if _, err := m2.Run(); err != nil {
		log.Fatal(err)
	}
	ok := len(got) == items
	for i, v := range got {
		ok = ok && v == plus.Word(100+i)
	}
	fmt.Printf("semaphore ring:  consumer saw %d items in order — %s\n",
		len(got), verdict(ok))
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}
