// Locks contrasts the paper's Table 3-2 queue lock (fetch-and-add
// plus hardware queue/dequeue, waiters sleep) with a
// test-and-test-and-set spin lock under 16-way contention.
package main

import (
	"fmt"
	"log"

	"plus"
	psync "plus/sync"
)

const (
	procs     = 16
	perThread = 8
	holdWork  = 300 // cycles of work inside the critical section
)

func contend(label string, lock interface {
	Lock(*plus.Thread)
	Unlock(*plus.Thread)
}, m *plus.Machine, counter plus.VAddr) {
	for n := 0; n < procs; n++ {
		m.Spawn(plus.NodeID(n), func(t *plus.Thread) {
			for i := 0; i < perThread; i++ {
				lock.Lock(t)
				v := t.Read(counter)
				t.Compute(holdWork)
				t.Write(counter, v+1)
				lock.Unlock(t)
				t.Compute(200)
			}
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	if got := m.Peek(counter); got != procs*perThread {
		log.Fatalf("%s: counter = %d, want %d — mutual exclusion broken",
			label, got, procs*perThread)
	}
	tot := m.Stats().Totals()
	fmt.Printf("%-22s %12d cycles, %8d messages, util %.3f\n",
		label, elapsed, m.Stats().Messages(), float64(tot.BusyCycles)/float64(elapsed)/procs)
}

func main() {
	fmt.Printf("%d threads x %d critical sections each:\n\n", procs, perThread)

	m1, err := plus.New(plus.DefaultConfig(4, 4))
	if err != nil {
		log.Fatal(err)
	}
	ql := psync.NewQueueLock(m1, 0)
	contend("queue lock (Table 3-2)", ql, m1, m1.Alloc(3, 1))

	m2, err := plus.New(plus.DefaultConfig(4, 4))
	if err != nil {
		log.Fatal(err)
	}
	sl := psync.NewSpinLock(m2, 0)
	contend("spin lock (TTS)", sl, m2, m2.Alloc(3, 1))

	fmt.Println("\nThe queue lock's waiters sleep in the hardware queue and wake")
	fmt.Println("in FIFO order; the spin lock's waiters burn cycles and network")
	fmt.Println("bandwidth polling the lock word.")
}
