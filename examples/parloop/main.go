// Parloop shows the par runtime layer: a static parallel loop, a
// dynamically self-scheduled loop over irregular work (chunks drawn
// from a shared fetch-and-add, latency-hidden by the §3.3 eager
// allocator), and a parallel reduction.
package main

import (
	"fmt"
	"log"

	"plus"
	"plus/par"
)

func main() {
	// Static loop: square the numbers 0..255 into shared memory.
	m1, err := plus.New(plus.DefaultConfig(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	out := m1.Alloc(0, 1)
	par.For(m1, par.Nodes(4), 256, func(t *plus.Thread, i int) {
		t.Write(out+plus.VAddr(i), plus.Word(uint32(i*i)))
	})
	el, err := m1.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static for:   256 iterations on 4 procs in %d cycles (out[9]=%d)\n",
		el, m1.Peek(out+9))

	// Irregular work: a few iterations are 100x the rest. Static
	// partitioning strands the heavy block on one processor; dynamic
	// self-scheduling balances it.
	heavy := func(t *plus.Thread, i int) {
		if i < 12 { // the expensive iterations cluster at the front
			t.Compute(15000)
		} else {
			t.Compute(150)
		}
	}
	run := func(dynamic bool) plus.Cycles {
		m, err := plus.New(plus.DefaultConfig(2, 2))
		if err != nil {
			log.Fatal(err)
		}
		if dynamic {
			par.ForDynamic(m, par.Nodes(4), 128, 2, heavy)
		} else {
			par.For(m, par.Nodes(4), 128, heavy)
		}
		el, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return el
	}
	st, dy := run(false), run(true)
	fmt.Printf("skewed loop:  static %d cycles, dynamic %d cycles (%.2fx)\n",
		st, dy, float64(st)/float64(dy))

	// Reduction: sum of i over [0, 10000).
	m3, err := plus.New(plus.DefaultConfig(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	acc := par.Reduce(m3, par.Nodes(8), 10000, func(t *plus.Thread, i int) int32 {
		t.Compute(5)
		return int32(i)
	})
	if _, err := m3.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction:    sum(0..9999) = %d on 8 procs\n", int32(m3.Peek(acc)))
}
