// Beamsearch compares the synchronization strategies of Figure 3-1 on
// the speech-decoding beam-search workload: blocking primitives,
// PLUS's delayed operations, and context switching at three costs.
package main

import (
	"fmt"
	"log"

	"plus"
	"plus/apps/beam"
)

func main() {
	const procs = 8
	base := beam.Config{
		MeshW: 4, MeshH: 2, Procs: procs,
		Layers: 24, States: 64, Branch: 3,
		Validate: true,
	}
	styles := []struct {
		label string
		style beam.Style
		cost  plus.Cycles
	}{
		{"blocking sync", beam.Blocking, 0},
		{"delayed operations", beam.Delayed, 0},
		{"context switch @16", beam.ContextSwitch, 16},
		{"context switch @40", beam.ContextSwitch, 40},
		{"context switch @140", beam.ContextSwitch, 140},
	}
	fmt.Printf("Beam search, %d processors, 24x64 HMM lattice:\n\n", procs)
	fmt.Printf("%-22s %12s %10s\n", "Strategy", "Elapsed", "Speedup")
	var blocking plus.Cycles
	for _, s := range styles {
		cfg := base
		cfg.Style = s.style
		cfg.SwitchCost = s.cost
		res, err := beam.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if s.style == beam.Blocking {
			blocking = res.Elapsed
		}
		fmt.Printf("%-22s %12d %9.2fx\n", s.label, res.Elapsed,
			float64(blocking)/float64(res.Elapsed))
	}
	fmt.Println("\nSpeedup is relative to blocking synchronization. As in the")
	fmt.Println("paper, very cheap context switching wins, delayed operations")
	fmt.Println("beat a 40-cycle switch, and a 140-cycle switch loses to both.")
}
