package plus_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablations and simulator micro-benchmarks. Each experiment benchmark
// runs the same code as cmd/plusbench (quick problem sizes so the
// whole suite stays fast) and reports the simulated-cycle results as
// custom metrics; `go run ./cmd/plusbench` regenerates the full-size
// tables recorded in EXPERIMENTS.md.

import (
	"testing"

	"plus"
	"plus/apps/beam"
	"plus/apps/sor"
	"plus/apps/sssp"
	"plus/experiments"
)

// BenchmarkTable2_1 regenerates Table 2-1 (effect of replication on
// messages, SSSP on 16 processors, copies 1..5).
func BenchmarkTable2_1(b *testing.B) {
	var rows []experiments.Table21Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table21(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ReadRatio, "readsLR@1copy")
	b.ReportMetric(rows[4].ReadRatio, "readsLR@5copies")
	b.ReportMetric(rows[4].UpdateRatio, "totalPerUpdate@5copies")
}

// BenchmarkFigure2_1 regenerates Figure 2-1 (SSSP efficiency and
// utilization vs processors, with and without replication).
func BenchmarkFigure2_1(b *testing.B) {
	var pts []experiments.Fig21Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure21(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Procs == 16 {
			if p.Replicated {
				b.ReportMetric(p.Efficiency, "eff@16repl")
			} else {
				b.ReportMetric(p.Efficiency, "eff@16none")
			}
		}
	}
}

// BenchmarkTable3_1 regenerates Table 3-1 (delayed-operation execution
// cycles at the coherence manager).
func BenchmarkTable3_1(b *testing.B) {
	var rows []experiments.Table31Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table31(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.MeasuredExec != r.PaperCycles {
			b.Fatalf("%v: measured %d, paper %d", r.Op, r.MeasuredExec, r.PaperCycles)
		}
	}
	b.ReportMetric(float64(rows[0].MeasuredExec), "simpleOpCycles")
	b.ReportMetric(float64(rows[4].MeasuredExec), "queueOpCycles")
}

// BenchmarkFigure3_1 regenerates Figure 3-1 (beam-search efficiency by
// synchronization style).
func BenchmarkFigure3_1(b *testing.B) {
	var pts []experiments.Fig31Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure31(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Procs == 8 {
			switch p.Label {
			case "delayed":
				b.ReportMetric(p.Efficiency, "eff@8delayed")
			case "blocking":
				b.ReportMetric(p.Efficiency, "eff@8blocking")
			case "cs-40":
				b.ReportMetric(p.Efficiency, "eff@8cs40")
			}
		}
	}
}

// BenchmarkSection3_1Costs regenerates the §3.1 cost anatomy (latency
// vs hop distance).
func BenchmarkSection3_1Costs(b *testing.B) {
	var rows []experiments.CostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Section31Costs(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].RoundTrip), "adjacentRT")
	b.ReportMetric(float64(rows[0].RemoteRead), "adjacentRead")
}

// BenchmarkAblationFence compares explicit fences (PLUS) against
// implicit fences at every synchronization (DASH-style).
func BenchmarkAblationFence(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationFence(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Elapsed), "explicitFenceCycles")
	b.ReportMetric(float64(rows[1].Elapsed), "fenceEverySyncCycles")
}

// BenchmarkAblationPendingWrites sweeps the pending-writes cache depth.
func BenchmarkAblationPendingWrites(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPendingWrites(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Elapsed), "depth1Cycles")
	b.ReportMetric(float64(rows[3].Elapsed), "depth8Cycles")
}

// BenchmarkAblationDelayedSlots sweeps the delayed-op cache depth.
func BenchmarkAblationDelayedSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDelayedSlots(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationContention toggles the link-contention model.
func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationContention(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompetitive sweeps the competitive-replication
// threshold.
func BenchmarkAblationCompetitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCompetitive(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator micro-benchmarks (host performance, not paper data) -----

// BenchmarkSimRemoteRead measures host time per simulated remote read.
func BenchmarkSimRemoteRead(b *testing.B) {
	m, err := plus.New(plus.DefaultConfig(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	data := m.Alloc(1, 1)
	n := b.N
	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < n; i++ {
			t.Read(data + plus.VAddr(i%1024))
		}
	})
	b.ResetTimer()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimReplicatedWrite measures host time per simulated write
// propagated down a 4-copy list.
func BenchmarkSimReplicatedWrite(b *testing.B) {
	m, err := plus.New(plus.DefaultConfig(4, 1))
	if err != nil {
		b.Fatal(err)
	}
	data := m.Alloc(0, 1)
	m.Replicate(data, 1, 2, 3)
	n := b.N
	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < n; i++ {
			t.Write(data+plus.VAddr(i%1024), plus.Word(uint32(i)))
			if i%4 == 3 {
				t.Fence()
			}
		}
		t.Fence()
	})
	b.ResetTimer()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimFadd measures host time per simulated remote
// fetch-and-add round trip.
func BenchmarkSimFadd(b *testing.B) {
	m, err := plus.New(plus.DefaultConfig(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	ctr := m.Alloc(1, 1)
	n := b.N
	m.Spawn(0, func(t *plus.Thread) {
		for i := 0; i < n; i++ {
			t.FaddSync(ctr, 1)
		}
	})
	b.ResetTimer()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimSSSP measures whole-workload simulation speed.
func BenchmarkSimSSSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sssp.Run(sssp.Config{
			MeshW: 4, MeshH: 2, Procs: 8, Vertices: 256, Seed: 1, Copies: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSORScaling measures the regular-workload contrast: SOR
// speedup from 1 to 4 processors (near-linear, unlike the sync-heavy
// applications) — an extension experiment beyond the paper's tables.
func BenchmarkSORScaling(b *testing.B) {
	var t1, t4 uint64
	for i := 0; i < b.N; i++ {
		r1, err := sor.Run(sor.Config{MeshW: 2, MeshH: 2, Procs: 1, N: 64, Iters: 2, ReplicateBoundaries: true})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := sor.Run(sor.Config{MeshW: 2, MeshH: 2, Procs: 4, N: 64, Iters: 2, ReplicateBoundaries: true})
		if err != nil {
			b.Fatal(err)
		}
		t1, t4 = uint64(r1.Elapsed), uint64(r4.Elapsed)
	}
	b.ReportMetric(float64(t1)/float64(t4), "speedup@4procs")
}

// BenchmarkSimBeam measures whole-workload simulation speed.
func BenchmarkSimBeam(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := beam.Run(beam.Config{
			MeshW: 4, MeshH: 2, Procs: 8, Layers: 10, States: 32, Style: beam.Delayed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
