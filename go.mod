module plus

go 1.24
