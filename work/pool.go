// Package work provides the distributed work-queue fabric the PLUS
// evaluation applications share: per-node hardware queues built on the
// queue/dequeue delayed operations (§2.3 of the paper: "Our
// implementation uses multiple queues since, owing to queue bandwidth
// limitation, a single queue introduces serialization"), work stealing
// for load balance ("each processor must extract work from other
// queues when its local queue is empty"), and a fetch-and-add
// termination counter.
//
// A queued-flag word per item bounds every hardware queue's occupancy
// to its distinct item range, so the fixed-capacity hardware queues
// (MaxQueueSize words within one page) can never overflow into a
// livelock — the paper's "spin if queue is full, unlikely" case is
// made impossible rather than unlikely. Owners with more items than
// one queue's capacity get several hardware queues.
package work

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

const idleBackoff sim.Cycles = 200

// Pool distributes integer work items [0, nitems) over the
// participating processors' hardware queues.
type Pool struct {
	m      *core.Machine
	procs  int
	nitems int

	active memory.VAddr // outstanding-work counter (queued + in process)
	flags  memory.VAddr // per-item queued flag (top bit)

	// Static item→queue mapping (an address computation, not shared
	// state): owner and sub-queue index per item.
	owner []int
	subq  []int
	// Per (proc, sub-queue) control-word addresses.
	tails [][]memory.VAddr
	heads [][]memory.VAddr
}

// New builds a pool for nitems items over the first procs processors.
// ownerOf assigns each item to its owning processor (the paper
// distributes vertices evenly among the nodes); it must be a pure
// function.
func New(m *core.Machine, procs, nitems int, ownerOf func(int) int) *Pool {
	if procs < 1 || nitems < 1 {
		panic("work: pool needs at least one processor and one item")
	}
	p := &Pool{
		m: m, procs: procs, nitems: nitems,
		owner: make([]int, nitems),
		subq:  make([]int, nitems),
		tails: make([][]memory.VAddr, procs),
		heads: make([][]memory.VAddr, procs),
	}
	maxQ := m.Config().Timing.MaxQueueSize

	// Chunk each owner's items into sub-queues of at most maxQ
	// distinct items, so a queue can never receive more entries than
	// it has slots.
	counts := make([]int, procs)
	for item := 0; item < nitems; item++ {
		o := ownerOf(item)
		if o < 0 || o >= procs {
			panic(fmt.Sprintf("work: ownerOf(%d) = %d out of range", item, o))
		}
		p.owner[item] = o
		p.subq[item] = counts[o] / maxQ
		counts[o]++
	}
	for o := 0; o < procs; o++ {
		nq := (counts[o]+maxQ-1)/maxQ + 1 // at least one queue per owner
		for q := 0; q < nq; q++ {
			qp := m.Alloc(mesh.NodeID(o), 1)
			p.tails[o] = append(p.tails[o], qp+memory.VAddr(maxQ))
			p.heads[o] = append(p.heads[o], qp+memory.VAddr(maxQ)+1)
		}
	}

	// Queued-flag array, block-homed by owner.
	pages := (nitems + memory.PageWords - 1) / memory.PageWords
	homes := make([]mesh.NodeID, pages)
	for i := range homes {
		homes[i] = mesh.NodeID(p.owner[min(i*memory.PageWords, nitems-1)])
	}
	p.flags = m.AllocHomed(homes...)
	p.active = m.Alloc(0, 1)
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *Pool) flagVA(item int) memory.VAddr { return p.flags + memory.VAddr(item) }

// ActiveAddr returns the termination counter's address (for
// instrumentation).
func (p *Pool) ActiveAddr() memory.VAddr { return p.active }

// Seed enqueues initial items outside simulated time (before Run).
func (p *Pool) Seed(items ...int) {
	maxQ := uint32(p.m.Config().Timing.MaxQueueSize)
	tails := make(map[[2]int]uint32)
	for _, item := range items {
		if p.m.Peek(p.flagVA(item))&memory.TopBit != 0 {
			continue
		}
		p.m.Poke(p.flagVA(item), memory.TopBit)
		o, q := p.owner[item], p.subq[item]
		key := [2]int{o, q}
		slot := tails[key]
		qpage := p.tails[o][q] - memory.VAddr(maxQ)
		p.m.Poke(qpage+memory.VAddr(slot), memory.TopBit|memory.Word(uint32(item)))
		tails[key] = slot + 1
		p.m.Poke(p.active, p.m.Peek(p.active)+1)
	}
	for key, t := range tails {
		p.m.Poke(p.tails[key[0]][key[1]], memory.Word(t))
	}
}

// Add schedules an item (idempotent: an item already queued is not
// queued twice). The caller must itself be processing an item — its
// own unit keeps the termination counter positive while the insertion
// is in flight. After Add returns, a later Get of the item is
// guaranteed to observe memory as of the fetch-and-set's serialization
// at the flag's master; callers that publish state for the item must
// do so (with completed writes or verified RMWs) before calling Add.
func (p *Pool) Add(t *proc.Thread, item int) {
	// Fetch-and-set elects one scheduler per queued lifetime.
	if t.FetchSetSync(p.flagVA(item))&memory.TopBit != 0 {
		return
	}
	// The increment must be applied before the item is dequeuable, or
	// a racing worker could observe a transient zero and terminate.
	t.Verify(t.Fadd(p.active, 1))
	o, q := p.owner[item], p.subq[item]
	for t.EnqueueSync(p.tails[o][q], memory.Word(uint32(item)))&memory.TopBit != 0 {
		// Unreachable by construction (dedup bounds occupancy), kept
		// as a hardware-faithful guard.
		t.Compute(idleBackoff)
	}
}

// Done retires the work unit the caller obtained from Get (or was
// seeded with).
func (p *Pool) Done(t *proc.Thread) {
	t.Verify(t.Fadd(p.active, -1))
}

// Get returns the next item for processor self: from its own queues
// first, then by stealing from every other processor's queues. It
// returns ok=false only when the pool has terminated (no queued or
// in-process items anywhere). Before returning an item it clears the
// item's queued flag with a verified exchange, so any state the caller
// reads afterwards through the masters reflects every update that
// decided not to re-queue the item.
func (p *Pool) Get(t *proc.Thread, self int) (int, bool) {
	if self < 0 || self >= p.procs {
		panic(fmt.Sprintf("work: Get from processor %d of %d", self, p.procs))
	}
	return p.getScan(t, func(i int) int { return (self + i) % p.procs }, p.procs)
}

// GetScoped is Get restricted to the queues of the given owners — the
// paper's queue-sharing policy, where a processor extracts work only
// from queues it holds a replica of ("We have replicated the queues
// and vertices on more than one processor and found a substantial
// performance increase due to better load balancing", §2.5). The
// owners list must include self; items in unshared queues are drained
// by their own group, and the global termination counter still ends
// the loop — the waiting this policy causes is exactly the idle time
// Figure 2-1 measures for the unreplicated configuration.
func (p *Pool) GetScoped(t *proc.Thread, self int, owners []int) (int, bool) {
	if self < 0 || self >= p.procs {
		panic(fmt.Sprintf("work: Get from processor %d of %d", self, p.procs))
	}
	return p.getScan(t, func(i int) int { return owners[i] }, len(owners))
}

func (p *Pool) getScan(t *proc.Thread, ownerAt func(int) int, n int) (int, bool) {
	// Queue polling is processor activity but not useful work: the
	// utilization Figure 2-1 reports is computation over elapsed time,
	// and an idle processor probing for work stays idle.
	t.BeginIdle()
	defer t.EndIdle()
	for {
		for i := 0; i < n; i++ {
			o := ownerAt(i)
			for q := range p.heads[o] {
				w := t.DequeueSync(p.heads[o][q])
				if w&memory.TopBit == 0 {
					continue
				}
				item := int(w &^ memory.TopBit)
				// Clear-before-read: verified so the flag's master has
				// applied it before the caller re-reads item state; an
				// update that then skips re-queueing serialized its
				// data before our read, an earlier one re-queues.
				t.XchngSync(p.flagVA(item), 0)
				return item, true
			}
		}
		if t.Read(p.active) == 0 {
			return 0, false
		}
		t.Compute(idleBackoff)
	}
}

// Procs returns the number of participating processors.
func (p *Pool) Procs() int { return p.procs }

// Items returns the item-space size.
func (p *Pool) Items() int { return p.nitems }

// Queues returns how many hardware queues processor o owns.
func (p *Pool) Queues(o int) int { return len(p.heads[o]) }

// QueuePages returns the virtual addresses of processor o's queue
// pages (for replication experiments).
func (p *Pool) QueuePages(o int) []memory.VAddr {
	maxQ := memory.VAddr(p.m.Config().Timing.MaxQueueSize)
	out := make([]memory.VAddr, len(p.tails[o]))
	for i, tc := range p.tails[o] {
		out[i] = tc - maxQ
	}
	return out
}

// FlagPages returns the flag array's page base addresses (for
// replication experiments).
func (p *Pool) FlagPages() []memory.VAddr {
	pages := (p.nitems + memory.PageWords - 1) / memory.PageWords
	out := make([]memory.VAddr, pages)
	for i := range out {
		out[i] = p.flags + memory.VAddr(i*memory.PageWords)
	}
	return out
}
