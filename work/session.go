package work

import (
	"plus/internal/memory"
	"plus/internal/proc"
)

// Session is a per-thread pipelined view of a Pool: it keeps one
// dequeue of the processor's first queue permanently in flight, so the
// next item is usually already on its way when Get is called — the
// §3.4 delayed-operations coding style ("the next vertex is dequeued
// in parallel with the processing of the current state").
type Session struct {
	p       *Pool
	self    int
	pending proc.Handle
	armed   bool
}

// Session starts a pipelined work stream for processor self. Not
// shareable between threads.
func (p *Pool) Session(self int) *Session {
	return &Session{p: p, self: self}
}

// ownHead returns the control word of the processor's primary queue.
func (s *Session) ownHead() memory.VAddr { return s.p.heads[s.self][0] }

// take clears the queued flag (verified, see Pool.Get) and re-arms the
// prefetch before handing the item out.
func (s *Session) take(t *proc.Thread, item int) int {
	if !s.armed {
		s.pending = t.Dequeue(s.ownHead())
		s.armed = true
	}
	t.XchngSync(s.p.flagVA(item), 0)
	return item
}

// Get returns the next item, preferring the in-flight dequeue, then
// the processor's other queues, then stealing. ok=false only at pool
// termination (at which point no prefetch remains in flight).
func (s *Session) Get(t *proc.Thread) (int, bool) {
	for {
		var w memory.Word
		if s.armed {
			w = t.Verify(s.pending)
			s.armed = false
		} else {
			w = t.DequeueSync(s.ownHead())
		}
		if w&memory.TopBit != 0 {
			return s.take(t, int(w&^memory.TopBit)), true
		}
		// Primary queue dry: scan the rest blocking-style.
		for i := 0; i < s.p.procs; i++ {
			o := (s.self + i) % s.p.procs
			for q := range s.p.heads[o] {
				if o == s.self && q == 0 {
					continue
				}
				w := t.DequeueSync(s.p.heads[o][q])
				if w&memory.TopBit != 0 {
					return s.take(t, int(w&^memory.TopBit)), true
				}
			}
		}
		if t.Read(s.p.active) == 0 {
			return 0, false
		}
		t.Compute(idleBackoff)
	}
}

// Close retires an abandoned in-flight prefetch. If it had already
// grabbed an item, the item is pushed back so no work is lost. Get's
// termination return leaves nothing in flight, so workers that run to
// completion need not call Close.
func (s *Session) Close(t *proc.Thread) {
	if !s.armed {
		return
	}
	w := t.Verify(s.pending)
	s.armed = false
	if w&memory.TopBit != 0 {
		item := int(w &^ memory.TopBit)
		// The flag is still set and the counter still accounts for the
		// item; restore only the queue entry.
		o, q := s.p.owner[item], s.p.subq[item]
		for t.EnqueueSync(s.p.tails[o][q], memory.Word(uint32(item)))&memory.TopBit != 0 {
			t.Compute(idleBackoff)
		}
	}
}
