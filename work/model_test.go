package work

import (
	"math/rand"
	"testing"

	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// TestPoolModelRandomSchedules drives random dynamic workloads through
// the pool and checks it against a plain-Go model: every item Added
// while not queued is eventually processed exactly once per queued
// lifetime, regardless of owner distribution, worker count or timing
// jitter.
func TestPoolModelRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := 1 + rng.Intn(4)
		items := 8 + rng.Intn(56)
		w, h := 2, 2
		m, err := core.NewMachine(core.DefaultConfig(w, h))
		if err != nil {
			t.Fatal(err)
		}
		ownerOf := func(i int) int { return (i * 7) % procs }
		pool := New(m, procs, items, ownerOf)

		// Deterministic dynamic-add script: processing item i adds the
		// items in spawn[i] (if not already queued).
		// The spawn graph is a DAG (edges only to higher item numbers):
		// a cycle would re-queue forever, which is a property of the
		// script, not the pool.
		spawn := make([][]int, items)
		for i := range spawn {
			if i+1 >= items {
				break
			}
			for k := rng.Intn(3); k > 0; k-- {
				spawn[i] = append(spawn[i], i+1+rng.Intn(items-i-1))
			}
		}
		seeds := []int{0}
		if items > 1 {
			seeds = append(seeds, 1+rng.Intn(items-1))
		}
		pool.Seed(seeds...)

		// Model the dedup semantics: queued items absorb re-adds. A
		// BFS over the spawn graph from the seeds gives exactly the
		// set of items processed at least once; with this script each
		// queued lifetime processes once and re-adds happen only while
		// the target may be queued — the run itself is the arbiter, so
		// the model checks reachability and the machine checks counts.
		reach := make([]bool, items)
		stack := append([]int{}, seeds...)
		for _, s := range seeds {
			reach[s] = true
		}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, j := range spawn[i] {
				if !reach[j] {
					reach[j] = true
					stack = append(stack, j)
				}
			}
		}

		counts := make([]int, items)
		for p := 0; p < procs; p++ {
			p := p
			jitter := sim.Cycles(10 + rng.Intn(200))
			m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
				for {
					it, ok := pool.Get(th, p)
					if !ok {
						return
					}
					counts[it]++
					th.Compute(jitter)
					for _, j := range spawn[it] {
						pool.Add(th, j)
					}
					pool.Done(th)
				}
			})
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range counts {
			if reach[i] && counts[i] == 0 {
				t.Fatalf("seed %d: reachable item %d never processed", seed, i)
			}
			if !reach[i] && counts[i] != 0 {
				t.Fatalf("seed %d: unreachable item %d processed %d times", seed, i, counts[i])
			}
		}
	}
}
