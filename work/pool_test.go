package work

import (
	"testing"

	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/proc"
)

func newMachine(t *testing.T, w, h int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.DefaultConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoolProcessesAllSeeds(t *testing.T) {
	m := newMachine(t, 2, 2)
	pool := New(m, 4, 100, func(i int) int { return i % 4 })
	seeds := make([]int, 100)
	for i := range seeds {
		seeds[i] = i
	}
	pool.Seed(seeds...)
	got := make(map[int]int)
	for p := 0; p < 4; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
			for {
				it, ok := pool.Get(th, p)
				if !ok {
					return
				}
				got[it]++
				th.Compute(50)
				pool.Done(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("processed %d distinct items", len(got))
	}
	for it, n := range got {
		if n != 1 {
			t.Fatalf("item %d processed %d times", it, n)
		}
	}
}

func TestPoolDynamicAddFanOut(t *testing.T) {
	// Item 0 spawns a tree of work: processing item i adds 2i+1 and
	// 2i+2 while < N. All N items must be processed exactly once.
	const n = 63
	m := newMachine(t, 2, 2)
	pool := New(m, 4, n, func(i int) int { return i % 4 })
	pool.Seed(0)
	counts := make([]int, n)
	for p := 0; p < 4; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
			for {
				it, ok := pool.Get(th, p)
				if !ok {
					return
				}
				counts[it]++
				th.Compute(30)
				if 2*it+1 < n {
					pool.Add(th, 2*it+1)
				}
				if 2*it+2 < n {
					pool.Add(th, 2*it+2)
				}
				pool.Done(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for it, c := range counts {
		if c != 1 {
			t.Fatalf("item %d processed %d times", it, c)
		}
	}
}

func TestPoolDedupWhileQueued(t *testing.T) {
	// Adding an already-queued item is a no-op: it is processed once
	// per queued lifetime.
	m := newMachine(t, 2, 1)
	pool := New(m, 2, 10, func(i int) int { return i % 2 })
	pool.Seed(5)
	processed := 0
	m.Spawn(0, func(th *proc.Thread) {
		it, ok := pool.Get(th, 0)
		if !ok || it != 5 {
			t.Errorf("got %d %v", it, ok)
		}
		processed++
		// Re-add while we process (flag now clear) — this queues it
		// again legitimately.
		pool.Add(th, 5)
		pool.Add(th, 5) // second add while queued: deduplicated
		pool.Done(th)
		for {
			it, ok := pool.Get(th, 0)
			if !ok {
				return
			}
			processed++
			_ = it
			pool.Done(th)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if processed != 2 {
		t.Fatalf("processed %d times, want 2 (dedup failed)", processed)
	}
}

func TestPoolOverflowImpossible(t *testing.T) {
	// More items on one owner than a single hardware queue holds: the
	// pool must give that owner several queues and never livelock
	// (the regression behind the P=1 SSSP hang).
	m := newMachine(t, 1, 1)
	maxQ := m.Config().Timing.MaxQueueSize
	n := maxQ*2 + 37
	pool := New(m, 1, n, func(int) int { return 0 })
	if pool.Queues(0) < 3 {
		t.Fatalf("owner got %d queues for %d items", pool.Queues(0), n)
	}
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	pool.Seed(seeds...)
	done := 0
	m.Spawn(0, func(th *proc.Thread) {
		for {
			_, ok := pool.Get(th, 0)
			if !ok {
				return
			}
			done++
			pool.Done(th)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("processed %d of %d", done, n)
	}
}

func TestPoolStealing(t *testing.T) {
	// All items owned by proc 0; proc 1 must steal and help.
	m := newMachine(t, 2, 1)
	pool := New(m, 2, 40, func(int) int { return 0 })
	seeds := make([]int, 40)
	for i := range seeds {
		seeds[i] = i
	}
	pool.Seed(seeds...)
	byProc := [2]int{}
	for p := 0; p < 2; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
			for {
				_, ok := pool.Get(th, p)
				if !ok {
					return
				}
				byProc[p]++
				th.Compute(2000) // slow processing so the thief gets a share
				pool.Done(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if byProc[0]+byProc[1] != 40 {
		t.Fatalf("processed %v", byProc)
	}
	if byProc[1] == 0 {
		t.Fatal("processor 1 never stole")
	}
}

func TestSessionPipelinedGet(t *testing.T) {
	m := newMachine(t, 2, 1)
	pool := New(m, 2, 30, func(i int) int { return i % 2 })
	seeds := make([]int, 30)
	for i := range seeds {
		seeds[i] = i
	}
	pool.Seed(seeds...)
	got := make(map[int]bool)
	for p := 0; p < 2; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
			s := pool.Session(p)
			for {
				it, ok := s.Get(th)
				if !ok {
					return
				}
				if got[it] {
					t.Errorf("item %d delivered twice", it)
				}
				got[it] = true
				th.Compute(100)
				pool.Done(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestSessionCloseRestoresItem(t *testing.T) {
	m := newMachine(t, 2, 1)
	pool := New(m, 2, 4, func(int) int { return 0 })
	pool.Seed(0, 1, 2, 3)
	processed := 0
	m.Spawn(0, func(th *proc.Thread) {
		s := pool.Session(0)
		it, ok := s.Get(th)
		if !ok {
			t.Error("empty pool")
		}
		_ = it
		pool.Done(th)
		// Abandon the session with a prefetch in flight; the prefetched
		// item must go back to the queue.
		s.Close(th)
		for {
			it, ok := pool.Get(th, 0)
			if !ok {
				return
			}
			_ = it
			processed++
			pool.Done(th)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if processed != 3 {
		t.Fatalf("post-close processed %d, want 3", processed)
	}
}

func TestPoolValidation(t *testing.T) {
	m := newMachine(t, 2, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad ownerOf accepted")
			}
		}()
		New(m, 2, 4, func(int) int { return 7 })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero items accepted")
			}
		}()
		New(m, 2, 0, nil)
	}()
}
