package psync

import (
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// Cond is a condition variable over a QueueLock: waiters enqueue their
// thread IDs in a hardware queue and sleep; Signal and Broadcast
// dequeue and wake them — the same sleep/wakeup machinery as the
// Table 3-2 lock, composed one level up.
type Cond struct {
	m   *core.Machine
	qp  memory.VAddr // waiter-queue tail control word
	dqp memory.VAddr // head control word
	n   memory.VAddr // waiter count
}

// NewCond allocates a condition variable homed on the given node. It
// pairs with any lock the caller holds around Wait/Signal.
func NewCond(m *core.Machine, home mesh.NodeID) *Cond {
	base := m.Alloc(home, 2)
	qpage := base + memory.VAddr(memory.PageWords)
	maxQ := memory.VAddr(m.Config().Timing.MaxQueueSize)
	return &Cond{m: m, n: base, qp: qpage + maxQ, dqp: qpage + maxQ + 1}
}

// Wait atomically releases the lock, sleeps until a Signal/Broadcast
// wakes this thread, and reacquires the lock before returning. The
// caller must hold l.
func (c *Cond) Wait(t *proc.Thread, l *QueueLock) {
	// Register as a waiter before releasing the lock so a signal
	// between release and sleep cannot be lost: the count is verified
	// (applied at its master) first, then the ID enqueued; Signal
	// dequeues only after seeing the count, and a wake that beats the
	// Sleep is absorbed by the wake-pending latch.
	t.Verify(t.Fadd(c.n, 1))
	for t.EnqueueSync(c.qp, memory.Word(t.ID()))&memory.TopBit != 0 {
		t.Compute(spinPause)
	}
	l.Unlock(t)
	t.Sleep()
	l.Lock(t)
}

// Signal wakes one waiter, if any. The caller should hold the
// associated lock (as with any condition variable, signalling without
// it is legal but racy in the application's own terms).
func (c *Cond) Signal(t *proc.Thread) {
	if int32(t.FaddSync(c.n, -1)) <= 0 {
		t.Verify(t.Fadd(c.n, 1)) // nobody was waiting: undo
		return
	}
	c.wakeOne(t)
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast(t *proc.Thread) {
	for {
		if int32(t.FaddSync(c.n, -1)) <= 0 {
			t.Verify(t.Fadd(c.n, 1))
			return
		}
		c.wakeOne(t)
	}
}

// wakeOne pops one registered waiter (looping across the enqueue race
// window exactly like Table 3-2's UNLOCK) and wakes it.
func (c *Cond) wakeOne(t *proc.Thread) {
	var k memory.Word
	for {
		k = t.DequeueSync(c.dqp)
		if k&memory.TopBit != 0 {
			break
		}
		t.Compute(spinPause)
	}
	t.Wake(c.m.Threads()[int(k&^memory.TopBit)])
}

// Once runs an initialization exactly once across all threads: the
// winner of a fetch-and-set executes f and publishes with a fence and
// a done flag; losers spin until the flag is visible.
type Once struct {
	gate memory.VAddr
	done memory.VAddr
}

// NewOnce allocates a once-gate homed on the given node.
func NewOnce(m *core.Machine, home mesh.NodeID) *Once {
	base := m.Alloc(home, 1)
	return &Once{gate: base, done: base + 1}
}

// Do executes f exactly once machine-wide; every caller returns only
// after f's effects are globally visible.
func (o *Once) Do(t *proc.Thread, f func(*proc.Thread)) {
	if t.FetchSetSync(o.gate)&memory.TopBit == 0 {
		f(t)
		t.Fence() // publish f's writes before the flag
		t.Write(o.done, 1)
		t.Fence()
		return
	}
	for t.Read(o.done) == 0 {
		t.Compute(spinPause)
	}
}
