package psync

import (
	"testing"

	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

func TestCondSignalWakesOne(t *testing.T) {
	m := newMachine(t, 4, 1)
	l := NewQueueLock(m, 0)
	c := NewCond(m, 0)
	ready := m.Alloc(0, 1)
	woken := 0
	for n := 1; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			l.Lock(th)
			for th.Read(ready) == 0 {
				c.Wait(th, l)
			}
			woken++
			th.Write(ready, 0) // consume the token
			th.Fence()
			l.Unlock(th)
		})
	}
	m.Spawn(0, func(th *proc.Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(5000)
			l.Lock(th)
			th.Write(ready, 1)
			th.Fence()
			c.Signal(th)
			l.Unlock(th)
			// Wait for the consumer before producing again.
			for {
				l.Lock(th)
				v := th.Read(ready)
				l.Unlock(th)
				if v == 0 {
					break
				}
				th.Compute(500)
			}
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	m := newMachine(t, 4, 1)
	l := NewQueueLock(m, 0)
	c := NewCond(m, 0)
	gate := m.Alloc(0, 1)
	passed := 0
	for n := 1; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			l.Lock(th)
			for th.Read(gate) == 0 {
				c.Wait(th, l)
			}
			passed++
			l.Unlock(th)
		})
	}
	m.Spawn(0, func(th *proc.Thread) {
		th.Compute(20000) // let everyone park
		l.Lock(th)
		th.Write(gate, 1)
		th.Fence()
		c.Broadcast(th)
		l.Unlock(th)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
}

func TestCondSignalWithoutWaitersHarmless(t *testing.T) {
	m := newMachine(t, 2, 1)
	l := NewQueueLock(m, 0)
	c := NewCond(m, 0)
	m.Spawn(0, func(th *proc.Thread) {
		l.Lock(th)
		c.Signal(th)
		c.Broadcast(th)
		l.Unlock(th)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	m := newMachine(t, 4, 1)
	o := NewOnce(m, 0)
	data := m.Alloc(0, 1)
	m.Replicate(data, 1, 2, 3)
	runs := 0
	sawInit := 0
	for n := 0; n < 4; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			th.Compute(sim.Cycles(100 * n)) // staggered arrival
			o.Do(th, func(th *proc.Thread) {
				runs++
				th.Write(data, 77)
			})
			// Every thread must observe the initialization after Do.
			if th.Read(data) == 77 {
				sawInit++
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("init ran %d times", runs)
	}
	if sawInit != 4 {
		t.Fatalf("%d of 4 threads saw the init", sawInit)
	}
}
