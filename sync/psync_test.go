package psync

import (
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

func newMachine(t *testing.T, w, h int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.DefaultConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// raceyIncrement exercises mutual exclusion: read / compute / write is
// only correct if the lock serializes the critical sections and the
// unlock publishes the write before handoff.
func raceyIncrement(t *proc.Thread, x memory.VAddr) {
	v := t.Read(x)
	t.Compute(50)
	t.Write(x, v+1)
}

func TestQueueLockMutualExclusion(t *testing.T) {
	m := newMachine(t, 4, 4)
	l := NewQueueLock(m, 0)
	x := m.Alloc(5, 1)
	const perThread = 5
	for n := 0; n < 16; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < perThread; i++ {
				l.Lock(th)
				raceyIncrement(th, x)
				l.Unlock(th)
				th.Compute(100)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != 16*perThread {
		t.Fatalf("counter = %d, want %d (lost update ⇒ broken lock)", got, 16*perThread)
	}
}

func TestQueueLockWaitersSleepNotSpin(t *testing.T) {
	m := newMachine(t, 2, 1)
	l := NewQueueLock(m, 0)
	x := m.Alloc(0, 1)
	// Thread A holds the lock for a long compute; thread B must sleep,
	// not burn busy cycles.
	m.Spawn(0, func(th *proc.Thread) {
		l.Lock(th)
		th.Compute(100000)
		raceyIncrement(th, x)
		l.Unlock(th)
	})
	m.Spawn(1, func(th *proc.Thread) {
		th.Compute(1000) // let A acquire first
		l.Lock(th)
		raceyIncrement(th, x)
		l.Unlock(th)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Peek(x) != 2 {
		t.Fatalf("counter = %d", m.Peek(x))
	}
	// Node 1 was mostly asleep: its busy cycles must be a small
	// fraction of the elapsed time.
	busy := m.Stats().Nodes[1].BusyCycles
	if float64(busy) > 0.2*float64(m.Elapsed()) {
		t.Fatalf("waiter burned %d of %d cycles — it spun instead of sleeping", busy, m.Elapsed())
	}
}

func TestQueueLockFIFOHandoff(t *testing.T) {
	// Waiters are woken in the order they enqueued.
	m := newMachine(t, 4, 1)
	l := NewQueueLock(m, 0)
	var order []int
	m.Spawn(0, func(th *proc.Thread) {
		l.Lock(th)
		th.Compute(50000) // hold long enough for all waiters to queue
		order = append(order, 0)
		l.Unlock(th)
	})
	for n := 1; n < 4; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			th.Compute(sim.Cycles(n) * 1000) // stagger arrival: 1, 2, 3
			l.Lock(th)
			order = append(order, n)
			l.Unlock(th)
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("handoff order %v, want %v", order, want)
		}
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	m := newMachine(t, 2, 2)
	l := NewSpinLock(m, 0)
	m.Replicate(l.Addr(), 1, 2, 3) // spin on local copies
	x := m.Alloc(3, 1)
	const perThread = 5
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < perThread; i++ {
				l.Lock(th)
				raceyIncrement(th, x)
				l.Unlock(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

func TestBarrierPhases(t *testing.T) {
	m := newMachine(t, 4, 1)
	b := NewBarrier(m, 0, 4)
	m.Replicate(b.GenAddr(), 1, 2, 3)
	const phases = 5
	counts := make([][]int, phases)
	for n := 0; n < 4; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for p := 0; p < phases; p++ {
				th.Compute(sim.Cycles(100 * (n + 1))) // skewed arrival
				counts[p] = append(counts[p], n)
				b.Wait(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < phases; p++ {
		if len(counts[p]) != 4 {
			t.Fatalf("phase %d saw %d arrivals", p, len(counts[p]))
		}
	}
}

func TestBarrierNoEarlyRelease(t *testing.T) {
	// A thread must never pass the barrier before all have arrived:
	// track a shared phase variable.
	m := newMachine(t, 4, 1)
	b := NewBarrier(m, 0, 4)
	arrived := 0
	violated := false
	for n := 0; n < 4; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			th.Compute(sim.Cycles(1000 * (n + 1)))
			arrived++
			b.Wait(th)
			if arrived != 4 {
				violated = true
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("a thread passed the barrier before all arrived")
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	m := newMachine(t, 2, 2)
	full := NewSemaphore(m, 0, 0)
	empty := NewSemaphore(m, 0, 4) // buffer capacity 4
	buf := m.Alloc(1, 1)
	const items = 12
	var got []memory.Word
	head, tail := 0, 0
	m.Spawn(0, func(th *proc.Thread) { // producer
		for i := 0; i < items; i++ {
			empty.P(th)
			th.Write(buf+memory.VAddr(tail%4), memory.Word(100+i))
			tail++
			full.V(th)
		}
	})
	m.Spawn(3, func(th *proc.Thread) { // consumer
		for i := 0; i < items; i++ {
			full.P(th)
			got = append(got, th.Read(buf+memory.VAddr(head%4)))
			head++
			empty.V(th)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("consumed %d items", len(got))
	}
	for i, v := range got {
		if v != memory.Word(100+i) {
			t.Fatalf("item %d = %d (reordered or stale)", i, v)
		}
	}
}

func TestSemaphoreInitialCount(t *testing.T) {
	m := newMachine(t, 2, 1)
	s := NewSemaphore(m, 0, 2)
	passed := 0
	for n := 0; n < 2; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			s.P(th)
			passed++
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 2 {
		t.Fatalf("passed = %d, want 2 (initial count)", passed)
	}
}

func TestEagerIndexUniqueAndPipelined(t *testing.T) {
	m := newMachine(t, 2, 2)
	e := NewEagerIndex(m, 3)
	seen := make(map[memory.Word]bool)
	const perThread = 10
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			s := e.Session()
			for i := 0; i < perThread; i++ {
				v := s.Next(th)
				if seen[v] {
					t.Errorf("index %d handed out twice", v)
				}
				seen[v] = true
				th.Compute(200)
			}
			s.Close(th)
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4*perThread {
		t.Fatalf("got %d unique indices, want %d", len(seen), 4*perThread)
	}
}

func TestEagerIndexHidesLatency(t *testing.T) {
	// Compared with blocking fadd allocation, the eager session should
	// be faster when computation separates allocations.
	run := func(eager bool) uint64 {
		m := newMachine(t, 2, 1)
		e := NewEagerIndex(m, 1) // counter remote from thread's node 0
		m.Spawn(0, func(th *proc.Thread) {
			s := e.Session()
			for i := 0; i < 50; i++ {
				if eager {
					s.Next(th)
				} else {
					th.FaddSync(e.ctr, 1)
				}
				th.Compute(150) // enough work to hide the round trip
			}
			if eager {
				s.Close(th)
			}
		})
		el, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return uint64(el)
	}
	blocking := run(false)
	eager := run(true)
	if eager >= blocking {
		t.Fatalf("eager allocation (%d) not faster than blocking (%d)", eager, blocking)
	}
}
