package psync

import (
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// TestQueueLockWrapsHardwareQueue pushes far more waiter enqueues
// through the lock than the hardware queue has slots, so the tail and
// head offsets wrap "(modulo maximum queue size)" many times — the
// Table 3-2 code must keep working across wrap boundaries.
func TestQueueLockWrapsHardwareQueue(t *testing.T) {
	m := newMachine(t, 2, 2)
	maxQ := m.Config().Timing.MaxQueueSize
	l := NewQueueLock(m, 0)
	x := m.Alloc(1, 1)
	// Rounds of contended acquisitions; with 4 threads, roughly 3 of 4
	// acquisitions enqueue a waiter.
	rounds := maxQ/2 + 40 // ≈ 3/4 * 4 * rounds > maxQ enqueues
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < rounds; i++ {
				l.Lock(th)
				v := th.Read(x)
				th.Write(x, v+1)
				l.Unlock(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != memory.Word(uint32(4*rounds)) {
		t.Fatalf("counter = %d, want %d", got, 4*rounds)
	}
}

// TestSemaphoreWraps does the same for the semaphore's waiter queue.
func TestSemaphoreWraps(t *testing.T) {
	m := newMachine(t, 2, 2)
	maxQ := m.Config().Timing.MaxQueueSize
	s := NewSemaphore(m, 0, 1) // binary semaphore: heavy queueing
	x := m.Alloc(1, 1)
	rounds := maxQ/2 + 30
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < rounds; i++ {
				s.P(th)
				v := th.Read(x)
				th.Write(x, v+1)
				s.V(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != memory.Word(uint32(4*rounds)) {
		t.Fatalf("counter = %d, want %d", got, 4*rounds)
	}
}
