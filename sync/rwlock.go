package psync

import (
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// RWLock is a writer-biased readers-writer lock built on a single
// fetch-and-add word, in the style of the era's fetch-and-add
// literature the paper cites (Gottlieb et al.): readers add 1, a
// writer subtracts a large bias, and the word's sign tells everyone
// the current mode.
type RWLock struct {
	w memory.VAddr
}

// writerBias is subtracted by a writer; any value more negative than
// -maxReaders means a writer holds or wants the lock.
const writerBias = int32(1) << 24

// NewRWLock allocates a readers-writer lock homed on the given node.
func NewRWLock(m *core.Machine, home mesh.NodeID) *RWLock {
	return &RWLock{w: m.Alloc(home, 1)}
}

// Addr returns the lock word's address (for replication).
func (l *RWLock) Addr() memory.VAddr { return l.w }

// RLock acquires the lock for reading. Readers that collide with a
// writer undo their increment and retry after a pause, so a waiting
// writer is never starved by a stream of new readers.
func (l *RWLock) RLock(t *proc.Thread) {
	for {
		if int32(t.FaddSync(l.w, 1)) >= 0 {
			return // no writer present or pending
		}
		t.Verify(t.Fadd(l.w, -1)) // undo; a writer is in
		for int32(t.Read(l.w)) < 0 {
			t.Compute(spinPause)
		}
	}
}

// RUnlock releases a read hold. Readers do not publish data, so no
// fence is needed.
func (l *RWLock) RUnlock(t *proc.Thread) {
	t.Verify(t.Fadd(l.w, -1))
}

// Lock acquires the lock for writing: claim the bias, then wait for
// in-flight readers to drain.
func (l *RWLock) Lock(t *proc.Thread) {
	for {
		old := int32(t.FaddSync(l.w, -writerBias))
		if old >= 0 {
			// Bias claimed; old = readers still inside. Wait for them.
			for int32(t.Read(l.w)) != -writerBias {
				t.Compute(spinPause)
			}
			return
		}
		// Another writer holds or is claiming: undo and retry.
		t.Verify(t.Fadd(l.w, writerBias))
		for int32(t.Read(l.w)) < 0 {
			t.Compute(spinPause)
		}
	}
}

// Unlock releases a write hold, publishing the writer's updates first.
func (l *RWLock) Unlock(t *proc.Thread) {
	t.Fence()
	t.Verify(t.Fadd(l.w, writerBias))
}
