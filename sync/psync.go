// Package psync provides the synchronization constructs of the PLUS
// paper, built on the machine's delayed operations exactly as Section
// 3 describes: the queue lock of Table 3-2 (fetch-and-add + hardware
// queue/dequeue + sleep/wakeup), a test-and-test-and-set spin lock, a
// sense-reversing barrier, a counting semaphore, and the eager
// element allocator of §3.3 that hides fetch-and-add latency by
// software pipelining.
//
// Hardware synchronization primitives "should not be used directly by
// users and should be either encapsulated in higher level constructs
// or directly generated and optimized by a compiler" (§2.3) — this
// package is that encapsulation.
package psync

import (
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// spinPause is the computation charged per polling iteration while
// spinning (the re-test loop of test-and-test-and-set and friends).
const spinPause sim.Cycles = 20

// QueueLock is the lock of Table 3-2: a fetch-and-add count of holders
// plus waiters, and a hardware queue of sleeping waiter thread IDs.
// Uncontended acquisition costs one delayed fetch-and-add; contended
// waiters enqueue themselves and sleep rather than spinning.
type QueueLock struct {
	m    *core.Machine
	lock memory.VAddr // holder+waiter count, 0 = free
	qp   memory.VAddr // tail control word (offset within queue page)
	dqp  memory.VAddr // head control word
}

// NewQueueLock allocates a queue lock homed on the given node: one
// page for the lock word and one page holding the waiter queue with
// its control words above the hardware wrap range.
func NewQueueLock(m *core.Machine, home mesh.NodeID) *QueueLock {
	base := m.Alloc(home, 2)
	qpage := base + memory.VAddr(memory.PageWords)
	maxQ := memory.VAddr(m.Config().Timing.MaxQueueSize)
	return &QueueLock{
		m:    m,
		lock: base,
		qp:   qpage + maxQ,
		dqp:  qpage + maxQ + 1,
	}
}

// Replicate places copies of the lock's pages on the given nodes so
// their fadd traffic observes a closer copy-list (the lock word is
// still serialized at the master).
func (l *QueueLock) Replicate(nodes ...mesh.NodeID) {
	l.m.Replicate(l.lock, nodes...)
	l.m.Replicate(l.qp, nodes...)
}

// Lock acquires the lock, sleeping if it is held — the LOCK sequence
// of Table 3-2, verbatim:
//
//	if (fadd(lock, 1) != 0) {
//	    while (queue(QP, myID) & 0x80000000);  /* spin if full */
//	    wait();
//	}
func (l *QueueLock) Lock(t *proc.Thread) {
	if t.FaddSync(l.lock, 1) != 0 {
		for t.EnqueueSync(l.qp, memory.Word(t.ID()))&memory.TopBit != 0 {
			t.Compute(spinPause) // queue full, unlikely
		}
		t.Sleep() // until the holder hands the lock over
	}
}

// Unlock releases the lock — the UNLOCK sequence of Table 3-2. A
// fence first makes the critical section's writes globally visible
// before ownership transfers (the explicit fence placement of §3.1:
// none is needed before acquiring, one is needed before releasing).
//
//	if (fadd(lock, -1) > 1) {   /* someone is waiting */
//	    while (!((k = dequeue(DQP)) & 0x80000000)); /* loop if empty */
//	    wake_up(k & 0x7fffffff);
//	}
func (l *QueueLock) Unlock(t *proc.Thread) {
	t.Fence()
	if int32(t.FaddSync(l.lock, -1)) > 1 {
		var k memory.Word
		for {
			k = t.DequeueSync(l.dqp)
			if k&memory.TopBit != 0 {
				break
			}
			// A waiter has incremented the count but not yet enqueued
			// itself; loop until its ID appears.
			t.Compute(spinPause)
		}
		t.Wake(l.m.Threads()[int(k&^memory.TopBit)])
	}
}

// SpinLock is a test-and-test-and-set lock on a fetch-and-set word:
// the construct "invented to minimize the overhead caused by the
// interference between the coherence protocol and the synchronization
// operations" (§3) and the baseline the queue lock improves on.
type SpinLock struct {
	w memory.VAddr
}

// NewSpinLock allocates a spin lock homed on the given node.
func NewSpinLock(m *core.Machine, home mesh.NodeID) *SpinLock {
	return &SpinLock{w: m.Alloc(home, 1)}
}

// Lock spins until the fetch-and-set wins the top bit.
func (l *SpinLock) Lock(t *proc.Thread) {
	for {
		if t.FetchSetSync(l.w)&memory.TopBit == 0 {
			return
		}
		// Test loop on ordinary reads (which hit a local copy when the
		// page is replicated) before retrying the RMW. Sync-annotated:
		// the reads poll a word released by Unlock's Fence+WriteSync.
		for t.ReadSync(l.w)&memory.TopBit != 0 {
			t.Compute(spinPause)
		}
	}
}

// Unlock fences and clears the lock word. The clearing write is
// sync-annotated: the fence ahead of it makes it a release (§3.1), and
// the annotation tells the race detector the lock word is a
// synchronization word, not shared data.
func (l *SpinLock) Unlock(t *proc.Thread) {
	t.Fence()
	t.WriteSync(l.w, 0)
}

// Addr returns the lock word's address (for replication).
func (l *SpinLock) Addr() memory.VAddr { return l.w }

// Barrier is a sense-reversing barrier over a fetch-and-add counter
// and a generation word.
type Barrier struct {
	n   int
	ctr memory.VAddr
	gen memory.VAddr
}

// NewBarrier allocates a barrier for n participants homed on the
// given node. Replicating the generation page on the spinning nodes
// turns the wait loop into local reads.
func NewBarrier(m *core.Machine, home mesh.NodeID, n int) *Barrier {
	base := m.Alloc(home, 1)
	return &Barrier{n: n, ctr: base, gen: base + 1}
}

// GenAddr returns the generation word's address (for replication).
func (b *Barrier) GenAddr() memory.VAddr { return b.gen }

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(t *proc.Thread) {
	g := t.ReadSync(b.gen)
	if int(t.FaddSync(b.ctr, 1)) == b.n-1 {
		// Last arrival: reset the counter, make it visible, then flip
		// the generation to release everyone. The generation write is
		// the release (fence-preceded), so it is sync-annotated, as are
		// the spin reads polling it.
		t.XchngSync(b.ctr, 0)
		t.Fence()
		t.WriteSync(b.gen, g+1)
		return
	}
	for t.ReadSync(b.gen) == g {
		t.Compute(spinPause)
	}
}

// Semaphore is a counting semaphore with sleeping waiters, the P and V
// operations the paper uses as its canonical synchronization pair.
type Semaphore struct {
	m   *core.Machine
	cnt memory.VAddr // signed count; negative = waiters
	qp  memory.VAddr
	dqp memory.VAddr
}

// NewSemaphore allocates a semaphore with the given initial count,
// homed on the given node.
func NewSemaphore(m *core.Machine, home mesh.NodeID, initial int32) *Semaphore {
	base := m.Alloc(home, 2)
	qpage := base + memory.VAddr(memory.PageWords)
	maxQ := memory.VAddr(m.Config().Timing.MaxQueueSize)
	s := &Semaphore{m: m, cnt: base, qp: qpage + maxQ, dqp: qpage + maxQ + 1}
	m.Poke(s.cnt, memory.Word(uint32(initial)))
	return s
}

// P decrements the count, sleeping when it goes negative. Per §3.1
// "there is usually no need to issue a fence before a P operation",
// and none is issued.
func (s *Semaphore) P(t *proc.Thread) {
	if int32(t.FaddSync(s.cnt, -1)) <= 0 {
		for t.EnqueueSync(s.qp, memory.Word(t.ID()))&memory.TopBit != 0 {
			t.Compute(spinPause)
		}
		t.Sleep()
	}
}

// V increments the count and wakes one sleeping waiter if any. The
// fence publishes the producer's writes before the waiter runs.
func (s *Semaphore) V(t *proc.Thread) {
	t.Fence()
	if int32(t.FaddSync(s.cnt, 1)) < 0 {
		var k memory.Word
		for {
			k = t.DequeueSync(s.dqp)
			if k&memory.TopBit != 0 {
				break
			}
			t.Compute(spinPause)
		}
		t.Wake(s.m.Threads()[int(k&^memory.TopBit)])
	}
}

// EagerIndex hands out consecutive indices from a shared
// fetch-and-add counter while hiding its latency: each per-thread
// session keeps one request permanently in flight, so Next usually
// costs only a result read. This is the §3.3 software-pipelined
// "pointer to a free element" primitive ("the first time it is
// called, it retrieves two elements").
type EagerIndex struct {
	ctr memory.VAddr
}

// NewEagerIndex allocates the shared counter homed on the given node.
func NewEagerIndex(m *core.Machine, home mesh.NodeID) *EagerIndex {
	return &EagerIndex{ctr: m.Alloc(home, 1)}
}

// Session starts a per-thread allocation session.
func (e *EagerIndex) Session() *EagerSession {
	return &EagerSession{e: e}
}

// EagerSession is one thread's pipelined view of an EagerIndex. Not
// shareable between threads.
type EagerSession struct {
	e       *EagerIndex
	pending proc.Handle
	started bool
}

// Next returns the next index. The first call issues two
// fetch-and-adds (retrieving two elements); every later call verifies
// the in-flight one and eagerly issues the next.
func (s *EagerSession) Next(t *proc.Thread) memory.Word {
	if !s.started {
		s.pending = t.Fadd(s.e.ctr, 1)
		s.started = true
	}
	v := t.Verify(s.pending)
	s.pending = t.Fadd(s.e.ctr, 1)
	return v
}

// Close retires the in-flight request, freeing its delayed-operations
// cache slot. The prefetched index is discarded (the cost of eager
// allocation).
func (s *EagerSession) Close(t *proc.Thread) {
	if s.started {
		t.Verify(s.pending)
		s.started = false
	}
}
