package psync

import (
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

func TestRWLockWritersExclusive(t *testing.T) {
	m := newMachine(t, 4, 1)
	l := NewRWLock(m, 0)
	x := m.Alloc(1, 1)
	const perThread = 6
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < perThread; i++ {
				l.Lock(th)
				raceyIncrement(th, x)
				l.Unlock(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

func TestRWLockReadersShare(t *testing.T) {
	// Readers must overlap: total elapsed with 4 concurrent long reads
	// must be far below 4x a single read's span.
	m := newMachine(t, 4, 1)
	l := NewRWLock(m, 0)
	const hold = 20000
	for n := 0; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			l.RLock(th)
			th.Compute(hold)
			l.RUnlock(th)
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*hold {
		t.Fatalf("readers serialized: elapsed %d for 4 concurrent %d-cycle reads", elapsed, hold)
	}
}

func TestRWLockWriterExcludesReaders(t *testing.T) {
	m := newMachine(t, 4, 1)
	l := NewRWLock(m, 0)
	data := m.Alloc(0, 1)
	m.Poke(data, 1)
	torn := false
	// Writer updates two words non-atomically under the lock; readers
	// must always see a consistent pair.
	m.Spawn(0, func(th *proc.Thread) {
		for i := 2; i < 8; i++ {
			l.Lock(th)
			th.Write(data, 0) // invariant broken while writing
			th.Compute(2000)
			th.Write(data, memory.Word(uint32(i)))
			l.Unlock(th)
			th.Compute(500)
		}
	})
	for n := 1; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < 8; i++ {
				l.RLock(th)
				if th.Read(data) == 0 {
					torn = true
				}
				l.RUnlock(th)
				th.Compute(700)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("a reader observed the writer's intermediate state")
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	// A writer arriving into a stream of readers must eventually get
	// in (machine terminates — deadlock detection would fire
	// otherwise).
	m := newMachine(t, 4, 1)
	l := NewRWLock(m, 0)
	wrote := false
	m.Spawn(0, func(th *proc.Thread) {
		th.Compute(500)
		l.Lock(th)
		wrote = true
		l.Unlock(th)
	})
	for n := 1; n < 4; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < 10; i++ {
				l.RLock(th)
				th.Compute(sim.Cycles(300))
				l.RUnlock(th)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("writer never acquired")
	}
}
