package par

import (
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/proc"
	"plus/internal/sim"
)

func newMachine(t *testing.T, w, h int) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.DefaultConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForCoversRangeOnce(t *testing.T) {
	m := newMachine(t, 2, 2)
	out := m.Alloc(0, 1)
	For(m, Nodes(4), 100, func(th *proc.Thread, i int) {
		th.Verify(th.Fadd(out+memory.VAddr(i%1024), 1))
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := m.Peek(out + memory.VAddr(i)); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForBarrierBeforeReturn(t *testing.T) {
	// All iterations' writes must be globally visible when Run returns
	// (the loop fences and barriers).
	m := newMachine(t, 2, 2)
	data := m.Alloc(0, 1)
	m.Replicate(data, 3)
	For(m, Nodes(4), 64, func(th *proc.Thread, i int) {
		th.Write(data+memory.VAddr(i), memory.Word(uint32(i*i)))
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Kernel().CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := m.Peek(data + memory.VAddr(i)); got != memory.Word(uint32(i*i)) {
			t.Fatalf("data[%d] = %d", i, got)
		}
	}
}

func TestForDynamicBalancesIrregularWork(t *testing.T) {
	// Iteration costs are wildly skewed; dynamic scheduling should
	// finish much faster than static blocks.
	cost := func(i int) sim.Cycles {
		if i < 8 {
			return 20000 // a few huge iterations at the front
		}
		return 50
	}
	run := func(dynamic bool) sim.Cycles {
		m := newMachine(t, 2, 2)
		body := func(th *proc.Thread, i int) { th.Compute(cost(i)) }
		if dynamic {
			ForDynamic(m, Nodes(4), 64, 2, body)
		} else {
			For(m, Nodes(4), 64, body)
		}
		el, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	static := run(false)
	dynamic := run(true)
	if dynamic >= static {
		t.Fatalf("dynamic (%d) not faster than static (%d) on skewed work", dynamic, static)
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	m := newMachine(t, 2, 2)
	visited := make([]int, 77)
	ForDynamic(m, Nodes(4), 77, 3, func(th *proc.Thread, i int) {
		visited[i]++
		th.Compute(30)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("iteration %d ran %d times", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	m := newMachine(t, 2, 2)
	acc := Reduce(m, Nodes(4), 100, func(th *proc.Thread, i int) int32 {
		th.Compute(10)
		return int32(i)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int32(m.Peek(acc)); got != 99*100/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestGroupForkJoin(t *testing.T) {
	m := newMachine(t, 2, 1)
	g := NewGroup(m)
	ran := [2]bool{}
	g.Go(0, func(th *proc.Thread) { th.Compute(100); ran[0] = true })
	g.Go(1, func(th *proc.Thread) { th.Compute(200); ran[1] = true })
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran[0] || !ran[1] {
		t.Fatal("bodies did not run")
	}
	if len(g.Threads()) != 2 {
		t.Fatal("threads not tracked")
	}
}

func TestValidation(t *testing.T) {
	m := newMachine(t, 2, 1)
	for _, f := range []func(){
		func() { For(m, nil, 10, nil) },
		func() { ForDynamic(m, nil, 10, 1, nil) },
		func() { Reduce(m, nil, 10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty processor set accepted")
				}
			}()
			f()
		}()
	}
}
