// Package par is the parallel-programming runtime layer over the PLUS
// machine: the kind of "software environment" the paper defers to its
// companion report ([4] Bisiani et al.) — structured parallelism built
// on the hardware primitives so applications need not touch queues and
// counters directly.
//
// It provides:
//
//   - For: a parallel loop over [0, n) with block scheduling across a
//     set of processors and a barrier at the end;
//   - ForDynamic: the same loop with dynamic chunk self-scheduling
//     through a shared fetch-and-add index (the classic fetch-and-add
//     loop of the era, latency-hidden with the eager allocator);
//   - Reduce: a parallel sum via per-node partials and fetch-and-add
//     combination;
//   - Group.Go / Group.Wait: fork-join over explicit nodes.
//
// Everything is deterministic under the simulator and composes with
// plus/sync and plus/work.
package par

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	psync "plus/sync"
)

// Group is a fork-join scope: spawn bodies on nodes, then Wait for all
// of them from the simulation driver (Run).
type Group struct {
	m       *core.Machine
	threads []*proc.Thread
}

// NewGroup creates a fork-join scope on the machine.
func NewGroup(m *core.Machine) *Group { return &Group{m: m} }

// Go forks body onto node.
func (g *Group) Go(node mesh.NodeID, body func(*proc.Thread)) {
	g.threads = append(g.threads, g.m.Spawn(node, body))
}

// Run executes the machine until every forked body completes and
// returns the elapsed time.
func (g *Group) Run() (sim.Cycles, error) { return g.m.Run() }

// Threads returns the forked threads.
func (g *Group) Threads() []*proc.Thread { return g.threads }

// For runs body(i) for every i in [0, n), block-partitioned over the
// given processors, with an implicit fence+barrier at the end of each
// processor's block — the static-schedule parallel loop.
//
// It must be called from the setup phase (before Machine.Run): it
// spawns one thread per processor and returns immediately; the loop
// executes when the machine runs.
func For(m *core.Machine, procs []mesh.NodeID, n int, body func(t *proc.Thread, i int)) {
	if len(procs) == 0 || n < 0 {
		panic("par: For needs processors and a non-negative bound")
	}
	barrier := psync.NewBarrier(m, procs[0], len(procs))
	for pi, node := range procs {
		pi := pi
		m.SpawnNamed(node, fmt.Sprintf("par.for%d", pi), func(t *proc.Thread) {
			lo := pi * n / len(procs)
			hi := (pi + 1) * n / len(procs)
			for i := lo; i < hi; i++ {
				body(t, i)
			}
			t.Fence()
			barrier.Wait(t)
		})
	}
}

// ForDynamic runs body(i) for every i in [0, n) with dynamic
// self-scheduling in chunks of the given size: workers draw chunk
// start indices from a shared fetch-and-add counter (latency-hidden by
// the eager allocator of §3.3), so irregular iteration costs balance
// automatically.
func ForDynamic(m *core.Machine, procs []mesh.NodeID, n, chunk int, body func(t *proc.Thread, i int)) {
	if len(procs) == 0 || n < 0 {
		panic("par: ForDynamic needs processors and a non-negative bound")
	}
	if chunk < 1 {
		chunk = 1
	}
	idx := psync.NewEagerIndex(m, procs[0])
	barrier := psync.NewBarrier(m, procs[0], len(procs))
	for pi, node := range procs {
		pi := pi
		m.SpawnNamed(node, fmt.Sprintf("par.dyn%d", pi), func(t *proc.Thread) {
			s := idx.Session()
			for {
				c := int(s.Next(t))
				lo := c * chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(t, i)
				}
			}
			s.Close(t)
			t.Fence()
			barrier.Wait(t)
		})
	}
}

// Reduce computes the sum of value(i) over [0, n) in parallel: each
// processor accumulates a local partial in a register, then combines
// it into a shared cell with one fetch-and-add. The final sum is at
// the returned address after the machine runs.
func Reduce(m *core.Machine, procs []mesh.NodeID, n int, value func(t *proc.Thread, i int) int32) memory.VAddr {
	if len(procs) == 0 || n < 0 {
		panic("par: Reduce needs processors and a non-negative bound")
	}
	acc := m.Alloc(procs[0], 1)
	for pi, node := range procs {
		pi := pi
		m.SpawnNamed(node, fmt.Sprintf("par.red%d", pi), func(t *proc.Thread) {
			lo := pi * n / len(procs)
			hi := (pi + 1) * n / len(procs)
			var partial int32
			for i := lo; i < hi; i++ {
				partial += value(t, i)
			}
			t.Verify(t.Fadd(acc, partial))
		})
	}
	return acc
}

// Nodes returns the first p node IDs — the common "use processors
// 0..p-1" helper.
func Nodes(p int) []mesh.NodeID {
	out := make([]mesh.NodeID, p)
	for i := range out {
		out[i] = mesh.NodeID(i)
	}
	return out
}
