# Reproduction of "PLUS: A Distributed Shared-Memory System" (ISCA 1990).

GO ?= go

.PHONY: all check build test race bench bench-json trace-smoke race-smoke scale scale-smoke kvserve-smoke vet fmt lint experiments experiments-quick golden examples clean

all: check

# The default gate: everything a PR must keep green. The shard
# equivalence tests ride in test/race, bench-json's -exp all includes
# the scale experiment's quick leg (which fails loudly if any sharded
# run diverges from its serial twin), scale-smoke reruns that sweep
# full-featured (contention + tracing at 4 shards), and race-smoke
# runs the happens-before detection corpus end to end.
check: build test race lint bench-json trace-smoke race-smoke scale-smoke kvserve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite under the race detector (short mode keeps it a few minutes).
race:
	$(GO) test -race -short ./...

# The full test log the repository ships with.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Quick sweeps through the parallel runner with self-timing: writes
# BENCH_<date>.json (per-experiment wall-clock, point count, workers,
# shard count) so the worker-pool speedup stays visible and trackable
# over time. Runs at 4 shard engines with tracing on, so the sweeps
# that honor -shards (the SSSP figures and the scale experiment's
# quick leg) exercise the full-featured sharded machine — contention,
# observers, shard engines together — on every check.
bench-json:
	$(GO) run ./cmd/plusbench -quick -exp all -shards 4 \
		-trace /tmp/plus-bench-trace.json \
		-timing BENCH_$$(date +%Y-%m-%d).json >/dev/null
	@rm -f /tmp/plus-bench-trace.json

# Full-featured sharded scale smoke: the figure2-1-scale quick sweep
# with link contention and per-point tracing enabled at 4 shards. The
# sweep's equivalence check exits nonzero if the sharded row's cycles,
# messages or relaxations diverge from the serial row's, pinning the
# contention + observer gate lifts end to end.
scale-smoke:
	$(GO) run ./cmd/plusbench -quick -exp figure2-1-scale -shards 4 \
		-trace /tmp/plus-scale-smoke.json >/dev/null
	@rm -f /tmp/plus-scale-smoke.json

# Full sharded-engine scale sweep: Figure 2-1's workload at 8x8,
# 16x16 and 32x32 over shard counts 1..16, points run sequentially so
# wall-clock speedup is honest. Exits nonzero if any sharded row's
# elapsed cycles, messages or relaxations diverge from the serial row.
scale:
	$(GO) run ./cmd/plusbench -exp figure2-1-scale

# Quick instrumented run: exercises the structured-event layer end to
# end (plusbench validates the Chrome trace JSON round-trips through
# encoding/json before writing it, exiting nonzero otherwise) and
# prints the latency histograms + stall summary to /dev/null.
trace-smoke:
	$(GO) run ./cmd/plusbench -quick -exp figure2-1 -parallel 2 \
		-trace /tmp/plus-trace-smoke.json -sample 5000 -hist >/dev/null
	@rm -f /tmp/plus-trace-smoke.json

# Happens-before race-detection smoke: runs the registered corpus
# (racy pair, fenced pair, SOR, SSSP) under the data-access event
# layer. plusbench exits nonzero iff a racy program goes undetected or
# a clean one is misflagged — either is a detector regression.
race-smoke:
	$(GO) run ./cmd/plusbench -races >/dev/null

# Serving-workload smoke: the open-loop Zipfian record-store sweep's
# quick leg (4x4, skews 0 and 1.2, all three placements) at 4 shard
# engines with contention on. Every point self-validates its
# fetch-and-add op counters against the generators' tallies, so the
# target exits nonzero if the serving path loses an update.
kvserve-smoke:
	$(GO) run ./cmd/plusbench -quick -exp kvserve-sweep -shards 4 >/dev/null

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Lint fails on any vet finding or unformatted file.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Regenerate every table and figure of the paper at full size.
experiments:
	$(GO) run ./cmd/plusbench | tee bench_results_full.txt

experiments-quick:
	$(GO) run ./cmd/plusbench -quick

# Re-pin the golden files after an intentional timing-model change.
golden:
	UPDATE_GOLDEN=1 $(GO) test ./experiments -run TestGolden

examples:
	@for e in quickstart shortestpath beamsearch locks prodcons migration parloop; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	rm -f test_output.txt bench_output.txt
