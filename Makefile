# Reproduction of "PLUS: A Distributed Shared-Memory System" (ISCA 1990).

GO ?= go

.PHONY: all build test bench vet fmt experiments experiments-quick golden examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full test log the repository ships with.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Regenerate every table and figure of the paper at full size.
experiments:
	$(GO) run ./cmd/plusbench | tee bench_results_full.txt

experiments-quick:
	$(GO) run ./cmd/plusbench -quick

# Re-pin the golden files after an intentional timing-model change.
golden:
	UPDATE_GOLDEN=1 $(GO) test ./experiments -run TestGolden

examples:
	@for e in quickstart shortestpath beamsearch locks prodcons migration parloop; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	rm -f test_output.txt bench_output.txt
