// Command plussim runs one workload on a simulated PLUS machine and
// prints timing and traffic statistics.
//
// Usage:
//
//	plussim -workload sssp    [-procs 16] [-copies 3] [-vertices 1024]
//	plussim -workload beam    [-procs 16] [-style delayed|blocking|cs] [-switch-cost 40]
//	plussim -workload prodsys [-procs 8]  [-facts 1024] [-rules 2048]
//	plussim -workload synth   [-procs 8]  [-local 70] [-writes 30]
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"plus/apps/beam"
	"plus/apps/prodsys"
	"plus/apps/sor"
	"plus/apps/sssp"
	"plus/apps/synth"
	"plus/internal/sim"
)

func main() {
	var (
		workload = flag.String("workload", "sssp", "sssp, beam, prodsys, sor or synth")
		procs    = flag.Int("procs", 16, "participating processors")
		meshW    = flag.Int("mesh-w", 0, "mesh width (default: fits procs)")
		meshH    = flag.Int("mesh-h", 0, "mesh height")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		copies   = flag.Int("copies", 1, "replication level for shared data")
		validate = flag.Bool("validate", true, "check against the sequential reference")
		stats    = flag.Bool("stats", false, "print the per-node counter report")

		vertices = flag.Int("vertices", 1024, "sssp: graph vertices")
		degree   = flag.Int("degree", 4, "sssp: average out-degree")

		layers     = flag.Int("layers", 24, "beam: HMM layers")
		states     = flag.Int("states", 64, "beam: states per layer")
		style      = flag.String("style", "delayed", "beam: blocking, delayed or cs")
		switchCost = flag.Uint64("switch-cost", 40, "beam: context-switch cost for -style cs")
		beamWidth  = flag.Uint64("beam", 0, "beam: pruning width (0 = exact search)")

		facts = flag.Int("facts", 1024, "prodsys: working-memory size")
		rules = flag.Int("rules", 2048, "prodsys: rule count")

		grid  = flag.Int("grid", 64, "sor: grid side")
		iters = flag.Int("iters", 4, "sor: red+black sweeps")
		halos = flag.Bool("halos", true, "sor: replicate boundary pages")

		ops   = flag.Int("ops", 500, "synth: references per processor")
		local = flag.Int("local", 70, "synth: %% local references")
		wfrac = flag.Int("writes", 30, "synth: %% writes")
	)
	flag.Parse()

	w, h := *meshW, *meshH
	if w == 0 || h == 0 {
		w, h = meshFor(*procs)
	}

	switch *workload {
	case "sssp":
		res, err := sssp.Run(sssp.Config{
			MeshW: w, MeshH: h, Procs: *procs,
			Vertices: *vertices, Degree: *degree, Seed: *seed,
			Copies: *copies, Validate: *validate,
		})
		fail(err)
		fmt.Printf("sssp: %d procs, %d vertices, %d copies\n", *procs, *vertices, *copies)
		fmt.Printf("  elapsed      %d cycles (%.2f ms at 25 MHz)\n", res.Elapsed, ms(res.Elapsed))
		fmt.Printf("  utilization  %.3f\n", res.Utilization)
		fmt.Printf("  relaxations  %d\n", res.Relaxations)
		fmt.Printf("  reads  L/R   %.2f\n", res.ReadRatio)
		fmt.Printf("  writes L/R   %.2f\n", res.WriteRatio)
		fmt.Printf("  messages     %d (%d updates, total/update %.2f)\n", res.Messages, res.Updates, res.UpdateRatio)
		if *stats {
			fmt.Print("\n", res.Report)
		}
	case "beam":
		st := beam.Delayed
		var cost sim.Cycles
		switch *style {
		case "blocking":
			st = beam.Blocking
		case "delayed":
			st = beam.Delayed
		case "cs":
			st = beam.ContextSwitch
			cost = sim.Cycles(*switchCost)
		default:
			fail(fmt.Errorf("unknown beam style %q", *style))
		}
		validateBeam := *validate && *beamWidth == 0 // pruning is approximate
		res, err := beam.Run(beam.Config{
			MeshW: w, MeshH: h, Procs: *procs,
			Layers: *layers, States: *states, Branch: 3,
			Style: st, SwitchCost: cost, Beam: uint32(*beamWidth),
			Validate: validateBeam,
		})
		fail(err)
		fmt.Printf("beam: %d procs, %dx%d lattice, style %s\n", *procs, *layers, *states, st)
		fmt.Printf("  elapsed      %d cycles (%.2f ms at 25 MHz)\n", res.Elapsed, ms(res.Elapsed))
		fmt.Printf("  utilization  %.3f\n", res.Utilization)
		fmt.Printf("  processed    %d vertices (%d pruned)\n", res.Processed, res.Pruned)
		if *stats {
			fmt.Print("\n", res.Report)
		}
	case "prodsys":
		res, err := prodsys.Run(prodsys.Config{
			MeshW: w, MeshH: h, Procs: *procs,
			Facts: *facts, Rules: *rules, Seed: *seed,
			Copies: *copies, Validate: *validate,
		})
		fail(err)
		fmt.Printf("prodsys: %d procs, %d facts, %d rules\n", *procs, *facts, *rules)
		fmt.Printf("  elapsed      %d cycles (%.2f ms at 25 MHz)\n", res.Elapsed, ms(res.Elapsed))
		fmt.Printf("  utilization  %.3f\n", res.Utilization)
		fmt.Printf("  fired        %d rules, %d facts derived\n", res.Fired, res.Derived)
		if *stats {
			fmt.Print("\n", res.Report)
		}
	case "sor":
		res, err := sor.Run(sor.Config{
			MeshW: w, MeshH: h, Procs: *procs,
			N: *grid, Iters: *iters,
			ReplicateBoundaries: *halos, Validate: *validate,
		})
		fail(err)
		fmt.Printf("sor: %d procs, %dx%d grid, %d sweeps, halos=%v\n", *procs, *grid, *grid, *iters, *halos)
		fmt.Printf("  elapsed      %d cycles (%.2f ms at 25 MHz)\n", res.Elapsed, ms(res.Elapsed))
		fmt.Printf("  utilization  %.3f\n", res.Utilization)
		fmt.Printf("  updates      %d stencil applications\n", res.Updates)
		if *stats {
			fmt.Print("\n", res.Report)
		}
	case "synth":
		res, err := synth.Run(synth.Config{
			MeshW: w, MeshH: h, Procs: *procs,
			OpsPerProc: *ops, LocalFrac: *local, WriteFrac: *wfrac, Seed: *seed,
			Copies: *copies,
		})
		fail(err)
		fmt.Printf("synth: %d procs, %d ops each, %d%% local, %d%% writes\n", *procs, *ops, *local, *wfrac)
		fmt.Printf("  elapsed      %d cycles (%.2f ms at 25 MHz)\n", res.Elapsed, ms(res.Elapsed))
		fmt.Printf("  utilization  %.3f\n", res.Utilization)
		fmt.Printf("  throughput   %.4f refs/cycle\n", res.Throughput)
		fmt.Printf("  messages     %d (%d updates)\n", res.Messages, res.Updates)
		if *stats {
			fmt.Print("\n", res.Report)
		}
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
}

func ms(c sim.Cycles) float64 { return float64(c) * 40 / 1e6 }

func meshFor(p int) (int, int) {
	switch {
	case p <= 1:
		return 1, 1
	case p <= 2:
		return 2, 1
	case p <= 4:
		return 2, 2
	case p <= 8:
		return 4, 2
	case p <= 16:
		return 4, 4
	case p <= 32:
		return 8, 4
	default:
		return 8, 8
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "plussim:", err)
		os.Exit(1)
	}
}
