// Command plusbench regenerates every table and figure of the PLUS
// paper's evaluation, plus the ablation sweeps, through the
// experiments registry.
//
// Usage:
//
//	plusbench [-exp all|ablations|<name>[,<name>...]] [-quick] [-json]
//	          [-parallel N] [-chart] [-max-procs N] [-timing FILE] [-list]
//
// Every experiment is a sweep of independent simulation points run on
// a worker pool of -parallel goroutines (default GOMAXPROCS); stdout
// is byte-identical for any -parallel value. -json replaces the
// tables with one JSON array of {experiment, title, points, rows}
// objects. -timing writes a BENCH_<date>.json-style self-timing
// report (per-experiment wall-clock, point count, workers) so the
// parallel speedup stays trackable.
//
// Results print to stdout; EXPERIMENTS.md records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"plus/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, ablations, or comma-separated registry names (see -list)")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast run")
	maxProcs := flag.Int("max-procs", 0, "cap the processor sweep (0 = experiment default)")
	parallel := flag.Int("parallel", 0, "sweep-point worker pool size (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit rows as a JSON array instead of tables")
	chart := flag.Bool("chart", false, "render the figures as ASCII charts as well")
	timing := flag.String("timing", "", "write a JSON self-timing report to this file")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registered() {
			fmt.Printf("%-24s %s\n", e.Name, e.Title)
		}
		return
	}

	sel, err := experiments.Select(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, MaxProcs: *maxProcs, Workers: *parallel}
	report := experiments.Report{
		Date:       time.Now().Format("2006-01-02"),
		Quick:      *quick,
		Workers:    opts.WorkerCount(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var results []*experiments.Result
	start := time.Now()
	for _, e := range sel {
		t0 := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, experiments.Timing{
			Experiment: e.Name,
			Points:     res.Points,
			Workers:    report.Workers,
			WallMS:     float64(time.Since(t0).Microseconds()) / 1e3,
		})
		if *jsonOut {
			results = append(results, res)
			continue
		}
		fmt.Println(res.Table)
		if *chart && res.Chart != "" {
			fmt.Println(res.Chart)
		}
	}
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1e3

	if *jsonOut {
		enc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: marshal: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(enc))
	}
	if *timing != "" {
		enc, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: marshal timing: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*timing, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: write timing: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plusbench: %d experiment(s), %d worker(s), %.0f ms total -> %s\n",
			len(report.Experiments), report.Workers, report.TotalWallMS, *timing)
	}
}
