// Command plusbench regenerates every table and figure of the PLUS
// paper's evaluation, plus the ablation sweeps, printing the same rows
// the paper reports.
//
// Usage:
//
//	plusbench [-exp all|table2-1|figure2-1|table3-1|figure3-1|costs|ablations|faults] [-quick] [-full-procs N]
//
// -faults runs only the unreliable-network sweep and additionally
// emits its rows as JSON.
//
// Results print to stdout; EXPERIMENTS.md records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"plus/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table2-1, figure2-1, table3-1, figure3-1, costs, ablations, faults")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast run")
	maxProcs := flag.Int("max-procs", 0, "cap the processor sweep (0 = experiment default)")
	chart := flag.Bool("chart", false, "render the figures as ASCII charts as well")
	faults := flag.Bool("faults", false, "run only the fault sweep and also emit its rows as JSON")
	flag.Parse()
	if *faults {
		*exp = "faults"
	}

	run := func(name string, fn func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table2-1", func() (string, error) {
		rows, err := experiments.Table21(experiments.Table21Config{Quick: *quick})
		if err != nil {
			return "", err
		}
		return experiments.FormatTable21(rows), nil
	})
	run("figure2-1", func() (string, error) {
		pts, err := experiments.Figure21(experiments.Fig21Config{Quick: *quick, MaxProcs: *maxProcs})
		if err != nil {
			return "", err
		}
		out := experiments.FormatFigure21(pts)
		if *chart {
			out += "\n" + experiments.ChartFigure21(pts)
		}
		return out, nil
	})
	run("table3-1", func() (string, error) {
		rows, err := experiments.Table31()
		if err != nil {
			return "", err
		}
		return experiments.FormatTable31(rows), nil
	})
	run("figure3-1", func() (string, error) {
		pts, err := experiments.Figure31(experiments.Fig31Config{Quick: *quick, MaxProcs: *maxProcs})
		if err != nil {
			return "", err
		}
		out := experiments.FormatFigure31(pts)
		if *chart {
			out += "\n" + experiments.ChartFigure31(pts)
		}
		return out, nil
	})
	run("costs", func() (string, error) {
		rows, err := experiments.Section31Costs()
		if err != nil {
			return "", err
		}
		return experiments.FormatCosts(rows), nil
	})
	run("ablations", func() (string, error) {
		out := ""
		for _, a := range []struct {
			title string
			fn    func(bool) ([]experiments.AblationRow, error)
		}{
			{"Ablation: explicit fence vs fence-at-every-sync", experiments.AblationFence},
			{"Ablation: write-update vs write-invalidate", experiments.AblationInvalidate},
			{"Ablation: pending-writes cache depth", experiments.AblationPendingWrites},
			{"Ablation: delayed-operations cache depth", experiments.AblationDelayedSlots},
			{"Ablation: network contention model", experiments.AblationContention},
			{"Ablation: competitive replication threshold", experiments.AblationCompetitive},
			{"Extension: PLUS vs software shared virtual memory (§4)", experiments.ExtensionSoftwareDSM},
			{"Extension: profile-guided placement (§2.4 second mode)", experiments.ExtensionProfilePlacement},
		} {
			rows, err := a.fn(*quick)
			if err != nil {
				return "", fmt.Errorf("%s: %w", a.title, err)
			}
			out += experiments.FormatAblation(a.title, rows) + "\n"
		}
		return out, nil
	})
	run("faults", func() (string, error) {
		rows, err := experiments.FaultSweep(experiments.FaultSweepConfig{Quick: *quick})
		if err != nil {
			return "", err
		}
		out := experiments.FormatFaultSweep(rows)
		if *faults {
			j, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return "", err
			}
			out += "\n" + string(j)
		}
		return out, nil
	})
}
