// Command plusbench regenerates every table and figure of the PLUS
// paper's evaluation, plus the ablation sweeps, through the
// experiments registry.
//
// Usage:
//
//	plusbench [-exp all|ablations|<name>[,<name>...]] [-quick] [-json]
//	          [-parallel N] [-shards K] [-chart] [-max-procs N] [-timing FILE] [-list]
//	          [-trace FILE] [-trace-window A:B] [-trace-events N]
//	          [-sample N] [-hist]
//	plusbench -compare OLD.json NEW.json [-threshold F]
//	plusbench -races [-json] [-trace FILE]
//
// Every experiment is a sweep of independent simulation points run on
// a worker pool of -parallel goroutines (default GOMAXPROCS); stdout
// is byte-identical for any -parallel value. -shards K additionally
// runs each supporting point's machine on K shard engines —
// parallelism inside one simulation rather than across points, with
// byte-identical results either way. -json replaces the tables with
// one JSON array of {experiment, title, points, rows} objects. -timing writes a BENCH_<date>.json-style self-timing
// report (per-experiment wall-clock, point count, workers) so the
// parallel speedup stays trackable.
//
// -trace instruments every sweep point with the structured-event
// layer and writes one Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing; one track group per point, one process per node
// and per link) covering all points. -trace-window A:B keeps only
// events in cycles [A, B]; -trace-events sizes the per-point event
// ring; -sample adds time-series counters every N cycles. -hist
// prints the merged latency histograms (remote reads, write acks, RMW
// round trips, per-hop queueing) and a folded stall summary.
//
// -compare diffs two -timing reports and exits 1 when any experiment
// regressed in wall-clock by more than -threshold (default 10%).
//
// -races runs the registered race-detection corpus (experiments.
// RacePrograms) with the data-access event layer on and prints each
// program's happens-before report in name order — deterministic and
// identical for any shard count. -json emits the outcomes as a JSON
// array instead; -trace additionally exports every corpus run as a
// Chrome trace with the detected races on a per-run annotation track.
// Exit status is non-zero iff any program misses its declared verdict
// (a racy program undetected, or a clean one misflagged).
//
// Results print to stdout; EXPERIMENTS.md records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"plus/experiments"
	"plus/internal/sim"
	"plus/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, ablations, or comma-separated registry names (see -list)")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast run")
	maxProcs := flag.Int("max-procs", 0, "cap the processor sweep (0 = experiment default)")
	parallel := flag.Int("parallel", 0, "sweep-point worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "shard engines per machine where supported (0/1 = serial; orthogonal to -parallel)")
	jsonOut := flag.Bool("json", false, "emit rows as a JSON array instead of tables")
	chart := flag.Bool("chart", false, "render the figures as ASCII charts as well")
	timing := flag.String("timing", "", "write a JSON self-timing report to this file")
	list := flag.Bool("list", false, "list registered experiments and exit")
	traceOut := flag.String("trace", "", "instrument every sweep point and write a Chrome trace-event JSON to this file")
	traceWindow := flag.String("trace-window", "", "record only events in cycles A:B (empty = whole run)")
	traceEvents := flag.Int("trace-events", 0, "per-point event ring size (0 = default)")
	sample := flag.Int("sample", 0, "sample per-link utilization and per-node stalls every N cycles (0 = off)")
	hist := flag.Bool("hist", false, "print merged latency histograms and a stall summary (implies instrumentation)")
	compare := flag.Bool("compare", false, "compare two -timing reports: plusbench -compare OLD.json NEW.json")
	threshold := flag.Float64("threshold", 0.10, "wall-clock regression threshold for -compare (fraction)")
	races := flag.Bool("races", false, "run the race-detection corpus and print happens-before reports")
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *threshold)
		return
	}

	if *races {
		runRaces(*jsonOut, *traceOut)
		return
	}

	if *list {
		for _, e := range experiments.Registered() {
			fmt.Printf("%-24s %s\n", e.Name, e.Title)
		}
		return
	}

	sel, err := experiments.Select(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, MaxProcs: *maxProcs, Workers: *parallel, Shards: *shards}
	if *traceOut != "" || *hist {
		ocfg := stats.ObserveConfig{
			Events:      *traceEvents,
			SampleEvery: sim.Cycles(*sample),
		}
		if *traceWindow != "" {
			a, b, err := parseWindow(*traceWindow)
			if err != nil {
				fmt.Fprintf(os.Stderr, "plusbench: -trace-window: %v\n", err)
				os.Exit(2)
			}
			ocfg.WindowStart, ocfg.WindowEnd = a, b
		}
		opts.Observe = experiments.NewObservation(ocfg)
	}
	report := experiments.Report{
		Date:       time.Now().Format("2006-01-02"),
		Quick:      *quick,
		Workers:    opts.WorkerCount(),
		Shards:     opts.EffectiveShards(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var results []*experiments.Result
	start := time.Now()
	for _, e := range sel {
		t0 := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, experiments.Timing{
			Experiment: e.Name,
			Points:     res.Points,
			Workers:    report.Workers,
			WallMS:     float64(time.Since(t0).Microseconds()) / 1e3,
		})
		if *jsonOut {
			results = append(results, res)
			continue
		}
		fmt.Println(res.Table)
		if *chart && res.Chart != "" {
			fmt.Println(res.Chart)
		}
	}
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1e3

	if *jsonOut {
		enc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: marshal: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(enc))
	}
	if opts.Observe != nil {
		writeObservation(opts.Observe, *traceOut, *hist)
	}
	if *timing != "" {
		enc, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: marshal timing: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*timing, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: write timing: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plusbench: %d experiment(s), %d worker(s), %.0f ms total -> %s\n",
			len(report.Experiments), report.Workers, report.TotalWallMS, *timing)
	}
}

// writeObservation exports the instrumented sweep: the Chrome trace
// JSON (validated to round-trip through encoding/json before it is
// written) and, with -hist, the merged latency histograms plus the
// folded stall summary on stdout.
func writeObservation(ob *experiments.Observation, traceOut string, hist bool) {
	runs := ob.Runs()
	if traceOut != "" {
		data, err := stats.ChromeTrace(runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: trace export: %v\n", err)
			os.Exit(1)
		}
		n, err := stats.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: trace validation: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plusbench: %d trace event(s) from %d run(s) -> %s\n",
			n, len(runs), traceOut)
	}
	if hist {
		m := ob.Metrics()
		fmt.Println(m.Render())
		fmt.Println(stats.StallSummary(runs))
	}
}

// runRaces implements -races: run the corpus, render each report (or
// the JSON outcome array), optionally export annotated traces, and
// exit non-zero when any program misses its declared verdict.
func runRaces(jsonOut bool, traceOut string) {
	outcomes, ok, err := experiments.RunRaceCorpus()
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: races: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		enc, err := json.MarshalIndent(outcomes, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: marshal races: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(enc))
	} else {
		for _, o := range outcomes {
			verdict := "PASS"
			if !o.Pass {
				verdict = "FAIL"
			}
			fmt.Printf("[%s] expected %s\n%s", verdict, o.Expect, o.Report.Format())
		}
	}
	if traceOut != "" {
		runs := make([]stats.ObservedRun, 0, len(outcomes))
		for _, o := range outcomes {
			runs = append(runs, o.Trace)
		}
		data, err := stats.ChromeTrace(runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: trace export: %v\n", err)
			os.Exit(1)
		}
		n, err := stats.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: trace validation: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "plusbench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plusbench: %d trace event(s) from %d run(s) -> %s\n",
			n, len(runs), traceOut)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "plusbench: race corpus verdict mismatch")
		os.Exit(1)
	}
}

// runCompare implements -compare OLD.json NEW.json.
func runCompare(args []string, threshold float64) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "plusbench: -compare needs exactly two report files: OLD.json NEW.json")
		os.Exit(2)
	}
	oldJSON, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
		os.Exit(2)
	}
	newJSON, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: %v\n", err)
		os.Exit(2)
	}
	diff, regressed, err := experiments.CompareReports(oldJSON, newJSON, threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plusbench: compare: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(diff)
	if regressed {
		fmt.Fprintf(os.Stderr, "plusbench: wall-clock regression over %.0f%% detected\n", threshold*100)
		os.Exit(1)
	}
}

// parseWindow parses "A:B" cycle bounds; either side may be empty
// (A defaults to 0, B to the end of the run).
func parseWindow(s string) (sim.Cycles, sim.Cycles, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want A:B, got %q", s)
	}
	var a, b uint64
	var err error
	if lo != "" {
		if a, err = strconv.ParseUint(lo, 10, 64); err != nil {
			return 0, 0, err
		}
	}
	if hi != "" {
		if b, err = strconv.ParseUint(hi, 10, 64); err != nil {
			return 0, 0, err
		}
	}
	if b != 0 && b < a {
		return 0, 0, fmt.Errorf("window end %d before start %d", b, a)
	}
	return sim.Cycles(a), sim.Cycles(b), nil
}
