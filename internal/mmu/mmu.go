// Package mmu models each node's virtual-memory mapping (§2.4).
//
// PLUS executes one multithreaded process, so all nodes share a single
// virtual address space, but — because of replication — different
// nodes may map the same virtual page to different physical copies.
// Each node maintains its own page table holding only the mappings it
// actively uses; a miss traps to the kernel, which consults the
// centralized table and fills the local entry lazily.
package mmu

import (
	"plus/internal/memory"
)

// Table is one node's page table: virtual page → global physical page
// (the node's chosen copy, normally the closest one). A hardware TLB
// caches its entries; Translate is the processor-facing lookup that
// reports which level hit.
type Table struct {
	entries map[memory.VPage]memory.GPage
	tlb     *TLB
	// Faults counts lazy fills (misses resolved through the kernel).
	Faults uint64
	// Flushes counts whole-table invalidations (TLB shootdowns on copy
	// deletion).
	Flushes uint64
	// OnInstall, when non-nil, observes every mapping install — a lazy
	// fault fill from the processor or a kernel remap (replication
	// switching a node to its local copy). core wires it to emit
	// EvAccMap when the data-access event layer is on, so a trace
	// records which physical copy each node's virtual page resolved to.
	OnInstall func(p memory.VPage, g memory.GPage)
}

// New returns an empty page table with a TLB of the given capacity.
func New() *Table {
	return NewSized(64)
}

// NewSized returns an empty page table with a TLB of tlbEntries.
func NewSized(tlbEntries int) *Table {
	return &Table{
		entries: make(map[memory.VPage]memory.GPage),
		tlb:     NewTLB(tlbEntries),
	}
}

// TLB exposes the hardware translation cache.
func (t *Table) TLB() *TLB { return t.tlb }

// Translate performs the hardware translation sequence: TLB first,
// then the page table (refilling the TLB on a table hit). tlbHit
// distinguishes a free translation from one paying the refill cost;
// ok=false means the mapping is absent and the kernel must resolve it.
func (t *Table) Translate(p memory.VPage) (g memory.GPage, tlbHit, ok bool) {
	if g, hit := t.tlb.Lookup(p); hit {
		return g, true, true
	}
	g, ok = t.entries[p]
	if ok {
		t.tlb.Insert(p, g)
	}
	return g, false, ok
}

// Lookup returns the mapping for page p, if present.
func (t *Table) Lookup(p memory.VPage) (memory.GPage, bool) {
	g, ok := t.entries[p]
	return g, ok
}

// Install fills (or replaces) the mapping for page p, updating the
// TLB so the new mapping takes effect immediately (e.g. after a
// replication switches a node to its local copy).
func (t *Table) Install(p memory.VPage, g memory.GPage) {
	t.entries[p] = g
	t.tlb.Insert(p, g)
	if t.OnInstall != nil {
		t.OnInstall(p, g)
	}
}

// Invalidate removes the mapping for page p (no-op if absent),
// shooting the TLB entry down with it.
func (t *Table) Invalidate(p memory.VPage) {
	delete(t.entries, p)
	t.tlb.Invalidate(p)
}

// Flush drops every mapping and the whole TLB, forcing lazy refills.
func (t *Table) Flush() {
	t.entries = make(map[memory.VPage]memory.GPage)
	t.tlb.Flush()
	t.Flushes++
}

// Len returns the number of live mappings.
func (t *Table) Len() int { return len(t.entries) }
