package mmu

import "plus/internal/memory"

// TLB models the processor's translation lookaside buffer over the
// node's page table: a small fully-associative LRU cache of virtual→
// global-physical page mappings. The paper leans on it in §2.4 —
// deleting a page copy forces every node to "update their address
// translation tables and flush their TLBs".
type TLB struct {
	cap   int
	seq   uint64
	slots []tlbEntry
	// Hits and Misses count lookups (misses that hit the page table
	// pay the refill cost; misses that miss it fault to the kernel).
	Hits, Misses uint64
	// Shootdowns counts explicit invalidations and flushes.
	Shootdowns uint64
}

type tlbEntry struct {
	valid bool
	vp    memory.VPage
	g     memory.GPage
	used  uint64
}

// NewTLB builds a TLB with the given capacity (entries).
func NewTLB(entries int) *TLB {
	if entries < 1 {
		entries = 1
	}
	return &TLB{cap: entries, slots: make([]tlbEntry, entries)}
}

// Lookup returns the cached mapping for vp.
func (t *TLB) Lookup(vp memory.VPage) (memory.GPage, bool) {
	for i := range t.slots {
		e := &t.slots[i]
		if e.valid && e.vp == vp {
			t.seq++
			e.used = t.seq
			t.Hits++
			return e.g, true
		}
	}
	t.Misses++
	return memory.NilGPage, false
}

// Insert caches a mapping, updating an existing entry for the page in
// place (a remap must take effect immediately) or evicting the least
// recently used entry.
func (t *TLB) Insert(vp memory.VPage, g memory.GPage) {
	t.seq++
	victim := -1
	for i := range t.slots {
		e := &t.slots[i]
		if e.valid && e.vp == vp {
			victim = i
			break
		}
		if victim < 0 && !e.valid {
			victim = i
		}
	}
	if victim < 0 {
		victim = 0
		for i := range t.slots {
			if t.slots[i].used < t.slots[victim].used {
				victim = i
			}
		}
	}
	t.slots[victim] = tlbEntry{valid: true, vp: vp, g: g, used: t.seq}
}

// Invalidate drops the entry for vp, if cached.
func (t *TLB) Invalidate(vp memory.VPage) {
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].vp == vp {
			t.slots[i].valid = false
			t.Shootdowns++
			return
		}
	}
}

// Flush drops every entry (the whole-TLB shootdown of §2.4).
func (t *TLB) Flush() {
	for i := range t.slots {
		t.slots[i].valid = false
	}
	t.Shootdowns++
}

// Len returns the number of valid entries.
func (t *TLB) Len() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].valid {
			n++
		}
	}
	return n
}
