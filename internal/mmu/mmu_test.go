package mmu

import (
	"testing"

	"plus/internal/memory"
)

func TestLookupInstallInvalidate(t *testing.T) {
	tbl := New()
	if _, ok := tbl.Lookup(5); ok {
		t.Fatal("empty table had a mapping")
	}
	g := memory.GPage{Node: 2, Page: 7}
	tbl.Install(5, g)
	got, ok := tbl.Lookup(5)
	if !ok || got != g {
		t.Fatalf("lookup = %v %v", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	// Replace.
	g2 := memory.GPage{Node: 3, Page: 1}
	tbl.Install(5, g2)
	if got, _ := tbl.Lookup(5); got != g2 {
		t.Fatal("install did not replace")
	}
	tbl.Invalidate(5)
	if _, ok := tbl.Lookup(5); ok {
		t.Fatal("invalidate left the mapping")
	}
	tbl.Invalidate(5) // idempotent
}

func TestFlush(t *testing.T) {
	tbl := New()
	for i := memory.VPage(0); i < 10; i++ {
		tbl.Install(i, memory.GPage{Node: 0, Page: memory.PPage(i)})
	}
	tbl.Flush()
	if tbl.Len() != 0 {
		t.Fatalf("len after flush = %d", tbl.Len())
	}
	if tbl.Flushes != 1 {
		t.Fatalf("flushes = %d", tbl.Flushes)
	}
}
