package mmu

import (
	"testing"
	"testing/quick"

	"plus/internal/memory"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if _, hit := tlb.Lookup(5); hit {
		t.Fatal("empty TLB hit")
	}
	g := memory.GPage{Node: 1, Page: 2}
	tlb.Insert(5, g)
	got, hit := tlb.Lookup(5)
	if !hit || got != g {
		t.Fatalf("lookup = %v %v", got, hit)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, memory.GPage{Node: 0, Page: 1})
	tlb.Insert(2, memory.GPage{Node: 0, Page: 2})
	tlb.Lookup(1) // page 1 recently used; 2 is now LRU
	tlb.Insert(3, memory.GPage{Node: 0, Page: 3})
	if _, hit := tlb.Lookup(2); hit {
		t.Fatal("LRU entry survived eviction")
	}
	if _, hit := tlb.Lookup(1); !hit {
		t.Fatal("MRU entry evicted")
	}
}

func TestTLBInsertReplacesInPlace(t *testing.T) {
	// A remap of the same page must not leave a stale duplicate (the
	// competitive-replication regression).
	tlb := NewTLB(4)
	old := memory.GPage{Node: 3, Page: 0}
	nw := memory.GPage{Node: 0, Page: 9}
	tlb.Insert(7, old)
	tlb.Insert(7, nw)
	got, hit := tlb.Lookup(7)
	if !hit || got != nw {
		t.Fatalf("lookup after remap = %v", got)
	}
	if tlb.Len() != 1 {
		t.Fatalf("duplicate entries: len = %d", tlb.Len())
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(1, memory.GPage{Node: 0, Page: 1})
	tlb.Insert(2, memory.GPage{Node: 0, Page: 2})
	tlb.Invalidate(1)
	if _, hit := tlb.Lookup(1); hit {
		t.Fatal("invalidated entry hit")
	}
	tlb.Invalidate(99) // absent: no-op
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if tlb.Shootdowns != 2 {
		t.Fatalf("shootdowns = %d", tlb.Shootdowns)
	}
}

func TestTableTranslateLevels(t *testing.T) {
	tbl := NewSized(2)
	g := memory.GPage{Node: 1, Page: 4}
	// Absent everywhere.
	if _, tlbHit, ok := tbl.Translate(9); tlbHit || ok {
		t.Fatal("translate of unmapped page succeeded")
	}
	tbl.Install(9, g)
	// Install primes the TLB: first translate is a TLB hit.
	if _, tlbHit, ok := tbl.Translate(9); !tlbHit || !ok {
		t.Fatal("install did not prime the TLB")
	}
	// Evict via capacity, then translate: table hit, TLB refill.
	tbl.Install(10, g)
	tbl.Install(11, g)
	got, tlbHit, ok := tbl.Translate(9)
	if tlbHit || !ok || got != g {
		t.Fatalf("post-eviction translate = %v %v %v", got, tlbHit, ok)
	}
	// And now it is cached again.
	if _, tlbHit, _ := tbl.Translate(9); !tlbHit {
		t.Fatal("refill did not cache")
	}
}

func TestTLBConsistencyProperty(t *testing.T) {
	// Property: after any insert sequence, every Lookup hit returns
	// the most recent mapping inserted for that page.
	f := func(ops []uint8) bool {
		tlb := NewTLB(4)
		last := make(map[memory.VPage]memory.GPage)
		for i, op := range ops {
			vp := memory.VPage(op % 8)
			g := memory.GPage{Node: 0, Page: memory.PPage(i)}
			tlb.Insert(vp, g)
			last[vp] = g
		}
		for vp, want := range last {
			if got, hit := tlb.Lookup(vp); hit && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
