// Package core assembles a complete simulated PLUS machine: the mesh,
// one node per mesh position (processor + cache + local memory +
// coherence manager + page table), the kernel, and the run loop.
//
// This is the package behind the public plus API; see the repository
// root for the exported surface.
package core

import (
	"errors"
	"fmt"

	"plus/internal/cache"
	"plus/internal/coherence"
	"plus/internal/kernel"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/mmu"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// Config describes a machine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// MeshWidth and MeshHeight give the node grid. The 1990 hardware
	// targeted meshes of tens of nodes (e.g. 4x4).
	MeshWidth, MeshHeight int
	// Timing is the cycle-cost table.
	Timing timing.Timing
	// Cache sizes the per-processor cache.
	Cache cache.Config
	// NetContention enables the link-contention model (off in the
	// paper's lightly loaded experiments).
	NetContention bool
	// Mode selects run-to-block (PLUS) or context switching.
	Mode proc.Mode
	// SwitchCost is the per-switch cost in SwitchOnSync mode
	// (Figure 3-1 sweeps 16, 40 and 140).
	SwitchCost sim.Cycles
	// CompetitiveThreshold enables competitive page replication after
	// that many remote references from one node to one page (0 = off).
	CompetitiveThreshold uint64
	// FenceOnSync makes every delayed-operation issue an implicit full
	// write fence first (the DASH-style alternative PLUS argues
	// against); for the ablation benches.
	FenceOnSync bool
	// InvalidateMode replaces the write-update protocol with a
	// word-granular write-invalidate protocol (the §2.2 alternative);
	// for the ablation benches. Real PLUS is update-only.
	InvalidateMode bool
	// Faults configures the unreliable-network mode: deterministic
	// message loss, duplication, delay and bounded back-pressured link
	// buffers (see mesh.FaultConfig). The zero value is the reliable
	// network of the 1990 hardware.
	Faults mesh.FaultConfig
	// Shards partitions the mesh into that many equal contiguous bands
	// of nodes, each simulated on its own event queue by its own worker
	// goroutine under conservative lookahead (see internal/sim.ShardSet
	// and mesh.Config.Shards). 0 or 1 runs serially. Sharded runs are
	// deterministic and byte-identical to serial ones — same elapsed
	// cycles, counters, memory images, and (with an observer attached)
	// the same merged event stream: link contention replays at lookahead
	// barriers, observers buffer shard-locally and merge in dispatch-tag
	// order, and kernel-triggered copy-list splices (competitive
	// replication, runtime Replicate/DeleteCopy/Migrate) execute as
	// barrier work. Two features remain serial-only: crash injection and
	// bounded link buffers (mesh.Config.Validate rejects both). A
	// cross-shard thread Wake is carried by the cross-shard mail path
	// and lands one lookahead window later — deterministic for a fixed
	// shard count, but not byte-identical to serial timing.
	Shards int
	// CheckInvariants runs the coherence invariant checker periodically
	// during Run and once at the end: single master per page, intact
	// copy-list chains, and replica convergence at quiescence. Sharded
	// runs check at lookahead barriers (all shards quiescent) instead of
	// on a scheduled tick.
	CheckInvariants bool
	// InvariantPeriod is the cycle interval between runtime invariant
	// checks when CheckInvariants is set (0 means 10000).
	InvariantPeriod sim.Cycles
	// Observe attaches a structured-event observer (see internal/stats)
	// to the machine: NewMachine binds it to the engine clock, wires the
	// mesh and coherence emission points, and — if the observer was
	// configured with a sample interval — schedules the time-series
	// sampler. One observer serves exactly one machine; binding the same
	// observer twice panics. Nil (the default) keeps every hot path
	// allocation-free and the simulation byte-identical to an
	// unobserved run.
	Observe *stats.Observer
}

// DefaultConfig returns a paper-calibrated machine on a w x h mesh.
func DefaultConfig(w, h int) Config {
	return Config{
		MeshWidth:  w,
		MeshHeight: h,
		Timing:     timing.Default(),
		Cache:      cache.DefaultConfig(),
		Mode:       proc.RunToBlock,
	}
}

// Machine is a complete simulated PLUS multiprocessor.
type Machine struct {
	cfg Config
	eng *sim.Engine
	// engines holds one engine per shard (engines[0] == eng); shardViews
	// holds each shard's private stats.Machine view (nil when serial).
	engines    []*sim.Engine
	shardViews []*stats.Machine
	net        *mesh.Mesh
	st         *stats.Machine
	mems       []*memory.Memory
	caches     []*cache.Cache
	cms        []*coherence.CM
	tables     []*mmu.Table
	kern       *kernel.Kernel
	procs      []*proc.Proc

	threads []*proc.Thread
	nextTID int
	ran     bool
	started sim.Cycles
	elapsed sim.Cycles

	// inv is the runtime invariant checker (nil unless
	// Config.CheckInvariants); invErr records the first violation.
	inv    *InvariantChecker
	invErr error

	// obs is the attached observer (nil when unobserved); obsKids holds
	// its per-shard children (nil when serial); sample is the
	// time-series sampler, driven per-dispatch serially and
	// barrier-aligned when sharded.
	obs     *stats.Observer
	obsKids []*stats.Observer
	sample  func(at sim.Cycles)
}

// NewMachine builds and wires a machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.MeshWidth < 1 || cfg.MeshHeight < 1 {
		return nil, fmt.Errorf("core: invalid mesh %dx%d", cfg.MeshWidth, cfg.MeshHeight)
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == proc.SwitchOnSync && cfg.SwitchCost == 0 {
		return nil, errors.New("core: SwitchOnSync mode requires a SwitchCost")
	}
	mcfg := mesh.DefaultConfig(cfg.MeshWidth, cfg.MeshHeight)
	mcfg.Contention = cfg.NetContention
	mcfg.Faults = cfg.Faults
	mcfg.Shards = cfg.Shards
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	k := mcfg.ShardCount()
	if len(cfg.Faults.Crashes) > 0 {
		switch {
		case cfg.CompetitiveThreshold > 0:
			return nil, errors.New("core: crash injection cannot be combined with competitive replication (a policy-triggered background copy racing a failover epoch is unsupported)")
		case cfg.InvalidateMode:
			return nil, errors.New("core: crash injection requires the write-update protocol (failover resyncs chains by page copy); disable InvalidateMode")
		}
	}
	engines := make([]*sim.Engine, k)
	for i := range engines {
		engines[i] = sim.NewEngine()
		if mcfg.Contention {
			// Deferred contention replays mid-round sends at barriers in
			// dispatch-tag order; tags are only meaningful under strict
			// waiting. Serial runs wait strictly too so their schedules
			// stay byte-identical to sharded ones (AdvanceIf is
			// schedule-neutral — see sim.Engine.SetStrictWait).
			engines[i].SetStrictWait(true)
		}
	}
	eng := engines[0]
	var net *mesh.Mesh
	if k > 1 {
		net = mesh.NewSharded(engines, mcfg)
	} else {
		net = mesh.New(eng, mcfg)
	}
	n := net.Nodes()
	st := stats.New(n)
	m := &Machine{cfg: cfg, eng: eng, engines: engines, net: net, st: st}
	// Each shard's components write stats through a per-shard view:
	// node-disjoint per-node counters share the master's backing slice;
	// machine-wide scalars accumulate privately and fold in after Run.
	cmSt := func(i int) *stats.Machine { return st }
	if k > 1 {
		m.shardViews = make([]*stats.Machine, k)
		for s := range m.shardViews {
			m.shardViews[s] = st.ShardView()
		}
		cmSt = func(i int) *stats.Machine { return m.shardViews[net.ShardOf(mesh.NodeID(i))] }
	}
	for i := 0; i < n; i++ {
		mem := memory.New()
		ca := cache.New(cfg.Cache, cfg.Timing)
		cm := coherence.New(mesh.NodeID(i), net.EngineFor(mesh.NodeID(i)), net, mem, ca, cfg.Timing, cmSt(i))
		cm.SetInvalidateMode(cfg.InvalidateMode)
		m.mems = append(m.mems, mem)
		m.caches = append(m.caches, ca)
		m.cms = append(m.cms, cm)
		m.tables = append(m.tables, mmu.New())
	}
	m.kern = kernel.New(eng, net, m.cms, m.mems, m.tables, cfg.Timing, st)
	m.kern.SetCompetitiveThreshold(cfg.CompetitiveThreshold)
	for i := 0; i < n; i++ {
		p := proc.New(mesh.NodeID(i), net.EngineFor(mesh.NodeID(i)), m.cms[i], m.kern,
			m.tables[i], cfg.Timing, cmSt(i), cfg.Mode, cfg.SwitchCost)
		p.SetFenceOnSync(cfg.FenceOnSync)
		p.SetNet(net)
		m.procs = append(m.procs, p)
	}
	if len(cfg.Faults.Crashes) > 0 {
		// Crash & recovery wiring (see PROTOCOL.md "Crash & failover"):
		// the transport's ack-timeout escalation suspects a silent peer;
		// the core confirms the suspicion out-of-band — standing in for a
		// management-network probe, so a merely slow peer is never failed
		// over — and hands the confirmed crash to the kernel's failover
		// epoch. Crash and restart instants come from the declarative
		// script, scheduled here at build time (the engine clock is 0).
		suspect := func(dead mesh.NodeID) {
			if !net.DownAt(dead, eng.Now()) {
				return
			}
			m.kern.FailNode(dead)
		}
		strikes := cfg.Faults.DetectStrikes()
		for _, cm := range m.cms {
			cm.ArmCrashRecovery(m.kern, suspect, strikes)
		}
		for _, ev := range cfg.Faults.Crashes {
			ev := ev
			eng.Schedule(ev.At, func() { m.crashNode(ev.Node) })
			eng.Schedule(ev.At+ev.Duration, func() { m.restartNode(ev.Node) })
		}
	}
	if cfg.CheckInvariants {
		m.inv = &InvariantChecker{kern: m.kern, cms: m.cms, skipConvergence: cfg.InvalidateMode}
		if len(cfg.Faults.Crashes) > 0 {
			m.inv.Down = func(id mesh.NodeID) bool { return net.DownAt(id, eng.Now()) }
		}
		if k == 1 {
			period := cfg.InvariantPeriod
			if period == 0 {
				period = 10000
			}
			// The tick re-arms itself only while other events remain, so it
			// never keeps an otherwise-drained engine alive; the first
			// violation is recorded and checking stops.
			var tick func()
			tick = func() {
				if m.invErr == nil {
					if err := m.inv.Check(); err != nil {
						m.invErr = fmt.Errorf("%w (at cycle %d)", err, eng.Now())
						return
					}
				}
				if eng.Pending() > 0 {
					eng.Schedule(period, tick)
				}
			}
			eng.Schedule(period, tick)
		}
		// Sharded: runSharded checks at lookahead barriers instead — the
		// checker reads every shard's CM state, which is only safe with
		// all workers quiescent, and a scheduled tick would perturb the
		// event schedule's shard-equivalence anyway.
	}
	if cfg.Observe != nil {
		m.attachObserver(cfg.Observe)
	}
	return m, nil
}

// attachObserver binds o to this machine: clock + topology metadata,
// the stats/mesh emission hooks, the optional engine-dispatch probe,
// and the optional time-series sampler. Observers record events and
// counters only — they never schedule engine events (the sampler
// piggybacks on the dispatch hook rather than arming its own tick),
// so an observed run computes exactly the same result, elapsed time
// included, as an unobserved one.
//
// On a sharded machine each shard gets a child observer reading its
// own engine's clock and dispatch tags (stats.ShardChild); the shard's
// components emit into the child and runSharded merges the buffers
// into the master ring in tag order at every barrier, reconstructing
// the exact serial emission order. The sampler runs barrier-aligned
// instead of per-dispatch. Every engine — including a serial one —
// switches to strict waiting so dispatch tags stay meaningful and the
// two modes keep identical schedules.
func (m *Machine) attachObserver(o *stats.Observer) {
	o.Bind(m.eng.Now, stats.TraceMeta{
		Nodes:      m.net.Nodes(),
		MeshWidth:  m.cfg.MeshWidth,
		MeshHeight: m.cfg.MeshHeight,
		Links:      m.net.LinkLabels(),
	})
	m.obs = o
	m.st.AttachObserver(o)
	for _, e := range m.engines {
		e.SetStrictWait(true)
	}
	if period := o.SampleInterval(); period > 0 {
		m.sample = m.samplerFunc(o, period)
	}
	if o.DataAccess() {
		// Route every node's mapping installs (fault fills, kernel
		// remaps) into the access stream through the node's own
		// observer — the shard child on a sharded machine, so the
		// events carry real dispatch tags and merge deterministically.
		for i, tb := range m.tables {
			node, p := i, m.procs[i]
			tb.OnInstall = func(vp memory.VPage, g memory.GPage) {
				if po := p.Observer(); po != nil {
					po.Emit(stats.EvAccMap, node, 0, 0,
						uint64(vp), uint64(uint32(g.Node))<<32|uint64(uint32(g.Page)))
				}
			}
		}
	}
	probe := o.EngineEvents()
	if len(m.engines) == 1 {
		m.net.SetObserver(o)
		if probe || m.sample != nil {
			sample := m.sample
			m.eng.SetOnEvent(func(at sim.Cycles, kind int) {
				if sample != nil {
					sample(at)
				}
				if probe {
					o.EmitAt(at, stats.EvEngineDispatch, -1, uint8(kind), 0, 0, 0)
				}
			})
		}
		return
	}
	kids := make([]*stats.Observer, len(m.engines))
	for s, e := range m.engines {
		kids[s] = o.ShardChild(e.Now, e.DispatchTag)
		m.shardViews[s].AttachObserver(kids[s])
	}
	m.obsKids = kids
	m.net.SetShardObservers(kids)
	if probe {
		for s, e := range m.engines {
			kid := kids[s]
			e.SetOnEvent(func(at sim.Cycles, kind int) {
				kid.EmitAt(at, stats.EvEngineDispatch, -1, uint8(kind), 0, 0, 0)
			})
		}
	}
}

// samplerFunc builds the time-series sampler, driven from the engine's
// dispatch hook: the first event dispatched at or after each period
// boundary appends one stats.Sample holding the deltas since the
// previous sample — per-link busy time (as a utilization fraction of
// the actual span covered), the instantaneous link backlog, and the
// per-node busy/stall breakdown. Sampling on the hook instead of a
// scheduled tick keeps the event queue untouched, so the engine's
// schedule (and the run's elapsed time) is identical with or without
// sampling; the cost is that Sample.At lands on a dispatch time, not
// the exact boundary, and idle gaps longer than one period yield a
// single sample covering the whole gap. A sharded run drives the same
// closure from the lookahead barriers instead (all shards quiescent),
// so Sample.At lands on round boundaries — coarser, but reading the
// same counters.
func (m *Machine) samplerFunc(o *stats.Observer, period sim.Cycles) func(at sim.Cycles) {
	n := m.net.Nodes()
	prevLink := make([]sim.Cycles, len(m.net.LinkLabels()))
	prevBusy := make([]sim.Cycles, n)
	prevRead := make([]sim.Cycles, n)
	prevWrite := make([]sim.Cycles, n)
	prevFence := make([]sim.Cycles, n)
	prevVerify := make([]sim.Cycles, n)
	var last sim.Cycles // time of the previous sample
	next := period
	return func(at sim.Cycles) {
		if at < next {
			return
		}
		s := stats.Sample{
			At:              at,
			Events:          o.EventCount(),
			LinkUtil:        make([]float64, len(prevLink)),
			LinkDepth:       m.net.LinkBacklog(),
			NodeBusy:        make([]sim.Cycles, n),
			NodeReadStall:   make([]sim.Cycles, n),
			NodeWriteStall:  make([]sim.Cycles, n),
			NodeFenceStall:  make([]sim.Cycles, n),
			NodeVerifyStall: make([]sim.Cycles, n),
		}
		span := at - last
		cur := m.net.LinkBusyTotals()
		for i := range cur {
			s.LinkUtil[i] = float64(cur[i]-prevLink[i]) / float64(span)
			prevLink[i] = cur[i]
		}
		for i := 0; i < n; i++ {
			nd := &m.st.Nodes[i]
			s.NodeBusy[i] = nd.BusyCycles - prevBusy[i]
			s.NodeReadStall[i] = nd.ReadStall - prevRead[i]
			s.NodeWriteStall[i] = nd.WriteStall - prevWrite[i]
			s.NodeFenceStall[i] = nd.FenceStall - prevFence[i]
			s.NodeVerifyStall[i] = nd.VerifyStall - prevVerify[i]
			prevBusy[i], prevRead[i] = nd.BusyCycles, nd.ReadStall
			prevWrite[i], prevFence[i] = nd.WriteStall, nd.FenceStall
			prevVerify[i] = nd.VerifyStall
		}
		o.AddSample(s)
		last = at
		for next <= at {
			next += period
		}
	}
}

// Nodes returns the number of nodes (processors) in the machine.
func (m *Machine) Nodes() int { return m.net.Nodes() }

// Kernel exposes the operating-system services (placement,
// replication, migration, coherence checking).
func (m *Machine) Kernel() *kernel.Kernel { return m.kern }

// Mesh exposes the interconnect (topology queries, network stats).
func (m *Machine) Mesh() *mesh.Mesh { return m.net }

// Stats returns the machine's instrumentation counters.
func (m *Machine) Stats() *stats.Machine { return m.st }

// EnableTrace starts recording protocol events (coherence messages,
// memory operations, scheduling, stalls) in a ring keeping the newest
// limit entries (limit <= 0 means stats.DefaultRingEvents); it returns
// a back-compat Tracer view over the underlying structured observer.
// It must not be combined with Config.Observe — one observer per
// machine. New code should set Config.Observe directly and use the
// stats.Observer API.
func (m *Machine) EnableTrace(limit int) *stats.Tracer {
	o := stats.NewObserver(stats.ObserveConfig{Events: limit})
	m.attachObserver(o)
	return stats.TracerFor(o)
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Invariants returns the runtime invariant checker, or nil when
// Config.CheckInvariants is off.
func (m *Machine) Invariants() *InvariantChecker { return m.inv }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Cycles { return m.eng.Now() }

// Alloc allocates n consecutive virtual pages homed on node home and
// returns the base virtual address.
func (m *Machine) Alloc(home mesh.NodeID, n int) memory.VAddr {
	return m.kern.AllocPages(home, n).Base()
}

// AllocHomed allocates len(homes) consecutive virtual pages with page
// i homed on homes[i], returning the base virtual address. This is how
// workloads lay out block-distributed arrays (each processor owning
// the pages for its block).
func (m *Machine) AllocHomed(homes ...mesh.NodeID) memory.VAddr {
	if len(homes) == 0 {
		panic("core: AllocHomed with no pages")
	}
	base := m.kern.AllocPage(homes[0])
	for _, h := range homes[1:] {
		m.kern.AllocPage(h)
	}
	return base.Base()
}

// Replicate creates copies of the page containing va on the given
// nodes, instantaneously (pre-run placement). The copy-list is kept
// path-length-ordered by the kernel.
func (m *Machine) Replicate(va memory.VAddr, nodes ...mesh.NodeID) {
	for _, n := range nodes {
		m.kern.ReplicateNow(va.Page(), n)
	}
}

// ReplicateRange replicates npages pages starting at va's page onto
// the given nodes.
func (m *Machine) ReplicateRange(va memory.VAddr, npages int, nodes ...mesh.NodeID) {
	for i := 0; i < npages; i++ {
		m.Replicate(va+memory.VAddr(i*memory.PageWords), nodes...)
	}
}

// Prefault installs node's translation for npages pages starting at
// va's page, outside simulated time — warm page tables for workloads
// that measure steady-state latency rather than cold-start faulting
// (a page-table fill costs Timing.PageFault, 2000 cycles, which would
// swamp an open-loop run's per-op latencies). The same nearest-copy
// choice the lazy fill would make is installed, so only the 2000-cycle
// charge differs from faulting lazily.
func (m *Machine) Prefault(node mesh.NodeID, va memory.VAddr, npages int) {
	for i := 0; i < npages; i++ {
		vp := va.Page() + memory.VPage(i)
		if _, ok := m.tables[node].Lookup(vp); ok {
			continue
		}
		g, err := m.kern.Resolve(node, vp)
		if err != nil {
			panic(fmt.Sprintf("core: prefault: %v", err))
		}
		m.tables[node].Install(vp, g)
	}
}

// Poke initializes the word at va on every copy, outside simulated
// time.
func (m *Machine) Poke(va memory.VAddr, v memory.Word) { m.kern.Poke(va, v) }

// Peek reads the master copy of va outside simulated time.
func (m *Machine) Peek(va memory.VAddr) memory.Word { return m.kern.Peek(va) }

// Spawn creates a thread on node running body.
func (m *Machine) Spawn(node mesh.NodeID, body func(*proc.Thread)) *proc.Thread {
	id := m.nextTID
	m.nextTID++
	t := m.procs[node].Spawn(id, fmt.Sprintf("t%d@n%d", id, node), body)
	m.threads = append(m.threads, t)
	return t
}

// SpawnNamed is Spawn with a diagnostic thread name.
func (m *Machine) SpawnNamed(node mesh.NodeID, name string, body func(*proc.Thread)) *proc.Thread {
	id := m.nextTID
	m.nextTID++
	t := m.procs[node].Spawn(id, name, body)
	m.threads = append(m.threads, t)
	return t
}

// Threads returns all spawned threads.
func (m *Machine) Threads() []*proc.Thread { return m.threads }

// ActiveProcs returns the number of processors with at least one
// thread (the denominator of utilization).
func (m *Machine) ActiveProcs() int {
	n := 0
	for _, p := range m.procs {
		if len(p.Threads()) > 0 {
			n++
		}
	}
	return n
}

// Run executes the machine until all threads complete and the network
// drains, returning the elapsed virtual time. It fails if threads
// remain parked with no pending events (deadlock: a Sleep with no
// Wake, a lock never released).
func (m *Machine) Run() (sim.Cycles, error) {
	if len(m.engines) > 1 {
		m.runSharded()
	} else {
		m.started = m.eng.Now()
		m.eng.Run()
		m.elapsed = m.eng.Now() - m.started
	}
	m.ran = true
	var stuck []string
	for _, t := range m.threads {
		if !t.Done() {
			stuck = append(stuck, t.Name())
		}
	}
	if len(stuck) > 0 {
		return m.elapsed, fmt.Errorf("core: deadlock — %d thread(s) never finished: %v", len(stuck), stuck)
	}
	// Write combining must never strand a write: every flush trigger
	// (fence, verify, RMW, reads, park, thread exit) has fired by now,
	// so a non-empty combine buffer is a protocol bug — the write was
	// issued but will never reach any copy.
	for i, cm := range m.cms {
		if n := cm.BufferedWrites(); n != 0 {
			return m.elapsed, fmt.Errorf("core: %d write(s) stranded in node %d's combine buffer at end of run", n, i)
		}
	}
	if m.invErr != nil {
		return m.elapsed, fmt.Errorf("core: invariant violated during run: %w", m.invErr)
	}
	if m.inv != nil {
		if err := m.inv.Check(); err != nil {
			return m.elapsed, fmt.Errorf("core: invariant violated after run: %w", err)
		}
	}
	// In invalidate mode replicas legitimately hold stale words (marked
	// invalid), so byte-identical copies are not expected.
	if !m.cfg.InvalidateMode {
		if err := m.kern.CheckCoherent(); err != nil {
			return m.elapsed, fmt.Errorf("core: coherence violated after quiescence: %w", err)
		}
	}
	return m.elapsed, nil
}

// runSharded drives the per-shard engines in lookahead rounds until
// the machine drains, then folds the shard stats views into the master
// block. Elapsed time is the latest actual activity on any shard —
// RunUntil drags each shard's clock to the round horizon, but
// LastActivityAt records only real work, so the figure matches the
// serial engine's final clock exactly.
func (m *Machine) runSharded() {
	started := m.engines[0].Now()
	for _, e := range m.engines[1:] {
		if t := e.Now(); t > started {
			started = t
		}
	}
	// While rounds are in flight, kernel page operations queue as
	// barrier work and shard observers buffer locally; both drain at
	// every barrier below, and the brackets restore inline execution
	// and direct emission for quiescent code after the run.
	m.kern.BeginRounds()
	defer m.kern.EndRounds()
	if m.obs != nil {
		m.obs.SetShardBuffering(true)
		defer m.obs.SetShardBuffering(false)
	}
	ss := &sim.ShardSet{
		Engines: m.engines,
		Window:  m.net.Config().LookaheadWindow(),
		Drain:   func() int { return m.net.DrainMail() },
		// Barrier work runs with every shard quiescent, before the mail
		// drain so anything it sends lands this barrier: replay the
		// round's contended sends against the shared link queues, splice
		// the copy-lists for deferred kernel page operations, then merge
		// the shards' buffered observations into the master ring in
		// dispatch-tag order and take a barrier-aligned sample.
		BarrierWork: func() {
			m.net.ResolveContention()
			m.kern.RunBarrierWork()
			if m.obs != nil {
				m.obs.MergeShardEvents()
				if m.sample != nil {
					m.sample(m.lastActivity())
				}
			}
		},
	}
	if m.inv != nil {
		period := m.cfg.InvariantPeriod
		if period == 0 {
			period = 10000
		}
		next := started + period
		ss.AtBarrier = func() {
			if m.invErr != nil {
				return
			}
			cur := m.lastActivity()
			if cur < next {
				return
			}
			if err := m.inv.Check(); err != nil {
				m.invErr = fmt.Errorf("%w (at cycle %d)", err, cur)
				return
			}
			for next <= cur {
				next += period
			}
		}
	}
	ss.Run()
	m.started = started
	m.elapsed = m.lastActivity() - started
	for _, v := range m.shardViews {
		m.st.FoldShard(v)
	}
	if m.obs != nil {
		// The final barrier already merged every buffered event; fold the
		// children's latency histograms so the master's Metrics read as a
		// serial run's would.
		m.obs.FoldShardMetrics()
	}
}

// lastActivity returns the latest LastActivityAt across the shard
// engines.
func (m *Machine) lastActivity() sim.Cycles {
	var t sim.Cycles
	for _, e := range m.engines {
		if a := e.LastActivityAt(); a > t {
			t = a
		}
	}
	return t
}

// Elapsed returns the virtual time consumed by the last Run.
func (m *Machine) Elapsed() sim.Cycles { return m.elapsed }

// Utilization returns the ratio of useful processor time to elapsed
// time over the active processors of the last Run (Figure 2-1's
// metric).
func (m *Machine) Utilization() float64 {
	return m.st.Utilization(m.ActiveProcs(), m.elapsed)
}

// Wake makes a sleeping thread runnable; part of the lock/wakeup
// protocol (Table 3-2). Usable from outside simulated code in tests.
func (m *Machine) Wake(t *proc.Thread) {
	t.Wake(t)
}

// crashNode takes node n down at the current instant, per the crash
// script: the mesh stops carrying its traffic (mesh.DownAt), the
// processor halts thread dispatch at the next memory reference, the
// CM's volatile transport and combining state is destroyed, and the
// kernel records the instant for the recovery-time metric. Detection
// and failover happen later, driven by peers' ack timeouts.
func (m *Machine) crashNode(n mesh.NodeID) {
	m.st.Crashes++
	m.procs[n].Pause()
	m.cms[n].Crash()
	m.kern.MarkDown(n, m.eng.Now())
}

// restartNode brings node n back at the current instant: the kernel
// runs the failover epoch if nobody detected the outage, wipes the
// node's volatile CM/MMU state, rejoins its pages as ordinary copies,
// and the processor resumes dispatching its halted threads.
func (m *Machine) restartNode(n mesh.NodeID) {
	m.st.Restarts++
	m.kern.RestartNode(n)
	m.procs[n].Resume()
}
