package core

import (
	"fmt"
	"math/rand"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// crashFingerprint condenses everything observable about a crash run —
// elapsed time, every crash/recovery counter, network stats, and memory
// samples — so run-twice determinism checks compare one string.
func crashFingerprint(m *Machine, elapsed sim.Cycles, bases []memory.VAddr) string {
	st := m.Stats()
	fp := fmt.Sprintf("elapsed=%d crash=%+v net=%+v msgs=%d retrans=%d",
		elapsed, st.Crash(), m.Mesh().Stats(), st.Messages(), st.Retransmits)
	for _, b := range bases {
		for off := uint32(0); off < 128; off += 13 {
			fp += fmt.Sprintf(" %d", m.Peek(b+memory.VAddr(off)))
		}
	}
	return fp
}

// runMasterCrash is the directed failover scenario: one page mastered
// on node 3 with replicas on nodes 0 and 5, writers hammering it from
// both replica nodes (plus node 3 itself) and a reader on node 2 whose
// nearest copy is the master — then node 3 crashes mid-run and restarts
// 8000 cycles later. Each writer ends with a sentinel store after the
// recovery settles, so the final memory image is deterministic despite
// the lost-write semantics of force-retired in-flight stores.
func runMasterCrash(t *testing.T) (*Machine, sim.Cycles, memory.VAddr) {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.Faults = mesh.FaultConfig{
		Crashes: []mesh.CrashEvent{{Node: 3, At: 3000, Duration: 8000}},
	}
	cfg.CheckInvariants = true
	cfg.InvariantPeriod = 500
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Alloc(3, 1)
	m.Replicate(base, 0, 5)
	writers := []mesh.NodeID{0, 5, 3}
	for k, node := range writers {
		k, node := k, node
		m.Spawn(node, func(th *proc.Thread) {
			off := memory.VAddr(10 + k)
			for i := 0; i < 120; i++ {
				th.Write(base+off, memory.Word(i+1))
				th.Fence()
				th.Compute(20)
			}
			// By now every crash epoch is over; the sentinel is the last
			// write to this offset and must survive into every copy.
			th.Write(base+off, memory.Word(0xC0DE00+k))
			th.Fence()
		})
	}
	m.Spawn(2, func(th *proc.Thread) {
		for i := 0; i < 150; i++ {
			th.Read(base + memory.VAddr(uint32(40+i%8)))
			th.Compute(30)
		}
	})
	elapsed, err := m.Run()
	if err != nil {
		t.Fatalf("crash run failed: %v", err)
	}
	return m, elapsed, base
}

// TestMasterCrashFailover crashes a page's master mid-workload and
// asserts the failover protocol end to end: the outage is detected and
// survives exactly one failover epoch, the next copy-list entry is
// promoted to master, writers on the survivors converge, the restarted
// node rejoins as an ordinary copy, and the runtime invariant checker
// holds throughout.
func TestMasterCrashFailover(t *testing.T) {
	m, elapsed, base := runMasterCrash(t)
	st := m.Stats()
	cb := st.Crash()
	if cb.Crashes != 1 || cb.Restarts != 1 {
		t.Fatalf("crash/restart not injected: %+v", cb)
	}
	if cb.Failovers != 1 {
		t.Fatalf("want exactly one failover epoch, got %+v", cb)
	}
	if cb.MastersPromoted != 1 {
		t.Fatalf("master death must promote a survivor: %+v", cb)
	}
	if cb.PagesFailedOver == 0 || cb.PagesResynced == 0 {
		t.Fatalf("failover skipped the resync cascade: %+v", cb)
	}
	if cb.RecoveryMax == 0 {
		t.Fatalf("recovery time never observed: %+v", cb)
	}
	if m.Mesh().Stats().CrashDropped == 0 {
		t.Fatal("no message was ever dropped at the crashed node")
	}
	vp := base.Page()
	list := m.Kernel().CopyList(vp)
	if list[0].Node == 3 {
		t.Fatalf("node 3 still master after its crash: %v", list)
	}
	if !m.Kernel().HasCopy(vp, 3) {
		t.Fatalf("restarted node never rejoined the copy-list: %v", list)
	}
	if cb.RejoinCopies == 0 {
		t.Fatalf("rejoin not counted: %+v", cb)
	}
	for k := 0; k < 3; k++ {
		if got := m.Peek(base + memory.VAddr(10+k)); got != memory.Word(0xC0DE00+k) {
			t.Fatalf("writer %d sentinel lost: %#x", k, got)
		}
	}
	ic := m.Invariants()
	if ic.Checks == 0 {
		t.Fatal("invariant checker never ran")
	}
	if err := ic.Check(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	// Determinism: the identical script reproduces the run byte for byte.
	a := crashFingerprint(m, elapsed, []memory.VAddr{base})
	m2, elapsed2, base2 := runMasterCrash(t)
	b := crashFingerprint(m2, elapsed2, []memory.VAddr{base2})
	if a != b {
		t.Fatalf("two crash runs diverged\n%s\n%s", a, b)
	}
}

// runCrashFuzz drives the protocol-fuzz workload with a crash script —
// optionally on top of message loss — and the invariant checker armed.
// Every page keeps at least one replica on a node the script never
// crashes, as the failover protocol requires. Delta-sum validation is
// skipped: a delayed op re-issued across a crash epoch may apply twice,
// and a force-retired write may be lost (both documented in
// PROTOCOL.md); convergence and invariants are still fully checked.
func runCrashFuzz(t *testing.T, seed int64, f mesh.FaultConfig) string {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.Faults = f
	cfg.CheckInvariants = true
	cfg.InvariantPeriod = 1000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed := make(map[mesh.NodeID]bool)
	for _, e := range f.Crashes {
		crashed[e.Node] = true
	}
	safe := []mesh.NodeID{}
	for n := mesh.NodeID(0); int(n) < 8; n++ {
		if !crashed[n] {
			safe = append(safe, n)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	const pages = 3
	bases := make([]memory.VAddr, pages)
	for i := range bases {
		bases[i] = m.Alloc(mesh.NodeID(rng.Intn(8)), 1)
		// One replica on a never-crashed node guarantees a survivor.
		m.Replicate(bases[i], safe[rng.Intn(len(safe))])
		for k := rng.Intn(3); k > 0; k-- {
			m.Replicate(bases[i], mesh.NodeID(rng.Intn(8)))
		}
	}
	for n := 0; n < 8; n++ {
		tr := rand.New(rand.NewSource(seed*100 + int64(n)))
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for op := 0; op < 40; op++ {
				pg := tr.Intn(pages)
				switch tr.Intn(8) {
				case 0, 1:
					th.Read(bases[pg] + memory.VAddr(uint32(101+tr.Intn(50))))
				case 2, 3:
					th.Write(bases[pg]+memory.VAddr(uint32(1+10*n+tr.Intn(10))),
						memory.Word(tr.Uint32())&^memory.TopBit)
				case 4:
					th.Verify(th.Fadd(bases[pg], int32(tr.Intn(21)-10)))
				case 5:
					th.Fence()
				default:
					th.Compute(sim.Cycles(tr.Intn(150)))
				}
			}
			th.Fence()
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		t.Fatalf("seed %d crashes %+v: %v", seed, f.Crashes, err)
	}
	if got := m.Stats().Crash().Crashes; got != uint64(len(f.Crashes)) {
		t.Fatalf("seed %d: %d crashes injected, want %d", seed, got, len(f.Crashes))
	}
	if ic := m.Invariants(); ic.Checks == 0 {
		t.Fatalf("seed %d: invariant checker never ran", seed)
	}
	return crashFingerprint(m, elapsed, bases)
}

// TestCrashFuzz chaos-tests crash epochs: two staggered outages (the
// second short enough that its restart, not detection, triggers the
// failover), alone and combined with message loss, across seeds — and
// pins run-twice determinism of stats and memory.
func TestCrashFuzz(t *testing.T) {
	scripts := []mesh.FaultConfig{
		{Crashes: []mesh.CrashEvent{
			{Node: 2, At: 2000, Duration: 4000},
			{Node: 5, At: 7000, Duration: 600},
		}},
		{Seed: 7, DropRate: 0.01, Crashes: []mesh.CrashEvent{
			{Node: 2, At: 2500, Duration: 3000},
			{Node: 6, At: 8000, Duration: 800},
		}},
	}
	for _, f := range scripts {
		for seed := int64(0); seed < 3; seed++ {
			a := runCrashFuzz(t, seed, f)
			b := runCrashFuzz(t, seed, f)
			if a != b {
				t.Fatalf("seed %d crashes %+v: two runs diverged\n%s\n%s", seed, f.Crashes, a, b)
			}
		}
	}
}

// TestCrashConfigRejections pins the build-time gates: crash scripts
// are serial-only and incompatible with competitive replication and
// invalidate mode, and the mesh validates the script itself.
func TestCrashConfigRejections(t *testing.T) {
	crash := []mesh.CrashEvent{{Node: 1, At: 100, Duration: 50}}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"sharded", func(c *Config) { c.Shards = 2 }},
		{"competitive", func(c *Config) { c.CompetitiveThreshold = 8 }},
		{"invalidate", func(c *Config) { c.InvalidateMode = true }},
		{"zero-duration", func(c *Config) { c.Faults.Crashes[0].Duration = 0 }},
		{"out-of-mesh", func(c *Config) { c.Faults.Crashes[0].Node = 64 }},
		{"overlap", func(c *Config) {
			c.Faults.Crashes = append(c.Faults.Crashes,
				mesh.CrashEvent{Node: 1, At: 120, Duration: 50})
		}},
		{"detect-without-script", func(c *Config) {
			c.Faults.Crashes = nil
			c.Faults.CrashDetectAfter = 3
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(4, 2)
		cfg.Faults.Crashes = append([]mesh.CrashEvent{}, crash...)
		tc.mut(&cfg)
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("%s: config accepted, want rejection", tc.name)
		}
	}
	// The unmutated config is valid.
	cfg := DefaultConfig(4, 2)
	cfg.Faults.Crashes = crash
	if _, err := NewMachine(cfg); err != nil {
		t.Errorf("baseline crash config rejected: %v", err)
	}
}
