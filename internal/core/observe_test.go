package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
)

// observeWorkload runs a fixed 2x2 workload mixing local and remote
// reads, writes and RMWs, optionally instrumented.
func observeWorkload(t *testing.T, obs *stats.Observer) (*Machine, sim.Cycles) {
	t.Helper()
	cfg := DefaultConfig(2, 2)
	cfg.Observe = obs
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(1, 1) // homed on node 1: remote for three of four nodes
	ctr := m.Alloc(2, 1)  // homed on node 2
	for p := 0; p < 4; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(th *proc.Thread) {
			for i := 0; i < 40; i++ {
				th.Read(data + memory.VAddr((i+p)%32))
				th.Write(data+memory.VAddr((i*3+p)%32), memory.Word(uint32(i)))
				th.Verify(th.Fadd(ctr, 1))
				th.Compute(20)
			}
			th.Fence()
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, elapsed
}

// TestObservedRunMatchesUnobserved pins the "observation changes
// nothing" contract: the same workload with and without an observer
// produces identical elapsed time, counters and message totals.
func TestObservedRunMatchesUnobserved(t *testing.T) {
	mPlain, ePlain := observeWorkload(t, nil)
	obs := stats.NewObserver(stats.ObserveConfig{SampleEvery: 1000, EngineEvents: true})
	mObs, eObs := observeWorkload(t, obs)
	if ePlain != eObs {
		t.Fatalf("observer changed elapsed time: %d vs %d", ePlain, eObs)
	}
	if a, b := mPlain.Stats().Totals(), mObs.Stats().Totals(); a != b {
		t.Fatalf("observer changed counters:\n%+v\n%+v", a, b)
	}
	if a, b := mPlain.Stats().Messages(), mObs.Stats().Messages(); a != b {
		t.Fatalf("observer changed message count: %d vs %d", a, b)
	}
	if obs.EventCount() == 0 {
		t.Fatal("observer recorded nothing")
	}
}

// TestObserverAcceptance is the PR's acceptance check: an instrumented
// run must (a) export Chrome trace JSON that validates and covers
// every node and every link, (b) produce latency histograms exactly
// consistent with the stall counters (the remote-read histogram is
// observed at the single site where ReadStall accrues, so its sum is
// ReadStall + Count x RemoteReadOverhead to the cycle), and (c) carry
// time-series samples whose per-node stall deltas integrate back to
// the end-of-run totals.
func TestObserverAcceptance(t *testing.T) {
	obs := stats.NewObserver(stats.ObserveConfig{Events: 1 << 16, SampleEvery: 500})
	m, _ := observeWorkload(t, obs)

	run := stats.ObservedRunFrom("accept", obs)
	data, err := stats.ChromeTrace([]stats.ObservedRun{run})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stats.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" {
			if name, ok := ev.Args["name"].(string); ok {
				tracks[name] = true
			}
		}
	}
	for n := 0; n < m.Nodes(); n++ {
		if !tracks[fmt.Sprintf("accept node %d", n)] {
			t.Errorf("trace missing track for node %d", n)
		}
	}
	links := m.Mesh().LinkLabels()
	if len(links) == 0 {
		t.Fatal("no link labels on a 2x2 mesh")
	}
	for _, l := range links {
		if !tracks["accept link "+l] {
			t.Errorf("trace missing track for link %s", l)
		}
	}

	// Histogram/stall-counter cross-check, exact to the cycle.
	tot := m.Stats().Totals()
	tm := m.Config().Timing
	rr := &obs.Metrics.RemoteRead
	if rr.Count == 0 {
		t.Fatal("no remote reads observed")
	}
	want := uint64(tot.ReadStall) + rr.Count*uint64(tm.RemoteReadOverhead)
	if rr.Sum != want {
		t.Errorf("remote-read histogram sum %d inconsistent with ReadStall: want %d", rr.Sum, want)
	}
	if rr.Mean() < float64(tm.RemoteReadOverhead) {
		t.Errorf("remote-read mean %.1f below the issue overhead %d", rr.Mean(), tm.RemoteReadOverhead)
	}
	if obs.Metrics.WriteAck.Count == 0 {
		t.Error("no write acks observed")
	}
	if obs.Metrics.RMWRound.Count == 0 {
		t.Error("no RMW round trips observed")
	}

	// Samples: per-interval deltas must integrate to the run totals.
	samples := obs.Samples()
	if len(samples) == 0 {
		t.Fatal("no time-series samples at SampleEvery=500")
	}
	var read, busy sim.Cycles
	for _, s := range samples {
		for n := 0; n < m.Nodes(); n++ {
			read += s.NodeReadStall[n]
			busy += s.NodeBusy[n]
		}
	}
	// The last partial interval after the final tick is not sampled, so
	// the integral is a lower bound within one interval's activity.
	if read > tot.ReadStall || busy > tot.BusyCycles {
		t.Errorf("sample integrals exceed totals: read %d/%d busy %d/%d",
			read, tot.ReadStall, busy, tot.BusyCycles)
	}
	if read == 0 {
		t.Error("samples recorded no read-stall activity")
	}
}

// TestEnableTraceWindow checks the back-compat tracer view over the
// structured ring: windowed observers record only in [A, B]. The
// window starts after the first touch's lazy page fault (PageFault =
// 2000 cycles under the default timing), inside the steady read loop.
func TestEnableTraceWindow(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	obs := stats.NewObserver(stats.ObserveConfig{WindowStart: 2100, WindowEnd: 2400})
	cfg.Observe = obs
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(1, 1)
	m.Spawn(0, func(th *proc.Thread) {
		for i := 0; i < 50; i++ {
			th.Read(data)
			th.Compute(10)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	evs := obs.Events()
	if len(evs) == 0 {
		t.Fatal("window [2100,2400] recorded nothing")
	}
	for _, e := range evs {
		if e.At < 2100 || e.At > 2400 {
			t.Fatalf("event at cycle %d outside window [2100, 2400]", e.At)
		}
	}
	// The shim still renders.
	tr := stats.TracerFor(obs)
	if !strings.Contains(tr.Dump(), "read") {
		t.Error("tracer dump missing read events")
	}
}
