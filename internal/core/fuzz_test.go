package core

import (
	"math/rand"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// TestProtocolFuzz drives random mixes of reads, writes, RMWs and
// fences from every node against a randomly replicated page set, then
// checks the machine-wide invariants:
//
//   - general coherence: after quiescence all copies are identical
//     (Machine.Run checks this);
//   - fetch-and-add conservation: each counter word equals the sum of
//     the deltas applied to it;
//   - read-your-write: a read after a fence observes the thread's own
//     latest write.
func TestProtocolFuzz(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMachine(DefaultConfig(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		const pages = 4
		bases := make([]memory.VAddr, pages)
		for i := range bases {
			home := mesh.NodeID(rng.Intn(8))
			bases[i] = m.Alloc(home, 1)
			// Random replication on 0..3 extra nodes.
			for k := rng.Intn(4); k > 0; k-- {
				m.Replicate(bases[i], mesh.NodeID(rng.Intn(8)))
			}
		}
		// One counter word per page for fadd conservation.
		deltaSums := make([]int64, pages)
		for n := 0; n < 8; n++ {
			tr := rand.New(rand.NewSource(seed*100 + int64(n)))
			n := n
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				lastWrite := make(map[memory.VAddr]memory.Word)
				// Each thread writes only its private offset range
				// [1+10n, 10+10n], so read-your-write after a fence is
				// a sound check; reads and min-xchngs roam a shared
				// range beyond every private window.
				privOff := func() uint32 { return uint32(1 + 10*n + tr.Intn(10)) }
				sharedOff := func() uint32 { return uint32(101 + tr.Intn(100)) }
				for op := 0; op < 60; op++ {
					pg := tr.Intn(pages)
					switch tr.Intn(10) {
					case 0, 1, 2:
						th.Read(bases[pg] + memory.VAddr(sharedOff()))
					case 3, 4, 5:
						va := bases[pg] + memory.VAddr(privOff())
						v := memory.Word(tr.Uint32()) &^ memory.TopBit
						th.Write(va, v)
						lastWrite[va] = v
					case 6:
						d := int32(tr.Intn(21) - 10)
						th.Verify(th.Fadd(bases[pg], d))
						deltaSums[pg] += int64(d)
					case 7:
						th.Verify(th.MinXchng(bases[pg]+memory.VAddr(sharedOff()), memory.Word(tr.Uint32()&0x7fffffff)))
					case 8:
						th.Fence()
						// After the fence every one of our writes has
						// completed at every copy; nobody else touches
						// our private words, so any of them must read
						// back exactly.
						for wa, want := range lastWrite {
							if got := th.Read(wa); got != want {
								t.Errorf("seed %d node %d: read %#x, wrote %#x", seed, n, got, want)
							}
							break
						}
					default:
						th.Compute(sim.Cycles(tr.Intn(200)))
					}
				}
				th.Fence()
			})
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pg := range deltaSums {
			got := int64(int32(m.Peek(bases[pg])))
			if got != deltaSums[pg] {
				t.Fatalf("seed %d: counter %d = %d, deltas sum to %d", seed, pg, got, deltaSums[pg])
			}
		}
	}
}

// TestProtocolFuzzWithContention repeats the fuzz under the
// link-contention model (FIFO per link must preserve coherence).
func TestProtocolFuzzWithContention(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		cfg := DefaultConfig(4, 2)
		cfg.NetContention = true
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := m.Alloc(0, 1)
		m.Replicate(base, 3, 5, 7)
		for n := 0; n < 8; n++ {
			tr := rand.New(rand.NewSource(seed*7 + int64(n)))
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				for op := 0; op < 40; op++ {
					va := base + memory.VAddr(tr.Intn(64))
					if tr.Intn(2) == 0 {
						th.Write(va, memory.Word(tr.Uint32()))
					} else {
						th.Read(va)
					}
				}
				th.Fence()
			})
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = rng
	}
}

// TestProtocolFuzzInvalidateMode repeats the fuzz in the
// write-invalidate ablation: the master must still hold the counters'
// exact sums and reads must chase staleness correctly.
func TestProtocolFuzzInvalidateMode(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := DefaultConfig(4, 1)
		cfg.InvalidateMode = true
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctr := m.Alloc(0, 1)
		m.Replicate(ctr, 1, 2, 3)
		var sum int64
		for n := 0; n < 4; n++ {
			tr := rand.New(rand.NewSource(seed*31 + int64(n)))
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				for op := 0; op < 30; op++ {
					d := int32(tr.Intn(9) - 4)
					th.Verify(th.Fadd(ctr, d))
					sum += int64(d)
					th.Read(ctr) // exercises the stale-read repair path
				}
			})
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := int64(int32(m.Peek(ctr))); got != sum {
			t.Fatalf("seed %d: counter %d, deltas %d", seed, got, sum)
		}
	}
}
