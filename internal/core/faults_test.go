package core

import (
	"fmt"
	"math/rand"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// runFaultFuzz drives the protocol-fuzz workload on an unreliable
// network with the runtime invariant checker armed, and returns a
// fingerprint of everything observable: elapsed time, message and
// fault counters, and final memory contents. batch is the write-combine
// depth (1 = combining off); batched write requests ride the same
// retransmission machinery, a lost batch re-sends its whole vector.
func runFaultFuzz(t *testing.T, seed int64, f mesh.FaultConfig, contention bool, batch int) (string, mesh.Stats) {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.NetContention = contention
	cfg.Faults = f
	cfg.Timing.MaxBatchWrites = batch
	cfg.CheckInvariants = true
	cfg.InvariantPeriod = 5000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	const pages = 3
	bases := make([]memory.VAddr, pages)
	for i := range bases {
		bases[i] = m.Alloc(mesh.NodeID(rng.Intn(8)), 1)
		for k := rng.Intn(4); k > 0; k-- {
			m.Replicate(bases[i], mesh.NodeID(rng.Intn(8)))
		}
	}
	deltaSums := make([]int64, pages)
	for n := 0; n < 8; n++ {
		tr := rand.New(rand.NewSource(seed*100 + int64(n)))
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			privOff := func() uint32 { return uint32(1 + 10*n + tr.Intn(10)) }
			for op := 0; op < 40; op++ {
				pg := tr.Intn(pages)
				switch tr.Intn(8) {
				case 0, 1:
					th.Read(bases[pg] + memory.VAddr(uint32(101+tr.Intn(50))))
				case 2, 3:
					th.Write(bases[pg]+memory.VAddr(privOff()), memory.Word(tr.Uint32())&^memory.TopBit)
				case 4:
					d := int32(tr.Intn(21) - 10)
					th.Verify(th.Fadd(bases[pg], d))
					deltaSums[pg] += int64(d)
				case 5:
					th.Fence()
				default:
					th.Compute(sim.Cycles(tr.Intn(150)))
				}
			}
			th.Fence()
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		t.Fatalf("seed %d faults %+v: %v", seed, f, err)
	}
	for pg := range deltaSums {
		if got := int64(int32(m.Peek(bases[pg]))); got != deltaSums[pg] {
			t.Fatalf("seed %d faults %+v: counter %d = %d, deltas sum to %d", seed, f, pg, got, deltaSums[pg])
		}
	}
	if ic := m.Invariants(); ic.Checks == 0 {
		t.Fatalf("seed %d: invariant checker never ran", seed)
	}
	fp := fmt.Sprintf("elapsed=%d net=%+v msgs=%d tacks=%d retrans=%d dups=%d gaps=%d stalls=%d",
		elapsed, m.Mesh().Stats(), m.Stats().Messages(), m.Stats().MsgTAck,
		m.Stats().Retransmits, m.Stats().TransDups, m.Stats().TransGaps, m.Stats().TransStalls)
	for pg := range bases {
		for off := uint32(0); off < 128; off += 17 {
			fp += fmt.Sprintf(" %d", m.Peek(bases[pg]+memory.VAddr(off)))
		}
	}
	return fp, m.Mesh().Stats()
}

// TestProtocolFuzzWithFaults repeats the protocol fuzz over an
// unreliable network — light loss, then heavy loss with duplication and
// reordering delays — with runtime invariant checking on, and pins
// cross-run determinism: the same seeds reproduce byte-identical stats
// and memory.
func TestProtocolFuzzWithFaults(t *testing.T) {
	configs := []mesh.FaultConfig{
		{Seed: 7, DropRate: 0.01},
		{Seed: 7, DropRate: 0.05, DupRate: 0.02, DelayRate: 0.05, DelayMax: 300},
	}
	for _, f := range configs {
		var dropped uint64
		for seed := int64(0); seed < 3; seed++ {
			a, st := runFaultFuzz(t, seed, f, false, 1)
			b, _ := runFaultFuzz(t, seed, f, false, 1)
			if a != b {
				t.Fatalf("seed %d faults %+v: two runs diverged\n%s\n%s", seed, f, a, b)
			}
			dropped += st.Dropped
		}
		if dropped == 0 {
			t.Fatalf("faults %+v: no message was ever dropped", f)
		}
	}
}

// TestProtocolFuzzWithBackpressure adds bounded link buffers under
// contention: overflowing messages NACK back to their senders and must
// be retried without breaking coherence. The batch=4 leg repeats the
// whole fuzz with write combining on, so multi-word write requests get
// NACKed, retried and retransmitted vector-intact.
func TestProtocolFuzzWithBackpressure(t *testing.T) {
	f := mesh.FaultConfig{Seed: 3, DropRate: 0.01, LinkBufFlits: 16}
	for _, batch := range []int{1, 4} {
		var bounced uint64
		for seed := int64(0); seed < 3; seed++ {
			a, st := runFaultFuzz(t, seed, f, true, batch)
			b, _ := runFaultFuzz(t, seed, f, true, batch)
			if a != b {
				t.Fatalf("seed %d batch %d: two runs diverged\n%s\n%s", seed, batch, a, b)
			}
			bounced += st.Nacked
		}
		if bounced == 0 {
			t.Fatalf("batch %d: no seed exercised a back-pressure NACK; shrink LinkBufFlits", batch)
		}
	}
}
