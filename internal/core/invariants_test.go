package core

import (
	"strings"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// invariantRig builds a quiesced machine with one page replicated on
// nodes 0 (master), 1 and 2, and returns it with its checker.
func invariantRig(t *testing.T) (*Machine, *InvariantChecker, memory.VAddr) {
	t.Helper()
	cfg := DefaultConfig(2, 2)
	cfg.CheckInvariants = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	va := m.Alloc(0, 1)
	m.Replicate(va, 1, 2)
	m.Poke(va+3, 42)
	ic := m.Invariants()
	if ic == nil {
		t.Fatal("CheckInvariants set but Invariants() is nil")
	}
	if err := ic.Check(); err != nil {
		t.Fatalf("healthy machine fails invariants: %v", err)
	}
	if !ic.Quiescent() {
		t.Fatal("idle machine not quiescent")
	}
	return m, ic, va
}

// cm returns node n's coherence manager frame for va's page.
func frameOn(m *Machine, va memory.VAddr, n mesh.NodeID) memory.PPage {
	for _, g := range m.Kernel().CopyList(va.Page()) {
		if g.Node == n {
			return g.Page
		}
	}
	panic("no copy on node")
}

func TestInvariantCatchesForkedMaster(t *testing.T) {
	m, ic, va := invariantRig(t)
	// Point node 1's master at itself: two nodes now believe they own
	// the master copy.
	f := frameOn(m, va, 1)
	m.cms[1].SetMaster(f, memory.GPage{Node: 1, Page: f})
	err := ic.Check()
	if err == nil || !strings.Contains(err.Error(), "master") {
		t.Fatalf("forked master not caught: %v", err)
	}
}

func TestInvariantCatchesBrokenChain(t *testing.T) {
	m, ic, va := invariantRig(t)
	// Truncate the chain at the middle copy: the tail becomes
	// unreachable by updates.
	mid := m.Kernel().CopyList(va.Page())[1]
	m.cms[mid.Node].SetNext(mid.Page, memory.NilGPage)
	err := ic.Check()
	if err == nil || !strings.Contains(err.Error(), "next") {
		t.Fatalf("broken copy-list chain not caught: %v", err)
	}
}

func TestInvariantCatchesChainCycle(t *testing.T) {
	m, ic, va := invariantRig(t)
	// Point the tail back at the master: a cycle that would propagate
	// updates forever.
	m.cms[2].SetNext(frameOn(m, va, 2), memory.GPage{Node: 0, Page: frameOn(m, va, 0)})
	if err := ic.Check(); err == nil {
		t.Fatal("copy-list cycle not caught")
	}
}

func TestInvariantCatchesDivergedReplica(t *testing.T) {
	m, ic, va := invariantRig(t)
	// Corrupt one word of node 2's replica behind the protocol's back.
	m.mems[2].Write(frameOn(m, va, 2), 3, 999)
	err := ic.Check()
	if err == nil {
		t.Fatal("diverged replica not caught at quiescence")
	}
}

// TestInvariantViolationFailsRun pins the end-to-end path: a run over a
// machine whose structures are corrupted mid-flight reports the
// violation from Run rather than finishing silently.
func TestInvariantViolationFailsRun(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.CheckInvariants = true
	cfg.InvariantPeriod = 100
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	va := m.Alloc(0, 1)
	m.Replicate(va, 1)
	m.Spawn(0, func(th *proc.Thread) {
		for i := 0; i < 50; i++ {
			th.Write(va+memory.VAddr(i%8), memory.Word(i))
			th.Compute(50)
		}
		th.Fence()
	})
	// Corrupt the replica's master pointer before the run; the periodic
	// tick must trip on it.
	m.cms[1].SetMaster(frameOn(m, va, 1), memory.GPage{Node: 1, Page: frameOn(m, va, 1)})
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("corrupted run returned %v, want invariant violation", err)
	}
}

// TestInvariantCheckerIdleWhenOff pins that a machine without
// CheckInvariants has no checker and schedules no periodic work.
func TestInvariantCheckerIdleWhenOff(t *testing.T) {
	m, err := NewMachine(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Invariants() != nil {
		t.Fatal("checker exists despite CheckInvariants=false")
	}
}
