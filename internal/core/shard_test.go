package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
)

// digest captures everything a run can observe: cycle-exact per-thread
// operation logs (every value read plus the clock after every
// operation), the final memory image, elapsed time and the full
// counter block. Two runs with equal digests executed the same
// schedule.
type digest struct {
	Elapsed  sim.Cycles
	Logs     [][]uint64
	Image    [][]memory.Word
	Totals   stats.Node
	Messages uint64
	Updates  uint64
	Relia    stats.Reliability
	Net      mesh.Stats
}

const (
	fuzzMeshW = 4
	fuzzMeshH = 4
	fuzzPages = 8
	fuzzOps   = 300
)

// runRandom executes a seeded random program — every node runs one
// thread issuing a mixed stream of reads, writes, delayed RMWs,
// fences and compute against a shared page set, some pages replicated
// — on the given shard count, and returns its digest.
func runRandom(t *testing.T, shards int, seed int64, faults mesh.FaultConfig, batchWrites int) digest {
	t.Helper()
	cfg := core.DefaultConfig(fuzzMeshW, fuzzMeshH)
	cfg.Shards = shards
	cfg.Faults = faults
	cfg.Timing.MaxBatchWrites = batchWrites
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine(shards=%d): %v", shards, err)
	}
	n := m.Nodes()

	bases := make([]memory.VAddr, fuzzPages)
	for pg := 0; pg < fuzzPages; pg++ {
		home := mesh.NodeID((pg * 5) % n)
		bases[pg] = m.Alloc(home, 1)
		if pg%2 == 0 {
			m.Replicate(bases[pg], mesh.NodeID((int(home)+3)%n), mesh.NodeID((int(home)+7)%n))
		}
		for off := 0; off < memory.PageWords; off++ {
			m.Poke(bases[pg]+memory.VAddr(off), memory.Word(uint32(pg*memory.PageWords+off)))
		}
	}

	logs := make([][]uint64, n)
	for node := 0; node < n; node++ {
		node := node
		m.SpawnNamed(mesh.NodeID(node), fmt.Sprintf("fuzz%d", node), func(th *proc.Thread) {
			rng := rand.New(rand.NewSource(seed*1000 + int64(node)))
			rec := func(v uint64) { logs[node] = append(logs[node], v) }
			for op := 0; op < fuzzOps; op++ {
				va := bases[rng.Intn(fuzzPages)] + memory.VAddr(rng.Intn(memory.PageWords))
				switch rng.Intn(10) {
				case 0, 1, 2:
					rec(uint64(th.Read(va)))
				case 3, 4:
					th.Write(va, memory.Word(rng.Uint32()))
				case 5:
					rec(uint64(th.FaddSync(va, int32(rng.Intn(7)-3))))
				case 6:
					rec(uint64(th.MinXchngSync(va, memory.Word(rng.Uint32()))))
				case 7:
					h := th.DelayedRead(va)
					th.Compute(sim.Cycles(1 + rng.Intn(30)))
					rec(uint64(th.Verify(h)))
				case 8:
					th.Compute(sim.Cycles(1 + rng.Intn(50)))
				case 9:
					th.Fence()
				}
				rec(uint64(th.Now()))
			}
		})
	}

	elapsed, err := m.Run()
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	d := digest{
		Elapsed:  elapsed,
		Logs:     logs,
		Image:    make([][]memory.Word, fuzzPages),
		Totals:   m.Stats().Totals(),
		Messages: m.Stats().Messages(),
		Updates:  m.Stats().MsgUpdate,
		Relia:    m.Stats().Reliability(),
		Net:      m.Mesh().Stats(),
	}
	for pg := 0; pg < fuzzPages; pg++ {
		img := make([]memory.Word, memory.PageWords)
		for off := range img {
			img[off] = m.Peek(bases[pg] + memory.VAddr(off))
		}
		d.Image[pg] = img
	}
	return d
}

// diffDigest pinpoints the first divergence between two digests, for
// actionable failure output.
func diffDigest(t *testing.T, want, got digest, label string) {
	t.Helper()
	if want.Elapsed != got.Elapsed {
		t.Errorf("%s: elapsed %d != serial %d", label, got.Elapsed, want.Elapsed)
	}
	for n := range want.Logs {
		if len(want.Logs[n]) != len(got.Logs[n]) {
			t.Errorf("%s: thread %d log length %d != serial %d", label, n, len(got.Logs[n]), len(want.Logs[n]))
			continue
		}
		for i := range want.Logs[n] {
			if want.Logs[n][i] != got.Logs[n][i] {
				t.Errorf("%s: thread %d log[%d] = %d, serial %d", label, n, i, got.Logs[n][i], want.Logs[n][i])
				break
			}
		}
	}
	for pg := range want.Image {
		for off := range want.Image[pg] {
			if want.Image[pg][off] != got.Image[pg][off] {
				t.Errorf("%s: page %d word %d = %#x, serial %#x", label, pg, off, got.Image[pg][off], want.Image[pg][off])
				break
			}
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: digest differs from serial run (counters: got %+v msgs=%d, want %+v msgs=%d; net got %+v want %+v; reliability got %+v want %+v)",
			label, got.Totals, got.Messages, want.Totals, want.Messages, got.Net, want.Net, got.Relia, want.Relia)
	}
}

// TestShardEquivalenceFuzz runs seeded random programs serially and on
// 2, 4 and 8 shards and requires byte-identical digests: same elapsed
// cycles, same per-thread values and timestamps, same memory images,
// same counters. Three legs stress the paths most likely to diverge:
// the plain protocol, the unreliable network (per-source-node fault
// PRNGs, retransmission timers), and write combining (multi-word
// batches interacting with the lookahead window).
func TestShardEquivalenceFuzz(t *testing.T) {
	legs := []struct {
		name   string
		faults mesh.FaultConfig
		batch  int
	}{
		{name: "base", batch: 1},
		{name: "faults", batch: 1, faults: mesh.FaultConfig{
			Seed: 11, DropRate: 0.02, DupRate: 0.02, DelayRate: 0.03, DelayMax: 40,
		}},
		{name: "combining", batch: 4},
	}
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			for _, seed := range seeds {
				serial := runRandom(t, 1, seed, leg.faults, leg.batch)
				for _, k := range []int{2, 4, 8} {
					got := runRandom(t, k, seed, leg.faults, leg.batch)
					diffDigest(t, serial, got, fmt.Sprintf("seed=%d shards=%d", seed, k))
				}
			}
		})
	}
}
