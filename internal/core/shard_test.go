package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
)

// digest captures everything a run can observe: cycle-exact per-thread
// operation logs (every value read plus the clock after every
// operation), the final memory image, elapsed time and the full
// counter block. Two runs with equal digests executed the same
// schedule.
type digest struct {
	Elapsed  sim.Cycles
	Logs     [][]uint64
	Image    [][]memory.Word
	Totals   stats.Node
	Messages uint64
	Updates  uint64
	Relia    stats.Reliability
	Net      mesh.Stats
	// Observer exports (observer legs only): the full merged event
	// stream, the total pushed count (ring eviction included), and the
	// folded latency histograms.
	Events     []string
	EventCount uint64
	Metrics    stats.Metrics
}

const (
	fuzzMeshW = 4
	fuzzMeshH = 4
	fuzzPages = 8
	fuzzOps   = 300
)

// runRandom executes a seeded random program — every node runs one
// thread issuing a mixed stream of reads, writes, delayed RMWs,
// fences and compute against a shared page set, some pages replicated
// — on the given shard count, and returns its digest. Optional mods
// mutate the machine config before construction (contention, an
// observer, ...).
func runRandom(t *testing.T, shards int, seed int64, faults mesh.FaultConfig, batchWrites int, mods ...func(*core.Config)) digest {
	t.Helper()
	cfg := core.DefaultConfig(fuzzMeshW, fuzzMeshH)
	cfg.Shards = shards
	cfg.Faults = faults
	cfg.Timing.MaxBatchWrites = batchWrites
	for _, mod := range mods {
		mod(&cfg)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine(shards=%d): %v", shards, err)
	}
	n := m.Nodes()

	bases := make([]memory.VAddr, fuzzPages)
	for pg := 0; pg < fuzzPages; pg++ {
		home := mesh.NodeID((pg * 5) % n)
		bases[pg] = m.Alloc(home, 1)
		if pg%2 == 0 {
			m.Replicate(bases[pg], mesh.NodeID((int(home)+3)%n), mesh.NodeID((int(home)+7)%n))
		}
		for off := 0; off < memory.PageWords; off++ {
			m.Poke(bases[pg]+memory.VAddr(off), memory.Word(uint32(pg*memory.PageWords+off)))
		}
	}

	logs := make([][]uint64, n)
	for node := 0; node < n; node++ {
		node := node
		m.SpawnNamed(mesh.NodeID(node), fmt.Sprintf("fuzz%d", node), func(th *proc.Thread) {
			rng := rand.New(rand.NewSource(seed*1000 + int64(node)))
			rec := func(v uint64) { logs[node] = append(logs[node], v) }
			for op := 0; op < fuzzOps; op++ {
				va := bases[rng.Intn(fuzzPages)] + memory.VAddr(rng.Intn(memory.PageWords))
				switch rng.Intn(10) {
				case 0, 1, 2:
					rec(uint64(th.Read(va)))
				case 3, 4:
					th.Write(va, memory.Word(rng.Uint32()))
				case 5:
					rec(uint64(th.FaddSync(va, int32(rng.Intn(7)-3))))
				case 6:
					rec(uint64(th.MinXchngSync(va, memory.Word(rng.Uint32()))))
				case 7:
					h := th.DelayedRead(va)
					th.Compute(sim.Cycles(1 + rng.Intn(30)))
					rec(uint64(th.Verify(h)))
				case 8:
					th.Compute(sim.Cycles(1 + rng.Intn(50)))
				case 9:
					th.Fence()
				}
				rec(uint64(th.Now()))
			}
		})
	}

	elapsed, err := m.Run()
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	d := digest{
		Elapsed:  elapsed,
		Logs:     logs,
		Image:    make([][]memory.Word, fuzzPages),
		Totals:   m.Stats().Totals(),
		Messages: m.Stats().Messages(),
		Updates:  m.Stats().MsgUpdate,
		Relia:    m.Stats().Reliability(),
		Net:      m.Mesh().Stats(),
	}
	for pg := 0; pg < fuzzPages; pg++ {
		img := make([]memory.Word, memory.PageWords)
		for off := range img {
			img[off] = m.Peek(bases[pg] + memory.VAddr(off))
		}
		d.Image[pg] = img
	}
	if o := cfg.Observe; o != nil {
		for _, ev := range o.Events() {
			d.Events = append(d.Events, ev.String())
		}
		d.EventCount = o.EventCount()
		d.Metrics = o.Metrics
	}
	return d
}

// diffDigest pinpoints the first divergence between two digests, for
// actionable failure output.
func diffDigest(t *testing.T, want, got digest, label string) {
	t.Helper()
	if want.Elapsed != got.Elapsed {
		t.Errorf("%s: elapsed %d != serial %d", label, got.Elapsed, want.Elapsed)
	}
	for n := range want.Logs {
		if len(want.Logs[n]) != len(got.Logs[n]) {
			t.Errorf("%s: thread %d log length %d != serial %d", label, n, len(got.Logs[n]), len(want.Logs[n]))
			continue
		}
		for i := range want.Logs[n] {
			if want.Logs[n][i] != got.Logs[n][i] {
				t.Errorf("%s: thread %d log[%d] = %d, serial %d", label, n, i, got.Logs[n][i], want.Logs[n][i])
				break
			}
		}
	}
	for pg := range want.Image {
		for off := range want.Image[pg] {
			if want.Image[pg][off] != got.Image[pg][off] {
				t.Errorf("%s: page %d word %d = %#x, serial %#x", label, pg, off, got.Image[pg][off], want.Image[pg][off])
				break
			}
		}
	}
	if len(want.Events) != len(got.Events) {
		t.Errorf("%s: %d observer events, serial %d (pushed %d vs %d)",
			label, len(got.Events), len(want.Events), got.EventCount, want.EventCount)
	} else {
		for i := range want.Events {
			if want.Events[i] != got.Events[i] {
				t.Errorf("%s: event[%d] = %q, serial %q", label, i, got.Events[i], want.Events[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: digest differs from serial run (counters: got %+v msgs=%d, want %+v msgs=%d; net got %+v want %+v; reliability got %+v want %+v)",
			label, got.Totals, got.Messages, want.Totals, want.Messages, got.Net, want.Net, got.Relia, want.Relia)
	}
}

// TestShardEquivalenceFuzz runs seeded random programs serially and on
// 2, 4 and 8 shards and requires byte-identical digests: same elapsed
// cycles, same per-thread values and timestamps, same memory images,
// same counters — and for observed legs, the same merged event stream
// and latency histograms. Six legs stress the paths most likely to
// diverge: the plain protocol, the unreliable network (per-source-node
// fault PRNGs, retransmission timers), write combining (multi-word
// batches interacting with the lookahead window), link contention
// (mid-round sends replayed at barriers in dispatch-tag order), a
// structured observer (shard-local buffers merged by tag), and
// contention and observation together.
func TestShardEquivalenceFuzz(t *testing.T) {
	contention := func(c *core.Config) { c.NetContention = true }
	observe := func(c *core.Config) {
		c.Observe = stats.NewObserver(stats.ObserveConfig{Events: 1 << 15, EngineEvents: true})
	}
	legs := []struct {
		name   string
		faults mesh.FaultConfig
		batch  int
		mods   []func(*core.Config)
	}{
		{name: "base", batch: 1},
		{name: "faults", batch: 1, faults: mesh.FaultConfig{
			Seed: 11, DropRate: 0.02, DupRate: 0.02, DelayRate: 0.03, DelayMax: 40,
		}},
		{name: "combining", batch: 4},
		{name: "contention", batch: 1, mods: []func(*core.Config){contention}},
		{name: "observer", batch: 1, mods: []func(*core.Config){observe}},
		{name: "contention+observer", batch: 1, mods: []func(*core.Config){contention, observe}},
	}
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			for _, seed := range seeds {
				serial := runRandom(t, 1, seed, leg.faults, leg.batch, leg.mods...)
				for _, k := range []int{2, 4, 8} {
					got := runRandom(t, k, seed, leg.faults, leg.batch, leg.mods...)
					diffDigest(t, serial, got, fmt.Sprintf("%s seed=%d shards=%d", leg.name, seed, k))
				}
			}
		})
	}
}

// kernelOpsDigest captures what a mid-run kernel page operation must
// preserve across shard counts: the final copy-list of every page
// (master first, in list order) and the final memory image. Timing is
// deliberately absent — a sharded run splices copy-lists at the next
// lookahead barrier rather than at the triggering instant, so elapsed
// cycles may differ; the protocol-level outcome may not.
type kernelOpsDigest struct {
	Copies [][]mesh.NodeID
	Image  [][]memory.Word
}

// runKernelOps executes a program whose threads issue runtime
// Replicate calls mid-run — from their own nodes, while
// traffic to the affected pages is in flight — and returns the
// copy-list and memory digest.
func runKernelOps(t *testing.T, shards int) kernelOpsDigest {
	t.Helper()
	cfg := core.DefaultConfig(fuzzMeshW, fuzzMeshH)
	cfg.Shards = shards
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine(shards=%d): %v", shards, err)
	}
	n := m.Nodes()
	bases := make([]memory.VAddr, fuzzPages)
	for pg := 0; pg < fuzzPages; pg++ {
		bases[pg] = m.Alloc(mesh.NodeID((pg*3)%n), 1)
		for off := 0; off < memory.PageWords; off++ {
			m.Poke(bases[pg]+memory.VAddr(off), memory.Word(uint32(pg*memory.PageWords+off)))
		}
	}
	for node := 0; node < n; node++ {
		node := node
		m.SpawnNamed(mesh.NodeID(node), fmt.Sprintf("kop%d", node), func(th *proc.Thread) {
			rng := rand.New(rand.NewSource(900 + int64(node)))
			for op := 0; op < 120; op++ {
				pg := rng.Intn(fuzzPages)
				va := bases[pg] + memory.VAddr(rng.Intn(memory.PageWords))
				switch op % 6 {
				case 0, 1:
					th.Read(va)
				case 2:
					th.Write(va, memory.Word(rng.Uint32()))
				case 3:
					th.Fence()
				case 4:
					th.Compute(sim.Cycles(1 + rng.Intn(40)))
				case 5:
					// Every node pulls a copy of a page it touches onto
					// itself mid-run, with its own and other nodes' traffic
					// to the page still in flight; serially the splice is
					// immediate, sharded it lands at the next barrier.
					m.Kernel().Replicate(va.Page(), mesh.NodeID(node), nil)
				}
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	d := kernelOpsDigest{
		Copies: make([][]mesh.NodeID, fuzzPages),
		Image:  make([][]memory.Word, fuzzPages),
	}
	for pg := 0; pg < fuzzPages; pg++ {
		d.Copies[pg] = m.Kernel().CopyNodes(bases[pg].Page())
		img := make([]memory.Word, memory.PageWords)
		for off := range img {
			img[off] = m.Peek(bases[pg] + memory.VAddr(off))
		}
		d.Image[pg] = img
	}
	return d
}

// TestShardKernelOpsAtBarriers pins the kernel gate lift: runtime
// Replicate issued mid-run lands as barrier work on a
// sharded machine and produce exactly the serial run's copy-lists
// (same nodes, same path-length order) and a coherent, identical
// memory image for every shard count.
func TestShardKernelOpsAtBarriers(t *testing.T) {
	serial := runKernelOps(t, 1)
	for pg, list := range serial.Copies {
		if len(list) < 2 {
			t.Fatalf("page %d never replicated (copy-list %v) — the test lost its point", pg, list)
		}
	}
	for _, k := range []int{2, 4, 8} {
		got := runKernelOps(t, k)
		if !reflect.DeepEqual(serial.Copies, got.Copies) {
			t.Errorf("shards=%d: copy-lists diverged from serial:\n got %v\nwant %v", k, got.Copies, serial.Copies)
		}
		if !reflect.DeepEqual(serial.Image, got.Image) {
			t.Errorf("shards=%d: final memory image diverged from serial", k)
		}
	}
}
