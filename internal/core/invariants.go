package core

import (
	"fmt"

	"plus/internal/coherence"
	"plus/internal/kernel"
	"plus/internal/memory"
	"plus/internal/mesh"
)

// InvariantChecker validates the machine's coherence structures at
// runtime: the single-master and copy-list-chain invariants always, and
// replica convergence (every copy byte-identical) whenever the machine
// is quiescent. It promotes the checks the protocol fuzz tests perform
// after a run into something a faulty-network run can execute
// periodically — a retransmit bug that briefly forks the copy-list or
// loses an update is caught near the cycle it happens, not as a
// mysterious wrong answer millions of cycles later.
//
// Enabled via Config.CheckInvariants; runs every Config.InvariantPeriod
// cycles while events remain, plus once at the end of Run.
type InvariantChecker struct {
	kern *kernel.Kernel
	cms  []*coherence.CM
	// skipConvergence disables the replica-convergence check (invalidate
	// mode: replicas legitimately hold stale words).
	skipConvergence bool
	// Down reports whether a node is currently crashed (set on
	// crash-script runs only). A down node's CM tables are frozen
	// pre-crash state awaiting the wipe at restart, so the structure
	// check treats the kernel's copy-list as authoritative and skips
	// verifying that node's own entries — the invariants must hold on
	// the survivors right through a failover epoch.
	Down func(mesh.NodeID) bool

	// Checks counts structure checks performed; ConvergenceChecks counts
	// how many of those found the machine quiescent and compared replica
	// contents too.
	Checks            uint64
	ConvergenceChecks uint64
}

// CheckStructure validates the replication structures of every page:
// each copy's hardware master pointer names the head of the kernel's
// copy-list, and the hardware next-copy pointers chain through the list
// in exactly the kernel's order, terminating in nil — which also rules
// out cycles and forks.
func (ic *InvariantChecker) CheckStructure() error {
	for vp := memory.VPage(0); int(vp) < ic.kern.PageCount(); vp++ {
		list := ic.kern.CopyList(vp)
		if len(list) == 0 {
			return fmt.Errorf("invariant: page %d has an empty copy-list", vp)
		}
		master := list[0]
		for i, g := range list {
			if ic.Down != nil && ic.Down(g.Node) {
				continue
			}
			cm := ic.cms[g.Node]
			m, ok := cm.Master(g.Page)
			if !ok {
				return fmt.Errorf("invariant: page %d copy %d: node %d has no master entry for frame %d", vp, i, g.Node, g.Page)
			}
			if m != master {
				return fmt.Errorf("invariant: page %d copy %d: node %d master %v != list head %v", vp, i, g.Node, m, master)
			}
			next, ok := cm.Next(g.Page)
			if !ok {
				return fmt.Errorf("invariant: page %d copy %d: node %d has no next-copy entry for frame %d", vp, i, g.Node, g.Page)
			}
			want := memory.NilGPage
			if i+1 < len(list) {
				want = list[i+1]
			}
			if next != want {
				return fmt.Errorf("invariant: page %d copy %d: node %d next %v != %v (copy-list order broken)", vp, i, g.Node, next, want)
			}
		}
	}
	return nil
}

// Quiescent reports whether no protocol activity is in flight: every
// pending-writes cache is empty, every delayed operation has its
// result, every write-combine buffer is empty, every retransmit queue
// has drained, and no background page copy is travelling. Only then
// must replicas have converged. Note a flushed-but-unacked batch needs
// no special case: each of its N words still holds its own
// pending-writes entry, so PendingCount already reports N.
func (ic *InvariantChecker) Quiescent() bool {
	for _, cm := range ic.cms {
		if cm.PendingCount() != 0 || cm.UnresolvedSlots() != 0 ||
			cm.BufferedWrites() != 0 || !cm.TransportIdle() {
			return false
		}
	}
	return ic.kern.CopiesInFlight() == 0
}

// CheckConvergence verifies every copy of every page holds identical
// contents. Valid only at quiescence.
func (ic *InvariantChecker) CheckConvergence() error {
	return ic.kern.CheckCoherent()
}

// Check runs the structure check, plus the convergence check when the
// machine happens to be quiescent.
func (ic *InvariantChecker) Check() error {
	ic.Checks++
	if err := ic.CheckStructure(); err != nil {
		return err
	}
	if ic.skipConvergence || !ic.Quiescent() {
		return nil
	}
	ic.ConvergenceChecks++
	return ic.CheckConvergence()
}
