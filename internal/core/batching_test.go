package core

import (
	"fmt"
	"math/rand"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

// batchOp is one pre-generated operation of the batching-equivalence
// trace. Generating the trace up front (rather than drawing from an RNG
// during the run) guarantees every combine depth replays byte-identical
// programs, so any divergence is the protocol's fault.
type batchOp struct {
	kind  int // 0 write, 1 read own word, 2 fadd, 3 min-xchng, 4 fence, 5 compute
	pg    int
	off   uint32
	val   memory.Word
	delta int32
	cost  sim.Cycles
}

const (
	batchTracePages = 3
	batchTraceOps   = 60
	batchMinOff     = 91      // the min-xchng cell, distinct from counters and private words
	batchMinInit    = 1 << 20 // Poked high so every operand can lower it
)

// genBatchTrace builds one deterministic write-heavy program per node.
// Writes and logged reads touch only the node's private word range
// (1+10n .. 10+10n), so their values depend only on program order per
// location — exactly the ordering write combining must preserve. The
// shared cells take commutative delayed operations only (fetch-add and
// min-exchange), whose final values are interleaving-independent.
func genBatchTrace(seed int64, nodes int) (trace [][]batchOp, deltaSums []int64, minVals []memory.Word) {
	trace = make([][]batchOp, nodes)
	deltaSums = make([]int64, batchTracePages)
	minVals = make([]memory.Word, batchTracePages)
	for pg := range minVals {
		minVals[pg] = batchMinInit
	}
	for n := 0; n < nodes; n++ {
		tr := rand.New(rand.NewSource(seed*1000 + int64(n)))
		privOff := func() uint32 { return uint32(1 + 10*n + tr.Intn(10)) }
		ops := make([]batchOp, 0, batchTraceOps)
		for i := 0; i < batchTraceOps; i++ {
			pg := tr.Intn(batchTracePages)
			switch tr.Intn(10) {
			case 0, 1, 2, 3, 4: // write-heavy: half the mix
				ops = append(ops, batchOp{kind: 0, pg: pg, off: privOff(),
					val: memory.Word(tr.Uint32()) &^ memory.TopBit})
			case 5:
				ops = append(ops, batchOp{kind: 1, pg: pg, off: privOff()})
			case 6:
				d := int32(tr.Intn(21) - 10)
				deltaSums[pg] += int64(d)
				ops = append(ops, batchOp{kind: 2, pg: pg, delta: d})
			case 7:
				v := memory.Word(tr.Intn(batchMinInit))
				if v < minVals[pg] {
					minVals[pg] = v
				}
				ops = append(ops, batchOp{kind: 3, pg: pg, val: v})
			case 8:
				ops = append(ops, batchOp{kind: 4})
			default:
				ops = append(ops, batchOp{kind: 5, cost: sim.Cycles(tr.Intn(100))})
			}
		}
		ops = append(ops, batchOp{kind: 4}) // trailing fence
		trace[n] = ops
	}
	return trace, deltaSums, minVals
}

// runBatchTrace replays a pre-generated trace at one combine depth with
// the invariant checker armed, and returns the observable outcome: the
// final memory image of every page and the per-thread log of every
// private-word read value. Timing (elapsed cycles, message counts) is
// deliberately excluded — batching is allowed to change when things
// happen, never what the program observes.
func runBatchTrace(t *testing.T, trace [][]batchOp, depth int) (image, readLog string, coalesced uint64) {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.Timing.MaxBatchWrites = depth
	cfg.CheckInvariants = true
	cfg.InvariantPeriod = 5000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := len(trace)
	bases := make([]memory.VAddr, batchTracePages)
	for pg := range bases {
		home := mesh.NodeID((pg * 2) % nodes)
		bases[pg] = m.Alloc(home, 1)
		m.Replicate(bases[pg],
			mesh.NodeID((pg*2+1)%nodes),
			mesh.NodeID((pg*2+3)%nodes),
			mesh.NodeID((pg*2+5)%nodes))
		m.Poke(bases[pg]+batchMinOff, batchMinInit)
	}
	logs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for _, op := range trace[n] {
				switch op.kind {
				case 0:
					th.Write(bases[op.pg]+memory.VAddr(op.off), op.val)
				case 1:
					v := th.Read(bases[op.pg] + memory.VAddr(op.off))
					logs[n] += fmt.Sprintf(" %d.%d=%d", op.pg, op.off, v)
				case 2:
					th.Verify(th.Fadd(bases[op.pg], op.delta))
				case 3:
					th.Verify(th.MinXchng(bases[op.pg]+batchMinOff, op.val))
				case 4:
					th.Fence()
				default:
					th.Compute(op.cost)
				}
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("depth %d: %v", depth, err)
	}
	for pg := range bases {
		for off := uint32(0); off < 128; off++ {
			image += fmt.Sprintf(" %d", m.Peek(bases[pg]+memory.VAddr(off)))
		}
	}
	for n := range logs {
		readLog += fmt.Sprintf("t%d:%s\n", n, logs[n])
	}
	return image, readLog, m.Stats().Totals().CoalescedWrites
}

// TestBatchingSemanticsEquivalence is the write-combining fuzzer: the
// same seeded random program runs with combining off (depth 1) and at
// several depths, and every run must produce the identical final memory
// image on every replica (Machine.Run's CheckCoherent already compares
// replicas to masters) and identical values for every private-word
// read. Fetch-add and min-exchange totals are additionally checked
// against the trace's closed-form expectation.
func TestBatchingSemanticsEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		trace, deltaSums, minVals := genBatchTrace(seed, 8)
		baseImage, baseLog, _ := runBatchTrace(t, trace, 1)
		var maxCoalesced uint64
		for _, depth := range []int{2, 4, 8, 16} {
			image, readLog, coalesced := runBatchTrace(t, trace, depth)
			if image != baseImage {
				t.Fatalf("seed %d depth %d: final memory diverged from unbatched run", seed, depth)
			}
			if readLog != baseLog {
				t.Fatalf("seed %d depth %d: read results diverged from unbatched run\nbatched:\n%s\nunbatched:\n%s",
					seed, depth, readLog, baseLog)
			}
			if coalesced > maxCoalesced {
				maxCoalesced = coalesced
			}
		}
		if maxCoalesced == 0 {
			t.Fatalf("seed %d: no depth ever coalesced a write; the fuzz exercised nothing", seed)
		}
		// The shared cells must land on the trace's closed-form values
		// (checked once on the baseline image via a fresh replay's Peek —
		// cheaper: recompute from the image string is awkward, so verify
		// on a dedicated run).
		checkCommutativeCells(t, trace, deltaSums, minVals)
	}
}

// checkCommutativeCells replays the trace once more at depth 16 and pins the
// commutative-cell outcomes directly.
func checkCommutativeCells(t *testing.T, trace [][]batchOp, deltaSums []int64, minVals []memory.Word) {
	t.Helper()
	cfg := DefaultConfig(4, 2)
	cfg.Timing.MaxBatchWrites = 16
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := len(trace)
	bases := make([]memory.VAddr, batchTracePages)
	for pg := range bases {
		bases[pg] = m.Alloc(mesh.NodeID((pg*2)%nodes), 1)
		m.Replicate(bases[pg], mesh.NodeID((pg*2+1)%nodes))
		m.Poke(bases[pg]+batchMinOff, batchMinInit)
	}
	for n := 0; n < nodes; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for _, op := range trace[n] {
				switch op.kind {
				case 0:
					th.Write(bases[op.pg]+memory.VAddr(op.off), op.val)
				case 2:
					th.Verify(th.Fadd(bases[op.pg], op.delta))
				case 3:
					th.Verify(th.MinXchng(bases[op.pg]+batchMinOff, op.val))
				case 4:
					th.Fence()
				}
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for pg := range bases {
		if got := int64(int32(m.Peek(bases[pg]))); got != deltaSums[pg] {
			t.Fatalf("page %d counter = %d, deltas sum to %d", pg, got, deltaSums[pg])
		}
		if got := m.Peek(bases[pg] + batchMinOff); got != minVals[pg] {
			t.Fatalf("page %d min cell = %d, want %d", pg, got, minVals[pg])
		}
	}
}

// TestBatchingFlushesAtThreadExit pins the no-strand guarantee at the
// machine level: threads that end on a bare write (no fence, no read,
// nothing) still drain their combine buffers through the thread-exit
// flush, so Run succeeds, the quiescence invariant holds, and every
// word reaches every replica. If the exit flush were removed, Run's
// stranded-write check would fail this test.
func TestBatchingFlushesAtThreadExit(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Timing.MaxBatchWrites = 8
	cfg.CheckInvariants = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Alloc(0, 1)
	m.Replicate(base, 3, 5)
	for n := 0; n < 4; n++ {
		n := n
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < 5; i++ { // 5 < depth 8: exit with an open buffer
				th.Write(base+memory.VAddr(uint32(1+5*n+i)), memory.Word(100*n+i))
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("thread-exit flush failed to drain: %v", err)
	}
	for n := 0; n < 4; n++ {
		for i := 0; i < 5; i++ {
			if got := m.Peek(base + memory.VAddr(uint32(1+5*n+i))); got != memory.Word(100*n+i) {
				t.Fatalf("word %d = %d, want %d", 1+5*n+i, got, 100*n+i)
			}
		}
	}
	if got := m.Stats().Totals().CoalescedWrites; got == 0 {
		t.Fatal("no write was coalesced; the buffers never opened")
	}
}
