package core

import (
	"strings"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/timing"
)

func newMachine(t *testing.T, w, h int) *Machine {
	t.Helper()
	m, err := NewMachine(DefaultConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig(2, 2)
	cfg.Timing.MaxPendingWrites = 0
	if _, err := NewMachine(cfg); err == nil {
		t.Error("invalid timing accepted")
	}
	cfg = DefaultConfig(2, 2)
	cfg.Mode = proc.SwitchOnSync
	if _, err := NewMachine(cfg); err == nil {
		t.Error("SwitchOnSync without cost accepted")
	}
	cfg.SwitchCost = 40
	if _, err := NewMachine(cfg); err != nil {
		t.Errorf("valid CS config rejected: %v", err)
	}
}

func TestSingleThreadReadWrite(t *testing.T) {
	m := newMachine(t, 2, 2)
	base := m.Alloc(0, 1)
	var got memory.Word
	m.Spawn(0, func(th *proc.Thread) {
		th.Write(base+3, 99)
		got = th.Read(base + 3)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("read-your-write = %d", got)
	}
	if m.Peek(base+3) != 99 {
		t.Fatal("Peek mismatch")
	}
}

func TestRemoteAccessAcrossNodes(t *testing.T) {
	m := newMachine(t, 2, 2)
	base := m.Alloc(3, 1) // page homed on node 3
	m.Poke(base, 7)
	var got memory.Word
	m.Spawn(0, func(th *proc.Thread) {
		got = th.Read(base)
		th.Write(base, 8)
		th.Fence()
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 || m.Peek(base) != 8 {
		t.Fatalf("got=%d final=%d", got, m.Peek(base))
	}
	n0 := m.Stats().Nodes[0]
	if n0.RemoteReads != 1 || n0.RemoteWrites != 1 || n0.PageFaults != 1 {
		t.Fatalf("node 0 stats: %+v", n0)
	}
}

func TestProducerConsumerWithFence(t *testing.T) {
	// The weak-ordering example of §2.1: buffer + flag in different
	// pages; the producer fences between filling the buffer and
	// setting the flag, so the consumer never observes the flag without
	// the data.
	m := newMachine(t, 4, 1)
	buf := m.Alloc(1, 1)
	flag := m.Alloc(2, 1)
	// Replicate both on the consumer's node so it reads locally (the
	// risky case for ordering).
	m.Replicate(buf, 3)
	m.Replicate(flag, 3)
	const items = 20
	var sum memory.Word
	m.Spawn(0, func(th *proc.Thread) {
		for i := 0; i < items; i++ {
			th.Write(buf+memory.VAddr(i), memory.Word(i+1))
		}
		th.Fence() // all buffer writes visible everywhere
		th.Write(flag, 1)
	})
	m.Spawn(3, func(th *proc.Thread) {
		for th.Read(flag) == 0 {
			th.Compute(50)
		}
		for i := 0; i < items; i++ {
			sum += th.Read(buf + memory.VAddr(i))
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if want := memory.Word(items * (items + 1) / 2); sum != want {
		t.Fatalf("consumer sum = %d, want %d (saw stale buffer)", sum, want)
	}
}

func TestDelayedOpsOverlapTiming(t *testing.T) {
	// Eight delayed fadds to a remote page issued back to back must
	// overlap: total time far below eight serialized round trips.
	cfgSerial := func(m *Machine, base memory.VAddr) sim.Cycles {
		m.Spawn(0, func(th *proc.Thread) {
			for i := 0; i < 8; i++ {
				th.FaddSync(base+memory.VAddr(i), 1) // blocking style
			}
		})
		el, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	cfgDelayed := func(m *Machine, base memory.VAddr) sim.Cycles {
		m.Spawn(0, func(th *proc.Thread) {
			var hs [8]proc.Handle
			for i := 0; i < 8; i++ {
				hs[i] = th.Fadd(base+memory.VAddr(i), 1)
			}
			for i := 0; i < 8; i++ {
				th.Verify(hs[i])
			}
		})
		el, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	m1 := newMachine(t, 4, 1)
	b1 := m1.Alloc(3, 1)
	serial := cfgSerial(m1, b1)
	m2 := newMachine(t, 4, 1)
	b2 := m2.Alloc(3, 1)
	overlapped := cfgDelayed(m2, b2)
	if overlapped >= serial {
		t.Fatalf("delayed ops did not overlap: %d >= %d", overlapped, serial)
	}
	for i := 0; i < 8; i++ {
		if m2.Peek(b2+memory.VAddr(i)) != 1 {
			t.Fatal("a delayed fadd was lost")
		}
	}
}

func TestConcurrentFaddsSerializeAtMaster(t *testing.T) {
	m := newMachine(t, 4, 4)
	ctr := m.Alloc(5, 1)
	const perThread = 10
	for n := 0; n < 16; n++ {
		m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
			for i := 0; i < perThread; i++ {
				th.FaddSync(ctr, 1)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != 16*perThread {
		t.Fatalf("counter = %d, want %d", got, 16*perThread)
	}
}

func TestSleepWake(t *testing.T) {
	m := newMachine(t, 2, 1)
	flagVA := m.Alloc(0, 1)
	var sleeper *proc.Thread
	order := ""
	sleeper = m.Spawn(0, func(th *proc.Thread) {
		order += "sleep;"
		th.Sleep()
		order += "woke;"
	})
	m.Spawn(1, func(th *proc.Thread) {
		th.Compute(500)
		order += "waking;"
		th.Wake(sleeper)
		th.Write(flagVA, 1)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if order != "sleep;waking;woke;" {
		t.Fatalf("order = %q", order)
	}
}

func TestWakeBeforeSleepAbsorbed(t *testing.T) {
	m := newMachine(t, 2, 1)
	var target *proc.Thread
	done := false
	target = m.Spawn(0, func(th *proc.Thread) {
		th.Compute(1000) // wake arrives during this
		th.Sleep()       // absorbed, no deadlock
		done = true
	})
	m.Spawn(1, func(th *proc.Thread) {
		th.Wake(target)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("sleeper never finished")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := newMachine(t, 2, 1)
	m.Spawn(0, func(th *proc.Thread) {
		th.Sleep() // nobody wakes
	})
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
}

func TestSwitchOnSyncInterleavesThreads(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Mode = proc.SwitchOnSync
	cfg.SwitchCost = 40
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctr := m.Alloc(1, 1) // remote counter: sync ops have latency to hide
	var trace []int
	for k := 0; k < 2; k++ {
		k := k
		m.Spawn(0, func(th *proc.Thread) {
			for i := 0; i < 3; i++ {
				h := th.Fadd(ctr, 1) // switch happens here
				trace = append(trace, k)
				th.Verify(h)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Peek(ctr) != 6 {
		t.Fatalf("counter = %d", m.Peek(ctr))
	}
	// The two threads must interleave (0,1,0,1,...), not run serially.
	interleaved := false
	for i := 0; i+1 < len(trace); i++ {
		if trace[i] != trace[i+1] {
			interleaved = true
		}
	}
	if !interleaved {
		t.Fatalf("threads ran serially: %v", trace)
	}
	if m.Stats().Nodes[0].CtxSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestReplicationReducesRemoteReads(t *testing.T) {
	run := func(replicate bool) uint64 {
		m := newMachine(t, 4, 1)
		data := m.Alloc(3, 1)
		if replicate {
			m.Replicate(data, 0)
		}
		m.Spawn(0, func(th *proc.Thread) {
			for i := 0; i < 100; i++ {
				th.Read(data + memory.VAddr(i%32))
			}
		})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Nodes[0].RemoteReads
	}
	without := run(false)
	with := run(true)
	if without != 100 {
		t.Fatalf("unreplicated remote reads = %d", without)
	}
	if with != 0 {
		t.Fatalf("replicated remote reads = %d", with)
	}
}

func TestCompetitiveReplicationKicksIn(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.CompetitiveThreshold = 20
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(3, 1)
	m.Spawn(0, func(th *proc.Thread) {
		for i := 0; i < 200; i++ {
			th.Read(data)
			th.Compute(100)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Kernel().HasCopy(data.Page(), 0) {
		t.Fatal("competitive policy never replicated the hot page")
	}
	st := m.Stats().Nodes[0]
	if st.RemoteReads == 0 || st.LocalReads == 0 {
		t.Fatalf("expected a remote→local transition, got %+v", st)
	}
	if st.RemoteReads >= 200 {
		t.Fatal("all reads stayed remote despite replication")
	}
}

func TestUtilizationBounds(t *testing.T) {
	m := newMachine(t, 2, 1)
	base := m.Alloc(0, 1)
	m.Spawn(0, func(th *proc.Thread) {
		th.Compute(10000)
		th.Write(base, 1)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	u := m.Utilization()
	if u <= 0.5 || u > 1.0 {
		t.Fatalf("compute-bound utilization = %f", u)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() sim.Cycles {
		m := newMachine(t, 4, 4)
		data := m.Alloc(0, 2)
		m.ReplicateRange(data, 2, 5, 10)
		for n := 0; n < 16; n++ {
			n := n
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				for i := 0; i < 20; i++ {
					th.FaddSync(data+memory.VAddr((n+i)%64), 1)
					th.Compute(37)
				}
			})
		}
		el, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestTimingMatchesPaperCostAnatomy(t *testing.T) {
	// A single blocking remote fadd between adjacent nodes: issue (25)
	// + one-way (12) + CM (8) + exec (39) + one-way (12) + result read
	// (10) = 106 cycles.
	m := newMachine(t, 2, 1)
	ctr := m.Alloc(1, 1)
	var elapsed sim.Cycles
	m.Spawn(0, func(th *proc.Thread) {
		th.Read(ctr) // touch to fault the mapping in before measuring
		s := th.Now()
		th.FaddSync(ctr, 1)
		elapsed = th.Now() - s
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tm := timing.Default()
	want := tm.DelayedIssue + 12 + tm.CMProcess + tm.RMWSimple + 12 + tm.ResultRead
	if elapsed != want {
		t.Fatalf("blocking fadd = %d cycles, want %d", elapsed, want)
	}
}
