package core

import (
	"testing"

	"plus/internal/mesh"
	"plus/internal/proc"
)

// benchSyncLoop runs one thread per node hammering a remote counter
// with delayed fetch-and-adds and verify polls — the workload where
// the serial engine's direct clock-advance fast paths (yield after a
// sync issue, the verify poll, the re-dispatch after a remote reply)
// pay or don't. Spend is dominated by park/wake machinery when the
// fast paths miss, so this is the focused regression benchmark for
// them.
func benchSyncLoop(b *testing.B, mode proc.Mode, switchCost int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(2, 2)
		cfg.Mode = mode
		cfg.SwitchCost = 40
		if mode == proc.RunToBlock {
			cfg.SwitchCost = 0
		}
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctr := m.Alloc(3, 1)
		for n := 0; n < 4; n++ {
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				for k := 0; k < 200; k++ {
					h := th.Fadd(ctr, 1)
					th.Compute(5)
					th.Verify(h)
				}
			})
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if got := m.Peek(ctr); got != 800 {
			b.Fatalf("counter = %d, want 800", got)
		}
	}
}

// BenchmarkSyncVerifyRunToBlock exercises the verify-poll and
// remote-wait fast paths in the paper's run-to-block mode.
func BenchmarkSyncVerifyRunToBlock(b *testing.B) {
	benchSyncLoop(b, proc.RunToBlock, 0)
}

// BenchmarkSyncVerifySwitchOnSync adds the context-switch dispatch to
// every sync issue — the AdvanceIf fast path in yield() collapses the
// switch to a clock advance whenever the thread is its processor's
// only runnable work.
func BenchmarkSyncVerifySwitchOnSync(b *testing.B) {
	benchSyncLoop(b, proc.SwitchOnSync, 40)
}
