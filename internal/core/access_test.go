package core

import (
	"strings"
	"testing"

	"plus/internal/proc"
	"plus/internal/stats"
)

// accessKinds is the data-access event vocabulary, for filtering.
func isAccessEvent(k stats.EventKind) bool {
	switch k {
	case stats.EvAccRead, stats.EvAccWrite, stats.EvAccRMW, stats.EvAccVerify,
		stats.EvAccFence, stats.EvAccSpawn, stats.EvAccWake, stats.EvAccSleep,
		stats.EvAccExit, stats.EvAccMap:
		return true
	}
	return false
}

// TestDataAccessOffIsInvisible pins the gating contract: an observer
// with DataAccess off records not a single EvAcc* event, and its
// protocol-event stream is byte-identical to one recorded with
// DataAccess on — the access layer only ever ADDS events, it never
// reorders, retimes or perturbs anything else. Elapsed time and
// counters match the unobserved run in all three configurations.
func TestDataAccessOffIsInvisible(t *testing.T) {
	mPlain, ePlain := observeWorkload(t, nil)

	off := stats.NewObserver(stats.ObserveConfig{Events: 1 << 18})
	mOff, eOff := observeWorkload(t, off)

	on := stats.NewObserver(stats.ObserveConfig{Events: 1 << 18, DataAccess: true})
	mOn, eOn := observeWorkload(t, on)

	if ePlain != eOff || ePlain != eOn {
		t.Fatalf("elapsed differs: plain %d, off %d, on %d", ePlain, eOff, eOn)
	}
	if a, b, c := mPlain.Stats().Totals(), mOff.Stats().Totals(), mOn.Stats().Totals(); a != b || a != c {
		t.Fatalf("counters differ:\nplain %+v\noff   %+v\non    %+v", a, b, c)
	}
	if a, b, c := mPlain.Stats().Messages(), mOff.Stats().Messages(), mOn.Stats().Messages(); a != b || a != c {
		t.Fatalf("message counts differ: %d / %d / %d", a, b, c)
	}

	var offDump, onProtocolDump strings.Builder
	accessSeen := 0
	for _, e := range off.Events() {
		if isAccessEvent(e.Kind) {
			t.Fatalf("DataAccess off recorded %v", e.Kind)
		}
		offDump.WriteString(e.String())
		offDump.WriteByte('\n')
	}
	for _, e := range on.Events() {
		if isAccessEvent(e.Kind) {
			accessSeen++
			continue
		}
		onProtocolDump.WriteString(e.String())
		onProtocolDump.WriteByte('\n')
	}
	if accessSeen == 0 {
		t.Fatal("DataAccess on recorded no access events")
	}
	if offDump.String() != onProtocolDump.String() {
		t.Fatal("protocol event stream differs between DataAccess off and on")
	}
}

// TestAccessEventCoverage pins that every access-event kind the
// detector consumes is actually emitted by the machine: reads, writes,
// RMW issue/verify, fence completion, spawn, wake, sleep, exit, and
// page-mapping installs.
func TestAccessEventCoverage(t *testing.T) {
	obs := stats.NewObserver(stats.ObserveConfig{Events: 1 << 16, DataAccess: true})
	cfg := DefaultConfig(2, 1)
	cfg.Observe = obs
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(0, 1)
	var sleeper *proc.Thread
	sleeper = m.Spawn(0, func(th *proc.Thread) {
		th.Sleep()
		th.Read(data)
	})
	m.Spawn(1, func(th *proc.Thread) {
		th.Write(data, 5)
		th.Fence()
		th.Verify(th.Fadd(data+1, 1))
		th.Wake(sleeper)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[stats.EventKind]bool{}
	for _, e := range obs.Events() {
		seen[e.Kind] = true
	}
	for _, k := range []stats.EventKind{
		stats.EvAccRead, stats.EvAccWrite, stats.EvAccRMW, stats.EvAccVerify,
		stats.EvAccFence, stats.EvAccSpawn, stats.EvAccWake, stats.EvAccSleep,
		stats.EvAccExit, stats.EvAccMap,
	} {
		if !seen[k] {
			t.Errorf("no %v event recorded", k)
		}
	}
}
