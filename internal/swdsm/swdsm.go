// Package swdsm simulates a software shared-virtual-memory system in
// the style of Li's IVY / the "shared memory servers" the paper's
// Related Work section compares against (§4): sequentially consistent,
// page-granular, single-writer/multiple-reader, with every coherence
// action taken by kernel software on a page fault.
//
// The paper's claim — "regardless of network and processor speed, they
// result in large software overhead because the basic mechanism is
// paging... the software overhead (a few milliseconds on one-VAX-MIP
// machines) will remain" — becomes measurable: the same access trace
// runs here and on the PLUS machine, and the experiment compares
// elapsed cycles (see experiments.ExtensionSoftwareDSM).
//
// Protocol (static distributed manager):
//
//   - Every page has a fixed manager node that tracks the current
//     owner and the read-copy set.
//   - Read fault: ask the manager, which forwards to the owner; the
//     owner demotes itself to reader and ships the page; the faulting
//     node joins the copy set with read access.
//   - Write fault: ask the manager; the owner ships the page and every
//     copy is invalidated; the faulting node becomes exclusive owner.
//   - Hits (read with R/W access, write with W access) cost only the
//     memory access.
//
// Each fault charges SoftwareFault cycles at the faulting node (trap,
// kernel entry, message construction) plus the configured handling
// cost at each participating node, plus page transfer time over the
// mesh — all parameters in Config.
package swdsm

import (
	"fmt"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// Config sets the software-DSM cost model.
type Config struct {
	// MeshW, MeshH give the node grid (latencies shared with PLUS).
	MeshW, MeshH int
	// SoftwareFault is the per-fault kernel overhead at the faulting
	// node: trap, page-fault handler, request construction. The paper
	// cites "a few milliseconds on one-VAX-MIP machines"; scaled to
	// the 25 MHz PLUS node we default to 25000 cycles (1 ms).
	SoftwareFault sim.Cycles
	// ServiceCost is the software handling cost at the manager/owner
	// for each protocol message (default 2500 cycles — 100 µs).
	ServiceCost sim.Cycles
	// PageTransfer is the time to ship one 4 KB page over a link
	// (default 2048 cycles — 1024 words at 2 cycles/word, matching the
	// mesh flit time).
	PageTransfer sim.Cycles
	// LocalAccess is a memory access that hits with sufficient rights
	// (default 6, same as PLUS's local memory read).
	LocalAccess sim.Cycles
}

// DefaultConfig returns the scaled cost model described above.
func DefaultConfig(w, h int) Config {
	return Config{
		MeshW: w, MeshH: h,
		SoftwareFault: 25000,
		ServiceCost:   2500,
		PageTransfer:  2048,
		LocalAccess:   6,
	}
}

type access int

const (
	accessNone access = iota
	accessRead
	accessWrite
)

// pageState is the manager's view of one page.
type pageState struct {
	owner   mesh.NodeID
	copies  map[mesh.NodeID]bool // readers (excluding the owner)
	manager mesh.NodeID
}

// Machine is the software-DSM system: because every protocol action is
// synchronous kernel code, the simulation can advance a single global
// clock per operation rather than run a message-level event loop — the
// latencies still come from the same mesh model.
type Machine struct {
	cfg   Config
	net   *mesh.Mesh
	eng   *sim.Engine
	pages map[memory.VPage]*pageState
	// rights[node][page] is the node's current access level.
	rights []map[memory.VPage]access
	data   map[memory.VPage][]memory.Word
	// clock[node] is each node's local completion time; Elapsed is
	// their max. Single-threaded-per-node execution, like the PLUS
	// comparison traces.
	clock []sim.Cycles

	// Stats.
	ReadFaults, WriteFaults, Invalidations, PageTransfers uint64
}

// New builds a software-DSM machine.
func New(cfg Config) *Machine {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig(cfg.MeshW, cfg.MeshH))
	n := cfg.MeshW * cfg.MeshH
	m := &Machine{
		cfg:    cfg,
		net:    net,
		eng:    eng,
		pages:  make(map[memory.VPage]*pageState),
		rights: make([]map[memory.VPage]access, n),
		data:   make(map[memory.VPage][]memory.Word),
		clock:  make([]sim.Cycles, n),
	}
	for i := range m.rights {
		m.rights[i] = make(map[memory.VPage]access)
	}
	return m
}

// Alloc creates a page managed and initially owned by home.
func (m *Machine) Alloc(home mesh.NodeID, vp memory.VPage) {
	if _, dup := m.pages[vp]; dup {
		panic(fmt.Sprintf("swdsm: page %d allocated twice", vp))
	}
	m.pages[vp] = &pageState{owner: home, manager: home, copies: map[mesh.NodeID]bool{}}
	m.data[vp] = make([]memory.Word, memory.PageWords)
	m.rights[home][vp] = accessWrite
}

// oneWay returns the mesh latency between two nodes (zero for self).
func (m *Machine) oneWay(a, b mesh.NodeID) sim.Cycles {
	if a == b {
		return 0
	}
	return m.net.Latency(a, b)
}

// Read performs a read by node at va, charging the node's clock.
func (m *Machine) Read(node mesh.NodeID, va memory.VAddr) memory.Word {
	vp := va.Page()
	st := m.pages[vp]
	if st == nil {
		panic(fmt.Sprintf("swdsm: read of unallocated page %d", vp))
	}
	if m.rights[node][vp] == accessNone {
		m.readFault(node, vp, st)
	}
	m.clock[node] += m.cfg.LocalAccess
	return m.data[vp][va.Offset()]
}

// Write performs a write by node at va.
func (m *Machine) Write(node mesh.NodeID, va memory.VAddr, v memory.Word) {
	vp := va.Page()
	st := m.pages[vp]
	if st == nil {
		panic(fmt.Sprintf("swdsm: write of unallocated page %d", vp))
	}
	if m.rights[node][vp] != accessWrite {
		m.writeFault(node, vp, st)
	}
	m.clock[node] += m.cfg.LocalAccess
	m.data[vp][va.Offset()] = v
}

// readFault obtains a read copy: node → manager → owner → node.
func (m *Machine) readFault(node mesh.NodeID, vp memory.VPage, st *pageState) {
	m.ReadFaults++
	c := &m.clock[node]
	*c += m.cfg.SoftwareFault
	*c += m.oneWay(node, st.manager) + m.cfg.ServiceCost // request to manager
	*c += m.oneWay(st.manager, st.owner) + m.cfg.ServiceCost
	*c += m.oneWay(st.owner, node) + m.cfg.PageTransfer // page ships back
	m.PageTransfers++
	// Owner demotes to reader; faulting node gains read access.
	m.rights[st.owner][vp] = accessRead
	st.copies[st.owner] = true
	st.copies[node] = true
	m.rights[node][vp] = accessRead
}

// writeFault obtains exclusive ownership: invalidate all copies, ship
// the page, transfer ownership.
func (m *Machine) writeFault(node mesh.NodeID, vp memory.VPage, st *pageState) {
	m.WriteFaults++
	c := &m.clock[node]
	*c += m.cfg.SoftwareFault
	*c += m.oneWay(node, st.manager) + m.cfg.ServiceCost
	// Invalidations fan out from the manager; the fault completes after
	// the slowest acknowledgement.
	var worst sim.Cycles
	for reader := range st.copies {
		if reader == node {
			continue
		}
		m.Invalidations++
		rt := 2*m.oneWay(st.manager, reader) + m.cfg.ServiceCost
		if rt > worst {
			worst = rt
		}
		m.rights[reader][vp] = accessNone
	}
	if st.owner != node {
		m.rights[st.owner][vp] = accessNone
		rt := m.oneWay(st.manager, st.owner) + m.cfg.ServiceCost +
			m.oneWay(st.owner, node) + m.cfg.PageTransfer
		if rt > worst {
			worst = rt
		}
		m.PageTransfers++
	}
	*c += worst
	st.copies = map[mesh.NodeID]bool{}
	st.owner = node
	m.rights[node][vp] = accessWrite
}

// Compute charges local computation at node.
func (m *Machine) Compute(node mesh.NodeID, c sim.Cycles) {
	m.clock[node] += c
}

// Elapsed returns the slowest node's clock (the parallel makespan for
// independent per-node traces).
func (m *Machine) Elapsed() sim.Cycles {
	var max sim.Cycles
	for _, c := range m.clock {
		if c > max {
			max = c
		}
	}
	return max
}

// Peek reads page data directly (for validation).
func (m *Machine) Peek(va memory.VAddr) memory.Word {
	return m.data[va.Page()][va.Offset()]
}
