package swdsm

import (
	"testing"

	"plus/internal/memory"
)

func TestLocalHitsAreCheap(t *testing.T) {
	m := New(DefaultConfig(2, 1))
	m.Alloc(0, 0)
	m.Write(0, 5, 42)
	if got := m.Read(0, 5); got != 42 {
		t.Fatalf("read = %d", got)
	}
	if m.ReadFaults+m.WriteFaults != 0 {
		t.Fatal("owner faulted on its own page")
	}
	if m.Elapsed() != 2*DefaultConfig(2, 1).LocalAccess {
		t.Fatalf("elapsed = %d", m.Elapsed())
	}
}

func TestReadFaultShipsPage(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	m := New(cfg)
	m.Alloc(0, 0)
	m.Write(0, 3, 9)
	if got := m.Read(1, 3); got != 9 {
		t.Fatalf("remote read = %d", got)
	}
	if m.ReadFaults != 1 || m.PageTransfers != 1 {
		t.Fatalf("faults=%d transfers=%d", m.ReadFaults, m.PageTransfers)
	}
	// Node 1's clock carries the big software overhead.
	if m.Elapsed() < cfg.SoftwareFault {
		t.Fatalf("elapsed %d below the software fault cost", m.Elapsed())
	}
	// Second read: hit.
	before := m.ReadFaults
	m.Read(1, 4)
	if m.ReadFaults != before {
		t.Fatal("read hit faulted")
	}
}

func TestWriteFaultInvalidatesReaders(t *testing.T) {
	m := New(DefaultConfig(4, 1))
	m.Alloc(0, 0)
	m.Write(0, 0, 1)
	m.Read(1, 0) // nodes 1, 2 become readers
	m.Read(2, 0)
	m.Write(3, 0, 7) // must invalidate 0, 1, 2 and take ownership
	if m.Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
	// Readers lost access: their next read faults again.
	before := m.ReadFaults
	if got := m.Read(1, 0); got != 7 {
		t.Fatalf("reader saw stale %d", got)
	}
	if m.ReadFaults != before+1 {
		t.Fatal("invalidated reader did not fault")
	}
}

func TestWriteWriteMigratesOwnership(t *testing.T) {
	m := New(DefaultConfig(2, 1))
	m.Alloc(0, 0)
	for i := 0; i < 5; i++ {
		m.Write(0, 0, memory.Word(uint32(i)))
		m.Write(1, 0, memory.Word(uint32(100+i)))
	}
	// Ping-pong: every alternation is a write fault with a transfer.
	if m.WriteFaults < 9 {
		t.Fatalf("write faults = %d, expected ping-pong", m.WriteFaults)
	}
	if m.Peek(0) != 104 {
		t.Fatalf("final value = %d", m.Peek(0))
	}
}

func TestSequentialConsistencyOfValues(t *testing.T) {
	// Single-writer protocol: the last writer's value is what every
	// later reader sees, fault or hit.
	m := New(DefaultConfig(4, 1))
	m.Alloc(2, 0)
	m.Write(2, 10, 5)
	if m.Read(0, 10) != 5 || m.Read(1, 10) != 5 {
		t.Fatal("readers diverged")
	}
	m.Write(3, 10, 6)
	if m.Read(0, 10) != 6 || m.Read(2, 10) != 6 {
		t.Fatal("post-invalidate readers saw stale data")
	}
}

func TestDoubleAllocPanics(t *testing.T) {
	m := New(DefaultConfig(2, 1))
	m.Alloc(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double alloc accepted")
		}
	}()
	m.Alloc(1, 0)
}
