package coherence

import (
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
)

func TestFiveCopyChainFromTail(t *testing.T) {
	// Write issued through the LAST copy of a 5-deep list: request
	// forwards to the master, updates walk all four successors, the
	// tail (the writer's own node) acks locally.
	r := newRig(t, 8, 1)
	frames := r.page(0, 1, 2, 3, 4)
	r.cms[4].Write(GAddr{4, frames[4], 9}, 77, func() {})
	r.eng.Run()
	for n := mesh.NodeID(0); n <= 4; n++ {
		if got := r.mems[n].Read(frames[n], 9); got != 77 {
			t.Fatalf("copy %d = %d", n, got)
		}
	}
	if r.cms[4].PendingCount() != 0 {
		t.Fatal("write never completed")
	}
	// 1 forward (4→0) + 4 updates; the final ack is local (tail is the
	// originator).
	if r.st.MsgWrite != 1 || r.st.MsgUpdate != 4 || r.st.MsgAck != 0 {
		t.Fatalf("write=%d update=%d ack=%d", r.st.MsgWrite, r.st.MsgUpdate, r.st.MsgAck)
	}
}

func TestWriteForwardingCountsTwoHops(t *testing.T) {
	// Origin (node 3, no copy) sends to node 2's replica, which
	// forwards to the master on node 0: two write requests on the wire.
	r := newRig(t, 4, 1)
	frames := r.page(0, 2)
	r.cms[3].Write(GAddr{2, frames[2], 0}, 5, func() {})
	r.eng.Run()
	if r.st.MsgWrite != 2 {
		t.Fatalf("write messages = %d, want 2 (origin→replica→master)", r.st.MsgWrite)
	}
	if r.mems[0].Read(frames[0], 0) != 5 || r.mems[2].Read(frames[2], 0) != 5 {
		t.Fatal("write lost in forwarding")
	}
}

func TestTwoPendingWritesSameAddressBlockReadUntilBoth(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1)
	g := GAddr{1, frames[1], 0}
	var acks int
	track := func() { acks++ }
	r.cms[0].Write(g, 1, func() {})
	r.cms[0].Write(g, 2, func() {})
	r.cms[0].Fence(track)
	var readAt sim.Cycles
	var readVal memory.Word
	r.cms[0].Read(g, func(v memory.Word) { readAt, readVal = r.eng.Now(), v })
	r.eng.Run()
	if acks != 1 {
		t.Fatal("fence never fired")
	}
	if readVal != 2 {
		t.Fatalf("read = %d, want the second write's value", readVal)
	}
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
	_ = readAt
}

func TestConcurrentWriteAndRMWSerializeAtMaster(t *testing.T) {
	// A plain write and a fetch-and-add race to the same word from
	// different nodes: whatever order the master picks, all copies
	// agree and the result is one of the two serializations.
	r := newRig(t, 4, 1)
	frames := r.page(1, 3)
	r.mems[1].Write(frames[1], 0, 10)
	r.mems[3].Write(frames[3], 0, 10)
	var slot int
	r.cms[0].Write(GAddr{1, frames[1], 0}, 100, func() {})
	r.cms[2].RMW(OpFadd, GAddr{1, frames[1], 0}, 1, func(s int) { slot = s })
	r.eng.Run()
	r.cms[2].TryVerify(slot)
	v1 := r.mems[1].Read(frames[1], 0)
	v3 := r.mems[3].Read(frames[3], 0)
	if v1 != v3 {
		t.Fatalf("copies diverged: %d vs %d", v1, v3)
	}
	if v1 != 100 && v1 != 101 {
		t.Fatalf("final value %d is neither serialization", v1)
	}
}

func TestDelayedReadNeedsNoPendingEntry(t *testing.T) {
	// Fill the pending-writes cache; a delayed-read must still issue
	// (it carries no write), while a fadd must wait.
	r := newRig(t, 2, 1)
	frames := r.page(1)
	tm := r.tm
	for i := 0; i < tm.MaxPendingWrites; i++ {
		r.cms[0].Write(GAddr{1, frames[1], uint32(i)}, 1, func() {})
	}
	readIssued, faddIssued := false, false
	r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], 50}, 0, func(int) { readIssued = true })
	r.cms[0].RMW(OpFadd, GAddr{1, frames[1], 51}, 1, func(int) { faddIssued = true })
	if !readIssued {
		t.Fatal("delayed-read blocked on a full pending-writes cache")
	}
	if faddIssued {
		t.Fatal("fadd issued despite full pending-writes cache")
	}
	r.eng.Run()
	if !faddIssued {
		t.Fatal("fadd never issued after drain")
	}
}

func TestInterleavedPagesIndependentPending(t *testing.T) {
	// Writes to two different pages share the pending-writes cache but
	// block reads only by address.
	r := newRig(t, 2, 1)
	fa := r.page(1)
	fb := r.page(1)
	ga := GAddr{1, fa[1], 0}
	gb := GAddr{1, fb[1], 0}
	r.mems[1].Write(fb[1], 0, 9)
	r.cms[0].Write(ga, 1, func() {})
	done := false
	r.cms[0].Read(gb, func(v memory.Word) {
		done = true
		if v != 9 {
			t.Errorf("read = %d", v)
		}
	})
	// The read of page B proceeds without waiting for page A's ack:
	// run only until the read's natural completion time.
	want := r.tm.RemoteReadOverhead + 2*r.net.Latency(0, 1) + r.tm.CMProcess
	r.eng.RunUntil(want)
	if !done {
		t.Fatal("read of an unrelated address was blocked by a pending write")
	}
	r.eng.Run()
}

func TestSlotWaiterWakesInOrder(t *testing.T) {
	// Saturate the delayed-op cache, then issue two more; they must
	// issue in FIFO order as slots free.
	r := newRig(t, 2, 1)
	frames := r.page(1)
	tm := r.tm
	var first [8]int
	for i := 0; i < tm.MaxDelayedOps; i++ {
		i := i
		r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], uint32(i)}, 0, func(s int) { first[i] = s })
	}
	var order []string
	r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], 20}, 0, func(int) { order = append(order, "a") })
	r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], 21}, 0, func(int) { order = append(order, "b") })
	r.eng.Run()
	// Free two slots; the queued RMWs must issue a then b.
	r.cms[0].TryVerify(first[0])
	r.eng.Run()
	r.cms[0].TryVerify(first[1])
	r.eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("issue order = %v", order)
	}
}

func TestUpdateCarriesMultipleWordsOnce(t *testing.T) {
	// A queue RMW modifies two words (slot + control); they propagate
	// in ONE update message per hop and apply atomically at each copy.
	r := newRig(t, 4, 1)
	frames := r.page(0, 2)
	qsz := uint32(r.tm.MaxQueueSize)
	var slot int
	r.cms[0].RMW(OpQueue, GAddr{0, frames[0], qsz}, 42, func(s int) { slot = s })
	r.eng.Run()
	r.cms[0].TryVerify(slot)
	if r.st.MsgUpdate != 1 {
		t.Fatalf("updates = %d, want 1 multi-word message", r.st.MsgUpdate)
	}
	if r.mems[2].Read(frames[2], 0) != 42|memory.TopBit {
		t.Fatal("slot word not replicated")
	}
	if r.mems[2].Read(frames[2], qsz) != 1 {
		t.Fatal("control word not replicated")
	}
}

func TestReadReplyRoutesToCorrectWaiter(t *testing.T) {
	// Multiple outstanding remote reads resolve to their own values.
	r := newRig(t, 2, 1)
	frames := r.page(1)
	for i := uint32(0); i < 5; i++ {
		r.mems[1].Write(frames[1], i, memory.Word(100+i))
	}
	got := make(map[uint32]memory.Word)
	for i := uint32(0); i < 5; i++ {
		i := i
		r.cms[0].Read(GAddr{1, frames[1], i}, func(v memory.Word) { got[i] = v })
	}
	r.eng.Run()
	for i := uint32(0); i < 5; i++ {
		if got[i] != memory.Word(100+i) {
			t.Fatalf("read %d = %d", i, got[i])
		}
	}
}
