package coherence

import (
	"testing"

	"plus/internal/cache"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// rig is a hand-wired machine fragment: N nodes on a mesh, each with
// memory, cache and a CM, and helpers to build replicated pages.
type rig struct {
	eng  *sim.Engine
	net  *mesh.Mesh
	st   *stats.Machine
	tm   timing.Timing
	mems []*memory.Memory
	cms  []*CM
}

func newRig(t *testing.T, w, h int) *rig {
	t.Helper()
	return newRigTiming(t, w, h, timing.Default())
}

// newRigTiming is newRig with a custom cost table (the batching tests
// raise MaxBatchWrites).
func newRigTiming(t *testing.T, w, h int, tm timing.Timing) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig(w, h))
	st := stats.New(w * h)
	r := &rig{eng: eng, net: net, st: st, tm: tm}
	for i := 0; i < w*h; i++ {
		mem := memory.New()
		ca := cache.New(cache.DefaultConfig(), tm)
		r.mems = append(r.mems, mem)
		r.cms = append(r.cms, New(mesh.NodeID(i), eng, net, mem, ca, tm, st))
	}
	return r
}

// page builds a replicated page with copies (in copy-list order) on
// the given nodes; the first is the master. It returns the per-node
// frame for each copy.
func (r *rig) page(nodes ...mesh.NodeID) map[mesh.NodeID]memory.PPage {
	frames := make(map[mesh.NodeID]memory.PPage, len(nodes))
	gp := make([]memory.GPage, len(nodes))
	for i, n := range nodes {
		f := r.mems[n].AllocFrame()
		frames[n] = f
		gp[i] = memory.GPage{Node: n, Page: f}
	}
	for i, n := range nodes {
		next := memory.NilGPage
		if i+1 < len(nodes) {
			next = gp[i+1]
		}
		r.cms[n].InstallPage(frames[n], gp[0], next)
	}
	return frames
}

// addrFor returns the GAddr a processor on node uses for word off of
// the page, given its closest copy (the node's own if present, else
// the master).
func addrFor(frames map[mesh.NodeID]memory.PPage, master mesh.NodeID, node mesh.NodeID, off uint32) GAddr {
	if f, ok := frames[node]; ok {
		return GAddr{Node: node, Page: f, Off: off}
	}
	return GAddr{Node: master, Page: frames[master], Off: off}
}

func TestLocalWriteUnreplicated(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0)
	var acked bool
	r.cms[0].Write(GAddr{0, frames[0], 5}, 77, func() { acked = true })
	if !acked {
		t.Fatal("write not accepted synchronously with free slot")
	}
	// Master local, no copies: completes inline without network.
	if r.cms[0].PendingCount() != 0 {
		t.Fatalf("pending = %d after self-contained write", r.cms[0].PendingCount())
	}
	r.eng.Run()
	if got := r.mems[0].Read(frames[0], 5); got != 77 {
		t.Fatalf("memory = %d", got)
	}
	if r.st.Messages() != 0 {
		t.Fatalf("unreplicated local write sent %d messages", r.st.Messages())
	}
	if r.st.Nodes[0].LocalWrites != 1 {
		t.Fatalf("local writes = %d", r.st.Nodes[0].LocalWrites)
	}
}

func TestLocalReadValueAndStats(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0)
	r.mems[0].Write(frames[0], 3, 42)
	var got memory.Word
	r.cms[0].Read(GAddr{0, frames[0], 3}, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 42 {
		t.Fatalf("read = %d", got)
	}
	if r.st.Nodes[0].LocalReads != 1 || r.st.Nodes[0].RemoteReads != 0 {
		t.Fatalf("read stats: %+v", r.st.Nodes[0])
	}
}

func TestRemoteRead(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1) // page lives only on node 1
	r.mems[1].Write(frames[1], 9, 1234)
	var got memory.Word
	var at sim.Cycles
	r.cms[0].Read(GAddr{1, frames[1], 9}, func(v memory.Word) { got, at = v, r.eng.Now() })
	r.eng.Run()
	if got != 1234 {
		t.Fatalf("remote read = %d", got)
	}
	// Cost anatomy: 32 (overhead) + one-way + CMProcess + one-way.
	want := r.tm.RemoteReadOverhead + 2*r.net.Latency(0, 1) + r.tm.CMProcess
	if at != want {
		t.Fatalf("remote read completed at %d, want %d", at, want)
	}
	if r.st.Nodes[0].RemoteReads != 1 {
		t.Fatalf("remote reads = %d", r.st.Nodes[0].RemoteReads)
	}
	if r.st.MsgRead != 1 || r.st.MsgReadRep != 1 {
		t.Fatalf("message stats: %+v", r.st)
	}
}

func TestReplicatedWritePropagates(t *testing.T) {
	r := newRig(t, 4, 1)
	frames := r.page(0, 1, 2) // master on 0, copies on 1, 2
	done := false
	r.cms[0].Write(GAddr{0, frames[0], 7}, 55, func() {})
	r.cms[0].Fence(func() { done = true })
	if done {
		t.Fatal("fence passed with write in flight")
	}
	r.eng.Run()
	if !done {
		t.Fatal("fence never completed")
	}
	for n := mesh.NodeID(0); n < 3; n++ {
		if got := r.mems[n].Read(frames[n], 7); got != 55 {
			t.Fatalf("node %d copy = %d, want 55", n, got)
		}
	}
	// Two update messages (0→1, 1→2) and one ack (2→0).
	if r.st.MsgUpdate != 2 || r.st.MsgAck != 1 {
		t.Fatalf("updates=%d acks=%d", r.st.MsgUpdate, r.st.MsgAck)
	}
	if r.st.Nodes[1].Updates != 1 || r.st.Nodes[2].Updates != 1 {
		t.Fatalf("per-node updates: %d %d", r.st.Nodes[1].Updates, r.st.Nodes[2].Updates)
	}
}

func TestWriteFromNonMasterCopyStartsAtMaster(t *testing.T) {
	r := newRig(t, 4, 1)
	frames := r.page(0, 2) // master 0, copy 2
	// Node 2 writes through its local copy: request must route to the
	// master first, then propagate back down the list through node 2.
	r.cms[2].Write(GAddr{2, frames[2], 1}, 11, func() {})
	r.eng.Run()
	if got := r.mems[0].Read(frames[0], 1); got != 11 {
		t.Fatalf("master = %d", got)
	}
	if got := r.mems[2].Read(frames[2], 1); got != 11 {
		t.Fatalf("copy = %d", got)
	}
	// Counted remote: the master is not local to the writer.
	if r.st.Nodes[2].RemoteWrites != 1 || r.st.Nodes[2].LocalWrites != 0 {
		t.Fatalf("write stats: %+v", r.st.Nodes[2])
	}
	if r.cms[2].PendingCount() != 0 {
		t.Fatal("write never completed")
	}
}

func TestWriteFromThirdPartyForwardsToMaster(t *testing.T) {
	r := newRig(t, 4, 1)
	frames := r.page(1, 3) // master 1, copy 3
	// Node 0 has no copy; its mapping points at the master directly.
	r.cms[0].Write(GAddr{1, frames[1], 2}, 99, func() {})
	r.eng.Run()
	if r.mems[1].Read(frames[1], 2) != 99 || r.mems[3].Read(frames[3], 2) != 99 {
		t.Fatal("write did not reach all copies")
	}
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("originator never got the ack")
	}
}

func TestGeneralCoherenceSameOrderEverywhere(t *testing.T) {
	// Two nodes write the same location concurrently through different
	// entry points; all copies must converge to the same final value
	// (copies of a location are always written in the same order).
	r := newRig(t, 4, 1)
	frames := r.page(1, 0, 3)
	a := addrFor(frames, 1, 0, 4) // node 0 writes via its own copy
	b := addrFor(frames, 1, 3, 4) // node 3 writes via its own copy
	for i := 0; i < 10; i++ {
		v := memory.Word(100 + i)
		r.cms[0].Write(a, v, func() {})
		r.cms[3].Write(b, 1000+v, func() {})
	}
	r.eng.Run()
	v0 := r.mems[0].Read(frames[0], 4)
	v1 := r.mems[1].Read(frames[1], 4)
	v3 := r.mems[3].Read(frames[3], 4)
	if v0 != v1 || v1 != v3 {
		t.Fatalf("copies diverged: %d %d %d", v0, v1, v3)
	}
}

func TestPendingWritesCacheLimit(t *testing.T) {
	r := newRig(t, 2, 1)
	tm := timing.Default()
	frames := r.page(1) // all writes remote → slow to retire
	accepted := 0
	for i := 0; i < tm.MaxPendingWrites+3; i++ {
		r.cms[0].Write(GAddr{1, frames[1], uint32(i)}, memory.Word(i), func() { accepted++ })
	}
	if accepted != tm.MaxPendingWrites {
		t.Fatalf("accepted %d writes synchronously, want %d", accepted, tm.MaxPendingWrites)
	}
	r.eng.Run()
	if accepted != tm.MaxPendingWrites+3 {
		t.Fatalf("total accepted = %d", accepted)
	}
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("pending cache not drained")
	}
}

func TestReadBlocksOnPendingWrite(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1)
	g := GAddr{1, frames[1], 0}
	var readDone sim.Cycles
	var ackAt sim.Cycles
	r.cms[0].Write(g, 5, func() {})
	// Track when the write retires.
	r.cms[0].Fence(func() { ackAt = r.eng.Now() })
	r.cms[0].Read(g, func(v memory.Word) {
		readDone = r.eng.Now()
		if v != 5 {
			t.Errorf("read saw %d, want 5", v)
		}
	})
	r.eng.Run()
	if readDone < ackAt {
		t.Fatalf("read completed at %d before write retired at %d", readDone, ackAt)
	}
}

func TestFenceSynchronousWhenIdle(t *testing.T) {
	r := newRig(t, 2, 1)
	called := false
	r.cms[0].Fence(func() { called = true })
	if !called {
		t.Fatal("idle fence was not synchronous")
	}
	if r.st.Nodes[0].Fences != 1 {
		t.Fatalf("fence count = %d", r.st.Nodes[0].Fences)
	}
}

func TestRMWFaddLocalMaster(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0, 1)
	r.mems[0].Write(frames[0], 0, 10)
	r.mems[1].Write(frames[1], 0, 10)
	g := GAddr{0, frames[0], 0}
	var slot int
	r.cms[0].RMW(OpFadd, g, 7, func(s int) { slot = s })
	var got memory.Word
	r.cms[0].Verify(slot, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 10 {
		t.Fatalf("fadd returned %d, want old value 10", got)
	}
	if r.mems[0].Read(frames[0], 0) != 17 || r.mems[1].Read(frames[1], 0) != 17 {
		t.Fatal("fadd result did not propagate to all copies")
	}
	if r.cms[0].BusySlots() != 0 {
		t.Fatal("slot not freed after Verify")
	}
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("RMW write entry not retired")
	}
}

func TestRMWRemoteMasterTiming(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1)
	g := GAddr{1, frames[1], 0}
	var at sim.Cycles
	var slot int
	r.cms[0].RMW(OpFadd, g, 1, func(s int) { slot = s })
	r.cms[0].Verify(slot, func(v memory.Word) { at = r.eng.Now() })
	r.eng.Run()
	// one-way + CMProcess + 39 exec + one-way back.
	want := 2*r.net.Latency(0, 1) + r.tm.CMProcess + r.tm.RMWSimple
	if at != want {
		t.Fatalf("fadd result at %d, want %d", at, want)
	}
}

func TestRMWComplexCost(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1)
	// min-xchng is a 52-cycle op.
	g := GAddr{1, frames[1], 0}
	var at sim.Cycles
	var slot int
	r.cms[0].RMW(OpMinXchng, g, 1, func(s int) { slot = s })
	r.cms[0].Verify(slot, func(v memory.Word) { at = r.eng.Now() })
	r.eng.Run()
	want := 2*r.net.Latency(0, 1) + r.tm.CMProcess + r.tm.RMWComplex
	if at != want {
		t.Fatalf("min-xchng result at %d, want %d", at, want)
	}
}

func TestDelayedOpCacheLimit(t *testing.T) {
	r := newRig(t, 2, 1)
	tm := timing.Default()
	frames := r.page(1)
	issued := 0
	for i := 0; i < tm.MaxDelayedOps+2; i++ {
		r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], uint32(i)}, 0, func(s int) { issued++ })
	}
	if issued != tm.MaxDelayedOps {
		t.Fatalf("issued %d ops synchronously, want %d", issued, tm.MaxDelayedOps)
	}
	// Results arrive, but slots free only on Verify/TryVerify.
	r.eng.Run()
	if issued != tm.MaxDelayedOps {
		t.Fatalf("slots freed without Verify (issued=%d)", issued)
	}
	freed := 0
	for s := 0; s < tm.MaxDelayedOps; s++ {
		if _, ok := r.cms[0].TryVerify(s); ok {
			freed++
		}
	}
	if freed != tm.MaxDelayedOps {
		t.Fatalf("TryVerify freed %d", freed)
	}
	r.eng.Run()
	if issued != tm.MaxDelayedOps+2 {
		t.Fatalf("queued RMWs never issued (issued=%d)", issued)
	}
}

func TestTryVerifyNotReady(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(1)
	var slot int
	r.cms[0].RMW(OpDelayedRead, GAddr{1, frames[1], 0}, 0, func(s int) { slot = s })
	if _, ok := r.cms[0].TryVerify(slot); ok {
		t.Fatal("TryVerify succeeded before the result arrived")
	}
	r.eng.Run()
	if _, ok := r.cms[0].TryVerify(slot); !ok {
		t.Fatal("TryVerify failed after the result arrived")
	}
}

func TestCondXchngNoWriteWhenTopBitClear(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0, 1)
	r.mems[0].Write(frames[0], 0, 3) // top bit clear → no write
	r.mems[1].Write(frames[1], 0, 3)
	var slot int
	r.cms[0].RMW(OpCondXchng, GAddr{0, frames[0], 0}, 42, func(s int) { slot = s })
	var got memory.Word
	r.cms[0].Verify(slot, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 3 {
		t.Fatalf("cond-xchng returned %d", got)
	}
	if r.mems[0].Read(frames[0], 0) != 3 {
		t.Fatal("cond-xchng wrote despite clear top bit")
	}
	if r.st.MsgUpdate != 0 {
		t.Fatal("no-op RMW sent updates")
	}
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("no-op RMW left a pending write")
	}
}

func TestQueueDequeueRoundTrip(t *testing.T) {
	r := newRig(t, 2, 1)
	tm := timing.Default()
	frames := r.page(0)
	qsz := uint32(tm.MaxQueueSize)
	tailCtl := qsz // control words live above the wrap range
	headCtl := qsz + 1
	g := func(off uint32) GAddr { return GAddr{0, frames[0], off} }

	enq := func(v memory.Word) memory.Word {
		var slot int
		r.cms[0].RMW(OpQueue, g(tailCtl), v, func(s int) { slot = s })
		var res memory.Word
		r.cms[0].Verify(slot, func(w memory.Word) { res = w })
		r.eng.Run()
		return res
	}
	deq := func() memory.Word {
		var slot int
		r.cms[0].RMW(OpDequeue, g(headCtl), 0, func(s int) { slot = s })
		var res memory.Word
		r.cms[0].Verify(slot, func(w memory.Word) { res = w })
		r.eng.Run()
		return res
	}

	if res := enq(7); res&memory.TopBit != 0 {
		t.Fatalf("enqueue into empty queue reported full: %#x", res)
	}
	if res := enq(8); res&memory.TopBit != 0 {
		t.Fatalf("second enqueue reported full: %#x", res)
	}
	r1 := deq()
	if r1&memory.TopBit == 0 || r1&^memory.TopBit != 7 {
		t.Fatalf("dequeue #1 = %#x, want 7 with top bit", r1)
	}
	r2 := deq()
	if r2&memory.TopBit == 0 || r2&^memory.TopBit != 8 {
		t.Fatalf("dequeue #2 = %#x, want 8 with top bit", r2)
	}
	// Empty queue: the head slot word has its top bit clear.
	if r3 := deq(); r3&memory.TopBit != 0 {
		t.Fatalf("dequeue of empty queue returned occupied word %#x", r3)
	}
}

func TestQueueWrapsModuloMaxQueueSize(t *testing.T) {
	r := newRig(t, 2, 1)
	tm := timing.Default()
	frames := r.page(0)
	qsz := uint32(tm.MaxQueueSize)
	// Start the tail at the last slot: next enqueue wraps to 0.
	r.mems[0].Write(frames[0], qsz, memory.Word(qsz-1))
	var slot int
	r.cms[0].RMW(OpQueue, GAddr{0, frames[0], qsz}, 5, func(s int) { slot = s })
	r.cms[0].Verify(slot, func(memory.Word) {})
	r.eng.Run()
	if got := r.mems[0].Read(frames[0], qsz); got != 0 {
		t.Fatalf("tail after wrap = %d, want 0", got)
	}
	if got := r.mems[0].Read(frames[0], qsz-1); got != 5|memory.TopBit {
		t.Fatalf("slot = %#x", got)
	}
}

func TestQueueFullReportsOccupiedWord(t *testing.T) {
	r := newRig(t, 2, 1)
	tm := timing.Default()
	frames := r.page(0)
	qsz := uint32(tm.MaxQueueSize)
	// Fill every slot.
	for off := uint32(0); off < qsz; off++ {
		r.mems[0].Write(frames[0], off, memory.TopBit|memory.Word(off))
	}
	var slot int
	r.cms[0].RMW(OpQueue, GAddr{0, frames[0], qsz}, 9, func(s int) { slot = s })
	var res memory.Word
	r.cms[0].Verify(slot, func(v memory.Word) { res = v })
	r.eng.Run()
	if res&memory.TopBit == 0 {
		t.Fatalf("full queue enqueue returned %#x (top bit clear)", res)
	}
	if got := r.mems[0].Read(frames[0], qsz); got != 0 {
		t.Fatalf("tail moved on failed enqueue: %d", got)
	}
}

func TestMinXchngStoresSmaller(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0, 1)
	r.mems[0].Write(frames[0], 0, 100)
	r.mems[1].Write(frames[1], 0, 100)
	g := GAddr{0, frames[0], 0}
	run := func(v memory.Word) memory.Word {
		var slot int
		r.cms[0].RMW(OpMinXchng, g, v, func(s int) { slot = s })
		var res memory.Word
		r.cms[0].Verify(slot, func(w memory.Word) { res = w })
		r.eng.Run()
		return res
	}
	if old := run(50); old != 100 {
		t.Fatalf("min-xchng returned %d", old)
	}
	if r.mems[1].Read(frames[1], 0) != 50 {
		t.Fatal("smaller value did not propagate")
	}
	if old := run(70); old != 50 {
		t.Fatalf("second min-xchng returned %d", old)
	}
	if r.mems[0].Read(frames[0], 0) != 50 {
		t.Fatal("larger value overwrote minimum")
	}
}

func TestFetchSetAndXchng(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0)
	g := GAddr{0, frames[0], 0}
	rmw := func(op Op, v memory.Word) memory.Word {
		var slot int
		r.cms[0].RMW(op, g, v, func(s int) { slot = s })
		var res memory.Word
		r.cms[0].Verify(slot, func(w memory.Word) { res = w })
		r.eng.Run()
		return res
	}
	if old := rmw(OpFetchSet, 0); old != 0 {
		t.Fatalf("fetch-and-set returned %d", old)
	}
	if got := r.mems[0].Read(frames[0], 0); got != memory.TopBit {
		t.Fatalf("memory = %#x", got)
	}
	if old := rmw(OpXchng, 7); old != memory.TopBit {
		t.Fatalf("xchng returned %#x", old)
	}
	if got := r.mems[0].Read(frames[0], 0); got != 7 {
		t.Fatalf("memory after xchng = %d", got)
	}
}

func TestFaddSignedDelta(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0)
	r.mems[0].Write(frames[0], 0, 10)
	g := GAddr{0, frames[0], 0}
	var slot int
	// -3 as two's-complement word.
	r.cms[0].RMW(OpFadd, g, memory.Word(^uint32(2)), func(s int) { slot = s })
	r.cms[0].Verify(slot, func(memory.Word) {})
	r.eng.Run()
	if got := r.mems[0].Read(frames[0], 0); got != 7 {
		t.Fatalf("10 + (-3) = %d", got)
	}
}

func TestFenceWaitsForRMWPropagation(t *testing.T) {
	r := newRig(t, 4, 1)
	frames := r.page(0, 1, 2, 3)
	g := GAddr{0, frames[0], 0}
	var slot int
	r.cms[0].RMW(OpFadd, g, 1, func(s int) { slot = s })
	fenced := false
	r.cms[0].Fence(func() {
		fenced = true
		// At fence time every copy must hold the new value.
		for n := mesh.NodeID(0); n < 4; n++ {
			if r.mems[n].Read(frames[n], 0) != 1 {
				t.Errorf("copy on node %d stale at fence", n)
			}
		}
	})
	r.eng.Run()
	if !fenced {
		t.Fatal("fence never fired")
	}
	r.cms[0].Verify(slot, func(memory.Word) {})
}

func TestPageCopyInstalls(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0)
	for i := uint32(0); i < memory.PageWords; i++ {
		r.mems[0].Write(frames[0], i, memory.Word(i*3))
	}
	dstFrame := r.mems[1].AllocFrame()
	done := false
	r.cms[0].PageCopy(frames[0], memory.GPage{Node: 1, Page: dstFrame}, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("page copy completion never fired")
	}
	for i := uint32(0); i < memory.PageWords; i += 97 {
		if got := r.mems[1].Read(dstFrame, i); got != memory.Word(i*3) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	if r.st.Nodes[1].PagesCopied != 1 || r.st.MsgPage != 1 {
		t.Fatalf("page copy stats: %+v", r.st.Nodes[1])
	}
}

func TestConcurrentFaddsAllApply(t *testing.T) {
	// N concurrent fetch-and-adds from different nodes must all land:
	// the master serializes them (atomicity under contention).
	r := newRig(t, 4, 1)
	frames := r.page(1, 0, 2, 3)
	var slots [4]int
	for n := 0; n < 4; n++ {
		g := addrFor(frames, 1, mesh.NodeID(n), 0)
		r.cms[n].RMW(OpFadd, g, 1, func(s int) { slots[n] = s })
	}
	r.eng.Run()
	for n := 0; n < 4; n++ {
		if _, ok := r.cms[n].TryVerify(slots[n]); !ok {
			t.Fatalf("node %d result missing", n)
		}
	}
	r.eng.Run()
	for n := mesh.NodeID(0); n < 4; n++ {
		if got := r.mems[n].Read(frames[n], 0); got != 4 {
			t.Fatalf("node %d sees %d, want 4", n, got)
		}
	}
}

func TestUpdateRatioStatsShape(t *testing.T) {
	// More copies ⇒ more update messages for the same writes.
	msgs := func(copies int) (updates, total uint64) {
		r := newRig(t, 4, 1)
		nodes := make([]mesh.NodeID, copies)
		for i := range nodes {
			nodes[i] = mesh.NodeID(i)
		}
		frames := r.page(nodes...)
		for i := 0; i < 20; i++ {
			r.cms[0].Write(GAddr{0, frames[0], uint32(i % 8)}, 1, func() {})
			r.eng.Run()
		}
		return r.st.MsgUpdate, r.st.Messages()
	}
	u1, _ := msgs(1)
	u2, t2 := msgs(2)
	u4, t4 := msgs(4)
	if u1 != 0 {
		t.Fatalf("single copy generated %d updates", u1)
	}
	if !(u4 > u2 && u2 > u1) {
		t.Fatalf("updates not increasing with copies: %d %d %d", u1, u2, u4)
	}
	if float64(t4)/float64(u4) >= float64(t2)/float64(u2) {
		t.Fatalf("total/update ratio did not fall with replication: %f vs %f",
			float64(t4)/float64(u4), float64(t2)/float64(u2))
	}
}
