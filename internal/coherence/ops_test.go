package coherence

import (
	"testing"
	"testing/quick"

	"plus/internal/memory"
	"plus/internal/timing"
)

func freshPage() []memory.Word { return make([]memory.Word, memory.PageWords) }

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpXchng:       "xchng",
		OpCondXchng:   "cond-xchng",
		OpFadd:        "fetch-and-add",
		OpFetchSet:    "fetch-and-set",
		OpQueue:       "queue",
		OpDequeue:     "dequeue",
		OpMinXchng:    "min-xchng",
		OpDelayedRead: "delayed-read",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() != "op(?)" {
		t.Errorf("out-of-range op string = %q", Op(99).String())
	}
}

func TestOpsListsTable3_1(t *testing.T) {
	ops := Ops()
	if len(ops) != 8 {
		t.Fatalf("Table 3-1 has 8 delayed operations, Ops() returned %d", len(ops))
	}
}

func TestExecCyclesTable3_1(t *testing.T) {
	tm := timing.Default()
	want := map[Op]uint64{
		OpXchng: 39, OpCondXchng: 39, OpFadd: 39, OpFetchSet: 39, OpDelayedRead: 39,
		OpQueue: 52, OpDequeue: 52, OpMinXchng: 52,
	}
	for op, w := range want {
		if got := uint64(op.ExecCycles(tm)); got != w {
			t.Errorf("%v execution = %d cycles, want %d", op, got, w)
		}
	}
}

// Property: xchng is its own inverse — two exchanges restore memory.
func TestXchngInverseProperty(t *testing.T) {
	f := func(init, v memory.Word, off uint16) bool {
		p := freshPage()
		o := uint32(off) & memory.OffMask
		p[o] = init
		old1, _ := exec(OpXchng, p, o, v, 512, nil)
		old2, _ := exec(OpXchng, p, o, old1, 512, nil)
		return old1 == init && old2 == v && p[o] == init
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fetch-and-add of a then b equals a single add of a+b.
func TestFaddAssociativityProperty(t *testing.T) {
	f := func(init, a, b memory.Word) bool {
		p1, p2 := freshPage(), freshPage()
		p1[0], p2[0] = init, init
		exec(OpFadd, p1, 0, a, 512, nil)
		exec(OpFadd, p1, 0, b, 512, nil)
		exec(OpFadd, p2, 0, memory.Word(uint32(a)+uint32(b)), 512, nil)
		return p1[0] == p2[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fetch-and-set is idempotent and always leaves the top bit.
func TestFetchSetProperty(t *testing.T) {
	f := func(init memory.Word) bool {
		p := freshPage()
		p[0] = init
		old, ws := exec(OpFetchSet, p, 0, 0, 512, nil)
		if old != init || p[0]&memory.TopBit == 0 {
			return false
		}
		if p[0] != init|memory.TopBit {
			return false
		}
		_ = ws
		old2, _ := exec(OpFetchSet, p, 0, 0, 512, nil)
		return old2&memory.TopBit != 0 && p[0] == init|memory.TopBit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: min-xchng computes the running minimum of any sequence.
func TestMinXchngRunningMinimumProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		p := freshPage()
		p[0] = memory.Word(^uint32(0)) // +inf
		min := ^uint32(0)
		for _, v := range vals {
			v &= 0x7fffffff
			exec(OpMinXchng, p, 0, memory.Word(v), 512, nil)
			if v < min {
				min = v
			}
		}
		return uint32(p[0]) == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of queue/dequeue preserves FIFO order of
// the successfully enqueued values.
func TestQueueFIFOProperty(t *testing.T) {
	const qsz = 16
	f := func(ops []bool, seed uint32) bool {
		p := freshPage()
		tailCtl, headCtl := uint32(qsz), uint32(qsz+1)
		var model []memory.Word
		next := memory.Word(seed & 0xffff)
		for _, isEnq := range ops {
			if isEnq {
				old, _ := exec(OpQueue, p, tailCtl, next, qsz, nil)
				if old&memory.TopBit == 0 { // success
					model = append(model, next)
				} else if len(model) != qsz {
					return false // reported full when it was not
				}
				next++
			} else {
				old, _ := exec(OpDequeue, p, headCtl, 0, qsz, nil)
				if old&memory.TopBit != 0 { // success
					if len(model) == 0 {
						return false // dequeued from empty
					}
					if old&^memory.TopBit != model[0] {
						return false // FIFO violated
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // reported empty when it was not
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: delayed-read never modifies memory.
func TestDelayedReadPureProperty(t *testing.T) {
	f := func(init memory.Word, off uint16) bool {
		p := freshPage()
		o := uint32(off) & memory.OffMask
		p[o] = init
		old, ws := exec(OpDelayedRead, p, o, 12345, 512, nil)
		return old == init && len(ws) == 0 && p[o] == init
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: applying exec's write vector to a second page replays the
// exact mutation — this is what keeps replicated copies coherent.
func TestWriteVectorReplaysMutationProperty(t *testing.T) {
	ops := []Op{OpXchng, OpCondXchng, OpFadd, OpFetchSet, OpQueue, OpDequeue, OpMinXchng, OpDelayedRead}
	f := func(opIdx uint8, init [4]memory.Word, operand memory.Word) bool {
		op := ops[int(opIdx)%len(ops)]
		master, replica := freshPage(), freshPage()
		for i, v := range init {
			master[i] = v
			replica[i] = v
		}
		// Queue control words for queue/dequeue.
		master[512], replica[512] = 1, 1
		master[513], replica[513] = 1, 1
		_, ws := exec(op, master, 513, operand, 512, nil)
		for _, w := range ws {
			replica[w.Off] = w.Val
		}
		for i := range master {
			if master[i] != replica[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCondXchngWritesWhenTopBitSet(t *testing.T) {
	p := freshPage()
	p[0] = memory.TopBit | 5
	old, ws := exec(OpCondXchng, p, 0, 9, 512, nil)
	if old != memory.TopBit|5 {
		t.Fatalf("old = %#x", old)
	}
	if p[0] != 9 || len(ws) != 1 {
		t.Fatalf("p[0] = %#x, writes = %v", p[0], ws)
	}
}

func TestGAddrHelpers(t *testing.T) {
	g := At(memory.GPage{Node: 3, Page: 7}, 5000)
	if g.Off != 5000&memory.OffMask {
		t.Fatalf("offset not masked: %d", g.Off)
	}
	if g.GPage() != (memory.GPage{Node: 3, Page: 7}) {
		t.Fatal("GPage round trip failed")
	}
	if g.String() == "" {
		t.Fatal("empty String")
	}
}
