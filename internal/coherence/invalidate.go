package coherence

import (
	"plus/internal/memory"
)

// Write-invalidate ablation mode.
//
// Section 2.2 of the paper argues that, in a distributed-memory
// machine, updating remote copies beats invalidating them: "since
// latency in moving data is much larger in distributed-memory systems
// than in bus-based systems, using a protocol that does not invalidate
// other copies, but instead updates them, is very useful in minimizing
// the cost of cache misses." This file implements the alternative so
// the claim can be measured: in invalidate mode a write still takes
// effect at the master first, but instead of carrying the new data
// down the copy-list, a word-granular invalidation travels the same
// route; a later read of an invalidated word at a replica misses and
// re-fetches the word from the master, repairing the replica.
//
// The mode reuses the whole routing/ack machinery; only the payload
// semantics differ. It exists purely for the ablation benches —
// real PLUS is update-only.

// SetInvalidateMode switches this CM between write-update (PLUS) and
// write-invalidate (ablation) behaviour. All CMs in a machine must
// agree. Must be set before any traffic.
func (cm *CM) SetInvalidateMode(on bool) { cm.invalidateMode = on }

// invalidATE bookkeeping: stale words per local frame.
func (cm *CM) markInvalid(frame memory.PPage, off uint32) {
	if cm.invalid == nil {
		cm.invalid = make(map[memory.PPage]map[uint32]bool)
	}
	ws := cm.invalid[frame]
	if ws == nil {
		ws = make(map[uint32]bool)
		cm.invalid[frame] = ws
	}
	ws[off] = true
	cm.st.Nodes[cm.self].Invalidations++
}

func (cm *CM) isInvalid(frame memory.PPage, off uint32) bool {
	ws, ok := cm.invalid[frame]
	return ok && ws[off&memory.OffMask]
}

// repair installs a fresh master value in an invalidated replica word.
func (cm *CM) repair(frame memory.PPage, off uint32, v memory.Word) {
	cm.mem.Write(frame, off, v)
	cm.ca.Snoop(frame, off)
	if ws, ok := cm.invalid[frame]; ok {
		delete(ws, off&memory.OffMask)
	}
}

// applyInvalidations marks the written words stale at a replica
// (invalidate-mode counterpart of applyWrites for kUpdate messages).
func (cm *CM) applyInvalidations(frame memory.PPage, ws []wordWrite) {
	for _, w := range ws {
		cm.markInvalid(frame, w.Off)
		// The processor cache must drop the line too: the bus carries
		// an invalidate, not data.
		cm.ca.Snoop(frame, w.Off)
	}
}

// readInvalidated services a local read that hit a stale word: fetch
// the word from the master copy, repair the replica, and deliver. The
// cost is exactly a remote blocking read — the §2.2 "cost of cache
// misses" the update protocol avoids.
func (cm *CM) readInvalidated(g GAddr, done func(memory.Word)) {
	mg, ok := cm.master[g.Page]
	if !ok || mg.Node == cm.self {
		// Master local: nothing can be stale here.
		cm.scheduleReadDone(cm.tm.LocalMemRead, done, cm.mem.Read(g.Page, g.Off))
		return
	}
	cm.node().RemoteReads++
	cm.node().InvalidateMisses++
	id := cm.nextID
	cm.nextID++
	cm.readWaiters[id] = readWaiter{g: g, fn: func(v memory.Word) {
		cm.repair(g.Page, g.Off, v)
		done(v)
	}}
	m := cm.newMsg(kReadReq, cm.self, id)
	m.Page, m.Off = mg.Page, g.Off
	m.Dst = mg.Node
	cm.eng.ScheduleEvent(cm.tm.RemoteReadOverhead, cm, ckSend, m)
}
