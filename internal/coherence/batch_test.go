package coherence

import (
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/timing"
)

// batchTiming returns the default cost table with write combining at
// the given depth.
func batchTiming(depth int) timing.Timing {
	tm := timing.Default()
	tm.MaxBatchWrites = depth
	return tm
}

// TestBatchCoalescesWrites drives consecutive same-page writes through
// a depth-4 combine buffer and pins the whole batched message economy:
// two kWriteReq for eight writes, one update per batch per copy, one
// ack per batch, every pending entry retired, every word applied on
// every replica.
func TestBatchCoalescesWrites(t *testing.T) {
	r := newRigTiming(t, 2, 2, batchTiming(4))
	frames := r.page(0, 1, 2) // master on 0, copies on 1 and 2
	w := r.cms[3]             // writer with no local copy: fully remote
	for i := 0; i < 8; i++ {
		g := addrFor(frames, 0, 3, uint32(i))
		w.Write(g, memory.Word(100+i), func() {})
	}
	// Both batches flushed on batch-full; nothing rests in the buffer.
	if n := w.BufferedWrites(); n != 0 {
		t.Fatalf("buffer holds %d words after two full batches", n)
	}
	if r.st.MsgWrite != 2 {
		t.Fatalf("8 writes sent %d write requests, want 2 batches", r.st.MsgWrite)
	}
	r.eng.Run()
	if got := w.PendingCount(); got != 0 {
		t.Fatalf("%d pending writes never retired", got)
	}
	// Each batch: master applies, kUpdate to node 1, kUpdate to node 2,
	// kAck back to node 3.
	if r.st.MsgUpdate != 4 || r.st.MsgAck != 2 {
		t.Fatalf("updates=%d acks=%d, want 4 and 2", r.st.MsgUpdate, r.st.MsgAck)
	}
	if got := r.st.Totals().CoalescedWrites; got != 6 {
		t.Fatalf("coalesced %d words, want 6 (8 writes in 2 batches)", got)
	}
	for _, n := range []mesh.NodeID{0, 1, 2} {
		for i := 0; i < 8; i++ {
			if got := r.mems[n].Read(frames[n], uint32(i)); got != memory.Word(100+i) {
				t.Fatalf("node %d word %d = %d, want %d", n, i, got, 100+i)
			}
		}
	}
	if live := r.net.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live", live)
	}
}

// TestBatchSingleWriteEquivalence pins that with MaxBatchWrites=1 the
// combine buffer never opens and the message counts match the
// unbatched protocol exactly (the goldens' byte-identity guarantee at
// the unit level).
func TestBatchSingleWriteEquivalence(t *testing.T) {
	counts := func(depth int) (uint64, uint64, uint64) {
		r := newRigTiming(t, 2, 2, batchTiming(depth))
		frames := r.page(0, 1)
		for i := 0; i < 5; i++ {
			r.cms[3].Write(addrFor(frames, 0, 3, uint32(i)), memory.Word(i), func() {})
		}
		r.cms[3].FlushBatch()
		r.eng.Run()
		return r.st.MsgWrite, r.st.MsgUpdate, r.st.MsgAck
	}
	w1, u1, a1 := counts(1)
	if w1 != 5 || u1 != 5 || a1 != 5 {
		t.Fatalf("depth 1: writes=%d updates=%d acks=%d, want 5/5/5", w1, u1, a1)
	}
	w8, u8, a8 := counts(8)
	if w8 != 1 || u8 != 1 || a8 != 1 {
		t.Fatalf("depth 8: writes=%d updates=%d acks=%d, want 1/1/1", w8, u8, a8)
	}
}

// TestBatchFlushTriggers exercises each flush trigger the protocol
// documents: destination page change, read-as-combine-barrier, fence,
// delayed-operation issue, and explicit flush.
func TestBatchFlushTriggers(t *testing.T) {
	newOpen := func() (*rig, map[mesh.NodeID]memory.PPage) {
		r := newRigTiming(t, 2, 1, batchTiming(8))
		frames := r.page(0, 1)
		r.cms[1].Write(addrFor(frames, 0, 1, 2), 7, func() {})
		if _, _, open := r.cms[1].BatchTarget(); !open {
			t.Fatal("write did not open the combine buffer")
		}
		return r, frames
	}

	// Page change: a write to a different destination flushes.
	r, _ := newOpen()
	other := r.page(1)
	r.cms[1].Write(GAddr{1, other[1], 0}, 9, func() {})
	if node, page, open := r.cms[1].BatchTarget(); !open || node != 1 || page != other[1] {
		t.Fatalf("buffer after page change: open=%v node=%d page=%d", open, node, page)
	}
	if r.st.MsgWrite != 1 {
		t.Fatalf("page change sent %d write requests, want 1", r.st.MsgWrite)
	}

	// Read: any read by the node flushes.
	r, frames := newOpen()
	r.cms[1].Read(addrFor(frames, 0, 1, 5), func(memory.Word) {})
	if _, _, open := r.cms[1].BatchTarget(); open {
		t.Fatal("read did not flush the combine buffer")
	}

	// Fence flushes.
	r, _ = newOpen()
	r.cms[1].Fence(func() {})
	if _, _, open := r.cms[1].BatchTarget(); open {
		t.Fatal("fence did not flush the combine buffer")
	}

	// RMW issue flushes.
	r, frames = newOpen()
	r.cms[1].RMW(OpFadd, addrFor(frames, 0, 1, 9), 1, func(int) {})
	if _, _, open := r.cms[1].BatchTarget(); open {
		t.Fatal("RMW issue did not flush the combine buffer")
	}

	// Explicit flush.
	r, _ = newOpen()
	r.cms[1].FlushBatch()
	if _, _, open := r.cms[1].BatchTarget(); open {
		t.Fatal("FlushBatch left the buffer open")
	}
	r.eng.Run()
	if r.cms[1].PendingCount() != 0 {
		t.Fatal("flushed write never retired")
	}
}

// TestBatchBlocksOnExactWords pins the wait-on-write rule under
// combining: a read of a word resting in the buffer flushes and blocks
// until the batch's ack, while a read of an unwritten word on the same
// page completes at local-read latency.
func TestBatchBlocksOnExactWords(t *testing.T) {
	r := newRigTiming(t, 2, 1, batchTiming(8))
	frames := r.page(0, 1) // master on 0, copy on 1
	w := r.cms[1]
	w.Write(GAddr{1, frames[1], 3}, 33, func() {})

	var cleanAt, dirtyAt sim.Cycles
	var dirtyVal memory.Word
	// The first read flushes the batch; word 6 has no pending write, so
	// it completes locally without waiting for the ack.
	w.Read(GAddr{1, frames[1], 6}, func(memory.Word) { cleanAt = r.eng.Now() })
	w.Read(GAddr{1, frames[1], 3}, func(v memory.Word) { dirtyVal, dirtyAt = v, r.eng.Now() })
	r.eng.Run()
	if dirtyVal != 33 {
		t.Fatalf("read of pending word = %d, want 33", dirtyVal)
	}
	if cleanAt == 0 || dirtyAt == 0 {
		t.Fatal("a read never completed")
	}
	// The dirty word waits for master round trip + ack; the clean word
	// must not.
	if cleanAt >= dirtyAt {
		t.Fatalf("unwritten word (done at %d) blocked as long as the pending word (done at %d)", cleanAt, dirtyAt)
	}
}

// TestBatchPendingFullFlushes pins the liveness trigger: with the
// combine depth above the pending-writes depth, the 9th write finds
// the cache full, flushes the buffered 8 so their acks can drain, and
// completes after retirement. It also demonstrates the strand hazard
// the machine layer guards against: with no processor attached,
// nothing flushes the final lone write until FlushBatch.
func TestBatchPendingFullFlushes(t *testing.T) {
	tm := batchTiming(16) // deeper than MaxPendingWrites=8
	r := newRigTiming(t, 2, 1, tm)
	frames := r.page(0, 1)
	w := r.cms[1]
	for i := 0; i < 9; i++ {
		w.Write(GAddr{1, frames[1], uint32(i)}, memory.Word(i), func() {})
	}
	// Writes 0-7 filled the pending cache without filling the batch;
	// write 8 hit the full cache and forced the flush.
	if r.st.MsgWrite != 1 {
		t.Fatalf("full pending cache sent %d write requests, want 1", r.st.MsgWrite)
	}
	r.eng.Run()
	// The engine drained, but the 9th write (re-issued when an ack
	// freed an entry) rests in the buffer: a strand, visible to the
	// invariant checker.
	if n := w.BufferedWrites(); n != 1 {
		t.Fatalf("expected the re-issued write stranded in the buffer, have %d", n)
	}
	if w.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1 (the buffered word)", w.PendingCount())
	}
	w.FlushBatch()
	r.eng.Run()
	if w.BufferedWrites() != 0 || w.PendingCount() != 0 {
		t.Fatalf("after explicit flush: buffered=%d pending=%d", w.BufferedWrites(), w.PendingCount())
	}
	for i := 0; i < 9; i++ {
		if got := r.mems[0].Read(frames[0], uint32(i)); got != memory.Word(i) {
			t.Fatalf("master word %d = %d", i, got)
		}
	}
}

// noopAccept is a package-level callback so the alloc pin below does
// not count closure allocations against the protocol.
func noopAccept() {}

// TestBatchWriteZeroAlloc pins the combine-buffer hot path: buffering,
// flushing and batch retirement run allocation-free with pooled
// messages (the warm-up run inside AllocsPerRun absorbs one-time slice
// and map growth).
func TestBatchWriteZeroAlloc(t *testing.T) {
	r := newRigTiming(t, 2, 1, batchTiming(4))
	frames := r.page(0, 1)
	w := r.cms[1]
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 8; i++ { // two full batches, within pending depth
			w.Write(GAddr{1, frames[1], uint32(i)}, 7, noopAccept)
		}
		w.FlushBatch()
		r.eng.Run()
	})
	if avg != 0 {
		t.Fatalf("batched write path allocates %v objects per run, want 0", avg)
	}
}
