package coherence

import (
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/stats"
)

// Write combining (Timing.MaxBatchWrites > 1): consecutive writes from
// this node to the same (node, page) destination coalesce in a combine
// buffer and travel as one multi-word kWriteReq whose flit cost scales
// with the word count, then walk the copy-list as one kUpdate and are
// acknowledged once for the whole batch.
//
// The combine buffer changes message traffic, never semantics:
//
//   - Every buffered word allocates its pending-writes cache entry at
//     issue, so MaxPendingWrites, the read-blocking rule and Fence see
//     combined writes exactly like uncombined ones — wait-on-write
//     still blocks on exactly the words written.
//   - Word order within a batch is issue order, and batches to one
//     page flush in issue order over one FIFO (and go-back-N–ordered)
//     source→master path, so every copy still applies each location's
//     writes in a single global order (general coherence).
//   - Flush triggers: destination page change, batch full, a full
//     pending-writes cache (the waiting writer needs the buffered
//     acks), fence, delayed-operation issue, verify, any read issued
//     by this node (reads are combine barriers), and the processor
//     layer's park/exit points. A batch therefore never outlives the
//     operation stream that could observe it; the invariant checker
//     treats a non-empty buffer as non-quiescent and core.Machine.Run
//     fails if one survives the run.
//
// With MaxBatchWrites <= 1 none of this state is touched and the
// protocol is byte-identical to the unbatched implementation.

// batchWrite buffers one word write (batchMax > 1 path). The caller
// has already checked MaxPendingWrites headroom and counted the write.
func (cm *CM) batchWrite(g GAddr, v memory.Word) {
	if cm.bopen && (g.Node != cm.bnode || g.Page != cm.bpage) {
		cm.FlushBatch()
	}
	if !cm.bopen {
		cm.bopen = true
		cm.bnode, cm.bpage = g.Node, g.Page
		if o := cm.obs(); o != nil {
			// One causal ID spans the whole batch: every member's issue
			// and ack events, and the combined message across its hops,
			// share it.
			cm.bcause = o.CauseFor(int(cm.self))
		}
	} else {
		cm.node().CoalescedWrites++
	}
	id := cm.allocPending(g)
	cm.bids = append(cm.bids, id)
	cm.bwrites = append(cm.bwrites, wordWrite{Off: g.Off, Val: v})
	if o := cm.obs(); o != nil {
		if cm.wrIssued == nil {
			cm.wrIssued = make(map[uint64]issueRec)
		}
		cm.wrIssued[id] = issueRec{at: cm.eng.Now(), cause: cm.bcause}
		cm.lastCause = cm.bcause
		o.Emit(stats.EvWriteIssue, int(cm.self), 0, cm.bcause, packAddr(g), id)
	}
	if len(cm.bwrites) >= cm.batchMax {
		cm.FlushBatch()
	}
}

// FlushBatch sends the combine buffer's contents as one kWriteReq (a
// no-op when the buffer is empty, and always when combining is off).
// The message carries the lead member's pending id; batchIDs remembers
// the rest so the single ack retires every member.
func (cm *CM) FlushBatch() {
	if !cm.bopen {
		return
	}
	cm.bopen = false
	m := cm.newMsg(kWriteReq, cm.self, cm.bids[0])
	m.Page = cm.bpage
	m.Cause = cm.bcause
	m.Writes = append(m.Writes[:0], cm.bwrites...)
	if len(cm.bids) > 1 {
		var ids []uint64
		if n := len(cm.idsFree); n > 0 {
			ids = cm.idsFree[n-1]
			cm.idsFree = cm.idsFree[:n-1]
		}
		cm.batchIDs[m.ID] = append(ids, cm.bids...)
	}
	if o := cm.obs(); o != nil {
		o.Metrics.BatchSize.Observe(uint64(len(cm.bwrites)))
	}
	dst := cm.bnode
	cm.bwrites = cm.bwrites[:0]
	cm.bids = cm.bids[:0]
	cm.bcause = 0
	if dst == cm.self {
		cm.arriveWrite(m)
		return
	}
	cm.send(dst, m)
}

// retireWrite handles a write acknowledgement: a batch lead id retires
// every member of its batch, any other id is a plain single write.
func (cm *CM) retireWrite(id uint64) {
	if cm.batchIDs != nil {
		if ids, ok := cm.batchIDs[id]; ok {
			delete(cm.batchIDs, id)
			for _, wid := range ids {
				cm.finishWrite(wid)
			}
			cm.idsFree = append(cm.idsFree, ids[:0])
			return
		}
	}
	cm.finishWrite(id)
}

// BufferedWrites returns the number of words resting in the combine
// buffer — writes issued but not yet flushed into the protocol. The
// invariant checker requires zero at quiescence and end-of-run.
func (cm *CM) BufferedWrites() int { return len(cm.bwrites) }

// BatchTarget reports the open combine buffer's destination, for
// tests. ok is false when the buffer is empty.
func (cm *CM) BatchTarget() (node mesh.NodeID, page memory.PPage, ok bool) {
	return cm.bnode, cm.bpage, cm.bopen
}
