package coherence

import (
	"fmt"

	"plus/internal/memory"
	"plus/internal/mesh"
)

// GAddr is a word-grained global physical address: the <node-id,
// page-id> pair produced directly by the processor's memory-mapping
// hardware (§2.3), plus the word offset within the page.
type GAddr struct {
	Node mesh.NodeID
	Page memory.PPage
	Off  uint32
}

// At builds a GAddr for word off of global page g.
func At(g memory.GPage, off uint32) GAddr {
	return GAddr{Node: g.Node, Page: g.Page, Off: off & memory.OffMask}
}

// GPage returns the page component of the address.
func (g GAddr) GPage() memory.GPage {
	return memory.GPage{Node: g.Node, Page: g.Page}
}

func (g GAddr) String() string {
	return fmt.Sprintf("gaddr(n%d:p%d+%d)", g.Node, g.Page, g.Off)
}
