// The reliability sublayer: an end-to-end ack/retransmit transport
// that makes every coherence-protocol hop survive the unreliable
// network mode (message loss, duplication, reordering delay, and
// bounded-buffer NACKs — see mesh.FaultConfig).
//
// Design, per PROTOCOL.md "Reliability sublayer":
//
//   - Every protocol message a CM sends to a peer is stamped with a
//     per-(sender, receiver) sequence number (Msg.Seq, starting at 1)
//     and a deep copy is parked in the sender's retransmit queue.
//   - The receiver accepts only the next in-order sequence from each
//     peer, which both deduplicates spurious copies and restores the
//     FIFO delivery the update chain depends on. Anything else —
//     duplicates and out-of-order survivors of a loss — is dropped and
//     the current cumulative ack re-sent (go-back-N).
//   - Every in-order delivery is acknowledged with a cumulative kTAck.
//     Acks are unsequenced; a lost ack is recovered by the sender's
//     timer and the receiver's re-ack of the resulting duplicates.
//   - A per-destination retransmit timer (base Timing.RetransTimeout)
//     re-sends the whole unacknowledged window on expiry, doubling the
//     timeout up to maxBackoff times base. A back-pressure NACK from
//     the mesh is treated as an early timeout with the same backoff.
//
// With the fault model off the sublayer is completely inert: no
// sequence numbers are stamped, no acks or timers exist, and the wire
// behaviour is bit-identical to the reliable network.
package coherence

import (
	"fmt"

	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/stats"
)

// maxBackoff caps the exponential retransmit backoff at
// maxBackoff * Timing.RetransTimeout.
const maxBackoff = 16

// txState is the sender half of one (self, dst) pair: the sequence
// counter, the unacknowledged window (deep copies, in sequence order)
// and the retransmit timer state.
type txState struct {
	nextSeq uint64
	queue   []*mesh.Msg
	// rto is the current retransmit timeout (exponential backoff).
	rto sim.Cycles
	// epoch invalidates in-flight timer events: the engine cannot
	// cancel a scheduled event, so each (re)arm bumps the epoch and a
	// firing timer with a stale epoch is a no-op.
	epoch uint64
	// strikes counts consecutive retransmit-timer expirations without
	// any acknowledged progress from this peer; crash-detection
	// escalation (crash.go) fires when it reaches the configured
	// threshold. Unused (never incremented) without a crash script.
	strikes int
}

// rxState is the receiver half: the highest in-order sequence number
// delivered from one peer.
type rxState struct {
	acked uint64
}

// retransTimer is the pooled payload of a ckRetrans event.
type retransTimer struct {
	dst   mesh.NodeID
	epoch uint64
}

// transportSend stamps m with the next sequence number for dst, parks
// a retransmit copy, and injects the original into the network.
func (cm *CM) transportSend(dst mesh.NodeID, m *mesh.Msg) {
	tx := &cm.tx[dst]
	tx.nextSeq++
	m.Seq = tx.nextSeq
	c := cm.net.CloneMsgAt(cm.self, m)
	c.Dst = dst
	tx.queue = append(tx.queue, c)
	if len(tx.queue) == 1 {
		tx.rto = cm.tm.RetransTimeout
		cm.armRetrans(dst, tx.rto)
	}
	cm.net.Send(cm.self, dst, flits(m), m)
}

// transportAccept filters an arriving sequenced message: true means
// in-order (the caller processes it), false means the message was a
// duplicate or an out-of-order survivor and has been recycled. Either
// way the current cumulative ack returns to the hop sender.
func (cm *CM) transportAccept(m *mesh.Msg) bool {
	rx := &cm.rx[m.Src]
	src := m.Src
	if m.Seq == rx.acked+1 {
		rx.acked = m.Seq
		cm.sendTAck(src, rx.acked)
		return true
	}
	if m.Seq <= rx.acked {
		cm.st.TransDups++
	} else {
		cm.st.TransGaps++
	}
	cm.freeMsg(m)
	// Re-ack so a lost kTAck does not strand the sender until its
	// timer; for a gap the cumulative ack is still useful (it may
	// retire earlier messages whose acks were lost).
	cm.sendTAck(src, rx.acked)
	return false
}

// transportAck retires the unacknowledged window up to the cumulative
// sequence number carried by a kTAck.
func (cm *CM) transportAck(m *mesh.Msg) {
	peer := m.Src
	cum := m.Seq
	cm.freeMsg(m)
	tx := &cm.tx[peer]
	n := 0
	for n < len(tx.queue) && tx.queue[n].Seq <= cum {
		cm.freeMsg(tx.queue[n])
		tx.queue[n] = nil
		n++
	}
	if n == 0 {
		return // stale or duplicate ack
	}
	tx.queue = append(tx.queue[:0], tx.queue[n:]...)
	tx.epoch++ // cancel the outstanding timer
	tx.rto = cm.tm.RetransTimeout
	tx.strikes = 0 // acknowledged progress: the peer is alive
	if len(tx.queue) > 0 {
		cm.armRetrans(peer, tx.rto)
	}
}

// transportNack absorbs a message bounced by a full link buffer: the
// bounced copy is recycled (the retransmit queue still holds its own)
// and the pair backs off before re-sending, like an early timeout.
func (cm *CM) transportNack(m *mesh.Msg) {
	if m.Kind == kTAck {
		// A bounced transport ack is simply lost; the next duplicate
		// arrival regenerates it.
		cm.freeMsg(m)
		return
	}
	if !cm.reliable {
		panic(fmt.Sprintf("coherence: NACK of kind %d on node %d with the reliability sublayer off", m.Kind, cm.self))
	}
	dst := m.Dst
	cm.st.TransStalls++
	cm.freeMsg(m)
	tx := &cm.tx[dst]
	if len(tx.queue) == 0 {
		return // already acknowledged via an earlier (re)transmission
	}
	cm.armRetrans(dst, tx.rto)
	if tx.rto < maxBackoff*cm.tm.RetransTimeout {
		tx.rto *= 2
	}
	if o := cm.obs(); o != nil {
		o.Emit(stats.EvBackoff, int(cm.self), 1, 0, uint64(dst), uint64(tx.rto))
	}
}

// fireRetrans is the ckRetrans handler: if the timer is still current,
// re-send the whole unacknowledged window (go-back-N — the receiver
// discarded everything after the loss) and back off.
func (cm *CM) fireRetrans(tk *retransTimer) {
	tx := &cm.tx[tk.dst]
	live := tk.epoch == tx.epoch
	cm.rtFree = append(cm.rtFree, tk)
	if !live || len(tx.queue) == 0 {
		return
	}
	o := cm.obs()
	for _, c := range tx.queue {
		cm.st.Retransmits++
		if o != nil {
			o.Emit(stats.EvRetransmit, int(cm.self), c.Kind, c.Cause, uint64(tk.dst), c.Seq)
		}
		cm.net.Send(cm.self, tk.dst, flits(c), cm.net.CloneMsgAt(cm.self, c))
	}
	if tx.rto < maxBackoff*cm.tm.RetransTimeout {
		tx.rto *= 2
	}
	cm.armRetrans(tk.dst, tx.rto)
	if o != nil {
		o.Emit(stats.EvBackoff, int(cm.self), 0, 0, uint64(tk.dst), uint64(tx.rto))
	}
	// Crash-detection escalation (crash script runs only): after
	// detectStrikes consecutive expirations with zero progress, hand
	// the peer to the suspicion hook. Called last — a confirmed crash
	// re-enters this CM and rewrites the very txState above.
	if cm.suspectFn != nil {
		tx.strikes++
		if tx.strikes >= cm.detectStrikes {
			tx.strikes = 0
			cm.suspectFn(tk.dst)
		}
	}
}

// armRetrans schedules the retransmit timer for dst after delay,
// superseding any timer already in flight for the pair.
func (cm *CM) armRetrans(dst mesh.NodeID, delay sim.Cycles) {
	tx := &cm.tx[dst]
	tx.epoch++
	var tk *retransTimer
	if n := len(cm.rtFree); n > 0 {
		tk = cm.rtFree[n-1]
		cm.rtFree = cm.rtFree[:n-1]
	} else {
		tk = &retransTimer{}
	}
	tk.dst, tk.epoch = dst, tx.epoch
	cm.eng.ScheduleEvent(delay, cm, ckRetrans, tk)
}

// sendTAck returns a cumulative transport ack to a peer.
func (cm *CM) sendTAck(dst mesh.NodeID, cum uint64) {
	a := cm.net.AllocMsgAt(cm.self)
	a.Kind = kTAck
	a.Origin = cm.self
	a.Seq = cum
	cm.send(dst, a)
}

// TransportIdle reports whether every retransmit queue is empty — all
// sequenced messages this node ever sent have been acknowledged. Part
// of the quiescence predicate of core's InvariantChecker.
func (cm *CM) TransportIdle() bool {
	for i := range cm.tx {
		if len(cm.tx[i].queue) > 0 {
			return false
		}
	}
	return true
}

// UnresolvedSlots returns the number of delayed-operation slots whose
// result has not yet arrived (busy and not ready): operations that may
// still mutate memory somewhere in the machine. Slots holding an
// unconsumed result do not count — their effects are tracked by the
// pending-writes cache until fully propagated.
func (cm *CM) UnresolvedSlots() int {
	n := 0
	for i := range cm.slots {
		if cm.slots[i].busy && !cm.slots[i].ready {
			n++
		}
	}
	return n
}
