// Package coherence implements the PLUS memory-coherence manager: the
// per-node hardware module (Xilinx PLDs in the 1990 implementation)
// that performs global memory mapping, the non-demand write-update
// coherence protocol over replicated pages, and the delayed
// (split-transaction) read-modify-write operations.
//
// Protocol summary (§2.3 of the paper):
//
//   - Writes are always performed first on the master copy and then
//     propagated down the ordered copy-list; the last copy returns an
//     acknowledgement to the originating processor. Copies of a given
//     location are therefore always written in the same order
//     (general coherence).
//   - Writes do not block the issuing processor; the pending-writes
//     cache (8 entries) remembers incomplete writes. The processor
//     blocks on a 9th outstanding write, on reading a location with a
//     pending write, and on an explicit fence.
//   - Delayed operations are issued to the master copy, executed there
//     atomically, and the old value returns to the originator's
//     delayed-operations cache (8 entries); modifications propagate
//     down the copy-list like writes.
package coherence

import (
	"fmt"

	"plus/internal/cache"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// CM is one node's memory-coherence manager. It is driven entirely
// from the simulation engine's single logical thread: processor-side
// calls happen inside a coroutine slice, network messages arrive as
// engine events. Completion callbacks may fire synchronously (when the
// operation completes without waiting) or from a later engine event.
type CM struct {
	self mesh.NodeID
	eng  *sim.Engine
	net  *mesh.Mesh
	mem  *memory.Memory
	ca   *cache.Cache
	tm   timing.Timing
	st   *stats.Machine

	// master maps each locally present frame to the global address of
	// the page's master copy. Maintained by the operating system
	// (kernel package); consulted by the write/RMW routing hardware.
	master map[memory.PPage]memory.GPage
	// next maps each locally present frame to its successor on the
	// copy-list, or NilGPage at the end of the list.
	next map[memory.PPage]memory.GPage

	// Pending-writes cache.
	pending      map[uint64]GAddr
	pendingAddrs map[GAddr]int
	nextID       uint64
	writeWaiters []func()
	fenceWaiters []func()
	readRetry    map[GAddr][]func()

	// Delayed-operations cache.
	slots       []dslot
	slotWaiters []func()

	// Outstanding remote blocking reads.
	readWaiters map[uint64]func(memory.Word)

	// Write-invalidate ablation mode (see invalidate.go). Real PLUS is
	// write-update; this exists to measure the §2.2 claim.
	invalidateMode bool
	invalid        map[memory.PPage]map[uint32]bool
}

type dslot struct {
	busy   bool
	ready  bool
	val    memory.Word
	waiter func(memory.Word)
}

// New wires a coherence manager to its node's memory, cache and the
// mesh. It attaches itself as the node's message handler.
func New(self mesh.NodeID, eng *sim.Engine, net *mesh.Mesh, mem *memory.Memory, ca *cache.Cache, tm timing.Timing, st *stats.Machine) *CM {
	cm := &CM{
		self:         self,
		eng:          eng,
		net:          net,
		mem:          mem,
		ca:           ca,
		tm:           tm,
		st:           st,
		master:       make(map[memory.PPage]memory.GPage),
		next:         make(map[memory.PPage]memory.GPage),
		pending:      make(map[uint64]GAddr),
		pendingAddrs: make(map[GAddr]int),
		nextID:       1,
		readRetry:    make(map[GAddr][]func()),
		slots:        make([]dslot, tm.MaxDelayedOps),
		readWaiters:  make(map[uint64]func(memory.Word)),
	}
	net.Attach(self, cm.handle)
	return cm
}

// Self returns the node this CM serves.
func (cm *CM) Self() mesh.NodeID { return cm.self }

// node returns this node's stats block.
func (cm *CM) node() *stats.Node { return &cm.st.Nodes[cm.self] }

// --- Kernel-side table maintenance -----------------------------------

// InstallPage registers a locally present frame with its master and
// successor, making the replication structure visible to the hardware
// via the master and next-copy tables (§2.3).
func (cm *CM) InstallPage(frame memory.PPage, master, next memory.GPage) {
	cm.master[frame] = master
	cm.next[frame] = next
}

// SetNext rewrites the successor of a local frame (copy-list splice).
func (cm *CM) SetNext(frame memory.PPage, next memory.GPage) {
	if _, ok := cm.next[frame]; !ok {
		panic(fmt.Sprintf("coherence: SetNext of uninstalled frame %d on node %d", frame, cm.self))
	}
	cm.next[frame] = next
}

// SetMaster rewrites the master pointer of a local frame (used when
// the master migrates).
func (cm *CM) SetMaster(frame memory.PPage, master memory.GPage) {
	if _, ok := cm.master[frame]; !ok {
		panic(fmt.Sprintf("coherence: SetMaster of uninstalled frame %d on node %d", frame, cm.self))
	}
	cm.master[frame] = master
}

// DropPage removes a frame's coherence tables (copy deletion).
func (cm *CM) DropPage(frame memory.PPage) {
	delete(cm.master, frame)
	delete(cm.next, frame)
}

// Master returns the master pointer for a local frame.
func (cm *CM) Master(frame memory.PPage) (memory.GPage, bool) {
	g, ok := cm.master[frame]
	return g, ok
}

// Next returns the copy-list successor for a local frame.
func (cm *CM) Next(frame memory.PPage) (memory.GPage, bool) {
	g, ok := cm.next[frame]
	return g, ok
}

// PendingCount returns the number of incomplete writes (pending-writes
// cache occupancy).
func (cm *CM) PendingCount() int { return len(cm.pending) }

// BusySlots returns the number of delayed-operation cache entries in
// use.
func (cm *CM) BusySlots() int {
	n := 0
	for i := range cm.slots {
		if cm.slots[i].busy {
			n++
		}
	}
	return n
}

// --- Processor-side operations ---------------------------------------

// Read performs a (possibly blocking) read. done receives the value;
// completion is always delivered through an engine event, never
// synchronously, so the calling coroutine can park unconditionally
// after issuing.
func (cm *CM) Read(g GAddr, done func(memory.Word)) {
	cm.startRead(g, done)
}

func (cm *CM) startRead(g GAddr, done func(memory.Word)) {
	// Reading a location that is currently being written blocks until
	// the write completes (intra-processor strong ordering, §2.3).
	if cm.pendingAddrs[g] > 0 {
		cm.readRetry[g] = append(cm.readRetry[g], func() { cm.startRead(g, done) })
		return
	}
	if g.Node == cm.self {
		if cm.invalidateMode && cm.isInvalid(g.Page, g.Off) {
			cm.readInvalidated(g, done)
			return
		}
		cost := cm.ca.Read(g.Page, g.Off)
		v := cm.mem.Read(g.Page, g.Off)
		cm.node().LocalReads++
		if cost <= cm.tm.CacheHit {
			cm.node().CacheHits++
		} else {
			cm.node().CacheMisses++
		}
		cm.eng.Schedule(cost, func() { done(v) })
		return
	}
	cm.node().RemoteReads++
	cm.st.Emit(int(cm.self), "read", "remote %v", g)
	id := cm.nextID
	cm.nextID++
	cm.readWaiters[id] = done
	// The paper charges "about 32 cycles plus the round-trip delay"
	// for a remote blocking read; the 32 cycles are the processor and
	// interface overhead, charged here before the request enters the
	// network. The serving CM adds its processing time on arrival.
	cm.eng.Schedule(cm.tm.RemoteReadOverhead, func() {
		cm.send(g.Node, &msg{kind: kReadReq, origin: cm.self, id: id, page: g.Page, off: g.Off})
	})
}

// Write issues a non-blocking write. accepted is called as soon as a
// pending-writes cache entry is allocated — synchronously when one is
// free, otherwise from a later event once an earlier write completes.
// The write then propagates in the background; completion is visible
// through Fence, PendingCount, and the read-blocking rule.
func (cm *CM) Write(g GAddr, v memory.Word, accepted func()) {
	if len(cm.pending) >= cm.tm.MaxPendingWrites {
		cm.writeWaiters = append(cm.writeWaiters, func() { cm.Write(g, v, accepted) })
		return
	}
	id := cm.allocPending(g)
	accepted()
	cm.st.Emit(int(cm.self), "write", "%v <- %#x (pending %d)", g, v, id)
	if g.Node == cm.self {
		// A write counts as local only when it completes entirely in
		// local memory: the master copy is here and the page has no
		// other copies to update. Writes to replicated pages generate
		// network traffic however they are issued, which is what the
		// paper's Table 2-1 write ratio measures.
		if cm.completesLocally(g.Page) {
			cm.node().LocalWrites++
		} else {
			cm.node().RemoteWrites++
		}
		cm.arriveWrite(g.Page, g.Off, v, cm.self, id)
		return
	}
	cm.node().RemoteWrites++
	cm.send(g.Node, &msg{kind: kWriteReq, origin: cm.self, id: id, page: g.Page, off: g.Off, val: v})
}

// Fence blocks until every earlier write by this node has completed
// (the pending-writes cache is empty). done may be invoked
// synchronously when there is nothing outstanding.
func (cm *CM) Fence(done func()) {
	cm.node().Fences++
	if len(cm.pending) == 0 {
		done()
		return
	}
	cm.fenceWaiters = append(cm.fenceWaiters, done)
}

// RMW issues a delayed operation. issued is called (synchronously when
// resources are free) once a delayed-operations cache slot — and, for
// mutating ops, a pending-writes entry — has been allocated; the slot
// index it receives is the operation identifier the program later
// passes to Verify. The paper's cost anatomy: the ~25-cycle issue time
// is charged by the processor layer, the master's 39/52-cycle
// execution by this package, the ~10-cycle result read at Verify.
func (cm *CM) RMW(op Op, g GAddr, operand memory.Word, issued func(slot int)) {
	slot := cm.freeSlot()
	if slot < 0 {
		cm.slotWaiters = append(cm.slotWaiters, func() { cm.RMW(op, g, operand, issued) })
		return
	}
	var pid uint64
	if !op.IsRead() {
		if len(cm.pending) >= cm.tm.MaxPendingWrites {
			cm.writeWaiters = append(cm.writeWaiters, func() { cm.RMW(op, g, operand, issued) })
			return
		}
		pid = cm.allocPending(g)
	}
	cm.slots[slot] = dslot{busy: true}
	cm.node().RMWIssued++
	// Local/remote accounting mirrors writes: a mutating RMW is local
	// only when it completes entirely in local memory. Delayed-read
	// counts as a read, local when the master is here.
	n := cm.node()
	if op.IsRead() {
		if g.Node == cm.self {
			if m, ok := cm.master[g.Page]; ok && m.Node == cm.self {
				n.LocalReads++
			} else {
				n.RemoteReads++
			}
		} else {
			n.RemoteReads++
		}
	} else if g.Node == cm.self && cm.completesLocally(g.Page) {
		n.LocalWrites++
	} else {
		n.RemoteWrites++
	}
	issued(slot)
	cm.st.Emit(int(cm.self), "rmw", "%v %v operand=%#x slot=%d", op, g, operand, slot)
	if g.Node == cm.self {
		cm.arriveRMW(op, g.Page, g.Off, operand, cm.self, uint64(slot), pid)
		return
	}
	cm.send(g.Node, &msg{kind: kRMWReq, origin: cm.self, id: uint64(slot), pid: pid, op: op, page: g.Page, off: g.Off, val: operand})
}

// Verify retrieves a delayed operation's result, blocking until it is
// available. The slot is freed when the result is consumed. done may
// fire synchronously if the result has already arrived.
func (cm *CM) Verify(slot int, done func(memory.Word)) {
	s := &cm.slots[slot]
	if !s.busy {
		panic(fmt.Sprintf("coherence: Verify of free slot %d on node %d", slot, cm.self))
	}
	if s.ready {
		v := s.val
		cm.releaseSlot(slot)
		done(v)
		return
	}
	if s.waiter != nil {
		panic(fmt.Sprintf("coherence: second Verify of slot %d on node %d", slot, cm.self))
	}
	s.waiter = done
}

// TryVerify inspects a delayed-operation slot without blocking: if the
// result has arrived it is returned (and the slot freed); otherwise
// ok is false. The paper notes software can inspect the status of
// delayed-operation cache locations to implement non-blocking reads.
func (cm *CM) TryVerify(slot int) (memory.Word, bool) {
	s := &cm.slots[slot]
	if !s.busy || !s.ready {
		return 0, false
	}
	v := s.val
	cm.releaseSlot(slot)
	return v, true
}

// PageCopy snapshots local frame src and ships it to dst, whose CM
// installs it and then invokes done. Used by the kernel's replication
// path after the new copy has been linked into the copy-list, so
// concurrent writes flow through the new copy while the bulk data is
// in flight; FIFO delivery per source-destination pair makes the
// result coherent (§2.4).
func (cm *CM) PageCopy(src memory.PPage, dst memory.GPage, done func()) {
	if dst.Node == cm.self {
		panic("coherence: PageCopy to self")
	}
	data := make([]memory.Word, memory.PageWords)
	copy(data, cm.mem.Page(src))
	cm.send(dst.Node, &msg{kind: kPageCopy, origin: cm.self, page: dst.Page, data: data, done: done})
}

// --- Internal machinery ------------------------------------------------

// completesLocally reports whether a write to the given local frame
// finishes without any network traffic: master here and no copy-list
// successor.
func (cm *CM) completesLocally(frame memory.PPage) bool {
	m, ok := cm.master[frame]
	if !ok || m.Node != cm.self {
		return false
	}
	nxt, ok := cm.next[frame]
	return ok && nxt.IsNil()
}

func (cm *CM) allocPending(g GAddr) uint64 {
	id := cm.nextID
	cm.nextID++
	cm.pending[id] = g
	cm.pendingAddrs[g]++
	return id
}

func (cm *CM) freeSlot() int {
	for i := range cm.slots {
		if !cm.slots[i].busy {
			return i
		}
	}
	return -1
}

func (cm *CM) releaseSlot(slot int) {
	cm.slots[slot] = dslot{}
	if len(cm.slotWaiters) > 0 {
		w := cm.slotWaiters[0]
		cm.slotWaiters = cm.slotWaiters[1:]
		w()
	}
}

// finishWrite retires a pending-writes entry and wakes whoever the
// retirement unblocks: readers of that address, one writer waiting for
// a free entry, and — when the cache drains — fence waiters.
func (cm *CM) finishWrite(id uint64) {
	g, ok := cm.pending[id]
	if !ok {
		panic(fmt.Sprintf("coherence: ack for unknown write %d on node %d", id, cm.self))
	}
	delete(cm.pending, id)
	if cm.pendingAddrs[g]--; cm.pendingAddrs[g] == 0 {
		delete(cm.pendingAddrs, g)
		if rs := cm.readRetry[g]; len(rs) > 0 {
			delete(cm.readRetry, g)
			for _, r := range rs {
				r()
			}
		}
	}
	if len(cm.writeWaiters) > 0 {
		w := cm.writeWaiters[0]
		cm.writeWaiters = cm.writeWaiters[1:]
		w()
	}
	if len(cm.pending) == 0 && len(cm.fenceWaiters) > 0 {
		ws := cm.fenceWaiters
		cm.fenceWaiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// complete delivers a write/RMW completion to its originator.
func (cm *CM) complete(origin mesh.NodeID, id uint64) {
	if id == 0 {
		return // operation carried no pending-writes entry
	}
	if origin == cm.self {
		cm.finishWrite(id)
		return
	}
	cm.send(origin, &msg{kind: kAck, origin: origin, id: id})
}

// applyWrites performs committed word writes on a local frame and
// keeps the processor cache coherent via the bus snooping protocol.
func (cm *CM) applyWrites(frame memory.PPage, ws []wordWrite) {
	for _, w := range ws {
		cm.mem.Write(frame, w.Off, w.Val)
		cm.ca.Snoop(frame, w.Off)
	}
}

// arriveWrite handles a write that has reached this node (from the
// local processor or the network): perform it here if this node holds
// the master copy, otherwise forward it to the master.
func (cm *CM) arriveWrite(frame memory.PPage, off uint32, v memory.Word, origin mesh.NodeID, id uint64) {
	m, ok := cm.master[frame]
	if !ok {
		panic(fmt.Sprintf("coherence: write to uninstalled frame %d on node %d", frame, cm.self))
	}
	if m.Node != cm.self {
		cm.send(m.Node, &msg{kind: kWriteReq, origin: origin, id: id, page: m.Page, off: off, val: v})
		return
	}
	ws := []wordWrite{{off, v}}
	cm.applyWrites(m.Page, ws)
	cm.propagate(m.Page, ws, origin, id)
}

// propagate continues a committed modification down the copy-list, or
// completes the operation if this copy is the last.
func (cm *CM) propagate(frame memory.PPage, ws []wordWrite, origin mesh.NodeID, id uint64) {
	nxt, ok := cm.next[frame]
	if !ok {
		panic(fmt.Sprintf("coherence: no next-copy entry for frame %d on node %d", frame, cm.self))
	}
	if nxt.IsNil() {
		cm.complete(origin, id)
		return
	}
	cm.send(nxt.Node, &msg{kind: kUpdate, origin: origin, id: id, page: nxt.Page, writes: ws})
}

// arriveRMW handles a delayed operation that has reached this node:
// execute if master is local, else forward toward the master. slotID
// identifies the originator's delayed-op cache slot; pid its
// pending-writes entry (0 for delayed-read).
func (cm *CM) arriveRMW(op Op, frame memory.PPage, off uint32, operand memory.Word, origin mesh.NodeID, slotID, pid uint64) {
	m, ok := cm.master[frame]
	if !ok {
		panic(fmt.Sprintf("coherence: RMW to uninstalled frame %d on node %d", frame, cm.self))
	}
	if m.Node != cm.self {
		cm.send(m.Node, &msg{kind: kRMWReq, origin: origin, id: slotID, pid: pid, op: op, page: m.Page, off: off, val: operand})
		return
	}
	// Master local: execute atomically after the documented execution
	// time (Table 3-1: 39 or 52 cycles).
	cm.eng.Schedule(op.ExecCycles(cm.tm), func() {
		result, ws := exec(op, cm.mem.Page(m.Page), off, operand, cm.tm.MaxQueueSize)
		for _, w := range ws {
			cm.ca.Snoop(m.Page, w.Off)
		}
		cm.node().RMWExecuted++
		nxt := cm.next[m.Page]
		// The reply completes the operation outright when nothing needs
		// propagating (no modification, or the master is the only copy).
		complete := len(ws) == 0 || nxt.IsNil()
		cm.deliverRMWReply(origin, slotID, pid, result, complete)
		if len(ws) > 0 && !nxt.IsNil() {
			cm.send(nxt.Node, &msg{kind: kUpdate, origin: origin, id: pid, page: nxt.Page, writes: ws})
		}
	})
}

func (cm *CM) deliverRMWReply(origin mesh.NodeID, slotID, pid uint64, result memory.Word, complete bool) {
	if origin == cm.self {
		cm.fillSlot(int(slotID), result)
		if complete {
			cm.complete(origin, pid)
		}
		return
	}
	cm.send(origin, &msg{kind: kRMWReply, origin: origin, id: slotID, pid: pid, val: result, complete: complete})
}

// fillSlot stores a delayed operation's result and hands it to a
// waiting Verify, if any.
func (cm *CM) fillSlot(slot int, v memory.Word) {
	s := &cm.slots[slot]
	if !s.busy {
		panic(fmt.Sprintf("coherence: result for free slot %d on node %d", slot, cm.self))
	}
	if w := s.waiter; w != nil {
		cm.releaseSlot(slot)
		w(v)
		return
	}
	s.ready = true
	s.val = v
}

// send routes a protocol message over the mesh, counting it by type.
func (cm *CM) send(dst mesh.NodeID, m *msg) {
	if dst == cm.self {
		panic(fmt.Sprintf("coherence: self-send of kind %d on node %d", m.kind, cm.self))
	}
	switch m.kind {
	case kReadReq:
		cm.st.MsgRead++
	case kReadReply:
		cm.st.MsgReadRep++
	case kWriteReq:
		cm.st.MsgWrite++
	case kUpdate:
		cm.st.MsgUpdate++
	case kAck:
		cm.st.MsgAck++
	case kRMWReq:
		cm.st.MsgRMW++
	case kRMWReply:
		cm.st.MsgRMWRep++
	case kPageCopy:
		cm.st.MsgPage++
	}
	cm.net.Send(cm.self, dst, m.flits(), m)
}

// handle is the mesh delivery hook: protocol messages arriving at this
// node. Each incurs the CM's per-hop processing time before acting,
// except acks and replies, whose handling cost is folded into the
// originator-side constants.
func (cm *CM) handle(payload interface{}) {
	m := payload.(*msg)
	switch m.kind {
	case kReadReq:
		cm.eng.Schedule(cm.tm.CMProcess, func() {
			if cm.invalidateMode && cm.isInvalid(m.page, m.off) {
				// Stale replica word: forward the request to the master
				// rather than serving old data.
				if mg, ok := cm.master[m.page]; ok && mg.Node != cm.self {
					cm.send(mg.Node, &msg{kind: kReadReq, origin: m.origin, id: m.id, page: mg.Page, off: m.off})
					return
				}
			}
			v := cm.mem.Read(m.page, m.off)
			cm.send(m.origin, &msg{kind: kReadReply, origin: m.origin, id: m.id, val: v})
		})
	case kReadReply:
		done, ok := cm.readWaiters[m.id]
		if !ok {
			panic(fmt.Sprintf("coherence: read reply for unknown id %d on node %d", m.id, cm.self))
		}
		delete(cm.readWaiters, m.id)
		done(m.val)
	case kWriteReq:
		cm.eng.Schedule(cm.tm.CMProcess, func() {
			cm.arriveWrite(m.page, m.off, m.val, m.origin, m.id)
		})
	case kUpdate:
		cm.eng.Schedule(cm.tm.CMProcess, func() {
			cm.st.Emit(int(cm.self), "update", "frame %d, %d word(s) from n%d", m.page, len(m.writes), m.origin)
			if cm.invalidateMode {
				cm.applyInvalidations(m.page, m.writes)
			} else {
				cm.applyWrites(m.page, m.writes)
			}
			cm.node().Updates++
			cm.propagate(m.page, m.writes, m.origin, m.id)
		})
	case kAck:
		cm.st.Emit(int(cm.self), "ack", "write %d complete", m.id)
		cm.finishWrite(m.id)
	case kRMWReq:
		cm.eng.Schedule(cm.tm.CMProcess, func() {
			cm.arriveRMW(m.op, m.page, m.off, m.val, m.origin, m.id, m.pid)
		})
	case kRMWReply:
		cm.fillSlot(int(m.id), m.val)
		if m.complete {
			cm.complete(cm.self, m.pid)
		}
	case kPageCopy:
		// Install the snapshot immediately: delivery is FIFO with the
		// updates the predecessor forwards after the snapshot, so
		// applying in arrival order keeps the new copy coherent while
		// writes overlap the copy (§2.4). The copy engine's word time
		// delays only the completion signal (mapping switch).
		copy(cm.mem.Page(m.page), m.data)
		cm.node().PagesCopied++
		cm.eng.Schedule(sim.Cycles(memory.PageWords)*cm.tm.PageCopyPerWord, func() {
			if m.done != nil {
				m.done()
			}
		})
	default:
		panic(fmt.Sprintf("coherence: unknown message kind %d", m.kind))
	}
}
