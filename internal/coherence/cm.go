// Package coherence implements the PLUS memory-coherence manager: the
// per-node hardware module (Xilinx PLDs in the 1990 implementation)
// that performs global memory mapping, the non-demand write-update
// coherence protocol over replicated pages, and the delayed
// (split-transaction) read-modify-write operations.
//
// Protocol summary (§2.3 of the paper):
//
//   - Writes are always performed first on the master copy and then
//     propagated down the ordered copy-list; the last copy returns an
//     acknowledgement to the originating processor. Copies of a given
//     location are therefore always written in the same order
//     (general coherence).
//   - Writes do not block the issuing processor; the pending-writes
//     cache (8 entries) remembers incomplete writes. The processor
//     blocks on a 9th outstanding write, on reading a location with a
//     pending write, and on an explicit fence.
//   - Delayed operations are issued to the master copy, executed there
//     atomically, and the old value returns to the originator's
//     delayed-operations cache (8 entries); modifications propagate
//     down the copy-list like writes.
//
// Message plumbing: every protocol hop travels in a pooled mesh.Msg.
// A request that must be forwarded (write/RMW toward the master, an
// update down the copy-list) reuses the message in hand — the protocol
// allocates at most one pooled message per operation leg, and the
// final consumer recycles it to the mesh free-list.
package coherence

import (
	"fmt"

	"plus/internal/cache"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// CM event kinds (sim.EventSink dispatch). The CM schedules its own
// timers — per-hop processing delay, RMW execution, page-copy
// completion, local read latency — as typed events carrying the pooled
// message (or a pooled readDone), so the protocol's timer path
// allocates nothing.
const (
	// ckProcess: a network message begins handling after the CM's
	// per-hop processing time. data is the *mesh.Msg.
	ckProcess = iota
	// ckSend: a pre-staged message (Dst already set) enters the
	// network after a processor-side overhead. data is the *mesh.Msg.
	ckSend
	// ckExec: the master executes a delayed operation after its
	// documented execution time. data is the kRMWReq *mesh.Msg.
	ckExec
	// ckPageDone: the page-copy engine signals completion. data is the
	// kPageCopy *mesh.Msg.
	ckPageDone
	// ckReadDone: a local read completes after the cache/memory
	// latency. data is a pooled *readDone.
	ckReadDone
	// ckRetrans: the reliability sublayer's retransmit timer for one
	// destination fires. data is a pooled *retransTimer.
	ckRetrans
)

// readDone is a pooled local-read completion: the value and the
// processor-side callback it is delivered to.
type readDone struct {
	fn func(memory.Word)
	v  memory.Word
}

// CM is one node's memory-coherence manager. It is driven entirely
// from the simulation engine's single logical thread: processor-side
// calls happen inside a coroutine slice, network messages arrive
// through the mesh Port interface, timers fire as typed engine events.
// Completion callbacks may fire synchronously (when the operation
// completes without waiting) or from a later engine event.
type CM struct {
	self mesh.NodeID
	eng  *sim.Engine
	net  *mesh.Mesh
	mem  *memory.Memory
	ca   *cache.Cache
	tm   timing.Timing
	st   *stats.Machine

	// master maps each locally present frame to the global address of
	// the page's master copy. Maintained by the operating system
	// (kernel package); consulted by the write/RMW routing hardware.
	master map[memory.PPage]memory.GPage
	// next maps each locally present frame to its successor on the
	// copy-list, or NilGPage at the end of the list.
	next map[memory.PPage]memory.GPage

	// Pending-writes cache.
	pending      map[uint64]GAddr
	pendingAddrs map[GAddr]int
	nextID       uint64
	writeWaiters []func()
	fenceWaiters []func()
	readRetry    map[GAddr][]func()

	// Write-combining stage (batch.go). batchMax > 1 enables it; the
	// combine buffer holds consecutive writes to one (node, page)
	// destination until a flush trigger sends them as one multi-word
	// kWriteReq. Every buffered word already owns a pending-writes
	// entry, so MaxPendingWrites and the read-blocking rule see
	// combined writes exactly like uncombined ones. batchIDs maps a
	// flushed batch's lead pending id to every member id so one ack
	// retires the whole batch; idsFree recycles those slices.
	batchMax int
	bopen    bool
	bnode    mesh.NodeID
	bpage    memory.PPage
	bcause   uint64
	bwrites  []wordWrite
	bids     []uint64
	batchIDs map[uint64][]uint64
	idsFree  [][]uint64

	// Delayed-operations cache.
	slots       []dslot
	slotWaiters []func()

	// Outstanding remote blocking reads.
	readWaiters map[uint64]readWaiter

	// rdFree recycles local-read completions.
	rdFree []*readDone

	// Reliability sublayer (unreliable-network mode; see transport.go).
	// reliable is set when the mesh fault model is enabled; tx/rx hold
	// the per-peer sequence state and rtFree recycles timer payloads.
	reliable bool
	tx       []txState
	rx       []rxState
	rtFree   []*retransTimer

	// Crash/failover state (crash.go). crashy is set only when the run
	// has a crash script; every tolerance it arms is unreachable — and
	// every protocol panic stays loud — on ordinary runs.
	crashy        bool
	down          bool
	router        FailoverRouter
	suspectFn     func(mesh.NodeID)
	detectStrikes int
	slotGen       uint64

	// Write-invalidate ablation mode (see invalidate.go). Real PLUS is
	// write-update; this exists to measure the §2.2 claim.
	invalidateMode bool
	invalid        map[memory.PPage]map[uint32]bool

	// Structured-trace issue records, allocated lazily and only
	// populated when an observer is attached: pending-write id → issue
	// time and causal ID (write-ack latency), remote-read id → same
	// (read-done latency). RMW round trips ride in the dslot itself.
	wrIssued map[uint64]issueRec
	rdIssued map[uint64]issueRec
	// lastCause is the causal ID the most recent traced issue on this
	// node drew (write, remote read or RMW) — read synchronously by the
	// processor's data-access layer to stamp the matching EvAcc* event.
	// Zeroed at the top of each issue path so an operation that draws
	// no cause (a local read) never inherits a predecessor's ID.
	lastCause uint64
}

// issueRec remembers when an operation was issued and the causal ID
// stamped on its messages, for latency histograms and span events.
type issueRec struct {
	at    sim.Cycles
	cause uint64
}

type dslot struct {
	busy   bool
	ready  bool
	val    memory.Word
	waiter func(memory.Word)
	// issuedAt/cause are set at issue when an observer is attached
	// (cause != 0 marks a traced operation). cause is consumed (zeroed)
	// when the result arrives; acause preserves the same ID until the
	// slot is released so the data-access layer can pair the Verify
	// that consumes the result with the issue (EvAccVerify ↔ EvAccRMW).
	issuedAt sim.Cycles
	cause    uint64
	acause   uint64
	// Replay record (crash script runs): enough to re-issue the
	// operation if its request is lost inside a crashed node. gen is
	// the slot-generation token guarding against stale replies to a
	// reused slot (see slotToken).
	op      uint8
	g       GAddr
	operand memory.Word
	pid     uint64
	gen     uint64
}

// readWaiter is one outstanding remote blocking read: the completion
// callback plus the target address, kept so a crash epoch can re-issue
// the read against the page's new master.
type readWaiter struct {
	g  GAddr
	fn func(memory.Word)
}

// New wires a coherence manager to its node's memory, cache and the
// mesh. It attaches itself as the node's message port.
func New(self mesh.NodeID, eng *sim.Engine, net *mesh.Mesh, mem *memory.Memory, ca *cache.Cache, tm timing.Timing, st *stats.Machine) *CM {
	cm := &CM{
		self:         self,
		eng:          eng,
		net:          net,
		mem:          mem,
		ca:           ca,
		tm:           tm,
		st:           st,
		master:       make(map[memory.PPage]memory.GPage),
		next:         make(map[memory.PPage]memory.GPage),
		pending:      make(map[uint64]GAddr),
		pendingAddrs: make(map[GAddr]int),
		nextID:       1,
		readRetry:    make(map[GAddr][]func()),
		slots:        make([]dslot, tm.MaxDelayedOps),
		readWaiters:  make(map[uint64]readWaiter),
		batchMax:     tm.MaxBatchWrites,
	}
	if cm.batchMax < 1 {
		cm.batchMax = 1 // zero-valued Timing tables mean "no combining"
	}
	if cm.batchMax > 1 {
		cm.batchIDs = make(map[uint64][]uint64)
	}
	if net.Config().Faults.Enabled() {
		cm.reliable = true
		cm.tx = make([]txState, net.Nodes())
		cm.rx = make([]rxState, net.Nodes())
	}
	if len(net.Config().Faults.Crashes) > 0 {
		cm.crashy = true
	}
	net.Attach(self, cm)
	return cm
}

// Self returns the node this CM serves.
func (cm *CM) Self() mesh.NodeID { return cm.self }

// node returns this node's stats block.
func (cm *CM) node() *stats.Node { return &cm.st.Nodes[cm.self] }

// obs returns the structured-event observer, or nil when tracing is
// off — the single gate every emission site checks.
func (cm *CM) obs() *stats.Observer { return cm.st.Observer() }

// packAddr encodes a global address into one event payload word.
func packAddr(g GAddr) uint64 {
	return uint64(g.Node)<<48 | uint64(g.Page)<<16 | uint64(g.Off)
}

// newMsg draws a cleared message from this node's shard free-list.
func (cm *CM) newMsg(kind uint8, origin mesh.NodeID, id uint64) *mesh.Msg {
	m := cm.net.AllocMsgAt(cm.self)
	m.Kind, m.Origin, m.ID = kind, origin, id
	return m
}

// freeMsg recycles a consumed message onto this node's shard free-list.
func (cm *CM) freeMsg(m *mesh.Msg) { cm.net.FreeMsgAt(cm.self, m) }

// --- Kernel-side table maintenance -----------------------------------

// InstallPage registers a locally present frame with its master and
// successor, making the replication structure visible to the hardware
// via the master and next-copy tables (§2.3).
func (cm *CM) InstallPage(frame memory.PPage, master, next memory.GPage) {
	cm.master[frame] = master
	cm.next[frame] = next
}

// SetNext rewrites the successor of a local frame (copy-list splice).
func (cm *CM) SetNext(frame memory.PPage, next memory.GPage) {
	if _, ok := cm.next[frame]; !ok {
		panic(fmt.Sprintf("coherence: SetNext of uninstalled frame %d on node %d", frame, cm.self))
	}
	cm.next[frame] = next
}

// SetMaster rewrites the master pointer of a local frame (used when
// the master migrates).
func (cm *CM) SetMaster(frame memory.PPage, master memory.GPage) {
	if _, ok := cm.master[frame]; !ok {
		panic(fmt.Sprintf("coherence: SetMaster of uninstalled frame %d on node %d", frame, cm.self))
	}
	cm.master[frame] = master
}

// DropPage removes a frame's coherence tables (copy deletion).
func (cm *CM) DropPage(frame memory.PPage) {
	delete(cm.master, frame)
	delete(cm.next, frame)
}

// Master returns the master pointer for a local frame.
func (cm *CM) Master(frame memory.PPage) (memory.GPage, bool) {
	g, ok := cm.master[frame]
	return g, ok
}

// Next returns the copy-list successor for a local frame.
func (cm *CM) Next(frame memory.PPage) (memory.GPage, bool) {
	g, ok := cm.next[frame]
	return g, ok
}

// PendingCount returns the number of incomplete writes (pending-writes
// cache occupancy).
func (cm *CM) PendingCount() int { return len(cm.pending) }

// LastCause returns the causal ID drawn by the most recent traced
// issue on this node (0 when the last operation drew none — a local
// read, or any operation with tracing off). The processor's
// data-access layer reads it synchronously, immediately after the
// issuing call returns, to stamp the matching EvAcc* event; an
// operation whose issue was deferred behind a full cache reports 0
// (best-effort correlation, documented in DESIGN §15).
func (cm *CM) LastCause() uint64 { return cm.lastCause }

// SlotCause returns the causal ID a busy delayed-operation slot was
// issued under (0 with tracing off). Unlike the histogram-facing cause
// it survives result arrival, so Verify can pair its access event with
// the issue; it dies only when the slot is released.
func (cm *CM) SlotCause(slot int) uint64 { return cm.slots[slot].acause }

// BusySlots returns the number of delayed-operation cache entries in
// use.
func (cm *CM) BusySlots() int {
	n := 0
	for i := range cm.slots {
		if cm.slots[i].busy {
			n++
		}
	}
	return n
}

// --- Processor-side operations ---------------------------------------

// Read performs a (possibly blocking) read. done receives the value;
// completion is always delivered through an engine event, never
// synchronously, so the calling coroutine can park unconditionally
// after issuing.
func (cm *CM) Read(g GAddr, done func(memory.Word)) {
	cm.startRead(g, done, false)
}

// ReadFast is Read with a synchronous fast path for the calling
// coroutine: when mayFast is true (the caller's processor has no other
// runnable thread that the event path would dispatch during the wait)
// and the read is served locally with no other event due within its
// latency, the clock advances directly and the value returns in place
// — skipping the completion event and the park/resume handoff while
// producing the identical schedule. Otherwise it behaves exactly like
// Read and the caller must park until done fires; the returned cost is
// meaningful only when ok is true.
func (cm *CM) ReadFast(g GAddr, done func(memory.Word), mayFast bool) (v memory.Word, cost sim.Cycles, ok bool) {
	return cm.startRead(g, done, mayFast)
}

func (cm *CM) startRead(g GAddr, done func(memory.Word), mayFast bool) (memory.Word, sim.Cycles, bool) {
	cm.lastCause = 0
	// Reads are combine barriers: any read issued by this node flushes
	// the combine buffer (batch.go). In particular a read of a word
	// still resting in the buffer would otherwise block below on a
	// write that was never sent.
	if cm.bopen {
		cm.FlushBatch()
	}
	// Reading a location that is currently being written blocks until
	// the write completes (intra-processor strong ordering, §2.3). The
	// retry fires from event context with the reader parked, so it must
	// take the event path.
	if cm.pendingAddrs[g] > 0 {
		cm.readRetry[g] = append(cm.readRetry[g], func() { cm.startRead(g, done, false) })
		return 0, 0, false
	}
	if g.Node == cm.self {
		if cm.invalidateMode && cm.isInvalid(g.Page, g.Off) {
			cm.readInvalidated(g, done)
			return 0, 0, false
		}
		cost := cm.ca.Read(g.Page, g.Off)
		v := cm.mem.Read(g.Page, g.Off)
		cm.node().LocalReads++
		if cost <= cm.tm.CacheHit {
			cm.node().CacheHits++
		} else {
			cm.node().CacheMisses++
		}
		if mayFast && cm.eng.AdvanceIf(cost) {
			return v, cost, true
		}
		cm.scheduleReadDone(cost, done, v)
		return 0, 0, false
	}
	cm.node().RemoteReads++
	id := cm.nextID
	cm.nextID++
	cm.readWaiters[id] = readWaiter{g: g, fn: done}
	// The paper charges "about 32 cycles plus the round-trip delay"
	// for a remote blocking read; the 32 cycles are the processor and
	// interface overhead, charged here before the request enters the
	// network. The serving CM adds its processing time on arrival.
	m := cm.newMsg(kReadReq, cm.self, id)
	m.Page, m.Off = g.Page, g.Off
	m.Dst = g.Node
	if o := cm.obs(); o != nil {
		m.Cause = o.CauseFor(int(cm.self))
		cm.lastCause = m.Cause
		if cm.rdIssued == nil {
			cm.rdIssued = make(map[uint64]issueRec)
		}
		cm.rdIssued[id] = issueRec{at: cm.eng.Now(), cause: m.Cause}
		o.Emit(stats.EvReadIssue, int(cm.self), 0, m.Cause, packAddr(g), 0)
	}
	cm.eng.ScheduleEvent(cm.tm.RemoteReadOverhead, cm, ckSend, m)
	return 0, 0, false
}

// scheduleReadDone delivers a local read's value through a pooled
// completion event after the modeled latency.
func (cm *CM) scheduleReadDone(delay sim.Cycles, fn func(memory.Word), v memory.Word) {
	var rd *readDone
	if n := len(cm.rdFree); n > 0 {
		rd = cm.rdFree[n-1]
		cm.rdFree = cm.rdFree[:n-1]
	} else {
		rd = &readDone{}
	}
	rd.fn, rd.v = fn, v
	cm.eng.ScheduleEvent(delay, cm, ckReadDone, rd)
}

// Write issues a non-blocking write. accepted is called as soon as a
// pending-writes cache entry is allocated — synchronously when one is
// free, otherwise from a later event once an earlier write completes.
// The write then propagates in the background; completion is visible
// through Fence, PendingCount, and the read-blocking rule. With write
// combining enabled (Timing.MaxBatchWrites > 1) the write may first
// rest in the combine buffer; see batch.go for the flush triggers.
func (cm *CM) Write(g GAddr, v memory.Word, accepted func()) {
	cm.lastCause = 0
	if len(cm.pending) >= cm.tm.MaxPendingWrites {
		// The cache is full: flush the combine buffer first, or the
		// acks that free an entry (and wake this waiter) never happen.
		cm.FlushBatch()
		cm.writeWaiters = append(cm.writeWaiters, func() { cm.Write(g, v, accepted) })
		return
	}
	cm.countWrite(g)
	if cm.batchMax > 1 {
		cm.batchWrite(g, v)
		accepted()
		return
	}
	id := cm.allocPending(g)
	accepted()
	m := cm.newMsg(kWriteReq, cm.self, id)
	m.Page = g.Page
	m.Writes = append(m.Writes[:0], wordWrite{Off: g.Off, Val: v})
	if o := cm.obs(); o != nil {
		m.Cause = o.CauseFor(int(cm.self))
		cm.lastCause = m.Cause
		if cm.wrIssued == nil {
			cm.wrIssued = make(map[uint64]issueRec)
		}
		cm.wrIssued[id] = issueRec{at: cm.eng.Now(), cause: m.Cause}
		o.Emit(stats.EvWriteIssue, int(cm.self), 0, m.Cause, packAddr(g), id)
	}
	if g.Node == cm.self {
		cm.arriveWrite(m)
		return
	}
	cm.send(g.Node, m)
}

// countWrite attributes an issued write to the local/remote counters.
// A write counts as local only when it completes entirely in local
// memory: the master copy is here and the page has no other copies to
// update. Writes to replicated pages generate network traffic however
// they are issued, which is what the paper's Table 2-1 write ratio
// measures.
func (cm *CM) countWrite(g GAddr) {
	if g.Node == cm.self && cm.completesLocally(g.Page) {
		cm.node().LocalWrites++
	} else {
		cm.node().RemoteWrites++
	}
}

// Fence blocks until every earlier write by this node has completed
// (the pending-writes cache is empty). done may be invoked
// synchronously when there is nothing outstanding.
func (cm *CM) Fence(done func()) {
	cm.FlushBatch() // buffered writes count as "earlier writes"
	cm.node().Fences++
	if len(cm.pending) == 0 {
		done()
		return
	}
	cm.fenceWaiters = append(cm.fenceWaiters, done)
}

// RMW issues a delayed operation. issued is called (synchronously when
// resources are free) once a delayed-operations cache slot — and, for
// mutating ops, a pending-writes entry — has been allocated; the slot
// index it receives is the operation identifier the program later
// passes to Verify. The paper's cost anatomy: the ~25-cycle issue time
// is charged by the processor layer, the master's 39/52-cycle
// execution by this package, the ~10-cycle result read at Verify.
func (cm *CM) RMW(op Op, g GAddr, operand memory.Word, issued func(slot int)) {
	// Delayed operations execute at the master: flush the combine
	// buffer first so a buffered write to the same location cannot be
	// overtaken by the RMW (per-pair FIFO then orders them).
	cm.FlushBatch()
	slot := cm.freeSlot()
	if slot < 0 {
		cm.slotWaiters = append(cm.slotWaiters, func() { cm.RMW(op, g, operand, issued) })
		return
	}
	var pid uint64
	if !op.IsRead() {
		if len(cm.pending) >= cm.tm.MaxPendingWrites {
			cm.writeWaiters = append(cm.writeWaiters, func() { cm.RMW(op, g, operand, issued) })
			return
		}
		pid = cm.allocPending(g)
	}
	cm.slotGen++
	cm.slots[slot] = dslot{busy: true, op: uint8(op), g: g, operand: operand, pid: pid, gen: cm.slotGen}
	cm.node().RMWIssued++
	// Local/remote accounting mirrors writes: a mutating RMW is local
	// only when it completes entirely in local memory. Delayed-read
	// counts as a read, local when the master is here.
	n := cm.node()
	if op.IsRead() {
		if g.Node == cm.self {
			if m, ok := cm.master[g.Page]; ok && m.Node == cm.self {
				n.LocalReads++
			} else {
				n.RemoteReads++
			}
		} else {
			n.RemoteReads++
		}
	} else if g.Node == cm.self && cm.completesLocally(g.Page) {
		n.LocalWrites++
	} else {
		n.RemoteWrites++
	}
	issued(slot)
	m := cm.newMsg(kRMWReq, cm.self, cm.slotToken(slot))
	m.Pid = pid
	m.Op = uint8(op)
	m.Page, m.Off, m.Val = g.Page, g.Off, operand
	if o := cm.obs(); o != nil {
		m.Cause = o.CauseFor(int(cm.self))
		cm.lastCause = m.Cause
		s := &cm.slots[slot]
		s.issuedAt, s.cause, s.acause = cm.eng.Now(), m.Cause, m.Cause
		o.Emit(stats.EvRMWIssue, int(cm.self), uint8(op), m.Cause, packAddr(g), uint64(operand))
	}
	if g.Node == cm.self {
		cm.arriveRMW(m)
		return
	}
	cm.send(g.Node, m)
}

// Verify retrieves a delayed operation's result, blocking until it is
// available. The slot is freed when the result is consumed. done may
// fire synchronously if the result has already arrived.
func (cm *CM) Verify(slot int, done func(memory.Word)) {
	cm.FlushBatch() // verify is an ordering point like fence (§2.3)
	s := &cm.slots[slot]
	if !s.busy {
		panic(fmt.Sprintf("coherence: Verify of free slot %d on node %d", slot, cm.self))
	}
	if s.ready {
		v := s.val
		cm.releaseSlot(slot)
		done(v)
		return
	}
	if s.waiter != nil {
		panic(fmt.Sprintf("coherence: second Verify of slot %d on node %d", slot, cm.self))
	}
	s.waiter = done
}

// TryVerify inspects a delayed-operation slot without blocking: if the
// result has arrived it is returned (and the slot freed); otherwise
// ok is false. The paper notes software can inspect the status of
// delayed-operation cache locations to implement non-blocking reads.
func (cm *CM) TryVerify(slot int) (memory.Word, bool) {
	cm.FlushBatch()
	s := &cm.slots[slot]
	if !s.busy || !s.ready {
		return 0, false
	}
	v := s.val
	cm.releaseSlot(slot)
	return v, true
}

// PageCopy snapshots local frame src and ships it to dst, whose CM
// installs it and then invokes done. Used by the kernel's replication
// path after the new copy has been linked into the copy-list, so
// concurrent writes flow through the new copy while the bulk data is
// in flight; FIFO delivery per source-destination pair makes the
// result coherent (§2.4).
func (cm *CM) PageCopy(src memory.PPage, dst memory.GPage, done func()) {
	if dst.Node == cm.self {
		panic("coherence: PageCopy to self")
	}
	m := cm.newMsg(kPageCopy, cm.self, 0)
	m.Page = dst.Page
	m.Data = append(m.Data[:0], cm.mem.Page(src)...)
	m.Done = done
	if o := cm.obs(); o != nil {
		m.Cause = o.CauseFor(int(cm.self))
		o.Emit(stats.EvPageCopy, int(cm.self), 0, m.Cause, uint64(dst.Node), uint64(dst.Page))
	}
	cm.send(dst.Node, m)
}

// --- Internal machinery ------------------------------------------------

// completesLocally reports whether a write to the given local frame
// finishes without any network traffic: master here and no copy-list
// successor.
func (cm *CM) completesLocally(frame memory.PPage) bool {
	m, ok := cm.master[frame]
	if !ok || m.Node != cm.self {
		return false
	}
	nxt, ok := cm.next[frame]
	return ok && nxt.IsNil()
}

func (cm *CM) allocPending(g GAddr) uint64 {
	id := cm.nextID
	cm.nextID++
	cm.pending[id] = g
	cm.pendingAddrs[g]++
	return id
}

func (cm *CM) freeSlot() int {
	for i := range cm.slots {
		if !cm.slots[i].busy {
			return i
		}
	}
	return -1
}

func (cm *CM) releaseSlot(slot int) {
	cm.slots[slot] = dslot{}
	if len(cm.slotWaiters) > 0 {
		w := cm.slotWaiters[0]
		cm.slotWaiters = cm.slotWaiters[1:]
		w()
	}
}

// finishWrite retires a pending-writes entry and wakes whoever the
// retirement unblocks: readers of that address, one writer waiting for
// a free entry, and — when the cache drains — fence waiters.
func (cm *CM) finishWrite(id uint64) {
	g, ok := cm.pending[id]
	if !ok {
		if cm.crashy {
			// The entry was force-retired by a crash epoch and the
			// chain's real ack arrived later (the chain survived after
			// all). Harmless: retirement already woke the waiters.
			cm.st.StaleAcks++
			return
		}
		panic(fmt.Sprintf("coherence: ack for unknown write %d on node %d", id, cm.self))
	}
	if o := cm.obs(); o != nil {
		if rec, ok := cm.wrIssued[id]; ok {
			delete(cm.wrIssued, id)
			lat := uint64(cm.eng.Now() - rec.at)
			o.Metrics.WriteAck.Observe(lat)
			o.Emit(stats.EvWriteAck, int(cm.self), 0, rec.cause, lat, id)
		}
	}
	delete(cm.pending, id)
	if cm.pendingAddrs[g]--; cm.pendingAddrs[g] == 0 {
		delete(cm.pendingAddrs, g)
		if rs := cm.readRetry[g]; len(rs) > 0 {
			delete(cm.readRetry, g)
			for _, r := range rs {
				r()
			}
		}
	}
	if len(cm.writeWaiters) > 0 {
		w := cm.writeWaiters[0]
		cm.writeWaiters = cm.writeWaiters[1:]
		w()
	}
	if len(cm.pending) == 0 && len(cm.fenceWaiters) > 0 {
		ws := cm.fenceWaiters
		cm.fenceWaiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// complete delivers a write/RMW completion to its originator when no
// message is in hand (the update path reuses its message instead).
// cause keeps the originating operation's causal ID on the ack leg.
func (cm *CM) complete(origin mesh.NodeID, id, cause uint64) {
	if id == 0 {
		return // operation carried no pending-writes entry
	}
	if origin == cm.self {
		cm.retireWrite(id)
		return
	}
	a := cm.newMsg(kAck, origin, id)
	a.Cause = cause
	cm.send(origin, a)
}

// applyWrites performs committed word writes on a local frame and
// keeps the processor cache coherent via the bus snooping protocol.
func (cm *CM) applyWrites(frame memory.PPage, ws []wordWrite) {
	for _, w := range ws {
		cm.mem.Write(frame, w.Off, w.Val)
		cm.ca.Snoop(frame, w.Off)
	}
}

// arriveWrite handles a kWriteReq that has reached this node (from the
// local processor or the network): perform it here if this node holds
// the master copy, otherwise forward the message to the master.
func (cm *CM) arriveWrite(m *mesh.Msg) {
	mg, ok := cm.master[m.Page]
	if !ok {
		if cm.crashy {
			cm.orphanRequest(m)
			return
		}
		panic(fmt.Sprintf("coherence: write to uninstalled frame %d on node %d", m.Page, cm.self))
	}
	if mg.Node != cm.self {
		m.Page = mg.Page
		cm.send(mg.Node, m)
		return
	}
	// Master local: commit the writes (the Writes vector — a single
	// word, or a combined batch) and convert the request in place into
	// the update that walks the copy-list.
	cm.applyWrites(mg.Page, m.Writes)
	cm.propagate(mg.Page, m)
}

// propagate continues a committed modification down the copy-list, or
// completes the operation if this copy is the last. It consumes m:
// either forwarding it as the next kUpdate hop, returning it to the
// originator as the kAck, or recycling it.
func (cm *CM) propagate(frame memory.PPage, m *mesh.Msg) {
	nxt, ok := cm.next[frame]
	if !ok {
		if cm.crashy {
			// The frame was dropped by a failover between apply and
			// propagate: treat this copy as the end of the chain (the
			// kernel's resync cascade restores any downstream copies).
			cm.st.CrashOrphans++
			nxt = memory.NilGPage
		} else {
			panic(fmt.Sprintf("coherence: no next-copy entry for frame %d on node %d", frame, cm.self))
		}
	}
	if !nxt.IsNil() {
		m.Kind = kUpdate
		m.Page = nxt.Page
		cm.send(nxt.Node, m)
		return
	}
	// Last copy: acknowledge the originator.
	if m.ID == 0 {
		cm.freeMsg(m) // operation carried no pending-writes entry
		return
	}
	if m.Origin == cm.self {
		id := m.ID
		cm.freeMsg(m)
		cm.retireWrite(id)
		return
	}
	m.Kind = kAck
	cm.send(m.Origin, m)
}

// arriveRMW handles a kRMWReq that has reached this node: execute if
// the master is local, else forward the message toward the master.
func (cm *CM) arriveRMW(m *mesh.Msg) {
	mg, ok := cm.master[m.Page]
	if !ok {
		if cm.crashy {
			cm.orphanRequest(m)
			return
		}
		panic(fmt.Sprintf("coherence: RMW to uninstalled frame %d on node %d", m.Page, cm.self))
	}
	if mg.Node != cm.self {
		m.Page = mg.Page
		cm.send(mg.Node, m)
		return
	}
	// Master local: execute atomically after the documented execution
	// time (Table 3-1: 39 or 52 cycles).
	m.Page = mg.Page
	cm.eng.ScheduleEvent(Op(m.Op).ExecCycles(cm.tm), cm, ckExec, m)
}

// execRMW is the master-side execution of a delayed operation (fired
// by ckExec). The reply goes out first, then the modification walks
// the copy-list in the message in hand; m.ID is the originator's slot,
// m.Pid its pending-writes entry (0 for delayed-read).
func (cm *CM) execRMW(m *mesh.Msg) {
	result, ws := exec(Op(m.Op), cm.mem.Page(m.Page), m.Off, m.Val, cm.tm.MaxQueueSize, m.Writes[:0])
	m.Writes = ws
	for _, w := range ws {
		cm.ca.Snoop(m.Page, w.Off)
	}
	cm.node().RMWExecuted++
	if o := cm.obs(); o != nil {
		o.Emit(stats.EvRMWExec, int(cm.self), m.Op, m.Cause, uint64(m.Page), uint64(len(ws)))
	}
	nxt := cm.next[m.Page]
	// The reply completes the operation outright when nothing needs
	// propagating (no modification, or the master is the only copy).
	complete := len(ws) == 0 || nxt.IsNil()
	origin, slotID, pid, cause := m.Origin, m.ID, m.Pid, m.Cause
	if origin == cm.self {
		if slot, ok := cm.slotFromToken(slotID); ok {
			cm.fillSlot(slot, result)
		} else {
			cm.st.StaleAcks++ // re-issued op already resolved this slot
		}
		if complete {
			cm.complete(origin, pid, cause)
		}
	} else {
		r := cm.newMsg(kRMWReply, origin, slotID)
		r.Pid, r.Val, r.Complete = pid, result, complete
		r.Cause = cause
		cm.send(origin, r)
	}
	if len(ws) > 0 && !nxt.IsNil() {
		m.Kind = kUpdate
		m.ID = pid
		m.Page = nxt.Page
		cm.send(nxt.Node, m)
	} else {
		cm.freeMsg(m)
	}
}

// fillSlot stores a delayed operation's result and hands it to a
// waiting Verify, if any.
func (cm *CM) fillSlot(slot int, v memory.Word) {
	s := &cm.slots[slot]
	if !s.busy {
		panic(fmt.Sprintf("coherence: result for free slot %d on node %d", slot, cm.self))
	}
	// cause != 0 marks a traced issue; observe the round trip exactly
	// once, when the result first arrives (duplicated replies in the
	// unreliable mode are filtered by the transport before this point).
	if s.cause != 0 {
		if o := cm.obs(); o != nil {
			lat := uint64(cm.eng.Now() - s.issuedAt)
			o.Metrics.RMWRound.Observe(lat)
			o.Emit(stats.EvRMWDone, int(cm.self), 0, s.cause, lat, uint64(slot))
		}
		s.cause = 0
	}
	if w := s.waiter; w != nil {
		cm.releaseSlot(slot)
		w(v)
		return
	}
	s.ready = true
	s.val = v
}

// send routes a protocol message over the mesh, counting it by type.
func (cm *CM) send(dst mesh.NodeID, m *mesh.Msg) {
	if dst == cm.self {
		panic(fmt.Sprintf("coherence: self-send of kind %d on node %d", m.Kind, cm.self))
	}
	switch m.Kind {
	case kReadReq:
		cm.st.MsgRead++
	case kReadReply:
		cm.st.MsgReadRep++
	case kWriteReq:
		cm.st.MsgWrite++
	case kUpdate:
		cm.st.MsgUpdate++
	case kAck:
		cm.st.MsgAck++
	case kRMWReq:
		cm.st.MsgRMW++
	case kRMWReply:
		cm.st.MsgRMWRep++
	case kPageCopy:
		cm.st.MsgPage++
	case kTAck:
		cm.st.MsgTAck++
	}
	if cm.reliable && m.Kind != kTAck {
		cm.transportSend(dst, m)
		return
	}
	cm.net.Send(cm.self, dst, flits(m), m)
}

// Deliver implements mesh.Port: protocol messages arriving at this
// node. Requests incur the CM's per-hop processing time before acting;
// acks and replies act immediately, their handling cost folded into
// the originator-side constants.
func (cm *CM) Deliver(m *mesh.Msg) {
	if cm.down {
		// Defensive: the mesh already drops deliveries to down nodes.
		cm.freeMsg(m)
		return
	}
	if m.Nacked {
		// Bounced by a full link buffer before ever leaving this node.
		cm.transportNack(m)
		return
	}
	if cm.reliable {
		if m.Kind == kTAck {
			cm.transportAck(m)
			return
		}
		if !cm.transportAccept(m) {
			return
		}
	}
	switch m.Kind {
	case kReadReq, kWriteReq, kUpdate, kRMWReq:
		cm.eng.ScheduleEvent(cm.tm.CMProcess, cm, ckProcess, m)
	case kReadReply:
		w, ok := cm.readWaiters[m.ID]
		if !ok {
			if cm.crashy {
				// A reply to a read the crash epoch already re-issued
				// and resolved (or force-completed).
				cm.st.StaleAcks++
				cm.freeMsg(m)
				return
			}
			panic(fmt.Sprintf("coherence: read reply for unknown id %d on node %d", m.ID, cm.self))
		}
		done := w.fn
		delete(cm.readWaiters, m.ID)
		if o := cm.obs(); o != nil {
			if rec, ok := cm.rdIssued[m.ID]; ok {
				delete(cm.rdIssued, m.ID)
				o.Emit(stats.EvReadDone, int(cm.self), 0, rec.cause,
					uint64(cm.eng.Now()-rec.at), 0)
			}
		}
		v := m.Val
		cm.freeMsg(m)
		done(v)
	case kAck:
		id := m.ID
		cm.freeMsg(m)
		cm.retireWrite(id)
	case kRMWReply:
		tok, pid, v, complete, cause := m.ID, m.Pid, m.Val, m.Complete, m.Cause
		cm.freeMsg(m)
		slot, ok := cm.slotFromToken(tok)
		if !ok {
			// A reply for an operation a crash epoch re-issued and
			// resolved; its slot (possibly reused by a new op) must not
			// be corrupted by the stale result.
			cm.st.StaleAcks++
			return
		}
		cm.fillSlot(slot, v)
		if complete {
			cm.complete(cm.self, pid, cause)
		}
	case kPageCopy:
		// Install the snapshot immediately: delivery is FIFO with the
		// updates the predecessor forwards after the snapshot, so
		// applying in arrival order keeps the new copy coherent while
		// writes overlap the copy (§2.4). The copy engine's word time
		// delays only the completion signal (mapping switch).
		copy(cm.mem.Page(m.Page), m.Data)
		cm.node().PagesCopied++
		cm.eng.ScheduleEvent(sim.Cycles(memory.PageWords)*cm.tm.PageCopyPerWord, cm, ckPageDone, m)
	default:
		panic(fmt.Sprintf("coherence: unknown message kind %d", m.Kind))
	}
}

// HandleEvent implements sim.EventSink: the CM's typed timers.
func (cm *CM) HandleEvent(kind int, data any) {
	if cm.down {
		// A crashed node's in-flight work dies with it: requests being
		// processed, staged sends and executing RMWs are dropped.
		// ckReadDone and ckPageDone still fire (their completions only
		// queue a thread or signal the kernel's copy engine — the
		// processor stays paused either way), and ckRetrans timers were
		// cancelled by the epoch bump in Crash.
		switch kind {
		case ckProcess, ckSend, ckExec:
			cm.freeMsg(data.(*mesh.Msg))
			return
		}
	}
	switch kind {
	case ckProcess:
		cm.process(data.(*mesh.Msg))
	case ckSend:
		m := data.(*mesh.Msg)
		cm.send(m.Dst, m)
	case ckExec:
		cm.execRMW(data.(*mesh.Msg))
	case ckPageDone:
		m := data.(*mesh.Msg)
		done := m.Done
		cm.freeMsg(m)
		if done != nil {
			done()
		}
	case ckReadDone:
		rd := data.(*readDone)
		fn, v := rd.fn, rd.v
		rd.fn = nil
		cm.rdFree = append(cm.rdFree, rd)
		fn(v)
	case ckRetrans:
		cm.fireRetrans(data.(*retransTimer))
	default:
		panic(fmt.Sprintf("coherence: unknown event kind %d on node %d", kind, cm.self))
	}
}

// process handles a request message after the CM's per-hop processing
// delay.
func (cm *CM) process(m *mesh.Msg) {
	switch m.Kind {
	case kReadReq:
		if cm.invalidateMode && cm.isInvalid(m.Page, m.Off) {
			// Stale replica word: forward the request to the master
			// rather than serving old data.
			if mg, ok := cm.master[m.Page]; ok && mg.Node != cm.self {
				m.Page = mg.Page
				cm.send(mg.Node, m)
				return
			}
		}
		// Reuse the request as the reply.
		m.Val = cm.mem.Read(m.Page, m.Off)
		m.Kind = kReadReply
		cm.send(m.Origin, m)
	case kWriteReq:
		cm.arriveWrite(m)
	case kUpdate:
		if o := cm.obs(); o != nil {
			o.Emit(stats.EvUpdate, int(cm.self), 0, m.Cause, uint64(m.Page), uint64(len(m.Writes)))
		}
		if cm.invalidateMode {
			cm.applyInvalidations(m.Page, m.Writes)
		} else {
			cm.applyWrites(m.Page, m.Writes)
		}
		cm.node().Updates++
		cm.propagate(m.Page, m)
	case kRMWReq:
		cm.arriveRMW(m)
	default:
		panic(fmt.Sprintf("coherence: unexpected deferred message kind %d", m.Kind))
	}
}
