package coherence

import (
	"encoding/json"

	"plus/internal/memory"
	"plus/internal/sim"
	"plus/internal/timing"
)

// Op identifies one of PLUS's interlocked read-modify-write memory
// operations (Table 3-1). Like writes, these take effect at every copy
// of the addressed location, beginning at the master; the master also
// returns the old memory contents to the originating node's
// delayed-operations cache.
type Op int

const (
	// OpXchng returns the current value and writes the operand.
	OpXchng Op = iota
	// OpCondXchng returns the current value; if its top bit is set,
	// writes the operand.
	OpCondXchng
	// OpFadd returns the current value and increments memory by the
	// operand (two's-complement signed add).
	OpFadd
	// OpFetchSet returns the current value and sets the top bit.
	OpFetchSet
	// OpQueue enqueues: the addressed location holds the offset (in the
	// addressed page) of the queue tail. Returns the current word at
	// the tail; if its top bit is clear, writes the operand there with
	// the top bit set and advances the offset modulo MaxQueueSize.
	OpQueue
	// OpDequeue dequeues: the addressed location holds the offset of
	// the queue head. Returns the current word at the head; if its top
	// bit is set, clears the slot's top bit and advances the offset
	// modulo MaxQueueSize.
	OpDequeue
	// OpMinXchng returns the current value and stores the operand if it
	// is smaller (unsigned compare).
	OpMinXchng
	// OpDelayedRead returns the current value without modification;
	// an asynchronous remote read for latency hiding.
	OpDelayedRead

	opCount
)

var opNames = [...]string{
	OpXchng:       "xchng",
	OpCondXchng:   "cond-xchng",
	OpFadd:        "fetch-and-add",
	OpFetchSet:    "fetch-and-set",
	OpQueue:       "queue",
	OpDequeue:     "dequeue",
	OpMinXchng:    "min-xchng",
	OpDelayedRead: "delayed-read",
}

func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return "op(?)"
	}
	return opNames[o]
}

// MarshalJSON emits the operation's Table 3-1 name, so experiment
// rows serialize as "fetch-and-add" rather than an opaque ordinal.
func (o Op) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// Ops lists every delayed operation in Table 3-1 order.
func Ops() []Op {
	ops := make([]Op, opCount)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// ExecCycles returns the coherence manager's execution time for the
// operation: Table 3-1 gives 39 cycles for the simple word operations
// and 52 for the queue operations and min-xchng.
func (o Op) ExecCycles(tm timing.Timing) sim.Cycles {
	switch o {
	case OpQueue, OpDequeue, OpMinXchng:
		return tm.RMWComplex
	default:
		return tm.RMWSimple
	}
}

// IsRead reports whether the operation modifies no memory.
func (o Op) IsRead() bool { return o == OpDelayedRead }

// exec applies op atomically to the master copy stored in page (the
// backing slice of the master's frame) and returns the value sent back
// to the originator plus the word writes to propagate to the other
// copies. maxQueue is the hardware queue wrap modulus. The writes are
// appended to buf (typically the pooled message's recycled Writes
// slice) so the hot path allocates nothing once capacities warm up;
// operations that modify no memory return buf unchanged (length 0 when
// the caller passed an empty buffer).
func exec(op Op, page []memory.Word, off uint32, operand memory.Word, maxQueue int, buf []wordWrite) (memory.Word, []wordWrite) {
	off &= memory.OffMask
	old := page[off]
	switch op {
	case OpXchng:
		page[off] = operand
		return old, append(buf, wordWrite{Off: off, Val: operand})
	case OpCondXchng:
		if old&memory.TopBit != 0 {
			page[off] = operand
			return old, append(buf, wordWrite{Off: off, Val: operand})
		}
		return old, buf
	case OpFadd:
		nv := memory.Word(uint32(old) + uint32(operand))
		page[off] = nv
		return old, append(buf, wordWrite{Off: off, Val: nv})
	case OpFetchSet:
		nv := old | memory.TopBit
		page[off] = nv
		return old, append(buf, wordWrite{Off: off, Val: nv})
	case OpQueue:
		tail := uint32(page[off]) % uint32(maxQueue)
		slot := page[tail]
		if slot&memory.TopBit != 0 {
			return slot, buf // queue full: slot still occupied
		}
		nv := operand | memory.TopBit
		page[tail] = nv
		nt := memory.Word((tail + 1) % uint32(maxQueue))
		page[off] = nt
		return slot, append(buf, wordWrite{Off: tail, Val: nv}, wordWrite{Off: off, Val: nt})
	case OpDequeue:
		head := uint32(page[off]) % uint32(maxQueue)
		slot := page[head]
		if slot&memory.TopBit == 0 {
			return slot, buf // queue empty: slot not occupied
		}
		nv := slot &^ memory.TopBit
		page[head] = nv
		nh := memory.Word((head + 1) % uint32(maxQueue))
		page[off] = nh
		return slot, append(buf, wordWrite{Off: head, Val: nv}, wordWrite{Off: off, Val: nh})
	case OpMinXchng:
		if uint32(operand) < uint32(old) {
			page[off] = operand
			return old, append(buf, wordWrite{Off: off, Val: operand})
		}
		return old, buf
	case OpDelayedRead:
		return old, buf
	default:
		panic("coherence: unknown op")
	}
}
