package coherence

import (
	"plus/internal/mesh"
)

// Coherence-protocol message kinds, carried in mesh.Msg.Kind. Field
// usage per kind matches the comments; unused mesh.Msg fields are
// zero. Messages are pooled: every sender draws from the mesh
// free-list (or forwards the message in hand) and the final consumer
// — the originator on ack/reply, the last copy on a completed update
// — recycles it.
const (
	// kReadReq asks the addressed node to read a word of its copy.
	kReadReq uint8 = iota
	// kReadReply returns the word to the requesting processor.
	kReadReply
	// kWriteReq carries one or more word writes (the Writes vector; a
	// combined batch when write combining is on, a single word
	// otherwise) toward the master copy. The addressed node performs
	// them if it holds the master, else forwards the message.
	kWriteReq
	// kUpdate propagates committed word writes down the copy-list.
	kUpdate
	// kAck is the completion acknowledgement sent by the last copy in
	// the copy-list to the originating processor's coherence manager.
	kAck
	// kRMWReq carries a delayed operation toward the master copy.
	kRMWReq
	// kRMWReply returns the old memory contents from the master to the
	// originator's delayed-operations cache. Complete marks a reply
	// that also finishes the operation (the master was the only/last
	// copy, so no separate ack follows).
	kRMWReply
	// kPageCopy carries a whole-page snapshot from a copy-list
	// predecessor to a newly linked replica.
	kPageCopy
	// kTAck is the reliability sublayer's cumulative transport
	// acknowledgement (unreliable-network mode only; see transport.go).
	// Seq carries the highest in-order sequence number received from
	// the acked peer. Transport acks are themselves unsequenced — loss
	// is recovered by the sender's retransmit timer and the receiver
	// re-acking duplicates.
	kTAck
)

// wordWrite is one word modified by a write or RMW, propagated down
// the copy-list verbatim so every copy applies identical values in
// identical order (general coherence). It aliases the wire type so
// update payloads travel in the pooled message without copying.
type wordWrite = mesh.WordWrite

// flits returns the message size in link flits (one flit = one 32-bit
// word plus routing overhead folded into the base latency).
func flits(m *mesh.Msg) int {
	switch m.Kind {
	case kReadReq:
		return 2 // address
	case kReadReply:
		return 2 // id + data
	case kWriteReq:
		return 1 + 2*len(m.Writes) // address + (offset, data) per word
	case kUpdate:
		return 2 + 2*len(m.Writes)
	case kAck:
		return 1
	case kRMWReq:
		return 3 // address + operand (+ op encoded in header)
	case kRMWReply:
		return 2
	case kPageCopy:
		return 2 + len(m.Data)
	case kTAck:
		return 1
	default:
		return 1
	}
}
