package coherence

import (
	"plus/internal/memory"
	"plus/internal/mesh"
)

// kind enumerates the coherence-protocol message types carried by the
// mesh.
type kind int

const (
	// kReadReq asks the addressed node to read a word of its copy.
	kReadReq kind = iota
	// kReadReply returns the word to the requesting processor.
	kReadReply
	// kWriteReq carries a write toward the master copy. The addressed
	// node performs it if it holds the master, else forwards it.
	kWriteReq
	// kUpdate propagates committed word writes down the copy-list.
	kUpdate
	// kAck is the completion acknowledgement sent by the last copy in
	// the copy-list to the originating processor's coherence manager.
	kAck
	// kRMWReq carries a delayed operation toward the master copy.
	kRMWReq
	// kRMWReply returns the old memory contents from the master to the
	// originator's delayed-operations cache.
	kRMWReply
	// kPageCopy carries a whole-page snapshot from a copy-list
	// predecessor to a newly linked replica.
	kPageCopy
)

// msg is the wire format of the coherence protocol. Fields are used
// per kind; unused fields are zero.
type msg struct {
	kind   kind
	origin mesh.NodeID // requesting node, for replies and acks
	id     uint64      // origin-local request identifier
	pid    uint64      // pending-writes entry for RMWs (0 = none)
	page   memory.PPage
	off    uint32
	val    memory.Word // data word or RMW operand
	op     Op
	writes []wordWrite   // kUpdate payload
	data   []memory.Word // kPageCopy payload
	done   func()        // kPageCopy completion hook (simulation-side)
	// complete marks a kRMWReply that also completes the operation
	// (the master was the only/last copy, so no separate ack follows).
	complete bool
}

// flits returns the message size in link flits (one flit = one 32-bit
// word plus routing overhead folded into the base latency).
func (m *msg) flits() int {
	switch m.kind {
	case kReadReq:
		return 2 // address
	case kReadReply:
		return 2 // id + data
	case kWriteReq:
		return 3 // address + data
	case kUpdate:
		return 2 + 2*len(m.writes)
	case kAck:
		return 1
	case kRMWReq:
		return 3 // address + operand (+ op encoded in header)
	case kRMWReply:
		return 2
	case kPageCopy:
		return 2 + len(m.data)
	default:
		return 1
	}
}
