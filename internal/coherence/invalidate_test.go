package coherence

import (
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
)

// invRig builds a rig with every CM in write-invalidate mode.
func invRig(t *testing.T, w, h int) *rig {
	r := newRig(t, w, h)
	for _, cm := range r.cms {
		cm.SetInvalidateMode(true)
	}
	return r
}

func TestInvalidateMarksReplicaStale(t *testing.T) {
	r := invRig(t, 4, 1)
	frames := r.page(0, 2)
	r.cms[0].Write(GAddr{0, frames[0], 5}, 42, func() {})
	r.eng.Run()
	// Master has the data; the replica word is stale and marked.
	if r.mems[0].Read(frames[0], 5) != 42 {
		t.Fatal("master not written")
	}
	if !r.cms[2].isInvalid(frames[2], 5) {
		t.Fatal("replica word not invalidated")
	}
	if r.st.Nodes[2].Invalidations != 1 {
		t.Fatalf("invalidations = %d", r.st.Nodes[2].Invalidations)
	}
	// The ack chain still completed the write.
	if r.cms[0].PendingCount() != 0 {
		t.Fatal("write never acked")
	}
}

func TestInvalidatedReadRefetchesFromMaster(t *testing.T) {
	r := invRig(t, 4, 1)
	frames := r.page(0, 2)
	r.cms[0].Write(GAddr{0, frames[0], 5}, 42, func() {})
	r.eng.Run()
	var got memory.Word
	r.cms[2].Read(GAddr{2, frames[2], 5}, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 42 {
		t.Fatalf("stale read returned %d", got)
	}
	// The replica is repaired: the next read is local and fresh.
	if r.cms[2].isInvalid(frames[2], 5) {
		t.Fatal("replica not repaired after re-fetch")
	}
	if r.mems[2].Read(frames[2], 5) != 42 {
		t.Fatal("repair did not write the replica")
	}
	if r.st.Nodes[2].InvalidateMisses != 1 {
		t.Fatalf("invalidate misses = %d", r.st.Nodes[2].InvalidateMisses)
	}
	before := r.st.Nodes[2].LocalReads
	r.cms[2].Read(GAddr{2, frames[2], 5}, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 42 || r.st.Nodes[2].LocalReads != before+1 {
		t.Fatal("repaired word not served locally")
	}
}

func TestInvalidateRMWPropagates(t *testing.T) {
	r := invRig(t, 4, 1)
	frames := r.page(1, 3)
	var slot int
	r.cms[0].RMW(OpFadd, GAddr{1, frames[1], 0}, 7, func(s int) { slot = s })
	r.eng.Run()
	if _, ok := r.cms[0].TryVerify(slot); !ok {
		t.Fatal("no RMW result")
	}
	if r.mems[1].Read(frames[1], 0) != 7 {
		t.Fatal("master not updated")
	}
	if !r.cms[3].isInvalid(frames[3], 0) {
		t.Fatal("replica not invalidated by RMW")
	}
	// A read through the replica still sees the fresh value.
	var got memory.Word
	r.cms[3].Read(GAddr{3, frames[3], 0}, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 7 {
		t.Fatalf("replica read after RMW = %d", got)
	}
}

func TestRemoteReadOfStaleReplicaForwardsToMaster(t *testing.T) {
	// Node 3 (no copy) reads via node 2's replica while that word is
	// stale: the request must chase the master, not serve old data.
	r := invRig(t, 4, 1)
	frames := r.page(0, 2)
	r.cms[0].Write(GAddr{0, frames[0], 1}, 9, func() {})
	r.eng.Run()
	var got memory.Word
	r.cms[3].Read(GAddr{2, frames[2], 1}, func(v memory.Word) { got = v })
	r.eng.Run()
	if got != 9 {
		t.Fatalf("forwarded stale read = %d, want 9", got)
	}
}

func TestUpdateModeDoesNotInvalidate(t *testing.T) {
	r := newRig(t, 4, 1) // default: write-update
	frames := r.page(0, 2)
	r.cms[0].Write(GAddr{0, frames[0], 5}, 42, func() {})
	r.eng.Run()
	if r.cms[2].isInvalid(frames[2], 5) {
		t.Fatal("update mode marked a word invalid")
	}
	if r.mems[2].Read(frames[2], 5) != 42 {
		t.Fatal("update mode did not carry data")
	}
	if r.st.Totals().Invalidations != 0 {
		t.Fatal("invalidation counter moved in update mode")
	}
}

func TestInvalidateReadHeavySlowerThanUpdate(t *testing.T) {
	// The §2.2 claim, at protocol level: with a replica that is read
	// after every remote write, invalidation forces a refetch per
	// write while update delivers the data for free.
	countRefetches := func(invalidate bool) uint64 {
		r := newRig(t, 2, 1)
		if invalidate {
			for _, cm := range r.cms {
				cm.SetInvalidateMode(true)
			}
		}
		frames := r.page(0, 1)
		for i := 0; i < 20; i++ {
			r.cms[0].Write(GAddr{0, frames[0], 3}, memory.Word(i), func() {})
			r.eng.Run()
			r.cms[1].Read(GAddr{1, frames[1], 3}, func(memory.Word) {})
			r.eng.Run()
		}
		return r.st.Nodes[1].RemoteReads
	}
	if n := countRefetches(false); n != 0 {
		t.Fatalf("update mode caused %d refetches", n)
	}
	if n := countRefetches(true); n != 20 {
		t.Fatalf("invalidate mode caused %d refetches, want 20", n)
	}
}

func TestInvalidateGeneralCoherenceThroughMaster(t *testing.T) {
	// Concurrent writers through different entry points; after
	// quiescence every replica read (which consults staleness) yields
	// the master's value.
	r := invRig(t, 4, 1)
	frames := r.page(1, 0, 3)
	for i := 0; i < 10; i++ {
		r.cms[0].Write(GAddr{0, frames[0], 4}, memory.Word(100+i), func() {})
		r.cms[3].Write(GAddr{3, frames[3], 4}, memory.Word(1000+i), func() {})
	}
	r.eng.Run()
	want := r.mems[1].Read(frames[1], 4) // master value
	for _, n := range []mesh.NodeID{0, 3} {
		n := n
		var got memory.Word
		r.cms[n].Read(GAddr{n, frames[n], 4}, func(v memory.Word) { got = v })
		r.eng.Run()
		if got != want {
			t.Fatalf("node %d read %d, master has %d", n, got, want)
		}
	}
}
