// Crash & failover support for the coherence manager (crash-script
// runs only; see mesh.FaultConfig.Crashes).
//
// Crash semantics, per PROTOCOL.md "Crash & failover":
//
//   - Crash() models power loss: every in-flight message the node owns
//     (parked retransmit clones, staged sends, requests being
//     processed) is dropped, the transport sequence state is zeroed,
//     and the combine buffer's words are lost.
//   - Detection is the transport's retransmit escalation: a peer whose
//     timer expires detectStrikes times in a row with no acknowledged
//     progress is handed to the suspicion hook, which the core layer
//     confirms out-of-band (a management-network probe stand-in)
//     before the kernel runs the failover epoch.
//   - Failover() is one live node's part of that epoch: parked
//     requests toward the dead node are rerouted to each page's new
//     master, truncated update chains are completed administratively,
//     the transport pair is reset, and operations whose state died
//     inside the crashed node are force-retired or re-issued so no
//     originator is stranded.
//   - Restart() models the reboot: the volatile master/next tables are
//     gone (the kernel re-replicates the node's pages as it rejoins),
//     pending writes are force-retired with lost-write semantics, and
//     still-outstanding reads and delayed ops are re-issued.
//
// Everything here is gated on cm.crashy, set only when the run has a
// crash script: ordinary runs never reach these paths and keep their
// loud protocol panics.

package coherence

import (
	"fmt"
	"sort"

	"plus/internal/memory"
	"plus/internal/mesh"
)

// FailoverRouter resolves where traffic addressed to a crashed node's
// lost frame should go now: the current master of the page that frame
// held. ok is false when (owner, frame) was never lost to a crash.
// Implemented by the kernel, which records every frame it splices out.
type FailoverRouter interface {
	RerouteFrame(owner mesh.NodeID, frame memory.PPage) (memory.GPage, bool)
}

// ArmCrashRecovery wires the crash-epoch collaborators: the kernel's
// reroute table, the core layer's crash-suspicion hook, and the
// detection threshold (consecutive zero-progress retransmit expirations
// per peer). Called once at machine build on crash-script runs.
func (cm *CM) ArmCrashRecovery(router FailoverRouter, suspect func(mesh.NodeID), strikes int) {
	cm.router = router
	cm.suspectFn = suspect
	cm.detectStrikes = strikes
}

// Down reports whether this node is currently crashed.
func (cm *CM) Down() bool { return cm.down }

// slotToken encodes a delayed-op slot for the wire. On crash-script
// runs the slot's generation rides in the upper bits so a reply to a
// re-issued (or force-completed) operation cannot corrupt a reused
// slot; otherwise the token is the bare slot index, byte-identical to
// the pre-crash-support protocol.
func (cm *CM) slotToken(slot int) uint64 {
	if !cm.crashy {
		return uint64(slot)
	}
	return uint64(slot) | cm.slots[slot].gen<<16
}

// slotFromToken decodes a wire token. ok is false (crash-script runs
// only) when the slot is free or was re-issued under a new generation —
// the reply is stale and must be dropped.
func (cm *CM) slotFromToken(tok uint64) (int, bool) {
	if !cm.crashy {
		return int(tok), true
	}
	slot := int(tok & 0xffff)
	if slot >= len(cm.slots) {
		return 0, false
	}
	s := &cm.slots[slot]
	return slot, s.busy && s.gen == tok>>16
}

// Crash takes the node down at the current instant. The mesh stops
// delivering to (and accepting sends from) the node, the processor
// layer pauses dispatch; this function kills the volatile transport
// and combining state that an outage destroys. The master/next tables
// survive until Restart — a node that never restarts within the run
// simply keeps them frozen, like real battery-backed SRAM would not.
func (cm *CM) Crash() {
	cm.down = true
	for i := range cm.tx {
		tx := &cm.tx[i]
		for _, c := range tx.queue {
			if c.Kind == kPageCopy && c.Done != nil {
				// Complete a mid-flight page copy administratively so
				// the kernel's copy engine is not stranded; the data
				// never landed, which the rejoin re-replication fixes.
				cm.st.CrashOrphans++
				c.Done()
			}
			cm.freeMsg(c)
		}
		tx.queue = tx.queue[:0]
		tx.epoch++ // cancels in-flight retransmit timers
		tx.nextSeq = 0
		tx.rto = 0
		tx.strikes = 0
	}
	for i := range cm.rx {
		cm.rx[i].acked = 0
	}
	// The combine buffer's words are lost with the node; their pending
	// entries force-retire at Restart.
	cm.bopen = false
	cm.bwrites = cm.bwrites[:0]
	cm.bids = cm.bids[:0]
	cm.bcause = 0
}

// Restart brings the node back up with its volatile CM state lost:
// empty mapping tables (the kernel re-replicates pages as the node
// rejoins), force-retired pending writes (lost-write semantics — the
// write may or may not have reached the surviving copies, and the
// restarted node can no longer wait on acks addressed to its previous
// incarnation), and re-issued reads and delayed operations.
func (cm *CM) Restart() {
	cm.down = false
	for f := range cm.master {
		delete(cm.master, f)
	}
	for f := range cm.next {
		delete(cm.next, f)
	}
	if n := len(cm.pending); n > 0 {
		ids := make([]uint64, 0, n)
		for id := range cm.pending {
			ids = append(ids, id)
		}
		sortIDs(ids)
		for _, id := range ids {
			if _, ok := cm.pending[id]; !ok {
				continue // batch member retired by its lead id
			}
			cm.st.ForcedRetires++
			cm.retireWrite(id)
		}
	}
	cm.reissueReads(func(uint64, readWaiter) bool { return true })
	for i := range cm.slots {
		if cm.slots[i].busy && !cm.slots[i].ready {
			cm.reissueRMW(i)
		}
	}
}

// Failover runs this (live) node's part of the kernel's failover epoch
// for dead. affected reports whether an address belongs to a page that
// lost a copy to the crash; the kernel builds it from the copy lists
// as they stood before the rewrite. Must be called after the kernel
// has promoted masters and rewritten the surviving chain, so reroutes
// resolve to the new topology.
func (cm *CM) Failover(dead mesh.NodeID, affected func(GAddr) bool) {
	tx := &cm.tx[dead]
	queue := tx.queue
	tx.queue = nil
	tx.epoch++ // cancels the pair's retransmit timer
	tx.nextSeq = 0
	tx.rto = 0
	tx.strikes = 0
	cm.rx[dead].acked = 0

	// resent tracks operations whose request was parked toward the
	// dead node and is re-sent below: those must not also be
	// force-retired or re-issued by the sweep that follows.
	resentPids := make(map[uint64]bool)
	resentSlots := make(map[uint64]bool)
	resentReads := make(map[uint64]bool)
	reroute := func(frame memory.PPage) (memory.GPage, bool) {
		if cm.router == nil {
			return memory.GPage{}, false
		}
		return cm.router.RerouteFrame(dead, frame)
	}
	for _, c := range queue {
		switch c.Kind {
		case kReadReq:
			w, waiting := cm.readWaiters[c.ID]
			g, ok := reroute(c.Page)
			if !waiting || !ok {
				cm.st.CrashOrphans++
				cm.freeMsg(c)
				continue
			}
			resentReads[c.ID] = true
			cm.st.RedirectedMsgs++
			c.Seq, c.Nacked = 0, false
			if g.Node == cm.self {
				delete(cm.readWaiters, c.ID)
				cm.freeMsg(c)
				cm.scheduleReadDone(cm.ca.Read(g.Page, w.g.Off), w.fn, cm.mem.Read(g.Page, w.g.Off))
				continue
			}
			c.Page = g.Page
			cm.send(g.Node, c)
		case kWriteReq, kRMWReq:
			g, ok := reroute(c.Page)
			if !ok {
				cm.st.CrashOrphans++
				cm.freeMsg(c)
				continue
			}
			if c.Kind == kWriteReq {
				resentPids[c.ID] = true
			} else {
				resentSlots[c.ID] = true
				if c.Pid != 0 {
					resentPids[c.Pid] = true
				}
			}
			cm.st.RedirectedMsgs++
			c.Seq, c.Nacked = 0, false
			c.Page = g.Page
			if g.Node == cm.self {
				if c.Kind == kWriteReq {
					cm.arriveWrite(c)
				} else {
					cm.arriveRMW(c)
				}
				continue
			}
			cm.send(g.Node, c)
		case kUpdate:
			// The chain is truncated at the dead node: this copy is now
			// effectively the end of the list for this modification (the
			// kernel's resync cascade restores downstream copies), so
			// acknowledge the originator.
			cm.st.CrashOrphans++
			if c.ID == 0 || c.Origin == dead {
				cm.freeMsg(c)
				continue
			}
			if c.Origin == cm.self {
				id := c.ID
				cm.freeMsg(c)
				cm.retireWrite(id)
				continue
			}
			c.Kind = kAck
			c.Seq, c.Nacked = 0, false
			cm.send(c.Origin, c)
		case kPageCopy:
			// A replication racing the target's crash: complete the copy
			// engine administratively; the rejoin re-replicates the page.
			cm.st.CrashOrphans++
			if c.Done != nil {
				c.Done()
			}
			cm.freeMsg(c)
		case kAck, kReadReply, kRMWReply:
			// Completions addressed to state that died with the node.
			cm.st.CrashOrphans++
			cm.freeMsg(c)
		default:
			panic(fmt.Sprintf("coherence: failover of unexpected parked kind %d on node %d", c.Kind, cm.self))
		}
	}

	// Re-issue unresolved delayed ops on affected pages first, so their
	// pending entries are marked resent before the force-retire sweep.
	for i := range cm.slots {
		s := &cm.slots[i]
		if s.busy && !s.ready && affected(s.g) && !resentSlots[cm.slotToken(i)] {
			if s.pid != 0 {
				resentPids[s.pid] = true
			}
			cm.reissueRMW(i)
		}
	}
	// Re-issue outstanding reads addressed to the dead node, skipping
	// those already re-sent from the parked queue above.
	cm.reissueReads(func(id uint64, w readWaiter) bool {
		return w.g.Node == dead && !resentReads[id]
	})
	// Force-retire pending writes to affected pages whose request or
	// update may have died inside the crashed node. A write that was in
	// fact still propagating among live copies delivers a stale ack
	// later, which finishWrite tolerates on crash runs.
	if len(cm.pending) > 0 {
		var ids []uint64
		for id, g := range cm.pending {
			if affected(g) && !resentPids[id] {
				ids = append(ids, id)
			}
		}
		sortIDs(ids)
		for _, id := range ids {
			if _, ok := cm.pending[id]; !ok {
				continue // batch member retired by its lead id
			}
			cm.st.ForcedRetires++
			cm.retireWrite(id)
		}
	}
}

// reissueReads re-sends every outstanding remote read selected by keep,
// rerouting reads whose target frame was lost. Deterministic: waiters
// are processed in id order.
func (cm *CM) reissueReads(keep func(uint64, readWaiter) bool) {
	if len(cm.readWaiters) == 0 {
		return
	}
	ids := make([]uint64, 0, len(cm.readWaiters))
	for id, w := range cm.readWaiters {
		if keep(id, w) {
			ids = append(ids, id)
		}
	}
	sortIDs(ids)
	for _, id := range ids {
		cm.reissueRead(id)
	}
}

// reissueRead re-sends one outstanding remote read (same id, so the
// waiter and any trace records carry over), following the reroute
// table if the target frame was lost to a crash. A reroute that lands
// on this node is served locally.
func (cm *CM) reissueRead(id uint64) {
	w := cm.readWaiters[id]
	cm.st.ReissuedOps++
	g := w.g
	if cm.router != nil {
		if ng, ok := cm.router.RerouteFrame(g.Node, g.Page); ok {
			g = GAddr{Node: ng.Node, Page: ng.Page, Off: g.Off}
		}
	}
	if g.Node == cm.self {
		delete(cm.readWaiters, id)
		cm.scheduleReadDone(cm.ca.Read(g.Page, g.Off), w.fn, cm.mem.Read(g.Page, g.Off))
		return
	}
	m := cm.newMsg(kReadReq, cm.self, id)
	m.Page, m.Off = g.Page, g.Off
	cm.send(g.Node, m)
}

// reissueRMW re-sends an unresolved delayed operation from its slot's
// replay record under the same generation token, rerouting if its
// master's frame was lost. The operation may in fact still execute
// from the original request — a delayed op can therefore apply twice
// across a crash epoch, which PROTOCOL.md documents as the price of
// liveness (the stale reply itself is rejected by the token).
func (cm *CM) reissueRMW(slot int) {
	s := &cm.slots[slot]
	cm.st.ReissuedOps++
	g := s.g
	if cm.router != nil {
		if ng, ok := cm.router.RerouteFrame(g.Node, g.Page); ok {
			g = GAddr{Node: ng.Node, Page: ng.Page, Off: g.Off}
		}
	}
	m := cm.newMsg(kRMWReq, cm.self, cm.slotToken(slot))
	m.Pid = s.pid
	m.Op = s.op
	m.Page, m.Off, m.Val = g.Page, g.Off, s.operand
	if g.Node == cm.self {
		cm.arriveRMW(m)
		return
	}
	cm.send(g.Node, m)
}

// orphanRequest handles a write/RMW request addressed to a frame this
// node no longer maps (its tables were lost in a crash): reroute it to
// the page's current master when the kernel still knows one, otherwise
// complete it as lost so no originator is stranded.
func (cm *CM) orphanRequest(m *mesh.Msg) {
	cm.st.CrashOrphans++
	if cm.router != nil {
		if g, ok := cm.router.RerouteFrame(cm.self, m.Page); ok {
			cm.st.RedirectedMsgs++
			m.Page = g.Page
			if g.Node == cm.self {
				if m.Kind == kRMWReq {
					cm.arriveRMW(m)
				} else {
					cm.arriveWrite(m)
				}
				return
			}
			cm.send(g.Node, m)
			return
		}
	}
	if m.Kind == kRMWReq {
		// Reply with a lost result so a Verify never hangs; the slot
		// token rejects it if the op was meanwhile re-issued elsewhere.
		origin, tok, pid, cause := m.Origin, m.ID, m.Pid, m.Cause
		if origin == cm.self {
			if slot, ok := cm.slotFromToken(tok); ok {
				cm.fillSlot(slot, 0)
			}
			cm.freeMsg(m)
			cm.complete(origin, pid, cause)
			return
		}
		m.Kind = kRMWReply
		m.ID, m.Pid, m.Val, m.Complete = tok, pid, 0, true
		cm.send(origin, m)
		return
	}
	// A lost write: acknowledge the originator so its fence makes
	// progress (the data is gone — lost-write semantics).
	if m.ID == 0 {
		cm.freeMsg(m)
		return
	}
	if m.Origin == cm.self {
		id := m.ID
		cm.freeMsg(m)
		cm.retireWrite(id)
		return
	}
	m.Kind = kAck
	cm.send(m.Origin, m)
}

// sortIDs sorts operation ids ascending — every crash-epoch sweep over
// a map walks its keys in this order so recovery stays deterministic.
func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
