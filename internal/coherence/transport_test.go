package coherence

import (
	"testing"

	"plus/internal/cache"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// newFaultyRig is newRig on an unreliable network.
func newFaultyRig(t *testing.T, w, h int, f mesh.FaultConfig) *rig {
	t.Helper()
	return newFaultyRigTiming(t, w, h, f, timing.Default())
}

// newFaultyRigTiming is newFaultyRig with a custom cost table.
func newFaultyRigTiming(t *testing.T, w, h int, f mesh.FaultConfig, tm timing.Timing) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := mesh.DefaultConfig(w, h)
	cfg.Faults = f
	net := mesh.New(eng, cfg)
	st := stats.New(w * h)
	r := &rig{eng: eng, net: net, st: st, tm: tm}
	for i := 0; i < w*h; i++ {
		mem := memory.New()
		ca := cache.New(cache.DefaultConfig(), tm)
		r.mems = append(r.mems, mem)
		r.cms = append(r.cms, New(mesh.NodeID(i), eng, net, mem, ca, tm, st))
	}
	return r
}

// TestTransportSurvivesChaos drives writes from every node through a
// network that drops, duplicates and reorders messages, and checks that
// the reliability sublayer delivers the protocol intact: every write
// completes, every replica converges with the master, the retransmit
// queues drain, and no pooled message leaks.
func TestTransportSurvivesChaos(t *testing.T) {
	f := mesh.FaultConfig{Seed: 5, DropRate: 0.15, DupRate: 0.1, DelayRate: 0.2, DelayMax: 200}
	r := newFaultyRig(t, 2, 2, f)
	frames := r.page(0, 1, 2) // master on 0, copies on 1 and 2; node 3 bare
	for i := 0; i < 40; i++ {
		off := uint32(i % 16)
		node := mesh.NodeID(i % 4)
		g := addrFor(frames, 0, node, off)
		r.cms[node].Write(g, memory.Word(1000+i), func() {})
	}
	r.eng.Run()
	for i, cm := range r.cms {
		if cm.PendingCount() != 0 {
			t.Fatalf("node %d: %d writes never completed", i, cm.PendingCount())
		}
		if !cm.TransportIdle() {
			t.Fatalf("node %d: retransmit queue not drained", i)
		}
	}
	for _, n := range []mesh.NodeID{1, 2} {
		for off := uint32(0); off < 16; off++ {
			if got, want := r.mems[n].Read(frames[n], off), r.mems[0].Read(frames[0], off); got != want {
				t.Fatalf("replica on node %d diverged at word %d: %d != master %d", n, off, got, want)
			}
		}
	}
	if r.st.Retransmits == 0 {
		t.Fatal("chaos run exercised no retransmits")
	}
	if r.st.TransDups == 0 && r.st.TransGaps == 0 {
		t.Fatal("chaos run exercised no receiver-side drops")
	}
	net := r.net.Stats()
	if net.Dropped == 0 {
		t.Fatalf("fault injection inactive: %+v", net)
	}
	if live := r.net.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
}

// TestTransportSurvivesChaosBatched repeats the chaos run with write
// combining on: the multi-word kWriteReq/kUpdate messages ride the
// same go-back-N machinery, and a retransmission re-sends the whole
// Writes vector (the transport parks a deep clone, vector included),
// so every word of every batch must still land on every replica.
func TestTransportSurvivesChaosBatched(t *testing.T) {
	f := mesh.FaultConfig{Seed: 5, DropRate: 0.15, DupRate: 0.1, DelayRate: 0.2, DelayMax: 200}
	tm := timing.Default()
	tm.MaxBatchWrites = 4
	r := newFaultyRigTiming(t, 2, 2, f, tm)
	frames := r.page(0, 1, 2) // master on 0, copies on 1 and 2; node 3 bare
	writes := 0
	for i := 0; i < 40; i++ {
		off := uint32(i % 16)
		node := mesh.NodeID(i % 4)
		g := addrFor(frames, 0, node, off)
		r.cms[node].Write(g, memory.Word(1000+i), func() {})
		writes++
	}
	// 10 writes per node exceed the pending-writes depth, so waiters
	// re-issue (and re-buffer) while the engine runs; with no processor
	// attached to this rig, drain the combine buffers the way the proc
	// layer's exit hook would until everything is flushed and acked.
	r.eng.Run()
	for again := true; again; {
		again = false
		for _, cm := range r.cms {
			if cm.BufferedWrites() > 0 {
				cm.FlushBatch()
				again = true
			}
		}
		r.eng.Run()
	}
	for i, cm := range r.cms {
		if cm.PendingCount() != 0 {
			t.Fatalf("node %d: %d writes never completed", i, cm.PendingCount())
		}
		if cm.BufferedWrites() != 0 {
			t.Fatalf("node %d: combine buffer not drained", i)
		}
		if !cm.TransportIdle() {
			t.Fatalf("node %d: retransmit queue not drained", i)
		}
	}
	// Convergence: because writes to one offset arrive from several
	// nodes, only replica-vs-master equality is checkable (same as the
	// unbatched chaos test).
	for _, n := range []mesh.NodeID{1, 2} {
		for off := uint32(0); off < 16; off++ {
			if got, want := r.mems[n].Read(frames[n], off), r.mems[0].Read(frames[0], off); got != want {
				t.Fatalf("replica on node %d diverged at word %d: %d != master %d", n, off, got, want)
			}
		}
	}
	if got := r.st.MsgWrite; got >= uint64(writes) {
		t.Fatalf("batching inactive: %d write requests for %d writes", got, writes)
	}
	if r.st.Retransmits == 0 {
		t.Fatal("batched chaos run exercised no retransmits")
	}
	if r.st.Totals().CoalescedWrites == 0 {
		t.Fatal("batched chaos run coalesced nothing")
	}
	if live := r.net.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
}

// TestTransportRecoversEveryKind exercises loss under each protocol
// message flavour: remote blocking reads, remote writes through
// forwarding, RMWs, and a background page copy.
func TestTransportRecoversEveryKind(t *testing.T) {
	f := mesh.FaultConfig{Seed: 9, DropRate: 0.25}
	r := newFaultyRig(t, 2, 1, f)
	frames := r.page(0, 1)
	r.mems[0].Write(frames[0], 2, 77)
	r.mems[1].Write(frames[1], 2, 77)

	var reads []memory.Word
	for i := 0; i < 8; i++ {
		r.cms[1].Read(GAddr{0, frames[0], 2}, func(v memory.Word) { reads = append(reads, v) })
		r.cms[1].Write(GAddr{1, frames[1], uint32(4 + i)}, memory.Word(i), func() {})
		r.cms[1].RMW(OpFadd, GAddr{0, frames[0], 3}, 1, func(slot int) {})
	}
	r.eng.Run()
	if len(reads) != 8 {
		t.Fatalf("completed %d of 8 remote reads", len(reads))
	}
	for _, v := range reads {
		if v != 77 {
			t.Fatalf("remote read returned %d, want 77", v)
		}
	}
	if got := r.mems[0].Read(frames[0], 3); got != 8 {
		t.Fatalf("fetch-add total = %d, want 8", got)
	}
	if got := r.mems[1].Read(frames[1], 3); got != 8 {
		t.Fatalf("replica fetch-add total = %d, want 8", got)
	}
	if r.st.Retransmits == 0 {
		t.Fatal("no retransmits at 25%% loss")
	}
	if live := r.net.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
}

// TestTransportInertWhenOff pins the zero-cost guarantee: on a reliable
// network no sequence numbers are stamped and no transport messages or
// state appear.
func TestTransportInertWhenOff(t *testing.T) {
	r := newRig(t, 2, 1)
	frames := r.page(0, 1)
	r.cms[1].Write(GAddr{0, frames[0], 1}, 5, func() {})
	r.eng.Run()
	if r.st.MsgTAck != 0 || r.st.Retransmits != 0 || r.st.TransDups != 0 || r.st.TransGaps != 0 {
		t.Fatalf("transport active on a reliable network: tacks=%d retrans=%d", r.st.MsgTAck, r.st.Retransmits)
	}
	for i, cm := range r.cms {
		if !cm.TransportIdle() {
			t.Fatalf("node %d transport not idle", i)
		}
		if cm.reliable || cm.tx != nil || cm.rx != nil {
			t.Fatalf("node %d allocated transport state on a reliable network", i)
		}
	}
}
