// Package memory models per-node physical memory and defines the
// fundamental address and word types shared across the machine.
//
// PLUS memory is word-grained: the unit of replication is a 4 KB page
// (1024 32-bit words, matching the off-the-shelf CPU's MMU), but the
// unit of access and coherence is one 32-bit word. All addresses in
// this codebase are word addresses, not byte addresses.
package memory

import (
	"fmt"

	"plus/internal/node"
)

// PageShift and PageWords define the 4 KB page: 2^10 words of 4 bytes.
const (
	PageShift = 10
	PageWords = 1 << PageShift
	OffMask   = PageWords - 1
)

// Word is the 32-bit memory word, the unit of access and coherence.
// Several delayed operations treat the top bit as a hardware flag
// (fetch-and-set, queue, dequeue, cond-xchng).
type Word uint32

// TopBit is the hardware flag bit used by queue/dequeue/fetch-and-set
// and tested by cond-xchng.
const TopBit Word = 0x80000000

// VAddr is a word-grained virtual address. All nodes share one virtual
// address space (PLUS runs a single multithreaded process).
type VAddr uint32

// VPage is a virtual page number.
type VPage uint32

// Page returns the virtual page containing the address.
func (a VAddr) Page() VPage { return VPage(a >> PageShift) }

// Offset returns the word offset within the page.
func (a VAddr) Offset() uint32 { return uint32(a) & OffMask }

// Base returns the first address of the page.
func (p VPage) Base() VAddr { return VAddr(uint32(p) << PageShift) }

// Addr returns the address of word off within the page.
func (p VPage) Addr(off uint32) VAddr { return p.Base() + VAddr(off&OffMask) }

// PPage is a physical page (frame) index within one node's memory.
type PPage int32

// GPage is a global physical page address: the <node-id, page-id> pair
// generated directly by the memory-mapping hardware (§2.3). Node is
// node.ID, which mesh.NodeID aliases.
type GPage struct {
	Node node.ID
	Page PPage
}

// NilGPage marks "no page" (e.g. end of a copy-list).
var NilGPage = GPage{Node: -1, Page: -1}

// IsNil reports whether g is the nil page.
func (g GPage) IsNil() bool { return g == NilGPage }

func (g GPage) String() string {
	if g.IsNil() {
		return "gpage(nil)"
	}
	return fmt.Sprintf("gpage(n%d:p%d)", g.Node, g.Page)
}

// Memory is one node's local memory: an array of page frames. In PLUS
// the local memory serves both as main memory and as the replica store
// for pages homed elsewhere.
type Memory struct {
	frames [][]Word
}

// New returns an empty memory; frames are allocated on demand.
func New() *Memory { return &Memory{} }

// AllocFrame allocates a zeroed page frame and returns its index.
func (m *Memory) AllocFrame() PPage {
	m.frames = append(m.frames, make([]Word, PageWords))
	return PPage(len(m.frames) - 1)
}

// Frames returns the number of allocated frames.
func (m *Memory) Frames() int { return len(m.frames) }

// Read returns the word at offset off of frame p.
func (m *Memory) Read(p PPage, off uint32) Word {
	return m.frames[p][off&OffMask]
}

// Write stores v at offset off of frame p.
func (m *Memory) Write(p PPage, off uint32, v Word) {
	m.frames[p][off&OffMask] = v
}

// Page returns the backing slice of frame p (used by the page-copy
// engine and by tests; writes through it bypass coherence).
func (m *Memory) Page(p PPage) []Word { return m.frames[p] }
