package memory

import (
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	a := VAddr(5*PageWords + 17)
	if a.Page() != 5 {
		t.Fatalf("page = %d, want 5", a.Page())
	}
	if a.Offset() != 17 {
		t.Fatalf("offset = %d, want 17", a.Offset())
	}
	if VPage(5).Addr(17) != a {
		t.Fatalf("Addr round trip failed")
	}
	if VPage(5).Base() != VAddr(5*PageWords) {
		t.Fatalf("Base = %d", VPage(5).Base())
	}
}

func TestAddressRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		a := VAddr(raw)
		return a.Page().Addr(a.Offset()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := New()
	p := m.AllocFrame()
	if m.Read(p, 0) != 0 {
		t.Fatal("fresh frame not zeroed")
	}
	m.Write(p, 42, 0xdeadbeef)
	if got := m.Read(p, 42); got != 0xdeadbeef {
		t.Fatalf("read back %#x", got)
	}
	// Offsets wrap within the page rather than corrupting neighbours.
	m.Write(p, PageWords+1, 7)
	if got := m.Read(p, 1); got != 7 {
		t.Fatalf("wrapped write: got %#x", got)
	}
}

func TestMultipleFramesIndependent(t *testing.T) {
	m := New()
	a := m.AllocFrame()
	b := m.AllocFrame()
	if a == b {
		t.Fatal("AllocFrame returned duplicate index")
	}
	m.Write(a, 0, 1)
	m.Write(b, 0, 2)
	if m.Read(a, 0) != 1 || m.Read(b, 0) != 2 {
		t.Fatal("frames share storage")
	}
	if m.Frames() != 2 {
		t.Fatalf("Frames = %d", m.Frames())
	}
}

func TestGPageNil(t *testing.T) {
	if !NilGPage.IsNil() {
		t.Fatal("NilGPage.IsNil() = false")
	}
	g := GPage{Node: 0, Page: 0}
	if g.IsNil() {
		t.Fatal("real page reported nil")
	}
	if NilGPage.String() != "gpage(nil)" {
		t.Fatalf("String = %q", NilGPage.String())
	}
	if g.String() != "gpage(n0:p0)" {
		t.Fatalf("String = %q", g.String())
	}
}

func TestPageSliceAliases(t *testing.T) {
	m := New()
	p := m.AllocFrame()
	s := m.Page(p)
	s[9] = 99
	if m.Read(p, 9) != 99 {
		t.Fatal("Page slice does not alias frame storage")
	}
	if len(s) != PageWords {
		t.Fatalf("page slice length %d", len(s))
	}
}
