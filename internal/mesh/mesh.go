// Package mesh models the PLUS interconnection network: a 2-D mesh of
// nodes connected by point-to-point links with a router per node
// (Caltech mesh router in the original hardware, five I/O link pairs:
// one to the processor and one per mesh neighbour).
//
// Routing is dimension-ordered (X first, then Y), which is deadlock-free
// and matches wormhole mesh routers of the period. Latency follows the
// paper's measured constants: the round trip between adjacent nodes is
// 24 cycles and each extra hop adds 4 cycles, i.e. a one-way message
// costs Base + PerHop*hops with Base=10 and PerHop=2 by default.
//
// An optional contention model serializes flits over each directed
// link: a message of S flits occupies each link on its path for S
// cycles, and messages queue FIFO behind earlier traffic. The paper's
// experiments ran the network lightly loaded, so contention is off by
// default; the ablation benches flip it on.
//
// Messages are typed: every payload travels in a shared Msg wire
// struct delivered to a per-node Port, and Msg objects (with their
// payload slices) are recycled through a free-list, so the message
// path performs no per-send allocation and no interface boxing.
//
// An optional unreliable-network mode (FaultConfig) departs from the
// paper's perfect interconnect: a seeded PRNG drops, duplicates and
// delays messages deterministically at injection, and finite per-link
// buffers bounce overflowing messages back to their sender as NACKs
// instead of queueing unboundedly. The coherence layer's reliability
// sublayer (internal/coherence) recovers from all of it; with every
// fault knob at zero this file's behaviour is bit-identical to the
// reliable network.
package mesh

import (
	"fmt"
	"math/rand"
	"sort"

	"plus/internal/memory"
	"plus/internal/node"
	"plus/internal/sim"
	"plus/internal/stats"
)

// NodeID identifies a mesh node; IDs are assigned row-major:
// id = y*Width + x. It aliases node.ID, the leaf type shared with the
// memory package's global page addresses.
type NodeID = node.ID

// Config describes the mesh geometry and timing.
type Config struct {
	Width  int
	Height int
	// Base is the fixed one-way latency of a message (router and
	// interface overhead at both ends), in cycles.
	Base sim.Cycles
	// PerHop is the added one-way latency per link traversed.
	PerHop sim.Cycles
	// Contention, when true, serializes flits on each directed link.
	Contention bool
	// FlitCycles is the link occupancy per flit when Contention is on.
	FlitCycles sim.Cycles
	// Faults configures the unreliable-network mode. The zero value is
	// the paper's perfect network.
	Faults FaultConfig
	// Shards partitions the mesh into that many equal contiguous
	// row-major bands of nodes, each simulated on its own event queue
	// under conservative lookahead (0 or 1 = serial). The shard count
	// must tile the mesh: Width*Height divisible by Shards. With
	// Contention on, contended sends are logged per shard and replayed
	// against the shared per-link queues at each lookahead barrier, in
	// dispatch-tag order — byte-identical to the serial schedule.
	Shards int
}

// MaxNodes bounds the supported mesh size (64x64). The limit is a
// sanity check, not an architectural one: per-node state is O(nodes),
// and a config with an absurd node count is almost always a typo.
const MaxNodes = 64 * 64

// FaultConfig is the deterministic fault model for the unreliable
// network mode. Faults are injected at Send from a PRNG seeded with
// Seed, so a run with the same seed, configuration and traffic replays
// the exact same fault sequence.
type FaultConfig struct {
	// Seed seeds the fault PRNG.
	Seed int64
	// DropRate is the probability in [0, 1] that an injected message is
	// silently lost before reaching its destination.
	DropRate float64
	// DupRate is the probability that a delivered message arrives
	// twice (the spurious copy one cycle behind the original).
	DupRate float64
	// DelayRate is the probability that a message suffers an extra
	// delay, uniform in [1, DelayMax] cycles, on top of its modeled
	// latency. Delays reorder traffic between node pairs.
	DelayRate float64
	// DelayMax bounds the injected delay; required when DelayRate > 0.
	DelayMax sim.Cycles
	// LinkBufFlits bounds the flits a directed link may hold queued
	// (router buffering) when the contention model is on. A message
	// whose path includes a link with more than LinkBufFlits flits
	// already waiting is refused at injection and bounced back to the
	// sender with Msg.Nacked set, after Base cycles (the reverse
	// flow-control signal). 0 means unlimited buffering. Requires
	// Contention, which models the queues being bounded.
	LinkBufFlits int
	// Crashes is an explicit, deterministic crash/restart script: while
	// a node is down ([At, At+Duration)), the mesh silently discards
	// every message addressed to it (and anything it tries to inject),
	// its processor halts at its next memory reference, and on restart
	// it has lost all volatile coherence-manager and page-table state.
	// Recovery is the kernel's failover protocol (see internal/kernel).
	// Scripted crashes arm the reliability sublayer like the message
	// faults above; an empty script leaves every hot path untouched.
	Crashes []CrashEvent
	// CrashDetectAfter is the number of consecutive retransmission
	// timeouts to one destination after which the transport suspects
	// the peer has crashed and escalates to the kernel's failover path.
	// 0 means the default (3). Meaningful only with a crash script.
	CrashDetectAfter int
}

// CrashEvent schedules one node outage: Node is down for
// [At, At+Duration) and restarts at At+Duration. Duration must be
// positive — a node that never restarts would strand every thread
// blocked on state it holds (halt-forever is out of scope).
type CrashEvent struct {
	Node     NodeID
	At       sim.Cycles
	Duration sim.Cycles
}

// DetectStrikes resolves CrashDetectAfter to the threshold actually
// used by the coherence transport.
func (f FaultConfig) DetectStrikes() int {
	if f.CrashDetectAfter > 0 {
		return f.CrashDetectAfter
	}
	return 3
}

// Enabled reports whether any part of the fault model is active — the
// condition under which the coherence layer arms its reliability
// sublayer.
func (f FaultConfig) Enabled() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.DelayRate > 0 || f.LinkBufFlits > 0 ||
		len(f.Crashes) > 0
}

// lossy reports whether the PRNG-driven faults (drop/dup/delay) are on.
func (f FaultConfig) lossy() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.DelayRate > 0
}

// Validate reports whether the configuration is usable. mesh.New
// panics on an invalid config; core.NewMachine returns the error.
func (c Config) Validate() error {
	rate := func(name string, r float64) error {
		if r < 0 || r > 1 || r != r {
			return fmt.Errorf("mesh: %s %v outside [0, 1]", name, r)
		}
		return nil
	}
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("mesh: invalid geometry %dx%d (dims must be positive)", c.Width, c.Height)
	case c.Width*c.Height > MaxNodes:
		return fmt.Errorf("mesh: %dx%d = %d nodes exceeds the supported maximum %d (64x64); large-scale runs top out at 32x32 with sharding",
			c.Width, c.Height, c.Width*c.Height, MaxNodes)
	case c.Shards < 0:
		return fmt.Errorf("mesh: negative shard count %d", c.Shards)
	case c.Shards > c.Width*c.Height:
		return fmt.Errorf("mesh: %d shards exceed the mesh's %d nodes (%dx%d): a shard must own at least one node",
			c.Shards, c.Width*c.Height, c.Width, c.Height)
	case c.Shards > 1 && c.Width*c.Height%c.Shards != 0:
		return fmt.Errorf("mesh: %d shards do not tile the %dx%d mesh: %d nodes %% %d shards = %d left over (pick a divisor of the node count)",
			c.Shards, c.Width, c.Height, c.Width*c.Height, c.Shards, c.Width*c.Height%c.Shards)
	case c.Shards > 1 && c.Base+c.PerHop < 1:
		return fmt.Errorf("mesh: sharding requires a positive minimum link latency (Base+PerHop = %d) for conservative lookahead", c.Base+c.PerHop)
	case c.Contention && c.FlitCycles < 1:
		return fmt.Errorf("mesh: contention model requires FlitCycles >= 1 (got %d)", c.FlitCycles)
	case c.Faults.LinkBufFlits < 0:
		return fmt.Errorf("mesh: negative LinkBufFlits %d", c.Faults.LinkBufFlits)
	case c.Faults.LinkBufFlits > 0 && !c.Contention:
		return fmt.Errorf("mesh: LinkBufFlits requires the contention model (bounded buffers bound the contention queues)")
	case c.Faults.LinkBufFlits > 0 && c.Shards > 1:
		return fmt.Errorf("mesh: LinkBufFlits is serial-only (admission reads the shared link queues mid-round, and the NACK bounce at +Base cycles is inside the lookahead window); run with Shards <= 1")
	case c.Faults.DelayRate > 0 && c.Faults.DelayMax < 1:
		return fmt.Errorf("mesh: DelayRate %v requires DelayMax >= 1", c.Faults.DelayRate)
	case c.Faults.CrashDetectAfter < 0:
		return fmt.Errorf("mesh: negative CrashDetectAfter %d", c.Faults.CrashDetectAfter)
	case c.Faults.CrashDetectAfter > 0 && len(c.Faults.Crashes) == 0:
		return fmt.Errorf("mesh: CrashDetectAfter %d without crash events (the detection threshold only applies to a crash script; set Faults.Crashes or drop it)",
			c.Faults.CrashDetectAfter)
	case c.Shards > 1 && len(c.Faults.Crashes) > 0:
		return fmt.Errorf("mesh: crash injection is serial-only (failover rewrites copy-lists and transport state across every node, which no shard owns); run with Shards <= 1")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", c.Faults.DropRate}, {"DupRate", c.Faults.DupRate}, {"DelayRate", c.Faults.DelayRate}} {
		if err := rate(r.name, r.v); err != nil {
			return err
		}
	}
	for i, e := range c.Faults.Crashes {
		if int(e.Node) < 0 || int(e.Node) >= c.Width*c.Height {
			return fmt.Errorf("mesh: crash event %d targets node %d outside the %dx%d mesh (%d nodes)",
				i, e.Node, c.Width, c.Height, c.Width*c.Height)
		}
		if e.Duration < 1 {
			return fmt.Errorf("mesh: crash event %d (node %d at %d) has Duration %d; nodes must restart (Duration >= 1) — a node that stays down forever strands every thread blocked on its pages",
				i, e.Node, e.At, e.Duration)
		}
		for j, p := range c.Faults.Crashes[:i] {
			if p.Node == e.Node && e.At < p.At+p.Duration && p.At < e.At+e.Duration {
				return fmt.Errorf("mesh: crash events %d and %d overlap on node %d ([%d, %d) vs [%d, %d)); one outage per node at a time",
					j, i, e.Node, p.At, p.At+p.Duration, e.At, e.At+e.Duration)
			}
		}
	}
	return nil
}

// ShardCount returns the effective number of shards (>= 1).
func (c Config) ShardCount() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// ShardOf returns the shard owning a node: equal contiguous row-major
// bands, the single source of truth for event ownership.
func (c Config) ShardOf(id NodeID) int {
	k := c.ShardCount()
	if k == 1 {
		return 0
	}
	return int(id) / (c.Width * c.Height / k)
}

// LookaheadWindow returns the conservative lookahead the shard runner
// may use: the minimum latency of any cross-shard message. Any two
// distinct nodes are at least one hop apart, so Base + PerHop bounds
// every cross-shard delivery regardless of how the bands fall.
func (c Config) LookaheadWindow() sim.Cycles {
	return c.Base + c.PerHop
}

// DefaultConfig returns the paper-calibrated mesh: one-way adjacent
// latency 12 cycles (round trip 24), +2 cycles per extra hop one-way
// (+4 round trip), no contention.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:      width,
		Height:     height,
		Base:       10,
		PerHop:     2,
		Contention: false,
		FlitCycles: 2,
	}
}

// WordWrite is one committed word modification carried by an update
// message and applied identically at every copy (general coherence).
type WordWrite struct {
	Off uint32
	Val memory.Word
}

// Msg is the shared wire message. The mesh interprets none of the
// payload fields — Kind and the rest are protocol-defined (see
// internal/coherence) — it only routes the message to Dst's Port.
// Fields are used per kind; unused fields are zero.
type Msg struct {
	// Kind is the protocol message type.
	Kind uint8
	// Op is a protocol operation code (coherence.Op for RMW requests).
	Op uint8
	// Complete marks a reply that also completes the operation.
	Complete bool
	// Origin is the requesting node, for replies and acks.
	Origin NodeID
	// Src is the hop sender, stamped by Send on every message. Unlike
	// Origin (the protocol-level requester, preserved across forwards)
	// Src identifies the node that injected this hop; the reliability
	// sublayer keys its per-pair sequence spaces on it.
	Src NodeID
	// Dst is the destination node; set by Send (or by a sender that
	// pre-stages the message before scheduling its entry into the
	// network).
	Dst NodeID
	// Seq is the reliability sublayer's per-(Src, Dst) sequence number
	// (0 when the transport is off; see internal/coherence).
	Seq uint64
	// Nacked marks a message bounced back to its sender by a full link
	// buffer instead of being delivered (back-pressure). The receiver
	// of a NACK owns the message and must recycle or re-send it.
	Nacked bool
	// Cause is the structured-trace causal ID of the operation this
	// message belongs to (stats.Event.Cause): a write request, every
	// update it fans out and the final ack all carry the ID stamped at
	// issue, so the whole span is reconstructable from the event stream.
	// Zero when tracing is off. CloneMsg copies it; FreeMsg clears it.
	Cause uint64
	// ID is an origin-local request identifier (or delayed-op slot).
	ID uint64
	// Pid is a pending-writes entry for RMWs (0 = none).
	Pid uint64
	// Page is the physical frame addressed at the destination.
	Page memory.PPage
	// Off is the word offset within the page.
	Off uint32
	// Val is a data word or RMW operand.
	Val memory.Word
	// Writes is an update payload; its capacity is retained when the
	// message is recycled.
	Writes []WordWrite
	// Data is a page-copy payload; capacity retained across recycling.
	Data []memory.Word
	// Done is a simulation-side completion hook (page copy).
	Done func()
	// pooled guards the free-list: true while the message sits on it,
	// so a double FreeMsg fails loudly instead of corrupting the pool.
	pooled bool
}

// Port receives messages delivered to a node.
type Port interface {
	Deliver(m *Msg)
}

// PortFunc adapts a plain function to the Port interface, for tests
// and simple consumers.
type PortFunc func(*Msg)

// Deliver implements Port.
func (f PortFunc) Deliver(m *Msg) { f(m) }

// Stats aggregates network activity. Messages/Hops/Flits count logical
// injections by senders; the fault counters record what the unreliable
// network did to them (all zero with the fault model off).
type Stats struct {
	Messages  uint64     // total messages sent
	Hops      uint64     // total link traversals
	Flits     uint64     // total flits transferred (size units)
	QueueWait sim.Cycles // total cycles spent queued behind busy links

	Dropped      uint64 // messages lost to fault injection
	Duplicated   uint64 // spurious extra deliveries injected
	Delayed      uint64 // messages given an extra random delay
	Nacked       uint64 // messages refused by a full link buffer
	CrashDropped uint64 // messages discarded at (or injected by) a crashed node
}

// msgPool is one shard's message free-list. Each shard recycles
// messages through its own pool so allocation never crosses shard
// worker goroutines; a message freed on a different shard than it was
// allocated on simply migrates pools (it is fully cleared either way).
type msgPool struct {
	free []*Msg
	live int
}

// downWindow is one scheduled outage: the node is down for [from, to).
type downWindow struct {
	from, to sim.Cycles
}

// mailEntry is one cross-shard event awaiting injection at the next
// lookahead barrier: the arrival time and the tie-break key drawn on
// the sending shard's engine at send time, so the event sorts into the
// destination queue exactly where the serial schedule would put it.
// Usually a message delivery (sink = the mesh, data = *Msg), but any
// sink dispatch can ride the mail path — proc routes cross-shard
// thread wakes through it (CrossShardCall).
type mailEntry struct {
	at   sim.Cycles
	lane int32
	seq  uint64
	sink sim.EventSink
	kind int
	data any
}

// pendingSend is one contended send deferred to the next lookahead
// barrier (sharded contention only). Every PRNG and tie-break-key
// draw already happened at Send time, in serial draw order; what
// remains is the walk over the shared per-link queues, which
// ResolveContention replays in dispatch-tag order so linkFree evolves
// through exactly the serial sequence of reservations.
type pendingSend struct {
	tag      sim.DispatchTag // enclosing dispatch: the Send call's global serial position
	hopTags  sim.DispatchTag // first of hops pre-reserved tag slots for EvNetHop (observer on)
	sendT    sim.Cycles
	src, dst NodeID
	flits    int
	ms       *Msg
	msLane   int32 // pre-drawn delivery key for ms
	msSeq    uint64
	dup      *Msg // non-nil: fault injector duplicated the message
	dupLane  int32
	dupSeq   uint64
	extra    sim.Cycles // fault-injected delay on the original
}

// Mesh is the interconnection network. It is not safe for concurrent
// use; like every simulated component it runs under the engine's
// single logical thread — or, sharded, under each shard engine's
// logical thread, touching only that shard's slice of the state.
type Mesh struct {
	cfg   Config
	eng   *sim.Engine
	ports []Port
	// engines holds one engine per shard (length ShardCount; engines[0]
	// == eng in the serial case). shardOf maps each node to its owner.
	engines []*sim.Engine
	shardOf []int32
	// mail[srcShard*K+dstShard] buffers cross-shard deliveries between
	// lookahead barriers. Only the source shard's worker appends, so no
	// lock is needed; DrainMail runs with all workers quiescent.
	mail [][]mailEntry
	// linkSlot[from*4+dir] indexes linkFree for the directed link
	// leaving from in direction dir, or -1 where the mesh edge has no
	// such link. linkFree has exactly one entry per physical directed
	// link. Used only when Contention is on; sharded runs touch it
	// only at barriers (ResolveContention), never mid-round.
	linkSlot []int32
	linkFree []sim.Cycles
	// pending[srcShard] logs contended sends deferred to the next
	// lookahead barrier (sharded contention only; nil otherwise).
	// Only the owning shard's worker appends — so each list sits in
	// its engine's dispatch order — and ResolveContention head-merges
	// the lists with every worker quiescent.
	pending [][]pendingSend
	// pools holds one message free-list per shard.
	pools []msgPool
	// frands drives the fault model, one PRNG per source node (keyed by
	// the sender, so fault draws stay on the sender's shard and the
	// sequence each node sees is identical for any shard count). Nil
	// when drop/dup/delay are all 0.
	frands []*rand.Rand
	// downWin holds each node's scheduled outage windows (sorted by
	// start), built once from the crash script. Nil with no script, so
	// the delivery path pays a single nil check.
	downWin [][]downWindow
	// shStats accumulates network statistics per shard (all writes
	// happen on the sending shard); Stats() sums the blocks.
	shStats []Stats
	// obs, when non-nil, holds the structured-event observers: one
	// entry for a serial mesh (the master observer), one child per
	// shard for a sharded mesh (stats.Observer.ShardChild, merged at
	// barriers by core). Every emission goes through the acting node's
	// shard entry. linkBusy mirrors the layout — [shard][link]
	// occupancy cycles, summed by LinkBusyTotals — so mid-round hop
	// accounting never crosses shard workers. Both are inert (single
	// nil check) when tracing is off.
	obs      []*stats.Observer
	linkBusy [][]sim.Cycles
}

// New creates a serial mesh. Ports are registered per node with Attach
// before any traffic is sent.
func New(eng *sim.Engine, cfg Config) *Mesh {
	if cfg.ShardCount() != 1 {
		panic(fmt.Sprintf("mesh: New with Shards=%d (use NewSharded with one engine per shard)", cfg.Shards))
	}
	return newMesh([]*sim.Engine{eng}, cfg)
}

// NewSharded creates a mesh whose nodes are partitioned over one
// engine per shard (see Config.ShardOf). Cross-shard sends buffer in
// per-shard mailboxes; the shard runner delivers them with DrainMail
// at each lookahead barrier.
func NewSharded(engines []*sim.Engine, cfg Config) *Mesh {
	if len(engines) != cfg.ShardCount() {
		panic(fmt.Sprintf("mesh: NewSharded with %d engines for %d shards", len(engines), cfg.ShardCount()))
	}
	return newMesh(engines, cfg)
}

func newMesh(engines []*sim.Engine, cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	n := cfg.Width * cfg.Height
	k := cfg.ShardCount()
	m := &Mesh{
		cfg:      cfg,
		eng:      engines[0],
		engines:  engines,
		shardOf:  make([]int32, n),
		mail:     make([][]mailEntry, k*k),
		ports:    make([]Port, n),
		pools:    make([]msgPool, k),
		shStats:  make([]Stats, k),
		linkSlot: make([]int32, n*4),
	}
	for id := 0; id < n; id++ {
		m.shardOf[id] = int32(cfg.ShardOf(NodeID(id)))
	}
	if k > 1 && cfg.Contention {
		m.pending = make([][]pendingSend, k)
	}
	if cfg.Faults.lossy() {
		m.frands = make([]*rand.Rand, n)
		for id := 0; id < n; id++ {
			m.frands[id] = rand.New(rand.NewSource(cfg.Faults.Seed + int64(id)))
		}
	}
	if len(cfg.Faults.Crashes) > 0 {
		m.downWin = make([][]downWindow, n)
		for _, e := range cfg.Faults.Crashes {
			m.downWin[e.Node] = append(m.downWin[e.Node], downWindow{e.At, e.At + e.Duration})
		}
		for id := range m.downWin {
			sort.Slice(m.downWin[id], func(a, b int) bool {
				return m.downWin[id][a].from < m.downWin[id][b].from
			})
		}
	}
	// Assign each existing directed link a dense slot; edge nodes get
	// exactly their real out-degree, so linkFree holds one entry per
	// physical link: 2*((W-1)*H + W*(H-1)).
	next := int32(0)
	for id := 0; id < n; id++ {
		x, y := id%cfg.Width, id/cfg.Width
		for dir := 0; dir < 4; dir++ {
			exists := false
			switch dir {
			case dirEast:
				exists = x+1 < cfg.Width
			case dirWest:
				exists = x > 0
			case dirNorth:
				exists = y > 0
			case dirSouth:
				exists = y+1 < cfg.Height
			}
			if exists {
				m.linkSlot[id*4+dir] = next
				next++
			} else {
				m.linkSlot[id*4+dir] = -1
			}
		}
	}
	m.linkFree = make([]sim.Cycles, next)
	return m
}

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// DirectedLinks returns the number of physical directed links modeled
// by the contention state.
func (m *Mesh) DirectedLinks() int { return len(m.linkFree) }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns the accumulated network statistics, summed over
// shards. Call it only with the simulation quiescent (between runs or
// at barriers); mid-round reads would race with shard workers.
func (m *Mesh) Stats() Stats {
	t := m.shStats[0]
	for _, s := range m.shStats[1:] {
		t.Messages += s.Messages
		t.Hops += s.Hops
		t.Flits += s.Flits
		t.QueueWait += s.QueueWait
		t.Dropped += s.Dropped
		t.Duplicated += s.Duplicated
		t.Delayed += s.Delayed
		t.Nacked += s.Nacked
		t.CrashDropped += s.CrashDropped
	}
	return t
}

// ShardOf returns the shard that owns a node's events.
func (m *Mesh) ShardOf(id NodeID) int { return int(m.shardOf[id]) }

// EngineFor returns the engine owning a node's events.
func (m *Mesh) EngineFor(id NodeID) *sim.Engine { return m.engines[m.shardOf[id]] }

// DrainMail injects every buffered cross-shard delivery into its
// destination shard's queue and returns how many it moved. The shard
// runner calls it at lookahead barriers with every worker quiescent;
// each entry carries the tie-break key drawn at Send time, and the
// engines order their heaps by key, so injection order is irrelevant
// and the merged schedule matches the serial one exactly.
func (m *Mesh) DrainMail() int {
	moved := 0
	for box, entries := range m.mail {
		if len(entries) == 0 {
			continue
		}
		dst := m.engines[box%len(m.engines)]
		for _, e := range entries {
			dst.InjectEventAt(e.at, e.lane, e.seq, e.sink, e.kind, e.data)
		}
		moved += len(entries)
		m.mail[box] = entries[:0]
	}
	return moved
}

// SetObserver attaches the structured-event observer for a serial
// mesh (nil = tracing off, the default). core.NewMachine wires this;
// with no observer the send path performs a single nil check and
// nothing else. Sharded meshes take one child observer per shard via
// SetShardObservers instead.
func (m *Mesh) SetObserver(o *stats.Observer) {
	if len(m.engines) > 1 {
		panic("mesh: SetObserver on a sharded mesh (use SetShardObservers with one child per shard)")
	}
	if o == nil {
		m.obs = nil
		return
	}
	m.obs = []*stats.Observer{o}
	m.ensureLinkBusy()
}

// SetShardObservers attaches one observer per shard — the master
// observer's ShardChild children, which core merges deterministically
// at each lookahead barrier. Emissions go through the acting node's
// shard entry, so no ring or histogram is ever touched by two shard
// workers.
func (m *Mesh) SetShardObservers(obs []*stats.Observer) {
	if len(obs) != len(m.engines) {
		panic(fmt.Sprintf("mesh: SetShardObservers with %d observers for %d shards", len(obs), len(m.engines)))
	}
	m.obs = obs
	m.ensureLinkBusy()
}

func (m *Mesh) ensureLinkBusy() {
	if m.linkBusy == nil {
		m.linkBusy = make([][]sim.Cycles, len(m.engines))
		for i := range m.linkBusy {
			m.linkBusy[i] = make([]sim.Cycles, len(m.linkFree))
		}
	}
}

// obsFor returns the observer serving a shard (nil when tracing is
// off).
func (m *Mesh) obsFor(shard int32) *stats.Observer {
	if m.obs == nil {
		return nil
	}
	return m.obs[shard]
}

// LinkLabels names every physical directed link in dense-slot order
// ("src->dst"), for trace exporters that draw one track per link.
func (m *Mesh) LinkLabels() []string {
	labels := make([]string, len(m.linkFree))
	for id := 0; id < len(m.ports); id++ {
		x, y := m.Coord(NodeID(id))
		for dir := 0; dir < 4; dir++ {
			slot := m.linkSlot[id*4+dir]
			if slot < 0 {
				continue
			}
			nx, ny := x, y
			switch dir {
			case dirEast:
				nx++
			case dirWest:
				nx--
			case dirNorth:
				ny--
			case dirSouth:
				ny++
			}
			labels[slot] = fmt.Sprintf("%d->%d", id, m.ID(nx, ny))
		}
	}
	return labels
}

// LinkBusyTotals returns each directed link's accumulated occupancy in
// cycles, summed over shards (observer attached only; nil otherwise).
// The sampler differs successive snapshots into per-interval
// utilization. Call with the simulation quiescent — serial, between
// runs, or at a lookahead barrier.
func (m *Mesh) LinkBusyTotals() []sim.Cycles {
	if m.linkBusy == nil {
		return nil
	}
	out := make([]sim.Cycles, len(m.linkFree))
	for _, shard := range m.linkBusy {
		for i, v := range shard {
			out[i] += v
		}
	}
	return out
}

// LinkBacklog returns each directed link's queued traffic at the
// current cycle, in cycles of occupancy still ahead of a new arrival.
func (m *Mesh) LinkBacklog() []sim.Cycles {
	out := make([]sim.Cycles, len(m.linkFree))
	now := m.eng.Now()
	for i, free := range m.linkFree {
		if free > now {
			out[i] = free - now
		}
	}
	return out
}

// DownAt reports whether the crash script has node id down at time t.
// The schedule is static, so any component may consult it at any time;
// the core run loop uses it to pause processors and the transport's
// crash detector uses it as the confirmation oracle (standing in for
// an out-of-band management-network probe) before triggering failover.
func (m *Mesh) DownAt(id NodeID, t sim.Cycles) bool {
	if m.downWin == nil {
		return false
	}
	for _, w := range m.downWin[id] {
		if w.from > t {
			return false
		}
		if t < w.to {
			return true
		}
	}
	return false
}

// Attach registers the message port for node id.
func (m *Mesh) Attach(id NodeID, p Port) {
	if int(id) < 0 || int(id) >= len(m.ports) {
		panic(fmt.Sprintf("mesh: Attach of out-of-range node %d (mesh has %d nodes)", id, len(m.ports)))
	}
	if p == nil {
		panic(fmt.Sprintf("mesh: Attach of nil port on node %d", id))
	}
	m.ports[id] = p
}

// AllocMsgAt returns a cleared message from the free-list of the shard
// owning the acting node (or a new one when that list is empty),
// retaining the capacity of its payload slices. Senders fill it and
// pass it to Send; the final consumer returns it with FreeMsgAt.
func (m *Mesh) AllocMsgAt(at NodeID) *Msg {
	p := &m.pools[m.shardOf[at]]
	p.live++
	if n := len(p.free); n > 0 {
		ms := p.free[n-1]
		p.free = p.free[:n-1]
		ms.pooled = false
		return ms
	}
	return &Msg{}
}

// AllocMsg is AllocMsgAt for serial meshes and machine-level callers
// (tests, setup paths): it draws from shard 0's pool.
func (m *Mesh) AllocMsg() *Msg { return m.AllocMsgAt(0) }

// FreeMsgAt recycles a message onto the free-list of the shard owning
// the acting node. The caller must not retain the message or its
// slices afterwards. Freeing a message that is already pooled panics:
// a double-free would hand the same message to two owners and silently
// corrupt the protocol.
func (m *Mesh) FreeMsgAt(at NodeID, ms *Msg) {
	if ms.pooled {
		panic("mesh: double free of pooled Msg")
	}
	*ms = Msg{Writes: ms.Writes[:0], Data: ms.Data[:0], pooled: true}
	p := &m.pools[m.shardOf[at]]
	p.live--
	p.free = append(p.free, ms)
}

// FreeMsg is FreeMsgAt onto shard 0's pool, for serial meshes and
// machine-level callers.
func (m *Mesh) FreeMsg(ms *Msg) { m.FreeMsgAt(0, ms) }

// LiveMsgs returns the number of messages currently checked out of the
// free-lists (allocated and not yet freed), summed over shards. A
// drained simulation must return to zero; the pool-balance tests pin
// that for the fault paths.
func (m *Mesh) LiveMsgs() int {
	live := 0
	for i := range m.pools {
		live += m.pools[i].live
	}
	return live
}

// CloneMsgAt returns a pooled deep copy of src from the acting node's
// shard pool: all wire fields plus the payload slices. Used by the
// fault injector's duplicate path and the reliability sublayer's
// retransmit buffer.
func (m *Mesh) CloneMsgAt(at NodeID, src *Msg) *Msg {
	c := m.AllocMsgAt(at)
	w, d := c.Writes, c.Data
	*c = *src
	c.pooled = false
	c.Writes = append(w[:0], src.Writes...)
	c.Data = append(d[:0], src.Data...)
	return c
}

// CloneMsg is CloneMsgAt from shard 0's pool, for serial meshes and
// machine-level callers.
func (m *Mesh) CloneMsg(src *Msg) *Msg { return m.CloneMsgAt(0, src) }

// Coord returns the (x, y) position of a node.
func (m *Mesh) Coord(id NodeID) (x, y int) {
	return int(id) % m.cfg.Width, int(id) / m.cfg.Width
}

// ID returns the node at (x, y).
func (m *Mesh) ID(x, y int) NodeID {
	return NodeID(y*m.cfg.Width + x)
}

// Hops returns the dimension-ordered path length between two nodes in
// link traversals (Manhattan distance).
func (m *Mesh) Hops(a, b NodeID) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Latency returns the uncontended one-way latency for a message from
// src to dst. A message to self costs Base (it still crosses the
// processor/router interface in the real machine; local operations
// bypass the network entirely and should not call Latency).
func (m *Mesh) Latency(src, dst NodeID) sim.Cycles {
	return m.cfg.Base + m.cfg.PerHop*sim.Cycles(m.Hops(src, dst))
}

// direction indices for links leaving a node.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// linkIndex returns the linkFree slot of the directed link leaving
// from in direction dir. The link must exist (contention walks real
// paths only); a missing link panics.
func (m *Mesh) linkIndex(from NodeID, dir int) int {
	slot := m.linkSlot[int(from)*4+dir]
	if slot < 0 {
		panic(fmt.Sprintf("mesh: no link from node %d in direction %d", from, dir))
	}
	return int(slot)
}

// Path returns the sequence of nodes visited by dimension-order
// routing from src to dst, inclusive of both endpoints.
func (m *Mesh) Path(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, m.ID(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, m.ID(x, y))
	}
	return path
}

// Delivery event kinds (sim.EventSink dispatch).
const (
	// evDeliver: the message arrives at its destination port.
	evDeliver = iota
	// evNack: a message refused by a full link buffer bounces back to
	// its sender's port with Nacked set.
	evNack
)

// Send routes a message of size flits from src to dst and delivers it
// to the destination port after the modeled latency. sizeFlits must be
// at least 1 (header flit). Sending from or to a node outside the mesh,
// or to a node with no attached port, panics. Send allocates nothing:
// the message rides the engine's typed event path.
//
// In unreliable-network mode the message may instead be dropped,
// delivered twice, delayed, or — when a link buffer on its path is over
// LinkBufFlits — bounced back to src as a NACK without touching the
// network. A dropped message is recycled here; a NACKed message is
// owned by the sender's port when the bounce arrives.
func (m *Mesh) Send(src, dst NodeID, sizeFlits int, ms *Msg) {
	if sizeFlits < 1 {
		sizeFlits = 1
	}
	if int(src) < 0 || int(src) >= len(m.ports) {
		panic(fmt.Sprintf("mesh: send from out-of-range node %d (mesh has %d nodes)", src, len(m.ports)))
	}
	if int(dst) < 0 || int(dst) >= len(m.ports) {
		panic(fmt.Sprintf("mesh: send to out-of-range node %d (mesh has %d nodes)", dst, len(m.ports)))
	}
	if m.ports[dst] == nil {
		panic(fmt.Sprintf("mesh: send to unattached node %d (no port registered with Attach)", dst))
	}
	ms.Src, ms.Dst = src, dst
	srcShard := m.shardOf[src]
	eng := m.engines[srcShard]
	st := &m.shStats[srcShard]
	// A crashed sender's injections die at its network interface. The
	// coherence manager and processor are halted while down, so this
	// fires only for stragglers (e.g. a retransmit timer racing the
	// crash instant).
	if m.downWin != nil && m.DownAt(src, eng.Now()) {
		st.CrashDropped++
		m.FreeMsgAt(src, ms)
		return
	}
	o := m.obsFor(srcShard)
	hops := m.Hops(src, dst)
	contending := m.cfg.Contention && hops > 0
	// Bounded router buffers: refuse at injection when a link on the
	// path has more than LinkBufFlits flits queued, and bounce the
	// message back after Base cycles (the reverse flow-control signal).
	// Serial-only (Validate): admission reads the shared link queues.
	if contending && m.cfg.Faults.LinkBufFlits > 0 && !m.admit(src, dst) {
		st.Nacked++
		ms.Nacked = true
		if o != nil {
			o.Emit(stats.EvNetNack, int(src), ms.Kind, ms.Cause, uint64(dst), 0)
		}
		eng.ScheduleEvent(m.cfg.Base, m, evNack, ms)
		return
	}
	st.Messages++
	st.Hops += uint64(hops)
	st.Flits += uint64(sizeFlits)
	if o != nil {
		o.Emit(stats.EvNetInject, int(src), ms.Kind, ms.Cause, uint64(dst), uint64(sizeFlits))
	}
	frand := m.frandFor(src)
	// Loss is modeled at injection: a dropped message reserves no
	// links and is recycled immediately.
	if frand != nil && m.cfg.Faults.DropRate > 0 && frand.Float64() < m.cfg.Faults.DropRate {
		st.Dropped++
		if o != nil {
			o.Emit(stats.EvNetDrop, int(src), ms.Kind, ms.Cause, uint64(dst), 0)
		}
		m.FreeMsgAt(src, ms)
		return
	}
	lat := m.Latency(src, dst)
	// ps, when non-nil, defers this contended send to the barrier
	// replay: mid-round, the per-link queues are shared state no shard
	// owns. The entry is logged under the enclosing dispatch's tag —
	// the Send call's global serial position — and all remaining PRNG
	// and tie-break-key draws still happen here, in serial draw order,
	// so the replay only walks the links.
	var ps *pendingSend
	if contending {
		if m.pending != nil {
			q := &m.pending[srcShard]
			*q = append(*q, pendingSend{
				tag:   eng.DispatchTag(),
				sendT: eng.Now(),
				src:   src,
				dst:   dst,
				flits: sizeFlits,
				ms:    ms,
			})
			ps = &(*q)[len(*q)-1]
			if o != nil {
				// Reserve the tag slots the serial schedule would have
				// given the per-hop events emitted right here.
				ps.hopTags = eng.DispatchTagN(hops)
			}
		} else {
			lat += m.contend(src, dst, sizeFlits, ms.Cause)
		}
	} else if o != nil && hops > 0 {
		m.emitHops(srcShard, eng.Now(), src, dst, sizeFlits, ms.Cause)
	}
	if frand != nil {
		// A duplicate arrives one cycle behind the original (it shares
		// the original's link reservations — an approximation).
		if r := m.cfg.Faults.DupRate; r > 0 && frand.Float64() < r {
			st.Duplicated++
			if o != nil {
				o.Emit(stats.EvNetDup, int(src), ms.Kind, ms.Cause, uint64(dst), 0)
			}
			dup := m.CloneMsgAt(src, ms)
			if ps != nil {
				ps.dup = dup
				ps.dupLane, ps.dupSeq = eng.DrawKey()
			} else {
				m.deliverAfter(eng, srcShard, lat+1, dup)
			}
		}
		if r := m.cfg.Faults.DelayRate; r > 0 && frand.Float64() < r {
			st.Delayed++
			extra := 1 + sim.Cycles(frand.Int63n(int64(m.cfg.Faults.DelayMax)))
			if o != nil {
				o.Emit(stats.EvNetDelay, int(src), ms.Kind, ms.Cause, uint64(extra), 0)
			}
			if ps != nil {
				ps.extra = extra
			} else {
				lat += extra
			}
		}
	}
	if ps != nil {
		ps.msLane, ps.msSeq = eng.DrawKey()
		return
	}
	m.deliverAfter(eng, srcShard, lat, ms)
}

// frandFor returns the sending node's fault PRNG (nil when the lossy
// fault model is off).
func (m *Mesh) frandFor(src NodeID) *rand.Rand {
	if m.frands == nil {
		return nil
	}
	return m.frands[src]
}

// deliverAfter schedules a delivery lat cycles out: directly on the
// sending shard's engine when the destination lives there, otherwise
// into the cross-shard mailbox with the key the event would have
// carried, for injection at the next lookahead barrier.
func (m *Mesh) deliverAfter(eng *sim.Engine, srcShard int32, lat sim.Cycles, ms *Msg) {
	dstShard := m.shardOf[ms.Dst]
	if dstShard == srcShard {
		eng.ScheduleEvent(lat, m, evDeliver, ms)
		return
	}
	lane, seq := eng.DrawKey()
	box := int(srcShard)*len(m.engines) + int(dstShard)
	m.mail[box] = append(m.mail[box], mailEntry{
		at: eng.Now() + lat, lane: lane, seq: seq,
		sink: m, kind: evDeliver, data: ms,
	})
}

// CrossShardCall buffers an arbitrary sink dispatch for the shard
// owning dst, arriving LookaheadWindow cycles out — the minimum
// latency at which any cross-shard interaction is safe under
// conservative lookahead. The tie-break key is drawn on the calling
// shard's engine under the current lane, and the mail drains at the
// next barrier. proc routes cross-shard thread wakes through this;
// same-shard interactions go straight to the shared engine instead.
func (m *Mesh) CrossShardCall(src, dst NodeID, sink sim.EventSink, kind int, data any) {
	srcShard := m.shardOf[src]
	eng := m.engines[srcShard]
	lane, seq := eng.DrawKey()
	box := int(srcShard)*len(m.engines) + int(m.shardOf[dst])
	m.mail[box] = append(m.mail[box], mailEntry{
		at: eng.Now() + m.cfg.LookaheadWindow(), lane: lane, seq: seq,
		sink: sink, kind: kind, data: data,
	})
}

// HandleEvent implements sim.EventSink: a message scheduled by Send
// arrives at its destination port (evDeliver) or bounces back to its
// sender (evNack). The event was scheduled under the sending activity's
// lane; from here on everything the receiving node does is its own
// activity, so the lane switches to the receiver before the port runs.
func (m *Mesh) HandleEvent(kind int, data any) {
	ms := data.(*Msg)
	if kind == evNack {
		if m.ports[ms.Src] == nil {
			panic(fmt.Sprintf("mesh: NACK to unattached sender %d", ms.Src))
		}
		if m.downWin != nil && m.DownAt(ms.Src, m.eng.Now()) {
			m.shStats[m.shardOf[ms.Src]].CrashDropped++
			m.FreeMsgAt(ms.Src, ms)
			return
		}
		m.engines[m.shardOf[ms.Src]].SetLane(int32(ms.Src))
		m.ports[ms.Src].Deliver(ms)
		return
	}
	// A crashed destination discards arriving traffic on the floor: the
	// message is recycled here and the sender's reliability sublayer
	// (which never sees a transport ack for it) retransmits until the
	// node returns or the crash detector escalates to failover.
	if m.downWin != nil && m.DownAt(ms.Dst, m.eng.Now()) {
		m.shStats[m.shardOf[ms.Dst]].CrashDropped++
		m.FreeMsgAt(ms.Dst, ms)
		return
	}
	if o := m.obsFor(m.shardOf[ms.Dst]); o != nil {
		o.Emit(stats.EvNetDeliver, int(ms.Dst), ms.Kind, ms.Cause, uint64(ms.Src), 0)
	}
	m.engines[m.shardOf[ms.Dst]].SetLane(int32(ms.Dst))
	m.ports[ms.Dst].Deliver(ms)
}

// admit reports whether a message can enter the network without
// overflowing a link buffer: every directed link on its dimension-
// ordered path must have at most LinkBufFlits flits queued. Backlog is
// measured at injection time (an approximation: the far links will
// partially drain by the time the header reaches them), in cycles of
// occupancy — wormhole switching streams a long message through, so
// the bound applies to waiting traffic, not to the message's own size.
func (m *Mesh) admit(src, dst NodeID) bool {
	bufCap := sim.Cycles(m.cfg.Faults.LinkBufFlits) * m.cfg.FlitCycles
	t := m.eng.Now()
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	for x != dx || y != dy {
		var dir int
		switch {
		case x < dx:
			dir = dirEast
		case x > dx:
			dir = dirWest
		case y < dy:
			dir = dirSouth
		default:
			dir = dirNorth
		}
		li := m.linkIndex(m.ID(x, y), dir)
		if m.linkFree[li] > t && m.linkFree[li]-t > bufCap {
			return false
		}
		switch dir {
		case dirEast:
			x++
		case dirWest:
			x--
		case dirSouth:
			y++
		default:
			y--
		}
	}
	return true
}

// contend reserves each directed link on the path and returns the
// extra queueing delay incurred (serial: inline at Send time).
func (m *Mesh) contend(src, dst NodeID, sizeFlits int, cause uint64) sim.Cycles {
	return m.contendAt(m.eng.Now(), src, dst, sizeFlits, cause, false, sim.DispatchTag{})
}

// contendAt reserves each directed link on the dimension-ordered path
// starting from injection time t0 and returns the queueing delay
// incurred. This is a pipelined (wormhole-like) approximation: the
// header advances one hop per PerHop cycles once a link frees, and
// the body occupies each link for sizeFlits*FlitCycles. The wait is
// charged to the sending node's shard; when replayed at a barrier
// (tagged), per-hop events are filed under the tag slots reserved at
// Send time so the merged stream interleaves exactly like the serial
// one.
func (m *Mesh) contendAt(t0 sim.Cycles, src, dst NodeID, sizeFlits int, cause uint64, tagged bool, hopTags sim.DispatchTag) sim.Cycles {
	srcShard := m.shardOf[src]
	o := m.obsFor(srcShard)
	occupancy := sim.Cycles(sizeFlits) * m.cfg.FlitCycles
	var wait sim.Cycles
	t := t0
	// Walk the dimension-ordered route in place (X first, then Y)
	// rather than materializing a Path slice per message.
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	hop := 0
	for x != dx || y != dy {
		var dir int
		switch {
		case x < dx:
			dir = dirEast
		case x > dx:
			dir = dirWest
		case y < dy:
			dir = dirSouth
		default:
			dir = dirNorth
		}
		from := m.ID(x, y)
		li := m.linkIndex(from, dir)
		var hopWait sim.Cycles
		if m.linkFree[li] > t {
			hopWait = m.linkFree[li] - t
			wait += hopWait
			t = m.linkFree[li]
		}
		m.linkFree[li] = t + occupancy
		if o != nil {
			m.linkBusy[srcShard][li] += occupancy
			o.Metrics.HopQueue.Observe(uint64(hopWait))
			if tagged {
				o.EmitAtTag(hopTags.Plus(hop), t, stats.EvNetHop, int(from), uint8(dir), cause,
					uint64(li), uint64(occupancy))
			} else {
				o.EmitAt(t, stats.EvNetHop, int(from), uint8(dir), cause,
					uint64(li), uint64(occupancy))
			}
		}
		hop++
		t += m.cfg.PerHop
		switch dir {
		case dirEast:
			x++
		case dirWest:
			x--
		case dirSouth:
			y++
		default:
			y--
		}
	}
	m.shStats[srcShard].QueueWait += wait
	return wait
}

// ResolveContention replays the finished round's deferred contended
// sends against the shared per-link queues in the exact order a
// single serial engine would have walked them — each shard's pending
// list is already in its engine's dispatch order, and sim.MergeByTag
// interleaves the lists by head dispatch key (a flat tag sort would
// misorder same-cycle sends whose dispatching events were scheduled
// mid-cycle; see MergeByTag) — and injects the resulting deliveries.
// It runs as barrier work: every shard worker quiescent, before
// DrainMail. A contended path has at least one hop, so every arrival
// lands at or beyond sendT + Base + PerHop — strictly past the
// finished round's horizon, where injection is legal on any shard.
func (m *Mesh) ResolveContention() {
	if m.pending == nil {
		return
	}
	tagged := m.obs != nil
	sim.MergeByTag(m.pending,
		func(ps *pendingSend) sim.DispatchTag { return ps.tag },
		func(ps *pendingSend) {
			lat := m.Latency(ps.src, ps.dst) +
				m.contendAt(ps.sendT, ps.src, ps.dst, ps.flits, ps.ms.Cause, tagged, ps.hopTags)
			dstEng := m.engines[m.shardOf[ps.ms.Dst]]
			if ps.dup != nil {
				// The duplicate shares the original's reservations and
				// arrives one cycle behind it (without the delay extra),
				// exactly as the serial injector schedules it.
				dstEng.InjectEventAt(ps.sendT+lat+1, ps.dupLane, ps.dupSeq, m, evDeliver, ps.dup)
			}
			dstEng.InjectEventAt(ps.sendT+lat+ps.extra, ps.msLane, ps.msSeq, m, evDeliver, ps.ms)
			ps.ms, ps.dup = nil, nil
		})
	for i := range m.pending {
		m.pending[i] = m.pending[i][:0]
	}
}

// emitHops records approximate per-hop link events for an uncontended
// send (no queueing: the header advances one hop per PerHop cycles),
// so trace exports cover every link even with the contention model
// off. Called only when an observer is attached, on the sending
// shard's worker — occupancy lands in the shard's own linkBusy block.
func (m *Mesh) emitHops(srcShard int32, t sim.Cycles, src, dst NodeID, sizeFlits int, cause uint64) {
	o := m.obs[srcShard]
	busy := m.linkBusy[srcShard]
	occupancy := sim.Cycles(sizeFlits) * m.cfg.FlitCycles
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	for x != dx || y != dy {
		var dir int
		switch {
		case x < dx:
			dir = dirEast
		case x > dx:
			dir = dirWest
		case y < dy:
			dir = dirSouth
		default:
			dir = dirNorth
		}
		from := m.ID(x, y)
		li := m.linkIndex(from, dir)
		busy[li] += occupancy
		o.EmitAt(t, stats.EvNetHop, int(from), uint8(dir), cause,
			uint64(li), uint64(occupancy))
		t += m.cfg.PerHop
		switch dir {
		case dirEast:
			x++
		case dirWest:
			x--
		case dirSouth:
			y++
		default:
			y--
		}
	}
}

// Nearest returns the node in candidates closest (fewest hops) to ref,
// breaking ties toward the lowest node ID. It panics if candidates is
// empty. Used by the kernel to map each node to its closest copy.
func (m *Mesh) Nearest(ref NodeID, candidates []NodeID) NodeID {
	if len(candidates) == 0 {
		panic("mesh: Nearest with no candidates")
	}
	best := candidates[0]
	bestH := m.Hops(ref, best)
	for _, c := range candidates[1:] {
		h := m.Hops(ref, c)
		if h < bestH || (h == bestH && c < best) {
			best, bestH = c, h
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
