// Package mesh models the PLUS interconnection network: a 2-D mesh of
// nodes connected by point-to-point links with a router per node
// (Caltech mesh router in the original hardware, five I/O link pairs:
// one to the processor and one per mesh neighbour).
//
// Routing is dimension-ordered (X first, then Y), which is deadlock-free
// and matches wormhole mesh routers of the period. Latency follows the
// paper's measured constants: the round trip between adjacent nodes is
// 24 cycles and each extra hop adds 4 cycles, i.e. a one-way message
// costs Base + PerHop*hops with Base=10 and PerHop=2 by default.
//
// An optional contention model serializes flits over each directed
// link: a message of S flits occupies each link on its path for S
// cycles, and messages queue FIFO behind earlier traffic. The paper's
// experiments ran the network lightly loaded, so contention is off by
// default; the ablation benches flip it on.
package mesh

import (
	"fmt"

	"plus/internal/sim"
)

// NodeID identifies a mesh node; IDs are assigned row-major:
// id = y*Width + x.
type NodeID int

// Config describes the mesh geometry and timing.
type Config struct {
	Width  int
	Height int
	// Base is the fixed one-way latency of a message (router and
	// interface overhead at both ends), in cycles.
	Base sim.Cycles
	// PerHop is the added one-way latency per link traversed.
	PerHop sim.Cycles
	// Contention, when true, serializes flits on each directed link.
	Contention bool
	// FlitCycles is the link occupancy per flit when Contention is on.
	FlitCycles sim.Cycles
}

// DefaultConfig returns the paper-calibrated mesh: one-way adjacent
// latency 12 cycles (round trip 24), +2 cycles per extra hop one-way
// (+4 round trip), no contention.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:      width,
		Height:     height,
		Base:       10,
		PerHop:     2,
		Contention: false,
		FlitCycles: 2,
	}
}

// Handler receives messages delivered to a node.
type Handler func(payload interface{})

// Stats aggregates network activity.
type Stats struct {
	Messages  uint64     // total messages sent
	Hops      uint64     // total link traversals
	Flits     uint64     // total flits transferred (size units)
	QueueWait sim.Cycles // total cycles spent queued behind busy links
}

// Mesh is the interconnection network. It is not safe for concurrent
// use; like every simulated component it runs under the engine's
// single logical thread.
type Mesh struct {
	cfg      Config
	eng      *sim.Engine
	handlers []Handler
	// linkFree[l] is the first cycle at which directed link l is idle.
	// Indexed by linkIndex. Used only when Contention is on.
	linkFree []sim.Cycles
	stats    Stats
}

// New creates a mesh. Handlers are registered per node with Attach
// before any traffic is sent.
func New(eng *sim.Engine, cfg Config) *Mesh {
	if cfg.Width < 1 || cfg.Height < 1 {
		panic(fmt.Sprintf("mesh: invalid geometry %dx%d", cfg.Width, cfg.Height))
	}
	n := cfg.Width * cfg.Height
	return &Mesh{
		cfg:      cfg,
		eng:      eng,
		handlers: make([]Handler, n),
		// 4 directed links per node is an over-allocation (edge nodes
		// have fewer) but keeps indexing trivial.
		linkFree: make([]sim.Cycles, n*4),
	}
}

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated network statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// Attach registers the message handler for node id.
func (m *Mesh) Attach(id NodeID, h Handler) {
	m.handlers[id] = h
}

// Coord returns the (x, y) position of a node.
func (m *Mesh) Coord(id NodeID) (x, y int) {
	return int(id) % m.cfg.Width, int(id) / m.cfg.Width
}

// ID returns the node at (x, y).
func (m *Mesh) ID(x, y int) NodeID {
	return NodeID(y*m.cfg.Width + x)
}

// Hops returns the dimension-ordered path length between two nodes in
// link traversals (Manhattan distance).
func (m *Mesh) Hops(a, b NodeID) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Latency returns the uncontended one-way latency for a message from
// src to dst. A message to self costs Base (it still crosses the
// processor/router interface in the real machine; local operations
// bypass the network entirely and should not call Latency).
func (m *Mesh) Latency(src, dst NodeID) sim.Cycles {
	return m.cfg.Base + m.cfg.PerHop*sim.Cycles(m.Hops(src, dst))
}

// direction indices for links leaving a node.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (m *Mesh) linkIndex(from NodeID, dir int) int {
	return int(from)*4 + dir
}

// Path returns the sequence of nodes visited by dimension-order
// routing from src to dst, inclusive of both endpoints.
func (m *Mesh) Path(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, m.ID(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, m.ID(x, y))
	}
	return path
}

// Send routes a message of size flits from src to dst and schedules
// the destination handler after the modeled latency. sizeFlits must be
// at least 1 (header flit). Delivery to an unattached node panics.
func (m *Mesh) Send(src, dst NodeID, sizeFlits int, payload interface{}) {
	if sizeFlits < 1 {
		sizeFlits = 1
	}
	h := m.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("mesh: send to unattached node %d", dst))
	}
	hops := m.Hops(src, dst)
	m.stats.Messages++
	m.stats.Hops += uint64(hops)
	m.stats.Flits += uint64(sizeFlits)

	lat := m.Latency(src, dst)
	if m.cfg.Contention && hops > 0 {
		lat += m.contend(src, dst, sizeFlits)
	}
	m.eng.Schedule(lat, func() { h(payload) })
}

// contend reserves each directed link on the path and returns the
// extra queueing delay incurred. This is a pipelined (wormhole-like)
// approximation: the header advances one hop per PerHop cycles once a
// link frees, and the body occupies each link for sizeFlits*FlitCycles.
func (m *Mesh) contend(src, dst NodeID, sizeFlits int) sim.Cycles {
	now := m.eng.Now()
	path := m.Path(src, dst)
	occupancy := sim.Cycles(sizeFlits) * m.cfg.FlitCycles
	var wait sim.Cycles
	t := now
	for i := 0; i+1 < len(path); i++ {
		from, to := path[i], path[i+1]
		dir := m.dirOf(from, to)
		li := m.linkIndex(from, dir)
		if m.linkFree[li] > t {
			wait += m.linkFree[li] - t
			t = m.linkFree[li]
		}
		m.linkFree[li] = t + occupancy
		t += m.cfg.PerHop
	}
	m.stats.QueueWait += wait
	return wait
}

func (m *Mesh) dirOf(from, to NodeID) int {
	fx, fy := m.Coord(from)
	tx, ty := m.Coord(to)
	switch {
	case tx > fx:
		return dirEast
	case tx < fx:
		return dirWest
	case ty > fy:
		return dirSouth
	default:
		return dirNorth
	}
}

// Nearest returns the node in candidates closest (fewest hops) to ref,
// breaking ties toward the lowest node ID. It panics if candidates is
// empty. Used by the kernel to map each node to its closest copy.
func (m *Mesh) Nearest(ref NodeID, candidates []NodeID) NodeID {
	if len(candidates) == 0 {
		panic("mesh: Nearest with no candidates")
	}
	best := candidates[0]
	bestH := m.Hops(ref, best)
	for _, c := range candidates[1:] {
		h := m.Hops(ref, c)
		if h < bestH || (h == bestH && c < best) {
			best, bestH = c, h
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
