package mesh

import (
	"math/rand"
	"testing"

	"plus/internal/sim"
)

// TestFIFOPerSourceDestination checks the delivery-order property the
// coherence protocol depends on (general coherence requires updates
// along a copy-list hop to arrive in send order): messages between the
// same pair of nodes are delivered in the order sent, with and without
// the contention model, under random interleaved traffic.
func TestFIFOPerSourceDestination(t *testing.T) {
	for _, contention := range []bool{false, true} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine()
			cfg := DefaultConfig(4, 2)
			cfg.Contention = contention
			m := New(eng, cfg)

			// Payload rides the wire struct: Origin is the sender, ID the
			// per-pair sequence number.
			lastSeen := map[[2]NodeID]uint64{}
			for n := NodeID(0); int(n) < m.Nodes(); n++ {
				n := n
				m.Attach(n, PortFunc(func(p *Msg) {
					key := [2]NodeID{p.Origin, n}
					if p.ID <= lastSeen[key] {
						t.Fatalf("contention=%v seed %d: pair %v delivered %d after %d",
							contention, seed, key, p.ID, lastSeen[key])
					}
					lastSeen[key] = p.ID
					m.FreeMsg(p)
				}))
			}
			// Random traffic: bursts of different sizes between random
			// pairs, interleaved with time advancing.
			seqs := map[[2]NodeID]uint64{}
			for step := 0; step < 200; step++ {
				src := NodeID(rng.Intn(m.Nodes()))
				dst := NodeID(rng.Intn(m.Nodes()))
				if src == dst {
					continue
				}
				key := [2]NodeID{src, dst}
				seqs[key]++
				ms := m.AllocMsg()
				ms.Origin, ms.ID = src, seqs[key]
				m.Send(src, dst, 1+rng.Intn(16), ms)
				if rng.Intn(4) == 0 {
					eng.RunUntil(eng.Now() + sim.Cycles(rng.Intn(20)))
				}
			}
			eng.Run()
		}
	}
}

// TestContentionNeverSpeedsUp: adding contention can only delay a
// message relative to the uncontended latency.
func TestContentionNeverSpeedsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := sim.NewEngine()
	cfg := DefaultConfig(4, 4)
	cfg.Contention = true
	m := New(eng, cfg)
	// Origin carries the sender, ID the send timestamp.
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		n := n
		m.Attach(n, PortFunc(func(p *Msg) {
			sent := sim.Cycles(p.ID)
			minLat := m.Latency(p.Origin, n)
			if eng.Now()-sent < minLat {
				t.Fatalf("message from %d to %d arrived in %d < base %d",
					p.Origin, n, eng.Now()-sent, minLat)
			}
			m.FreeMsg(p)
		}))
	}
	for i := 0; i < 300; i++ {
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		ms := m.AllocMsg()
		ms.Origin, ms.ID = src, uint64(eng.Now())
		m.Send(src, dst, 1+rng.Intn(8), ms)
		if rng.Intn(3) == 0 {
			eng.RunUntil(eng.Now() + sim.Cycles(rng.Intn(10)))
		}
	}
	eng.Run()
}
