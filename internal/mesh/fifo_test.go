package mesh

import (
	"math/rand"
	"testing"

	"plus/internal/sim"
)

// TestFIFOPerSourceDestination checks the delivery-order property the
// coherence protocol depends on (general coherence requires updates
// along a copy-list hop to arrive in send order): messages between the
// same pair of nodes are delivered in the order sent, with and without
// the contention model, under random interleaved traffic.
func TestFIFOPerSourceDestination(t *testing.T) {
	for _, contention := range []bool{false, true} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine()
			cfg := DefaultConfig(4, 2)
			cfg.Contention = contention
			m := New(eng, cfg)

			type rec struct {
				src NodeID
				seq int
			}
			lastSeen := map[[2]NodeID]int{}
			for n := NodeID(0); int(n) < m.Nodes(); n++ {
				n := n
				m.Attach(n, func(p interface{}) {
					r := p.(rec)
					key := [2]NodeID{r.src, n}
					if r.seq <= lastSeen[key] {
						t.Fatalf("contention=%v seed %d: pair %v delivered %d after %d",
							contention, seed, key, r.seq, lastSeen[key])
					}
					lastSeen[key] = r.seq
				})
			}
			// Random traffic: bursts of different sizes between random
			// pairs, interleaved with time advancing.
			seqs := map[[2]NodeID]int{}
			for step := 0; step < 200; step++ {
				src := NodeID(rng.Intn(m.Nodes()))
				dst := NodeID(rng.Intn(m.Nodes()))
				if src == dst {
					continue
				}
				key := [2]NodeID{src, dst}
				seqs[key]++
				m.Send(src, dst, 1+rng.Intn(16), rec{src: src, seq: seqs[key]})
				if rng.Intn(4) == 0 {
					eng.RunUntil(eng.Now() + sim.Cycles(rng.Intn(20)))
				}
			}
			eng.Run()
		}
	}
}

// TestContentionNeverSpeedsUp: adding contention can only delay a
// message relative to the uncontended latency.
func TestContentionNeverSpeedsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := sim.NewEngine()
	cfg := DefaultConfig(4, 4)
	cfg.Contention = true
	m := New(eng, cfg)
	type stamp struct {
		sent sim.Cycles
		src  NodeID
	}
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		n := n
		m.Attach(n, func(p interface{}) {
			s := p.(stamp)
			minLat := m.Latency(s.src, n)
			if eng.Now()-s.sent < minLat {
				t.Fatalf("message from %d to %d arrived in %d < base %d",
					s.src, n, eng.Now()-s.sent, minLat)
			}
		})
	}
	for i := 0; i < 300; i++ {
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		m.Send(src, dst, 1+rng.Intn(8), stamp{sent: eng.Now(), src: src})
		if rng.Intn(3) == 0 {
			eng.RunUntil(eng.Now() + sim.Cycles(rng.Intn(10)))
		}
	}
	eng.Run()
}
