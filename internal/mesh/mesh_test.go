package mesh

import (
	"testing"
	"testing/quick"

	"plus/internal/sim"
)

func newTestMesh(w, h int, contention bool) (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(w, h)
	cfg.Contention = contention
	return eng, New(eng, cfg)
}

func TestCoordRoundTrip(t *testing.T) {
	_, m := newTestMesh(4, 3, false)
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		x, y := m.Coord(id)
		if m.ID(x, y) != id {
			t.Fatalf("node %d -> (%d,%d) -> %d", id, x, y, m.ID(x, y))
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	_, m := newTestMesh(4, 4, false)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 15, 6},
		{5, 10, 2},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := m.Hops(c.b, c.a); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestPaperLatencyCalibration(t *testing.T) {
	// Round trip between adjacent nodes is about 24 cycles; each extra
	// hop adds 4 cycles (paper §3.1).
	_, m := newTestMesh(8, 8, false)
	adjacent := m.Latency(0, 1) + m.Latency(1, 0)
	if adjacent != 24 {
		t.Fatalf("adjacent round trip = %d cycles, want 24", adjacent)
	}
	twoHop := m.Latency(0, 2) + m.Latency(2, 0)
	if twoHop != 28 {
		t.Fatalf("two-hop round trip = %d cycles, want 28", twoHop)
	}
	threeHop := m.Latency(0, m.ID(2, 1)) + m.Latency(m.ID(2, 1), 0)
	if threeHop != 32 {
		t.Fatalf("three-hop round trip = %d cycles, want 32", threeHop)
	}
}

func TestPathDimensionOrder(t *testing.T) {
	_, m := newTestMesh(4, 4, false)
	// From (0,0) to (2,2): X first (1,0),(2,0) then Y (2,1),(2,2).
	path := m.Path(m.ID(0, 0), m.ID(2, 2))
	want := []NodeID{m.ID(0, 0), m.ID(1, 0), m.ID(2, 0), m.ID(2, 1), m.ID(2, 2)}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestPathLengthMatchesHops(t *testing.T) {
	_, m := newTestMesh(5, 7, false)
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		path := m.Path(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		// Consecutive nodes must be mesh neighbours.
		for i := 0; i+1 < len(path); i++ {
			if m.Hops(path[i], path[i+1]) != 1 {
				return false
			}
		}
		return len(path)-1 == m.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendDelivers(t *testing.T) {
	eng, m := newTestMesh(4, 4, false)
	var got *Msg
	var at sim.Cycles
	m.Attach(5, PortFunc(func(p *Msg) { got, at = p, eng.Now() }))
	m.Attach(0, PortFunc(func(p *Msg) {}))
	ms := m.AllocMsg()
	ms.ID = 42
	m.Send(0, 5, 2, ms)
	eng.Run()
	if got == nil || got.ID != 42 {
		t.Fatalf("payload = %v", got)
	}
	if got.Dst != 5 {
		t.Fatalf("Dst = %d, want 5", got.Dst)
	}
	if want := m.Latency(0, 5); at != want {
		t.Fatalf("delivered at %d, want %d", at, want)
	}
	st := m.Stats()
	if st.Messages != 1 || st.Hops != 2 || st.Flits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendToSelfAttachRequired(t *testing.T) {
	eng, m := newTestMesh(2, 2, false)
	defer func() {
		if recover() == nil {
			t.Error("send to unattached node did not panic")
		}
	}()
	m.Send(0, 1, 1, m.AllocMsg())
	eng.Run()
}

func TestContentionSerializesLink(t *testing.T) {
	eng, m := newTestMesh(4, 1, true)
	var times []sim.Cycles
	m.Attach(1, PortFunc(func(p *Msg) { times = append(times, eng.Now()); m.FreeMsg(p) }))
	// Two 8-flit messages over the same link at t=0: the second waits
	// for the first message's link occupancy (8 flits * 2 cycles).
	m.Send(0, 1, 8, m.AllocMsg())
	m.Send(0, 1, 8, m.AllocMsg())
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	base := m.Latency(0, 1)
	if times[0] != base {
		t.Fatalf("first delivery at %d, want %d", times[0], base)
	}
	if times[1] != base+16 {
		t.Fatalf("second delivery at %d, want %d (queued)", times[1], base+16)
	}
	if m.Stats().QueueWait != 16 {
		t.Fatalf("queue wait = %d, want 16", m.Stats().QueueWait)
	}
}

func TestContentionDisjointLinksNoWait(t *testing.T) {
	eng, m := newTestMesh(4, 4, true)
	delivered := 0
	m.Attach(1, PortFunc(func(p *Msg) { delivered++; m.FreeMsg(p) }))
	m.Attach(m.ID(0, 1), PortFunc(func(p *Msg) { delivered++; m.FreeMsg(p) }))
	m.Send(0, 1, 8, m.AllocMsg())          // east link of node 0
	m.Send(0, m.ID(0, 1), 8, m.AllocMsg()) // south link of node 0
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	if w := m.Stats().QueueWait; w != 0 {
		t.Fatalf("disjoint links queued %d cycles", w)
	}
}

func TestDirectedLinksExact(t *testing.T) {
	// The contention table holds exactly one entry per physical
	// directed link: 2*((W-1)*H + W*(H-1)). The old table allocated
	// four slots per node, inventing links off the mesh edges.
	cases := []struct{ w, h int }{{1, 1}, {2, 1}, {1, 5}, {4, 4}, {5, 3}, {8, 2}}
	for _, c := range cases {
		_, m := newTestMesh(c.w, c.h, true)
		want := 2 * ((c.w-1)*c.h + c.w*(c.h-1))
		if got := m.DirectedLinks(); got != want {
			t.Errorf("%dx%d mesh: %d directed links, want %d", c.w, c.h, got, want)
		}
	}
}

// TestContentionCornerNodesNonSquare drives contended traffic between
// all four corners of a non-square mesh: corner nodes have the fewest
// links (exactly two), so an indexing error in the exact per-link
// table — or a route touching a nonexistent edge link — shows up here
// as a panic or a missing delivery.
func TestContentionCornerNodesNonSquare(t *testing.T) {
	eng, m := newTestMesh(5, 3, true)
	corners := []NodeID{m.ID(0, 0), m.ID(4, 0), m.ID(0, 2), m.ID(4, 2)}
	delivered := 0
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		m.Attach(n, PortFunc(func(p *Msg) { delivered++; m.FreeMsg(p) }))
	}
	sent := 0
	for _, src := range corners {
		for _, dst := range corners {
			if src == dst {
				continue
			}
			// Two bulky messages per pair queue on the shared first
			// link out of the corner.
			m.Send(src, dst, 8, m.AllocMsg())
			m.Send(src, dst, 8, m.AllocMsg())
			sent += 2
		}
	}
	eng.Run()
	if delivered != sent {
		t.Fatalf("delivered %d of %d messages", delivered, sent)
	}
	if m.Stats().QueueWait == 0 {
		t.Fatal("no queueing observed on shared corner links")
	}
}

func TestNearest(t *testing.T) {
	_, m := newTestMesh(4, 4, false)
	// ref at (0,0); candidates at 3 hops and 1 hop.
	got := m.Nearest(0, []NodeID{m.ID(3, 0), m.ID(0, 1)})
	if got != m.ID(0, 1) {
		t.Fatalf("Nearest = %d, want %d", got, m.ID(0, 1))
	}
	// Tie: both 2 hops; lower ID wins.
	got = m.Nearest(0, []NodeID{m.ID(1, 1), m.ID(2, 0)})
	if got != m.ID(2, 0) {
		t.Fatalf("Nearest tie = %d, want %d", got, m.ID(2, 0))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0x0 mesh did not panic")
		}
	}()
	New(sim.NewEngine(), Config{Width: 0, Height: 0})
}
