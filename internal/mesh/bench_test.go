package mesh

import (
	"testing"

	"plus/internal/sim"
)

// BenchmarkMeshSend measures the full message path: pooled alloc,
// route, typed delivery event, recycle.
func BenchmarkMeshSend(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	m := New(eng, DefaultConfig(4, 4))
	drain := PortFunc(func(p *Msg) { m.FreeMsg(p) })
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		m.Attach(n, drain)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(0, 15, 3, m.AllocMsg())
		eng.Run()
	}
}

// TestSendAllocFree pins the message path — AllocMsg, Send (with the
// contention model on), typed delivery, FreeMsg — at zero allocations
// once the pool and the event heap are warm. This is the regression
// guard for reintroducing a per-message closure or payload copy.
func TestSendAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(4, 4)
	cfg.Contention = true
	m := New(eng, cfg)
	drain := PortFunc(func(p *Msg) { m.FreeMsg(p) })
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		m.Attach(n, drain)
	}
	// Warm the pool and heap.
	for i := 0; i < 64; i++ {
		m.Send(0, NodeID(1+i%15), 4, m.AllocMsg())
	}
	eng.Run()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 16; i++ {
			m.Send(NodeID(i%4), NodeID(15-i%4), 4, m.AllocMsg())
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("send path allocates %v objects per run, want 0", avg)
	}
}
