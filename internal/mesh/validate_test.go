package mesh

import (
	"strings"
	"testing"
)

// TestValidateLargeMeshes pins the size envelope: everything up to
// 64x64 is a legal geometry, anything beyond is rejected with the
// node count in the message.
func TestValidateLargeMeshes(t *testing.T) {
	for _, dims := range [][2]int{{32, 32}, {64, 64}, {64, 1}, {1, 64}} {
		cfg := DefaultConfig(dims[0], dims[1])
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%dx%d): unexpected error %v", dims[0], dims[1], err)
		}
	}
	cfg := DefaultConfig(65, 64)
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate(65x64): want error, got nil")
	}
	if !strings.Contains(err.Error(), "4160") || !strings.Contains(err.Error(), "64x64") {
		t.Errorf("Validate(65x64): error should name the node count and the limit, got %v", err)
	}
}

// TestValidateShards pins the sharding rules: the count must be
// non-negative, at most the node count, tile the mesh exactly, and is
// incompatible with zero link latency, bounded link buffers, and
// crash scripts (contention and tracing are shard-aware — see the
// equivalence fuzzer). Errors must carry enough context to fix the
// config.
func TestValidateShards(t *testing.T) {
	mod := func(f func(*Config)) Config {
		cfg := DefaultConfig(4, 4)
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want []string // substrings of the error; nil = must pass
	}{
		{"serial", mod(func(c *Config) {}), nil},
		{"one", mod(func(c *Config) { c.Shards = 1 }), nil},
		{"tiles", mod(func(c *Config) { c.Shards = 8 }), nil},
		{"whole mesh", mod(func(c *Config) { c.Shards = 16 }), nil},
		{"negative", mod(func(c *Config) { c.Shards = -2 }),
			[]string{"negative shard count -2"}},
		{"too many", mod(func(c *Config) { c.Shards = 17 }),
			[]string{"17 shards", "16 nodes"}},
		{"non-tiling", mod(func(c *Config) { c.Shards = 3 }),
			[]string{"3 shards", "do not tile", "1 left over", "divisor"}},
		{"contention", mod(func(c *Config) { c.Shards = 4; c.Contention = true }), nil},
		{"link buffers", mod(func(c *Config) {
			c.Shards = 4
			c.Contention = true
			c.Faults.LinkBufFlits = 8
		}), []string{"LinkBufFlits is serial-only", "Shards <= 1"}},
		{"crashes", mod(func(c *Config) {
			c.Shards = 4
			c.Faults.Crashes = []CrashEvent{{Node: 1, At: 100, Duration: 50}}
		}), []string{"crash injection is serial-only"}},
		{"zero latency", mod(func(c *Config) { c.Shards = 4; c.Base = 0; c.PerHop = 0 }),
			[]string{"positive minimum link latency", "conservative lookahead"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate: want error, got nil")
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("Validate error %q missing %q", err, sub)
				}
			}
		})
	}
}

// TestShardOfBands pins the ownership map: equal contiguous row-major
// bands covering every node, monotone in node ID.
func TestShardOfBands(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Shards = 4
	counts := make([]int, cfg.ShardCount())
	prev := 0
	for id := 0; id < 16; id++ {
		s := cfg.ShardOf(NodeID(id))
		if s < prev || s >= cfg.ShardCount() {
			t.Fatalf("ShardOf(%d) = %d: bands must be contiguous and in range (prev %d)", id, s, prev)
		}
		prev = s
		counts[s]++
	}
	for s, n := range counts {
		if n != 4 {
			t.Errorf("shard %d owns %d nodes, want 4", s, n)
		}
	}
	if w := cfg.LookaheadWindow(); w != 12 {
		t.Errorf("LookaheadWindow = %d, want 12 (Base 10 + PerHop 2)", w)
	}
}
