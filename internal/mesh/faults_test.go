package mesh

import (
	"testing"

	"plus/internal/sim"
)

func faultyConfig(w, h int, f FaultConfig) Config {
	cfg := DefaultConfig(w, h)
	cfg.Faults = f
	return cfg
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero geometry", Config{Width: 0, Height: 4}},
		{"contention without flit cycles", Config{Width: 2, Height: 2, Contention: true}},
		{"negative buffer", faultyConfig(2, 2, FaultConfig{LinkBufFlits: -1})},
		{"buffers without contention", faultyConfig(2, 2, FaultConfig{LinkBufFlits: 4})},
		{"delay without bound", faultyConfig(2, 2, FaultConfig{DelayRate: 0.1})},
		{"drop rate above 1", faultyConfig(2, 2, FaultConfig{DropRate: 1.5})},
		{"negative dup rate", faultyConfig(2, 2, FaultConfig{DupRate: -0.1})},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.cfg)
		}
	}
	good := faultyConfig(2, 2, FaultConfig{Seed: 1, DropRate: 0.5, DupRate: 0.5, DelayRate: 0.5, DelayMax: 100})
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// runFaultTraffic drives a fixed traffic pattern through a faulty mesh
// and returns the resulting stats. Receivers recycle everything.
func runFaultTraffic(t *testing.T, f FaultConfig) Stats {
	t.Helper()
	eng := sim.NewEngine()
	m := New(eng, faultyConfig(4, 4, f))
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		m.Attach(n, PortFunc(func(p *Msg) { m.FreeMsg(p) }))
	}
	for i := 0; i < 500; i++ {
		src := NodeID(i % m.Nodes())
		dst := NodeID((i * 7) % m.Nodes())
		if src == dst {
			dst = (dst + 1) % NodeID(m.Nodes())
		}
		m.Send(src, dst, 1+i%4, m.AllocMsg())
		if i%10 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if live := m.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
	return m.Stats()
}

// TestFaultDeterminism pins that the same seed replays the same fault
// sequence (identical stats) and that a different seed diverges, and —
// via runFaultTraffic's pool check — that drops and dups neither leak
// nor double-free pooled messages.
func TestFaultDeterminism(t *testing.T) {
	f := FaultConfig{Seed: 11, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.1, DelayMax: 50}
	a := runFaultTraffic(t, f)
	b := runFaultTraffic(t, f)
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.Delayed == 0 {
		t.Fatalf("fault injection inactive: %+v", a)
	}
	f.Seed = 12
	c := runFaultTraffic(t, f)
	if a == c {
		t.Fatalf("different seeds produced identical stats: %+v", a)
	}
}

func TestFaultsOffIsExactlyReliable(t *testing.T) {
	a := runFaultTraffic(t, FaultConfig{})
	if a.Dropped != 0 || a.Duplicated != 0 || a.Delayed != 0 || a.Nacked != 0 {
		t.Fatalf("fault counters nonzero with the model off: %+v", a)
	}
	if a.Messages != 500 {
		t.Fatalf("sent 500, stats say %d", a.Messages)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, m := newTestMesh(2, 2, false)
	ms := m.AllocMsg()
	m.FreeMsg(ms)
	defer func() {
		if recover() == nil {
			t.Error("double FreeMsg did not panic")
		}
	}()
	m.FreeMsg(ms)
}

func TestSendPanicsHaveContext(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	eng, m := newTestMesh(2, 2, false)
	m.Attach(0, PortFunc(func(p *Msg) {}))
	mustPanic("out-of-range dst", func() { m.Send(0, 99, 1, m.AllocMsg()) })
	mustPanic("out-of-range src", func() { m.Send(-1, 0, 1, m.AllocMsg()) })
	mustPanic("unattached dst", func() { m.Send(0, 1, 1, m.AllocMsg()) })
	mustPanic("out-of-range attach", func() { m.Attach(7, PortFunc(func(p *Msg) {})) })
	mustPanic("nil port", func() { m.Attach(1, nil) })
	_ = eng
}

// TestBackpressureNacks floods one link past its bounded buffer and
// checks that overflowing messages bounce back to the sender with
// Nacked set while admitted traffic still arrives.
func TestBackpressureNacks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(4, 1)
	cfg.Contention = true
	cfg.Faults.LinkBufFlits = 8
	m := New(eng, cfg)
	delivered, nacked := 0, 0
	m.Attach(0, PortFunc(func(p *Msg) {
		if !p.Nacked {
			t.Errorf("node 0 received a non-NACK delivery")
		}
		nacked++
		m.FreeMsg(p)
	}))
	for n := NodeID(1); int(n) < m.Nodes(); n++ {
		m.Attach(n, PortFunc(func(p *Msg) {
			if p.Nacked {
				t.Errorf("node %d received a NACK meant for the sender", p.Dst)
			}
			delivered++
			m.FreeMsg(p)
		}))
	}
	// 16-flit messages over node 0's single east link: each occupies it
	// for 32 cycles, so the backlog passes 8 flits (16 cycles) quickly.
	for i := 0; i < 12; i++ {
		m.Send(0, 3, 16, m.AllocMsg())
	}
	eng.Run()
	if nacked == 0 {
		t.Fatal("no messages bounced despite a full link buffer")
	}
	if delivered == 0 {
		t.Fatal("no messages admitted at all")
	}
	if got := m.Stats().Nacked; got != uint64(nacked) {
		t.Fatalf("stats.Nacked = %d, bounced %d", got, nacked)
	}
	if delivered+nacked != 12 {
		t.Fatalf("delivered %d + nacked %d != 12 sent", delivered, nacked)
	}
	if live := m.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
}

// TestSendAllocFreeWithFaults pins the faulty send path — drop, dup
// (pooled clone), delay, NACK bounce — at zero allocations once the
// pool is warm, like TestSendAllocFree does for the reliable path.
func TestSendAllocFreeWithFaults(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(4, 4)
	cfg.Contention = true
	cfg.Faults = FaultConfig{Seed: 3, DropRate: 0.2, DupRate: 0.2, DelayRate: 0.2, DelayMax: 64, LinkBufFlits: 64}
	m := New(eng, cfg)
	drain := PortFunc(func(p *Msg) { m.FreeMsg(p) })
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		m.Attach(n, drain)
	}
	for i := 0; i < 256; i++ {
		m.Send(0, NodeID(1+i%15), 4, m.AllocMsg())
	}
	eng.Run()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 16; i++ {
			m.Send(NodeID(i%4), NodeID(15-i%4), 4, m.AllocMsg())
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("faulty send path allocates %v objects per run, want 0", avg)
	}
	if live := m.LiveMsgs(); live != 0 {
		t.Fatalf("pool imbalance: %d messages live after drain", live)
	}
}
