package stats

import (
	"bytes"
	"encoding/json"
	"fmt"

	"plus/internal/sim"
)

// ObservedRun packages one machine's observability output for the
// exporters: the event stream, samples, histograms, and the topology
// they refer to.
type ObservedRun struct {
	Name    string    `json:"name"`
	Meta    TraceMeta `json:"meta"`
	Events  []Event   `json:"-"`
	Samples []Sample  `json:"samples,omitempty"`
	Metrics Metrics   `json:"metrics"`
	// Marks are named annotations pinned to cycles, rendered on a
	// dedicated per-run track (only present when non-empty, so
	// unannotated exports are unchanged). Analysis layers above stats —
	// e.g. the race detector — attach their findings here without stats
	// needing to know about them.
	Marks []Mark `json:"marks,omitempty"`
}

// Mark is one annotation: an instant with a label and free-form args.
type Mark struct {
	Name string         `json:"name"`
	At   sim.Cycles     `json:"at"`
	Args map[string]any `json:"args,omitempty"`
}

// ObservedRunFrom snapshots an observer into an exportable run record.
func ObservedRunFrom(name string, o *Observer) ObservedRun {
	return ObservedRun{
		Name:    name,
		Meta:    o.Meta(),
		Events:  o.Events(),
		Samples: o.Samples(),
		Metrics: o.Metrics,
	}
}

// cycleMicros converts simulator cycles to trace microseconds: the
// paper's PLUS node runs at 25 MHz, so one cycle is 40 ns.
const cycleMicros = 0.04

// chromeEvent is one entry of the Chrome trace-event JSON format
// (loadable in Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders runs as Chrome trace-event JSON: one process
// track per node and per directed link (every node and link gets a
// metadata entry even if it saw no traffic), stall spans and protocol
// instants on node tracks, link-occupancy spans on link tracks, and
// counter series from the time-series samples.
func ChromeTrace(runs []ObservedRun) ([]byte, error) {
	var evs []chromeEvent
	base := 1
	for _, run := range runs {
		nodes := run.Meta.Nodes
		links := len(run.Meta.Links)
		nodePid := func(n int) int { return base + n }
		linkPid := func(l int) int { return base + nodes + l }

		// Metadata: name and order every track up front so the export
		// covers the whole topology even where nothing happened.
		for n := 0; n < nodes; n++ {
			evs = append(evs,
				chromeEvent{Name: "process_name", Ph: "M", Pid: nodePid(n),
					Args: map[string]any{"name": fmt.Sprintf("%s node %d", run.Name, n)}},
				chromeEvent{Name: "process_sort_index", Ph: "M", Pid: nodePid(n),
					Args: map[string]any{"sort_index": nodePid(n)}})
		}
		for l := 0; l < links; l++ {
			evs = append(evs,
				chromeEvent{Name: "process_name", Ph: "M", Pid: linkPid(l),
					Args: map[string]any{"name": fmt.Sprintf("%s link %s", run.Name, run.Meta.Links[l])}},
				chromeEvent{Name: "process_sort_index", Ph: "M", Pid: linkPid(l),
					Args: map[string]any{"sort_index": linkPid(l)}})
		}

		for _, e := range run.Events {
			ts := float64(e.At) * cycleMicros
			switch e.Kind {
			case EvStallEnd:
				// Begin/end are paired by construction (B is the stall
				// length), so the end event alone reconstructs the span —
				// robust against the ring overwriting the begin.
				dur := float64(e.B) * cycleMicros
				evs = append(evs, chromeEvent{
					Name: "stall:" + StallClassName(e.Sub), Ph: "X",
					Ts: ts - dur, Dur: dur,
					Pid: nodePid(int(e.Node)), Tid: int(e.A) + 1, Cat: "stall",
					Args: map[string]any{"cycles": e.B, "thread": e.A},
				})
			case EvStallBegin:
				// Rendered via the matching EvStallEnd.
			case EvNetHop:
				l := int(e.A)
				if l >= 0 && l < links {
					evs = append(evs, chromeEvent{
						Name: "xfer", Ph: "X", Ts: ts, Dur: float64(e.B) * cycleMicros,
						Pid: linkPid(l), Tid: 1, Cat: "net",
						Args: map[string]any{"cause": e.Cause, "occupancy": e.B},
					})
				}
			case EvEngineDispatch:
				// Too verbose for a track; counters cover engine load.
			default:
				cat := "protocol"
				switch e.Kind {
				case EvNetInject, EvNetDeliver, EvNetNack, EvNetDrop, EvNetDup, EvNetDelay:
					cat = "net"
				case EvRetransmit, EvBackoff:
					cat = "transport"
				case EvDispatch:
					cat = "sched"
				}
				evs = append(evs, chromeEvent{
					Name: e.Kind.String(), Ph: "i", Ts: ts, S: "t",
					Pid: nodePid(int(e.Node)), Tid: 1, Cat: cat,
					Args: map[string]any{"cause": e.Cause, "a": e.A, "b": e.B, "sub": e.Sub},
				})
			}
		}

		for _, s := range run.Samples {
			ts := float64(s.At) * cycleMicros
			for l, u := range s.LinkUtil {
				if l >= links {
					break
				}
				args := map[string]any{"util": u}
				if l < len(s.LinkDepth) {
					args["depth"] = s.LinkDepth[l]
				}
				evs = append(evs, chromeEvent{
					Name: "link", Ph: "C", Ts: ts, Pid: linkPid(l), Args: args,
				})
			}
			for n := 0; n < nodes; n++ {
				args := map[string]any{}
				if n < len(s.NodeBusy) {
					args["busy"] = s.NodeBusy[n]
				}
				if n < len(s.NodeReadStall) {
					args["read_stall"] = s.NodeReadStall[n]
				}
				if n < len(s.NodeWriteStall) {
					args["write_stall"] = s.NodeWriteStall[n]
				}
				if n < len(s.NodeFenceStall) {
					args["fence_stall"] = s.NodeFenceStall[n]
				}
				if n < len(s.NodeVerifyStall) {
					args["verify_stall"] = s.NodeVerifyStall[n]
				}
				if len(args) > 0 {
					evs = append(evs, chromeEvent{
						Name: "cycles", Ph: "C", Ts: ts, Pid: nodePid(n), Args: args,
					})
				}
			}
		}

		// Annotation track: marks ride the reserved pid slot after the
		// links, so annotated and unannotated exports number node and
		// link tracks identically.
		if len(run.Marks) > 0 {
			markPid := base + nodes + links
			evs = append(evs,
				chromeEvent{Name: "process_name", Ph: "M", Pid: markPid,
					Args: map[string]any{"name": run.Name + " races"}},
				chromeEvent{Name: "process_sort_index", Ph: "M", Pid: markPid,
					Args: map[string]any{"sort_index": markPid}})
			for _, mk := range run.Marks {
				evs = append(evs, chromeEvent{
					Name: mk.Name, Ph: "i", Ts: float64(mk.At) * cycleMicros, S: "p",
					Pid: markPid, Tid: 1, Cat: "race", Args: mk.Args,
				})
			}
		}

		base += nodes + links + 1
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "0->1E" link labels readable
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTraceFile{TraceEvents: evs, DisplayTimeUnit: "ms"}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ValidateChromeTrace round-trips trace JSON through encoding/json and
// returns the number of trace events, rejecting empty or malformed
// files. plusbench runs this on every -trace export (and `make
// trace-smoke` on a known-good run).
func ValidateChromeTrace(data []byte) (int, error) {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("chrome trace does not parse: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("chrome trace has no traceEvents")
	}
	for i, ev := range f.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			return 0, fmt.Errorf("traceEvents[%d] missing ph", i)
		}
		if _, ok := ev["pid"]; !ok {
			return 0, fmt.Errorf("traceEvents[%d] missing pid", i)
		}
	}
	return len(f.TraceEvents), nil
}
