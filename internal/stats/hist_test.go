package stats

import (
	"strings"
	"testing"
)

func TestClassHistograms(t *testing.T) {
	var m Metrics
	m.Class("kv-read").Observe(10)
	m.Class("kv-read").Observe(100)
	m.Class("kv-write").Observe(1000)
	if got := m.Classes["kv-read"].Count; got != 2 {
		t.Fatalf("kv-read count = %d, want 2", got)
	}
	if same := m.Class("kv-read"); same != m.Classes["kv-read"] {
		t.Fatal("Class returned a fresh histogram for an existing name")
	}

	// Merging (the shard-fold path) must carry classes across,
	// creating them on the target as needed.
	var folded Metrics
	folded.Class("kv-write").Observe(7)
	folded.Add(&m)
	if got := folded.Classes["kv-read"].Count; got != 2 {
		t.Fatalf("folded kv-read count = %d, want 2", got)
	}
	if got := folded.Classes["kv-write"].Count; got != 2 {
		t.Fatalf("folded kv-write count = %d, want 2", got)
	}

	// Render lists class rows after the fixed rows, in name order.
	out := folded.Render()
	ri := strings.Index(out, "kv-read")
	wi := strings.Index(out, "kv-write")
	if ri < 0 || wi < 0 || wi < ri {
		t.Fatalf("class rows missing or unsorted in render:\n%s", out)
	}
	if strings.Index(out, "batch-size") > ri {
		t.Fatalf("class rows precede the fixed rows:\n%s", out)
	}
}
