package stats

import "testing"

func TestTotalsSums(t *testing.T) {
	m := New(3)
	m.Nodes[0].LocalReads = 5
	m.Nodes[1].LocalReads = 7
	m.Nodes[2].RemoteWrites = 2
	m.Nodes[0].BusyCycles = 100
	m.Nodes[2].BusyCycles = 50
	tot := m.Totals()
	if tot.LocalReads != 12 || tot.RemoteWrites != 2 || tot.BusyCycles != 150 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestMessagesSum(t *testing.T) {
	m := New(1)
	m.MsgRead, m.MsgReadRep, m.MsgWrite, m.MsgUpdate = 1, 2, 3, 4
	m.MsgAck, m.MsgRMW, m.MsgRMWRep, m.MsgPage = 5, 6, 7, 8
	if m.Messages() != 36 {
		t.Fatalf("Messages = %d", m.Messages())
	}
}

func TestRatios(t *testing.T) {
	m := New(1)
	m.Nodes[0].LocalReads = 10
	m.Nodes[0].RemoteReads = 4
	if got := m.ReadRatio(); got != 2.5 {
		t.Fatalf("read ratio = %f", got)
	}
	m.Nodes[0].LocalWrites = 9
	m.Nodes[0].RemoteWrites = 0
	if got := m.WriteRatio(); got != 9 {
		t.Fatalf("zero-denominator write ratio = %f", got)
	}
	if got := New(1).ReadRatio(); got != 0 {
		t.Fatalf("empty ratio = %f", got)
	}
}

func TestUpdateRatio(t *testing.T) {
	m := New(1)
	m.MsgWrite = 6
	m.MsgUpdate = 3
	m.MsgAck = 3
	if got := m.UpdateRatio(); got != 4 {
		t.Fatalf("update ratio = %f", got)
	}
}

func TestUtilization(t *testing.T) {
	m := New(2)
	m.Nodes[0].BusyCycles = 80
	m.Nodes[1].BusyCycles = 40
	if got := m.Utilization(2, 100); got != 0.6 {
		t.Fatalf("utilization = %f", got)
	}
	if got := m.Utilization(0, 100); got != 0 {
		t.Fatalf("utilization with no processors = %f", got)
	}
	if got := m.Utilization(2, 0); got != 0 {
		t.Fatalf("utilization with no time = %f", got)
	}
}
