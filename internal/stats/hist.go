package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Hist is a log2-bucketed latency histogram: bucket i counts values
// whose bit length is i (bucket 0 holds exactly the zeros), i.e.
// values in [2^(i-1), 2^i - 1]. Observing is branch-free and
// allocation-free, so the protocol layers can feed it from hot paths;
// quantiles come back as the upper bound of the containing bucket
// (within 2x of exact, which is enough to compare design points).
type Hist struct {
	Count   uint64     `json:"count"`
	Sum     uint64     `json:"sum"`
	Max     uint64     `json:"max"`
	Buckets [65]uint64 `json:"-"`
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// Add merges another histogram into h.
func (h *Hist) Add(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-th quantile (q in [0, 1]):
// the top of the log2 bucket containing the q·Count-th sample, clamped
// to Max.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			hi := uint64(1)<<uint(i) - 1
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Metrics are the latency histograms the observability layer keeps:
// remote blocking reads, write acknowledgements, RMW round trips, and
// per-hop link queueing (contention model on).
type Metrics struct {
	// RemoteRead observes the full processor-visible latency of each
	// remote blocking read (issue overhead + round trip), at the exact
	// point proc charges ReadStall, so Sum = ReadStall +
	// Count·RemoteReadOverhead.
	RemoteRead Hist `json:"remote_read"`
	// WriteAck observes issue→retirement of each pending write.
	WriteAck Hist `json:"write_ack"`
	// RMWRound observes issue→result-arrival of each delayed op.
	RMWRound Hist `json:"rmw_round"`
	// HopQueue observes the queueing delay each message accumulated
	// behind busy links (contention model only; 0 entries otherwise).
	HopQueue Hist `json:"hop_queue"`
	// BatchSize observes the word count of each flushed write-combine
	// batch (write combining only; 0 entries when MaxBatchWrites is 1).
	// Values here are words, not cycles.
	BatchSize Hist `json:"batch_size"`
	// Classes holds workload-defined named histograms — per-op-class
	// latency distributions (e.g. kvserve's "kv-read"/"kv-write")
	// that the fixed fields above can't anticipate. Nil until the
	// first Class call.
	Classes map[string]*Hist `json:"classes,omitempty"`
}

// Class returns the named workload histogram, creating it on first
// use. Not safe for concurrent callers; workloads observe into
// per-thread Hists during the run and fold them in here afterwards.
func (m *Metrics) Class(name string) *Hist {
	if m.Classes == nil {
		m.Classes = make(map[string]*Hist)
	}
	h := m.Classes[name]
	if h == nil {
		h = &Hist{}
		m.Classes[name] = h
	}
	return h
}

// Add merges another metrics block into m.
func (m *Metrics) Add(o *Metrics) {
	m.RemoteRead.Add(&o.RemoteRead)
	m.WriteAck.Add(&o.WriteAck)
	m.RMWRound.Add(&o.RMWRound)
	m.HopQueue.Add(&o.HopQueue)
	m.BatchSize.Add(&o.BatchSize)
	for name, h := range o.Classes {
		m.Class(name).Add(h)
	}
}

// Render formats the histograms as a latency table (cycles).
func (m *Metrics) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s %8s %8s\n",
		"latency", "count", "mean", "p50", "p95", "p99", "max")
	row := func(name string, h *Hist) {
		fmt.Fprintf(&b, "%-14s %10d %10.1f %8d %8d %8d %8d\n",
			name, h.Count, h.Mean(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
	}
	row("remote-read", &m.RemoteRead)
	row("write-ack", &m.WriteAck)
	row("rmw-round", &m.RMWRound)
	row("hop-queue", &m.HopQueue)
	row("batch-size", &m.BatchSize)
	names := make([]string, 0, len(m.Classes))
	for name := range m.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name, m.Classes[name])
	}
	return b.String()
}
