package stats

import (
	"strings"
	"testing"

	"plus/internal/sim"
)

// The ring keeps the NEWEST events: pushing past capacity overwrites
// the oldest, and Overwritten counts the loss.
func TestTracerKeepsNewest(t *testing.T) {
	var now sim.Cycles
	tr := NewTracer(4, func() sim.Cycles { return now })
	for i := 0; i < 6; i++ {
		now = sim.Cycles(i)
		tr.Observer().Emit(EvWriteIssue, 1, 0, uint64(i+1), uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4 (ring capacity)", len(evs))
	}
	if evs[0].At != 2 || evs[3].At != 5 {
		t.Fatalf("window = [%d, %d], want [2, 5] (newest kept)", evs[0].At, evs[3].At)
	}
	if tr.Overwritten() != 2 {
		t.Fatalf("overwritten = %d, want 2", tr.Overwritten())
	}
	if !strings.Contains(tr.Dump(), "2 earlier event(s) overwritten") {
		t.Fatalf("dump missing overwrite note:\n%s", tr.Dump())
	}
}

// limit <= 0 is the documented default, not a silent fallback.
func TestTracerDefaultLimit(t *testing.T) {
	tr := NewTracer(0, func() sim.Cycles { return 0 })
	if got := tr.Observer().RingCap(); got != DefaultRingEvents {
		t.Fatalf("default ring capacity = %d, want %d", got, DefaultRingEvents)
	}
	// Non-power-of-two limits round up.
	tr = NewTracer(100, func() sim.Cycles { return 0 })
	if got := tr.Observer().RingCap(); got != 128 {
		t.Fatalf("ring capacity for limit 100 = %d, want 128", got)
	}
}

func TestMachineObserverNilByDefault(t *testing.T) {
	m := New(2)
	if m.Observer() != nil {
		t.Fatal("fresh machine should have no observer")
	}
	tr := NewTracer(10, func() sim.Cycles { return 7 })
	m.AttachObserver(tr.Observer())
	if m.Observer() != tr.Observer() {
		t.Fatal("observer attach/accessor broken")
	}
	m.Observer().Emit(EvUpdate, 1, 0, 3, 9, 1)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].At != 7 || evs[0].Node != 1 || evs[0].Kind != "update" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestObserverWindow(t *testing.T) {
	o := NewObserver(ObserveConfig{Events: 16, WindowStart: 10, WindowEnd: 20})
	var now sim.Cycles
	o.Bind(func() sim.Cycles { return now }, TraceMeta{Nodes: 1})
	for _, c := range []sim.Cycles{5, 10, 15, 20, 25} {
		now = c
		o.Emit(EvReadIssue, 0, 0, 0, 0, 0)
	}
	evs := o.Events()
	if len(evs) != 3 || evs[0].At != 10 || evs[2].At != 20 {
		t.Fatalf("windowed events = %+v, want cycles 10/15/20", evs)
	}
}

func TestObserverDoubleBindPanics(t *testing.T) {
	o := NewObserver(ObserveConfig{})
	o.Bind(func() sim.Cycles { return 0 }, TraceMeta{})
	defer func() {
		if recover() == nil {
			t.Fatal("second Bind should panic")
		}
	}()
	o.Bind(func() sim.Cycles { return 0 }, TraceMeta{})
}

func TestCausalIDsMonotonic(t *testing.T) {
	o := NewObserver(ObserveConfig{})
	if a, b := o.NextCause(), o.NextCause(); a != 1 || b != 2 {
		t.Fatalf("causes = %d, %d; want 1, 2", a, b)
	}
}

func TestHistQuantilesAndMean(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count != 100 || h.Sum != 5050 || h.Max != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count, h.Sum, h.Max)
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	// p50 of 1..100 lands in the [33, 64] bucket; the quantile is the
	// bucket's upper bound.
	if q := h.Quantile(0.50); q < 50 || q > 64 {
		t.Fatalf("p50 = %d, want in [50, 64]", q)
	}
	if q := h.Quantile(0.99); q < 99 || q > 100 {
		t.Fatalf("p99 = %d, want in [99, 100] (clamped to max)", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	var zero Hist
	if zero.Quantile(0.5) != 0 || zero.Mean() != 0 {
		t.Fatal("empty hist should report zeros")
	}
}

func TestHistAddMerges(t *testing.T) {
	var a, b Hist
	a.Observe(4)
	b.Observe(1000)
	a.Add(&b)
	if a.Count != 2 || a.Sum != 1004 || a.Max != 1000 {
		t.Fatalf("merged = %+v", a)
	}
}

// Emitting with the observer attached must not allocate: the ring is
// preallocated and Event is value-typed.
func TestEmitZeroAlloc(t *testing.T) {
	o := NewObserver(ObserveConfig{Events: 1 << 10})
	var now sim.Cycles
	o.Bind(func() sim.Cycles { return now }, TraceMeta{Nodes: 4})
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		o.Emit(EvWriteIssue, 2, 0, o.NextCause(), 0xdead, 42)
		o.Metrics.WriteAck.Observe(uint64(now))
	})
	if allocs != 0 {
		t.Fatalf("Emit+Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	o := NewObserver(ObserveConfig{Events: 64})
	var now sim.Cycles
	o.Bind(func() sim.Cycles { return now }, TraceMeta{
		Nodes: 2, MeshWidth: 2, MeshHeight: 1, Links: []string{"0->1E", "1->0W"},
	})
	now = 10
	o.Emit(EvWriteIssue, 0, 0, 1, 0x40, 0)
	o.EmitAt(12, EvNetHop, 0, 0, 1, 0, 4)
	now = 30
	o.Emit(EvStallEnd, 0, StallWrite, 1, 3, 20)
	o.AddSample(Sample{At: 32, LinkUtil: []float64{0.5, 0}, LinkDepth: []sim.Cycles{4, 0},
		NodeBusy: []sim.Cycles{10, 0}})
	data, err := ChromeTrace([]ObservedRun{ObservedRunFrom("t", o)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, data)
	}
	// 2 nodes + 2 links with 2 metadata entries each = 8, plus 1
	// instant, 1 hop span, 1 stall span, 2 link counters, 1 node counter.
	if n < 13 {
		t.Fatalf("trace events = %d, want >= 13", n)
	}
	s := string(data)
	for _, want := range []string{"t node 0", "t node 1", "t link 0->1E", "t link 1->0W",
		"stall:write", "xfer", "displayTimeUnit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q:\n%s", want, s)
		}
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace should fail validation")
	}
	if _, err := ValidateChromeTrace([]byte(`{`)); err == nil {
		t.Fatal("malformed trace should fail validation")
	}
}

func TestStallSummary(t *testing.T) {
	o := NewObserver(ObserveConfig{Events: 16})
	o.Bind(func() sim.Cycles { return 100 }, TraceMeta{Nodes: 2})
	o.Emit(EvStallEnd, 0, StallRead, 1, 0, 60)
	o.Emit(EvStallEnd, 1, StallWrite, 2, 0, 40)
	s := StallSummary([]ObservedRun{ObservedRunFrom("r", o)})
	for _, want := range []string{"r;n0;read 60", "r;n1;write 40"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if empty := StallSummary(nil); !strings.Contains(empty, "no stall events") {
		t.Fatalf("empty summary = %q", empty)
	}
}

// TestAccessEmitZeroAlloc pins the data-access event layer's hot path:
// emitting the EvAcc* stream the race detector consumes must not
// allocate, exactly like the protocol events — the layer rides the
// same preallocated ring.
func TestAccessEmitZeroAlloc(t *testing.T) {
	o := NewObserver(ObserveConfig{Events: 1 << 10, DataAccess: true})
	var now sim.Cycles
	o.Bind(func() sim.Cycles { return now }, TraceMeta{Nodes: 4})
	if !o.DataAccess() {
		t.Fatal("DataAccess not enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		o.Emit(EvAccRead, 1, 0, 0, 0x40, 3<<32|7)
		o.Emit(EvAccWrite, 1, 1, 0, 0x41, 3<<32|9)
		o.Emit(EvAccRMW, 2, 1, o.NextCause(), 0x42, 4<<32|1)
		o.Emit(EvAccFence, 2, 0, 0, 4, 0)
	})
	if allocs != 0 {
		t.Fatalf("access emit allocates %.1f/op, want 0", allocs)
	}
}
