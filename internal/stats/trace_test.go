package stats

import (
	"strings"
	"testing"

	"plus/internal/sim"
)

func TestTracerRecordsAndLimits(t *testing.T) {
	var now sim.Cycles
	tr := NewTracer(3, func() sim.Cycles { return now })
	for i := 0; i < 5; i++ {
		now = sim.Cycles(i * 10)
		tr.Emit(1, "write", "word %d", i)
	}
	if len(tr.Events()) != 3 {
		t.Fatalf("events = %d", len(tr.Events()))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	if tr.Events()[2].At != 20 || tr.Events()[2].Kind != "write" {
		t.Fatalf("event = %+v", tr.Events()[2])
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "word 2") || !strings.Contains(dump, "2 events dropped") {
		t.Fatalf("dump = %q", dump)
	}
}

func TestMachineEmitNoopWithoutTracer(t *testing.T) {
	m := New(2)
	if m.TraceEnabled() {
		t.Fatal("tracing on by default")
	}
	m.Emit(0, "x", "should not crash")
	tr := NewTracer(10, func() sim.Cycles { return 7 })
	m.AttachTracer(tr)
	if !m.TraceEnabled() || m.Tracer() != tr {
		t.Fatal("tracer not attached")
	}
	m.Emit(1, "y", "recorded")
	if len(tr.Events()) != 1 || tr.Events()[0].At != 7 {
		t.Fatalf("events = %v", tr.Events())
	}
}

func TestTracerDefaultLimit(t *testing.T) {
	tr := NewTracer(0, func() sim.Cycles { return 0 })
	if tr.limit != 4096 {
		t.Fatalf("default limit = %d", tr.limit)
	}
}
