package stats

import (
	"fmt"
	"strings"

	"plus/internal/sim"
)

// TraceEvent is one recorded protocol or processor event. The tracer
// is the debugging face of the paper's "simulated and instrumented in
// detail": with tracing enabled, every coherence message, memory
// operation and scheduling decision leaves a timestamped record.
type TraceEvent struct {
	At     sim.Cycles
	Node   int
	Kind   string // e.g. "write", "update", "ack", "rmw", "dispatch"
	Detail string
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("[%8d] n%-3d %-10s %s", e.At, e.Node, e.Kind, e.Detail)
}

// Tracer collects events up to a limit (0 = unlimited is not offered;
// traces are for debugging windows, not whole runs).
type Tracer struct {
	limit   int
	events  []TraceEvent
	dropped uint64
	clock   func() sim.Cycles
}

// NewTracer creates a tracer holding at most limit events; later
// events are counted as dropped.
func NewTracer(limit int, clock func() sim.Cycles) *Tracer {
	if limit <= 0 {
		limit = 4096
	}
	return &Tracer{limit: limit, clock: clock}
}

// Emit records an event.
func (tr *Tracer) Emit(node int, kind, format string, args ...interface{}) {
	if len(tr.events) >= tr.limit {
		tr.dropped++
		return
	}
	tr.events = append(tr.events, TraceEvent{
		At:     tr.clock(),
		Node:   node,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded events in order.
func (tr *Tracer) Events() []TraceEvent { return tr.events }

// Dropped returns how many events exceeded the limit.
func (tr *Tracer) Dropped() uint64 { return tr.dropped }

// Dump renders the trace as text.
func (tr *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range tr.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if tr.dropped > 0 {
		fmt.Fprintf(&b, "... %d events dropped (limit %d)\n", tr.dropped, tr.limit)
	}
	return b.String()
}

// Trace is the machine-wide tracer hook; nil when tracing is off.
// Components emit through Machine.Emit, which is a no-op without a
// tracer, so the hot paths stay cheap.
func (m *Machine) AttachTracer(tr *Tracer) { m.tracer = tr }

// Tracer returns the attached tracer, or nil.
func (m *Machine) Tracer() *Tracer { return m.tracer }

// Emit records a trace event if tracing is enabled.
func (m *Machine) Emit(node int, kind, format string, args ...interface{}) {
	if m.tracer != nil {
		m.tracer.Emit(node, kind, format, args...)
	}
}

// Enabled reports whether tracing is on (lets callers skip argument
// construction on hot paths).
func (m *Machine) TraceEnabled() bool { return m.tracer != nil }
