package stats

import (
	"fmt"

	"plus/internal/sim"
)

// TraceEvent is the rendered, human-oriented view of one structured
// Event, kept for callers of the old string tracer. New code should
// read Observer.Events() directly.
type TraceEvent struct {
	At     sim.Cycles
	Node   int
	Kind   string // e.g. "write", "update", "ack", "rmw", "dispatch"
	Detail string
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("[%8d] n%-3d %-10s %s", e.At, e.Node, e.Kind, e.Detail)
}

// Tracer is a thin back-compat shim over the structured Observer: the
// same Dump()/Events() surface the old string tracer offered, backed
// by the typed ring buffer.
type Tracer struct {
	obs *Observer
}

// NewTracer returns a tracer whose ring holds the NEWEST limit events
// (rounded up to a power of two), overwriting the oldest when full.
// limit <= 0 means DefaultRingEvents — this makes explicit the
// contract the old tracer applied silently ("limit <= 0 becomes
// 4096"), and replaces its drop-newest truncation with keep-newest.
//
// A non-nil clock binds the tracer standalone (no topology); pass the
// result of core.Machine.EnableTrace instead to trace a machine.
func NewTracer(limit int, clock func() sim.Cycles) *Tracer {
	o := NewObserver(ObserveConfig{Events: limit})
	if clock != nil {
		o.Bind(clock, TraceMeta{})
	}
	return &Tracer{obs: o}
}

// TracerFor wraps an existing observer in the back-compat surface.
func TracerFor(o *Observer) *Tracer { return &Tracer{obs: o} }

// Observer returns the structured observer behind the shim.
func (tr *Tracer) Observer() *Observer { return tr.obs }

// Events returns the recorded events oldest-first, rendered.
func (tr *Tracer) Events() []TraceEvent {
	evs := tr.obs.Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			At:     e.At,
			Node:   int(e.Node),
			Kind:   e.Kind.String(),
			Detail: fmt.Sprintf("cause=%d a=%#x b=%#x sub=%d", e.Cause, e.A, e.B, e.Sub),
		}
	}
	return out
}

// Overwritten returns how many events the ring overwrote (the
// keep-newest counterpart of the old tracer's Dropped).
func (tr *Tracer) Overwritten() uint64 { return tr.obs.Overwritten() }

// Dump renders the trace as text, one event per line.
func (tr *Tracer) Dump() string { return tr.obs.Dump() }
