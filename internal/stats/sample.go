package stats

import "plus/internal/sim"

// Sample is one time-series snapshot, recorded by the machine's
// sampler at the first engine dispatch at or after each
// ObserveConfig.SampleEvery boundary (the sampler rides the dispatch
// hook rather than scheduling tick events, so sampling never alters
// the simulated schedule). All per-interval fields are deltas since
// the previous sample, so a sample stream integrates back to the
// end-of-run totals.
type Sample struct {
	// At is the cycle the sample was taken: the first dispatch at or
	// after the period boundary, not the boundary itself.
	At sim.Cycles `json:"at"`
	// Events is the total number of events the observer had recorded.
	Events uint64 `json:"events"`
	// LinkUtil is each directed link's busy fraction over the interval
	// (0..1); indexed like TraceMeta.Links. Nil when the contention
	// model is off.
	LinkUtil []float64 `json:"link_util,omitempty"`
	// LinkDepth is each directed link's backlog at the sample instant:
	// how many cycles of already-reserved traffic are still queued.
	LinkDepth []sim.Cycles `json:"link_depth,omitempty"`
	// Per-node stall/busy cycle deltas over the interval, indexed by
	// node id.
	NodeBusy        []sim.Cycles `json:"node_busy,omitempty"`
	NodeReadStall   []sim.Cycles `json:"node_read_stall,omitempty"`
	NodeWriteStall  []sim.Cycles `json:"node_write_stall,omitempty"`
	NodeFenceStall  []sim.Cycles `json:"node_fence_stall,omitempty"`
	NodeVerifyStall []sim.Cycles `json:"node_verify_stall,omitempty"`
}
