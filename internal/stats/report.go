package stats

import (
	"fmt"
	"strings"

	"plus/internal/sim"
)

// Report renders the machine's counters as a human-readable table:
// one row per node plus totals, followed by the network message
// breakdown. elapsed scales the busy column into utilization.
func (m *Machine) Report(elapsed sim.Cycles) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %9s %8s %8s %7s %6s\n",
		"node", "rdLocal", "rdRemote", "wrLocal", "wrRemote", "updates", "rmw", "faults", "util")
	row := func(name string, n Node, share sim.Cycles) {
		util := "-"
		if share > 0 {
			util = fmt.Sprintf("%.3f", float64(n.BusyCycles)/float64(share))
		}
		fmt.Fprintf(&b, "%-5s %9d %9d %9d %9d %8d %8d %7d %6s\n",
			name, n.LocalReads, n.RemoteReads, n.LocalWrites, n.RemoteWrites,
			n.Updates, n.RMWIssued, n.PageFaults, util)
	}
	for i := range m.Nodes {
		row(fmt.Sprintf("n%d", i), m.Nodes[i], elapsed)
	}
	// The total row's utilization averages over all nodes.
	row("total", m.Totals(), elapsed*sim.Cycles(len(m.Nodes)))
	fmt.Fprintf(&b, "\nmessages: %d total — read %d/%d, write %d, update %d, ack %d, rmw %d/%d, page %d\n",
		m.Messages(), m.MsgRead, m.MsgReadRep, m.MsgWrite, m.MsgUpdate, m.MsgAck,
		m.MsgRMW, m.MsgRMWRep, m.MsgPage)
	t := m.Totals()
	fmt.Fprintf(&b, "stalls (cycles): read %d, write %d, verify %d, fence %d\n",
		t.ReadStall, t.WriteStall, t.VerifyStall, t.FenceStall)
	if t.Invalidations > 0 {
		fmt.Fprintf(&b, "invalidate mode: %d invalidations, %d refetch misses\n",
			t.Invalidations, t.InvalidateMisses)
	}
	if m.MsgTAck > 0 || m.Retransmits > 0 || m.TransStalls > 0 {
		fmt.Fprintf(&b, "transport: %d tacks, %d retransmits, %d dup drops, %d gap drops, %d backpressure stalls\n",
			m.MsgTAck, m.Retransmits, m.TransDups, m.TransGaps, m.TransStalls)
	}
	return b.String()
}
