// Shard-local observation: one child observer per shard, merged
// deterministically into the master ring at lookahead barriers.
//
// A sharded run cannot push into one ring from K worker goroutines,
// and even a locked ring would record events in racy real-time order.
// Instead each shard's components emit into that shard's child, which
// tags every event with the engine's DispatchTag — the heap key of the
// dispatch that produced it, the engine's dispatch ordinal, and an
// intra-dispatch draw counter. Each child's buffer is restored to its
// engine's execution order (ordinal, then counter — barrier-replayed
// contention events carry mid-round tags and land at the end), and the
// buffers are then interleaved by sim.MergeByTag's head merge, which
// reconstructs the exact order a single serial engine would have
// emitted them in. A flat key sort would not: serial pop order is not
// key order when a dispatch schedules a same-cycle event under a
// smaller key (see sim.MergeByTag). The engines run under strict
// waiting whenever an observer is attached so every emission carries a
// real dispatch tag; the merge runs at each lookahead barrier with
// every worker quiescent. Outside rounds (setup, between runs)
// children sit in direct mode and forward to the master ring in plain
// call order.
//
// Two deliberate divergences from a serial trace, both deterministic
// for a fixed shard count: events emitted by barrier work itself
// (kernel copy-list splices) carry the tag of the emitting shard's
// last dispatch rather than a mid-round position, and the time-series
// sampler runs barrier-aligned rather than per-dispatch. The ring is
// still overwrite-oldest; a merge can evict events an earlier merge
// pushed, exactly as a serial run's later events evict earlier ones.
package stats

import (
	"sort"

	"plus/internal/sim"
)

// taggedEvent is one buffered shard-local event with the global
// serialization key that positions it in the merged stream.
type taggedEvent struct {
	tag sim.DispatchTag
	ev  Event
}

// ShardChild returns a new per-shard child of this observer. The
// child shares the master's window configuration, keeps its own
// Metrics histograms (folded with FoldShardMetrics after the run),
// and reads the shard engine's clock and dispatch tags through the
// two closures. Children of children are not a thing.
func (o *Observer) ShardChild(clock func() sim.Cycles, tagf func() sim.DispatchTag) *Observer {
	if o.parent != nil {
		panic("stats: ShardChild of a shard child (children hang off the master observer)")
	}
	c := &Observer{cfg: o.cfg, winEnd: o.winEnd, parent: o, clock: clock, tagf: tagf}
	o.children = append(o.children, c)
	return c
}

// SetShardBuffering flips every child between direct mode (false:
// quiescent periods, events forward straight to the master ring in
// call order) and buffered mode (true: shard workers running
// concurrently, each child logs tagged events privately for
// MergeShardEvents). The core run loop buffers around each sharded
// run and merges at every barrier.
func (o *Observer) SetShardBuffering(on bool) {
	for _, c := range o.children {
		c.buffered = on
	}
}

// MergeShardEvents drains every child's buffer into the master ring
// in serial emission order. Call it only with all shard workers
// quiescent (at a lookahead barrier or after the run).
func (o *Observer) MergeShardEvents() {
	total := 0
	for _, c := range o.children {
		total += len(c.tbuf)
	}
	if total == 0 {
		return
	}
	if o.shardQs == nil {
		o.shardQs = make([][]taggedEvent, len(o.children))
	}
	for i, c := range o.children {
		// Restore each child's buffer to its engine's execution order:
		// barrier-replayed contention events were appended after the
		// round's live emissions but carry reserved mid-round tags.
		buf := c.tbuf
		sort.SliceStable(buf, func(a, b int) bool { return buf[a].tag.EngineLess(buf[b].tag) })
		o.shardQs[i] = buf
	}
	sim.MergeByTag(o.shardQs,
		func(te *taggedEvent) sim.DispatchTag { return te.tag },
		func(te *taggedEvent) { o.ring.Push(te.ev) })
	for i, c := range o.children {
		c.tbuf = c.tbuf[:0]
		o.shardQs[i] = nil
	}
}

// FoldShardMetrics adds every child's latency histograms into the
// master's and resets them, so the master's Metrics read exactly as a
// serial run's would. Call once after the run.
func (o *Observer) FoldShardMetrics() {
	for _, c := range o.children {
		o.Metrics.Add(&c.Metrics)
		c.Metrics = Metrics{}
	}
}
