package stats

import (
	"fmt"
	"sort"
	"strings"
)

// StallSummary renders a flamegraph-style folded-stack summary of the
// stall events in the given runs: one line per
// `run;node;stall-class cycles`, sorted, plus per-class totals. The
// folded lines paste directly into any flamegraph renderer; the totals
// give a quick text answer to "where did the cycles go".
func StallSummary(runs []ObservedRun) string {
	folded := map[string]uint64{}
	classTotal := map[string]uint64{}
	var total uint64
	for _, run := range runs {
		for _, e := range run.Events {
			if e.Kind != EvStallEnd {
				continue
			}
			cls := StallClassName(e.Sub)
			key := fmt.Sprintf("%s;n%d;%s", run.Name, e.Node, cls)
			folded[key] += e.B
			classTotal[cls] += e.B
			total += e.B
		}
	}
	var b strings.Builder
	b.WriteString("stall summary (folded stacks: run;node;class cycles)\n")
	if total == 0 {
		b.WriteString("  (no stall events recorded)\n")
		return b.String()
	}
	keys := make([]string, 0, len(folded))
	for k := range folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, folded[k])
	}
	b.WriteString("totals:\n")
	classes := make([]string, 0, len(classTotal))
	for c := range classTotal {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classTotal[classes[i]] > classTotal[classes[j]] })
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-8s %12d cycles (%5.1f%%)\n",
			c, classTotal[c], 100*float64(classTotal[c])/float64(total))
	}
	return b.String()
}
