// The structured event layer: the "simulated and instrumented in
// detail" (§2.5) face of the simulator. Components emit fixed-size,
// value-typed Events into a preallocated overwrite-oldest ring — no
// interface boxing, no Sprintf, no allocation on any hot path — and
// causal IDs threaded through mesh.Msg let a write's request →
// update-chain → ack span be reconstructed from the stream after the
// run. Exporters (chrometrace.go, stallsum.go) and the latency
// histograms (hist.go) are built on top of this file.
package stats

import (
	"fmt"
	"math/bits"
	"strings"

	"plus/internal/sim"
)

// EventKind enumerates the structured event types. The (A, B) payload
// words are kind-specific; Sub carries a small secondary code (a
// protocol message kind, stall class, or link direction).
type EventKind uint8

const (
	// EvNone is the zero Event; never emitted.
	EvNone EventKind = iota

	// Protocol lifecycle (internal/coherence). Cause is the operation's
	// causal ID, stamped at issue and carried by every message the
	// operation generates.
	EvReadIssue  // remote blocking read issued; A = packed address
	EvReadDone   // read reply consumed; A = cycles since issue
	EvWriteIssue // write accepted into the pending-writes cache; A = packed address, B = pending id
	EvWriteAck   // pending write retired; A = cycles since issue, B = pending id
	EvRMWIssue   // delayed op issued; Sub = op code, A = packed address, B = operand
	EvRMWExec    // delayed op executed at the master; Sub = op code, A = frame, B = words modified
	EvRMWDone    // delayed-op result arrived at the originator; A = cycles since issue, B = slot
	EvUpdate     // update applied at a copy; A = frame, B = words written
	EvPageCopy   // page-copy shipped; A = destination node, B = frame
	EvFence      // write fence issued; A = thread id, B = pending writes at issue

	// Network (internal/mesh). Sub = protocol message kind on
	// inject/deliver; A/B as noted.
	EvNetInject  // message enters the network; A = destination, B = size in flits
	EvNetHop     // message reserves one directed link; Sub = direction, A = link slot, B = occupancy cycles
	EvNetDeliver // message arrives at its destination port; A = source
	EvNetNack    // message refused by a full link buffer; A = destination
	EvNetDrop    // fault injector lost the message; A = destination
	EvNetDup     // fault injector duplicated the message; A = destination
	EvNetDelay   // fault injector delayed the message; A = extra cycles

	// Reliability sublayer (internal/coherence/transport.go).
	EvRetransmit // one queued message re-sent; Sub = kind, A = destination, B = sequence number
	EvBackoff    // retransmit timeout grew; Sub = 1 when NACK-triggered, A = destination, B = new timeout

	// Processor (internal/proc).
	EvDispatch   // a thread got the processor; A = thread id, B = switch cost
	EvStallBegin // a thread began stalling; Sub = stall class, A = thread id
	EvStallEnd   // the stall ended; Sub = stall class, A = thread id, B = stalled cycles

	// Engine (internal/sim); recorded only with ObserveConfig
	// EngineEvents, which is very verbose.
	EvEngineDispatch // one engine event dispatched; A = sink-defined kind

	// Data-access layer (internal/proc), recorded only with
	// ObserveConfig.DataAccess: the typed per-thread access stream the
	// happens-before race detector (internal/trace) consumes. A carries
	// the word-grained virtual address where noted (identity is virtual:
	// the same word maps to different physical copies on different
	// nodes); B packs the thread id above the 32-bit value.
	EvAccRead   // read completed; Sub = 1 if sync-annotated; A = vaddr, B = tid<<32 | value
	EvAccWrite  // write issued; Sub = 1 if sync-annotated; A = vaddr, B = tid<<32 | value
	EvAccRMW    // delayed op issued; Sub = op code, A = vaddr, B = tid<<32 | operand; Cause pairs with EvRMWExec/EvAccVerify
	EvAccVerify // delayed-op result consumed (Verify/TryVerify success); A = tid, B = result; Cause pairs with EvAccRMW
	EvAccFence  // write fence COMPLETED (EvFence marks the issue); A = tid
	EvAccSpawn  // thread created; A = tid
	EvAccWake   // explicit Wake issued; A = waker tid, B = target tid
	EvAccSleep  // Sleep returned (wake absorbed); A = tid
	EvAccExit   // thread body returned; A = tid
	EvAccMap    // page mapping installed (fault fill or kernel remap); A = vpage, B = packed gaddr

	evKinds // count sentinel
)

// Stall classes (Sub of EvStallBegin/EvStallEnd), matching the four
// stall counters of stats.Node.
const (
	StallRead uint8 = iota
	StallWrite
	StallFence
	StallVerify
)

// StallClassName names a stall class for renderers.
func StallClassName(c uint8) string {
	switch c {
	case StallRead:
		return "read"
	case StallWrite:
		return "write"
	case StallFence:
		return "fence"
	case StallVerify:
		return "verify"
	default:
		return fmt.Sprintf("class%d", c)
	}
}

var eventKindNames = [evKinds]string{
	EvNone:           "none",
	EvReadIssue:      "read",
	EvReadDone:       "read-done",
	EvWriteIssue:     "write",
	EvWriteAck:       "ack",
	EvRMWIssue:       "rmw",
	EvRMWExec:        "rmw-exec",
	EvRMWDone:        "rmw-done",
	EvUpdate:         "update",
	EvPageCopy:       "page-copy",
	EvFence:          "fence",
	EvNetInject:      "net-inject",
	EvNetHop:         "net-hop",
	EvNetDeliver:     "net-deliver",
	EvNetNack:        "net-nack",
	EvNetDrop:        "net-drop",
	EvNetDup:         "net-dup",
	EvNetDelay:       "net-delay",
	EvRetransmit:     "retransmit",
	EvBackoff:        "backoff",
	EvDispatch:       "dispatch",
	EvStallBegin:     "stall",
	EvStallEnd:       "stall-end",
	EvEngineDispatch: "engine",
	EvAccRead:        "acc-read",
	EvAccWrite:       "acc-write",
	EvAccRMW:         "acc-rmw",
	EvAccVerify:      "acc-verify",
	EvAccFence:       "acc-fence",
	EvAccSpawn:       "acc-spawn",
	EvAccWake:        "acc-wake",
	EvAccSleep:       "acc-sleep",
	EvAccExit:        "acc-exit",
	EvAccMap:         "acc-map",
}

// String names the kind ("write", "update", "net-hop", ...).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one structured record: fixed-size, value-typed, no strings
// and no interfaces, so the ring push on the hot path is a plain copy.
type Event struct {
	// At is the cycle the event happened.
	At sim.Cycles
	// Cause links every event of one logical operation (a write and
	// its update chain and ack share the Cause stamped at issue);
	// 0 means uncaused (standalone event).
	Cause uint64
	// A and B are kind-specific payload words.
	A, B uint64
	// Kind is the event type.
	Kind EventKind
	// Sub is a kind-specific secondary code (protocol message kind,
	// stall class, link direction).
	Sub uint8
	// Node is the mesh node the event happened on (-1 = machine-wide).
	Node int16
}

// String renders one event in the trace dump format.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] n%-3d %-11s cause=%-6d a=%#x b=%#x sub=%d",
		e.At, e.Node, e.Kind, e.Cause, e.A, e.B, e.Sub)
}

// Ring is a fixed-capacity overwrite-oldest event buffer. The backing
// slice is allocated once (capacity rounded up to a power of two) and
// Push never allocates; when full, the oldest event is overwritten.
type Ring struct {
	buf  []Event
	mask uint64
	n    uint64 // total events ever pushed
}

// DefaultRingEvents is the ring capacity when ObserveConfig.Events is
// zero or negative — the explicit contract the old tracer's silent
// "limit <= 0 becomes 4096" never stated.
const DefaultRingEvents = 4096

// NewRing returns a ring holding the newest `capacity` events
// (rounded up to a power of two; <= 0 means DefaultRingEvents).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	c := 1 << bits.Len64(uint64(capacity-1))
	return &Ring{buf: make([]Event, c), mask: uint64(c - 1)}
}

// Push records e, overwriting the oldest event when the ring is full.
func (r *Ring) Push(e Event) {
	r.buf[r.n&r.mask] = e
	r.n++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Pushed returns the total number of events ever pushed (held plus
// overwritten) — a cheap counter, unlike Events.
func (r *Ring) Pushed() uint64 { return r.n }

// Overwritten returns how many events were lost to overwriting.
func (r *Ring) Overwritten() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the held events oldest-first (a copy).
func (r *Ring) Events() []Event {
	if r.n <= uint64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	out := make([]Event, len(r.buf))
	head := int(r.n & r.mask) // index of the oldest event
	copy(out, r.buf[head:])
	copy(out[len(r.buf)-head:], r.buf[:head])
	return out
}

// ObserveConfig parameterizes an Observer. The zero value records all
// events into a DefaultRingEvents-deep ring with no time-series
// sampling.
type ObserveConfig struct {
	// Events is the ring capacity (rounded up to a power of two;
	// <= 0 means DefaultRingEvents). The ring keeps the NEWEST Events
	// entries, overwriting the oldest when full.
	Events int
	// WindowStart/WindowEnd restrict recording to cycles in
	// [WindowStart, WindowEnd]; WindowEnd 0 means no upper bound.
	// Histograms and samples are not windowed — only the event stream.
	WindowStart, WindowEnd sim.Cycles
	// SampleEvery, when > 0, records a time-series Sample (link
	// utilization, buffer depth, per-node stall deltas) roughly every
	// that many cycles: at the first engine dispatch at or after each
	// period boundary, so sampling never adds events to the schedule.
	SampleEvery sim.Cycles
	// EngineEvents records every sim-engine event dispatch
	// (EvEngineDispatch) — very verbose; off by default.
	EngineEvents bool
	// DataAccess records the per-thread data-access stream (the EvAcc*
	// kinds) that the happens-before race detector consumes. Off by
	// default: with it off every emission site is gated out and runs
	// stay byte-identical to an uninstrumented-access build. Like the
	// rest of the observer it never schedules events, so turning it on
	// does not perturb elapsed cycles or counters either.
	DataAccess bool
}

// TraceMeta describes the machine an Observer was bound to, for
// exporters that need topology (one Perfetto track per node and link).
type TraceMeta struct {
	Nodes      int      `json:"nodes"`
	MeshWidth  int      `json:"mesh_w,omitempty"`
	MeshHeight int      `json:"mesh_h,omitempty"`
	Links      []string `json:"links,omitempty"` // label per directed link slot
}

// Observer is one machine's structured-event collector: the ring, the
// latency histograms, and the time-series samples. Create one with
// NewObserver, pass it to the machine via core.Config.Observe (or let
// core.Machine.EnableTrace build one), and read it after Run.
//
// An Observer serves exactly one machine: core.NewMachine binds it to
// the machine's clock and topology, and binding twice panics — sharing
// one observer across machines would interleave their streams
// nondeterministically.
type Observer struct {
	cfg  ObserveConfig
	ring *Ring
	// Metrics are the log-bucketed latency histograms (hist.go),
	// populated by proc and coherence as operations complete.
	Metrics Metrics

	samples []Sample
	meta    TraceMeta
	clock   func() sim.Cycles
	cause   uint64
	bound   bool
	// winEnd is WindowEnd with 0 mapped to max, so Emit does one
	// comparison instead of a zero test plus a comparison.
	winEnd sim.Cycles

	// Sharding (shardobs.go). A master observer owns the ring; each
	// shard gets a child (parent != nil) that either forwards straight
	// to the master ring (direct mode, quiescent periods) or logs
	// tagged events privately (buffered mode, shard workers running)
	// for a deterministic tag-ordered merge at lookahead barriers.
	parent   *Observer
	children []*Observer
	tagf     func() sim.DispatchTag
	buffered bool
	tbuf     []taggedEvent
	// shardQs is MergeShardEvents' per-barrier merge scratch (one
	// queue header per child, reused across barriers).
	shardQs [][]taggedEvent
	// causeBy holds CauseFor's per-node counters (master or child —
	// each node's issues all happen on the observer serving its shard).
	causeBy []uint64
}

// NewObserver returns an unbound observer with its ring preallocated.
func NewObserver(cfg ObserveConfig) *Observer {
	o := &Observer{cfg: cfg, ring: NewRing(cfg.Events)}
	o.winEnd = cfg.WindowEnd
	if o.winEnd == 0 {
		o.winEnd = ^sim.Cycles(0)
	}
	return o
}

// Bind attaches the observer to one machine's clock and topology.
// core.NewMachine calls this; binding an already-bound observer panics
// (one observer per machine).
func (o *Observer) Bind(clock func() sim.Cycles, meta TraceMeta) {
	if o.bound {
		panic("stats: Observer bound to a second machine (use one Observer per machine)")
	}
	o.bound = true
	o.clock = clock
	o.meta = meta
}

// Emit records an event at the current cycle. It allocates nothing:
// outside the recording window it is two compares; inside, one ring
// copy.
func (o *Observer) Emit(kind EventKind, node int, sub uint8, cause, a, b uint64) {
	o.EmitAt(o.clock(), kind, node, sub, cause, a, b)
}

// EmitAt records an event with an explicit timestamp (per-hop link
// reservations happen at computed future times).
func (o *Observer) EmitAt(at sim.Cycles, kind EventKind, node int, sub uint8, cause, a, b uint64) {
	if at < o.cfg.WindowStart || at > o.winEnd {
		return
	}
	e := Event{At: at, Cause: cause, A: a, B: b, Kind: kind, Sub: sub, Node: int16(node)}
	if o.parent == nil {
		o.ring.Push(e)
		return
	}
	if o.buffered {
		o.tbuf = append(o.tbuf, taggedEvent{tag: o.tagf(), ev: e})
		return
	}
	o.parent.ring.Push(e)
}

// EmitAtTag records an event whose serialization tag was reserved
// earlier in the schedule (work deferred to a lookahead barrier, like
// per-hop link reservations under sharded contention): a buffered
// child files it under the reserved tag so the merge interleaves it
// exactly where the serial schedule emitted it; in every other mode
// the tag is irrelevant and this is EmitAt.
func (o *Observer) EmitAtTag(tag sim.DispatchTag, at sim.Cycles, kind EventKind, node int, sub uint8, cause, a, b uint64) {
	if o.parent != nil && o.buffered {
		if at < o.cfg.WindowStart || at > o.winEnd {
			return
		}
		o.tbuf = append(o.tbuf, taggedEvent{tag: tag,
			ev: Event{At: at, Cause: cause, A: a, B: b, Kind: kind, Sub: sub, Node: int16(node)}})
		return
	}
	o.EmitAt(at, kind, node, sub, cause, a, b)
}

// NextCause returns a fresh nonzero causal ID. Causal IDs are
// machine-wide and strictly increasing in issue order — which only a
// single serial collector can hand out; shard children must use the
// per-node CauseFor.
func (o *Observer) NextCause() uint64 {
	if o.parent != nil {
		panic("stats: NextCause on a shard child (machine-wide IDs need one counter; use CauseFor)")
	}
	o.cause++
	return o.cause
}

// CauseFor returns a fresh nonzero causal ID for an operation issued
// by the given node. Unlike NextCause the counters are per-node, so a
// node's k-th issue gets the same ID in serial and sharded runs: all
// of one node's issues pass through the observer serving its shard in
// the node's own program order, whatever the shard count. IDs pack
// node+1 above a 40-bit per-node counter — never zero, never colliding
// across nodes.
func (o *Observer) CauseFor(node int) uint64 {
	for node >= len(o.causeBy) {
		o.causeBy = append(o.causeBy, 0)
	}
	o.causeBy[node]++
	return uint64(node+1)<<40 | o.causeBy[node]
}

// Events returns the recorded events oldest-first.
func (o *Observer) Events() []Event { return o.ring.Events() }

// Overwritten returns how many events the ring overwrote.
func (o *Observer) Overwritten() uint64 { return o.ring.Overwritten() }

// EventCount returns the total events recorded so far (held plus
// overwritten), without copying the ring.
func (o *Observer) EventCount() uint64 { return o.ring.Pushed() }

// RingCap returns the ring's actual (rounded) capacity.
func (o *Observer) RingCap() int { return o.ring.Cap() }

// Meta returns the topology the observer was bound with.
func (o *Observer) Meta() TraceMeta { return o.meta }

// Config returns the observer's configuration.
func (o *Observer) Config() ObserveConfig { return o.cfg }

// SampleInterval returns the configured sampling period (0 = off).
func (o *Observer) SampleInterval() sim.Cycles { return o.cfg.SampleEvery }

// EngineEvents reports whether engine dispatches should be recorded.
func (o *Observer) EngineEvents() bool { return o.cfg.EngineEvents }

// DataAccess reports whether the data-access event layer is on — the
// single gate every EvAcc* emission site checks after the nil check.
func (o *Observer) DataAccess() bool { return o.cfg.DataAccess }

// AddSample appends one time-series sample (called by core's sampler).
func (o *Observer) AddSample(s Sample) { o.samples = append(o.samples, s) }

// Samples returns the recorded time-series.
func (o *Observer) Samples() []Sample { return o.samples }

// Dump renders the event stream as text, one event per line, with an
// overwrite note when the ring wrapped.
func (o *Observer) Dump() string {
	var b strings.Builder
	for _, e := range o.ring.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if d := o.ring.Overwritten(); d > 0 {
		fmt.Fprintf(&b, "... %d earlier event(s) overwritten (ring capacity %d)\n", d, o.ring.Cap())
	}
	return b.String()
}
