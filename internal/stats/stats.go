// Package stats instruments the simulated machine exactly the way the
// paper's simulator did: "Caching, coherence management, routing and
// memory access are simulated and instrumented in detail" (§2.5).
// Table 2-1 and Figures 2-1/3-1 are computed from these counters.
package stats

import "plus/internal/sim"

// Node holds one node's memory-system counters. The JSON tags let
// experiment rows embed a counter block (or the Totals sum) directly
// in plusbench's uniform -json output.
type Node struct {
	LocalReads   uint64 `json:"local_reads"`   // reads satisfied by local memory (or its cache)
	RemoteReads  uint64 `json:"remote_reads"`  // blocking reads sent over the network
	LocalWrites  uint64 `json:"local_writes"`  // writes whose master copy is local
	RemoteWrites uint64 `json:"remote_writes"` // writes sent to a remote master
	Updates      uint64 `json:"updates"`       // update requests applied at this node's copies
	// CoalescedWrites counts words that joined an already-open write
	// combine buffer — writes that rode an earlier write's message
	// instead of paying for their own (nonzero only with
	// Timing.MaxBatchWrites > 1).
	CoalescedWrites uint64 `json:"coalesced_writes"`
	RMWIssued       uint64 `json:"rmw_issued"`   // delayed operations issued by this node
	RMWExecuted     uint64 `json:"rmw_executed"` // delayed operations executed at this node's masters

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	Fences      uint64     `json:"fences"`
	FenceStall  sim.Cycles `json:"fence_stall"`  // cycles stalled waiting for fences
	ReadStall   sim.Cycles `json:"read_stall"`   // cycles stalled on blocking/pending reads
	WriteStall  sim.Cycles `json:"write_stall"`  // cycles stalled on a full pending-writes cache
	VerifyStall sim.Cycles `json:"verify_stall"` // cycles stalled waiting for delayed-op results

	PageFaults  uint64 `json:"page_faults"`
	PagesCopied uint64 `json:"pages_copied"`
	// Invalidations and InvalidateMisses are nonzero only in the
	// write-invalidate ablation mode.
	Invalidations    uint64     `json:"invalidations"`
	InvalidateMisses uint64     `json:"invalidate_misses"`
	CtxSwitches      uint64     `json:"ctx_switches"`
	BusyCycles       sim.Cycles `json:"busy_cycles"` // useful computation + issue time
	threadsActive    int
}

// Machine aggregates per-node counters plus machine-wide message
// counts by type.
type Machine struct {
	Nodes []Node

	// obs, when non-nil, records structured events (see event.go).
	obs *Observer

	// Message counts by coherence-protocol type, machine-wide.
	MsgRead    uint64 // read requests
	MsgReadRep uint64 // read replies
	MsgWrite   uint64 // write requests (to addressed node or forwarded to master)
	MsgUpdate  uint64 // updates down copy-lists
	MsgAck     uint64 // write/RMW completion acks
	MsgRMW     uint64 // delayed-operation requests
	MsgRMWRep  uint64 // delayed-operation replies
	MsgPage    uint64 // page-copy traffic

	// Unreliable-network mode counters (all zero when the fault model
	// is off; see mesh.FaultConfig and coherence/transport.go).
	MsgTAck     uint64 // transport acks sent by the reliability sublayer
	Retransmits uint64 // messages re-sent by retransmit timers
	TransDups   uint64 // arrivals dropped as duplicates (seq already seen)
	TransGaps   uint64 // arrivals dropped as out-of-order (gap after a loss)
	TransStalls uint64 // sends bounced by a full link buffer (back-pressure)

	// Crash/recovery counters (all zero unless the run has a crash
	// script; see mesh.FaultConfig.Crashes, coherence/crash.go and
	// kernel/failover.go).
	Crashes         uint64 // scripted node outages begun
	Restarts        uint64 // scripted node restarts completed
	Failovers       uint64 // kernel failover epochs executed
	MastersPromoted uint64 // pages whose master moved to the next surviving copy
	PagesFailedOver uint64 // page copies lost to crashes and spliced out
	PagesResynced   uint64 // downstream survivors re-copied by failover cascades
	RejoinCopies    uint64 // copies re-replicated onto restarted nodes
	RedirectedMsgs  uint64 // parked requests rerouted to a new master at failover
	ForcedRetires   uint64 // pending writes force-retired by a crash epoch
	ReissuedOps     uint64 // reads/RMWs re-issued after a failover or restart
	StaleAcks       uint64 // late acks/replies for already-retired operations (tolerated)
	CrashOrphans    uint64 // messages addressed to state lost in a crash
	// Recovery observes, per failover, the cycles from the crash
	// instant to the restored master (detection-triggered or, for an
	// undetected outage, the restart-time epoch).
	Recovery Hist
}

// New returns a stats block for n nodes.
func New(n int) *Machine {
	return &Machine{Nodes: make([]Node, n)}
}

// AttachObserver sets the machine's structured-event observer;
// components reach it through Observer() and emit only when non-nil,
// so the tracing-off hot paths stay allocation-free.
func (m *Machine) AttachObserver(o *Observer) { m.obs = o }

// Observer returns the attached observer, or nil when tracing is off.
func (m *Machine) Observer() *Observer { return m.obs }

// ShardView returns a Machine sharing m's per-node counter slice but
// holding private machine-wide scalars. The sharded engine hands one
// view to each shard's components: per-node counters are written only
// by their owning node (node-disjoint across shards, so sharing the
// backing slice is race-free), while the machine-wide message tallies
// are written by every CM and therefore accumulate per shard, to be
// folded into the master with FoldShard after the run. When tracing
// is on, core attaches the shard's child observer (ShardChild) to the
// view, so the shard's components emit shard-locally.
func (m *Machine) ShardView() *Machine { return &Machine{Nodes: m.Nodes} }

// FoldShard drains a shard view's machine-wide scalar counters into m:
// the values are added and the view's scalars reset, so folding after
// every run keeps repeated Run/fold cycles from double-counting. Call
// with the simulation quiescent.
func (m *Machine) FoldShard(v *Machine) {
	m.MsgRead += v.MsgRead
	m.MsgReadRep += v.MsgReadRep
	m.MsgWrite += v.MsgWrite
	m.MsgUpdate += v.MsgUpdate
	m.MsgAck += v.MsgAck
	m.MsgRMW += v.MsgRMW
	m.MsgRMWRep += v.MsgRMWRep
	m.MsgPage += v.MsgPage
	m.MsgTAck += v.MsgTAck
	m.Retransmits += v.Retransmits
	m.TransDups += v.TransDups
	m.TransGaps += v.TransGaps
	m.TransStalls += v.TransStalls
	m.Crashes += v.Crashes
	m.Restarts += v.Restarts
	m.Failovers += v.Failovers
	m.MastersPromoted += v.MastersPromoted
	m.PagesFailedOver += v.PagesFailedOver
	m.PagesResynced += v.PagesResynced
	m.RejoinCopies += v.RejoinCopies
	m.RedirectedMsgs += v.RedirectedMsgs
	m.ForcedRetires += v.ForcedRetires
	m.ReissuedOps += v.ReissuedOps
	m.StaleAcks += v.StaleAcks
	m.CrashOrphans += v.CrashOrphans
	m.Recovery.Add(&v.Recovery)
	nodes, obs := v.Nodes, v.obs
	*v = Machine{Nodes: nodes, obs: obs}
}

// Reliability groups the unreliable-network sublayer counters for
// uniform experiment JSON rows (all zero when the fault model is off).
type Reliability struct {
	MsgTAck     uint64 `json:"msg_tack"`
	Retransmits uint64 `json:"retransmits"`
	TransDups   uint64 `json:"trans_dups"`
	TransGaps   uint64 `json:"trans_gaps"`
	TransStalls uint64 `json:"trans_stalls"`
}

// Reliability returns the reliability-sublayer counter block.
func (m *Machine) Reliability() Reliability {
	return Reliability{
		MsgTAck:     m.MsgTAck,
		Retransmits: m.Retransmits,
		TransDups:   m.TransDups,
		TransGaps:   m.TransGaps,
		TransStalls: m.TransStalls,
	}
}

// CrashBlock groups the crash/failover counters for uniform experiment
// JSON rows (all zero unless the run had a crash script).
type CrashBlock struct {
	Crashes         uint64  `json:"crashes"`
	Restarts        uint64  `json:"restarts"`
	Failovers       uint64  `json:"failovers"`
	MastersPromoted uint64  `json:"masters_promoted"`
	PagesFailedOver uint64  `json:"pages_failed_over"`
	PagesResynced   uint64  `json:"pages_resynced"`
	RejoinCopies    uint64  `json:"rejoin_copies"`
	RedirectedMsgs  uint64  `json:"redirected_msgs"`
	ForcedRetires   uint64  `json:"forced_retires"`
	ReissuedOps     uint64  `json:"reissued_ops"`
	StaleAcks       uint64  `json:"stale_acks"`
	CrashOrphans    uint64  `json:"crash_orphans"`
	RecoveryMean    float64 `json:"recovery_mean"` // mean cycles crash → restored master
	RecoveryMax     uint64  `json:"recovery_max"`  // worst-case recovery, cycles
}

// Crash returns the crash/failover counter block.
func (m *Machine) Crash() CrashBlock {
	return CrashBlock{
		Crashes:         m.Crashes,
		Restarts:        m.Restarts,
		Failovers:       m.Failovers,
		MastersPromoted: m.MastersPromoted,
		PagesFailedOver: m.PagesFailedOver,
		PagesResynced:   m.PagesResynced,
		RejoinCopies:    m.RejoinCopies,
		RedirectedMsgs:  m.RedirectedMsgs,
		ForcedRetires:   m.ForcedRetires,
		ReissuedOps:     m.ReissuedOps,
		StaleAcks:       m.StaleAcks,
		CrashOrphans:    m.CrashOrphans,
		RecoveryMean:    m.Recovery.Mean(),
		RecoveryMax:     m.Recovery.Max,
	}
}

// Totals sums the per-node counters.
func (m *Machine) Totals() Node {
	var t Node
	for i := range m.Nodes {
		n := &m.Nodes[i]
		t.LocalReads += n.LocalReads
		t.RemoteReads += n.RemoteReads
		t.LocalWrites += n.LocalWrites
		t.RemoteWrites += n.RemoteWrites
		t.Updates += n.Updates
		t.CoalescedWrites += n.CoalescedWrites
		t.RMWIssued += n.RMWIssued
		t.RMWExecuted += n.RMWExecuted
		t.CacheHits += n.CacheHits
		t.CacheMisses += n.CacheMisses
		t.Fences += n.Fences
		t.FenceStall += n.FenceStall
		t.ReadStall += n.ReadStall
		t.WriteStall += n.WriteStall
		t.VerifyStall += n.VerifyStall
		t.PageFaults += n.PageFaults
		t.PagesCopied += n.PagesCopied
		t.Invalidations += n.Invalidations
		t.InvalidateMisses += n.InvalidateMisses
		t.CtxSwitches += n.CtxSwitches
		t.BusyCycles += n.BusyCycles
	}
	return t
}

// Messages returns the total network message count across all
// protocol types.
func (m *Machine) Messages() uint64 {
	return m.MsgRead + m.MsgReadRep + m.MsgWrite + m.MsgUpdate +
		m.MsgAck + m.MsgRMW + m.MsgRMWRep + m.MsgPage + m.MsgTAck
}

// ReadRatio returns local/remote reads (∞ is reported as a large
// finite value to keep table output readable).
func (m *Machine) ReadRatio() float64 {
	t := m.Totals()
	return ratio(t.LocalReads, t.RemoteReads)
}

// WriteRatio returns local/remote writes.
func (m *Machine) WriteRatio() float64 {
	t := m.Totals()
	return ratio(t.LocalWrites, t.RemoteWrites)
}

// UpdateRatio returns total messages / update messages (the last
// column of Table 2-1: as replication grows, a larger share of network
// traffic is update propagation and the ratio falls toward 1).
func (m *Machine) UpdateRatio() float64 {
	return ratio(m.Messages(), m.MsgUpdate)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return float64(a) // "infinite" ratio, reported as the numerator
	}
	return float64(a) / float64(b)
}

// Utilization returns the ratio of average useful processor time to
// elapsed time across active processors (the paper's "utilization" in
// Figure 2-1). active is the number of processors that executed
// threads; elapsed is total run cycles.
func (m *Machine) Utilization(active int, elapsed sim.Cycles) float64 {
	if active == 0 || elapsed == 0 {
		return 0
	}
	var busy sim.Cycles
	for i := range m.Nodes {
		busy += m.Nodes[i].BusyCycles
	}
	return float64(busy) / (float64(elapsed) * float64(active))
}
