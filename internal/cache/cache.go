// Package cache models the per-processor cache of a PLUS node (32 KB
// on the M88000 in the current implementation, 4-word lines).
//
// Only local-memory accesses go through this cache; remote accesses are
// handled by the coherence manager over the network. Two policies
// apply, following §2.3 of the paper:
//
//   - Replicated pages must be cached write-through, so every write is
//     visible to the coherence manager (which must propagate it down
//     the copy-list).
//   - Private pages (stack, code, unshared data) may be cached
//     copy-back.
//
// A snooping protocol on the node bus keeps cache and memory coherent
// when the coherence manager performs a write or update to local
// memory: the Snoop hook updates (not invalidates) a present line,
// Dragon-style, since the data word is being written to memory anyway.
//
// Data always lives in memory.Memory; the cache tracks only tags,
// valid and dirty bits — enough for exact timing and hit/miss
// statistics without duplicating storage.
package cache

import (
	"plus/internal/memory"
	"plus/internal/sim"
	"plus/internal/timing"
)

// Config sizes the cache.
type Config struct {
	// SizeWords is the total capacity in 32-bit words. Default 8192
	// (32 KB), the paper's implementation.
	SizeWords int
	// LineWords is the line size in words. Default 4 (the paper's
	// beam-search analysis assumes four-word lines).
	LineWords int
}

// DefaultConfig returns the 32 KB, 4-word-line cache of the paper's
// implementation.
func DefaultConfig() Config { return Config{SizeWords: 8192, LineWords: 4} }

type line struct {
	valid bool
	dirty bool
	tag   uint64
}

// Stats counts cache behaviour.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	SnoopHits  uint64
}

// Cache is a direct-mapped cache over one node's physical memory.
type Cache struct {
	cfg   Config
	tm    timing.Timing
	lines []line
	stats Stats
}

// New builds a cache. Zero-valued config fields take defaults.
func New(cfg Config, tm timing.Timing) *Cache {
	if cfg.SizeWords == 0 {
		cfg.SizeWords = DefaultConfig().SizeWords
	}
	if cfg.LineWords == 0 {
		cfg.LineWords = DefaultConfig().LineWords
	}
	n := cfg.SizeWords / cfg.LineWords
	if n < 1 {
		n = 1
	}
	return &Cache{cfg: cfg, tm: tm, lines: make([]line, n)}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// key computes the global line number for (frame, offset).
func (c *Cache) key(p memory.PPage, off uint32) uint64 {
	wordIdx := uint64(p)<<memory.PageShift | uint64(off&memory.OffMask)
	return wordIdx / uint64(c.cfg.LineWords)
}

func (c *Cache) slot(lineNo uint64) *line {
	return &c.lines[lineNo%uint64(len(c.lines))]
}

// Read models a processor load from local memory and returns its cost
// in cycles: a hit costs CacheHit; a miss fills the line (evicting a
// dirty victim first).
func (c *Cache) Read(p memory.PPage, off uint32) sim.Cycles {
	ln := c.key(p, off)
	s := c.slot(ln)
	if s.valid && s.tag == ln {
		c.stats.Hits++
		return c.tm.CacheHit
	}
	c.stats.Misses++
	cost := c.tm.CacheLineFill
	if s.valid && s.dirty {
		c.stats.Writebacks++
		cost += c.tm.CacheLineFill
	}
	*s = line{valid: true, tag: ln}
	return cost
}

// Write models a processor store to local memory. writeThrough selects
// the replicated-page policy (required for coherence); otherwise the
// line is written copy-back and marked dirty. The returned cost covers
// the cache side only; the write-through traffic to the coherence
// manager is charged by the caller.
func (c *Cache) Write(p memory.PPage, off uint32, writeThrough bool) sim.Cycles {
	ln := c.key(p, off)
	s := c.slot(ln)
	if s.valid && s.tag == ln {
		c.stats.Hits++
		if !writeThrough {
			s.dirty = true
		}
		return c.tm.CacheHit
	}
	c.stats.Misses++
	if writeThrough {
		// Write-through, no write-allocate: the store goes to memory
		// and the coherence manager; the cache is not filled.
		return c.tm.CacheHit
	}
	cost := c.tm.CacheLineFill // write-allocate
	if s.valid && s.dirty {
		c.stats.Writebacks++
		cost += c.tm.CacheLineFill
	}
	*s = line{valid: true, dirty: true, tag: ln}
	return cost
}

// Snoop is invoked when the coherence manager writes local memory
// (a remote processor's write or update reaching this node). A present
// line is updated in place — the bus carries the new word, so the line
// stays valid and clean relative to memory.
func (c *Cache) Snoop(p memory.PPage, off uint32) {
	ln := c.key(p, off)
	s := c.slot(ln)
	if s.valid && s.tag == ln {
		c.stats.SnoopHits++
		s.dirty = false
	}
}

// Flush invalidates the whole cache (used when a page copy is deleted
// and mappings change, §2.4: "all the nodes that have a copy of the
// page must update their address translation tables and flush their
// TLBs"). Dirty lines are counted as writebacks; the returned cost is
// the total writeback time.
func (c *Cache) Flush() sim.Cycles {
	var cost sim.Cycles
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.Writebacks++
			cost += c.tm.CacheLineFill
		}
		c.lines[i] = line{}
	}
	return cost
}

// HitRatio returns hits/(hits+misses), or 0 with no accesses.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}
