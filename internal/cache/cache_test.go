package cache

import (
	"testing"
	"testing/quick"

	"plus/internal/memory"
	"plus/internal/timing"
)

func newTestCache() *Cache {
	return New(Config{SizeWords: 64, LineWords: 4}, timing.Default())
}

func TestReadMissThenHit(t *testing.T) {
	c := newTestCache()
	tm := timing.Default()
	if cost := c.Read(0, 0); cost != tm.CacheLineFill {
		t.Fatalf("cold read cost %d, want %d", cost, tm.CacheLineFill)
	}
	if cost := c.Read(0, 0); cost != tm.CacheHit {
		t.Fatalf("warm read cost %d, want %d", cost, tm.CacheHit)
	}
	// Same line, different word: hit.
	if cost := c.Read(0, 3); cost != tm.CacheHit {
		t.Fatalf("same-line read cost %d, want hit", cost)
	}
	// Next line: miss.
	if cost := c.Read(0, 4); cost != tm.CacheLineFill {
		t.Fatalf("next-line read cost %d, want miss", cost)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := newTestCache() // 16 lines
	c.Read(0, 0)
	// A line exactly 16 lines away maps to the same slot.
	c.Read(0, 16*4)
	if cost := c.Read(0, 0); cost != timing.Default().CacheLineFill {
		t.Fatalf("conflict victim still cached (cost %d)", cost)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := newTestCache()
	tm := timing.Default()
	// Write-through miss does not allocate.
	c.Write(0, 0, true)
	if cost := c.Read(0, 0); cost != tm.CacheLineFill {
		t.Fatalf("write-through allocated the line (read cost %d)", cost)
	}
	// After the line is resident, a write-through write hits and the
	// line never becomes dirty, so flush writes nothing back.
	c.Write(0, 0, true)
	if c.Flush() != 0 {
		t.Fatal("write-through line was dirty")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := newTestCache()
	tm := timing.Default()
	c.Write(0, 0, false) // allocate dirty
	// Conflict evicts the dirty line: fill + writeback.
	if cost := c.Write(0, 16*4, false); cost != 2*tm.CacheLineFill {
		t.Fatalf("dirty eviction cost %d, want %d", cost, 2*tm.CacheLineFill)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestSnoopUpdatesLine(t *testing.T) {
	c := newTestCache()
	c.Read(0, 0)
	c.Snoop(0, 1) // same line
	if c.Stats().SnoopHits != 1 {
		t.Fatalf("snoop hits = %d", c.Stats().SnoopHits)
	}
	// Line remains valid: next read is a hit (Dragon-style update,
	// not invalidate).
	if cost := c.Read(0, 0); cost != timing.Default().CacheHit {
		t.Fatalf("post-snoop read cost %d, want hit", cost)
	}
	// Snoop of an absent line is a no-op.
	c.Snoop(5, 0)
	if c.Stats().SnoopHits != 1 {
		t.Fatal("snoop of absent line counted as hit")
	}
}

func TestSnoopCleansDirtyLine(t *testing.T) {
	c := newTestCache()
	c.Write(0, 0, false) // dirty copy-back line
	c.Snoop(0, 0)        // CM wrote memory: memory now matches
	if got := c.Flush(); got != 0 {
		t.Fatalf("flush after snoop wrote back %d cycles", got)
	}
}

func TestFlushInvalidatesAll(t *testing.T) {
	c := newTestCache()
	for off := uint32(0); off < 64; off += 4 {
		c.Read(0, off)
	}
	c.Flush()
	if cost := c.Read(0, 0); cost != timing.Default().CacheLineFill {
		t.Fatal("flush left lines valid")
	}
}

func TestFramesDoNotAlias(t *testing.T) {
	c := New(Config{SizeWords: 1 << 14, LineWords: 4}, timing.Default())
	c.Read(1, 0)
	if cost := c.Read(2, 0); cost != timing.Default().CacheLineFill {
		t.Fatal("different frames aliased to the same tag")
	}
}

func TestHitRatioProperty(t *testing.T) {
	// Property: reading any address twice in a row always hits the
	// second time, for arbitrary frame/offset.
	c := New(Config{SizeWords: 256, LineWords: 4}, timing.Default())
	f := func(frame uint8, off uint16) bool {
		p := memory.PPage(frame)
		o := uint32(off)
		c.Read(p, o)
		return c.Read(p, o) == timing.Default().CacheHit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	c := New(Config{}, timing.Default())
	if len(c.lines) != 8192/4 {
		t.Fatalf("default cache has %d lines", len(c.lines))
	}
}

func TestHitRatioMath(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Fatalf("hit ratio %f", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty stats hit ratio nonzero")
	}
}
