package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"plus/internal/sim"
	"plus/internal/stats"
)

// Format renders the report as a fixed-width table, deterministic for
// a given stream (suitable for golden comparison across shard counts).
func (r *Report) Format() string {
	var b strings.Builder
	status := "clean"
	if len(r.Races) > 0 {
		status = fmt.Sprintf("%d race(s)", len(r.Races))
	}
	fmt.Fprintf(&b, "%s: %s — %d thread(s), %d access(es), %d word(s) (%d sync)",
		r.Name, status, r.Threads, r.Accesses, r.Words, r.SyncWords)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " [TRUNCATED: %d event(s) overwritten — ring too small, result unsound]", r.Dropped)
	}
	b.WriteByte('\n')
	for i := range r.Races {
		race := &r.Races[i]
		fmt.Fprintf(&b, "  race #%d at page %d offset %d\n", i+1, race.Page, race.Off)
		fmt.Fprintf(&b, "    first : %s\n", siteLine(&race.First))
		fmt.Fprintf(&b, "    second: %s\n", siteLine(&race.Second))
		fmt.Fprintf(&b, "    missing sync: %s\n", race.Missing)
	}
	return b.String()
}

func siteLine(s *Site) string {
	return fmt.Sprintf("%-5s by t%d on node %d at cycle %d (value %d)",
		s.Kind, s.Tid, s.Node, s.At, s.Value)
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Marks converts the races to trace annotations — one per access site,
// pinned at the access's cycle — for the Perfetto exporter's
// annotation track (stats.ObservedRun.Marks).
func (r *Report) Marks() []stats.Mark {
	var marks []stats.Mark
	for i := range r.Races {
		race := &r.Races[i]
		for _, s := range []*Site{&race.First, &race.Second} {
			marks = append(marks, stats.Mark{
				Name: fmt.Sprintf("race: %s t%d @ page %d+%d", s.Kind, s.Tid, race.Page, race.Off),
				At:   sim.Cycles(s.At),
				Args: map[string]any{
					"page": race.Page, "off": race.Off,
					"tid": s.Tid, "node": s.Node, "value": s.Value,
					"missing_sync": race.Missing,
				},
			})
		}
	}
	return marks
}
