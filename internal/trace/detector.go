// Package trace turns the structured event stream (internal/stats)
// into a correctness observatory: a vector-clock happens-before race
// detector over the data-access event layer (EvAcc*), in the style of
// Butelle & Coti's race-detection model for coherent distributed
// memory, with ordering edges derived from the PLUS protocol's
// guarantees (fence completion, delayed-operation atomicity at the
// master, per-word write serialization, explicit wake/sleep).
//
// The detector is strictly offline and post-hoc: it consumes the
// merged, deterministically ordered event stream an Observer recorded
// (serial emission order — identical for any shard count) and never
// touches the simulation. See DESIGN.md §15 for the event vocabulary,
// the edge rules, which protocol guarantee each edge encodes, and the
// soundness/completeness limits.
//
// The model in brief:
//
//   - Every word is individually atomic in PLUS (32-bit accesses
//     through the coherence protocol; all writes to a word serialize
//     at its master — general coherence). A "race" therefore never
//     means a torn value; it means two conflicting accesses to an
//     ordinary (data) word unordered by the synchronization order,
//     i.e. a violation of the data-race-free discipline under which
//     PLUS's weak write ordering is transparent (§2.1, §2.3).
//   - A word is a synchronization word if any delayed operation
//     targets it, or any access to it is sync-annotated
//     (Thread.ReadSync/WriteSync — the psync constructs annotate
//     their spin words). Conflicts on synchronization words are not
//     reported; instead they generate the ordering edges.
//   - Each thread T carries a vector clock C_T (its knowledge) and a
//     release clock R_T — the snapshot of C_T at T's last fence
//     completion. R_T is what other threads may learn of T through
//     memory: PLUS only guarantees a write is visible everywhere once
//     a fence covering it has completed.
//   - Release: a write (plain or RMW modification) to a sync word w
//     merges R_T plus the write's own timestamp into w's release
//     record rel[w]. Acquire: a read of w merges rel[w] into the
//     reader's C_T; an RMW on w acquires rel[w] as of its execution
//     at the master, delivered to the issuer at Verify. Wake merges
//     the waker's R_T into the sleeper at Sleep-return.
package trace

import (
	"fmt"
	"sort"

	"plus/internal/coherence"
	"plus/internal/memory"
	"plus/internal/stats"
)

// vclock is a dense vector clock indexed by thread slot.
type vclock []uint32

func (v *vclock) at(i int) uint32 {
	if i < len(*v) {
		return (*v)[i]
	}
	return 0
}

func (v *vclock) grow(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

func (v *vclock) join(o vclock) {
	v.grow(len(o))
	for i, c := range o {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

func (v *vclock) set(i int, c uint32) {
	v.grow(i + 1)
	if c > (*v)[i] {
		(*v)[i] = c
	}
}

func (v vclock) clone() vclock { return append(vclock(nil), v...) }

// Site is one access site of a reported race.
type Site struct {
	Tid   int    `json:"tid"`
	Node  int    `json:"node"`
	Kind  string `json:"kind"` // "read", "write" or "rmw"
	At    uint64 `json:"at"`   // cycle
	Value uint32 `json:"value"`
	Index int    `json:"event"` // index into the analyzed stream
}

// Race is one unsynchronized conflicting pair on an ordinary word.
// First is the earlier access in the deterministic stream order.
type Race struct {
	Page   uint32 `json:"page"`
	Off    uint32 `json:"off"`
	First  Site   `json:"first"`
	Second Site   `json:"second"`
	// Missing names the shortest missing synchronization step: the
	// release (a fence on the first thread) if none covered the first
	// access, otherwise the acquire (a sync chain into the second).
	Missing string `json:"missing"`
}

// Report is one run's race-detection result.
type Report struct {
	Name      string `json:"name"`
	Threads   int    `json:"threads"`
	Accesses  uint64 `json:"accesses"`
	Words     int    `json:"words"`
	SyncWords int    `json:"sync_words"`
	// Dropped counts ring-overwritten events: when nonzero the stream
	// is incomplete and the analysis unsound (size the ring up).
	Dropped uint64 `json:"dropped"`
	Races   []Race `json:"races"`
}

// access is the detector's record of a data access for later pairing.
type access struct {
	tid   int
	slot  int // dense thread slot
	clk   uint32
	node  int
	at    uint64
	value uint32
	index int
	write bool
	rmw   bool
}

func (a access) site() Site {
	kind := "read"
	if a.rmw {
		kind = "rmw"
	} else if a.write {
		kind = "write"
	}
	return Site{Tid: a.tid, Node: a.node, Kind: kind, At: a.at, Value: a.value, Index: a.index}
}

// wordState is the per-(page,offset) detector state.
type wordState struct {
	rel       vclock         // release record (sync words)
	lastWrite *access        // last write (ordinary words)
	readers   map[int]access // last read per thread slot since the last write
}

// thread is one application thread's clocks.
type thread struct {
	c vclock // knowledge
	r vclock // release snapshot (last fence completion)
}

// rmwRec pairs a delayed operation's issue with its master execution.
type rmwRec struct {
	word    uint64
	deposit vclock // issuer's R at issue + the access timestamp
	mutates bool
	acq     vclock // rel[word] snapshot at execution; acquired at Verify
}

// Detector runs the happens-before analysis over one event stream.
type Detector struct {
	name    string
	slots   map[int]int // tid -> dense slot
	tids    []int       // slot -> tid
	threads []*thread
	words   map[uint64]*wordState
	sync    map[uint64]bool
	rmws    map[uint64]*rmwRec // by causal ID
	wake    map[int]vclock     // pending wake joins by tid
	seen    map[raceKey]bool
	report  *Report
}

// raceKey dedups reported pairs: one report per (word, thread pair,
// access kinds) — repeated instances of the same racy pair (a loop)
// collapse to their first occurrence.
type raceKey struct {
	word       uint64
	tidA, tidB int
	wrA, wrB   bool
}

// Analyze runs the detector over a recorded stream. dropped is the
// ring's overwritten-event count (Observer.Overwritten): nonzero means
// the stream is truncated and the result carries the Dropped flag.
func Analyze(name string, events []stats.Event, dropped uint64) *Report {
	d := &Detector{
		name:  name,
		slots: make(map[int]int),
		words: make(map[uint64]*wordState),
		sync:  make(map[uint64]bool),
		rmws:  make(map[uint64]*rmwRec),
		wake:  make(map[int]vclock),
		seen:  make(map[raceKey]bool),
		report: &Report{
			Name:    name,
			Dropped: dropped,
			Races:   []Race{},
		},
	}
	// Pass 1: classify words. A word is a synchronization word when any
	// delayed operation targets it or any access is sync-annotated.
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case stats.EvAccRMW:
			d.sync[e.A] = true
		case stats.EvAccRead, stats.EvAccWrite:
			if e.Sub == 1 {
				d.sync[e.A] = true
			}
		}
	}
	// Pass 2: vector clocks in stream order (the serial emission
	// order, deterministic and identical for any shard count).
	for i := range events {
		d.step(i, &events[i])
	}
	d.report.Threads = len(d.threads)
	d.report.Words = len(d.words)
	for w := range d.words {
		if d.sync[w] {
			d.report.SyncWords++
		}
	}
	// Stable presentation order: by word, then stream position. The
	// discovery order is already deterministic; this sort only groups
	// races by location for the reader.
	sort.SliceStable(d.report.Races, func(a, b int) bool {
		ra, rb := &d.report.Races[a], &d.report.Races[b]
		if ra.Page != rb.Page {
			return ra.Page < rb.Page
		}
		if ra.Off != rb.Off {
			return ra.Off < rb.Off
		}
		return ra.Second.Index < rb.Second.Index
	})
	return d.report
}

// slotFor interns a thread id.
func (d *Detector) slotFor(tid int) int {
	if s, ok := d.slots[tid]; ok {
		return s
	}
	s := len(d.threads)
	d.slots[tid] = s
	d.tids = append(d.tids, tid)
	d.threads = append(d.threads, &thread{})
	return s
}

func (d *Detector) wordFor(w uint64) *wordState {
	ws, ok := d.words[w]
	if !ok {
		ws = &wordState{readers: make(map[int]access)}
		d.words[w] = ws
	}
	return ws
}

// tick advances a thread's own component and returns the new access
// timestamp.
func (d *Detector) tick(slot int) uint32 {
	t := d.threads[slot]
	c := t.c.at(slot) + 1
	t.c.set(slot, c)
	return c
}

func tidOf(b uint64) int    { return int(b >> 32) }
func valOf(b uint64) uint32 { return uint32(b) }

func (d *Detector) step(index int, e *stats.Event) {
	switch e.Kind {
	case stats.EvAccRead:
		tid := tidOf(e.B)
		slot := d.slotFor(tid)
		clk := d.tick(slot)
		d.report.Accesses++
		a := access{tid: tid, slot: slot, clk: clk, node: int(e.Node),
			at: uint64(e.At), value: valOf(e.B), index: index}
		if d.sync[e.A] {
			// Acquire: the read observes the word's committed write
			// history (general coherence serializes every write to the
			// word in the same order at every copy).
			d.threads[slot].c.join(d.wordFor(e.A).rel)
			return
		}
		ws := d.wordFor(e.A)
		d.checkWrite(e.A, ws, a)
		ws.readers[slot] = a

	case stats.EvAccWrite:
		tid := tidOf(e.B)
		slot := d.slotFor(tid)
		clk := d.tick(slot)
		d.report.Accesses++
		a := access{tid: tid, slot: slot, clk: clk, node: int(e.Node),
			at: uint64(e.At), value: valOf(e.B), index: index, write: true}
		ws := d.wordFor(e.A)
		if d.sync[e.A] {
			// Release: publish R_T — everything the writer has fenced,
			// and nothing more. Crucially the write's own timestamp is
			// NOT deposited: PLUS's weak ordering lets writes to
			// different words reorder, so observing the release write
			// does not imply the writer's earlier unfenced writes are
			// visible. (The release write itself needs no ordering
			// record because sync words are exempt from reporting.)
			ws.rel.join(d.threads[slot].r)
			return
		}
		d.checkWrite(e.A, ws, a)
		d.checkReaders(e.A, ws, a)
		w := a
		ws.lastWrite = &w
		for k := range ws.readers {
			delete(ws.readers, k)
		}

	case stats.EvAccRMW:
		tid := tidOf(e.B)
		slot := d.slotFor(tid)
		d.tick(slot)
		d.report.Accesses++
		if e.Cause == 0 {
			return // untraced issue (windowed stream); no pairing
		}
		// The deposit is R_T only — like a release write, a delayed
		// operation publishes the issuer's fenced knowledge, not its
		// program order (weak ordering, see the EvAccWrite case).
		d.rmws[e.Cause] = &rmwRec{
			word:    e.A,
			deposit: d.threads[slot].r.clone(),
			mutates: !coherence.Op(e.Sub).IsRead(),
		}

	case stats.EvRMWExec:
		// Master-side serialization point: the operation joins the
		// word's release record (mutating ops deposit; every op
		// snapshots what it observed, delivered at Verify).
		rec, ok := d.rmws[e.Cause]
		if !ok {
			return
		}
		ws := d.wordFor(rec.word)
		if rec.mutates {
			ws.rel.join(rec.deposit)
		}
		rec.acq = ws.rel.clone()

	case stats.EvAccVerify:
		tid := int(e.A)
		slot := d.slotFor(tid)
		if rec, ok := d.rmws[e.Cause]; ok && rec.acq != nil {
			d.threads[slot].c.join(rec.acq)
		}

	case stats.EvAccFence:
		slot := d.slotFor(int(e.A))
		t := d.threads[slot]
		t.r = t.c.clone()

	case stats.EvAccWake:
		// The waker's released knowledge transfers to the sleeper —
		// and only that: Wake does not flush the waker's outstanding
		// writes, so un-fenced knowledge must not transfer.
		slot := d.slotFor(int(e.A))
		target := int(e.B)
		vc := d.wake[target]
		vc.join(d.threads[slot].r)
		d.wake[target] = vc

	case stats.EvAccSleep:
		tid := int(e.A)
		slot := d.slotFor(tid)
		if vc, ok := d.wake[tid]; ok {
			d.threads[slot].c.join(vc)
		}
	}
}

// checkWrite reports a race between the word's last write and access a.
func (d *Detector) checkWrite(word uint64, ws *wordState, a access) {
	lw := ws.lastWrite
	if lw == nil || lw.slot == a.slot {
		return
	}
	if lw.clk <= d.threads[a.slot].c.at(lw.slot) {
		return // ordered
	}
	d.record(word, *lw, a)
}

// checkReaders reports races between outstanding reads and write a.
func (d *Detector) checkReaders(word uint64, ws *wordState, a access) {
	// Deterministic order over the map: by slot.
	slots := make([]int, 0, len(ws.readers))
	for s := range ws.readers {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		r := ws.readers[s]
		if r.slot == a.slot {
			continue
		}
		if r.clk <= d.threads[a.slot].c.at(r.slot) {
			continue
		}
		d.record(word, r, a)
	}
}

// record files one race, deduplicated by (word, thread pair, kinds),
// with the shortest-missing-sync diagnosis.
func (d *Detector) record(word uint64, first, second access) {
	key := raceKey{word: word, tidA: first.tid, tidB: second.tid,
		wrA: first.write, wrB: second.write}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	missing := fmt.Sprintf(
		"no fence on t%d after its %s: the access was never released (§2.3 — a write is only globally visible once a covering fence completes)",
		first.tid, first.site().Kind)
	if first.clk <= d.threads[first.slot].r.at(first.slot) {
		missing = fmt.Sprintf(
			"released by t%d's fence but never acquired by t%d: no sync chain (RMW verify, sync-read of a released word, or wake) orders t%d after it",
			first.tid, second.tid, second.tid)
	}
	va := memory.VAddr(uint32(word))
	d.report.Races = append(d.report.Races, Race{
		Page:    uint32(va.Page()),
		Off:     va.Offset(),
		First:   first.site(),
		Second:  second.site(),
		Missing: missing,
	})
}
