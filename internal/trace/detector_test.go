package trace

import (
	"strings"
	"testing"

	"plus/internal/coherence"
	"plus/internal/stats"
)

// ev builds a synthetic stream event; At is irrelevant to the detector
// (only stream order matters), so it stays zero.
func ev(kind stats.EventKind, node int, sub uint8, cause, a, b uint64) stats.Event {
	return stats.Event{Kind: kind, Node: int16(node), Sub: sub, Cause: cause, A: a, B: b}
}

func tb(tid int, v uint32) uint64 { return uint64(tid)<<32 | uint64(v) }

// TestRacyPairFlagged: an unfenced write on one thread and a read on
// another, no synchronization at all — flagged, with both sites and
// the missing-release diagnosis, in either stream order.
func TestRacyPairFlagged(t *testing.T) {
	const x = 2048 // page 2, offset 0
	writeFirst := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 7)),
		ev(stats.EvAccRead, 1, 0, 0, x, tb(1, 7)),
	}
	readFirst := []stats.Event{
		ev(stats.EvAccRead, 1, 0, 0, x, tb(1, 0)),
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 7)),
	}
	for name, events := range map[string][]stats.Event{"write-first": writeFirst, "read-first": readFirst} {
		r := Analyze(name, events, 0)
		if len(r.Races) != 1 {
			t.Fatalf("%s: got %d races, want 1", name, len(r.Races))
		}
		race := r.Races[0]
		if race.Page != 2 || race.Off != 0 {
			t.Errorf("%s: race at page %d off %d, want 2/0", name, race.Page, race.Off)
		}
		kinds := race.First.Kind + "/" + race.Second.Kind
		if kinds != "write/read" && kinds != "read/write" {
			t.Errorf("%s: kinds %s", name, kinds)
		}
		if race.First.Tid == race.Second.Tid {
			t.Errorf("%s: same-thread race reported", name)
		}
		if !strings.Contains(race.Missing, "no fence") {
			t.Errorf("%s: diagnosis %q, want missing-release", name, race.Missing)
		}
	}
}

// TestMissingAcquireDiagnosis: the writer fences (release done) but the
// reader never synchronizes — still a race, diagnosed as the missing
// acquire.
func TestMissingAcquireDiagnosis(t *testing.T) {
	const x = 100
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 1)),
		ev(stats.EvAccFence, 0, 0, 0, 0, 0),
		ev(stats.EvAccRead, 1, 0, 0, x, tb(1, 1)),
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 1 {
		t.Fatalf("got %d races, want 1", len(r.Races))
	}
	if !strings.Contains(r.Races[0].Missing, "never acquired") {
		t.Errorf("diagnosis %q, want missing-acquire", r.Races[0].Missing)
	}
}

// TestReleaseAcquireClean: the §3.1 release idiom — write data, fence,
// sync-write a flag; the reader sync-reads the flag then reads the
// data. No race.
func TestReleaseAcquireClean(t *testing.T) {
	const data, flag = 100, 200
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 42)),
		ev(stats.EvAccFence, 0, 0, 0, 0, 0),
		ev(stats.EvAccWrite, 0, 1, 0, flag, tb(0, 1)), // sync-annotated release
		ev(stats.EvAccRead, 1, 1, 0, flag, tb(1, 1)),  // sync-annotated acquire
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 42)),
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 0 {
		t.Fatalf("got %d races, want 0: %+v", len(r.Races), r.Races)
	}
	if r.SyncWords != 1 {
		t.Errorf("SyncWords = %d, want 1", r.SyncWords)
	}
	// Without the fence the same shape must be flagged: the release
	// write publishes only fenced knowledge.
	unfenced := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 42)),
		ev(stats.EvAccWrite, 0, 1, 0, flag, tb(0, 1)),
		ev(stats.EvAccRead, 1, 1, 0, flag, tb(1, 1)),
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 42)),
	}
	if r := Analyze("t", unfenced, 0); len(r.Races) != 1 {
		t.Fatalf("unfenced: got %d races, want 1", len(r.Races))
	}
}

// TestRMWChainClean: the producer fences then fadds a flag; the
// consumer's own fadd executes later at the master and its Verify
// acquires the producer's release. No race on the data word.
func TestRMWChainClean(t *testing.T) {
	const data, flag = 100, 200
	fadd := uint8(coherence.OpFadd)
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 42)),
		ev(stats.EvAccFence, 0, 0, 0, 0, 0),
		ev(stats.EvAccRMW, 0, fadd, 11, flag, tb(0, 1)), // producer fadd issue
		ev(stats.EvRMWExec, 0, fadd, 11, 0, 1),          // exec at master
		ev(stats.EvAccRMW, 1, fadd, 22, flag, tb(1, 0)), // consumer fadd issue
		ev(stats.EvRMWExec, 0, fadd, 22, 0, 1),          // serialized after producer's
		ev(stats.EvAccVerify, 1, 0, 22, 1, 1),           // consumer sees 1 → acquires
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 42)),
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 0 {
		t.Fatalf("got %d races, want 0: %+v", len(r.Races), r.Races)
	}
}

// TestDelayedReadDoesNotRelease: a delayed read (OpDelayedRead) must
// not deposit its issuer's clocks into the word — it mutates nothing,
// so a later acquirer learns nothing from it.
func TestDelayedReadDoesNotRelease(t *testing.T) {
	const data, flag = 100, 200
	dread := uint8(coherence.OpDelayedRead)
	fadd := uint8(coherence.OpFadd)
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 42)),
		ev(stats.EvAccFence, 0, 0, 0, 0, 0),
		ev(stats.EvAccRMW, 0, dread, 11, flag, 0), // read-only op on the flag
		ev(stats.EvRMWExec, 0, dread, 11, 0, 0),
		ev(stats.EvAccRMW, 1, fadd, 22, flag, tb(1, 0)),
		ev(stats.EvRMWExec, 0, fadd, 22, 0, 1),
		ev(stats.EvAccVerify, 1, 0, 22, 0, 0),
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 42)),
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 1 {
		t.Fatalf("got %d races, want 1 (delayed read must not release)", len(r.Races))
	}
}

// TestWakeTransfersReleasedKnowledge: fence + wake orders the sleeper
// after the waker's fenced writes; without the fence it does not.
func TestWakeTransfersReleasedKnowledge(t *testing.T) {
	const data = 100
	fenced := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 1)),
		ev(stats.EvAccFence, 0, 0, 0, 0, 0),
		ev(stats.EvAccWake, 0, 0, 0, 0, 1), // t0 wakes t1
		ev(stats.EvAccSleep, 1, 0, 0, 1, 0),
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 1)),
	}
	if r := Analyze("t", fenced, 0); len(r.Races) != 0 {
		t.Fatalf("fenced: got %d races, want 0: %+v", len(r.Races), r.Races)
	}
	unfenced := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, data, tb(0, 1)),
		ev(stats.EvAccWake, 0, 0, 0, 0, 1),
		ev(stats.EvAccSleep, 1, 0, 0, 1, 0),
		ev(stats.EvAccRead, 1, 0, 0, data, tb(1, 1)),
	}
	if r := Analyze("t", unfenced, 0); len(r.Races) != 1 {
		t.Fatalf("unfenced: got %d races, want 1", len(r.Races))
	}
}

// TestSyncWordExempt: plain accesses to a word that is RMW-targeted
// anywhere in the stream are synchronization traffic (spin loops), not
// reportable data races.
func TestSyncWordExempt(t *testing.T) {
	const w = 300
	fadd := uint8(coherence.OpFadd)
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, w, tb(0, 1)),   // plain write...
		ev(stats.EvAccRead, 1, 0, 0, w, tb(1, 1)),    // ...and plain read,
		ev(stats.EvAccRMW, 2, fadd, 33, w, tb(2, 1)), // but the word is RMW-targeted
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 0 {
		t.Fatalf("got %d races on a sync word, want 0", len(r.Races))
	}
}

// TestDedup: a racy pair hammered in a loop is reported once.
func TestDedup(t *testing.T) {
	const x = 100
	var events []stats.Event
	for i := 0; i < 10; i++ {
		events = append(events,
			ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, uint32(i))),
			ev(stats.EvAccRead, 1, 0, 0, x, tb(1, uint32(i))),
		)
	}
	r := Analyze("t", events, 0)
	// write/read and read/write orderings are distinct pairs; the loop
	// produces both but each only once.
	if len(r.Races) > 2 {
		t.Fatalf("got %d races, want ≤2 after dedup", len(r.Races))
	}
}

// TestWriteWriteRace: two unsynchronized writers.
func TestWriteWriteRace(t *testing.T) {
	const x = 100
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 1)),
		ev(stats.EvAccWrite, 1, 0, 0, x, tb(1, 2)),
	}
	r := Analyze("t", events, 0)
	if len(r.Races) != 1 {
		t.Fatalf("got %d races, want 1", len(r.Races))
	}
	if r.Races[0].First.Kind != "write" || r.Races[0].Second.Kind != "write" {
		t.Errorf("kinds %s/%s, want write/write", r.Races[0].First.Kind, r.Races[0].Second.Kind)
	}
}

// TestSameThreadClean: program order alone orders same-thread accesses.
func TestSameThreadClean(t *testing.T) {
	const x = 100
	events := []stats.Event{
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 1)),
		ev(stats.EvAccRead, 0, 0, 0, x, tb(0, 1)),
		ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, 2)),
	}
	if r := Analyze("t", events, 0); len(r.Races) != 0 {
		t.Fatalf("got %d races, want 0", len(r.Races))
	}
}

// TestDroppedPropagates: ring overwrites surface on the report.
func TestDroppedPropagates(t *testing.T) {
	r := Analyze("t", nil, 17)
	if r.Dropped != 17 {
		t.Fatalf("Dropped = %d, want 17", r.Dropped)
	}
}

// TestReportDeterminism: the same stream analyzes to the same report.
func TestReportDeterminism(t *testing.T) {
	const x, y = 100, 1124
	var events []stats.Event
	for i := 0; i < 4; i++ {
		events = append(events,
			ev(stats.EvAccWrite, 0, 0, 0, x, tb(0, uint32(i))),
			ev(stats.EvAccRead, 1, 0, 0, x, tb(1, uint32(i))),
			ev(stats.EvAccWrite, 2, 0, 0, y, tb(2, uint32(i))),
			ev(stats.EvAccWrite, 3, 0, 0, y, tb(3, uint32(i))),
		)
	}
	a := Analyze("t", events, 0).Format()
	for i := 0; i < 3; i++ {
		if b := Analyze("t", events, 0).Format(); a != b {
			t.Fatalf("nondeterministic report:\n%s\nvs\n%s", a, b)
		}
	}
}
