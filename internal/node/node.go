// Package node defines the machine-wide node identifier. It is a leaf
// package with no dependencies so that both the interconnect (mesh) and
// the address types (memory) can name nodes without importing each
// other: the mesh's typed wire message carries memory-typed payload
// fields, while memory's global page addresses carry a node.
package node

// ID identifies a mesh node. IDs are assigned row-major by the mesh:
// id = y*Width + x. The canonical alias for application code is
// mesh.NodeID.
type ID int
