package proc

import (
	"math"
	"math/rand"
	"testing"
)

// TestArrivalsDeterministic pins the schedule for a fixed seed.
func TestArrivalsDeterministic(t *testing.T) {
	a := NewArrivals(rand.New(rand.NewSource(3)), 250)
	b := NewArrivals(rand.New(rand.NewSource(3)), 250)
	prev := a.Next()
	if prev != b.Next() {
		t.Fatal("same seed, different first arrival")
	}
	for i := 0; i < 2000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("draw %d: %d vs %d from the same seed", i, x, y)
		}
		if x < prev {
			t.Fatalf("draw %d: arrival %d before predecessor %d", i, x, prev)
		}
		prev = x
	}
}

// TestArrivalsMean checks the empirical gap converges on the
// configured mean (law of large numbers; 50k draws, 5% slack).
func TestArrivalsMean(t *testing.T) {
	const mean = 400.0
	a := NewArrivals(rand.New(rand.NewSource(9)), mean)
	const n = 50000
	var last float64
	for i := 0; i < n; i++ {
		last = float64(a.Next())
	}
	got := last / n
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("empirical mean gap %.1f, want %.0f ± 5%%", got, mean)
	}
}

func TestArrivalsRejectsBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero mean accepted")
		}
	}()
	NewArrivals(rand.New(rand.NewSource(1)), 0)
}
