// Open-loop arrival schedules. A closed-loop workload (every app
// before kvserve) issues its next operation as soon as the previous
// one finishes, so the offered load adapts to the system and tail
// latency is invisible. A serving workload is open-loop: requests
// arrive on a schedule fixed before the run, the frontend sleeps
// until each arrival, and an op's latency is measured from its
// *scheduled* arrival to its completion — so a backlog behind a slow
// op correctly inflates the tail instead of throttling the source.
package proc

import (
	"math/rand"

	"plus/internal/sim"
)

// Arrivals generates a deterministic Poisson arrival schedule:
// exponential inter-arrival gaps with the given mean (in cycles),
// drawn from a seeded rng owned by the caller. One per frontend
// thread; the schedule depends only on the seed and draw count, never
// on simulated time, which is what keeps open-loop runs byte-identical
// across shard counts.
type Arrivals struct {
	rng  *rand.Rand
	mean float64
	at   float64
}

// NewArrivals builds a schedule starting at cycle 0 with the given
// mean inter-arrival gap. mean must be positive.
func NewArrivals(rng *rand.Rand, mean float64) *Arrivals {
	if mean <= 0 {
		panic("proc: arrival schedule needs a positive mean gap")
	}
	return &Arrivals{rng: rng, mean: mean}
}

// Next returns the next arrival timestamp. Timestamps are
// nondecreasing and strictly advance by an Exp(mean) gap per call.
func (a *Arrivals) Next() sim.Cycles {
	a.at += a.mean * a.rng.ExpFloat64()
	return sim.Cycles(a.at)
}

// IdleUntil advances the thread to cycle `at` without accruing useful
// processor time (the wait is the frontend pacing itself, not work).
// If `at` is already past — the frontend is running behind its
// arrival schedule — it returns immediately with the lateness;
// otherwise it returns 0. Pure clock advance: no Sleep/Wake, so it is
// safe on sharded engines and byte-identical for every shard count.
func (t *Thread) IdleUntil(at sim.Cycles) sim.Cycles {
	now := t.proc.eng.Now()
	if at <= now {
		return now - at
	}
	t.BeginIdle()
	t.consume(at - now)
	t.EndIdle()
	return 0
}
