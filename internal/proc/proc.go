// Package proc models the PLUS node processor (an M88000 in the 1990
// implementation) executing the threads of the single multithreaded
// application process.
//
// Application code is ordinary Go run as a simulation coroutine; every
// shared-memory operation goes through the node's coherence manager
// and charges the paper's cycle costs — the execution-driven
// methodology of §2.5. A processor runs one thread at a time; in the
// default mode a thread that blocks leaves the processor idle, while
// in SwitchOnSync mode (the context-switching alternative evaluated in
// Figure 3-1) the processor switches to another ready thread whenever
// a delayed operation is issued or the running thread blocks, paying a
// configurable switch cost.
package proc

import (
	"fmt"

	"plus/internal/coherence"
	"plus/internal/kernel"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/mmu"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// Mode selects the processor's reaction to latency.
type Mode int

const (
	// RunToBlock is the PLUS design point: the processor stays with
	// one thread; delayed operations hide latency, blocking operations
	// stall the processor.
	RunToBlock Mode = iota
	// SwitchOnSync simulates the context-switching alternative of
	// §3.3/§3.4: the processor switches threads every time a
	// synchronization (delayed) operation is issued, and whenever the
	// running thread blocks, paying SwitchCost cycles per dispatch.
	SwitchOnSync
)

// Proc is one node's processor: a scheduler over the node's threads.
type Proc struct {
	node  mesh.NodeID
	eng   *sim.Engine
	cm    *coherence.CM
	kern  *kernel.Kernel
	table *mmu.Table
	tm    timing.Timing
	st    *stats.Machine

	mode       Mode
	switchCost sim.Cycles
	// fenceOnSync makes every delayed-operation issue wait for all of
	// the node's earlier writes first — the DASH-style "strong ordering
	// at synchronization time" that PLUS's explicit fence avoids (§2.1,
	// §2.3). Used by the ablation benches.
	fenceOnSync bool

	threads []*Thread
	ready   []*Thread
	current *Thread

	// down marks the processor crashed (fault injection): no thread is
	// dispatched and any running thread halts at its next memory
	// reference, parking on halted until Resume. In-progress pure
	// computation is allowed to finish — the simulated crash takes
	// effect at the processor's next interaction with the memory
	// system, which is the first point the coroutine yields anyway.
	down   bool
	halted []*Thread

	// net routes cross-shard Wakes through the mesh's mailbox path when
	// waker and sleeper live on different shard engines. Nil in
	// unit-test harnesses that never cross shards.
	net *mesh.Mesh
}

// New builds a processor for node.
func New(node mesh.NodeID, eng *sim.Engine, cm *coherence.CM, kern *kernel.Kernel, table *mmu.Table, tm timing.Timing, st *stats.Machine, mode Mode, switchCost sim.Cycles) *Proc {
	return &Proc{
		node: node, eng: eng, cm: cm, kern: kern, table: table,
		tm: tm, st: st, mode: mode, switchCost: switchCost,
	}
}

// SetFenceOnSync enables the implicit-fence-before-every-sync ablation.
func (p *Proc) SetFenceOnSync(v bool) { p.fenceOnSync = v }

// SetNet gives the processor the mesh, enabling cross-shard Wake
// delivery through the mesh's cross-shard mailboxes.
func (p *Proc) SetNet(net *mesh.Mesh) { p.net = net }

// Node returns the mesh node this processor occupies.
func (p *Proc) Node() mesh.NodeID { return p.node }

// Threads returns the threads spawned on this processor.
func (p *Proc) Threads() []*Thread { return p.threads }

func (p *Proc) nstat() *stats.Node { return &p.st.Nodes[p.node] }

// Observer returns the structured-event observer this processor's
// node emits to (the shard child on a sharded machine), or nil when
// tracing is off.
func (p *Proc) Observer() *stats.Observer { return p.st.Observer() }

// acc returns the observer when the data-access event layer is on —
// the single gate every EvAcc* emission in this package checks.
func (p *Proc) acc() *stats.Observer {
	if o := p.st.Observer(); o != nil && o.DataAccess() {
		return o
	}
	return nil
}

// tb packs a thread id above a 32-bit payload word — the B payload of
// every data-access event.
func tb(tid int, v memory.Word) uint64 { return uint64(tid)<<32 | uint64(uint32(v)) }

// tstate is a thread's scheduling state.
type tstate int

const (
	tReady    tstate = iota // runnable, waiting for the processor
	tRunning                // owns the processor
	tBlocked                // waiting for a memory operation
	tSleeping               // waiting for an explicit Wake
	tDone                   // body returned
)

// Thread is one application thread, bound to its processor for life
// (PLUS software pins threads; migration is by memory, not threads).
type Thread struct {
	id    int
	name  string
	proc  *Proc
	co    *sim.Coroutine
	state tstate
	// wakePending absorbs a Wake that races ahead of Sleep, the
	// classic lost-wakeup guard.
	wakePending bool
	// accSync marks the next Read/Write as a synchronization access
	// (set by ReadSync/WriteSync, consumed and cleared by Read/Write).
	// It only annotates the emitted data-access event — timing and
	// protocol behavior are identical to a plain access.
	accSync bool
	// idleDepth > 0 suspends useful-time accounting: operations issued
	// while polling for work are real processor activity but not the
	// "useful processor time" of the paper's utilization metric.
	idleDepth int

	// Reusable completion hooks, created once at Spawn. A thread has at
	// most one memory operation outstanding (it parks until completion),
	// so the hooks and their result fields can be shared by every
	// Read/Write/Fence/Issue/Verify — the per-operation closure the old
	// code allocated is gone from the hot path.
	opCompleted bool
	readVal     memory.Word
	issuedSlot  int
	opDone      func()
	readDone    func(memory.Word)
	issuedDone  func(int)
}

// Handle identifies an in-flight delayed operation: the address of a
// location in the delayed-operations cache (a slot index here).
type Handle struct {
	slot int
	node mesh.NodeID
}

// Spawn creates a thread on this processor running body. It becomes
// runnable immediately (dispatched as soon as the processor is free).
// id must be unique machine-wide; name is diagnostic.
func (p *Proc) Spawn(id int, name string, body func(*Thread)) *Thread {
	t := &Thread{id: id, name: name, proc: p, state: tReady}
	t.opDone = func() {
		t.opCompleted = true
		if t.state == tBlocked {
			p.unblock(t)
		}
	}
	t.readDone = func(w memory.Word) { t.readVal = w; t.opDone() }
	t.issuedDone = func(slot int) { t.issuedSlot = slot; t.opDone() }
	t.co = sim.NewCoroutine(p.eng, name, func(*sim.Coroutine) {
		body(t)
		// A thread may exit with writes still resting in the combine
		// buffer (write combining, coherence/batch.go); flush so they
		// propagate and the machine can quiesce. No-op when combining
		// is off.
		p.cm.FlushBatch()
		if o := p.acc(); o != nil {
			o.Emit(stats.EvAccExit, int(p.node), 0, 0, uint64(t.id), 0)
		}
		t.state = tDone
		p.current = nil
		p.dispatchNext()
	})
	p.threads = append(p.threads, t)
	if o := p.acc(); o != nil {
		o.Emit(stats.EvAccSpawn, int(p.node), 0, 0, uint64(t.id), 0)
	}
	if p.current == nil {
		p.dispatch(t)
	} else {
		p.ready = append(p.ready, t)
	}
	return t
}

// dispatch gives the processor to t, charging the context-switch cost
// in SwitchOnSync mode.
//
// The wake event is drawn under this processor's own lane, whatever
// activity called here (machine setup in Spawn, a same-shard Wake from
// another node's slice): a thread's slice inherits its lane from its
// wake event, so this single choke point guarantees every thread runs
// — and draws tie-break keys — as its own node's activity, never under
// the engine-local NoLane counter, which is what keeps per-lane draw
// sequences identical for every shard count. The caller's lane is
// restored around the draw.
func (p *Proc) dispatch(t *Thread) {
	p.current = t
	var cost sim.Cycles
	if p.mode == SwitchOnSync {
		cost = p.switchCost
		p.nstat().CtxSwitches++
	}
	if o := p.st.Observer(); o != nil {
		o.Emit(stats.EvDispatch, int(p.node), 0, 0, uint64(t.id), uint64(cost))
	}
	prev := p.eng.Lane()
	p.eng.SetLane(int32(p.node))
	t.co.WakeAfter(cost)
	p.eng.SetLane(prev)
}

// dispatchNext runs the next ready thread, or idles the processor.
// A crashed processor dispatches nothing until Resume.
func (p *Proc) dispatchNext() {
	if p.down || len(p.ready) == 0 {
		return
	}
	t := p.ready[0]
	p.ready = p.ready[1:]
	p.dispatch(t)
}

// unblock makes a blocked or sleeping thread runnable. Called from
// event context (operation completions) or another thread's slice
// (Wake). While the processor is down the thread only queues; Resume
// dispatches it.
func (p *Proc) unblock(t *Thread) {
	t.state = tReady
	if p.current == nil && !p.down {
		p.dispatch(t)
	} else {
		p.ready = append(p.ready, t)
	}
}

// Pause crashes the processor: nothing dispatches until Resume, and
// every thread halts at its next memory reference (haltIfDown). The
// core run loop calls this at a scripted CrashEvent's start, in event
// context, so no thread is mid-slice.
func (p *Proc) Pause() { p.down = true }

// Down reports whether the processor is crashed.
func (p *Proc) Down() bool { return p.down }

// Resume restarts a crashed processor: threads halted mid-reference
// and any completions queued during the outage become runnable again.
func (p *Proc) Resume() {
	p.down = false
	halted := p.halted
	p.halted = p.halted[:0]
	for _, t := range halted {
		p.unblock(t)
	}
	if p.current == nil {
		p.dispatchNext()
	}
}

// WakeThread delivers an explicit wakeup (the wake_up() of the
// paper's Table 3-2 lock). A wake of a thread that is not sleeping is
// remembered and absorbed by its next Sleep.
func (p *Proc) WakeThread(t *Thread) {
	if t.state == tSleeping {
		p.unblock(t)
	} else {
		t.wakePending = true
	}
}

// evWake is the mailbox event kind for a cross-shard Wake; data is the
// target *Thread.
const evWake = 1

// HandleEvent delivers a cross-shard Wake buffered by the mesh's
// mailbox path. The dispatch draws keys under this node's lane, like
// every other activity of the node.
func (p *Proc) HandleEvent(kind int, data any) {
	if kind != evWake {
		panic(fmt.Sprintf("proc: unknown event kind %d", kind))
	}
	prev := p.eng.Lane()
	p.eng.SetLane(int32(p.node))
	p.WakeThread(data.(*Thread))
	p.eng.SetLane(prev)
}

// --- Thread API --------------------------------------------------------

// ID returns the machine-wide thread identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the diagnostic name.
func (t *Thread) Name() string { return t.name }

// Node returns the mesh node the thread runs on.
func (t *Thread) Node() mesh.NodeID { return t.proc.node }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.state == tDone }

// Now returns the current virtual time in cycles.
func (t *Thread) Now() sim.Cycles { return t.proc.eng.Now() }

// consume charges c cycles of useful processor time (computation or
// instruction issue) — the numerator of the paper's utilization.
// Inside a BeginIdle/EndIdle bracket the cycles pass but do not count
// as useful.
func (t *Thread) consume(c sim.Cycles) {
	if c == 0 {
		return
	}
	if t.idleDepth == 0 {
		t.proc.nstat().BusyCycles += c
	}
	t.co.WaitCycles(c)
}

// BeginIdle suspends useful-time accounting (polling for work); pairs
// with EndIdle. Nesting is allowed.
func (t *Thread) BeginIdle() { t.idleDepth++ }

// EndIdle resumes useful-time accounting.
func (t *Thread) EndIdle() {
	if t.idleDepth == 0 {
		panic("proc: EndIdle without BeginIdle")
	}
	t.idleDepth--
}

// overhead charges c cycles that are neither useful work nor a stall
// (page-fault handling).
func (t *Thread) overhead(c sim.Cycles) {
	if c == 0 {
		return
	}
	t.co.WaitCycles(c)
}

// waitOp parks the thread until its completion hook fires. Callers
// clear t.opCompleted, start the operation with one of the reusable
// hooks (t.opDone / t.readDone / t.issuedDone) as the callback — which
// may fire synchronously — and then waitOp. It returns the cycles
// spent parked. class is the stall class (stats.StallRead etc.) the
// park is recorded under when an observer is attached; an operation
// that completed synchronously records nothing.
func (t *Thread) waitOp(class uint8) sim.Cycles {
	if t.opCompleted {
		return 0
	}
	began := t.proc.eng.Now()
	o := t.proc.st.Observer()
	if o != nil {
		o.Emit(stats.EvStallBegin, int(t.proc.node), class, 0, uint64(t.id), 0)
	}
	t.state = tBlocked
	t.proc.current = nil
	t.proc.dispatchNext()
	t.co.ParkInline()
	t.state = tRunning
	stalled := t.proc.eng.Now() - began
	if o != nil {
		o.Emit(stats.EvStallEnd, int(t.proc.node), class, 0, uint64(t.id), uint64(stalled))
	}
	return stalled
}

// yield requeues the thread behind its processor's ready list — the
// SwitchOnSync context switch after issuing a synchronization
// operation. When the thread is its processor's only runnable thread
// the "switch" re-dispatches it immediately, and if nothing else is
// due within the switch cost the whole dispatch collapses to a direct
// clock advance: same charge, same schedule, no wake event and no
// goroutine handoff. (Skipped with an observer attached so the
// EvDispatch record is never lost.)
func (t *Thread) yield() {
	p := t.proc
	if len(p.ready) == 0 && p.st.Observer() == nil {
		var cost sim.Cycles
		if p.mode == SwitchOnSync {
			cost = p.switchCost
		}
		if p.eng.AdvanceIf(cost) {
			if p.mode == SwitchOnSync {
				p.nstat().CtxSwitches++
			}
			return
		}
	}
	t.state = tReady
	p.ready = append(p.ready, t)
	p.current = nil
	p.dispatchNext()
	t.co.ParkInline()
	t.state = tRunning
}

// haltIfDown parks the thread while its processor is crashed. Every
// memory-system entry point calls it first, so a thread that was
// computing when the crash hit stops at its next reference and stays
// parked until Resume unblocks it. The loop re-checks after waking in
// case a second scripted outage begins before the thread runs.
func (t *Thread) haltIfDown() {
	p := t.proc
	for p.down {
		p.halted = append(p.halted, t)
		t.state = tBlocked
		p.current = nil
		p.dispatchNext()
		t.co.ParkInline()
		t.state = tRunning
	}
}

// translate converts a virtual address to the global physical address
// of this node's chosen copy, filling the page table lazily (§2.4) and
// feeding the hardware remote-reference counters.
func (t *Thread) translate(va memory.VAddr) coherence.GAddr {
	p := t.proc
	vp := va.Page()
	g, tlbHit, ok := p.table.Translate(vp)
	switch {
	case tlbHit:
		// Free: translation overlaps the access in hardware.
	case ok:
		t.overhead(p.tm.TLBRefill)
	default:
		t.overhead(p.tm.PageFault)
		resolved, err := p.kern.Resolve(p.node, vp)
		if err != nil {
			panic(fmt.Sprintf("proc: thread %q: %v", t.name, err))
		}
		p.table.Install(vp, resolved)
		p.nstat().PageFaults++
		p.table.Faults++
		g = resolved
	}
	if g.Node != p.node {
		p.kern.NoteRemoteRef(p.node, vp)
	}
	return coherence.At(g, va.Offset())
}

// Compute charges c cycles of application computation.
func (t *Thread) Compute(c sim.Cycles) { t.consume(c) }

// Read performs a coherent read of the word at va. Local reads cost
// the cache model's time; remote reads cost 32 cycles plus the network
// round trip; a read of a location with a write pending from this node
// blocks until the write completes.
func (t *Thread) Read(va memory.VAddr) memory.Word {
	sync := t.accSync
	t.accSync = false
	t.haltIfDown()
	g := t.translate(va)
	t.opCompleted = false
	// Fast path: with no other runnable thread to dispatch during the
	// wait, a local read whose latency window contains no other event
	// completes in place (direct clock advance, same schedule).
	v, elapsed, fast := t.proc.cm.ReadFast(g, t.readDone, len(t.proc.ready) == 0)
	cause := t.proc.cm.LastCause()
	if !fast {
		elapsed = t.waitOp(stats.StallRead)
		v = t.readVal
	}
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccRead, int(t.proc.node), accSub(sync), cause, uint64(va), tb(t.id, v))
	}
	// Accounting: an uncontended local access is useful memory time; a
	// remote or write-blocked read is busy for the issue overhead and
	// stalled for the remainder.
	if elapsed <= t.proc.tm.CacheLineFill {
		t.proc.nstat().BusyCycles += elapsed
	} else {
		t.proc.nstat().BusyCycles += t.proc.tm.RemoteReadOverhead
		t.proc.nstat().ReadStall += elapsed - t.proc.tm.RemoteReadOverhead
		// Observed exactly where ReadStall accrues, so the histogram's
		// sum equals ReadStall + Count·RemoteReadOverhead by
		// construction (the acceptance cross-check).
		if o := t.proc.st.Observer(); o != nil {
			o.Metrics.RemoteRead.Observe(uint64(elapsed))
		}
	}
	return v
}

// Write issues a coherent, non-blocking write of v to va. The write
// propagates to every copy in the background; the processor stalls
// only when the pending-writes cache is full.
func (t *Thread) Write(va memory.VAddr, v memory.Word) {
	sync := t.accSync
	t.accSync = false
	t.haltIfDown()
	g := t.translate(va)
	t.opCompleted = false
	t.proc.cm.Write(g, v, t.opDone)
	cause := t.proc.cm.LastCause()
	t.proc.nstat().WriteStall += t.waitOp(stats.StallWrite)
	t.consume(t.proc.tm.WriteIssue)
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccWrite, int(t.proc.node), accSub(sync), cause, uint64(va), tb(t.id, v))
	}
}

// accSub maps the sync-annotation flag to the EvAccRead/EvAccWrite Sub
// code (1 = synchronization access).
func accSub(sync bool) uint8 {
	if sync {
		return 1
	}
	return 0
}

// ReadSync is Read with the access annotated as a synchronization read
// in the data-access event stream (Sub = 1): a spin-loop or flag read
// that intentionally polls a word released by Fence + WriteSync. The
// psync constructs use it for their internal spin words; timing and
// protocol behavior are identical to Read.
func (t *Thread) ReadSync(va memory.VAddr) memory.Word {
	t.accSync = true
	return t.Read(va)
}

// WriteSync is Write annotated as a synchronization (release) write —
// the `Fence(); Write(w, v)` publication idiom of §3.1, as in the
// barrier's generation flip or the spin lock's release. Identical to
// Write except for the event annotation.
func (t *Thread) WriteSync(va memory.VAddr, v memory.Word) {
	t.accSync = true
	t.Write(va, v)
}

// Fence blocks until all of this node's earlier writes (including
// delayed-operation modifications and any writes resting in the
// write-combine buffer, which it flushes) have completed at every copy
// — the explicit write fence of §2.3 used to order synchronization.
func (t *Thread) Fence() {
	t.haltIfDown()
	if o := t.proc.st.Observer(); o != nil {
		o.Emit(stats.EvFence, int(t.proc.node), 0, 0, uint64(t.id), 0)
	}
	t.opCompleted = false
	t.proc.cm.Fence(t.opDone)
	t.proc.nstat().FenceStall += t.waitOp(stats.StallFence)
	// EvAccFence marks the COMPLETION (all earlier writes done at every
	// copy) — the release point the race detector snapshots — unlike
	// EvFence above, which marks the issue.
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccFence, int(t.proc.node), 0, 0, uint64(t.id), 0)
	}
}

// Issue starts a delayed operation on va and returns a handle for
// Verify. The issue costs ~25 cycles; the operation executes at the
// master copy concurrently with subsequent instructions. In
// SwitchOnSync mode the processor switches threads after issuing.
func (t *Thread) Issue(op coherence.Op, va memory.VAddr, operand memory.Word) Handle {
	t.haltIfDown()
	if t.proc.fenceOnSync {
		t.Fence()
	}
	g := t.translate(va)
	t.consume(t.proc.tm.DelayedIssue)
	t.opCompleted = false
	t.proc.cm.RMW(op, g, operand, t.issuedDone)
	t.proc.nstat().WriteStall += t.waitOp(stats.StallWrite)
	h := Handle{slot: t.issuedSlot, node: t.proc.node}
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccRMW, int(t.proc.node), uint8(op), t.proc.cm.SlotCause(h.slot),
			uint64(va), tb(t.id, operand))
	}
	if t.proc.mode == SwitchOnSync {
		t.yield()
	}
	return h
}

// Verify retrieves a delayed operation's result, blocking until it is
// available, and frees the delayed-operations cache slot. Reading an
// available result costs ~10 cycles. Like Fence and Issue it is a
// write-combining flush point.
func (t *Thread) Verify(h Handle) memory.Word {
	if h.node != t.proc.node {
		panic(fmt.Sprintf("proc: thread %q verifying a handle issued on node %d", t.name, h.node))
	}
	t.haltIfDown()
	// The slot's causal ID must be captured before cm.Verify: delivery
	// releases the slot.
	cause := t.proc.cm.SlotCause(h.slot)
	t.opCompleted = false
	t.proc.cm.Verify(h.slot, t.readDone)
	t.proc.nstat().VerifyStall += t.waitOp(stats.StallVerify)
	t.consume(t.proc.tm.ResultRead)
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccVerify, int(t.proc.node), 0, cause, uint64(t.id), uint64(uint32(t.readVal)))
	}
	return t.readVal
}

// TryVerify polls a delayed operation's status without blocking:
// software can inspect the delayed-operations cache, so a non-blocking
// read of the result is possible (§3.1). A successful poll frees the
// slot and costs the usual result-read time; a failed poll costs one
// cycle.
func (t *Thread) TryVerify(h Handle) (memory.Word, bool) {
	if h.node != t.proc.node {
		panic(fmt.Sprintf("proc: thread %q polling a handle issued on node %d", t.name, h.node))
	}
	t.haltIfDown()
	cause := t.proc.cm.SlotCause(h.slot)
	v, ok := t.proc.cm.TryVerify(h.slot)
	if ok {
		t.consume(t.proc.tm.ResultRead)
		if o := t.proc.acc(); o != nil {
			o.Emit(stats.EvAccVerify, int(t.proc.node), 0, cause, uint64(t.id), uint64(uint32(v)))
		}
		return v, true
	}
	t.consume(t.proc.tm.CacheHit)
	return 0, false
}

// Sleep parks the thread until another thread Wakes it (the wait() of
// the paper's queue lock, Table 3-2). A Wake that arrived earlier is
// absorbed immediately.
func (t *Thread) Sleep() {
	if t.wakePending {
		t.wakePending = false
		t.emitSleepEnd()
		return
	}
	// Parking indefinitely must not strand buffered writes (another
	// node may be waiting to observe them before issuing the Wake).
	t.proc.cm.FlushBatch()
	t.state = tSleeping
	t.proc.current = nil
	t.proc.dispatchNext()
	t.co.ParkInline()
	t.state = tRunning
	t.emitSleepEnd()
}

// emitSleepEnd records the Sleep-return access event — the point where
// the race detector joins every earlier Wake targeting this thread.
func (t *Thread) emitSleepEnd() {
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccSleep, int(t.proc.node), 0, 0, uint64(t.id), 0)
	}
}

// Wake makes the target thread runnable (wake_up() of Table 3-2). It
// may be called from any thread. A same-shard wake is instantaneous,
// exactly as in a serial run. A cross-shard wake is a zero-latency
// interaction between nodes that the sharded engine's conservative
// lookahead cannot order inside a round, so it rides the mesh's
// cross-shard mailbox path instead and lands one lookahead window
// later — deterministic for a fixed shard count, but not
// byte-identical to serial timing. The wakePending guard absorbs a
// wake that arrives before (or without) the target's Sleep.
func (t *Thread) Wake(target *Thread) {
	if o := t.proc.acc(); o != nil {
		o.Emit(stats.EvAccWake, int(t.proc.node), 0, 0, uint64(t.id), uint64(target.id))
	}
	if target.proc.eng != t.proc.eng {
		if t.proc.net == nil {
			panic(fmt.Sprintf("proc: cross-shard Wake from node %d to node %d without a mesh reference (SetNet)",
				t.proc.node, target.proc.node))
		}
		t.proc.net.CrossShardCall(t.proc.node, target.proc.node, target.proc, evWake, target)
		return
	}
	target.proc.WakeThread(target)
}

// --- Named delayed-operation wrappers (Table 3-1) ---------------------

// Xchng issues xchng: return current value, write operand.
func (t *Thread) Xchng(va memory.VAddr, v memory.Word) Handle {
	return t.Issue(coherence.OpXchng, va, v)
}

// CondXchng issues cond-xchng: return current value; write operand if
// the top bit of the current value is set.
func (t *Thread) CondXchng(va memory.VAddr, v memory.Word) Handle {
	return t.Issue(coherence.OpCondXchng, va, v)
}

// Fadd issues fetch-and-add with a signed delta.
func (t *Thread) Fadd(va memory.VAddr, delta int32) Handle {
	return t.Issue(coherence.OpFadd, va, memory.Word(uint32(delta)))
}

// FetchSet issues fetch-and-set: return current value, set top bit.
func (t *Thread) FetchSet(va memory.VAddr) Handle {
	return t.Issue(coherence.OpFetchSet, va, 0)
}

// Enqueue issues queue on the control word at va (which holds the
// tail offset within its page).
func (t *Thread) Enqueue(va memory.VAddr, v memory.Word) Handle {
	return t.Issue(coherence.OpQueue, va, v)
}

// Dequeue issues dequeue on the control word at va (which holds the
// head offset within its page).
func (t *Thread) Dequeue(va memory.VAddr) Handle {
	return t.Issue(coherence.OpDequeue, va, 0)
}

// MinXchng issues min-xchng: return current value, store operand if
// smaller.
func (t *Thread) MinXchng(va memory.VAddr, v memory.Word) Handle {
	return t.Issue(coherence.OpMinXchng, va, v)
}

// DelayedRead issues an asynchronous read whose result is retrieved
// later with Verify — the latency-hiding read of §3.2.
func (t *Thread) DelayedRead(va memory.VAddr) Handle {
	return t.Issue(coherence.OpDelayedRead, va, 0)
}

// --- Blocking convenience wrappers -------------------------------------

// FaddSync is a blocking fetch-and-add: Issue immediately followed by
// Verify (the "blocking synchronization" coding style of Figure 3-1).
func (t *Thread) FaddSync(va memory.VAddr, delta int32) memory.Word {
	return t.Verify(t.Fadd(va, delta))
}

// XchngSync is a blocking exchange.
func (t *Thread) XchngSync(va memory.VAddr, v memory.Word) memory.Word {
	return t.Verify(t.Xchng(va, v))
}

// FetchSetSync is a blocking fetch-and-set.
func (t *Thread) FetchSetSync(va memory.VAddr) memory.Word {
	return t.Verify(t.FetchSet(va))
}

// EnqueueSync is a blocking enqueue returning the old tail word.
func (t *Thread) EnqueueSync(va memory.VAddr, v memory.Word) memory.Word {
	return t.Verify(t.Enqueue(va, v))
}

// DequeueSync is a blocking dequeue returning the old head word.
func (t *Thread) DequeueSync(va memory.VAddr) memory.Word {
	return t.Verify(t.Dequeue(va))
}

// MinXchngSync is a blocking min-exchange.
func (t *Thread) MinXchngSync(va memory.VAddr, v memory.Word) memory.Word {
	return t.Verify(t.MinXchng(va, v))
}
