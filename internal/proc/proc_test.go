package proc

import (
	"testing"

	"plus/internal/cache"
	"plus/internal/coherence"
	"plus/internal/kernel"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/mmu"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// rig wires processors directly (without the core facade) so the
// scheduler's internals can be probed.
type rig struct {
	eng   *sim.Engine
	net   *mesh.Mesh
	st    *stats.Machine
	kern  *kernel.Kernel
	procs []*Proc
	mems  []*memory.Memory
	tbls  []*mmu.Table
}

func newRig(t *testing.T, w, h int, mode Mode, cs sim.Cycles) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig(w, h))
	tm := timing.Default()
	st := stats.New(w * h)
	r := &rig{eng: eng, net: net, st: st}
	var cms []*coherence.CM
	for i := 0; i < w*h; i++ {
		mem := memory.New()
		ca := cache.New(cache.DefaultConfig(), tm)
		cm := coherence.New(mesh.NodeID(i), eng, net, mem, ca, tm, st)
		cms = append(cms, cm)
		r.mems = append(r.mems, mem)
		r.tbls = append(r.tbls, mmu.New())
	}
	r.kern = kernel.New(eng, net, cms, r.mems, r.tbls, tm, st)
	for i := 0; i < w*h; i++ {
		r.procs = append(r.procs, New(mesh.NodeID(i), eng, cms[i], r.kern, r.tbls[i], tm, st, mode, cs))
	}
	return r
}

func TestComputeAccountsBusy(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	th := r.procs[0].Spawn(0, "t", func(t *Thread) {
		t.Compute(500)
	})
	r.eng.Run()
	if !th.Done() {
		t.Fatal("thread not done")
	}
	if r.st.Nodes[0].BusyCycles != 500 {
		t.Fatalf("busy = %d", r.st.Nodes[0].BusyCycles)
	}
}

func TestIdleBracketSuppressesBusy(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		t.BeginIdle()
		t.Compute(500)
		t.EndIdle()
		t.Compute(100)
	})
	r.eng.Run()
	if r.st.Nodes[0].BusyCycles != 100 {
		t.Fatalf("busy = %d, want 100 (idle compute counted)", r.st.Nodes[0].BusyCycles)
	}
}

func TestEndIdleUnderflowPanics(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	panicked := make(chan interface{}, 1)
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		defer func() { panicked <- recover() }()
		t.EndIdle()
	})
	func() {
		defer func() { recover() }() // the coroutine rethrow surfaces here
		r.eng.Run()
	}()
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("EndIdle without BeginIdle did not panic")
		}
	default:
		t.Fatal("thread never ran")
	}
}

func TestPageFaultChargedOnce(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		t.Read(va)
		t.Read(va + 1)
		t.Read(va + 2)
	})
	r.eng.Run()
	if r.st.Nodes[0].PageFaults != 1 {
		t.Fatalf("page faults = %d, want 1 (lazy fill cached)", r.st.Nodes[0].PageFaults)
	}
	if r.tbls[0].Faults != 1 {
		t.Fatalf("table faults = %d", r.tbls[0].Faults)
	}
}

func TestRemoteReadStallAccounting(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		t.Read(va) // fault + remote read
		t.Read(va) // remote read
	})
	r.eng.Run()
	n := r.st.Nodes[0]
	if n.RemoteReads != 2 {
		t.Fatalf("remote reads = %d", n.RemoteReads)
	}
	if n.ReadStall == 0 {
		t.Fatal("no read stall recorded for remote reads")
	}
}

func TestVerifyStallAndResultRead(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		h := t.Fadd(va, 1)
		t.Verify(h) // result not yet there: stalls
		h2 := t.Fadd(va, 1)
		t.Compute(500) // result arrives during compute
		t.Verify(h2)   // no stall
	})
	r.eng.Run()
	n := r.st.Nodes[0]
	if n.VerifyStall == 0 {
		t.Fatal("first verify did not stall")
	}
	if n.RMWIssued != 2 {
		t.Fatalf("RMWs issued = %d", n.RMWIssued)
	}
}

func TestCrossNodeVerifyPanics(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(0)
	va := vp.Base()
	var h Handle
	got := make(chan interface{}, 1)
	r.procs[0].Spawn(0, "a", func(t *Thread) {
		h = t.Fadd(va, 1)
		t.Compute(1000)
	})
	r.procs[1].Spawn(1, "b", func(t *Thread) {
		t.Compute(500)
		defer func() { got <- recover() }()
		t.Verify(h) // handle from another node
	})
	func() {
		defer func() { recover() }()
		r.eng.Run()
	}()
	select {
	case p := <-got:
		if p == nil {
			t.Fatal("cross-node Verify did not panic")
		}
	default:
		t.Fatal("thread b never reached Verify")
	}
}

func TestSwitchOnSyncChargesEveryDispatch(t *testing.T) {
	r := newRig(t, 2, 1, SwitchOnSync, 40)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		h := t.Fadd(va, 1) // yields after issue
		t.Verify(h)
	})
	r.eng.Run()
	if r.st.Nodes[0].CtxSwitches < 2 {
		t.Fatalf("switches = %d, want >= 2 (initial dispatch + post-yield)", r.st.Nodes[0].CtxSwitches)
	}
}

func TestRunToBlockNeverSwitches(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	r.procs[0].Spawn(0, "t", func(t *Thread) {
		t.FaddSync(va, 1)
	})
	r.eng.Run()
	if r.st.Nodes[0].CtxSwitches != 0 {
		t.Fatalf("switches = %d in run-to-block mode", r.st.Nodes[0].CtxSwitches)
	}
}

func TestTwoThreadsShareProcessorFIFO(t *testing.T) {
	// In run-to-block mode a second thread runs only when the first
	// blocks or finishes.
	r := newRig(t, 2, 1, RunToBlock, 0)
	vp := r.kern.AllocPage(1)
	va := vp.Base()
	var order []string
	r.procs[0].Spawn(0, "a", func(t *Thread) {
		order = append(order, "a1")
		t.Read(va) // blocks: remote
		order = append(order, "a2")
	})
	r.procs[0].Spawn(1, "b", func(t *Thread) {
		order = append(order, "b1")
	})
	r.eng.Run()
	want := []string{"a1", "b1", "a2"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestThreadMetadata(t *testing.T) {
	r := newRig(t, 2, 1, RunToBlock, 0)
	th := r.procs[1].Spawn(7, "meta", func(t *Thread) {
		if t.ID() != 7 || t.Name() != "meta" || t.Node() != 1 {
			panic("metadata wrong")
		}
		if t.Now() != 0 {
			panic("clock wrong")
		}
	})
	r.eng.Run()
	if !th.Done() {
		t.Fatal("thread failed")
	}
	if len(r.procs[1].Threads()) != 1 || r.procs[1].Node() != 1 {
		t.Fatal("proc accessors wrong")
	}
}
