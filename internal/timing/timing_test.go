package timing

import "testing"

func TestDefaultMatchesPaperConstants(t *testing.T) {
	tm := Default()
	if tm.CycleNs != 40 {
		t.Errorf("cycle = %d ns, want 40 (25 MHz)", tm.CycleNs)
	}
	if tm.DelayedIssue != 25 {
		t.Errorf("delayed issue = %d, want 25", tm.DelayedIssue)
	}
	if tm.ResultRead != 10 {
		t.Errorf("result read = %d, want 10", tm.ResultRead)
	}
	if tm.RemoteReadOverhead != 32 {
		t.Errorf("remote read overhead = %d, want 32", tm.RemoteReadOverhead)
	}
	if tm.RMWSimple != 39 || tm.RMWComplex != 52 {
		t.Errorf("RMW costs = %d/%d, want 39/52", tm.RMWSimple, tm.RMWComplex)
	}
	if tm.MaxPendingWrites != 8 || tm.MaxDelayedOps != 8 {
		t.Errorf("outstanding limits = %d/%d, want 8/8", tm.MaxPendingWrites, tm.MaxDelayedOps)
	}
	if tm.CacheLineFill != 15 {
		t.Errorf("line fill = %d, want 15", tm.CacheLineFill)
	}
}

func TestValidate(t *testing.T) {
	tm := Default()
	if err := tm.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := tm
	bad.MaxPendingWrites = 0
	if bad.Validate() == nil {
		t.Error("MaxPendingWrites=0 accepted")
	}
	bad = tm
	bad.MaxDelayedOps = 0
	if bad.Validate() == nil {
		t.Error("MaxDelayedOps=0 accepted")
	}
	bad = tm
	bad.MaxQueueSize = 1
	if bad.Validate() == nil {
		t.Error("MaxQueueSize=1 accepted")
	}
	bad.MaxQueueSize = 4096
	if bad.Validate() == nil {
		t.Error("MaxQueueSize=4096 accepted")
	}
}
