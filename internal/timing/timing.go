// Package timing collects every cycle-cost constant of the simulated
// PLUS machine in one configurable table.
//
// Constants taken from the paper are marked [paper]; values the paper
// leaves unstated are chosen to be plausible for 1990 hardware and are
// marked [chosen] (they are configuration, not hard-coded, so the
// ablation benches can sweep them).
package timing

import "plus/internal/sim"

// Timing is the machine's cycle-cost table. One cycle is 40 ns in the
// current PLUS implementation (25 MHz M88000).
type Timing struct {
	// CycleNs converts cycles to wall-clock time. [paper: 40]
	CycleNs int

	// DelayedIssue is the processor cost to issue a delayed operation.
	// [paper §3.1: "approximately 25 cycles"]
	DelayedIssue sim.Cycles
	// ResultRead is the processor cost to read a delayed-op result that
	// has already arrived. [paper §3.1: "about 10 cycles"]
	ResultRead sim.Cycles
	// RemoteReadOverhead is the non-network cost of a remote blocking
	// read. [paper §3.1: "about 32 cycles plus the round-trip delay"]
	RemoteReadOverhead sim.Cycles
	// RMWSimple is the coherence-manager execution time of xchng,
	// cond-xchng, fetch-and-add, fetch-and-set and delayed-read.
	// [paper Table 3-1: 39]
	RMWSimple sim.Cycles
	// RMWComplex is the coherence-manager execution time of queue,
	// dequeue and min-xchng. [paper Table 3-1: 52]
	RMWComplex sim.Cycles

	// CacheHit is the processor-cache hit time. [chosen: 1]
	CacheHit sim.Cycles
	// CacheLineFill is a four-word line fetch from local memory.
	// [paper §3.4 assumption: 15]
	CacheLineFill sim.Cycles
	// LocalMemRead is an uncached single-word read of local memory by
	// the coherence manager or processor. [chosen: 6]
	LocalMemRead sim.Cycles
	// WriteIssue is the processor cost to post a (non-blocking) write
	// to the coherence manager. [chosen: 2]
	WriteIssue sim.Cycles
	// CMProcess is the coherence-manager handling cost of one
	// write/update/read-request hop. [chosen: 8]
	CMProcess sim.Cycles
	// RetransTimeout is the reliability sublayer's base retransmission
	// timeout in unreliable-network mode: how long a sender waits for a
	// transport ack before re-sending its unacknowledged messages. It
	// doubles on every timeout or back-pressure NACK (exponential
	// backoff, capped at 16x base). Unused on a reliable network.
	// [chosen: 512 — comfortably above the worst uncontended round trip
	// plus coherence-manager processing]
	RetransTimeout sim.Cycles

	// PageFault is the kernel cost of a lazy page-table fill: checking
	// the centralized map and updating the local tables (§2.4).
	// [chosen: 2000]
	PageFault sim.Cycles
	// TLBRefill is the hardware page-table walk on a TLB miss that
	// hits the local page table. [chosen: 20]
	TLBRefill sim.Cycles
	// PageCopyPerWord is the hardware page-copy engine's pipelined cost
	// per word when replicating a page in the background. [chosen: 4]
	PageCopyPerWord sim.Cycles

	// MaxPendingWrites is the pending-writes cache depth: writes a node
	// may have in flight before the processor stalls. [paper §5: 8]
	MaxPendingWrites int
	// MaxBatchWrites is the write-combining depth: how many consecutive
	// same-page word writes the coherence manager may coalesce into one
	// multi-word update message before flushing. 1 disables combining
	// and reproduces the paper's one-message-per-write behaviour
	// exactly. [chosen: 1 — the 1990 hardware did not combine; the
	// batching ablation sweeps this]
	MaxBatchWrites int
	// MaxDelayedOps is the delayed-operations cache depth. [paper §5: 8]
	MaxDelayedOps int
	// MaxQueueSize is the hardware queue wrap modulus in words for the
	// queue/dequeue operations; queue slots occupy page offsets
	// 0..MaxQueueSize-1 and control words live above them. [chosen:
	// 512; the paper says only "(modulo maximum queue size)"]
	MaxQueueSize int
}

// Default returns the paper-calibrated cost table.
func Default() Timing {
	return Timing{
		CycleNs:            40,
		DelayedIssue:       25,
		ResultRead:         10,
		RemoteReadOverhead: 32,
		RMWSimple:          39,
		RMWComplex:         52,
		CacheHit:           1,
		CacheLineFill:      15,
		LocalMemRead:       6,
		WriteIssue:         2,
		CMProcess:          8,
		RetransTimeout:     512,
		PageFault:          2000,
		TLBRefill:          20,
		PageCopyPerWord:    4,
		MaxPendingWrites:   8,
		MaxBatchWrites:     1,
		MaxDelayedOps:      8,
		MaxQueueSize:       512,
	}
}

// Validate reports whether the table is internally consistent.
func (t Timing) Validate() error {
	switch {
	case t.MaxPendingWrites < 1:
		return errTiming("MaxPendingWrites must be >= 1")
	case t.MaxBatchWrites < 1:
		return errTiming("MaxBatchWrites must be >= 1")
	case t.MaxDelayedOps < 1:
		return errTiming("MaxDelayedOps must be >= 1")
	case t.MaxQueueSize < 2 || t.MaxQueueSize > 1<<10:
		return errTiming("MaxQueueSize must be in [2, 1024]")
	case t.RetransTimeout < 1:
		return errTiming("RetransTimeout must be >= 1")
	}
	return nil
}

type errTiming string

func (e errTiming) Error() string { return "timing: " + string(e) }
