package sim

// MergeByTag replays per-engine work queues in the exact order a
// single serial engine would have executed the work in, calling emit
// once per entry.
//
// Each queue must hold one engine's entries in that engine's execution
// order — append order for work logged during dispatches, restored
// with an EngineLess sort if barrier-replayed entries were appended
// out of place. The merge then repeatedly emits from the queue whose
// head carries the smallest dispatch key (Less).
//
// Why a head merge and not a flat sort: a serial engine's pop order is
// not a global key sort. An event scheduled during a dispatch can land
// in the same cycle under a smaller heap key (e.g. a zero-delay thread
// wake keyed under the sleeper's lane, created while dispatching a
// delivery keyed under the sender's lane); serial pops it after the
// dispatch that created it — the heap can only pop what exists — while
// a flat key sort would place it before. Head-merging is exact: when
// every engine's earlier work has been emitted, each engine's next
// dispatch is already sitting in the serial heap (it was scheduled by
// strictly earlier activity on its own engine — cross-engine
// scheduling happens only at barriers), so the serial heap's next pop
// is precisely the minimum of the queue heads' keys.
func MergeByTag[T any](queues [][]T, tag func(*T) DispatchTag, emit func(*T)) {
	pos := make([]int, len(queues))
	for {
		best := -1
		for q := range queues {
			if pos[q] == len(queues[q]) {
				continue
			}
			if best < 0 || tag(&queues[q][pos[q]]).Less(tag(&queues[best][pos[best]])) {
				best = q
			}
		}
		if best < 0 {
			return
		}
		emit(&queues[best][pos[best]])
		pos[best]++
	}
}
