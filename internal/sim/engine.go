// Package sim provides a deterministic discrete-event simulation engine
// with cooperative coroutines.
//
// The engine owns a priority queue of timed events and a virtual clock
// measured in processor cycles. Exactly one piece of simulated activity
// runs at any instant: either an event handler or a coroutine that an
// event handler resumed. Coroutines (used to model application threads
// running on simulated processors) are ordinary goroutines that park on
// a channel whenever they need virtual time to pass; the engine resumes
// them from scheduled events and waits for them to park again before
// popping the next event. The result is a total, reproducible order of
// all simulated activity: ties in virtual time break on event sequence
// number, which is assigned in scheduling order.
//
// Events are stored by value in an indexed binary heap and dispatch to
// an EventSink, so scheduling allocates nothing on the hot paths
// (coroutine resume, message delivery, component timers). The
// closure-based Schedule/ScheduleAt API remains for cold paths and
// tests; it costs whatever the caller's closure costs, but no
// per-event heap node.
//
// Ties in virtual time break on a (lane, per-lane sequence) key rather
// than a global scheduling counter. A lane is the node whose simulated
// activity scheduled the event (NoLane for machine-level setup), and
// each lane draws from its own monotone counter. Because a lane's
// activity — and therefore its draw order — depends only on that
// node's own state and the messages it receives, the key of every
// event is identical whether the simulation runs on one event queue or
// on many shard queues exchanging cross-shard events at lookahead
// barriers. That property is what makes the sharded engine (shards.go)
// byte-identical to the serial one.
package sim

import "fmt"

// Cycles is a quantity of virtual time, measured in processor cycles.
// In the PLUS implementation one cycle is 40 ns (25 MHz).
type Cycles uint64

// EventSink receives typed events from the engine. Implementations are
// the simulator's hot-path actors: coroutine resume (*Coroutine),
// message delivery (*mesh.Mesh), and component timers (the coherence
// manager). The (kind, data) pair is sink-defined; data is nil or a
// pointer-shaped value, so dispatching boxes nothing.
type EventSink interface {
	HandleEvent(kind int, data any)
}

// NoLane is the lane of machine-level activity: setup scheduling done
// before the engine runs, and test closures driven outside any node's
// simulated activity. It sorts before every node lane.
const NoLane int32 = -1

// event is one pending entry, stored by value in the heap: scheduling
// allocates no per-event node. Events compare by (at, lane, seq):
// same-time events from different lanes order by lane, same-lane
// events by their lane's draw order.
type event struct {
	at   Cycles
	lane int32
	kind int
	seq  uint64
	sink EventSink
	data any
}

// funcSink adapts the closure-based Schedule API onto the typed event
// path: data carries the func() itself (pointer-shaped, not boxed).
type funcSink struct{}

func (funcSink) HandleEvent(_ int, data any) { data.(func())() }

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now Cycles
	// curLane is the lane of the activity currently executing: set by
	// Step from each dispatched event (and left in place afterwards, so
	// a coroutine slice that keeps running after an inline-driven
	// resume still schedules under its own lane). Events scheduled
	// during an activity inherit it as their tie-break lane.
	curLane int32
	// laneSeq holds one monotone draw counter per lane, indexed by
	// lane+1 (so NoLane lands on index 0). Grown on demand.
	laneSeq []uint64
	// pq is a binary min-heap of events ordered by (at, lane, seq).
	pq []event
	// processed counts executed events, for diagnostics and runaway
	// detection in tests.
	processed uint64
	// lastAct is the time of the most recent simulated activity: the
	// last dispatched event, or the clock position a successful
	// AdvanceIf moved to. Unlike now, it is not dragged forward by
	// RunUntil's horizon, so it reports true elapsed work in sharded
	// rounds.
	lastAct Cycles
	// horizon bounds AdvanceIf while RunUntil is active: simulated
	// activity may not move the clock past the instant the caller asked
	// the engine to stop at.
	horizon Cycles
	// onEvent, when set, observes every dispatched event (at, kind)
	// just before its sink runs — the observability layer's engine
	// probe. Nil (one comparison per Step) when tracing is off.
	onEvent func(at Cycles, kind int)
	// tagAt/tagLane/tagSeq hold the heap key of the event currently
	// dispatching, tagCtr counts DispatchTag draws within it, and
	// tagOrd numbers this engine's dispatches in execution order. The
	// key triple is unique across all shards of one run; the ordinal
	// orders work within one engine (dispatch order is NOT key order —
	// see DispatchTag). Together they let deferred work be replayed in
	// the exact order a serial engine would have reached it (MergeByTag).
	tagAt   Cycles
	tagLane int32
	tagSeq  uint64
	tagCtr  uint64
	tagOrd  uint64
	// strictWait disables AdvanceIf, forcing every coroutine wait onto
	// the schedule-wake/park slow path. The slow path yields the same
	// schedule (AdvanceIf is schedule-neutral) but guarantees that all
	// simulated activity runs inside a dispatched event, so DispatchTag
	// is always the key of a real heap event. Required whenever logged
	// work is re-ordered by tag (deferred contention, shard observers).
	strictWait bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{horizon: ^Cycles(0), curLane: NoLane}
}

// Now returns the current virtual time.
func (e *Engine) Now() Cycles { return e.now }

// LastActivityAt returns the time of the most recent simulated
// activity (last dispatched event or direct clock advance). RunUntil
// may leave Now beyond it; elapsed-time reporting wants this value.
func (e *Engine) LastActivityAt() Cycles { return e.lastAct }

// Lane returns the lane of the activity currently executing (NoLane
// outside event dispatch).
func (e *Engine) Lane() int32 { return e.curLane }

// SetLane declares that the remainder of the current dispatch executes
// as the given node's activity. The mesh calls it when a delivery
// event — scheduled under the sender's lane — starts running at the
// destination, so everything the destination schedules draws from the
// destination's own counter.
func (e *Engine) SetLane(lane int32) { e.curLane = lane }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.pq) }

// SetOnEvent installs a hook observing every event dispatch (nil to
// remove). The hook must not schedule or mutate simulation state; it
// exists for instrumentation (stats.EvEngineDispatch).
func (e *Engine) SetOnEvent(fn func(at Cycles, kind int)) { e.onEvent = fn }

// SetStrictWait toggles strict waiting: with it on, AdvanceIf always
// reports false, so coroutines take the schedule-wake/park path and
// every piece of simulated activity executes inside a dispatched
// event. The schedule is unchanged (see AdvanceIf); what strict mode
// buys is that DispatchTag is always meaningful.
func (e *Engine) SetStrictWait(on bool) { e.strictWait = on }

// DispatchTag returns a serialization key for the current moment of
// the current dispatch: the heap key of the event being dispatched,
// this engine's dispatch ordinal, and a per-dispatch draw counter.
// Keys are unique across all engines of a sharded run (each lane's
// counter lives on exactly one engine), but sorting tagged work by
// key does NOT reconstruct single-queue execution order: an event
// scheduled during a dispatch can land in the same cycle under a
// smaller key (a zero-delay wake on the receiver's lane, say, after a
// delivery keyed under the sender's lane), and a serial engine pops it
// after the dispatch that created it, not before. Execution order
// within one engine is the ordinal (EngineLess); across engines it is
// the head merge MergeByTag performs. Callers must run under strict
// waiting; otherwise activity that advanced the clock via AdvanceIf
// would be tagged with a stale event.
func (e *Engine) DispatchTag() DispatchTag {
	t := DispatchTag{At: e.tagAt, Lane: e.tagLane, Seq: e.tagSeq, Ctr: e.tagCtr, Ord: e.tagOrd}
	e.tagCtr++
	return t
}

// DispatchTagN reserves n consecutive tags and returns the first;
// slot i is the returned tag with Ctr+i. Work deferred to a barrier
// (per-hop link events) reserves its tag slots at the moment the
// serial schedule would have produced them, so the merged stream
// interleaves exactly like the serial one.
func (e *Engine) DispatchTagN(n int) DispatchTag {
	t := DispatchTag{At: e.tagAt, Lane: e.tagLane, Seq: e.tagSeq, Ctr: e.tagCtr, Ord: e.tagOrd}
	e.tagCtr += uint64(n)
	return t
}

// Plus returns the tag i draw slots after t (same dispatch).
func (t DispatchTag) Plus(i int) DispatchTag {
	t.Ctr += uint64(i)
	return t
}

// DispatchTag orders logged work by the dispatch that produced it:
// the dispatched event's heap key (At, Lane, Seq), the engine's
// dispatch ordinal Ord, and the intra-dispatch draw counter Ctr.
type DispatchTag struct {
	At   Cycles
	Lane int32
	Seq  uint64
	Ctr  uint64
	// Ord is the per-engine dispatch ordinal: the nth event this engine
	// dispatched. Comparable only between tags drawn on one engine.
	Ord uint64
}

// Less compares the dispatch keys (At, Lane, Seq, Ctr) — the order in
// which the dispatching events sat in their heaps, NOT the order a
// serial engine executes them in (see DispatchTag). MergeByTag uses it
// to compare queue heads across engines.
func (t DispatchTag) Less(u DispatchTag) bool {
	if t.At != u.At {
		return t.At < u.At
	}
	if t.Lane != u.Lane {
		return t.Lane < u.Lane
	}
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Ctr < u.Ctr
}

// EngineLess orders two tags drawn on the SAME engine by execution
// order: dispatch ordinal, then draw counter within the dispatch. Use
// it to re-insert barrier-replayed work (which carries mid-round tags)
// among work logged in call order; it is meaningless across engines.
func (t DispatchTag) EngineLess(u DispatchTag) bool {
	if t.Ord != u.Ord {
		return t.Ord < u.Ord
	}
	return t.Ctr < u.Ctr
}

// Schedule runs fn after delay cycles of virtual time.
func (e *Engine) Schedule(delay Cycles, fn func()) {
	e.ScheduleEventAt(e.now+delay, funcSink{}, 0, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Scheduling in the
// past is a programming error and panics: the engine's clock never
// moves backward.
func (e *Engine) ScheduleAt(at Cycles, fn func()) {
	e.ScheduleEventAt(at, funcSink{}, 0, fn)
}

// ScheduleEvent delivers (kind, data) to sink after delay cycles.
// This is the allocation-free scheduling path.
func (e *Engine) ScheduleEvent(delay Cycles, sink EventSink, kind int, data any) {
	e.ScheduleEventAt(e.now+delay, sink, kind, data)
}

// ScheduleEventAt delivers (kind, data) to sink at absolute virtual
// time at. Scheduling in the past panics.
func (e *Engine) ScheduleEventAt(at Cycles, sink EventSink, kind int, data any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	lane, seq := e.DrawKey()
	e.push(event{at: at, lane: lane, seq: seq, kind: kind, sink: sink, data: data})
}

// DrawKey draws the tie-break key the next scheduling by the current
// activity would receive: the current lane and the next value of its
// counter. The mesh uses it to stamp cross-shard messages at send
// time, so an event injected into another shard's queue at a barrier
// carries exactly the key it would have had on a single shared queue.
func (e *Engine) DrawKey() (lane int32, seq uint64) {
	idx := int(e.curLane) + 1
	for idx >= len(e.laneSeq) {
		e.laneSeq = append(e.laneSeq, 0)
	}
	seq = e.laneSeq[idx]
	e.laneSeq[idx]++
	return e.curLane, seq
}

// InjectEventAt enqueues an event carrying an explicit tie-break key
// drawn on another engine (DrawKey at send time). The sharded runner
// calls it at lookahead barriers to move cross-shard events into the
// owning shard's queue; conservative lookahead guarantees at has not
// passed.
func (e *Engine) InjectEventAt(at Cycles, lane int32, seq uint64, sink EventSink, kind int, data any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: inject at %d before now %d", at, e.now))
	}
	e.push(event{at: at, lane: lane, seq: seq, kind: kind, sink: sink, data: data})
}

func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	e.siftUp(len(e.pq) - 1)
}

// NextEventAt returns the time of the earliest pending event, or
// ok=false when the queue is empty.
func (e *Engine) NextEventAt() (at Cycles, ok bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// less orders the heap by (at, lane, seq); (lane, seq) is unique, so
// the order is total and any correct heap pops the same deterministic
// sequence — regardless of insertion order, which is what lets barrier
// injection merge shard queues without a serialization step.
func (e *Engine) less(i, j int) bool {
	if e.pq[i].at != e.pq[j].at {
		return e.pq[i].at < e.pq[j].at
	}
	if e.pq[i].lane != e.pq[j].lane {
		return e.pq[i].lane < e.pq[j].lane
	}
	return e.pq[i].seq < e.pq[j].seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.pq)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && e.less(r, child) {
			child = r
		}
		if !e.less(child, i) {
			return
		}
		e.pq[i], e.pq[child] = e.pq[child], e.pq[i]
		i = child
	}
}

// AdvanceIf advances the clock by d and reports whether it did: it
// succeeds only when nothing else is due first — no pending event in
// [now, now+d] and now+d does not cross the RunUntil horizon.
// Coroutines use it to skip the schedule-wake/park handoff when the
// wake would have been the very next event anyway; the observable
// schedule (times, and the relative order of all remaining events) is
// identical to the slow path, so determinism is unaffected.
func (e *Engine) AdvanceIf(d Cycles) bool {
	t := e.now + d
	if e.strictWait || t > e.horizon || (len(e.pq) > 0 && e.pq[0].at <= t) {
		return false
	}
	e.now = t
	e.lastAct = t
	return true
}

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{} // drop sink/data references for the GC
	e.pq = e.pq[:n]
	if n > 1 {
		e.siftDown(0)
	}
	e.now = ev.at
	e.lastAct = ev.at
	e.curLane = ev.lane
	e.tagAt, e.tagLane, e.tagSeq, e.tagCtr = ev.at, ev.lane, ev.seq, 0
	e.tagOrd++
	e.processed++
	if e.onEvent != nil {
		e.onEvent(ev.at, ev.kind)
	}
	ev.sink.HandleEvent(ev.kind, ev.data)
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Cycles) {
	prev := e.horizon
	e.horizon = t
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	e.horizon = prev
	if e.now < t {
		e.now = t
	}
}

// RunLimit executes at most n events; it returns the number executed.
// Useful as a runaway backstop in tests.
func (e *Engine) RunLimit(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !e.Step() {
			break
		}
	}
	return i
}
