// Package sim provides a deterministic discrete-event simulation engine
// with cooperative coroutines.
//
// The engine owns a priority queue of timed events and a virtual clock
// measured in processor cycles. Exactly one piece of simulated activity
// runs at any instant: either an event handler or a coroutine that an
// event handler resumed. Coroutines (used to model application threads
// running on simulated processors) are ordinary goroutines that park on
// a channel whenever they need virtual time to pass; the engine resumes
// them from scheduled events and waits for them to park again before
// popping the next event. The result is a total, reproducible order of
// all simulated activity: ties in virtual time break on event sequence
// number, which is assigned in scheduling order.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycles is a quantity of virtual time, measured in processor cycles.
// In the PLUS implementation one cycle is 40 ns (25 MHz).
type Cycles uint64

// Event is a scheduled callback. Events compare by (At, seq) so that
// events scheduled earlier run earlier when times tie.
type event struct {
	at  Cycles
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Cycles
	seq     uint64
	pq      eventHeap
	running bool
	// processed counts executed events, for diagnostics and runaway
	// detection in tests.
	processed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.pq)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Cycles { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay cycles of virtual time.
func (e *Engine) Schedule(delay Cycles, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Scheduling in the
// past is a programming error and panics: the engine's clock never
// moves backward.
func (e *Engine) ScheduleAt(at Cycles, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
}

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Cycles) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunLimit executes at most n events; it returns the number executed.
// Useful as a runaway backstop in tests.
func (e *Engine) RunLimit(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !e.Step() {
			break
		}
	}
	return i
}
