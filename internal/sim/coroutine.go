package sim

import "fmt"

// Coroutine models a simulated thread of control (an application thread
// running on a simulated processor). The body runs on its own goroutine
// but never concurrently with the engine or with another coroutine: it
// runs only between an engine resume and the next park, so all
// simulated state can be accessed without locks.
//
// Lifecycle:
//
//	co := sim.NewCoroutine(eng, "t0", body) // body starts parked
//	co.WakeAfter(0)                         // schedule first run
//	eng.Run()
//
// Inside body, the coroutine yields virtual time with WaitCycles, or
// parks indefinitely with Park (some event handler later calls
// WakeAfter). When body returns, Done() reports true.
type Coroutine struct {
	eng    *Engine
	resume chan struct{}
	parked chan struct{}
	done   bool
	// waking is true while a wake event for this coroutine is pending
	// in the engine's queue. It guards against double-resume.
	waking bool
	// driving is true while the coroutine's own goroutine is running
	// the engine's event loop in place of parking (ParkInline). Its
	// wake event then clears the flag instead of performing a channel
	// handoff.
	driving bool
	label   string
}

// NewCoroutine creates a coroutine that will execute body. The body
// does not run until the first WakeAfter; it is created parked.
func NewCoroutine(eng *Engine, label string, body func(*Coroutine)) *Coroutine {
	co := &Coroutine{
		eng:    eng,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		label:  label,
	}
	go func() {
		<-co.resume
		body(co)
		co.done = true
		co.parked <- struct{}{}
	}()
	return co
}

// Label returns the diagnostic name given at creation.
func (co *Coroutine) Label() string { return co.label }

// Done reports whether the body has returned.
func (co *Coroutine) Done() bool { return co.done }

// Engine returns the engine this coroutine is bound to.
func (co *Coroutine) Engine() *Engine { return co.eng }

// scheduleWake arms a resume event after delay cycles. The coroutine
// itself is the event's sink, so a wake allocates nothing.
func (co *Coroutine) scheduleWake(delay Cycles) {
	if co.done {
		panic("sim: wake of finished coroutine " + co.label)
	}
	if co.waking {
		panic("sim: double wake of coroutine " + co.label)
	}
	co.waking = true
	co.eng.ScheduleEvent(delay, co, 0, nil)
}

// HandleEvent implements EventSink: the fired wake event hands control
// to the coroutine and blocks the engine until it parks again (or
// finishes), preserving the single-activity invariant.
func (co *Coroutine) HandleEvent(int, any) {
	// Clear before transferring control: the body may re-arm its own
	// wake (WaitCycles) during this slice.
	co.waking = false
	if co.driving {
		// The coroutine's own goroutine popped this wake from inside
		// ParkInline's drive loop: clearing the flag IS the resume —
		// the loop exits and the body continues, no handoff needed.
		co.driving = false
		return
	}
	co.resume <- struct{}{}
	<-co.parked
}

// WakeAfter schedules the coroutine to resume after delay cycles.
// It panics on a double wake or a wake of a finished coroutine, to
// surface protocol bugs rather than silently double-running a thread.
func (co *Coroutine) WakeAfter(delay Cycles) { co.scheduleWake(delay) }

// Wakeable reports whether WakeAfter may be called: the coroutine has
// not finished and has no wake pending. (A coroutine that is currently
// executing its slice is nominally wakeable, but only the coroutine
// itself can observe that state, and waking oneself is meaningless.)
func (co *Coroutine) Wakeable() bool { return !co.done && !co.waking }

// Park suspends the coroutine until some event calls WakeAfter.
// Must be called from the coroutine's own body.
func (co *Coroutine) Park() {
	co.parked <- struct{}{}
	<-co.resume
}

// ParkInline suspends the coroutine until some event calls WakeAfter,
// like Park, but keeps the coroutine's goroutine executing the
// engine's event loop while it waits. It is the generalization of
// AdvanceIf's direct clock advance from "nothing else is due" to
// "other activity is due, but none of it needs a control transfer":
// message deliveries, coherence-manager timers and the wait's own
// completion chain all dispatch inline on this goroutine, and the
// coroutine's wake event simply falls out of the loop — zero channel
// handoffs for an entire remote round trip. The drive loop hands back
// to a real Park the moment the next event would resume a different
// coroutine (or lies beyond the engine's horizon), so the dispatch
// order, event timestamps and tie-break draws are identical to the
// slow path in every case.
func (co *Coroutine) ParkInline() {
	e := co.eng
	co.driving = true
	for co.driving {
		if len(e.pq) == 0 || e.pq[0].at > e.horizon {
			co.driving = false
			co.Park()
			return
		}
		if next, ok := e.pq[0].sink.(*Coroutine); ok && next != co {
			co.driving = false
			co.Park()
			return
		}
		e.Step()
	}
	// Our own wake dispatched from our own Step: the body resumes here
	// with the engine clock at the wake time and curLane already set to
	// the wake event's lane, exactly as if HandleEvent had resumed us.
}

// WaitCycles suspends the coroutine for d cycles of virtual time.
// Must be called from the coroutine's own body. When no other event is
// due within d cycles the wait is a direct clock advance — the
// schedule-wake/park round trip (two goroutine handoffs) happens only
// when other simulated activity must run first.
func (co *Coroutine) WaitCycles(d Cycles) {
	if co.eng.AdvanceIf(d) {
		return
	}
	co.scheduleWake(d)
	co.ParkInline()
}

// String implements fmt.Stringer for diagnostics.
func (co *Coroutine) String() string {
	return fmt.Sprintf("coroutine(%s done=%v waking=%v)", co.label, co.done, co.waking)
}
