package sim

import "fmt"

// Coroutine models a simulated thread of control (an application thread
// running on a simulated processor). The body runs on its own goroutine
// but never concurrently with the engine or with another coroutine: it
// runs only between an engine resume and the next park, so all
// simulated state can be accessed without locks.
//
// Lifecycle:
//
//	co := sim.NewCoroutine(eng, "t0", body) // body starts parked
//	co.WakeAfter(0)                         // schedule first run
//	eng.Run()
//
// Inside body, the coroutine yields virtual time with WaitCycles, or
// parks indefinitely with Park (some event handler later calls
// WakeAfter). When body returns, Done() reports true.
type Coroutine struct {
	eng    *Engine
	resume chan struct{}
	parked chan struct{}
	done   bool
	// waking is true while a wake event for this coroutine is pending
	// in the engine's queue. It guards against double-resume.
	waking bool
	label  string
}

// NewCoroutine creates a coroutine that will execute body. The body
// does not run until the first WakeAfter; it is created parked.
func NewCoroutine(eng *Engine, label string, body func(*Coroutine)) *Coroutine {
	co := &Coroutine{
		eng:    eng,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		label:  label,
	}
	go func() {
		<-co.resume
		body(co)
		co.done = true
		co.parked <- struct{}{}
	}()
	return co
}

// Label returns the diagnostic name given at creation.
func (co *Coroutine) Label() string { return co.label }

// Done reports whether the body has returned.
func (co *Coroutine) Done() bool { return co.done }

// Engine returns the engine this coroutine is bound to.
func (co *Coroutine) Engine() *Engine { return co.eng }

// scheduleWake arms a resume event after delay cycles. The coroutine
// itself is the event's sink, so a wake allocates nothing.
func (co *Coroutine) scheduleWake(delay Cycles) {
	if co.done {
		panic("sim: wake of finished coroutine " + co.label)
	}
	if co.waking {
		panic("sim: double wake of coroutine " + co.label)
	}
	co.waking = true
	co.eng.ScheduleEvent(delay, co, 0, nil)
}

// HandleEvent implements EventSink: the fired wake event hands control
// to the coroutine and blocks the engine until it parks again (or
// finishes), preserving the single-activity invariant.
func (co *Coroutine) HandleEvent(int, any) {
	// Clear before transferring control: the body may re-arm its own
	// wake (WaitCycles) during this slice.
	co.waking = false
	co.resume <- struct{}{}
	<-co.parked
}

// WakeAfter schedules the coroutine to resume after delay cycles.
// It panics on a double wake or a wake of a finished coroutine, to
// surface protocol bugs rather than silently double-running a thread.
func (co *Coroutine) WakeAfter(delay Cycles) { co.scheduleWake(delay) }

// Wakeable reports whether WakeAfter may be called: the coroutine has
// not finished and has no wake pending. (A coroutine that is currently
// executing its slice is nominally wakeable, but only the coroutine
// itself can observe that state, and waking oneself is meaningless.)
func (co *Coroutine) Wakeable() bool { return !co.done && !co.waking }

// Park suspends the coroutine until some event calls WakeAfter.
// Must be called from the coroutine's own body.
func (co *Coroutine) Park() {
	co.parked <- struct{}{}
	<-co.resume
}

// WaitCycles suspends the coroutine for d cycles of virtual time.
// Must be called from the coroutine's own body. When no other event is
// due within d cycles the wait is a direct clock advance — the
// schedule-wake/park round trip (two goroutine handoffs) happens only
// when other simulated activity must run first.
func (co *Coroutine) WaitCycles(d Cycles) {
	if co.eng.AdvanceIf(d) {
		return
	}
	co.scheduleWake(d)
	co.Park()
}

// String implements fmt.Stringer for diagnostics.
func (co *Coroutine) String() string {
	return fmt.Sprintf("coroutine(%s done=%v waking=%v)", co.label, co.done, co.waking)
}
