package sim

import "testing"

// BenchmarkEngineSchedule measures raw event throughput on the legacy
// closure API (funcSink adapter).
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycles(i%64), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineChain measures self-rescheduling closure chains (the
// legacy pattern the typed path replaces on hot paths).
func BenchmarkEngineChain(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := b.N
	var tick func()
	tick = func() {
		if n > 0 {
			n--
			e.Schedule(3, tick)
		}
	}
	e.Schedule(1, tick)
	b.ResetTimer()
	e.Run()
}

// chainSink reschedules itself until its budget is exhausted,
// exercising the full schedule → siftUp → pop → siftDown → dispatch
// cycle with nothing else in the loop.
type chainSink struct {
	eng       *Engine
	remaining int
}

func (s *chainSink) HandleEvent(int, any) {
	if s.remaining > 0 {
		s.remaining--
		s.eng.ScheduleEvent(1, s, 0, nil)
	}
}

// BenchmarkEngineHotPath measures the typed event path: one event
// scheduled and dispatched per iteration step, no closures, no boxing.
func BenchmarkEngineHotPath(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	s := &chainSink{eng: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.remaining = 1000
		eng.ScheduleEvent(1, s, 0, nil)
		eng.Run()
	}
}

// BenchmarkCoroutineSwitch measures a park/wake round trip. A
// self-rescheduling sink keeps the queue non-empty at the same cadence
// as the waits, so WaitCycles cannot take the direct clock-advance
// fast path and every iteration really pays the goroutine handoffs.
func BenchmarkCoroutineSwitch(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := b.N
	s := &chainSink{eng: e, remaining: n}
	e.ScheduleEvent(1, s, 0, nil)
	co := NewCoroutine(e, "bench", func(co *Coroutine) {
		for i := 0; i < n; i++ {
			co.WaitCycles(1)
		}
	})
	co.WakeAfter(0)
	b.ResetTimer()
	e.Run()
}

// TestScheduleEventAllocFree pins the typed event path at zero
// allocations per event once the heap's backing array has grown to
// working size — the regression guard for reintroducing a per-event
// closure or interface box.
func TestScheduleEventAllocFree(t *testing.T) {
	eng := NewEngine()
	s := &chainSink{eng: eng}
	// Warm-up: grow the event array.
	s.remaining = 256
	eng.ScheduleEvent(1, s, 0, nil)
	eng.Run()
	avg := testing.AllocsPerRun(50, func() {
		s.remaining = 100
		eng.ScheduleEvent(1, s, 0, nil)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("typed event path allocates %v objects per run, want 0", avg)
	}
}

// TestCoroutineWakeAllocFree pins the coroutine wake path (the
// coroutine is its own event sink) at zero allocations per wake. A
// persistent sentinel keeps the queue non-empty so every wait takes
// the schedule-wake path rather than the direct clock advance.
func TestCoroutineWakeAllocFree(t *testing.T) {
	eng := NewEngine()
	s := &chainSink{eng: eng, remaining: 1 << 30}
	eng.ScheduleEvent(1, s, 0, nil)
	co := NewCoroutine(eng, "alloc-test", func(co *Coroutine) {
		for i := 0; i < 1<<20; i++ {
			co.WaitCycles(1)
		}
	})
	co.WakeAfter(0)
	eng.RunLimit(500) // warm-up: goroutine stack, heap array, sudogs
	avg := testing.AllocsPerRun(20, func() { eng.RunLimit(200) })
	if avg != 0 {
		t.Fatalf("coroutine wake path allocates %v objects per run, want 0", avg)
	}
}
