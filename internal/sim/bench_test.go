package sim

import "testing"

// BenchmarkEngineSchedule measures raw event throughput.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycles(i%64), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineChain measures self-rescheduling event chains (the
// dominant pattern: message → handler → next message).
func BenchmarkEngineChain(b *testing.B) {
	e := NewEngine()
	n := b.N
	var tick func()
	tick = func() {
		if n > 0 {
			n--
			e.Schedule(3, tick)
		}
	}
	e.Schedule(1, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkCoroutineSwitch measures a park/wake round trip.
func BenchmarkCoroutineSwitch(b *testing.B) {
	e := NewEngine()
	n := b.N
	co := NewCoroutine(e, "bench", func(co *Coroutine) {
		for i := 0; i < n; i++ {
			co.WaitCycles(1)
		}
	})
	co.WakeAfter(0)
	b.ResetTimer()
	e.Run()
}
