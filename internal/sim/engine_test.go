package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("empty run moved clock to %d", e.Now())
	}
	if e.Processed() != 0 {
		t.Fatalf("empty run processed %d events", e.Processed())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	// Events at the same time must run in scheduling order.
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("ran %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d ran out of order (got %d)", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []Cycles
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.Schedule(7, tick)
		}
	}
	e.Schedule(7, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if want := Cycles(7 * (i + 1)); at != want {
			t.Fatalf("tick %d at %d, want %d", i, at, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events by t=20, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(15) // no-op: clock never moves backward
	if e.Now() != 20 {
		t.Fatalf("clock moved backward to %d", e.Now())
	}
	e.Run()
	if ran != 3 || e.Now() != 30 {
		t.Fatalf("final ran=%d now=%d", ran, e.Now())
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Cycles(i), func() {})
	}
	if n := e.RunLimit(4); n != 4 {
		t.Fatalf("RunLimit executed %d, want 4", n)
	}
	if n := e.RunLimit(100); n != 6 {
		t.Fatalf("RunLimit executed %d, want 6", n)
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the clock ends at the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Cycles
		for _, d := range delays {
			d := Cycles(d)
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		var max Cycles
		for _, d := range delays {
			if Cycles(d) > max {
				max = Cycles(d)
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: an interleaved random schedule is deterministic — two runs
// with the same seed produce identical event traces.
func TestEngineDeterminism(t *testing.T) {
	trace := func(seed int64) []Cycles {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var out []Cycles
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now())
			if depth < 4 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					e.Schedule(Cycles(rng.Intn(50)), func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 10; i++ {
			e.Schedule(Cycles(rng.Intn(100)), func() { spawn(0) })
		}
		e.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
