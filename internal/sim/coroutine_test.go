package sim

import "testing"

func TestCoroutineBasic(t *testing.T) {
	e := NewEngine()
	var marks []Cycles
	co := NewCoroutine(e, "t", func(co *Coroutine) {
		marks = append(marks, e.Now())
		co.WaitCycles(10)
		marks = append(marks, e.Now())
		co.WaitCycles(5)
		marks = append(marks, e.Now())
	})
	co.WakeAfter(3)
	e.Run()
	want := []Cycles{3, 13, 18}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if !co.Done() {
		t.Fatal("coroutine not done after Run")
	}
}

func TestCoroutineParkWake(t *testing.T) {
	e := NewEngine()
	var resumedAt Cycles
	co := NewCoroutine(e, "sleeper", func(co *Coroutine) {
		co.Park()
		resumedAt = e.Now()
	})
	co.WakeAfter(0)
	e.Schedule(100, func() {
		if !co.Wakeable() {
			t.Error("parked coroutine should be wakeable")
		}
		co.WakeAfter(7)
	})
	e.Run()
	if resumedAt != 107 {
		t.Fatalf("resumed at %d, want 107", resumedAt)
	}
}

func TestCoroutineInterleaving(t *testing.T) {
	// Two coroutines with different periods must interleave in strict
	// virtual-time order, never concurrently.
	e := NewEngine()
	var order []string
	running := false
	body := func(name string, period Cycles, n int) func(*Coroutine) {
		return func(co *Coroutine) {
			for i := 0; i < n; i++ {
				if running {
					t.Error("two coroutines running at once")
				}
				running = true
				order = append(order, name)
				running = false
				co.WaitCycles(period)
			}
		}
	}
	a := NewCoroutine(e, "a", body("a", 10, 3))
	b := NewCoroutine(e, "b", body("b", 4, 5))
	a.WakeAfter(0)
	b.WakeAfter(0)
	e.Run()
	// a runs at 0,10,20; b at 0,4,8,12,16. Ties break by schedule order
	// (a woken first at t=0).
	want := []string{"a", "b", "b", "b", "a", "b", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCoroutineDoubleWakePanics(t *testing.T) {
	e := NewEngine()
	co := NewCoroutine(e, "t", func(co *Coroutine) { co.Park() })
	co.WakeAfter(5)
	defer func() {
		if recover() == nil {
			t.Error("double wake did not panic")
		}
	}()
	co.WakeAfter(5)
}

func TestCoroutineWakeFinishedPanics(t *testing.T) {
	e := NewEngine()
	co := NewCoroutine(e, "t", func(co *Coroutine) {})
	co.WakeAfter(0)
	e.Run()
	if !co.Done() {
		t.Fatal("not done")
	}
	defer func() {
		if recover() == nil {
			t.Error("waking a finished coroutine did not panic")
		}
	}()
	co.WakeAfter(0)
}

func TestManyCoroutinesDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var out []int
		for i := 0; i < 50; i++ {
			i := i
			co := NewCoroutine(e, "w", func(co *Coroutine) {
				co.WaitCycles(Cycles(i % 7))
				out = append(out, i)
				co.WaitCycles(Cycles(i % 3))
				out = append(out, -i)
			})
			co.WakeAfter(Cycles(i % 5))
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
