package sim

import "fmt"

// ShardSet runs K engines — one per mesh shard, each owning its nodes'
// events — under conservative lookahead. Cross-shard interaction
// happens only through messages with a fixed minimum link latency, so
// within a window of that width every shard's events are independent
// of what the other shards are concurrently doing: the earliest
// possible cross-shard arrival lies beyond the window by construction.
//
// Run proceeds in rounds. Each round picks the globally earliest
// pending event time T, lets every shard execute its events in
// [T, T+Window-1] on its own worker goroutine, then synchronizes at a
// barrier where the round's cross-shard messages are injected into the
// owning shards' queues (Drain) carrying the tie-break keys drawn at
// send time. Because every engine orders its heap by the (at, lane,
// seq) key — not by insertion order — the merged schedule is
// byte-identical to a single serial engine running the same program.
type ShardSet struct {
	// Engines are the per-shard event queues (len >= 1).
	Engines []*Engine
	// Window is the conservative lookahead in cycles: a lower bound on
	// the latency of any cross-shard message (for the PLUS mesh,
	// Base + PerHop). Must be >= 1.
	Window Cycles
	// BarrierWork, when non-nil, runs at each barrier with all shards
	// quiescent, BEFORE Drain — so cross-shard messages it sends are
	// delivered in the same barrier, never a round late. This is where
	// work deferred from mid-round (contention replay, observer merge,
	// kernel copy-list splices) executes against shared state.
	BarrierWork func()
	// Drain delivers all cross-shard messages sent during the finished
	// round into the destination shards' queues (InjectEventAt) and
	// returns how many it moved. It runs on the coordinating goroutine
	// with every worker quiescent.
	Drain func() int
	// AtBarrier, when non-nil, runs after each Drain with all shards
	// quiescent — a safe point for cross-shard inspection (runtime
	// invariant checks). It must not schedule events.
	AtBarrier func()
}

// Run executes rounds until every shard's queue is empty and no
// cross-shard mail remains.
func (s *ShardSet) Run() {
	k := len(s.Engines)
	if k == 0 {
		return
	}
	if s.Window < 1 {
		panic(fmt.Sprintf("sim: shard window %d < 1", s.Window))
	}
	start := make([]chan Cycles, k)
	done := make(chan int, k)
	for i, e := range s.Engines {
		start[i] = make(chan Cycles)
		go func(i int, e *Engine, start <-chan Cycles) {
			for h := range start {
				e.RunUntil(h)
				done <- i
			}
		}(i, e, start[i])
	}
	defer func() {
		for _, c := range start {
			close(c)
		}
	}()

	for {
		// Drain before picking T, not after the workers finish: mail can
		// exist before the first round (setup code sending cross-shard
		// messages), and the final round's mail must land before the
		// emptiness check decides the run is over. BarrierWork comes
		// first so mail it produces drains this barrier too.
		if s.BarrierWork != nil {
			s.BarrierWork()
		}
		if s.Drain != nil {
			s.Drain()
		}
		if s.AtBarrier != nil {
			s.AtBarrier()
		}
		t, ok := s.nextEventTime()
		if !ok {
			return
		}
		h := t + s.Window - 1
		for _, c := range start {
			c <- h
		}
		for range s.Engines {
			<-done
		}
	}
}

// nextEventTime returns the earliest pending event time across all
// shards (mail is always drained before this runs, so queues are the
// complete picture).
func (s *ShardSet) nextEventTime() (Cycles, bool) {
	var min Cycles
	ok := false
	for _, e := range s.Engines {
		if at, has := e.NextEventAt(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}
