package kernel

import (
	"math/rand"
	"testing"

	"plus/internal/memory"
	"plus/internal/mesh"
)

// pathLength sums the hop counts along a copy-list.
func pathLength(net *mesh.Mesh, list []memory.GPage) int {
	total := 0
	for i := 0; i+1 < len(list); i++ {
		total += net.Hops(list[i].Node, list[i+1].Node)
	}
	return total
}

// TestInsertionOrderingNearOptimal checks the §2.3 claim ("the
// operating system kernel orders the copy-list to minimize the network
// path length"): for random replication sequences, the nearest-
// insertion heuristic stays within 2x of the brute-force optimal chain
// (its classical approximation bound) — it is a heuristic, so exact
// optimality is not promised.
func TestInsertionOrderingNearOptimal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 4, 4)
		home := mesh.NodeID(rng.Intn(16))
		vp := r.k.AllocPage(home)
		perm := rng.Perm(16)
		added := 0
		for _, n := range perm {
			node := mesh.NodeID(n)
			if node == home || added >= 5 {
				continue
			}
			added++
			r.k.ReplicateNow(vp, node)
		}
		list := r.k.CopyList(vp)
		got := pathLength(r.net, list)
		best := optimalChain(r.net, list)
		if got > 2*best {
			t.Fatalf("seed %d: ordered chain %d hops > 2x optimal %d", seed, got, best)
		}
	}
}

// optimalChain brute-forces the shortest path through all copies with
// the master fixed first.
func optimalChain(net *mesh.Mesh, list []memory.GPage) int {
	rest := append([]memory.GPage{}, list[1:]...)
	best := 1 << 30
	var permute func(k int)
	permute = func(k int) {
		if k == len(rest) {
			chain := append([]memory.GPage{list[0]}, rest...)
			if l := pathLength(net, chain); l < best {
				best = l
			}
			return
		}
		for i := k; i < len(rest); i++ {
			rest[k], rest[i] = rest[i], rest[k]
			permute(k + 1)
			rest[k], rest[i] = rest[i], rest[k]
		}
	}
	permute(0)
	return best
}

// TestCopyListChainMatchesCentralTable verifies the hardware next-copy
// tables always mirror the kernel's central list after arbitrary
// replicate/delete sequences.
func TestCopyListChainMatchesCentralTable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		r := newRig(t, 4, 2)
		vp := r.k.AllocPage(mesh.NodeID(rng.Intn(8)))
		for step := 0; step < 20; step++ {
			list := r.k.CopyList(vp)
			if rng.Intn(3) > 0 || len(list) == 1 {
				r.k.ReplicateNow(vp, mesh.NodeID(rng.Intn(8)))
			} else {
				victim := list[rng.Intn(len(list))]
				r.k.DeleteCopy(vp, victim.Node)
			}
			// Walk the hardware chain from the master and compare.
			list = r.k.CopyList(vp)
			cur := list[0]
			for i := 0; ; i++ {
				if i >= len(list) || list[i] != cur {
					t.Fatalf("seed %d step %d: chain diverges at %d: %v vs central %v", seed, step, i, cur, list)
				}
				m, ok := r.cms[cur.Node].Master(cur.Page)
				if !ok || m != list[0] {
					t.Fatalf("seed %d step %d: master pointer wrong at %v", seed, step, cur)
				}
				next, ok := r.cms[cur.Node].Next(cur.Page)
				if !ok {
					t.Fatalf("seed %d step %d: missing next entry at %v", seed, step, cur)
				}
				if next.IsNil() {
					if i != len(list)-1 {
						t.Fatalf("seed %d step %d: chain ends early at %d of %d", seed, step, i, len(list))
					}
					break
				}
				cur = next
			}
		}
	}
}

// TestResolvePrefersNearestEverywhere property-checks Resolve against
// brute force for random replica placements.
func TestResolvePrefersNearestEverywhere(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 99))
		r := newRig(t, 4, 4)
		vp := r.k.AllocPage(mesh.NodeID(rng.Intn(16)))
		for k := 0; k < 3; k++ {
			r.k.ReplicateNow(vp, mesh.NodeID(rng.Intn(16)))
		}
		holders := r.k.CopyNodes(vp)
		for n := mesh.NodeID(0); n < 16; n++ {
			g, err := r.k.Resolve(n, vp)
			if err != nil {
				t.Fatal(err)
			}
			best := 1 << 30
			for _, h := range holders {
				if d := r.net.Hops(n, h); d < best {
					best = d
				}
			}
			if r.net.Hops(n, g.Node) != best {
				t.Fatalf("seed %d: node %d resolved to %d (%d hops), best is %d",
					seed, n, g.Node, r.net.Hops(n, g.Node), best)
			}
		}
	}
}
