package kernel

import (
	"testing"

	"plus/internal/cache"
	"plus/internal/coherence"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/mmu"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

type rig struct {
	eng  *sim.Engine
	net  *mesh.Mesh
	st   *stats.Machine
	mems []*memory.Memory
	cms  []*coherence.CM
	tbls []*mmu.Table
	k    *Kernel
}

func newRig(t *testing.T, w, h int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig(w, h))
	tm := timing.Default()
	st := stats.New(w * h)
	r := &rig{eng: eng, net: net, st: st}
	for i := 0; i < w*h; i++ {
		mem := memory.New()
		ca := cache.New(cache.DefaultConfig(), tm)
		r.mems = append(r.mems, mem)
		r.cms = append(r.cms, coherence.New(mesh.NodeID(i), eng, net, mem, ca, tm, st))
		r.tbls = append(r.tbls, mmu.New())
	}
	r.k = New(eng, net, r.cms, r.mems, r.tbls, tm, st)
	return r
}

func TestAllocPageInstallsMasterTables(t *testing.T) {
	r := newRig(t, 2, 2)
	vp := r.k.AllocPage(2)
	list := r.k.CopyList(vp)
	if len(list) != 1 || list[0].Node != 2 {
		t.Fatalf("copy list = %v", list)
	}
	m, ok := r.cms[2].Master(list[0].Page)
	if !ok || m != list[0] {
		t.Fatalf("master table: %v %v", m, ok)
	}
	nx, ok := r.cms[2].Next(list[0].Page)
	if !ok || !nx.IsNil() {
		t.Fatalf("next table: %v %v", nx, ok)
	}
	if g, ok := r.tbls[2].Lookup(vp); !ok || g != list[0] {
		t.Fatal("home mapping not installed eagerly")
	}
}

func TestAllocPagesConsecutive(t *testing.T) {
	r := newRig(t, 2, 1)
	base := r.k.AllocPages(0, 3)
	for i := memory.VPage(0); i < 3; i++ {
		if len(r.k.CopyList(base+i)) != 1 {
			t.Fatalf("page %d not allocated", base+i)
		}
	}
}

func TestResolveClosestCopy(t *testing.T) {
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(3)
	r.k.ReplicateNow(vp, 1)
	g, err := r.k.Resolve(0, vp)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node != 1 {
		t.Fatalf("node 0 resolved to node %d, want 1 (closest)", g.Node)
	}
	// A node holding a copy resolves to itself.
	g, _ = r.k.Resolve(3, vp)
	if g.Node != 3 {
		t.Fatalf("node 3 resolved to %d, want itself", g.Node)
	}
	if _, err := r.k.Resolve(0, 999); err == nil {
		t.Fatal("unmapped page resolved")
	}
}

func TestReplicateNowCopiesData(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(0)
	master := r.k.CopyList(vp)[0]
	for i := uint32(0); i < 10; i++ {
		r.mems[0].Write(master.Page, i, memory.Word(100+i))
	}
	r.k.ReplicateNow(vp, 1)
	list := r.k.CopyList(vp)
	if len(list) != 2 || list[1].Node != 1 {
		t.Fatalf("copy list = %v", list)
	}
	for i := uint32(0); i < 10; i++ {
		if got := r.mems[1].Read(list[1].Page, i); got != memory.Word(100+i) {
			t.Fatalf("replica word %d = %d", i, got)
		}
	}
	// Chain wiring: master.next = replica, replica.next = nil.
	nx, _ := r.cms[0].Next(master.Page)
	if nx != list[1] {
		t.Fatalf("master next = %v", nx)
	}
	nx, _ = r.cms[1].Next(list[1].Page)
	if !nx.IsNil() {
		t.Fatalf("replica next = %v", nx)
	}
	// Idempotent.
	r.k.ReplicateNow(vp, 1)
	if len(r.k.CopyList(vp)) != 2 {
		t.Fatal("duplicate replica created")
	}
}

func TestCopyListOrderingMinimizesPath(t *testing.T) {
	// 4x1 mesh, master at node 0. Replicate on 3 then 1: nearest
	// insertion should give 0→1→3, not 0→3→1.
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 3)
	r.k.ReplicateNow(vp, 1)
	nodes := r.k.CopyNodes(vp)
	want := []mesh.NodeID{0, 1, 3}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("copy list order %v, want %v", nodes, want)
		}
	}
}

func TestWriteThroughReplicatedPageEndToEnd(t *testing.T) {
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 2)
	// Resolve node 2's view and write through its local copy.
	g2, _ := r.k.Resolve(2, vp)
	r.cms[2].Write(coherence.At(g2, 5), 42, func() {})
	r.eng.Run()
	if err := r.k.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	if got := r.k.Peek(memory.VPage(vp).Addr(5)); got != 42 {
		t.Fatalf("Peek = %d", got)
	}
}

func TestBackgroundReplicateOverlapsWrites(t *testing.T) {
	// Link-then-copy: writes issued while the bulk copy is in flight
	// must be reflected in the new copy when everything settles.
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	master := r.k.CopyList(vp)[0]
	for i := uint32(0); i < memory.PageWords; i++ {
		r.mems[0].Write(master.Page, i, memory.Word(i))
	}
	done := false
	r.k.Replicate(vp, 2, func() { done = true })
	// Concurrent writes through the master while the copy is in flight.
	for i := uint32(0); i < 50; i++ {
		off := i * 3 % memory.PageWords
		r.cms[0].Write(coherence.At(master, off), memory.Word(7777+i), func() {})
	}
	r.eng.Run()
	if !done {
		t.Fatal("replicate completion never fired")
	}
	if err := r.k.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	if g, ok := r.tbls[2].Lookup(vp); !ok || g.Node != 2 {
		t.Fatal("node 2 mapping not switched to local copy")
	}
}

func TestPokePeekAllCopies(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 1)
	va := memory.VPage(vp).Addr(9)
	r.k.Poke(va, 1234)
	if r.k.Peek(va) != 1234 {
		t.Fatal("Peek after Poke mismatch")
	}
	for _, g := range r.k.CopyList(vp) {
		if r.mems[g.Node].Read(g.Page, 9) != 1234 {
			t.Fatalf("copy on node %d not poked", g.Node)
		}
	}
}

func TestDeleteCopyMiddleOfList(t *testing.T) {
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 1)
	r.k.ReplicateNow(vp, 2)
	r.k.DeleteCopy(vp, 1)
	nodes := r.k.CopyNodes(vp)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("copy nodes after delete = %v", nodes)
	}
	// Writes still propagate 0→2 after the splice.
	g0 := r.k.CopyList(vp)[0]
	r.cms[0].Write(coherence.At(g0, 1), 5, func() {})
	r.eng.Run()
	if err := r.k.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	// Node 1's table entry was shot down and refaults elsewhere.
	if _, ok := r.tbls[1].Lookup(vp); ok {
		t.Fatal("deleted copy still mapped on node 1")
	}
}

func TestDeleteMasterPromotesNext(t *testing.T) {
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 1)
	r.k.ReplicateNow(vp, 2)
	r.k.DeleteCopy(vp, 0)
	nodes := r.k.CopyNodes(vp)
	if nodes[0] != 1 {
		t.Fatalf("new master = %d, want 1", nodes[0])
	}
	// Every remaining copy's master pointer was rewritten; a write via
	// node 2 must start at node 1 and reach both copies.
	g2, _ := r.k.Resolve(2, vp)
	r.cms[2].Write(coherence.At(g2, 0), 77, func() {})
	r.eng.Run()
	if err := r.k.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	if r.k.Peek(memory.VPage(vp).Addr(0)) != 77 {
		t.Fatal("write lost after master promotion")
	}
}

func TestDeleteOnlyCopyPanics(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(0)
	defer func() {
		if recover() == nil {
			t.Error("deleting the only copy did not panic")
		}
	}()
	r.k.DeleteCopy(vp, 0)
}

func TestDeleteDuringWritesPanics(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 1)
	g := r.k.CopyList(vp)[0]
	r.cms[0].Write(coherence.At(g, 0), 1, func() {})
	defer func() {
		if recover() == nil {
			t.Error("DeleteCopy with writes in flight did not panic")
		}
	}()
	r.k.DeleteCopy(vp, 1)
}

func TestMigrate(t *testing.T) {
	r := newRig(t, 4, 1)
	vp := r.k.AllocPage(0)
	r.k.Poke(memory.VPage(vp).Addr(3), 66)
	r.k.Migrate(vp, 0, 3)
	nodes := r.k.CopyNodes(vp)
	if len(nodes) != 1 || nodes[0] != 3 {
		t.Fatalf("post-migration nodes = %v", nodes)
	}
	if r.k.Peek(memory.VPage(vp).Addr(3)) != 66 {
		t.Fatal("data lost in migration")
	}
}

func TestCompetitiveReplication(t *testing.T) {
	r := newRig(t, 4, 1)
	r.k.SetCompetitiveThreshold(10)
	vp := r.k.AllocPage(3)
	for i := 0; i < 9; i++ {
		r.k.NoteRemoteRef(0, vp)
	}
	if r.k.HasCopy(vp, 0) {
		t.Fatal("replicated below threshold")
	}
	if r.k.RefCount(0, vp) != 9 {
		t.Fatalf("ref count = %d", r.k.RefCount(0, vp))
	}
	r.k.NoteRemoteRef(0, vp) // crosses threshold
	r.eng.Run()              // background copy completes
	if !r.k.HasCopy(vp, 0) {
		t.Fatal("threshold crossing did not replicate")
	}
	if r.k.Replications != 1 {
		t.Fatalf("replications = %d", r.k.Replications)
	}
	// Counter reset after successful replication; further local refs
	// don't re-trigger.
	r.k.NoteRemoteRef(0, vp)
	r.eng.Run()
	if len(r.k.CopyList(vp)) != 2 {
		t.Fatal("duplicate competitive replication")
	}
}

func TestCompetitiveDisabledByDefault(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(1)
	for i := 0; i < 1000; i++ {
		r.k.NoteRemoteRef(0, vp)
	}
	if r.k.HasCopy(vp, 0) {
		t.Fatal("replication happened with threshold 0")
	}
	// The hardware counters run unconditionally (§2.4); only the
	// replication policy is off.
	if r.k.RefCount(0, vp) != 1000 {
		t.Fatalf("counter = %d, want 1000", r.k.RefCount(0, vp))
	}
	prof := r.k.RemoteRefProfile()
	if prof[vp][0] != 1000 {
		t.Fatalf("profile = %v", prof)
	}
}

func TestCheckCoherentDetectsDivergence(t *testing.T) {
	r := newRig(t, 2, 1)
	vp := r.k.AllocPage(0)
	r.k.ReplicateNow(vp, 1)
	list := r.k.CopyList(vp)
	r.mems[1].Write(list[1].Page, 4, 999) // corrupt the replica
	if err := r.k.CheckCoherent(); err == nil {
		t.Fatal("divergence not detected")
	}
}
