// Node-crash failover: the kernel side of the crash & recovery
// protocol (crash-script runs only; see PROTOCOL.md "Crash & failover"
// and coherence/crash.go for the per-node half).
//
// The failover epoch for a crashed node runs atomically at one
// simulated instant — the kernel's transition fence: no protocol
// message is processed between the first list rewrite and the last
// transport sweep, so survivors never observe a half-rewritten chain.
// Per page the dead node held, the epoch:
//
//  1. splices the dead copy out of the copy-list, promoting the next
//     copy to master when the dead node held it (the hardened form of
//     DeleteCopy's promotion path — but without requiring write
//     quiescence, which a crash never grants);
//  2. rewrites survivor master/next tables and shoots down stale
//     translations machine-wide;
//  3. starts a sequential resync cascade re-copying every copy
//     downstream of the break from its predecessor (the chain prefix
//     property — earlier copies hold a superset of later copies'
//     applied writes — makes each hop restore the next);
//  4. runs every live CM's Failover sweep: reroute parked requests,
//     complete truncated updates, reset the transport pair, and
//     force-retire or re-issue operations stranded inside the dead
//     node.
//
// A restart re-runs the epoch first if the outage went undetected,
// then wipes the node's volatile state and rejoins each of its pages
// as an ordinary copy via background replication.
package kernel

import (
	"fmt"

	"plus/internal/coherence"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// MarkDown records the crash instant for a node, for the
// recovery-time metric. Called by the core layer at injection time;
// the failover epoch itself runs at detection (or restart).
func (k *Kernel) MarkDown(n mesh.NodeID, at sim.Cycles) {
	if k.downSince == nil {
		k.downSince = make(map[mesh.NodeID]sim.Cycles)
	}
	k.downSince[n] = at
}

// RerouteFrame implements coherence.FailoverRouter: traffic addressed
// to a frame a failover spliced out is redirected to the current
// master of the page that frame held. ok is false for frames never
// lost to a crash.
func (k *Kernel) RerouteFrame(owner mesh.NodeID, frame memory.PPage) (memory.GPage, bool) {
	frames := k.lost[owner]
	if frames == nil {
		return memory.NilGPage, false
	}
	vp, ok := frames[frame]
	if !ok {
		return memory.NilGPage, false
	}
	list := k.copyLists[vp]
	if len(list) == 0 {
		return memory.NilGPage, false
	}
	return list[0], true
}

// FailNode runs the failover epoch for a crashed node. Idempotent per
// outage: detection by several peers and a subsequent restart all
// funnel here, and only the first call acts.
func (k *Kernel) FailNode(n mesh.NodeID) {
	if k.sharded() {
		panic("kernel: FailNode is serial-only (rewrites other shards' CM tables in place); run with Shards <= 1")
	}
	if _, done := k.failed[n]; done {
		return
	}
	if k.failed == nil {
		k.failed = make(map[mesh.NodeID][]memory.VPage)
	}
	if k.lost == nil {
		k.lost = make(map[mesh.NodeID]map[memory.PPage]memory.VPage)
	}
	if k.lost[n] == nil {
		k.lost[n] = make(map[memory.PPage]memory.VPage)
	}
	k.st.Failovers++
	if at, ok := k.downSince[n]; ok {
		k.st.Recovery.Observe(uint64(k.eng.Now() - at))
	}

	// affected collects every copy of every page the dead node held —
	// operations addressed to any of them may have had protocol state
	// inside the crashed node.
	affected := make(map[memory.GPage]bool)
	rejoin := []memory.VPage{}
	for vp := memory.VPage(0); vp < k.nextVPage; vp++ {
		list := k.copyLists[vp]
		idx := -1
		for i, g := range list {
			if g.Node == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		if len(list) == 1 {
			panic(fmt.Sprintf("kernel: node %d crashed holding the only copy of page %d — unrecoverable data loss; replicate pages that must survive crashes", n, vp))
		}
		k.st.PagesFailedOver++
		for _, g := range list {
			affected[g] = true
		}
		k.lost[n][list[idx].Page] = vp
		rejoin = append(rejoin, vp)
		nl := append(append([]memory.GPage{}, list[:idx]...), list[idx+1:]...)
		k.copyLists[vp] = nl
		if idx == 0 {
			// The master died: promote the next copy, exactly as
			// DeleteCopy does, and repoint every survivor.
			k.st.MastersPromoted++
			newMaster := nl[0]
			for _, g := range nl {
				k.cms[g.Node].SetMaster(g.Page, newMaster)
			}
		} else {
			// Splice the predecessor past the dead copy.
			pred := nl[idx-1]
			next := memory.NilGPage
			if idx < len(nl) {
				next = nl[idx]
			}
			k.cms[pred.Node].SetNext(pred.Page, next)
		}
		// The dead node's own tables are left alone: they are volatile
		// state that Restart wipes wholesale.
		for _, tbl := range k.tables {
			tbl.Invalidate(vp)
		}
		for _, g := range nl {
			k.tables[g.Node].Install(vp, g)
		}
		k.resyncChain(vp, idx)
	}
	k.failed[n] = rejoin

	aff := func(g coherence.GAddr) bool {
		return affected[memory.GPage{Node: g.Node, Page: g.Page}]
	}
	for i, cm := range k.cms {
		// Skip the dead node and any other currently-down node: a down
		// CM's parked traffic was dropped at its own crash, and its
		// stranded operations are re-issued at its own restart.
		if mesh.NodeID(i) == n || cm.Down() {
			continue
		}
		cm.Failover(n, aff)
	}
}

// resyncChain re-copies vp's copies from list position start to the
// end, one hop at a time: each target receives a snapshot from its
// chain predecessor over the same FIFO (and transport-ordered) pair
// that carries the predecessor's subsequent updates, so — exactly as
// in Replicate — the target converges to the predecessor while writes
// continue to flow. Hops run sequentially because the chain prefix
// property only guarantees a predecessor is correct once its own
// resync (if any) completed. The list is re-read each hop so a further
// failover during the cascade cannot strand it on stale positions.
func (k *Kernel) resyncChain(vp memory.VPage, start int) {
	var hop func(pos int)
	hop = func(pos int) {
		list := k.copyLists[vp]
		if pos < 1 || pos >= len(list) {
			return
		}
		pred, succ := list[pos-1], list[pos]
		k.st.PagesResynced++
		k.copiesInFlight.Add(1)
		fired := false
		k.cms[pred.Node].PageCopy(pred.Page, succ, func() {
			if fired {
				return // administrative + delivered completion raced
			}
			fired = true
			k.copiesInFlight.Add(-1)
			hop(pos + 1)
		})
	}
	if start < 1 {
		start = 1
	}
	hop(start)
}

// RestartNode brings a crashed node back: the failover epoch runs now
// if the outage went undetected (nobody escalated before the restart),
// the node's volatile CM and MMU state is wiped, and every page it
// held before the crash is re-replicated onto it in the background —
// the node rejoins each copy-list as an ordinary copy, never
// reclaiming mastership it lost.
func (k *Kernel) RestartNode(n mesh.NodeID) {
	if _, was := k.failed[n]; !was {
		k.FailNode(n)
	}
	vps := k.failed[n]
	delete(k.failed, n)
	delete(k.downSince, n)
	k.cms[n].Restart()
	k.tables[n].Flush()
	for _, vp := range vps {
		if k.HasCopy(vp, n) {
			continue
		}
		k.st.RejoinCopies++
		k.Replicate(vp, n, nil)
	}
}
