// Package kernel models the operating-system services of PLUS (§2.4):
// the centralized virtual-memory map, page allocation, software-driven
// page replication and deletion with hardware-assisted background
// copying, copy-list ordering, and the competitive replication policy
// driven by the hardware per-page reference counters.
//
// Software is responsible for page placement and replication policies;
// the hardware (coherence manager, package coherence) keeps the copies
// coherent and performs the bulk copy.
package kernel

import (
	"fmt"
	"sync/atomic"

	"plus/internal/coherence"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/mmu"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// Kernel is the machine-wide operating-system state. Like all
// simulated components it runs under the engine's single logical
// thread.
type Kernel struct {
	eng    *sim.Engine
	net    *mesh.Mesh
	cms    []*coherence.CM
	mems   []*memory.Memory
	tables []*mmu.Table
	tm     timing.Timing
	st     *stats.Machine

	// copyLists is the centralized table: virtual page → ordered
	// copy-list, master copy first.
	copyLists map[memory.VPage][]memory.GPage
	nextVPage memory.VPage

	// Competitive replication (§2.4): per-(node, page) remote reference
	// counters maintained by hardware; when one overflows the
	// threshold, the kernel replicates the page onto that node. The
	// counters are held per referencing node — each node's counter map is
	// written only by that node's own references, so under sharding every
	// map stays on its owner's shard and NoteRemoteRef never races.
	threshold uint64
	refCounts []map[memory.VPage]uint64
	// replicating[node] marks pages with a competitive replication in
	// flight toward that node. Per-node maps: each is written only by
	// its node's own triggers and completions, so under sharding every
	// map stays on its owner's shard.
	replicating []map[memory.VPage]bool
	// Replications counts competitive replications triggered. Mutated
	// only with the machine quiescent (inline in serial runs, at
	// lookahead barriers in sharded ones).
	Replications uint64

	// copiesInFlight counts background replications whose bulk page copy
	// has not yet completed. Part of the quiescence predicate used by
	// core's invariant checker: while a copy is in flight the new
	// replica's contents legitimately lag its peers. Atomic because
	// completions fire on the destination node's shard — two shards can
	// retire copies in the same round.
	copiesInFlight atomic.Int64

	// barrierQ[shard] holds the page reorganizations requested
	// mid-round (sharded runs only; nil otherwise): copy-list splices
	// mutate other shards' CM and MMU tables in place, which is only
	// safe with every worker quiescent. Only the owning shard's worker
	// appends — so each queue sits in its engine's dispatch order —
	// and RunBarrierWork head-merges the queues at the next barrier.
	// inRounds marks the window (BeginRounds/EndRounds) in which
	// reorganizations must defer.
	barrierQ [][]barrierOp
	inRounds bool

	// Crash/failover bookkeeping (failover.go; nil on runs without a
	// crash script). failed holds each failed-over node's pre-crash
	// pages until its restart rejoins them; downSince the crash instant
	// per currently-down node; lost every frame ever spliced out by a
	// failover, so stale traffic addressed to a dead node's copy can be
	// rerouted to the page's current master.
	failed    map[mesh.NodeID][]memory.VPage
	downSince map[mesh.NodeID]sim.Cycles
	lost      map[mesh.NodeID]map[memory.PPage]memory.VPage
}

// barrierOp is one page reorganization deferred to the next lookahead
// barrier, logged under the acting node's dispatch tag so the barrier
// replays requests in the exact order a serial engine would have
// executed them.
type barrierOp struct {
	tag  sim.DispatchTag
	kind uint8
	vp   memory.VPage
	node mesh.NodeID // acting node: new-copy holder (replicate/competitive), victim (delete), destination (migrate)
	from mesh.NodeID // migrate only: the node losing its copy
	done func()
}

const (
	opReplicate uint8 = iota
	opDelete
	opMigrate
	opCompetitive
)

// New assembles the kernel over the machine's nodes.
func New(eng *sim.Engine, net *mesh.Mesh, cms []*coherence.CM, mems []*memory.Memory, tables []*mmu.Table, tm timing.Timing, st *stats.Machine) *Kernel {
	refs := make([]map[memory.VPage]uint64, net.Nodes())
	repl := make([]map[memory.VPage]bool, net.Nodes())
	for i := range refs {
		refs[i] = make(map[memory.VPage]uint64)
		repl[i] = make(map[memory.VPage]bool)
	}
	k := &Kernel{
		eng:         eng,
		net:         net,
		cms:         cms,
		mems:        mems,
		tables:      tables,
		tm:          tm,
		st:          st,
		copyLists:   make(map[memory.VPage][]memory.GPage),
		refCounts:   refs,
		replicating: repl,
	}
	if net.Config().ShardCount() > 1 {
		k.barrierQ = make([][]barrierOp, net.Config().ShardCount())
	}
	return k
}

// sharded reports whether the machine runs on more than one shard.
// Crash failover — which rewrites copy-lists and transport state in a
// multi-step epoch — is still serial-only; the page-reorganization
// services run sharded by deferring to barrier work (RunBarrierWork).
func (k *Kernel) sharded() bool { return k.net.Config().ShardCount() > 1 }

// BeginRounds marks the start of a sharded run's rounds: until
// EndRounds, page reorganizations defer to barrier work instead of
// splicing shared state mid-round. core brackets ShardSet.Run with
// these; outside the bracket (setup, between runs) the machine is
// quiescent and reorganizations execute inline exactly as in serial
// runs.
func (k *Kernel) BeginRounds() { k.inRounds = true }

// EndRounds closes the deferral window opened by BeginRounds.
func (k *Kernel) EndRounds() { k.inRounds = false }

// enqueue logs one deferred reorganization under the acting node's
// current dispatch tag. Mid-round requests must come from code running
// on the shard that owns the acting node — true for every in-tree
// caller: competitive triggers fire on the referencing node, and
// threads reorganize copies on their own node — so the append touches
// only the calling shard's queue.
func (k *Kernel) enqueue(op barrierOp) {
	op.tag = k.net.EngineFor(op.node).DispatchTag()
	k.barrierQ[k.net.ShardOf(op.node)] = append(k.barrierQ[k.net.ShardOf(op.node)], op)
}

// RunBarrierWork executes the page reorganizations deferred during
// the finished round, in the order a single serial engine would have
// reached them — each shard's queue is already in its engine's
// dispatch order, and sim.MergeByTag interleaves the queues by head
// dispatch key — with every shard worker quiescent. core wires it
// into the shard runner's barrier, before cross-shard mail drains, so
// messages the splices send (page-copy traffic) are delivered in the
// same barrier.
func (k *Kernel) RunBarrierWork() {
	if k.barrierQ == nil {
		return
	}
	sim.MergeByTag(k.barrierQ,
		func(op *barrierOp) sim.DispatchTag { return op.tag },
		func(op *barrierOp) {
			switch op.kind {
			case opReplicate:
				k.replicateBG(op.vp, op.node, op.done)
			case opDelete:
				k.deleteCopyNow(op.vp, op.node)
			case opMigrate:
				k.ReplicateNow(op.vp, op.node)
				k.deleteCopyNow(op.vp, op.from)
			case opCompetitive:
				k.competitiveNow(op.vp, op.node)
			}
			op.done = nil
		})
	for i := range k.barrierQ {
		k.barrierQ[i] = k.barrierQ[i][:0]
	}
}

// SetCompetitiveThreshold enables the competitive replication policy:
// after threshold remote references from one node to one page, the
// page is replicated onto that node. 0 disables the policy.
func (k *Kernel) SetCompetitiveThreshold(threshold uint64) {
	k.threshold = threshold
}

// AllocPage allocates one fresh virtual page homed on (mastered at)
// the given node and returns its page number. The home mapping is
// installed eagerly; other nodes fill lazily on first touch.
func (k *Kernel) AllocPage(home mesh.NodeID) memory.VPage {
	vp := k.nextVPage
	k.nextVPage++
	frame := k.mems[home].AllocFrame()
	gp := memory.GPage{Node: home, Page: frame}
	k.cms[home].InstallPage(frame, gp, memory.NilGPage)
	k.copyLists[vp] = []memory.GPage{gp}
	k.tables[home].Install(vp, gp)
	return vp
}

// AllocPages allocates n consecutive virtual pages homed on home and
// returns the first page number.
func (k *Kernel) AllocPages(home mesh.NodeID, n int) memory.VPage {
	if n < 1 {
		panic("kernel: AllocPages with n < 1")
	}
	base := k.AllocPage(home)
	for i := 1; i < n; i++ {
		k.AllocPage(home)
	}
	return base
}

// CopyList returns the page's copy-list (master first). The returned
// slice must not be mutated.
func (k *Kernel) CopyList(vp memory.VPage) []memory.GPage {
	return k.copyLists[vp]
}

// CopyNodes returns the nodes holding copies of vp, master first.
func (k *Kernel) CopyNodes(vp memory.VPage) []mesh.NodeID {
	list := k.copyLists[vp]
	nodes := make([]mesh.NodeID, len(list))
	for i, g := range list {
		nodes[i] = g.Node
	}
	return nodes
}

// HasCopy reports whether node holds a copy of vp.
func (k *Kernel) HasCopy(vp memory.VPage, node mesh.NodeID) bool {
	for _, g := range k.copyLists[vp] {
		if g.Node == node {
			return true
		}
	}
	return false
}

// Resolve implements the lazy page-table fill: it returns the most
// convenient (closest) physical copy of vp for the requesting node.
// The caller charges the fault cost and installs the mapping.
func (k *Kernel) Resolve(node mesh.NodeID, vp memory.VPage) (memory.GPage, error) {
	list := k.copyLists[vp]
	if len(list) == 0 {
		return memory.NilGPage, fmt.Errorf("kernel: virtual page %d not mapped", vp)
	}
	best := list[0]
	bestH := k.net.Hops(node, best.Node)
	for _, g := range list[1:] {
		if h := k.net.Hops(node, g.Node); h < bestH || (h == bestH && g.Node < best.Node) {
			best, bestH = g, h
		}
	}
	return best, nil
}

// insertionPoint picks the copy-list position (an index >= 1, i.e.
// after the master) where linking a copy on node adds the least
// network path length — the kernel "orders the copy-list to minimize
// the network path length through all the nodes in the list" (§2.3)
// by nearest insertion.
func (k *Kernel) insertionPoint(list []memory.GPage, node mesh.NodeID) int {
	bestPos, bestCost := len(list), -1
	for pos := 1; pos <= len(list); pos++ {
		pred := list[pos-1].Node
		cost := k.net.Hops(pred, node)
		if pos < len(list) {
			succ := list[pos].Node
			cost += k.net.Hops(node, succ) - k.net.Hops(pred, succ)
		}
		if bestCost < 0 || cost < bestCost {
			bestPos, bestCost = pos, cost
		}
	}
	return bestPos
}

// ReplicateNow creates a copy of vp on node instantaneously — data,
// copy-list splice and page-table update all at the current instant
// with no simulated cost. Use it for pre-run placement, mirroring the
// paper's experiments where memory layout is requested up front.
func (k *Kernel) ReplicateNow(vp memory.VPage, node mesh.NodeID) {
	if k.HasCopy(vp, node) {
		return
	}
	list := k.copyLists[vp]
	if len(list) == 0 {
		panic(fmt.Sprintf("kernel: replicate of unmapped page %d", vp))
	}
	pos := k.insertionPoint(list, node)
	frame := k.mems[node].AllocFrame()
	gp := memory.GPage{Node: node, Page: frame}
	k.splice(vp, pos, gp)
	// Instant data copy from the predecessor.
	pred := k.copyLists[vp][pos-1]
	copy(k.mems[node].Page(frame), k.mems[pred.Node].Page(pred.Page))
	k.tables[node].Install(vp, gp)
}

// Replicate creates a copy of vp on node as a background activity
// (§2.4): the new copy is linked into the copy-list first — so
// concurrent writes propagate through it while the bulk data is in
// flight — and then the hardware copies the page from the predecessor.
// done fires when the copy is complete and the node's mapping has been
// switched to the local copy.
//
// Mid-round in a sharded run, the splice — which rewrites other
// shards' CM tables in place — defers to the next lookahead barrier as
// a work item; the request must then come from code running on node's
// own shard (see enqueue). Quiescent callers (setup, between runs) run
// inline for any shard count.
func (k *Kernel) Replicate(vp memory.VPage, node mesh.NodeID, done func()) {
	if k.inRounds {
		k.enqueue(barrierOp{kind: opReplicate, vp: vp, node: node, done: done})
		return
	}
	k.replicateBG(vp, node, done)
}

// replicateBG is Replicate's body, run with the machine quiescent.
func (k *Kernel) replicateBG(vp memory.VPage, node mesh.NodeID, done func()) {
	if k.HasCopy(vp, node) {
		if done != nil {
			done()
		}
		return
	}
	list := k.copyLists[vp]
	if len(list) == 0 {
		panic(fmt.Sprintf("kernel: replicate of unmapped page %d", vp))
	}
	pos := k.insertionPoint(list, node)
	frame := k.mems[node].AllocFrame()
	gp := memory.GPage{Node: node, Page: frame}
	k.splice(vp, pos, gp)
	pred := k.copyLists[vp][pos-1]
	k.copiesInFlight.Add(1)
	// fired guards against the completion running twice: on crash-script
	// runs a copy racing a crash may be completed administratively from
	// a parked retransmit clone as well as by its delivered original.
	fired := false
	k.cms[pred.Node].PageCopy(pred.Page, gp, func() {
		if fired {
			return
		}
		fired = true
		// When the new page has been fully written, the node updates
		// its address translation tables to use the new copy. This runs
		// on node's own shard (the copy arrives there), so the table
		// install never crosses workers.
		k.copiesInFlight.Add(-1)
		k.tables[node].Install(vp, gp)
		if done != nil {
			done()
		}
	})
}

// splice links gp into vp's copy-list at position pos, updating the
// hardware master/next-copy tables on the predecessor and new node.
func (k *Kernel) splice(vp memory.VPage, pos int, gp memory.GPage) {
	list := k.copyLists[vp]
	master := list[0]
	pred := list[pos-1]
	next := memory.NilGPage
	if pos < len(list) {
		next = list[pos]
	}
	k.cms[gp.Node].InstallPage(gp.Page, master, next)
	k.cms[pred.Node].SetNext(pred.Page, gp)
	nl := make([]memory.GPage, 0, len(list)+1)
	nl = append(nl, list[:pos]...)
	nl = append(nl, gp)
	nl = append(nl, list[pos:]...)
	k.copyLists[vp] = nl
}

// DeleteCopy removes node's copy of vp. Deleting a copy is akin to
// removing a page in a paging operating system: every node that maps
// the page must update its translation tables and flush its TLB
// (§2.4). The machine must be quiescent for this page (no writes or
// delayed operations in flight); the kernel verifies machine-wide
// write quiescence and panics otherwise — the simulated workloads
// fence before reorganizing memory, exactly as real software must.
//
// Mid-round in a sharded run the deletion defers to the next lookahead
// barrier (the quiescence check and table rewrites need every worker
// stopped); the copy disappears at the round boundary rather than at
// the call instant. Quiescent callers run inline for any shard count.
func (k *Kernel) DeleteCopy(vp memory.VPage, node mesh.NodeID) {
	if k.inRounds {
		k.enqueue(barrierOp{kind: opDelete, vp: vp, node: node})
		return
	}
	k.deleteCopyNow(vp, node)
}

// deleteCopyNow is DeleteCopy's body, run with the machine quiescent.
func (k *Kernel) deleteCopyNow(vp memory.VPage, node mesh.NodeID) {
	for _, cm := range k.cms {
		if cm.PendingCount() != 0 {
			panic("kernel: DeleteCopy while writes are in flight")
		}
	}
	list := k.copyLists[vp]
	idx := -1
	for i, g := range list {
		if g.Node == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("kernel: node %d holds no copy of page %d", node, vp))
	}
	if len(list) == 1 {
		panic(fmt.Sprintf("kernel: cannot delete the only copy of page %d", vp))
	}
	victim := list[idx]
	nl := append(append([]memory.GPage{}, list[:idx]...), list[idx+1:]...)
	k.copyLists[vp] = nl

	if idx == 0 {
		// Deleting the master: promote the next copy and rewrite every
		// remaining copy's master pointer.
		newMaster := nl[0]
		for _, g := range nl {
			k.cms[g.Node].SetMaster(g.Page, newMaster)
		}
	} else {
		// Splice the predecessor past the victim.
		pred := nl[idx-1]
		next := memory.NilGPage
		if idx < len(nl) {
			next = nl[idx]
		}
		k.cms[pred.Node].SetNext(pred.Page, next)
	}
	k.cms[node].DropPage(victim.Page)

	// TLB shootdown: every node remaps the page lazily.
	for _, tbl := range k.tables {
		tbl.Invalidate(vp)
	}
	// Reinstall eager mappings on nodes that still hold copies.
	for _, g := range nl {
		k.tables[g.Node].Install(vp, g)
	}
}

// Migrate moves vp's copy from one node to another: create the new
// copy, then delete the old one (§2.4: "Page migration is achieved
// simply by creating a copy and then deleting the old one"). The
// machine must be write-quiescent, as for DeleteCopy. Mid-round in a
// sharded run the whole move defers to the next barrier as one work
// item (requested from to's shard).
func (k *Kernel) Migrate(vp memory.VPage, from, to mesh.NodeID) {
	if k.inRounds {
		k.enqueue(barrierOp{kind: opMigrate, vp: vp, node: to, from: from})
		return
	}
	k.ReplicateNow(vp, to)
	k.deleteCopyNow(vp, from)
}

// NoteRemoteRef is called by the processor layer on every reference
// that leaves the node — the hardware "counts the number of references
// from each processor to each page" unconditionally (§2.4). When the
// competitive threshold is set and crossed, the kernel additionally
// replicates the page onto the referencing node in the background —
// the competitive algorithm of [5]: once the cumulative cost of remote
// references exceeds the cost of creating a copy, create it.
func (k *Kernel) NoteRemoteRef(node mesh.NodeID, vp memory.VPage) {
	refs := k.refCounts[node]
	refs[vp]++
	if k.threshold == 0 {
		return
	}
	if refs[vp] >= k.threshold && !k.replicating[node][vp] && !k.HasCopy(vp, node) {
		// The guard is node-local state, set at the trigger so repeated
		// references this round don't re-trigger; the splice itself (and
		// the machine-wide Replications tally) waits for quiescence.
		k.replicating[node][vp] = true
		if k.inRounds {
			k.enqueue(barrierOp{kind: opCompetitive, vp: vp, node: node})
			return
		}
		k.competitiveNow(vp, node)
	}
}

// competitiveNow performs one competitive replication trigger with the
// machine quiescent: inline at the trigger in serial runs, at the next
// lookahead barrier in sharded ones.
func (k *Kernel) competitiveNow(vp memory.VPage, node mesh.NodeID) {
	k.Replications++
	refs := k.refCounts[node]
	k.replicateBG(vp, node, func() {
		// Fires on node's own shard when the bulk copy lands there.
		k.replicating[node][vp] = false
		refs[vp] = 0
	})
}

// RemoteRefProfile returns a copy of the hardware reference counters:
// per page, the remote-reference count from each node. This is the
// measurement §2.4's second placement mode feeds into the next run's
// memory layout (see the placement package).
func (k *Kernel) RemoteRefProfile() map[memory.VPage]map[mesh.NodeID]uint64 {
	out := make(map[memory.VPage]map[mesh.NodeID]uint64)
	for node, refs := range k.refCounts {
		for vp, c := range refs {
			if c == 0 {
				continue
			}
			pg := out[vp]
			if pg == nil {
				pg = make(map[mesh.NodeID]uint64)
				out[vp] = pg
			}
			pg[mesh.NodeID(node)] = c
		}
	}
	return out
}

// RefCount returns the hardware remote-reference counter for (node,
// page), for tests and instrumentation.
func (k *Kernel) RefCount(node mesh.NodeID, vp memory.VPage) uint64 {
	return k.refCounts[node][vp]
}

// Poke writes v directly into every copy of the word at vp+off,
// bypassing the coherence protocol and simulated time. For machine
// initialization before a run.
func (k *Kernel) Poke(va memory.VAddr, v memory.Word) {
	vp, off := va.Page(), va.Offset()
	list := k.copyLists[vp]
	if len(list) == 0 {
		panic(fmt.Sprintf("kernel: Poke of unmapped page %d", vp))
	}
	for _, g := range list {
		k.mems[g.Node].Write(g.Page, off, v)
	}
}

// Peek reads the master copy of the word at va directly, bypassing
// the protocol and simulated time. For result extraction after a run.
func (k *Kernel) Peek(va memory.VAddr) memory.Word {
	vp, off := va.Page(), va.Offset()
	list := k.copyLists[vp]
	if len(list) == 0 {
		panic(fmt.Sprintf("kernel: Peek of unmapped page %d", vp))
	}
	return k.mems[list[0].Node].Read(list[0].Page, off)
}

// PageCount returns the number of virtual pages allocated so far.
func (k *Kernel) PageCount() int { return int(k.nextVPage) }

// CopiesInFlight returns the number of background page replications
// whose bulk data copy is still travelling.
func (k *Kernel) CopiesInFlight() int { return int(k.copiesInFlight.Load()) }

// CheckCoherent verifies that every copy of every page holds identical
// contents — the general-coherence invariant after quiescence. It
// returns the first discrepancy found.
func (k *Kernel) CheckCoherent() error {
	for vp, list := range k.copyLists {
		if len(list) < 2 {
			continue
		}
		master := k.mems[list[0].Node].Page(list[0].Page)
		for _, g := range list[1:] {
			replica := k.mems[g.Node].Page(g.Page)
			for off := range master {
				if master[off] != replica[off] {
					return fmt.Errorf("kernel: page %d word %d: master(n%d)=%#x copy(n%d)=%#x",
						vp, off, list[0].Node, master[off], g.Node, replica[off])
				}
			}
		}
	}
	return nil
}
