package sssp

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 3, 10, 7)
	b := Generate(100, 3, 10, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("graphs differ for same seed")
		}
	}
}

func TestGenerateReachable(t *testing.T) {
	g := Generate(50, 2, 5, 1)
	dist := Dijkstra(g, 0)
	for v, d := range dist {
		if d == Inf {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
}

func TestDijkstraSmallGraph(t *testing.T) {
	// 0→1 (w by chain), plus whatever extras; verify triangle
	// inequality holds for all edges: dist[u] <= dist[v] + w(v,u).
	g := Generate(64, 4, 8, 3)
	dist := Dijkstra(g, 0)
	if dist[0] != 0 {
		t.Fatalf("dist[source] = %d", dist[0])
	}
	for v := 0; v < g.V; v++ {
		for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
			u := g.Targets[e]
			if dist[u] > dist[v]+g.Weights[e] {
				t.Fatalf("triangle violated at edge %d→%d", v, u)
			}
		}
	}
}

func TestDijkstraPathOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := Generate(40, 3, 7, seed)
		dist := Dijkstra(g, 0)
		// Every non-source vertex must be reached through some edge
		// that exactly achieves its distance.
		for v := 1; v < g.V; v++ {
			found := false
			for s := 0; s < g.V && !found; s++ {
				for e := g.Offsets[s]; e < g.Offsets[s+1]; e++ {
					if g.Targets[e] == int32(v) && dist[s]+g.Weights[e] == dist[v] {
						found = true
						break
					}
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesDijkstraSingleProc(t *testing.T) {
	res, err := Run(Config{MeshW: 2, MeshH: 1, Procs: 1, Vertices: 128, Seed: 5, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestParallelMatchesDijkstraManyProcs(t *testing.T) {
	for _, copies := range []int{1, 2, 4} {
		res, err := Run(Config{MeshW: 4, MeshH: 2, Procs: 8, Vertices: 256, Seed: 11, Copies: copies, Validate: true})
		if err != nil {
			t.Fatalf("copies=%d: %v", copies, err)
		}
		if res.Relaxations < 256 {
			t.Fatalf("copies=%d: only %d relaxations", copies, res.Relaxations)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{MeshW: 4, MeshH: 1, Procs: 4, Vertices: 128, Seed: 3, Copies: 2}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Messages != b.Messages {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Elapsed, a.Messages, b.Elapsed, b.Messages)
	}
}

func TestReplicationShiftsTraffic(t *testing.T) {
	// The Table 2-1 trends: with more copies, the read ratio
	// (local/remote) rises and the total/update ratio falls.
	base := Config{MeshW: 4, MeshH: 4, Procs: 16, Vertices: 512, Seed: 9, Validate: true}
	run := func(copies int) Result {
		cfg := base
		cfg.Copies = copies
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("copies=%d: %v", copies, err)
		}
		return res
	}
	r1 := run(1)
	r3 := run(3)
	if r3.ReadRatio <= r1.ReadRatio {
		t.Errorf("read ratio did not rise with replication: %f -> %f", r1.ReadRatio, r3.ReadRatio)
	}
	if r1.Updates != 0 && r3.UpdateRatio >= r1.UpdateRatio {
		t.Errorf("update ratio did not fall: %f -> %f", r1.UpdateRatio, r3.UpdateRatio)
	}
	if r3.Updates <= r1.Updates {
		t.Errorf("updates did not grow with copies: %d -> %d", r1.Updates, r3.Updates)
	}
}

func TestReplicationImprovesRuntime(t *testing.T) {
	// Figure 2-1's headline: at 16 processors, replication helps.
	base := Config{MeshW: 4, MeshH: 4, Procs: 16, Vertices: 512, Seed: 9}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.Copies = 4
	r4, err := Run(repl)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Elapsed >= r1.Elapsed {
		t.Fatalf("replication did not help: %d >= %d cycles", r4.Elapsed, r1.Elapsed)
	}
}
