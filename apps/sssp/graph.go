package sssp

import (
	"container/heap"
	"math/rand"
)

// Graph is a weighted digraph in CSR form.
type Graph struct {
	V       int
	Offsets []int32  // len V+1
	Targets []int32  // len E
	Weights []uint32 // len E
}

// Generate builds a deterministic random digraph: a weight-1..maxW
// chain 0→1→…→V-1 guaranteeing reachability from vertex 0, plus
// degree-1 extra edges per vertex drawn from a spatially local window
// (90%% within `locality` vertices ahead, 10%% uniform) — shortest-path
// instances have spatial structure, and that structure is what makes
// the unreplicated configuration's load imbalance visible (§2.5).
func Generate(v, degree int, maxW uint32, seed int64) *Graph {
	return GenerateLocal(v, degree, maxW, seed, 128)
}

// GenerateLocal is Generate with an explicit locality window.
func GenerateLocal(v, degree int, maxW uint32, seed int64, locality int) *Graph {
	if v < 2 {
		panic("sssp: graph needs at least 2 vertices")
	}
	if degree < 1 {
		degree = 1
	}
	if maxW < 1 {
		maxW = 1
	}
	if locality < 2 {
		locality = 2
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][2]int32, 0, v*degree)
	offsets := make([]int32, v+1)
	for s := 0; s < v; s++ {
		offsets[s] = int32(len(adj))
		if s+1 < v {
			adj = append(adj, [2]int32{int32(s + 1), int32(1 + rng.Intn(int(maxW)))})
		}
		for e := 1; e < degree; e++ {
			var t int
			if rng.Intn(10) > 0 { // local edge: within the window ahead
				t = (s + 1 + rng.Intn(locality)) % v
			} else { // occasional long-range edge
				t = rng.Intn(v)
			}
			if t == s {
				t = (t + 1) % v
			}
			adj = append(adj, [2]int32{int32(t), int32(1 + rng.Intn(int(maxW)))})
		}
	}
	offsets[v] = int32(len(adj))
	g := &Graph{
		V:       v,
		Offsets: offsets,
		Targets: make([]int32, len(adj)),
		Weights: make([]uint32, len(adj)),
	}
	for i, e := range adj {
		g.Targets[i] = e[0]
		g.Weights[i] = uint32(e[1])
	}
	return g
}

// Edges returns the number of edges.
func (g *Graph) Edges() int { return len(g.Targets) }

// Inf is the unreached distance. It keeps the top bit clear so
// distance words never collide with the hardware flag bit.
const Inf uint32 = 0x7fffffff

// Dijkstra computes single-point shortest paths sequentially (the
// reference the parallel runs are validated against).
func Dijkstra(g *Graph, source int) []uint32 {
	dist := make([]uint32, g.V)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	pq := &vheap{{int32(source), 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vitem)
		if it.d > dist[it.v] {
			continue
		}
		for e := g.Offsets[it.v]; e < g.Offsets[it.v+1]; e++ {
			u := g.Targets[e]
			nd := it.d + g.Weights[e]
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, vitem{u, nd})
			}
		}
	}
	return dist
}

type vitem struct {
	v int32
	d uint32
}

type vheap []vitem

func (h vheap) Len() int            { return len(h) }
func (h vheap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x interface{}) { *h = append(*h, x.(vitem)) }
func (h *vheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
