package sssp

import "testing"

func TestSingleProcLargeGraph(t *testing.T) {
	// The regression that used to livelock: one processor, a graph
	// larger than one hardware queue's capacity.
	res, err := Run(Config{MeshW: 1, MeshH: 1, Procs: 1, Vertices: 1024, Seed: 42, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaxations < 1024 {
		t.Fatalf("relaxations = %d", res.Relaxations)
	}
}
