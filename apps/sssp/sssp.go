// Package sssp implements the Single Point Shortest Path workload of
// §2.5: the evaluation application behind Table 2-1 (effect of
// replication on message traffic) and Figure 2-1 (efficiency and
// utilization versus processors, with and without replication).
//
// The parallel algorithm follows the paper: vertices are evenly
// distributed among the nodes with one hardware work queue per node;
// distance updates use min-xchng (the operation "very convenient for
// this application"); a processor whose queue runs dry extracts work
// from other queues for load balance; queues and vertex data are
// replicated at a configurable level.
package sssp

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/work"
)

// Config parameterizes a run.
type Config struct {
	// MeshW, MeshH give the machine geometry; Procs participate
	// (Procs <= MeshW*MeshH). Zero values default to a 4x4 mesh with
	// all 16 processors.
	MeshW, MeshH int
	Procs        int
	// Vertices and Degree shape the random graph (defaults 512 / 4).
	Vertices int
	Degree   int
	// MaxWeight bounds edge weights (default 16).
	MaxWeight uint32
	// Seed makes the graph deterministic.
	Seed int64
	// Copies is the replication level for queues and vertex data:
	// 1 = master copy only (no replication), k = copies on the k-1
	// participating nodes nearest each page's home. This is the
	// "Number of Copies" column of Table 2-1.
	Copies int
	// Contention enables the mesh link-contention model.
	Contention bool
	// VertexWork and EdgeWork charge computation cycles per processed
	// vertex and per relaxed edge (defaults 40 / 20), modeling the
	// instruction stream between shared-memory references.
	VertexWork, EdgeWork sim.Cycles
	// Validate checks the parallel result against sequential Dijkstra.
	Validate bool
	// Machine, when non-nil, overrides the machine configuration
	// (mesh geometry fields are still taken from MeshW/MeshH); used by
	// the ablation benches to sweep hardware parameters.
	Machine *core.Config
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 4
	}
	if c.Procs == 0 {
		c.Procs = c.MeshW * c.MeshH
	}
	if c.Vertices == 0 {
		c.Vertices = 512
	}
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 16
	}
	if c.Copies == 0 {
		c.Copies = 1
	}
	if c.VertexWork == 0 {
		c.VertexWork = 40
	}
	if c.EdgeWork == 0 {
		c.EdgeWork = 20
	}
	return c
}

// Result reports a run's timing and the Table 2-1 instrumentation.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	// ReadRatio, WriteRatio and UpdateRatio are the three ratio
	// columns of Table 2-1: local/remote reads, local/remote writes,
	// total messages / update messages.
	ReadRatio, WriteRatio, UpdateRatio float64
	Messages, Updates                  uint64
	Totals                             stats.Node
	// Net is the interconnect's counters, including the fault-injection
	// tallies in unreliable-network mode.
	Net mesh.Stats
	// Retransmits and TransportAcks are the reliability sublayer's
	// activity (zero on a reliable network); Reliability carries the
	// full counter block for experiment JSON rows.
	Retransmits, TransportAcks uint64
	Reliability                stats.Reliability
	Relaxations                uint64
	Dist                       []uint32
	// Report is the rendered per-node counter table.
	Report string
}

// Run executes the workload and returns measurements. The returned
// error covers machine construction, deadlock and — with Validate —
// result mismatches against Dijkstra.//
// Run is safe for concurrent use by the experiments sweep runner:
// every call builds a private machine (its own sim.Engine, mesh,
// stats and locally seeded RNGs) and shares no mutable state with
// other calls, so one fresh engine may run per worker goroutine.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g := Generate(cfg.Vertices, cfg.Degree, cfg.MaxWeight, cfg.Seed)

	var mcfg core.Config
	if cfg.Machine != nil {
		mcfg = *cfg.Machine
		mcfg.MeshWidth, mcfg.MeshHeight = cfg.MeshW, cfg.MeshH
	} else {
		mcfg = core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	}
	mcfg.NetContention = cfg.Contention
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.Procs > m.Nodes() {
		return Result{}, fmt.Errorf("sssp: %d procs on %d nodes", cfg.Procs, m.Nodes())
	}
	w := newWorkspace(m, g, cfg)

	done := make([]bool, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		p := p
		m.SpawnNamed(mesh.NodeID(p), fmt.Sprintf("sssp%d", p), func(t *proc.Thread) {
			w.worker(t, p)
			done[p] = true
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Elapsed:       elapsed,
		Utilization:   m.Utilization(),
		Report:        m.Stats().Report(elapsed),
		ReadRatio:     m.Stats().ReadRatio(),
		WriteRatio:    m.Stats().WriteRatio(),
		UpdateRatio:   m.Stats().UpdateRatio(),
		Messages:      m.Stats().Messages(),
		Updates:       m.Stats().MsgUpdate,
		Totals:        m.Stats().Totals(),
		Net:           m.Mesh().Stats(),
		Retransmits:   m.Stats().Retransmits,
		TransportAcks: m.Stats().MsgTAck,
		Reliability:   m.Stats().Reliability(),
		Relaxations:   sum(w.relaxations),
		Dist:          w.readDist(),
	}
	if cfg.Validate {
		want := Dijkstra(g, 0)
		for v := range want {
			if res.Dist[v] != want[v] {
				return res, fmt.Errorf("sssp: dist[%d] = %d, Dijkstra says %d", v, res.Dist[v], want[v])
			}
		}
	}
	return res, nil
}

// workspace is the shared-memory layout plus plain-Go bookkeeping.
type workspace struct {
	m   *core.Machine
	g   *Graph
	cfg Config

	blk  int // vertices per owner block
	dist memory.VAddr
	offs memory.VAddr
	tgts memory.VAddr
	wgts memory.VAddr
	pool *work.Pool
	// visible[p] lists the queue owners processor p may extract work
	// from: itself plus the owners whose queues are replicated onto p.
	// With Copies=1 each processor works only its own queue — the
	// unreplicated configuration whose load imbalance Figure 2-1 shows.
	visible [][]int

	// relaxations is counted per worker: each processor's thread bumps
	// only its own slot, so the tally stays race-free when processors
	// run on different shards. Summed for Result.Relaxations.
	relaxations []uint64
}

func (w *workspace) owner(v int32) int {
	o := int(v) / w.blk
	if o >= w.cfg.Procs {
		o = w.cfg.Procs - 1
	}
	return o
}

func newWorkspace(m *core.Machine, g *Graph, cfg Config) *workspace {
	w := &workspace{
		m: m, g: g, cfg: cfg,
		blk:         (g.V + cfg.Procs - 1) / cfg.Procs,
		relaxations: make([]uint64, cfg.Procs),
	}

	// Block-homed arrays: page i of dist belongs to the owner of its
	// first vertex; CSR pages are homed by the owner of the source
	// vertex whose data begins the page.
	w.dist = m.AllocHomed(w.pageHomes(g.V, func(word int) int { return w.owner(int32(word)) })...)
	w.offs = m.AllocHomed(w.pageHomes(g.V+1, func(word int) int {
		if word >= g.V {
			word = g.V - 1
		}
		return w.owner(int32(word))
	})...)
	edgeOwner := func(word int) int {
		if word >= len(g.Targets) {
			word = len(g.Targets) - 1
		}
		// Binary search the source vertex of edge `word`.
		lo, hi := 0, g.V-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if int(g.Offsets[mid]) <= word {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return w.owner(int32(lo))
	}
	w.tgts = m.AllocHomed(w.pageHomes(g.Edges(), edgeOwner)...)
	w.wgts = m.AllocHomed(w.pageHomes(g.Edges(), edgeOwner)...)

	// The distributed work queues: one set of hardware queues per
	// participating processor, vertices owned block-wise.
	w.pool = work.New(m, cfg.Procs, g.V, func(v int) int { return w.owner(int32(v)) })
	w.visible = make([][]int, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		w.visible[p] = []int{p}
	}

	// Replication: queues and vertex data on the Copies-1 nearest
	// participating nodes (§2.5: "we have replicated the queues and
	// vertices on more than one processor").
	if cfg.Copies > 1 {
		repl := func(base memory.VAddr, words int) {
			pages := (words + memory.PageWords - 1) / memory.PageWords
			for i := 0; i < pages; i++ {
				va := base + memory.VAddr(i*memory.PageWords)
				home := w.m.Kernel().CopyList(va.Page())[0].Node
				for _, n := range w.nearest(home, cfg.Copies-1) {
					m.Replicate(va, n)
				}
			}
		}
		repl(w.dist, g.V)
		repl(w.offs, g.V+1)
		repl(w.tgts, g.Edges())
		repl(w.wgts, g.Edges())
		for p := 0; p < cfg.Procs; p++ {
			for _, qp := range w.pool.QueuePages(p) {
				repl(qp, memory.PageWords)
			}
			// Replicating processor p's queues onto its neighbours
			// shares them: those nodes may now extract p's work.
			for _, n := range w.nearest(mesh.NodeID(p), cfg.Copies-1) {
				w.visible[int(n)] = append(w.visible[int(n)], p)
			}
		}
		for _, fp := range w.pool.FlagPages() {
			repl(fp, memory.PageWords)
		}
	}

	// Initialize shared memory outside simulated time.
	for v := 0; v < g.V; v++ {
		d := Inf
		if v == 0 {
			d = 0
		}
		m.Poke(w.dist+memory.VAddr(v), memory.Word(d))
	}
	for i, o := range g.Offsets {
		m.Poke(w.offs+memory.VAddr(i), memory.Word(uint32(o)))
	}
	for i := range g.Targets {
		m.Poke(w.tgts+memory.VAddr(i), memory.Word(uint32(g.Targets[i])))
		m.Poke(w.wgts+memory.VAddr(i), memory.Word(g.Weights[i]))
	}
	// Seed the computation: the source vertex.
	w.pool.Seed(0)
	return w
}

// pageHomes maps each page of a words-long array to its owner node.
func (w *workspace) pageHomes(words int, ownerOf func(word int) int) []mesh.NodeID {
	pages := (words + memory.PageWords - 1) / memory.PageWords
	homes := make([]mesh.NodeID, pages)
	for i := range homes {
		homes[i] = mesh.NodeID(ownerOf(i * memory.PageWords))
	}
	return homes
}

// nearest returns the k participating nodes nearest to home (excluding
// home), deterministic order.
func (w *workspace) nearest(home mesh.NodeID, k int) []mesh.NodeID {
	type cand struct {
		n mesh.NodeID
		h int
	}
	var cs []cand
	for p := 0; p < w.cfg.Procs; p++ {
		n := mesh.NodeID(p)
		if n == home {
			continue
		}
		cs = append(cs, cand{n, w.m.Mesh().Hops(home, n)})
	}
	// Insertion sort by (hops, id): small and deterministic.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && (cs[j].h < cs[j-1].h || (cs[j].h == cs[j-1].h && cs[j].n < cs[j-1].n)); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if k > len(cs) {
		k = len(cs)
	}
	out := make([]mesh.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = cs[i].n
	}
	return out
}

func (w *workspace) distVA(v int32) memory.VAddr { return w.dist + memory.VAddr(v) }

// pipelineDepth bounds concurrently outstanding min-xchng handles,
// leaving delayed-op cache slots free for the fadd/enqueue that
// follows (8 slots per node in the hardware).
const pipelineDepth = 4

// process relaxes all edges of v, re-enqueueing improved targets.
func (w *workspace) process(t *proc.Thread, p int, v int32) {
	w.relaxations[p]++
	t.Compute(w.cfg.VertexWork)
	// dist[v] is read at the master via delayed-read: an authoritative
	// value, so a concurrent improvement of dist[v] (which re-enqueues
	// v) can never be lost to replica staleness.
	dv := uint32(t.Verify(t.DelayedRead(w.distVA(v))))
	lo := int32(t.Read(w.offs + memory.VAddr(v)))
	hi := int32(t.Read(w.offs + memory.VAddr(v) + 1))

	type rel struct {
		tgt int32
		nd  uint32
		h   proc.Handle
	}
	var batch []rel
	flush := func() {
		for _, r := range batch {
			old := uint32(t.Verify(r.h))
			if r.nd < old {
				// Improved: the min-xchng is verified (applied at the
				// master), so the pool's flag protocol guarantees the
				// next processing of tgt observes it.
				w.pool.Add(t, int(r.tgt))
			}
		}
		batch = batch[:0]
	}
	for e := lo; e < hi; e++ {
		tgt := int32(t.Read(w.tgts + memory.VAddr(e)))
		wt := uint32(t.Read(w.wgts + memory.VAddr(e)))
		t.Compute(w.cfg.EdgeWork)
		nd := dv + wt
		if nd >= Inf {
			continue
		}
		batch = append(batch, rel{tgt: tgt, nd: nd, h: t.MinXchng(w.distVA(tgt), memory.Word(nd))})
		if len(batch) == pipelineDepth {
			flush()
		}
	}
	flush()
	w.pool.Done(t)
}

// worker is one processor's loop: drain the queues it shares (its own
// plus replicated ones), exit when the pool terminates.
func (w *workspace) worker(t *proc.Thread, p int) {
	for {
		v, ok := w.pool.GetScoped(t, p, w.visible[p])
		if !ok {
			return
		}
		w.process(t, p, int32(v))
	}
}

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

func (w *workspace) readDist() []uint32 {
	out := make([]uint32, w.g.V)
	for v := range out {
		out[v] = uint32(w.m.Peek(w.dist + memory.VAddr(v)))
	}
	return out
}
