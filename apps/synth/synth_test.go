package synth

import "testing"

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{MeshW: 2, MeshH: 2, Procs: 4, OpsPerProc: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed == 0 || res.Throughput <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %f", res.Utilization)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, OpsPerProc: 100, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Messages != b.Messages {
		t.Fatal("nondeterministic")
	}
}

func TestLocalityReducesTraffic(t *testing.T) {
	lo, err := Run(Config{MeshW: 2, MeshH: 2, Procs: 4, OpsPerProc: 300, LocalFrac: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(Config{MeshW: 2, MeshH: 2, Procs: 4, OpsPerProc: 300, LocalFrac: 95, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Messages >= lo.Messages {
		t.Fatalf("high locality sent more messages: %d >= %d", hi.Messages, lo.Messages)
	}
	if hi.Throughput <= lo.Throughput {
		t.Fatalf("high locality not faster: %f <= %f", hi.Throughput, lo.Throughput)
	}
}

func TestReplicationAddsUpdates(t *testing.T) {
	base := Config{MeshW: 2, MeshH: 2, Procs: 4, OpsPerProc: 300, Seed: 5}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.Copies = 3
	r3, err := Run(repl)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Updates <= r1.Updates {
		t.Fatalf("updates: %d -> %d", r1.Updates, r3.Updates)
	}
}

func TestFenceOnSyncSlowsDown(t *testing.T) {
	base := Config{MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: 300, RMWFrac: 20, LocalFrac: 40, Seed: 7}
	free, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fenced := base
	fenced.FenceOnSync = true
	slow, err := Run(fenced)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed <= free.Elapsed {
		t.Fatalf("implicit fences did not cost anything: %d <= %d", slow.Elapsed, free.Elapsed)
	}
}

func TestContentionAddsQueueWait(t *testing.T) {
	base := Config{MeshW: 4, MeshH: 1, Procs: 4, OpsPerProc: 400, LocalFrac: 5, HotspotFrac: 80, Seed: 11}
	r, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueueWait != 0 {
		t.Fatal("queue wait without contention model")
	}
	c := base
	c.Contention = true
	rc, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rc.QueueWait == 0 {
		t.Fatal("hotspot with contention produced no queue wait")
	}
}
