// Package synth generates synthetic shared-memory loads — the paper
// mentions "some experiments with synthetic loads as reported in [2]"
// as part of the evaluation. Each processor performs a configurable
// mix of reads, writes and delayed operations over a data set with
// tunable locality and an optional hotspot page, reporting latency and
// traffic. The ablation benches use it to sweep protocol parameters
// (outstanding-write depth, contention, fence policy, competitive
// replication) against a neutral access pattern.
package synth

import (
	"fmt"
	"math/rand"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
)

// Config parameterizes a synthetic run.
type Config struct {
	MeshW, MeshH int
	Procs        int
	// OpsPerProc references per processor (default 500).
	OpsPerProc int
	// WriteFrac in [0,100]: percentage of references that are writes
	// (default 30). RMWFrac of references that are fetch-and-adds
	// (default 5); the remainder are reads.
	WriteFrac, RMWFrac int
	// LocalFrac in [0,100]: percentage of references touching the
	// processor's own pages (default 70); the rest go to uniformly
	// random other processors' pages, or to the hotspot when
	// HotspotFrac of the remote share is directed there.
	LocalFrac   int
	HotspotFrac int
	// PagesPerProc sizes each processor's data (default 2).
	PagesPerProc int
	// Copies replicates every data page at this level (1 = none).
	Copies int
	// ThinkTime cycles between references (default 30).
	ThinkTime sim.Cycles
	Seed      int64
	// Machine knobs under test.
	Timing               *core.Config // optional full machine config override
	Contention           bool
	FenceOnSync          bool
	InvalidateMode       bool
	CompetitiveThreshold uint64
	FencePeriod          int // fence every N ops (0 = only at end)
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 2
	}
	if c.Procs == 0 {
		c.Procs = c.MeshW * c.MeshH
	}
	if c.OpsPerProc == 0 {
		c.OpsPerProc = 500
	}
	if c.WriteFrac == 0 {
		c.WriteFrac = 30
	}
	if c.RMWFrac == 0 {
		c.RMWFrac = 5
	}
	if c.LocalFrac == 0 {
		c.LocalFrac = 70
	}
	if c.PagesPerProc == 0 {
		c.PagesPerProc = 2
	}
	if c.Copies == 0 {
		c.Copies = 1
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 30
	}
	return c
}

// Result reports a synthetic run.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	Throughput  float64 // references per cycle, machine-wide
	Totals      stats.Node
	Messages    uint64
	Updates     uint64
	QueueWait   sim.Cycles // network contention queuing
	// Report is the rendered per-node counter table.
	Report string
}

// Run executes the load.//
// Run is safe for concurrent use by the experiments sweep runner:
// every call builds a private machine (its own sim.Engine, mesh,
// stats and locally seeded RNGs) and shares no mutable state with
// other calls, so one fresh engine may run per worker goroutine.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var mcfg core.Config
	if cfg.Timing != nil {
		mcfg = *cfg.Timing
	} else {
		mcfg = core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	}
	mcfg.NetContention = cfg.Contention
	mcfg.FenceOnSync = cfg.FenceOnSync
	mcfg.InvalidateMode = cfg.InvalidateMode
	mcfg.CompetitiveThreshold = cfg.CompetitiveThreshold
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.Procs > m.Nodes() {
		return Result{}, fmt.Errorf("synth: %d procs on %d nodes", cfg.Procs, m.Nodes())
	}

	// Per-proc page ranges plus one hotspot page on node 0.
	bases := make([]memory.VAddr, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		bases[p] = m.Alloc(mesh.NodeID(p), cfg.PagesPerProc)
	}
	hotspot := m.Alloc(0, 1)
	if cfg.Copies > 1 {
		for p := 0; p < cfg.Procs; p++ {
			for k := 1; k < cfg.Copies && k < cfg.Procs; k++ {
				m.ReplicateRange(bases[p], cfg.PagesPerProc, mesh.NodeID((p+k)%cfg.Procs))
			}
		}
	}

	for p := 0; p < cfg.Procs; p++ {
		p := p
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
		m.SpawnNamed(mesh.NodeID(p), fmt.Sprintf("synth%d", p), func(t *proc.Thread) {
			for i := 0; i < cfg.OpsPerProc; i++ {
				t.Compute(cfg.ThinkTime)
				var va memory.VAddr
				switch {
				case rng.Intn(100) < cfg.LocalFrac:
					va = bases[p] + memory.VAddr(rng.Intn(cfg.PagesPerProc*memory.PageWords))
				case rng.Intn(100) < cfg.HotspotFrac:
					va = hotspot + memory.VAddr(rng.Intn(64))
				default:
					q := rng.Intn(cfg.Procs)
					va = bases[q] + memory.VAddr(rng.Intn(cfg.PagesPerProc*memory.PageWords))
				}
				r := rng.Intn(100)
				switch {
				case r < cfg.RMWFrac:
					t.FaddSync(va, 1)
				case r < cfg.RMWFrac+cfg.WriteFrac:
					t.Write(va, memory.Word(uint32(i)))
				default:
					t.Read(va)
				}
				if cfg.FencePeriod > 0 && (i+1)%cfg.FencePeriod == 0 {
					t.Fence()
				}
			}
			t.Fence() // drain before exiting
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	totalOps := float64(cfg.OpsPerProc * cfg.Procs)
	res := Result{
		Elapsed:     elapsed,
		Utilization: m.Utilization(),
		Totals:      m.Stats().Totals(),
		Messages:    m.Stats().Messages(),
		Updates:     m.Stats().MsgUpdate,
		QueueWait:   m.Mesh().Stats().QueueWait,
		Report:      m.Stats().Report(elapsed),
	}
	if elapsed > 0 {
		res.Throughput = totalOps / float64(elapsed)
	}
	return res, nil
}
