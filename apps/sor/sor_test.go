package sor

import "testing"

func TestReferenceConverges(t *testing.T) {
	cfg := Config{N: 16, Iters: 4}.withDefaults()
	g := Reference(cfg)
	// Heat must have diffused off the hot top edge into the interior.
	warmed := 0
	for r := 1; r < cfg.N-1; r++ {
		for c := 1; c < cfg.N-1; c++ {
			if g[r*cfg.N+c] > 0 {
				warmed++
			}
		}
	}
	if warmed == 0 {
		t.Fatal("no diffusion happened")
	}
	// Boundaries unchanged.
	for c := 0; c < cfg.N; c++ {
		if g[c] != 10000 {
			t.Fatalf("top boundary modified at %d", c)
		}
	}
}

func TestParallelMatchesReference(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		cfg := Config{MeshW: 4, MeshH: 2, Procs: procs, N: 32, Iters: 2, Validate: true}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

func TestParallelWithReplicationMatches(t *testing.T) {
	cfg := Config{MeshW: 4, MeshH: 2, Procs: 8, N: 96, Iters: 2, ReplicateBoundaries: true, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("no updates")
	}
}

func TestRegularWorkloadScalesWell(t *testing.T) {
	// The contrast with the sync-heavy workloads: SOR with replicated
	// halos should speed up nearly linearly from 1 to 4 processors.
	run := func(procs int) uint64 {
		// N=64 gives each of the 4 processors a whole page strip.
		cfg := Config{MeshW: 2, MeshH: 2, Procs: procs, N: 64, Iters: 3,
			ReplicateBoundaries: true, Validate: true}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Elapsed)
	}
	t1 := run(1)
	t4 := run(4)
	speedup := float64(t1) / float64(t4)
	if speedup < 2.5 {
		t.Fatalf("speedup at 4 procs = %.2f, want near-linear", speedup)
	}
}

func TestReplicationHelpsHaloReads(t *testing.T) {
	base := Config{MeshW: 4, MeshH: 2, Procs: 8, N: 96, Iters: 2, Validate: true}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.ReplicateBoundaries = true
	r2, err := Run(repl)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Elapsed >= r1.Elapsed {
		t.Fatalf("boundary replication did not help: %d >= %d", r2.Elapsed, r1.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{MeshW: 2, MeshH: 1, Procs: 2, N: 3}); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := Run(Config{MeshW: 2, MeshH: 1, Procs: 9}); err == nil {
		t.Fatal("procs > nodes accepted")
	}
}
