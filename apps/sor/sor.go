// Package sor implements red-black successive over-relaxation on a
// shared 2-D grid — the canonical regular, barrier-synchronized
// shared-memory workload of the period, included as a contrast to the
// paper's irregular, queue-driven applications: it shows the PLUS
// memory system scaling when synchronization is coarse (one barrier
// per half-sweep) and communication is only at strip boundaries,
// where page replication turns the neighbour-row reads local.
//
// The stencil is integer (deterministic): interior cell ← mean of its
// four neighbours; boundary cells are fixed. Red-black ordering with
// a barrier between colours makes the parallel result bit-identical
// to the sequential reference regardless of interleaving.
package sor

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	psync "plus/sync"
)

// Config parameterizes a run.
type Config struct {
	MeshW, MeshH int
	Procs        int
	// N is the grid side (default 64); Iters the number of full
	// red+black sweeps (default 4). Note the 4 KB page granularity:
	// one grid row of N words shares its page with 1024/N neighbours,
	// so strips smaller than a page suffer page-level false sharing
	// (remote masters for locally owned rows) — real DSM behaviour.
	// N >= 64 gives each of up to N*N/1024 processors whole pages.
	N, Iters int
	// CellWork charges computation per stencil update (default 12 —
	// a few adds and a shift).
	CellWork sim.Cycles
	// ReplicateBoundaries places each strip's pages on the strip's
	// neighbours, turning halo reads local (the PLUS way to run this
	// workload). Without it, halo reads are remote.
	ReplicateBoundaries bool
	Validate            bool
	// Machine, when non-nil, overrides the machine configuration
	// (mesh geometry fields are still taken from MeshW/MeshH); used by
	// the observation and race-detection runners to attach observers
	// and sweep shard counts.
	Machine *core.Config
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 2
	}
	if c.Procs == 0 {
		c.Procs = c.MeshW * c.MeshH
	}
	if c.N == 0 {
		c.N = 64
	}
	if c.Iters == 0 {
		c.Iters = 4
	}
	if c.CellWork == 0 {
		c.CellWork = 12
	}
	return c
}

// Result reports a run.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	Updates     uint64 // stencil updates performed
	Grid        []uint32
	// Report is the rendered per-node counter table.
	Report string
}

// Reference computes the sequential red-black schedule.
func Reference(cfg Config) []uint32 {
	cfg = cfg.withDefaults()
	g := seedGrid(cfg.N)
	for it := 0; it < cfg.Iters; it++ {
		for color := 0; color < 2; color++ {
			for r := 1; r < cfg.N-1; r++ {
				for c := 1; c < cfg.N-1; c++ {
					if (r+c)%2 != color {
						continue
					}
					g[r*cfg.N+c] = (g[(r-1)*cfg.N+c] + g[(r+1)*cfg.N+c] +
						g[r*cfg.N+c-1] + g[r*cfg.N+c+1]) / 4
				}
			}
		}
	}
	return g
}

// seedGrid builds the deterministic initial condition: hot top edge,
// cold elsewhere, with a varied left edge.
func seedGrid(n int) []uint32 {
	g := make([]uint32, n*n)
	for r := 0; r < n; r++ {
		g[r*n] = uint32(100 * r) // left boundary
	}
	for c := 0; c < n; c++ {
		g[c] = 10000 // top boundary (wins the corner)
	}
	return g
}

// Run executes the workload.//
// Run is safe for concurrent use by the experiments sweep runner:
// every call builds a private machine (its own sim.Engine, mesh,
// stats and locally seeded RNGs) and shares no mutable state with
// other calls, so one fresh engine may run per worker goroutine.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	mcfg := core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	if cfg.Machine != nil {
		mcfg = *cfg.Machine
		mcfg.MeshWidth, mcfg.MeshHeight = cfg.MeshW, cfg.MeshH
	}
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.Procs > m.Nodes() {
		return Result{}, fmt.Errorf("sor: %d procs on %d nodes", cfg.Procs, m.Nodes())
	}
	if cfg.N < 4 || cfg.Procs > cfg.N-2 {
		return Result{}, fmt.Errorf("sor: grid %d too small for %d procs", cfg.N, cfg.Procs)
	}

	// Row r owned by the processor whose strip contains it.
	ownerOfRow := func(r int) int {
		o := r * cfg.Procs / cfg.N
		if o >= cfg.Procs {
			o = cfg.Procs - 1
		}
		return o
	}
	words := cfg.N * cfg.N
	pages := (words + memory.PageWords - 1) / memory.PageWords
	homes := make([]mesh.NodeID, pages)
	for i := range homes {
		homes[i] = mesh.NodeID(ownerOfRow(i * memory.PageWords / cfg.N))
	}
	grid := m.AllocHomed(homes...)
	if cfg.ReplicateBoundaries {
		// Copy each grid page onto the strips adjacent to its home, so
		// halo rows are read locally everywhere.
		for i := range homes {
			va := grid + memory.VAddr(i*memory.PageWords)
			h := int(homes[i])
			if h > 0 {
				m.Replicate(va, mesh.NodeID(h-1))
			}
			if h+1 < cfg.Procs {
				m.Replicate(va, mesh.NodeID(h+1))
			}
		}
	}
	init := seedGrid(cfg.N)
	for i, v := range init {
		m.Poke(grid+memory.VAddr(i), memory.Word(v))
	}

	barrier := psync.NewBarrier(m, 0, cfg.Procs)
	if cfg.ReplicateBoundaries {
		for p := 1; p < cfg.Procs; p++ {
			m.Replicate(barrier.GenAddr(), mesh.NodeID(p))
		}
	}

	// One counter per strip: sharded machines run threads on parallel
	// goroutines, so a single shared Go-level counter would race.
	updatesBy := make([]uint64, cfg.Procs)
	cell := func(r, c int) memory.VAddr { return grid + memory.VAddr(r*cfg.N+c) }
	for p := 0; p < cfg.Procs; p++ {
		p := p
		lo, hi := p*cfg.N/cfg.Procs, (p+1)*cfg.N/cfg.Procs
		if lo == 0 {
			lo = 1
		}
		if hi > cfg.N-1 {
			hi = cfg.N - 1
		}
		m.SpawnNamed(mesh.NodeID(p), fmt.Sprintf("sor%d", p), func(t *proc.Thread) {
			for it := 0; it < cfg.Iters; it++ {
				for color := 0; color < 2; color++ {
					for r := lo; r < hi; r++ {
						for c := 1; c < cfg.N-1; c++ {
							if (r+c)%2 != color {
								continue
							}
							sum := uint32(t.Read(cell(r-1, c))) +
								uint32(t.Read(cell(r+1, c))) +
								uint32(t.Read(cell(r, c-1))) +
								uint32(t.Read(cell(r, c+1)))
							t.Compute(cfg.CellWork)
							t.Write(cell(r, c), memory.Word(sum/4))
							updatesBy[p]++
						}
					}
					// Publish this colour's writes everywhere, then
					// meet the others before the dependent colour.
					t.Fence()
					barrier.Wait(t)
				}
			}
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	var updates uint64
	for _, u := range updatesBy {
		updates += u
	}
	res := Result{
		Elapsed:     elapsed,
		Utilization: m.Utilization(),
		Updates:     updates,
		Grid:        make([]uint32, words),
		Report:      m.Stats().Report(elapsed),
	}
	for i := range res.Grid {
		res.Grid[i] = uint32(m.Peek(grid + memory.VAddr(i)))
	}
	if cfg.Validate {
		want := Reference(cfg)
		for i := range want {
			if res.Grid[i] != want[i] {
				return res, fmt.Errorf("sor: cell %d = %d, reference says %d", i, res.Grid[i], want[i])
			}
		}
	}
	return res, nil
}
