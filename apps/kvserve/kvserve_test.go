package kvserve

import (
	"testing"

	"plus/internal/core"
	"plus/internal/mesh"
)

// small returns a quick-running configuration on a 4x2 mesh with
// counter validation on.
func small() Config {
	return Config{
		MeshW: 4, MeshH: 2,
		RecordsPerTenant: 256, // one page per tenant
		OpsPerNode:       64,
		Skew:             0.9,
		Validate:         true,
	}
}

func TestKvserveSmoke(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	wantOps := uint64(8 * 64)
	if res.Ops != wantOps || res.Reads+res.Writes != wantOps {
		t.Fatalf("ops = %d (reads %d + writes %d), want %d", res.Ops, res.Reads, res.Writes, wantOps)
	}
	if res.ReadLat.Count != res.Reads || res.WriteLat.Count != res.Writes {
		t.Fatalf("histogram counts (%d, %d) disagree with op counts (%d, %d)",
			res.ReadLat.Count, res.WriteLat.Count, res.Reads, res.Writes)
	}
	// ~90% read mix, with slack for the small sample.
	if res.Reads < wantOps*8/10 || res.Writes == 0 {
		t.Fatalf("mix reads=%d writes=%d is far from the 90%% default", res.Reads, res.Writes)
	}
	if res.ReadLat.Quantile(0.99) < res.ReadLat.Quantile(0.50) {
		t.Fatalf("read p99 %d below p50 %d", res.ReadLat.Quantile(0.99), res.ReadLat.Quantile(0.50))
	}
}

func TestKvservePlacements(t *testing.T) {
	for _, p := range []string{MasterLocal, Striped, ReplicatedHot} {
		cfg := small()
		cfg.Placement = p
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	cfg := small()
	cfg.Placement = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// TestKvserveDeterminism pins run-to-run byte identity for a fixed
// seed, and that changing the seed actually changes the traffic.
func TestKvserveDeterminism(t *testing.T) {
	a, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum || a.ReadLat != b.ReadLat || a.WriteLat != b.WriteLat {
		t.Fatalf("same seed diverged: elapsed %d vs %d, checksum %#x vs %#x",
			a.Elapsed, b.Elapsed, a.Checksum, b.Checksum)
	}
	cfg := small()
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum == a.Checksum {
		t.Fatal("different seeds produced identical memory images")
	}
}

// TestKvserveShardEquivalence runs the open-loop workload serial and
// at 2, 4 and 8 shard engines: elapsed time, final memory image and
// both latency histograms must be byte-identical (the PR-6 guarantee
// extended to the arrival-schedule driver — kvserve uses no
// Sleep/Wake, so nothing rides the cross-shard mail path).
func TestKvserveShardEquivalence(t *testing.T) {
	run := func(shards int, placement string) Result {
		cfg := small()
		cfg.Placement = placement
		mcfg := core.DefaultConfig(cfg.MeshW, cfg.MeshH)
		mcfg.Shards = shards
		cfg.Machine = &mcfg
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d %s: %v", shards, placement, err)
		}
		return res
	}
	for _, placement := range []string{MasterLocal, ReplicatedHot} {
		serial := run(0, placement)
		for _, k := range []int{2, 4, 8} {
			got := run(k, placement)
			if got.Elapsed != serial.Elapsed {
				t.Errorf("%s shards=%d: elapsed %d, serial %d", placement, k, got.Elapsed, serial.Elapsed)
			}
			if got.Checksum != serial.Checksum {
				t.Errorf("%s shards=%d: checksum %#x, serial %#x", placement, k, got.Checksum, serial.Checksum)
			}
			if got.ReadLat != serial.ReadLat || got.WriteLat != serial.WriteLat {
				t.Errorf("%s shards=%d: latency histograms diverge from serial", placement, k)
			}
			if got.Late != serial.Late || got.Messages != serial.Messages {
				t.Errorf("%s shards=%d: late %d/%d, messages %d/%d diverge",
					placement, k, got.Late, serial.Late, got.Messages, serial.Messages)
			}
		}
	}
}

// TestKvserveFaultChaos runs the serving workload over a lossy mesh
// (drop + dup + delay) with the runtime invariant checker on: the
// reliability sublayer must repair every loss (counters still exact,
// coherence holds at quiescence) and actually do work (retransmits).
func TestKvserveFaultChaos(t *testing.T) {
	cfg := small()
	mcfg := core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	mcfg.Faults = mesh.FaultConfig{
		Seed:      7,
		DropRate:  0.02,
		DupRate:   0.02,
		DelayRate: 0.05,
		DelayMax:  60,
	}
	mcfg.CheckInvariants = true
	mcfg.InvariantPeriod = 2000
	cfg.Machine = &mcfg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum == 0 || res.Ops != clean.Ops {
		t.Fatalf("lossy run lost ops: %d vs %d", res.Ops, clean.Ops)
	}
}

// TestKvserveMasterCrash crashes the hot node (node 0 masters the
// Zipf-hottest tenant under replicated-hot) mid-run: the failover
// epoch must promote its pages' masters, every fetch-and-add must
// survive reissue (counters exact), and the outage must be visible in
// the write tail versus a crash-free twin.
func TestKvserveMasterCrash(t *testing.T) {
	base := func() Config {
		cfg := small()
		cfg.Placement = ReplicatedHot
		// Cover every page node 0 masters (tenant 0's single record
		// page), so the crash strands no sole copies. The counters page
		// lives on the last node and is untouched by the outage.
		cfg.HotPages = 1
		cfg.HotCopies = 4
		cfg.ArrivalMean = 300
		cfg.OpsPerNode = 128
		return cfg
	}
	cfg := base()
	mcfg := core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	mcfg.Faults = mesh.FaultConfig{
		Crashes: []mesh.CrashEvent{{Node: 0, At: 8000, Duration: 6000}},
	}
	mcfg.CheckInvariants = true
	mcfg.InvariantPeriod = 1000
	cfg.Machine = &mcfg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crash.Crashes != 1 || res.Crash.Restarts != 1 {
		t.Fatalf("crash script did not run: %+v", res.Crash)
	}
	if res.Crash.Failovers < 1 || res.Crash.MastersPromoted < 1 {
		t.Fatalf("no failover epoch: %+v", res.Crash)
	}
	calm, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteLat.Quantile(0.99) <= calm.WriteLat.Quantile(0.99) {
		t.Fatalf("recovery cost invisible in write tail: crash p99 %d <= calm p99 %d",
			res.WriteLat.Quantile(0.99), calm.WriteLat.Quantile(0.99))
	}
	if res.Elapsed <= calm.Elapsed {
		t.Fatalf("crash run elapsed %d not above calm %d", res.Elapsed, calm.Elapsed)
	}
}
