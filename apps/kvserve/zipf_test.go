package kvserve

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfDeterminism pins the sampler's draw sequence for a fixed
// seed: the open-loop workload's byte-identity across shard counts
// rests on this.
func TestZipfDeterminism(t *testing.T) {
	for _, s := range []float64{0, 0.9, 0.99, 1.0, 1.2} {
		a := NewZipf(rand.New(rand.NewSource(42)), s, 1000)
		b := NewZipf(rand.New(rand.NewSource(42)), s, 1000)
		for i := 0; i < 5000; i++ {
			x, y := a.Sample(), b.Sample()
			if x != y {
				t.Fatalf("s=%v draw %d: %d vs %d from the same seed", s, i, x, y)
			}
			if x < 1 || x > 1000 {
				t.Fatalf("s=%v draw %d: %d out of [1,1000]", s, i, x)
			}
		}
	}
}

// TestZipfChiSquare draws at s=0.99 (just off the harmonic pole) and
// checks the empirical rank frequencies against the closed-form Zipf
// mass with a chi-square test. With 50 ranks (49 degrees of freedom)
// the 99.9% critical value is ~85; a correct sampler fails with
// probability 1e-3 and the seed is pinned, so the test is stable.
func TestZipfChiSquare(t *testing.T) {
	const (
		n     = int64(50)
		s     = 0.99
		draws = 200000
		crit  = 85.4 // chi-square 0.999 quantile, 49 dof
	)
	z := NewZipf(rand.New(rand.NewSource(7)), s, n)
	counts := make([]uint64, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	var chi2 float64
	for k := int64(1); k <= n; k++ {
		expect := float64(draws) * Mass(s, n, k)
		d := float64(counts[k]) - expect
		chi2 += d * d / expect
	}
	if chi2 > crit {
		t.Fatalf("chi-square %.1f exceeds the 99.9%% critical value %.1f — sampler does not match the Zipf mass", chi2, crit)
	}
	// The defining shape: rank-1 mass ~n^s times rank-n mass.
	if counts[1] <= counts[n] {
		t.Fatalf("rank 1 drawn %d times, rank %d drawn %d — no skew at s=%v", counts[1], n, counts[n], s)
	}
}

// TestZipfUniform checks s=0 degenerates to the uniform distribution:
// every rank's frequency within 5 sigma of draws/n.
func TestZipfUniform(t *testing.T) {
	const (
		n     = int64(64)
		draws = 128000
	)
	z := NewZipf(rand.New(rand.NewSource(11)), 0, n)
	counts := make([]uint64, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	p := 1 / float64(n)
	expect := float64(draws) * p
	sigma := math.Sqrt(float64(draws) * p * (1 - p))
	for k := int64(1); k <= n; k++ {
		if d := math.Abs(float64(counts[k]) - expect); d > 5*sigma {
			t.Fatalf("rank %d drawn %d times, want %.0f ± %.0f (5σ) — s=0 is not uniform", k, counts[k], expect, 5*sigma)
		}
	}
}

// TestZipfMassSums sanity-checks the closed form itself.
func TestZipfMassSums(t *testing.T) {
	for _, s := range []float64{0, 0.9, 1.0, 1.2} {
		var sum float64
		for k := int64(1); k <= 100; k++ {
			sum += Mass(s, 100, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: mass sums to %v", s, sum)
		}
	}
}
