// Package kvserve is a multi-tenant record-serving workload — the
// "heavy traffic from millions of users" scenario: per-user profile
// records packed N-per-page over DSM pages, one frontend thread per
// node fielding an open-loop stream of requests whose keys follow a
// bounded Zipf popularity law. Unlike the paper's scientific kernels
// it measures *tail* latency: every op's scheduled-arrival→completion
// time lands in a log2 histogram, reported as p50/p95/p99 for reads
// and writes separately, and hot-key skew finally stresses the
// copy-list write fan-out — all frontends' writes to a hot record
// converge on one master whose update chain grows with replication.
//
// Three static placements bound the policy space: "master-local"
// homes each tenant's pages on one node (perfect tenant affinity,
// worst hot-tenant convergence), "striped" round-robins pages across
// nodes (spreads masters, no read locality), "replicated-hot"
// is master-local plus pre-replicated copies of the hottest pages
// (reads of hot records go local or near-local; writes pay a longer
// update chain — the PLUS replication trade-off of §2.5, measurable
// here as read-p99 down vs write-p99 up).
package kvserve

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/placement"
)

// Placement names the static layout policies.
const (
	MasterLocal   = "master-local"
	Striped       = "striped"
	ReplicatedHot = "replicated-hot"
)

// Config parameterizes a run.
type Config struct {
	MeshW, MeshH int
	// Tenants is the number of tenants (default: one per node). Tenant
	// t owns keys [t*RecordsPerTenant, (t+1)*RecordsPerTenant).
	Tenants int
	// RecordsPerTenant is the per-tenant key count (default 512). The
	// tenant record block must tile whole pages:
	// RecordsPerTenant*RecordWords must be a multiple of the page size.
	RecordsPerTenant int
	// RecordWords is the record size in words (default 4 — a small
	// profile record, 256 records per 4KB page).
	RecordWords int
	// OpsPerNode is the number of requests each frontend serves
	// (default 256).
	OpsPerNode int
	// ReadPct is the read percentage of the op mix (default 90 — the
	// read-mostly serving regime).
	ReadPct int
	// Skew is the Zipf exponent of key popularity: 0 = uniform,
	// 0.9 ≈ web-object skew, 1.2 = heavily hot-keyed.
	Skew float64
	// ArrivalMean is the mean inter-arrival gap per frontend in cycles
	// (default 400). Open loop: the schedule is fixed up front and a
	// slow system falls behind, inflating the measured tail.
	ArrivalMean float64
	// Placement picks the layout: master-local (default), striped, or
	// replicated-hot.
	Placement string
	// HotPages is how many of the hottest record pages replicated-hot
	// pre-replicates (default 2). Keys are Zipf-ranked in address
	// order, so the hottest pages are exactly the first global pages.
	HotPages int
	// HotCopies is the replica count per hot page including nothing of
	// the master (default 4, PLUS's uncontrolled-replication guard).
	HotCopies int
	// PerOpWork charges computation per request (default 20 cycles —
	// request parse + hash).
	PerOpWork sim.Cycles
	// Seed drives every frontend's arrival schedule, key choice and op
	// mix (per-thread rngs derived from it; default 1).
	Seed int64
	// UnsyncCounters makes the end-of-run per-tenant op-count
	// aggregation use an unsynchronized read-modify-write instead of
	// fetch-and-add — a deliberate data race for the detector corpus.
	// Counter totals are then unreliable; Validate must be off.
	UnsyncCounters bool
	// Validate checks the per-tenant op counters against the
	// frontends' local tallies after the run.
	Validate bool
	// Machine, when non-nil, overrides the machine configuration (mesh
	// geometry is still taken from MeshW/MeshH); used by the sweep,
	// chaos and race runners to attach observers, shards and faults.
	Machine *core.Config
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 4
	}
	if c.Tenants == 0 {
		c.Tenants = c.MeshW * c.MeshH
	}
	if c.RecordsPerTenant == 0 {
		c.RecordsPerTenant = 512
	}
	if c.RecordWords == 0 {
		c.RecordWords = 4
	}
	if c.OpsPerNode == 0 {
		c.OpsPerNode = 256
	}
	if c.ReadPct == 0 {
		c.ReadPct = 90
	}
	if c.ArrivalMean == 0 {
		c.ArrivalMean = 400
	}
	if c.Placement == "" {
		c.Placement = MasterLocal
	}
	if c.HotPages == 0 {
		c.HotPages = 2
	}
	if c.HotCopies == 0 {
		c.HotCopies = 4
	}
	if c.PerOpWork == 0 {
		c.PerOpWork = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports a run.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	Ops         uint64
	Reads       uint64
	Writes      uint64
	// Late counts ops whose frontend was already past the scheduled
	// arrival when it got to them — the backlog signal of an open-loop
	// driver under overload.
	Late uint64
	// ReadLat and WriteLat hold scheduled-arrival→completion latency
	// in cycles.
	ReadLat  stats.Hist
	WriteLat stats.Hist
	// Checksum is an FNV-1a digest of every record word and tenant
	// counter after quiescence — the byte-identity pin for the shard
	// equivalence tests.
	Checksum uint64
	Messages uint64
	Updates  uint64
	// Crash carries the failover counters (zero without a crash
	// script).
	Crash stats.CrashBlock
	// Report is the rendered per-node counter table.
	Report string
}

// Run executes the workload. Safe for concurrent use by the sweep
// runner: every call builds a private machine and seeds private rngs.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	mcfg := core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	if cfg.Machine != nil {
		mcfg = *cfg.Machine
		mcfg.MeshWidth, mcfg.MeshHeight = cfg.MeshW, cfg.MeshH
	}
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return Result{}, err
	}
	nodes := m.Nodes()
	if cfg.RecordsPerTenant*cfg.RecordWords%memory.PageWords != 0 {
		return Result{}, fmt.Errorf("kvserve: tenant block %d words does not tile %d-word pages",
			cfg.RecordsPerTenant*cfg.RecordWords, memory.PageWords)
	}
	if cfg.UnsyncCounters && cfg.Validate {
		return Result{}, fmt.Errorf("kvserve: UnsyncCounters makes counters unreliable; disable Validate")
	}
	pagesPerTenant := cfg.RecordsPerTenant * cfg.RecordWords / memory.PageWords
	totalPages := cfg.Tenants * pagesPerTenant
	totalKeys := int64(cfg.Tenants) * int64(cfg.RecordsPerTenant)
	recordsPerPage := memory.PageWords / cfg.RecordWords

	// One contiguous block of record pages; key k lives in global page
	// k/recordsPerPage. Keys are Zipf-ranked in address order (rank 1 =
	// key 0), so the hottest records are the first pages of tenant 0 —
	// the hot set is known a priori, no profiling run needed.
	homes := make([]mesh.NodeID, totalPages)
	for p := range homes {
		switch cfg.Placement {
		case MasterLocal, ReplicatedHot:
			homes[p] = mesh.NodeID((p / pagesPerTenant) % nodes)
		case Striped:
			homes[p] = mesh.NodeID(p % nodes)
		default:
			return Result{}, fmt.Errorf("kvserve: unknown placement %q", cfg.Placement)
		}
	}
	records := m.AllocHomed(homes...)
	// Per-tenant op counters on their own page, homed away from the
	// hot node (node 0 masters the hot records under master-local).
	counters := m.Alloc(mesh.NodeID(nodes-1), 1)
	if cfg.Tenants > memory.PageWords {
		return Result{}, fmt.Errorf("kvserve: %d tenants exceed one counter page", cfg.Tenants)
	}

	if cfg.Placement == ReplicatedHot {
		hot := cfg.HotPages
		if hot > totalPages {
			hot = totalPages
		}
		pages := make([]memory.VPage, hot)
		for i := range pages {
			pages[i] = records.Page() + memory.VPage(i)
		}
		if err := placement.ReplicateHot(m, pages, cfg.HotCopies); err != nil {
			return Result{}, err
		}
	}

	// Warm every frontend's page table: a serving system measures
	// steady-state latency, and a lazy 2000-cycle fill on first touch
	// of each of the hundreds of record pages would swamp the per-op
	// histograms of a short run.
	for n := 0; n < nodes; n++ {
		m.Prefault(mesh.NodeID(n), records, totalPages)
		m.Prefault(mesh.NodeID(n), counters, 1)
	}

	recordVA := func(key int64, field int) memory.VAddr {
		page := key / int64(recordsPerPage)
		slot := key % int64(recordsPerPage)
		return records + memory.VAddr(page*int64(memory.PageWords)+slot*int64(cfg.RecordWords)+int64(field))
	}

	// Per-frontend state, observed into privately and folded after the
	// run in node order: a shared Hist would race across shard worker
	// goroutines and fold order must not depend on scheduling.
	readLat := make([]stats.Hist, nodes)
	writeLat := make([]stats.Hist, nodes)
	late := make([]uint64, nodes)
	reads := make([]uint64, nodes)
	writes := make([]uint64, nodes)
	tallies := make([][]uint64, nodes) // per-frontend per-tenant op counts

	for n := 0; n < nodes; n++ {
		n := n
		tallies[n] = make([]uint64, cfg.Tenants)
		m.SpawnNamed(mesh.NodeID(n), fmt.Sprintf("kv%d", n), func(t *proc.Thread) {
			// One rng per frontend: arrivals, keys and the op mix all
			// draw from it in body order, so the request stream depends
			// only on the seed — never on simulated interleaving.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*0x9e3779b9))
			sched := proc.NewArrivals(rng, cfg.ArrivalMean)
			zipf := NewZipf(rng, cfg.Skew, totalKeys)
			for op := 0; op < cfg.OpsPerNode; op++ {
				at := sched.Next()
				if t.IdleUntil(at) > 0 {
					late[n]++
				}
				key := zipf.Sample() - 1
				field := rng.Intn(cfg.RecordWords)
				isRead := rng.Intn(100) < cfg.ReadPct
				t.Compute(cfg.PerOpWork)
				va := recordVA(key, field)
				if isRead {
					// Served from the nearest copy; race-free against the
					// RMW writes below (the writes order all readers).
					t.Read(va)
					readLat[n].Observe(uint64(t.Now() - at))
					reads[n]++
				} else {
					// Writes go through the delayed-operation path: the
					// master applies them atomically in arrival order and
					// the ack returns only after the update reaches every
					// copy, so a write's latency includes the full
					// copy-list fan-out — the cost replication adds.
					t.XchngSync(va, memory.Word(uint32(n)<<24|uint32(op)))
					writeLat[n].Observe(uint64(t.Now() - at))
					writes[n]++
				}
				tallies[n][key/int64(cfg.RecordsPerTenant)]++
			}
			// Publish this frontend's tallies into the shared per-tenant
			// counters. Fetch-and-add executes at the master, so totals
			// are exact however the frontends interleave; the unsync
			// variant is the textbook lost-update race, for the detector.
			for tn, c := range tallies[n] {
				if c == 0 {
					continue
				}
				va := counters + memory.VAddr(tn)
				if cfg.UnsyncCounters {
					v := t.Read(va)
					t.Compute(2)
					t.Write(va, v+memory.Word(c))
				} else {
					t.FaddSync(va, int32(c))
				}
			}
		})
	}

	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Elapsed:     elapsed,
		Utilization: m.Utilization(),
		Messages:    m.Stats().Messages(),
		Updates:     m.Stats().Totals().Updates,
		Crash:       m.Stats().Crash(),
		Report:      m.Stats().Report(elapsed),
	}
	for n := 0; n < nodes; n++ {
		res.ReadLat.Add(&readLat[n])
		res.WriteLat.Add(&writeLat[n])
		res.Late += late[n]
		res.Reads += reads[n]
		res.Writes += writes[n]
	}
	res.Ops = res.Reads + res.Writes
	// Fold the latency classes into the observer's metrics so -hist
	// output and trace consumers see them beside the protocol
	// histograms.
	if o := mcfg.Observe; o != nil {
		o.Metrics.Class("kv-read").Add(&res.ReadLat)
		o.Metrics.Class("kv-write").Add(&res.WriteLat)
	}
	h := fnv.New64a()
	var word [4]byte
	digest := func(va memory.VAddr) {
		v := uint32(m.Peek(va))
		word[0], word[1], word[2], word[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(word[:])
	}
	for w := 0; w < totalPages*memory.PageWords; w++ {
		digest(records + memory.VAddr(w))
	}
	for tn := 0; tn < cfg.Tenants; tn++ {
		digest(counters + memory.VAddr(tn))
	}
	res.Checksum = h.Sum64()

	if cfg.Validate {
		want := make([]uint64, cfg.Tenants)
		for n := range tallies {
			for tn, c := range tallies[n] {
				want[tn] += c
			}
		}
		for tn := 0; tn < cfg.Tenants; tn++ {
			got := uint64(m.Peek(counters + memory.VAddr(tn)))
			if got != want[tn] {
				return res, fmt.Errorf("kvserve: tenant %d counter = %d, frontends issued %d", tn, got, want[tn])
			}
		}
	}
	return res, nil
}
