// Bounded Zipf sampling by rejection-inversion (Hörmann &
// Derflinger's method for monotone discrete distributions, the
// algorithm behind the skewed key-popularity generators of the
// record-serving benchmarks this workload models): samples k in
// [1, n] with P(k) ∝ k^-s for any skew s >= 0, in O(1) expected
// draws per sample and with no setup tables, so every frontend can
// carry its own seeded sampler. s = 0 degenerates to the exact
// uniform distribution; s = 1 (the harmonic pole) is handled by the
// expm1/log1p helpers without a special case.
package kvserve

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf samples ranks 1..n with probability proportional to rank^-s.
// Not safe for concurrent use; give each simulated frontend its own.
type Zipf struct {
	rng *rand.Rand
	n   int64
	s   float64
	// Precomputed rejection-inversion bounds (unused when s == 0):
	// hIntegral(1.5) - 1, hIntegral(n + 0.5), and the acceptance
	// threshold 2 - hIntegralInverse(hIntegral(2.5) - h(2)).
	hX1, hN, thresh float64
}

// NewZipf builds a sampler over ranks [1, n] with skew s >= 0 drawing
// from rng. It panics on n < 1 or s < 0 (a workload configuration
// error, not a runtime condition).
func NewZipf(rng *rand.Rand, s float64, n int64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("kvserve: zipf over %d elements", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("kvserve: negative zipf skew %v", s))
	}
	z := &Zipf{rng: rng, n: n, s: s}
	if s > 0 {
		z.hX1 = z.hIntegral(1.5) - 1
		z.hN = z.hIntegral(float64(n) + 0.5)
		z.thresh = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	}
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() int64 { return z.n }

// Skew returns the exponent s.
func (z *Zipf) Skew() float64 { return z.s }

// Sample draws one rank in [1, n]. Deterministic for a fixed rng
// seed and draw sequence.
func (z *Zipf) Sample() int64 {
	if z.s == 0 {
		return 1 + z.rng.Int63n(z.n)
	}
	for {
		u := z.hN + z.rng.Float64()*(z.hX1-z.hN)
		x := z.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		// Accept k when x fell within the always-accept band around
		// the integer, or when u clears the exact rejection bound.
		if float64(k)-x <= z.thresh || u >= z.hIntegral(float64(k)+0.5)-z.h(float64(k)) {
			return k
		}
	}
}

// h is the density x^-s.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

// hIntegral is the antiderivative ((x^(1-s) - 1)/(1 - s), continued
// through the s = 1 pole as log x by the expm1 helper).
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hIntegralInverse inverts hIntegral, continued through s = 1 by the
// log1p helper.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1 // numerical round-off below the asymptote
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x, → 1 as x → 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x, → 1 as x → 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// Mass returns the exact probability of rank k under the bounded
// distribution — the closed form the statistical tests check the
// sampler against. O(n); test/analysis use only.
func Mass(s float64, n, k int64) float64 {
	var z float64
	for i := int64(1); i <= n; i++ {
		z += math.Exp(-s * math.Log(float64(i)))
	}
	return math.Exp(-s*math.Log(float64(k))) / z
}
