// Package prodsys implements a forward-chaining production-system
// workload — one of the three applications the PLUS group used to
// evaluate the design before building it ("a production system
// application, a shortest-path program, and a speech recognition
// system", §2.5).
//
// Working memory is a shared bit-array of facts; rules are two-premise
// Horn clauses (a ∧ b → c). Workers process an agenda of newly
// asserted facts from per-node hardware queues: for each rule
// triggered by the fact they test the other premise and, when both
// hold, assert the conclusion with fetch-and-set (whose old value
// tells exactly one worker to schedule the new fact). The run
// terminates when the agenda drains — the fixpoint (forward closure)
// of the rule set, validated against a sequential closure.
package prodsys

import (
	"fmt"
	"math/rand"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/work"
)

// Rule is a ∧ b → c.
type Rule struct{ A, B, C int32 }

// Config parameterizes a run.
type Config struct {
	MeshW, MeshH int
	Procs        int
	// Facts is the working-memory size; Rules the number of generated
	// rules; Seeds the number of initially asserted facts.
	Facts, Rules, Seeds int
	Seed                int64
	// MatchWork charges cycles per rule match attempt (default 30).
	MatchWork sim.Cycles
	// Copies replicates working memory at this level (1 = none).
	Copies   int
	Validate bool
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 2
	}
	if c.Procs == 0 {
		c.Procs = c.MeshW * c.MeshH
	}
	if c.Facts == 0 {
		c.Facts = 1024
	}
	if c.Rules == 0 {
		c.Rules = 2048
	}
	if c.Seeds == 0 {
		c.Seeds = 16
	}
	if c.MatchWork == 0 {
		c.MatchWork = 30
	}
	if c.Copies == 0 {
		c.Copies = 1
	}
	return c
}

// GenRules builds a deterministic random rule set.
func GenRules(cfg Config) []Rule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rules := make([]Rule, cfg.Rules)
	for i := range rules {
		rules[i] = Rule{
			A: int32(rng.Intn(cfg.Facts)),
			B: int32(rng.Intn(cfg.Facts)),
			C: int32(rng.Intn(cfg.Facts)),
		}
	}
	return rules
}

// Closure computes the sequential fixpoint: the set of derivable facts.
func Closure(cfg Config, rules []Rule) []bool {
	present := make([]bool, cfg.Facts)
	var agenda []int32
	for i := 0; i < cfg.Seeds; i++ {
		f := int32(i * (cfg.Facts / cfg.Seeds))
		if !present[f] {
			present[f] = true
			agenda = append(agenda, f)
		}
	}
	// Index rules by premise.
	byPremise := make([][]int, cfg.Facts)
	for ri, r := range rules {
		byPremise[r.A] = append(byPremise[r.A], ri)
		if r.B != r.A {
			byPremise[r.B] = append(byPremise[r.B], ri)
		}
	}
	for len(agenda) > 0 {
		f := agenda[0]
		agenda = agenda[1:]
		for _, ri := range byPremise[f] {
			r := rules[ri]
			if present[r.A] && present[r.B] && !present[r.C] {
				present[r.C] = true
				agenda = append(agenda, r.C)
			}
		}
	}
	return present
}

// Result reports a run.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	Fired       uint64 // rules fired (conclusions newly asserted)
	Derived     int    // facts present at fixpoint
	Present     []bool
	// Report is the rendered per-node counter table.
	Report string
}

// Run executes the workload.//
// Run is safe for concurrent use by the experiments sweep runner:
// every call builds a private machine (its own sim.Engine, mesh,
// stats and locally seeded RNGs) and shares no mutable state with
// other calls, so one fresh engine may run per worker goroutine.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	rules := GenRules(cfg)

	m, err := core.NewMachine(core.DefaultConfig(cfg.MeshW, cfg.MeshH))
	if err != nil {
		return Result{}, err
	}
	if cfg.Procs > m.Nodes() {
		return Result{}, fmt.Errorf("prodsys: %d procs on %d nodes", cfg.Procs, m.Nodes())
	}
	w := newEngine(m, rules, cfg)
	for p := 0; p < cfg.Procs; p++ {
		p := p
		m.SpawnNamed(mesh.NodeID(p), fmt.Sprintf("ps%d", p), func(t *proc.Thread) {
			w.worker(t, p)
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Elapsed:     elapsed,
		Utilization: m.Utilization(),
		Fired:       w.fired,
		Present:     w.readPresent(),
		Report:      m.Stats().Report(elapsed),
	}
	for _, p := range res.Present {
		if p {
			res.Derived++
		}
	}
	if cfg.Validate {
		want := Closure(cfg, rules)
		for f := range want {
			if res.Present[f] != want[f] {
				return res, fmt.Errorf("prodsys: fact %d presence %v, closure says %v", f, res.Present[f], want[f])
			}
		}
	}
	return res, nil
}

type engine struct {
	m     *core.Machine
	cfg   Config
	rules []Rule
	// byPremise indexes rules by either premise (plain Go — rule
	// memory is read-only program text, kept local on every node).
	byPremise [][]int

	present memory.VAddr // fact bit-array (one word per fact)
	pool    *work.Pool

	fired uint64
}

func (w *engine) owner(f int32) int {
	o := int(f) * w.cfg.Procs / w.cfg.Facts
	if o >= w.cfg.Procs {
		o = w.cfg.Procs - 1
	}
	return o
}

func newEngine(m *core.Machine, rules []Rule, cfg Config) *engine {
	w := &engine{m: m, cfg: cfg, rules: rules}
	w.byPremise = make([][]int, cfg.Facts)
	for ri, r := range rules {
		w.byPremise[r.A] = append(w.byPremise[r.A], ri)
		if r.B != r.A {
			w.byPremise[r.B] = append(w.byPremise[r.B], ri)
		}
	}
	homes := make([]mesh.NodeID, (cfg.Facts+memory.PageWords-1)/memory.PageWords)
	for i := range homes {
		homes[i] = mesh.NodeID(w.owner(int32(i * memory.PageWords)))
	}
	w.present = m.AllocHomed(homes...)
	w.pool = work.New(m, cfg.Procs, cfg.Facts, func(f int) int { return w.owner(int32(f)) })
	if cfg.Copies > 1 {
		for i := range homes {
			va := w.present + memory.VAddr(i*memory.PageWords)
			for k := 1; k < cfg.Copies && k < cfg.Procs; k++ {
				m.Replicate(va, mesh.NodeID((int(homes[i])+k)%cfg.Procs))
			}
		}
	}

	// Seed facts into their owners' queues.
	var seeds []int
	for i := 0; i < cfg.Seeds; i++ {
		f := i * (cfg.Facts / cfg.Seeds)
		if m.Peek(w.present+memory.VAddr(f))&memory.TopBit != 0 {
			continue
		}
		m.Poke(w.present+memory.VAddr(f), memory.TopBit)
		seeds = append(seeds, f)
	}
	w.pool.Seed(seeds...)
	return w
}

func (w *engine) presentVA(f int32) memory.VAddr { return w.present + memory.VAddr(f) }

// isPresent checks a premise at the master (authoritative) so a fact
// asserted concurrently on another node is never missed forever: the
// asserter re-agendas its conclusion, which re-tests every rule it
// appears in.
func (w *engine) isPresent(t *proc.Thread, f int32) bool {
	return t.Verify(t.DelayedRead(w.presentVA(f)))&memory.TopBit != 0
}

// assert adds fact f; the fetch-and-set old value elects the single
// worker that schedules it. The presence bit is verified at its master
// before Add, satisfying the pool's publish-before-Add rule.
func (w *engine) assert(t *proc.Thread, f int32) {
	if t.FetchSetSync(w.presentVA(f))&memory.TopBit != 0 {
		return // already present
	}
	w.fired++
	w.pool.Add(t, int(f))
}

// match processes a newly asserted fact: fire every rule it completes.
func (w *engine) match(t *proc.Thread, f int32) {
	for _, ri := range w.byPremise[f] {
		r := w.rules[ri]
		t.Compute(w.cfg.MatchWork)
		other := r.A
		if other == f {
			other = r.B
		}
		// The triggering premise f is known present; test the other.
		if other == f || w.isPresent(t, other) {
			w.assert(t, r.C)
		}
	}
	w.pool.Done(t)
}

func (w *engine) worker(t *proc.Thread, p int) {
	for {
		f, ok := w.pool.Get(t, p)
		if !ok {
			return
		}
		w.match(t, int32(f))
	}
}

func (w *engine) readPresent() []bool {
	out := make([]bool, w.cfg.Facts)
	for f := range out {
		out[f] = w.m.Peek(w.presentVA(int32(f)))&memory.TopBit != 0
	}
	return out
}
