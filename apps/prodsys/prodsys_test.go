package prodsys

import "testing"

func TestClosureMonotone(t *testing.T) {
	cfg := Config{Facts: 128, Rules: 256, Seeds: 8, Seed: 1}.withDefaults()
	rules := GenRules(cfg)
	present := Closure(cfg, rules)
	// Seeds present.
	for i := 0; i < cfg.Seeds; i++ {
		if !present[i*(cfg.Facts/cfg.Seeds)] {
			t.Fatalf("seed fact %d missing", i)
		}
	}
	// Fixpoint: no rule is still enabled but unfired.
	for _, r := range rules {
		if present[r.A] && present[r.B] && !present[r.C] {
			t.Fatalf("closure not a fixpoint: %v", r)
		}
	}
}

func TestClosureDeterministic(t *testing.T) {
	cfg := Config{Facts: 64, Rules: 128, Seeds: 4, Seed: 2}.withDefaults()
	a := Closure(cfg, GenRules(cfg))
	b := Closure(cfg, GenRules(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("closure not deterministic")
		}
	}
}

func TestParallelMatchesClosure(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Facts: 256, Rules: 512, Seeds: 8, Seed: 3, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Derived < 8 {
		t.Fatalf("derived only %d facts", res.Derived)
	}
}

func TestParallelMatchesClosureSingleProc(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 1, Procs: 1, Facts: 128, Rules: 256, Seeds: 4, Seed: 5, Validate: true}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWithReplication(t *testing.T) {
	cfg := Config{MeshW: 4, MeshH: 2, Procs: 8, Facts: 512, Rules: 1024, Seeds: 16, Seed: 7, Copies: 3, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %f", res.Utilization)
	}
}

func TestDeterministicRun(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Facts: 128, Rules: 256, Seeds: 4, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Fired != b.Fired {
		t.Fatal("nondeterministic run")
	}
}
