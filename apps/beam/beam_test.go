package beam

import (
	"testing"

	"plus/internal/sim"
)

func TestReferenceShape(t *testing.T) {
	cfg := Config{Layers: 4, States: 8, Branch: 2, MaxWeight: 4}
	ref := Reference(cfg)
	if len(ref) != 32 {
		t.Fatalf("len = %d", len(ref))
	}
	for s := 0; s < 8; s++ {
		if ref[s] != 0 {
			t.Fatalf("layer 0 score = %d", ref[s])
		}
	}
	// Later layers must be reached (succ covers the layer).
	for v := 8; v < 32; v++ {
		if ref[v] == Inf {
			t.Fatalf("vertex %d unreached in reference", v)
		}
	}
	// Scores grow with depth (all weights >= 1).
	for l := 1; l < 4; l++ {
		for s := 0; s < 8; s++ {
			if ref[l*8+s] < uint32(l) {
				t.Fatalf("score[%d,%d] = %d below depth bound", l, s, ref[l*8+s])
			}
		}
	}
}

func TestBlockingMatchesReference(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 8, States: 16, Branch: 3, Style: Blocking, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed < uint64(8*16) {
		t.Fatalf("processed only %d vertices", res.Processed)
	}
}

func TestDelayedMatchesReference(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 8, States: 16, Branch: 3, Style: Delayed, Validate: true}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestContextSwitchMatchesReference(t *testing.T) {
	for _, cost := range []sim.Cycles{16, 40, 140} {
		cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 6, States: 16, Branch: 3,
			Style: ContextSwitch, SwitchCost: cost, Validate: true}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("cost %d: %v", cost, err)
		}
	}
}

func TestContextSwitchRequiresCost(t *testing.T) {
	if _, err := Run(Config{Style: ContextSwitch}); err == nil {
		t.Fatal("missing SwitchCost accepted")
	}
}

func TestDelayedBranchBudget(t *testing.T) {
	if _, err := Run(Config{Style: Delayed, Branch: 7}); err == nil {
		t.Fatal("Branch 7 accepted in delayed style")
	}
}

func TestSingleProcBaseline(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 1, Procs: 1, Layers: 8, States: 16, Branch: 3, Style: Blocking, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %f", res.Utilization)
	}
}

func TestDelayedFasterThanBlocking(t *testing.T) {
	// Figure 3-1's core claim: delayed operations beat blocking
	// synchronization.
	base := Config{MeshW: 4, MeshH: 2, Procs: 8, Layers: 12, States: 32, Branch: 3, Validate: true}
	bl := base
	bl.Style = Blocking
	rb, err := Run(bl)
	if err != nil {
		t.Fatal(err)
	}
	dl := base
	dl.Style = Delayed
	rd, err := Run(dl)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Elapsed >= rb.Elapsed {
		t.Fatalf("delayed (%d) not faster than blocking (%d)", rd.Elapsed, rb.Elapsed)
	}
}

func TestCheapSwitchBeatsExpensiveSwitch(t *testing.T) {
	base := Config{MeshW: 4, MeshH: 2, Procs: 8, Layers: 10, States: 32, Branch: 3, Style: ContextSwitch, Validate: true}
	run := func(cost sim.Cycles) uint64 {
		cfg := base
		cfg.SwitchCost = cost
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("cost %d: %v", cost, err)
		}
		return uint64(r.Elapsed)
	}
	t16 := run(16)
	t140 := run(140)
	if t16 >= t140 {
		t.Fatalf("cs16 (%d) not faster than cs140 (%d)", t16, t140)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 8, States: 16, Branch: 3, Style: Delayed}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Processed != b.Processed {
		t.Fatalf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestStyleStrings(t *testing.T) {
	if Blocking.String() != "blocking" || Delayed.String() != "delayed" ||
		ContextSwitch.String() != "context-switch" || Style(9).String() != "style(?)" {
		t.Fatal("style strings wrong")
	}
}

func TestBeamPruningSoundness(t *testing.T) {
	// With pruning on, every reached score is still a genuine path
	// cost: no score may beat the exact reference.
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 10, States: 32, Branch: 3, Beam: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := Reference(cfg)
	for v, got := range res.Scores {
		if got < exact[v] {
			t.Fatalf("score[%d] = %d beats the optimal %d", v, got, exact[v])
		}
	}
	if res.Pruned == 0 {
		t.Fatal("narrow beam pruned nothing")
	}
	// The per-layer best of the final layer must still be within Beam
	// of... at least a valid reachable cost: the overall minimum found
	// equals the true optimum (the best path survives a beam that wide
	// on this lattice).
	min := func(xs []uint32, lo, hi int) uint32 {
		m := xs[lo]
		for _, x := range xs[lo:hi] {
			if x < m {
				m = x
			}
		}
		return m
	}
	lastLo := (cfg.Layers - 1) * cfg.States
	gotBest := min(res.Scores, lastLo, lastLo+cfg.States)
	wantBest := min(exact, lastLo, lastLo+cfg.States)
	if gotBest != wantBest {
		t.Fatalf("final-layer best %d, optimal %d", gotBest, wantBest)
	}
}

func TestBeamPruningReducesWork(t *testing.T) {
	base := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 12, States: 48, Branch: 3}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	narrow := base
	narrow.Beam = 3
	pruned, err := Run(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Processed+pruned.Pruned == 0 || pruned.Elapsed >= full.Elapsed {
		t.Fatalf("pruning did not pay: %d >= %d (pruned %d)",
			pruned.Elapsed, full.Elapsed, pruned.Pruned)
	}
}

func TestBeamWideBeamMatchesExact(t *testing.T) {
	// A beam wider than any possible score spread prunes nothing and
	// the result is the exact relaxation.
	cfg := Config{MeshW: 2, MeshH: 2, Procs: 4, Layers: 8, States: 16, Branch: 3,
		Beam: 1 << 20, Validate: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 0 {
		t.Fatalf("wide beam pruned %d vertices", res.Pruned)
	}
}
