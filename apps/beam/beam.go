// Package beam implements the beam-search workload of §3.4: searching
// a layered Hidden-Markov-Model digraph for the best-cost path, the
// application behind Figure 3-1 (efficiency under blocking
// synchronization, delayed operations, and context switching at 16,
// 40 and 140 cycles).
//
// The paper's inner loop — "a processor must dequeue one vertex from
// the list of vertices to be processed, lock all the vertices that
// follow it and finally queue a new vertex... about 70 RISC
// instructions and about 10 memory references per iteration" — is
// reproduced directly: per dequeued vertex the worker locks each
// successor with fetch-and-set, relaxes its score, re-queues it on
// improvement, and unlocks. The three synchronization styles differ
// only in how that loop is coded (issue+verify back to back, software
// pipelined, or run under the processor's switch-on-sync mode),
// exactly as in the paper, where "the programming burden of these
// changes was easily hidden in two macros".
package beam

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/work"
)

// Style selects the Figure 3-1 curve.
type Style int

const (
	// Blocking waits for every synchronization primitive to return a
	// result before proceeding.
	Blocking Style = iota
	// Delayed pipelines synchronization: the next vertex is dequeued in
	// parallel with processing the current one, and successor locks are
	// acquired in parallel.
	Delayed
	// ContextSwitch runs two threads per processor in switch-on-sync
	// mode with Config.SwitchCost per switch.
	ContextSwitch
)

// String names the style for reports and flags.
func (s Style) String() string {
	switch s {
	case Blocking:
		return "blocking"
	case Delayed:
		return "delayed"
	case ContextSwitch:
		return "context-switch"
	default:
		return "style(?)"
	}
}

// Inf is the unreached score (top bit clear).
const Inf uint32 = 0x7fffffff

// Config parameterizes a run.
type Config struct {
	// MeshW, MeshH, Procs as in the other workloads (defaults 4x4/16).
	MeshW, MeshH int
	Procs        int
	// Layers and States shape the HMM lattice (defaults 24 x 64);
	// Branch successors per state (default 3).
	Layers, States, Branch int
	// MaxWeight bounds transition costs (default 8).
	MaxWeight uint32
	// Style selects the synchronization coding style.
	Style Style
	// SwitchCost is the context-switch cost for ContextSwitch style
	// (the paper sweeps 16, 40, 140).
	SwitchCost sim.Cycles
	// ThreadsPerProc for ContextSwitch style (default 2).
	ThreadsPerProc int
	// InnerWork is the computation charged per inner-loop iteration
	// (default 70 — "about 70 RISC instructions").
	InnerWork sim.Cycles
	// Beam, when nonzero, enables beam pruning: a vertex whose score
	// exceeds its layer's running best by more than Beam is dropped.
	// The per-layer bests are maintained with min-xchng — §3.2's
	// "keep an approximation of the minimum or maximum value of some
	// variable" — and read from local replicas, so a slightly stale
	// best only weakens pruning, never correctness.
	Beam uint32
	// Validate checks final scores against a sequential DAG relaxation.
	Validate bool
	// Machine, when non-nil, overrides the machine configuration (mesh
	// geometry is still taken from MeshW/MeshH, and Style still selects
	// Mode/SwitchCost); used by the experiments to attach observers and
	// sweep hardware parameters.
	Machine *core.Config
}

func (c Config) withDefaults() Config {
	if c.MeshW == 0 {
		c.MeshW = 4
	}
	if c.MeshH == 0 {
		c.MeshH = 4
	}
	if c.Procs == 0 {
		c.Procs = c.MeshW * c.MeshH
	}
	if c.Layers == 0 {
		c.Layers = 24
	}
	if c.States == 0 {
		c.States = 64
	}
	if c.Branch == 0 {
		c.Branch = 3
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 8
	}
	if c.ThreadsPerProc == 0 {
		c.ThreadsPerProc = 2
	}
	if c.InnerWork == 0 {
		c.InnerWork = 70
	}
	return c
}

// Result reports a run.
type Result struct {
	Elapsed     sim.Cycles
	Utilization float64
	Processed   uint64 // vertices dequeued and relaxed
	Pruned      uint64 // vertices dropped by beam pruning
	Scores      []uint32
	// Report is the rendered per-node counter table.
	Report string
}

// succ returns successor j of state s in the next layer, spreading
// deterministically for spatial but not temporal locality.
func succ(s, j, states int) int {
	return (s + j*7 + 1) % states
}

// weight is the deterministic transition cost of edge (v, j).
func weight(v, j int, maxW uint32) uint32 {
	h := uint32(v)*2654435761 + uint32(j)*40503
	return 1 + (h>>7)%maxW
}

// Reference computes the exact minimal scores by layer-ordered
// relaxation (the oracle for Validate).
func Reference(cfg Config) []uint32 {
	cfg = cfg.withDefaults()
	n := cfg.Layers * cfg.States
	score := make([]uint32, n)
	for i := range score {
		score[i] = Inf
	}
	for s := 0; s < cfg.States; s++ {
		score[s] = 0
	}
	for l := 0; l+1 < cfg.Layers; l++ {
		for s := 0; s < cfg.States; s++ {
			v := l*cfg.States + s
			if score[v] == Inf {
				continue
			}
			for j := 0; j < cfg.Branch; j++ {
				u := (l+1)*cfg.States + succ(s, j, cfg.States)
				if nd := score[v] + weight(v, j, cfg.MaxWeight); nd < score[u] {
					score[u] = nd
				}
			}
		}
	}
	return score
}

// Run executes the workload.//
// Run is safe for concurrent use by the experiments sweep runner:
// every call builds a private machine (its own sim.Engine, mesh,
// stats and locally seeded RNGs) and shares no mutable state with
// other calls, so one fresh engine may run per worker goroutine.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var mcfg core.Config
	if cfg.Machine != nil {
		mcfg = *cfg.Machine
		mcfg.MeshWidth, mcfg.MeshHeight = cfg.MeshW, cfg.MeshH
	} else {
		mcfg = core.DefaultConfig(cfg.MeshW, cfg.MeshH)
	}
	if cfg.Style == ContextSwitch {
		if cfg.SwitchCost == 0 {
			return Result{}, fmt.Errorf("beam: ContextSwitch style needs SwitchCost")
		}
		mcfg.Mode = proc.SwitchOnSync
		mcfg.SwitchCost = cfg.SwitchCost
	}
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.Procs > m.Nodes() {
		return Result{}, fmt.Errorf("beam: %d procs on %d nodes", cfg.Procs, m.Nodes())
	}
	// The delayed style keeps 1 dequeue + 1 delayed-read + Branch lock
	// handles plus a fadd and an enqueue in flight; the hardware has 8
	// delayed-operation slots.
	if cfg.Style == Delayed && cfg.Branch > 6 {
		return Result{}, fmt.Errorf("beam: Branch %d exceeds the delayed-op budget (max 6)", cfg.Branch)
	}
	w := newLattice(m, cfg)

	threads := 1
	if cfg.Style == ContextSwitch {
		threads = cfg.ThreadsPerProc
	}
	for p := 0; p < cfg.Procs; p++ {
		for k := 0; k < threads; k++ {
			p := p
			m.SpawnNamed(mesh.NodeID(p), fmt.Sprintf("beam%d.%d", p, k), func(t *proc.Thread) {
				w.worker(t, p)
			})
		}
	}
	elapsed, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Elapsed:     elapsed,
		Utilization: m.Utilization(),
		Processed:   w.processed,
		Pruned:      w.pruned,
		Scores:      w.readScores(),
		Report:      m.Stats().Report(elapsed),
	}
	if cfg.Validate {
		want := Reference(cfg)
		for v := range want {
			if res.Scores[v] != want[v] {
				return res, fmt.Errorf("beam: score[%d] = %d, reference says %d", v, res.Scores[v], want[v])
			}
		}
	}
	return res, nil
}

type lattice struct {
	m   *core.Machine
	cfg Config

	score memory.VAddr
	lock  memory.VAddr
	best  memory.VAddr // per-layer running minimum (beam pruning)
	pool  *work.Pool

	processed uint64
	pruned    uint64
}

func (w *lattice) owner(v int) int {
	s := v % w.cfg.States
	o := s * w.cfg.Procs / w.cfg.States
	if o >= w.cfg.Procs {
		o = w.cfg.Procs - 1
	}
	return o
}

func newLattice(m *core.Machine, cfg Config) *lattice {
	w := &lattice{m: m, cfg: cfg}
	n := cfg.Layers * cfg.States
	homes := func(words int) []mesh.NodeID {
		pages := (words + memory.PageWords - 1) / memory.PageWords
		hs := make([]mesh.NodeID, pages)
		for i := range hs {
			hs[i] = mesh.NodeID(w.owner(i * memory.PageWords % n))
		}
		return hs
	}
	w.score = m.AllocHomed(homes(n)...)
	w.lock = m.AllocHomed(homes(n)...)
	w.pool = work.New(m, cfg.Procs, n, w.owner)
	if cfg.Beam > 0 {
		w.best = m.Alloc(0, 1)
		for p := 1; p < cfg.Procs; p++ {
			m.Replicate(w.best, mesh.NodeID(p)) // prune tests read locally
		}
		for l := 0; l < cfg.Layers; l++ {
			init := Inf
			if l == 0 {
				init = 0
			}
			m.Poke(w.best+memory.VAddr(l), memory.Word(init))
		}
	}

	// Seed layer 0: every state active with score 0.
	for v := 0; v < n; v++ {
		sc := Inf
		if v < cfg.States {
			sc = 0
		}
		m.Poke(w.score+memory.VAddr(v), memory.Word(sc))
	}
	seeds := make([]int, cfg.States)
	for s := range seeds {
		seeds[s] = s
	}
	w.pool.Seed(seeds...)
	return w
}

func (w *lattice) scoreVA(v int) memory.VAddr { return w.score + memory.VAddr(v) }
func (w *lattice) lockVA(v int) memory.VAddr  { return w.lock + memory.VAddr(v) }

const spinBackoff sim.Cycles = 25

// pruneOrTrack applies beam pruning for vertex v at layer l with score
// sv: it reports true when the vertex falls outside the beam, and
// otherwise folds sv into the layer's running minimum via min-xchng.
// The best is read from the local replica — staleness only widens the
// effective beam.
func (w *lattice) pruneOrTrack(t *proc.Thread, l int, sv uint32) bool {
	if w.cfg.Beam == 0 {
		return false
	}
	best := uint32(t.Read(w.best + memory.VAddr(l)))
	if best < Inf && sv > best+w.cfg.Beam {
		w.pruned++
		return true
	}
	if sv < best {
		t.Verify(t.MinXchng(w.best+memory.VAddr(l), memory.Word(sv)))
	}
	return false
}

// relaxLocked updates successor u of v (whose lock the caller holds)
// and reports whether u improved. The caller re-queues improved
// successors after a fence has completed the score writes — the pool's
// flag protocol requires an item's state to be published before Add.
func (w *lattice) relaxLocked(t *proc.Thread, u int, nd uint32) bool {
	old := uint32(t.Read(w.scoreVA(u)))
	if nd >= old {
		return false
	}
	t.Write(w.scoreVA(u), memory.Word(nd))
	return true
}

// processBlocking is the straightforward coding: every primitive is
// issued and verified back to back.
func (w *lattice) processBlocking(t *proc.Thread, v int) {
	w.processed++
	t.Compute(w.cfg.InnerWork)
	l, s := v/w.cfg.States, v%w.cfg.States
	if l+1 >= w.cfg.Layers {
		w.pool.Done(t)
		return
	}
	sv := uint32(t.Verify(t.DelayedRead(w.scoreVA(v))))
	if w.pruneOrTrack(t, l, sv) {
		w.pool.Done(t)
		return
	}
	for j := 0; j < w.cfg.Branch; j++ {
		u := (l+1)*w.cfg.States + succ(s, j, w.cfg.States)
		for t.FetchSetSync(w.lockVA(u))&memory.TopBit != 0 {
			t.Compute(spinBackoff)
		}
		improved := w.relaxLocked(t, u, sv+weight(v, j, w.cfg.MaxWeight))
		t.Fence() // publish the score before releasing the lock
		t.Write(w.lockVA(u), 0)
		if improved {
			w.pool.Add(t, u)
		}
	}
	w.pool.Done(t)
}

// processDelayed pipelines: all successor locks are issued in
// parallel, then verified — "the locking of all next vertices is
// performed in parallel" (§3.4).
func (w *lattice) processDelayed(t *proc.Thread, v int) {
	w.processed++
	t.Compute(w.cfg.InnerWork)
	l, s := v/w.cfg.States, v%w.cfg.States
	if l+1 >= w.cfg.Layers {
		w.pool.Done(t)
		return
	}
	svh := t.DelayedRead(w.scoreVA(v)) // overlaps with lock issue
	succs := make([]int, w.cfg.Branch)
	locks := make([]proc.Handle, w.cfg.Branch)
	for j := 0; j < w.cfg.Branch; j++ {
		succs[j] = (l+1)*w.cfg.States + succ(s, j, w.cfg.States)
		locks[j] = t.FetchSet(w.lockVA(succs[j]))
	}
	sv := uint32(t.Verify(svh))
	if w.pruneOrTrack(t, l, sv) {
		// Locks were issued speculatively; release whatever was won.
		for j, u := range succs {
			if t.Verify(locks[j])&memory.TopBit == 0 {
				t.Write(w.lockVA(u), 0)
			}
		}
		t.Fence()
		w.pool.Done(t)
		return
	}
	got := make([]bool, w.cfg.Branch)
	conflict := false
	for j := range locks {
		got[j] = t.Verify(locks[j])&memory.TopBit == 0
		conflict = conflict || !got[j]
	}
	if conflict {
		// Another worker holds part of our successor set. Holding our
		// share while spinning for the rest can deadlock (both sides
		// wait holding what the other needs), so release everything
		// and fall back to one-lock-at-a-time — the thread then never
		// waits while holding a lock. Conflicts are rare, so the
		// common case keeps fully parallel locking.
		for j, u := range succs {
			if got[j] {
				t.Write(w.lockVA(u), 0)
			}
		}
		t.Fence()
		for j, u := range succs {
			for t.FetchSetSync(w.lockVA(u))&memory.TopBit != 0 {
				t.Compute(spinBackoff)
			}
			improved := w.relaxLocked(t, u, sv+weight(v, j, w.cfg.MaxWeight))
			t.Fence()
			t.Write(w.lockVA(u), 0)
			if improved {
				w.pool.Add(t, u)
			}
		}
		w.pool.Done(t)
		return
	}
	// All locks are held. Pipeline the rest of the iteration too:
	// fetch every successor's score with parallel delayed-reads,
	// write the improvements (writes never block), keep the active-
	// count fadds in flight, and publish everything with a single
	// fence before releasing the locks — the "room for speed
	// improvement through code scheduling and selective use of the
	// fence operation" of §3.1.
	reads := make([]proc.Handle, len(succs))
	for j, u := range succs {
		reads[j] = t.DelayedRead(w.scoreVA(u))
	}
	var improved []int
	for j, u := range succs {
		old := uint32(t.Verify(reads[j]))
		nd := sv + weight(v, j, w.cfg.MaxWeight)
		if nd >= old {
			continue
		}
		t.Write(w.scoreVA(u), memory.Word(nd))
		improved = append(improved, u)
	}
	// One fence publishes all score writes, then the locks release and
	// the improved successors are scheduled (Add requires the item's
	// state to be globally published first).
	t.Fence()
	for _, u := range succs {
		t.Write(w.lockVA(u), 0)
	}
	for _, u := range improved {
		w.pool.Add(t, u)
	}
	w.pool.Done(t)
}

// worker drains queues until the lattice is exhausted. The Delayed
// style additionally keeps the next dequeue of the local queue in
// flight while processing ("the next vertex is dequeued in parallel
// with the processing of the current state").
func (w *lattice) worker(t *proc.Thread, p int) {
	if w.cfg.Style == Delayed {
		s := w.pool.Session(p)
		for {
			v, ok := s.Get(t)
			if !ok {
				return
			}
			w.processDelayed(t, v)
		}
	}
	for {
		v, ok := w.pool.Get(t, p)
		if !ok {
			return
		}
		w.processBlocking(t, v)
	}
}

func (w *lattice) readScores() []uint32 {
	n := w.cfg.Layers * w.cfg.States
	out := make([]uint32, n)
	for v := range out {
		out[v] = uint32(w.m.Peek(w.scoreVA(v)))
	}
	return out
}
