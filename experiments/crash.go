package experiments

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
)

// --- Fault-crash sweep: node crash & replicated-master failover --------

// CrashRow is one point of the fault-crash sweep: a fixed write-fence
// workload over four triply-replicated pages on a 4x4 mesh, re-run
// with 0, 1, 2 and 4 of the pages' master nodes crashing (staggered,
// 6000 cycles down each). The embedded counters are the recovery
// protocol's own accounting; RecoveryMean/RecoveryMax (inside the
// block) give the crash-to-failover latency the detection pipeline
// achieves, and Slowdown the whole-run cost versus the crash-free run.
type CrashRow struct {
	stats.CrashBlock
	Elapsed  sim.Cycles `json:"elapsed_cycles"`
	Slowdown float64    `json:"slowdown"`
	// CrashDropped counts messages the mesh discarded at down nodes;
	// Retransmits is the reliability sublayer's total repair activity.
	CrashDropped uint64 `json:"crash_dropped"`
	Retransmits  uint64 `json:"retransmits"`
}

// crashVictims are the master nodes the sweep crashes, in crash order;
// crashReplicas[i] holds the two nodes page i is replicated onto
// (neighbors of its master, never themselves victims, all distinct).
var crashVictims = []mesh.NodeID{5, 10, 6, 9}
var crashReplicas = [4][2]mesh.NodeID{{1, 4}, {11, 14}, {2, 7}, {8, 13}}

// runCrashPoint runs the fixed workload with the first `crashes`
// victims crashing. The workload itself is identical at every point —
// pages, writers and operation counts never vary — so elapsed-time
// differences measure only the outages and their recovery. Each writer
// ends with a sentinel store issued after the last restart has settled;
// validating the sentinels proves the final convergence survived every
// failover epoch (intermediate stores force-retired during an epoch
// carry lost-write semantics and are not individually asserted).
func runCrashPoint(crashes int, quick bool, o Options, name string) (CrashRow, error) {
	iters := 1600
	if quick {
		iters = 800
	}
	mcfg := core.DefaultConfig(4, 4)
	if crashes > 0 {
		f := mesh.FaultConfig{}
		for i := 0; i < crashes; i++ {
			f.Crashes = append(f.Crashes, mesh.CrashEvent{
				Node: crashVictims[i], At: sim.Cycles(8000 + i*20000), Duration: 6000,
			})
		}
		mcfg.Faults = f
		mcfg.CheckInvariants = true
		// A tight check period both exercises the checker across every
		// failover epoch and keeps the self-rearming tick from
		// quantizing the run's drain time too coarsely for Slowdown.
		mcfg.InvariantPeriod = 1000
	}
	o.Observe.Attach(&mcfg, name)
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return CrashRow{}, err
	}
	bases := make([]memory.VAddr, len(crashVictims))
	for i, home := range crashVictims {
		bases[i] = m.Alloc(home, 1)
		m.Replicate(bases[i], crashReplicas[i][0], crashReplicas[i][1])
	}
	type sentinel struct {
		va   memory.VAddr
		want memory.Word
	}
	var sentinels []sentinel
	for i := range crashVictims {
		for j, node := range crashReplicas[i] {
			va := bases[i] + memory.VAddr(8+j)
			want := memory.Word(0xC0DE00 + i*2 + j)
			sentinels = append(sentinels, sentinel{va, want})
			va, want, iters := va, want, iters
			m.Spawn(node, func(th *proc.Thread) {
				for w := 0; w < iters; w++ {
					th.Write(va, memory.Word(w+1))
					th.Fence()
					th.Compute(40)
				}
				th.Write(va, want)
				th.Fence()
			})
		}
	}
	elapsed, err := m.Run()
	if err != nil {
		return CrashRow{}, err
	}
	for _, s := range sentinels {
		if got := m.Peek(s.va); got != s.want {
			return CrashRow{}, fmt.Errorf("sentinel at %#x: got %#x, want %#x", s.va, got, s.want)
		}
	}
	return CrashRow{
		CrashBlock:   m.Stats().Crash(),
		Elapsed:      elapsed,
		CrashDropped: m.Mesh().Stats().CrashDropped,
		Retransmits:  m.Stats().Retransmits,
	}, nil
}

// crashPoints builds the sweep: 0 (baseline), 1, 2 and 4 crashed
// masters.
func crashPoints(o Options) []Point[CrashRow] {
	var pts []Point[CrashRow]
	for _, crashes := range []int{0, 1, 2, 4} {
		crashes := crashes
		name := fmt.Sprintf("fault-crash crashes=%d", crashes)
		pts = append(pts, Point[CrashRow]{
			Name: name,
			Tags: map[string]string{"crashes": fmt.Sprint(crashes)},
			Run: func() (CrashRow, error) {
				return runCrashPoint(crashes, o.Quick, o, name)
			},
		})
	}
	return pts
}

// fillCrashSlowdown normalizes every row to the crash-free baseline.
// The baseline runs without the reliability sublayer (a crash script
// turns it on), so the first crashy row's slowdown includes the
// sublayer's sequencing overhead; the increments between crashy rows
// isolate the per-outage cost.
func fillCrashSlowdown(rows []CrashRow) []CrashRow {
	var base sim.Cycles
	for _, r := range rows {
		if r.Crashes == 0 {
			base = r.Elapsed
			break
		}
	}
	for i := range rows {
		rows[i].Slowdown = 1.0
		if base > 0 {
			rows[i].Slowdown = float64(rows[i].Elapsed) / float64(base)
		}
	}
	return rows
}

// FormatFaultCrash renders the sweep as a table.
func FormatFaultCrash(rows []CrashRow) string {
	return renderTable("Fault-crash sweep: master crashes, failover & rejoin (4x4, 3 copies/page)",
		[]col{{"Crashes", -8}, {"Elapsed", 12}, {"Slowdown", 10}, {"RecMean", 9}, {"RecMax", 8},
			{"Promoted", 9}, {"Resynced", 9}, {"Reissued", 9}, {"Retired", 8}, {"Dropped", 9}},
		cells(rows, func(r CrashRow) []string {
			return []string{
				fmt.Sprint(r.Crashes),
				fmt.Sprint(r.Elapsed),
				fmt.Sprintf("%.2f", r.Slowdown),
				fmt.Sprintf("%.0f", r.RecoveryMean),
				fmt.Sprint(r.RecoveryMax),
				fmt.Sprint(r.MastersPromoted),
				fmt.Sprint(r.PagesResynced),
				fmt.Sprint(r.ReissuedOps),
				fmt.Sprint(r.ForcedRetires),
				fmt.Sprint(r.CrashDropped),
			}
		}))
}
