package experiments

import (
	"fmt"
	"strings"

	"plus/internal/coherence"
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

func defaultMachine(w, h int) core.Config { return core.DefaultConfig(w, h) }

// --- Table 3-1: delayed-operation execution cycles ----------------------

// Table31Row is one delayed operation's measured cost decomposition.
type Table31Row struct {
	Op           coherence.Op
	PaperCycles  sim.Cycles // Table 3-1's execution-cycles column
	MeasuredExec sim.Cycles // recovered from an end-to-end measurement
	EndToEnd     sim.Cycles // full blocking issue→verify time, 1 hop
}

// Table31 measures every delayed operation between adjacent nodes and
// recovers the coherence manager's execution time by subtracting the
// documented issue, network and result-read components — verifying
// the implementation charges exactly the paper's 39/52 cycles.
func Table31() ([]Table31Row, error) {
	var rows []Table31Row
	for _, op := range coherence.Ops() {
		op := op
		mcfg := defaultMachine(2, 1)
		m, err := core.NewMachine(mcfg)
		if err != nil {
			return nil, err
		}
		tm := mcfg.Timing
		target := m.Alloc(1, 1) // master on the remote node
		// Queue ops address a control word holding an offset.
		va := target
		if op == coherence.OpQueue || op == coherence.OpDequeue {
			va = target + memory.VAddr(tm.MaxQueueSize)
		}
		// Dequeue needs an occupied slot to pop.
		if op == coherence.OpDequeue {
			m.Poke(target, memory.TopBit|7)
		}
		var elapsed sim.Cycles
		m.Spawn(0, func(t *proc.Thread) {
			t.Read(target) // fault the mapping in before timing
			start := t.Now()
			t.Verify(t.Issue(op, va, 1))
			elapsed = t.Now() - start
		})
		if _, err := m.Run(); err != nil {
			return nil, fmt.Errorf("table 3-1 %v: %w", op, err)
		}
		oneWay := m.Mesh().Latency(0, 1)
		overheads := tm.DelayedIssue + 2*oneWay + tm.CMProcess + tm.ResultRead
		rows = append(rows, Table31Row{
			Op:           op,
			PaperCycles:  op.ExecCycles(tm),
			MeasuredExec: elapsed - overheads,
			EndToEnd:     elapsed,
		})
	}
	return rows, nil
}

// FormatTable31 renders the measurement against the paper's numbers.
func FormatTable31(rows []Table31Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3-1: delayed-operation execution cycles (adjacent nodes)\n")
	fmt.Fprintf(&b, "%-16s %8s %10s %10s\n", "Operation", "Paper", "Measured", "EndToEnd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %10d %10d\n", r.Op, r.PaperCycles, r.MeasuredExec, r.EndToEnd)
	}
	return b.String()
}

// --- §3.1 cost anatomy: latency vs hop distance -------------------------

// CostRow is one hop-distance sample of the §3.1 cost anatomy.
type CostRow struct {
	Hops       int
	RemoteRead sim.Cycles // blocking read: "32 cycles plus round trip"
	BlockFadd  sim.Cycles // blocking fetch-and-add end to end
	RoundTrip  sim.Cycles // 24 cycles adjacent, +4 per extra hop
}

// Section31Costs measures remote-read and blocking-fadd latency at
// increasing hop distance on an 8x1 mesh, reproducing the paper's
// "round trip ... about 24 cycles; each extra hop adds 4 cycles" and
// "remote read is about 32 cycles plus the round-trip delay".
func Section31Costs() ([]CostRow, error) {
	var rows []CostRow
	for hops := 1; hops <= 7; hops++ {
		m, err := core.NewMachine(defaultMachine(8, 1))
		if err != nil {
			return nil, err
		}
		dst := mesh.NodeID(hops)
		data := m.Alloc(dst, 1)
		var readT, faddT sim.Cycles
		m.Spawn(0, func(t *proc.Thread) {
			t.Read(data) // fault the mapping in before timing
			s := t.Now()
			t.Read(data)
			readT = t.Now() - s
			s = t.Now()
			t.FaddSync(data, 1)
			faddT = t.Now() - s
		})
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		rt := m.Mesh().Latency(0, dst) * 2
		rows = append(rows, CostRow{Hops: hops, RemoteRead: readT, BlockFadd: faddT, RoundTrip: rt})
	}
	return rows, nil
}

// FormatCosts renders the hop sweep.
func FormatCosts(rows []CostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 3.1 cost anatomy vs hop distance (8x1 mesh)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s\n", "Hops", "RoundTrip", "RemoteRead", "BlockFadd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12d %12d %12d\n", r.Hops, r.RoundTrip, r.RemoteRead, r.BlockFadd)
	}
	return b.String()
}
