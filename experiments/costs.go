package experiments

import (
	"fmt"

	"plus/internal/coherence"
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
)

func defaultMachine(w, h int) core.Config { return core.DefaultConfig(w, h) }

// --- Table 3-1: delayed-operation execution cycles ----------------------

// Table31Row is one delayed operation's measured cost decomposition.
type Table31Row struct {
	Op           coherence.Op `json:"op"`
	PaperCycles  sim.Cycles   `json:"paper_cycles"`    // Table 3-1's execution-cycles column
	MeasuredExec sim.Cycles   `json:"measured_cycles"` // recovered from an end-to-end measurement
	EndToEnd     sim.Cycles   `json:"end_to_end"`      // full blocking issue→verify time, 1 hop
}

// table31Points measures every delayed operation between adjacent
// nodes and recovers the coherence manager's execution time by
// subtracting the documented issue, network and result-read
// components — verifying the implementation charges exactly the
// paper's 39/52 cycles.
func table31Points(o Options) []Point[Table31Row] {
	var pts []Point[Table31Row]
	for _, op := range coherence.Ops() {
		op := op
		name := fmt.Sprintf("table 3-1 %v", op)
		pts = append(pts, Point[Table31Row]{
			Name: name,
			Tags: map[string]string{"op": op.String()},
			Run: func() (Table31Row, error) {
				mcfg := defaultMachine(2, 1)
				o.Observe.Attach(&mcfg, name)
				m, err := core.NewMachine(mcfg)
				if err != nil {
					return Table31Row{}, err
				}
				tm := mcfg.Timing
				target := m.Alloc(1, 1) // master on the remote node
				// Queue ops address a control word holding an offset.
				va := target
				if op == coherence.OpQueue || op == coherence.OpDequeue {
					va = target + memory.VAddr(tm.MaxQueueSize)
				}
				// Dequeue needs an occupied slot to pop.
				if op == coherence.OpDequeue {
					m.Poke(target, memory.TopBit|7)
				}
				var elapsed sim.Cycles
				m.Spawn(0, func(t *proc.Thread) {
					t.Read(target) // fault the mapping in before timing
					start := t.Now()
					t.Verify(t.Issue(op, va, 1))
					elapsed = t.Now() - start
				})
				if _, err := m.Run(); err != nil {
					return Table31Row{}, err
				}
				oneWay := m.Mesh().Latency(0, 1)
				overheads := tm.DelayedIssue + 2*oneWay + tm.CMProcess + tm.ResultRead
				return Table31Row{
					Op:           op,
					PaperCycles:  op.ExecCycles(tm),
					MeasuredExec: elapsed - overheads,
					EndToEnd:     elapsed,
				}, nil
			},
		})
	}
	return pts
}

// Table31 measures the cost of every delayed operation (Table 3-1).
func Table31(o Options) ([]Table31Row, error) {
	return RunPoints(table31Points(o), o.Workers)
}

// FormatTable31 renders the measurement against the paper's numbers.
func FormatTable31(rows []Table31Row) string {
	return renderTable("Table 3-1: delayed-operation execution cycles (adjacent nodes)",
		[]col{{"Operation", -16}, {"Paper", 8}, {"Measured", 10}, {"EndToEnd", 10}},
		cells(rows, func(r Table31Row) []string {
			return []string{
				r.Op.String(), fmt.Sprint(r.PaperCycles),
				fmt.Sprint(r.MeasuredExec), fmt.Sprint(r.EndToEnd),
			}
		}))
}

// --- §3.1 cost anatomy: latency vs hop distance -------------------------

// CostRow is one hop-distance sample of the §3.1 cost anatomy.
type CostRow struct {
	Hops       int        `json:"hops"`
	RemoteRead sim.Cycles `json:"remote_read"` // blocking read: "32 cycles plus round trip"
	BlockFadd  sim.Cycles `json:"block_fadd"`  // blocking fetch-and-add end to end
	RoundTrip  sim.Cycles `json:"round_trip"`  // 24 cycles adjacent, +4 per extra hop
}

// costsPoints measures remote-read and blocking-fadd latency at
// increasing hop distance on an 8x1 mesh, reproducing the paper's
// "round trip ... about 24 cycles; each extra hop adds 4 cycles" and
// "remote read is about 32 cycles plus the round-trip delay".
func costsPoints(o Options) []Point[CostRow] {
	var pts []Point[CostRow]
	for hops := 1; hops <= 7; hops++ {
		hops := hops
		name := fmt.Sprintf("costs hops=%d", hops)
		pts = append(pts, Point[CostRow]{
			Name: name,
			Tags: map[string]string{"hops": fmt.Sprint(hops)},
			Run: func() (CostRow, error) {
				mcfg := defaultMachine(8, 1)
				o.Observe.Attach(&mcfg, name)
				m, err := core.NewMachine(mcfg)
				if err != nil {
					return CostRow{}, err
				}
				dst := mesh.NodeID(hops)
				data := m.Alloc(dst, 1)
				var readT, faddT sim.Cycles
				m.Spawn(0, func(t *proc.Thread) {
					t.Read(data) // fault the mapping in before timing
					s := t.Now()
					t.Read(data)
					readT = t.Now() - s
					s = t.Now()
					t.FaddSync(data, 1)
					faddT = t.Now() - s
				})
				if _, err := m.Run(); err != nil {
					return CostRow{}, err
				}
				rt := m.Mesh().Latency(0, dst) * 2
				return CostRow{Hops: hops, RemoteRead: readT, BlockFadd: faddT, RoundTrip: rt}, nil
			},
		})
	}
	return pts
}

// Section31Costs runs the hop-distance sweep.
func Section31Costs(o Options) ([]CostRow, error) {
	return RunPoints(costsPoints(o), o.Workers)
}

// FormatCosts renders the hop sweep.
func FormatCosts(rows []CostRow) string {
	return renderTable("Section 3.1 cost anatomy vs hop distance (8x1 mesh)",
		[]col{{"Hops", -6}, {"RoundTrip", 12}, {"RemoteRead", 12}, {"BlockFadd", 12}},
		cells(rows, func(r CostRow) []string {
			return []string{
				fmt.Sprint(r.Hops), fmt.Sprint(r.RoundTrip),
				fmt.Sprint(r.RemoteRead), fmt.Sprint(r.BlockFadd),
			}
		}))
}
