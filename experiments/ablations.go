package experiments

import (
	"fmt"

	"plus/apps/synth"
	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/proc"
)

// The ablation sweeps measure the design decisions DESIGN.md calls
// out. Two of them (pending-write depth, delayed-op depth) are pure
// microbenchmarks — bursts against one remote node, where the
// outstanding-operation limit is the binding constraint — because the
// full workloads never push past the hardware's 8 and would show a
// flat line.

// fencePoints compares PLUS's explicit-fence discipline with
// DASH-style implicit fences at every synchronization (§2.1) on a
// write-burst-then-sync pattern, where the implicit fence must drain
// the pending-writes cache before every RMW.
func fencePoints(o Options) []Point[AblationRow] {
	ops := 1200
	if o.Quick {
		ops = 300
	}
	var pts []Point[AblationRow]
	for _, fence := range []bool{false, true} {
		fence := fence
		label := "explicit fence (PLUS)"
		if fence {
			label = "fence at every sync (DASH)"
		}
		name := "ablation fence " + label
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"config": label},
			Run: func() (AblationRow, error) {
				res, err := synth.Run(synth.Config{
					MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: ops,
					WriteFrac: 60, RMWFrac: 20, LocalFrac: 10, ThinkTime: 5,
					Seed: 17, FenceOnSync: fence,
					Timing: o.Observe.MachineFor(name, 4, 2),
				})
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label: label, Elapsed: res.Elapsed, Messages: res.Messages,
					Extra: fmt.Sprintf("fence stall %d", res.Totals.FenceStall),
				}, nil
			},
		})
	}
	return pts
}

// AblationFence runs the fence-discipline comparison.
func AblationFence(o Options) ([]AblationRow, error) {
	return RunPoints(fencePoints(o), o.Workers)
}

// invalidatePoints compares PLUS's write-update protocol against a
// word-granular write-invalidate alternative (§2.2) on a
// producer/reader pattern: every processor writes its own pages, which
// are replicated on every other processor and read remotely-owned
// most of the time — under invalidation each such read of a freshly
// written word misses and refetches from the master.
func invalidatePoints(o Options) []Point[AblationRow] {
	ops := 1000
	if o.Quick {
		ops = 300
	}
	var pts []Point[AblationRow]
	for _, inval := range []bool{false, true} {
		inval := inval
		label := "write-update (PLUS)"
		if inval {
			label = "write-invalidate"
		}
		name := "ablation invalidate " + label
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"config": label},
			Run: func() (AblationRow, error) {
				res, err := synth.Run(synth.Config{
					MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: ops,
					WriteFrac: 30, RMWFrac: 2, LocalFrac: 10, Copies: 8,
					PagesPerProc: 1, ThinkTime: 10,
					Seed: 37, InvalidateMode: inval,
					Timing: o.Observe.MachineFor(name, 4, 2),
				})
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label: label, Elapsed: res.Elapsed, Messages: res.Messages,
					Extra: fmt.Sprintf("remote reads %d, invalidations %d",
						res.Totals.RemoteReads, res.Totals.Invalidations),
				}, nil
			},
		})
	}
	return pts
}

// AblationInvalidate runs the write-update vs write-invalidate
// comparison.
func AblationInvalidate(o Options) ([]AblationRow, error) {
	return RunPoints(invalidatePoints(o), o.Workers)
}

// burstMachine builds a 2-node machine with a timing override hook.
func burstMachine(mod func(*core.Config)) (*core.Machine, memory.VAddr, error) {
	cfg := core.DefaultConfig(2, 1)
	if mod != nil {
		mod(&cfg)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, 0, err
	}
	data := m.Alloc(1, 1) // everything remote from node 0
	return m, data, nil
}

// pendingWritesPoints sweeps the pending-writes cache depth (the
// hardware chose 8) against bursts of remote writes: with depth d, a
// burst of 16 writes stalls the processor 16-d times per burst.
func pendingWritesPoints(o Options) []Point[AblationRow] {
	bursts := 200
	if o.Quick {
		bursts = 50
	}
	var pts []Point[AblationRow]
	for _, depth := range []int{1, 2, 4, 8, 16} {
		depth := depth
		name := fmt.Sprintf("ablation pending-writes depth=%d", depth)
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"depth": fmt.Sprint(depth)},
			Run: func() (AblationRow, error) {
				m, data, err := burstMachine(func(c *core.Config) {
					c.Timing.MaxPendingWrites = depth
					o.Observe.Attach(c, name)
				})
				if err != nil {
					return AblationRow{}, err
				}
				m.Spawn(0, func(t *proc.Thread) {
					for b := 0; b < bursts; b++ {
						for i := 0; i < 16; i++ {
							t.Write(data+memory.VAddr(i), memory.Word(uint32(b)))
						}
						t.Fence()
						t.Compute(100)
					}
				})
				elapsed, err := m.Run()
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label:   fmt.Sprintf("pending-writes depth %d", depth),
					Elapsed: elapsed, Messages: m.Stats().Messages(),
					Extra: fmt.Sprintf("write stall %d", m.Stats().Totals().WriteStall),
				}, nil
			},
		})
	}
	return pts
}

// AblationPendingWrites runs the pending-writes depth sweep.
func AblationPendingWrites(o Options) ([]AblationRow, error) {
	return RunPoints(pendingWritesPoints(o), o.Workers)
}

// delayedSlotsPoints sweeps the delayed-operations cache depth (the
// hardware chose 8) against bursts of 8 split-transaction reads: with
// d slots, issue of the (d+1)th operation blocks until a result is
// consumed, serializing the burst into ceil(8/d) round trips.
func delayedSlotsPoints(o Options) []Point[AblationRow] {
	bursts := 200
	if o.Quick {
		bursts = 50
	}
	var pts []Point[AblationRow]
	for _, depth := range []int{1, 2, 4, 8, 16} {
		depth := depth
		name := fmt.Sprintf("ablation delayed-slots depth=%d", depth)
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"depth": fmt.Sprint(depth)},
			Run: func() (AblationRow, error) {
				m, data, err := burstMachine(func(c *core.Config) {
					c.Timing.MaxDelayedOps = depth
					o.Observe.Attach(c, name)
				})
				if err != nil {
					return AblationRow{}, err
				}
				// A correct program never exceeds the hardware depth (the 9th
				// issue would wait on its own unverified results forever), so
				// the burst pipelines through a window of min(depth, 8).
				win := depth
				if win > 8 {
					win = 8
				}
				m.Spawn(0, func(t *proc.Thread) {
					var q []proc.Handle
					for b := 0; b < bursts; b++ {
						for i := 0; i < 8; i++ {
							if len(q) == win {
								t.Verify(q[0])
								q = q[1:]
							}
							q = append(q, t.DelayedRead(data+memory.VAddr(i)))
						}
						for _, h := range q {
							t.Verify(h)
						}
						q = q[:0]
						t.Compute(100)
					}
				})
				elapsed, err := m.Run()
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label:   fmt.Sprintf("delayed-op slots %d", depth),
					Elapsed: elapsed, Messages: m.Stats().Messages(),
					Extra: fmt.Sprintf("write stall %d, verify stall %d",
						m.Stats().Totals().WriteStall, m.Stats().Totals().VerifyStall),
				}, nil
			},
		})
	}
	return pts
}

// AblationDelayedSlots runs the delayed-operation depth sweep.
func AblationDelayedSlots(o Options) ([]AblationRow, error) {
	return RunPoints(delayedSlotsPoints(o), o.Workers)
}

// contentionPoints compares the idealized (uncontended) network the
// paper measured on with the link-contention model, under a hotspot
// load that funnels most traffic into one node.
func contentionPoints(o Options) []Point[AblationRow] {
	ops := 1000
	if o.Quick {
		ops = 300
	}
	var pts []Point[AblationRow]
	for _, cont := range []bool{false, true} {
		cont := cont
		label := "ideal links"
		if cont {
			label = "contended links"
		}
		name := "ablation contention " + label
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"config": label},
			Run: func() (AblationRow, error) {
				res, err := synth.Run(synth.Config{
					MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: ops,
					LocalFrac: 1, HotspotFrac: 90, WriteFrac: 50, ThinkTime: 5,
					Seed: 29, Contention: cont,
					Timing: o.Observe.MachineFor(name, 4, 2),
				})
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label: label, Elapsed: res.Elapsed, Messages: res.Messages,
					Extra: fmt.Sprintf("queue wait %d", res.QueueWait),
				}, nil
			},
		})
	}
	return pts
}

// AblationContention runs the link-contention comparison.
func AblationContention(o Options) ([]AblationRow, error) {
	return RunPoints(contentionPoints(o), o.Workers)
}

// competitivePoints compares static placement against the competitive
// replication policy of §2.4 on a read-heavy load with poor initial
// placement. The high-threshold rows show the policy arriving too
// late to pay off.
func competitivePoints(o Options) []Point[AblationRow] {
	ops := 1200
	if o.Quick {
		ops = 400
	}
	var pts []Point[AblationRow]
	for _, thr := range []uint64{0, 16, 64, 256} {
		thr := thr
		label := "static placement"
		if thr > 0 {
			label = fmt.Sprintf("competitive thr=%d", thr)
		}
		name := "ablation competitive " + label
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"config": label},
			Run: func() (AblationRow, error) {
				res, err := synth.Run(synth.Config{
					MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: ops,
					WriteFrac: 5, RMWFrac: 1, LocalFrac: 10, Seed: 31,
					CompetitiveThreshold: thr,
					Timing:               o.Observe.MachineFor(name, 4, 2),
				})
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label: label, Elapsed: res.Elapsed, Messages: res.Messages,
					Extra: fmt.Sprintf("remote reads %d", res.Totals.RemoteReads),
				}, nil
			},
		})
	}
	return pts
}

// AblationCompetitive runs the competitive-replication threshold
// sweep.
func AblationCompetitive(o Options) ([]AblationRow, error) {
	return RunPoints(competitivePoints(o), o.Workers)
}
