package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"plus/internal/stats"
)

// TestObservationSerialParallelIdentical pins the exporter's
// determinism contract: the same sweep instrumented at -parallel 1 and
// -parallel 4 produces byte-identical event streams, because every
// point owns a private observer and exports are ordered by point name,
// not completion order.
func TestObservationSerialParallelIdentical(t *testing.T) {
	dump := func(workers int) string {
		ob := NewObservation(stats.ObserveConfig{})
		_, err := Figure21(Options{Quick: true, MaxProcs: 2, Workers: workers, Observe: ob})
		if err != nil {
			t.Fatal(err)
		}
		return ob.EventDump()
	}
	serial := dump(1)
	parallel := dump(4)
	if serial != parallel {
		t.Fatalf("serial and parallel event dumps differ (%d vs %d bytes)",
			len(serial), len(parallel))
	}
	if !strings.Contains(serial, "== figure 2-1 p=1 copies=1 contention=false") {
		t.Fatalf("event dump missing the p=1 run header:\n%.300s", serial)
	}
	if !strings.Contains(serial, "read") {
		t.Fatal("event dump recorded no read events")
	}
}

// TestObservationChromeTraceValidates runs the instrumented quick
// Figure 2-1 sweep end to end and checks the Chrome trace export
// round-trips through encoding/json with every run represented.
func TestObservationChromeTraceValidates(t *testing.T) {
	ob := NewObservation(stats.ObserveConfig{SampleEvery: 2000})
	if _, err := Figure21(Options{Quick: true, MaxProcs: 2, Workers: 2, Observe: ob}); err != nil {
		t.Fatal(err)
	}
	runs := ob.Runs()
	if len(runs) != 3 { // p=1, p=2 unreplicated, p=2 replicated
		t.Fatalf("got %d observed runs, want 3", len(runs))
	}
	data, err := stats.ChromeTrace(runs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := stats.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	for _, run := range runs {
		if !strings.Contains(string(data), run.Name+" node 0") {
			t.Errorf("trace missing node track for %q", run.Name)
		}
	}
	m := ob.Metrics()
	if m.RemoteRead.Count == 0 {
		t.Error("merged metrics recorded no remote reads")
	}
	if !strings.Contains(m.Render(), "remote-read") {
		t.Error("metrics render missing remote-read row")
	}
}

// TestCompareReports exercises the -compare path: a clean diff, a
// flagged regression, and malformed input.
func TestCompareReports(t *testing.T) {
	rep := func(wall map[string]float64) []byte {
		var r Report
		for name, ms := range wall {
			r.Experiments = append(r.Experiments, Timing{Experiment: name, WallMS: ms})
			r.TotalWallMS += ms
		}
		b, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	oldRep := rep(map[string]float64{"figure2-1": 100})
	if _, regressed, err := CompareReports(oldRep, rep(map[string]float64{"figure2-1": 105}), 0.10); err != nil || regressed {
		t.Fatalf("5%% slower flagged as regression (err %v)", err)
	}
	diff, regressed, err := CompareReports(oldRep, rep(map[string]float64{"figure2-1": 125}), 0.10)
	if err != nil || !regressed {
		t.Fatalf("25%% slower not flagged (err %v):\n%s", err, diff)
	}
	if !strings.Contains(diff, "REGRESSION") {
		t.Fatalf("diff missing REGRESSION marker:\n%s", diff)
	}
	if _, _, err := CompareReports([]byte("not json"), oldRep, 0.10); err == nil {
		t.Fatal("malformed old report not rejected")
	}
}

// TestFaultRowsCarryReliability checks the reliability-sublayer
// counters ride along in the fault sweep's JSON rows (satellite of the
// observability PR: plusbench -json exposes the full counter block).
func TestFaultRowsCarryReliability(t *testing.T) {
	rows, err := FaultSweep(Options{Quick: true, DropRates: []float64{0, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trans_dups", "trans_gaps", "trans_stalls", "retransmits", "transport_acks"} {
		if !strings.Contains(string(b), key) {
			t.Errorf("fault rows missing %q in JSON", key)
		}
	}
	if rows[1].Retransmits == 0 {
		t.Error("1% drop run recorded no retransmits")
	}
}
