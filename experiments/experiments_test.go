package experiments

import (
	"strings"
	"testing"
)

func TestTable21Shape(t *testing.T) {
	rows, err := Table21(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper trends: reads local/remote rises with copies; writes
	// local/remote falls; total/update falls; update count rises.
	if rows[4].ReadRatio <= rows[0].ReadRatio {
		t.Errorf("read ratio: %.2f (1 copy) -> %.2f (5 copies), want rising",
			rows[0].ReadRatio, rows[4].ReadRatio)
	}
	if rows[4].WriteRatio >= rows[0].WriteRatio {
		t.Errorf("write ratio: %.2f -> %.2f, want falling",
			rows[0].WriteRatio, rows[4].WriteRatio)
	}
	if rows[1].Updates == 0 || rows[4].Updates <= rows[1].Updates {
		t.Errorf("updates: %d (2 copies) -> %d (5 copies), want rising",
			rows[1].Updates, rows[4].Updates)
	}
	if rows[4].UpdateRatio >= rows[1].UpdateRatio {
		t.Errorf("total/update ratio: %.2f -> %.2f, want falling",
			rows[1].UpdateRatio, rows[4].UpdateRatio)
	}
	out := FormatTable21(rows)
	if !strings.Contains(out, "Table 2-1") {
		t.Error("format missing title")
	}
}

func TestFigure21Shape(t *testing.T) {
	pts, err := Figure21(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	find := func(p int, repl bool) Fig21Point {
		for _, pt := range pts {
			if pt.Procs == p && pt.Replicated == repl {
				return pt
			}
		}
		t.Fatalf("missing point p=%d repl=%v", p, repl)
		return Fig21Point{}
	}
	// Replication beats no replication at 8 and 16 processors.
	for _, p := range []int{8, 16} {
		none, repl := find(p, false), find(p, true)
		if repl.Efficiency <= none.Efficiency {
			t.Errorf("p=%d: replicated efficiency %.3f <= unreplicated %.3f",
				p, repl.Efficiency, none.Efficiency)
		}
	}
	// Single-processor efficiency is 1 by construction.
	if e := find(1, false).Efficiency; e < 0.999 || e > 1.001 {
		t.Errorf("p=1 efficiency = %.3f", e)
	}
	if !strings.Contains(FormatFigure21(pts), "Figure 2-1") {
		t.Error("format missing title")
	}
}

func TestFigure31Shape(t *testing.T) {
	pts, err := Figure31(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	at := func(p int, label string) Fig31Point {
		for _, pt := range pts {
			if pt.Procs == p && pt.Label == label {
				return pt
			}
		}
		t.Fatalf("missing %s @ %d", label, p)
		return Fig31Point{}
	}
	// Paper orderings at 8 processors: delayed beats blocking; cs-16
	// beats cs-40 beats cs-140; cs-140 is the worst of everything.
	p := 8
	if at(p, "delayed").Efficiency <= at(p, "blocking").Efficiency {
		t.Errorf("delayed (%.3f) not better than blocking (%.3f)",
			at(p, "delayed").Efficiency, at(p, "blocking").Efficiency)
	}
	if !(at(p, "cs-16").Efficiency > at(p, "cs-40").Efficiency &&
		at(p, "cs-40").Efficiency > at(p, "cs-140").Efficiency) {
		t.Errorf("context-switch cost ordering violated: 16=%.3f 40=%.3f 140=%.3f",
			at(p, "cs-16").Efficiency, at(p, "cs-40").Efficiency, at(p, "cs-140").Efficiency)
	}
	if at(p, "delayed").Efficiency <= at(p, "cs-140").Efficiency {
		t.Error("delayed ops lost to 140-cycle context switching")
	}
	if !strings.Contains(FormatFigure31(pts), "Figure 3-1") {
		t.Error("format missing title")
	}
}

func TestTable31MatchesPaper(t *testing.T) {
	rows, err := Table31(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d ops", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredExec != r.PaperCycles {
			t.Errorf("%v: measured %d cycles, paper says %d", r.Op, r.MeasuredExec, r.PaperCycles)
		}
	}
	if !strings.Contains(FormatTable31(rows), "Table 3-1") {
		t.Error("format missing title")
	}
}

func TestSection31Costs(t *testing.T) {
	rows, err := Section31Costs(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: adjacent round trip 24, +4 per extra hop; remote read =
	// 32 + round trip (+ our documented CM service time).
	if rows[0].RoundTrip != 24 {
		t.Errorf("adjacent round trip = %d", rows[0].RoundTrip)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RoundTrip-rows[i-1].RoundTrip != 4 {
			t.Errorf("hop %d round trip delta = %d, want 4", i+1, rows[i].RoundTrip-rows[i-1].RoundTrip)
		}
		if rows[i].RemoteRead <= rows[i-1].RemoteRead {
			t.Error("remote read latency not increasing with distance")
		}
	}
	// Remote read = 32 + RT + CMProcess(8).
	if rows[0].RemoteRead != 32+24+8 {
		t.Errorf("adjacent remote read = %d, want 64", rows[0].RemoteRead)
	}
	if !strings.Contains(FormatCosts(rows), "cost anatomy") {
		t.Error("format missing title")
	}
}

func TestAblations(t *testing.T) {
	fence, err := AblationFence(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if fence[1].Elapsed <= fence[0].Elapsed {
		t.Errorf("fence-at-every-sync (%d) not slower than explicit fences (%d)",
			fence[1].Elapsed, fence[0].Elapsed)
	}

	pw, err := AblationPendingWrites(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if pw[0].Elapsed <= pw[3].Elapsed {
		t.Errorf("depth-1 pending writes (%d) not slower than depth-8 (%d)",
			pw[0].Elapsed, pw[3].Elapsed)
	}

	slots, err := AblationDelayedSlots(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 5 {
		t.Fatalf("slot sweep rows = %d", len(slots))
	}
	// One slot serializes every round trip; 8 slots (the hardware's
	// choice) pipeline the whole burst; 16 adds nothing.
	if !(slots[0].Elapsed > slots[3].Elapsed && slots[3].Elapsed == slots[4].Elapsed) {
		t.Errorf("slot depth curve wrong: %d ... %d, %d",
			slots[0].Elapsed, slots[3].Elapsed, slots[4].Elapsed)
	}

	inval, err := AblationInvalidate(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if inval[1].Elapsed <= inval[0].Elapsed {
		t.Errorf("write-invalidate (%d) not slower than write-update (%d) on the read-mostly load",
			inval[1].Elapsed, inval[0].Elapsed)
	}
	if inval[0].Extra == inval[1].Extra {
		t.Error("invalidate run recorded no invalidations")
	}

	cont, err := AblationContention(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if cont[1].Elapsed < cont[0].Elapsed {
		t.Error("contended network faster than ideal")
	}

	comp, err := AblationCompetitive(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Competitive replication at a sane threshold beats static
	// placement on this read-heavy, badly placed load.
	if comp[1].Elapsed >= comp[0].Elapsed {
		t.Errorf("competitive thr=16 (%d) not faster than static (%d)",
			comp[1].Elapsed, comp[0].Elapsed)
	}
	out := FormatAblation("x", comp)
	if !strings.Contains(out, "static placement") {
		t.Error("format missing rows")
	}

	svm, err := ExtensionSoftwareDSM(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The §4 claim: page-grain software DSM pays orders of magnitude
	// for fine-grain sharing that PLUS handles in hardware.
	if svm[1].Elapsed < 20*svm[0].Elapsed {
		t.Errorf("software SVM (%d) not dramatically slower than PLUS (%d)",
			svm[1].Elapsed, svm[0].Elapsed)
	}

	prof, err := ExtensionProfilePlacement(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// §2.4's measured-then-reallocated mode: the second run must win.
	if prof[1].Elapsed >= prof[0].Elapsed {
		t.Errorf("profile-guided run (%d) not faster than naive (%d)",
			prof[1].Elapsed, prof[0].Elapsed)
	}
}

func TestAblationBatching(t *testing.T) {
	rows, err := AblationBatching(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("batching sweep rows = %d, want 5", len(rows))
	}
	// The acceptance criterion: coalescing cuts the message count on the
	// write-heavy load, monotonically from off to the deepest buffer.
	if rows[4].Messages >= rows[0].Messages {
		t.Errorf("depth-16 messages (%d) not below combining-off (%d)",
			rows[4].Messages, rows[0].Messages)
	}
	if rows[0].Extra == rows[4].Extra {
		t.Error("deep-combining run coalesced nothing")
	}
	if !strings.Contains(rows[0].Extra, "coalesced 0") {
		t.Errorf("combining-off row coalesced writes: %s", rows[0].Extra)
	}
}
