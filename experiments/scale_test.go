package experiments

import (
	"reflect"
	"testing"

	"plus/apps/sssp"
	"plus/internal/core"
)

// TestScaleQuickEquivalence runs the scale experiment's quick leg end
// to end: the 8x8 sweep over shard counts 1, 2, 4, 8 and 16, with
// checkScaleEquivalence rejecting any divergence from the serial row.
func TestScaleQuickEquivalence(t *testing.T) {
	e, ok := Lookup("figure2-1-scale")
	if !ok {
		t.Fatal("figure2-1-scale not registered")
	}
	res, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]ScaleRow)
	if !ok || len(rows) != 5 {
		t.Fatalf("quick leg: got %d rows, want 5 (shards 1,2,4,8,16)", len(rows))
	}
}

// TestScale32x32Equivalence is the acceptance check at full scale: the
// 32x32 (1024-processor) SSSP run on 8 shards must be byte-identical
// to the serial run — same elapsed cycles, same message counts, same
// shortest-path distances, same counter block.
func TestScale32x32Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("32x32 runs take seconds each; run without -short")
	}
	run := func(shards int) sssp.Result {
		mc := core.DefaultConfig(32, 32)
		mc.Shards = shards
		res, err := sssp.Run(sssp.Config{
			MeshW: 32, MeshH: 32, Procs: 1024,
			Vertices: 2048, Degree: 4, Seed: 42,
			Copies: 4, Validate: true,
			Machine: &mc,
		})
		if err != nil {
			t.Fatalf("sssp.Run(shards=%d): %v", shards, err)
		}
		res.Report = "" // rendered text, compared via the counters it prints
		return res
	}
	serial := run(1)
	sharded := run(8)
	if serial.Elapsed != sharded.Elapsed {
		t.Errorf("elapsed: shards=8 %d != serial %d", sharded.Elapsed, serial.Elapsed)
	}
	if !reflect.DeepEqual(serial.Dist, sharded.Dist) {
		t.Error("shortest-path distances diverged between serial and 8 shards")
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("results diverged: serial %+v != shards=8 %+v", serial.Totals, sharded.Totals)
	}
}
