package experiments

import (
	"encoding/json"
	"testing"
)

// TestFaultSweepQuick runs the unreliable-network sweep at a reduced
// problem size and checks its structural claims: the fault-free row is
// the 1.0 baseline, lossy rows actually lost and repaired messages, and
// every row's SSSP distances validated against Dijkstra inside
// FaultSweep itself.
func TestFaultSweepQuick(t *testing.T) {
	rows, err := FaultSweep(Options{Quick: true, DropRates: []float64{0, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Slowdown != 1 || rows[0].Dropped != 0 || rows[0].Retransmits != 0 {
		t.Fatalf("fault-free baseline row polluted: %+v", rows[0])
	}
	r := rows[1]
	if r.Dropped == 0 {
		t.Fatalf("1%% drop rate lost no messages: %+v", r)
	}
	if r.Retransmits == 0 || r.TransportAcks == 0 {
		t.Fatalf("losses never repaired: %+v", r)
	}
	if r.Slowdown < 1 {
		t.Fatalf("lossy run faster than baseline: %+v", r)
	}
	if _, err := json.Marshal(rows); err != nil {
		t.Fatalf("rows do not marshal: %v", err)
	}
	if out := FormatFaultSweep(rows); out == "" {
		t.Fatal("empty table")
	}
}

// TestFaultSweepDeterminism pins that the sweep — graph seed, fault
// seed, retransmit schedule and all — reproduces byte-identical output
// across runs in one process.
func TestFaultSweepDeterminism(t *testing.T) {
	run := func() string {
		rows, err := FaultSweep(Options{Quick: true, DropRates: []float64{0, 0.01}})
		if err != nil {
			t.Fatal(err)
		}
		return FormatFaultSweep(rows)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("fault sweep diverged between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
