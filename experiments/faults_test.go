package experiments

import (
	"encoding/json"
	"testing"
)

// TestFaultSweepQuick runs the unreliable-network sweep at a reduced
// problem size and checks its structural claims: each mesh's fault-free
// row is that mesh's 1.0 baseline, lossy rows actually lost and
// repaired messages, the 8x8 dup/delay mixes exercised duplication, and
// every row's SSSP distances validated against Dijkstra inside
// FaultSweep itself.
func TestFaultSweepQuick(t *testing.T) {
	rows, err := FaultSweep(Options{Quick: true, DropRates: []float64{0, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	// The requested 4x4 drop rates plus the four fixed 8x8 mix rows.
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, i := range []int{0, 2} {
		if rows[i].Slowdown != 1 || rows[i].Dropped != 0 || rows[i].Retransmits != 0 {
			t.Fatalf("fault-free baseline row %d polluted: %+v", i, rows[i])
		}
	}
	if rows[0].Mesh != "4x4" || rows[2].Mesh != "8x8" {
		t.Fatalf("mesh labels wrong: %q %q", rows[0].Mesh, rows[2].Mesh)
	}
	for _, i := range []int{1, 3, 5} {
		r := rows[i]
		if r.Dropped == 0 {
			t.Fatalf("row %d: drop rate lost no messages: %+v", i, r)
		}
		if r.Retransmits == 0 || r.TransportAcks == 0 {
			t.Fatalf("row %d: losses never repaired: %+v", i, r)
		}
		if r.Slowdown < 1 {
			t.Fatalf("row %d: lossy run faster than its baseline: %+v", i, r)
		}
	}
	// The dup/delay-only mix duplicated messages and the receiver
	// discarded the surplus copies.
	if dup := rows[4]; dup.Dropped != 0 || dup.TransDups == 0 {
		t.Fatalf("dup/delay mix row unexpected: %+v", dup)
	}
	if _, err := json.Marshal(rows); err != nil {
		t.Fatalf("rows do not marshal: %v", err)
	}
	if out := FormatFaultSweep(rows); out == "" {
		t.Fatal("empty table")
	}
}

// TestFaultSweepDeterminism pins that the sweep — graph seed, fault
// seed, retransmit schedule and all — reproduces byte-identical output
// across runs in one process.
func TestFaultSweepDeterminism(t *testing.T) {
	run := func() string {
		rows, err := FaultSweep(Options{Quick: true, DropRates: []float64{0, 0.01}})
		if err != nil {
			t.Fatal(err)
		}
		return FormatFaultSweep(rows)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("fault sweep diverged between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
