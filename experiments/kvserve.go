package experiments

import (
	"fmt"

	"plus/apps/kvserve"
	"plus/internal/core"
	"plus/internal/sim"
)

// --- kvserve sweep: skew x mesh x placement tail latency ----------------

// KvRow is one point of the serving-workload sweep: the multi-tenant
// record store under open-loop Zipfian traffic, reporting tail latency
// for reads and writes separately. The axes are key skew (s = 0
// uniform → 1.2 heavily hot-keyed), mesh size, and static placement
// policy; the contention model is on, so hot-key convergence shows up
// as queueing at the hot master and the replicated-hot rows measure
// how much of the write tail the read-spreading buys back.
type KvRow struct {
	Mesh      string  `json:"mesh"`
	Skew      float64 `json:"skew"`
	Placement string  `json:"placement"`

	Elapsed sim.Cycles `json:"elapsed_cycles"`
	Ops     uint64     `json:"ops"`
	// Late counts ops whose frontend was behind its arrival schedule —
	// the open-loop backlog signal.
	Late uint64 `json:"late"`

	ReadP50   uint64  `json:"read_p50"`
	ReadP95   uint64  `json:"read_p95"`
	ReadP99   uint64  `json:"read_p99"`
	ReadMean  float64 `json:"read_mean"`
	WriteP50  uint64  `json:"write_p50"`
	WriteP95  uint64  `json:"write_p95"`
	WriteP99  uint64  `json:"write_p99"`
	WriteMean float64 `json:"write_mean"`

	Messages uint64 `json:"messages"`
	Updates  uint64 `json:"updates"`
	// Checksum digests the final record + counter image; the shard
	// equivalence tests pin it byte-identical across engine counts.
	Checksum uint64 `json:"checksum"`
}

// kvMesh is one machine size of the sweep.
type kvMesh struct{ w, h int }

// kvserveConfig builds the workload configuration for one sweep point.
// Sizes are fixed across skews and placements on a given mesh so rows
// differ only by the axis under study.
func kvserveConfig(m kvMesh, skew float64, placement string, quick bool) kvserve.Config {
	ops := 256
	if quick {
		ops = 96
	}
	return kvserve.Config{
		MeshW: m.w, MeshH: m.h,
		OpsPerNode: ops,
		Skew:       skew,
		Placement:  placement,
		// Replicated-hot: the Zipf-hottest pages are the first pages of
		// the record block; 4 pages x 4 spread copies covers the head
		// of the distribution without flooding updates (§2.5).
		HotPages:  4,
		HotCopies: 4,
		Validate:  true,
	}
}

// kvservePoints builds the sweep: skew {0, 0.9, 1.2} x mesh {4x4, 8x8,
// 16x16} x placement {master-local, striped, replicated-hot}; quick
// keeps the 4x4 mesh and the two extreme skews (18 rows full, 6 quick).
func kvservePoints(o Options) []Point[KvRow] {
	meshes := []kvMesh{{4, 4}, {8, 8}, {16, 16}}
	skews := []float64{0, 0.9, 1.2}
	if o.Quick {
		meshes = meshes[:1]
		skews = []float64{0, 1.2}
	}
	var pts []Point[KvRow]
	for _, mm := range meshes {
		for _, skew := range skews {
			for _, placement := range []string{kvserve.MasterLocal, kvserve.Striped, kvserve.ReplicatedHot} {
				mm, skew, placement := mm, skew, placement
				meshLabel := fmt.Sprintf("%dx%d", mm.w, mm.h)
				name := fmt.Sprintf("kvserve %s s=%g %s", meshLabel, skew, placement)
				pts = append(pts, Point[KvRow]{
					Name: name,
					Tags: map[string]string{
						"mesh": meshLabel, "skew": fmt.Sprint(skew), "placement": placement,
					},
					Run: func() (KvRow, error) {
						mc := shardedMachine(o, name, mm.w, mm.h)
						if mc == nil {
							c := core.DefaultConfig(mm.w, mm.h)
							mc = &c
						}
						// Queueing at the hot master IS the measurement;
						// without the contention model the tail barely moves.
						mc.NetContention = true
						cfg := kvserveConfig(mm, skew, placement, o.Quick)
						cfg.Machine = mc
						res, err := kvserve.Run(cfg)
						if err != nil {
							return KvRow{}, err
						}
						return KvRow{
							Mesh: meshLabel, Skew: skew, Placement: placement,
							Elapsed: res.Elapsed, Ops: res.Ops, Late: res.Late,
							ReadP50: res.ReadLat.Quantile(0.50), ReadP95: res.ReadLat.Quantile(0.95),
							ReadP99: res.ReadLat.Quantile(0.99), ReadMean: res.ReadLat.Mean(),
							WriteP50: res.WriteLat.Quantile(0.50), WriteP95: res.WriteLat.Quantile(0.95),
							WriteP99: res.WriteLat.Quantile(0.99), WriteMean: res.WriteLat.Mean(),
							Messages: res.Messages, Updates: res.Updates, Checksum: res.Checksum,
						}, nil
					},
				})
			}
		}
	}
	return pts
}

// KvserveSweep runs the serving-workload sweep.
func KvserveSweep(o Options) ([]KvRow, error) {
	return RunPoints(kvservePoints(o), o.Workers)
}

// FormatKvserve renders the sweep as a table.
func FormatKvserve(rows []KvRow) string {
	return renderTable("Serving workload: open-loop Zipfian record store, tail latency by skew x placement",
		[]col{{"Mesh", -6}, {"Skew", 5}, {"Placement", -15}, {"Elapsed", 9}, {"Ops", 7}, {"Late", 6},
			{"Rp50", 6}, {"Rp95", 6}, {"Rp99", 6}, {"Wp50", 6}, {"Wp95", 7}, {"Wp99", 7}, {"Msgs", 8}},
		cells(rows, func(r KvRow) []string {
			return []string{
				r.Mesh,
				fmt.Sprintf("%.1f", r.Skew),
				r.Placement,
				fmt.Sprint(r.Elapsed),
				fmt.Sprint(r.Ops),
				fmt.Sprint(r.Late),
				fmt.Sprint(r.ReadP50),
				fmt.Sprint(r.ReadP95),
				fmt.Sprint(r.ReadP99),
				fmt.Sprint(r.WriteP50),
				fmt.Sprint(r.WriteP95),
				fmt.Sprint(r.WriteP99),
				fmt.Sprint(r.Messages),
			}
		}))
}
