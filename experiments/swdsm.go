package experiments

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/swdsm"
)

// The §4 extension measures the paper's Related Work claim: software
// shared-virtual-memory systems pay millisecond-scale kernel overhead
// per coherence action because "the basic mechanism is paging", while
// PLUS handles the same sharing in hardware at word grain. The same
// deterministic fine-grain-sharing trace runs on both systems: every
// node repeatedly writes its own word of one shared page and reads a
// neighbour's word.
//
// On PLUS the page is replicated everywhere: reads are local, writes
// propagate in the background. On the page-DSM every write faults,
// invalidates all readers and ships 4 KB — the false-sharing ping-pong
// that motivated hardware DSM designs.

const swdsmProcs = 8

// swdsmPlusRow runs the trace on the PLUS hardware simulator.
func swdsmPlusRow(iters int, ob *Observation, name string) (AblationRow, error) {
	mcfg := core.DefaultConfig(4, 2)
	ob.Attach(&mcfg, name)
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return AblationRow{}, err
	}
	shared := m.Alloc(0, 1)
	for p := 1; p < swdsmProcs; p++ {
		m.Replicate(shared, mesh.NodeID(p))
	}
	// Node 0 is a pure reader (a monitor thread), so the page-DSM run
	// also exhibits read-copy invalidations, not just owner ping-pong.
	for p := 0; p < swdsmProcs; p++ {
		p := p
		m.Spawn(mesh.NodeID(p), func(t *proc.Thread) {
			mine := shared + memory.VAddr(p)
			theirs := shared + memory.VAddr((p+1)%swdsmProcs)
			for i := 0; i < iters; i++ {
				if p != 0 {
					t.Write(mine, memory.Word(uint32(i)))
				}
				t.Read(theirs)
				t.Compute(200)
			}
			t.Fence()
		})
	}
	elapsed, err := m.Run()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Label:    "PLUS (hardware, word grain)",
		Elapsed:  elapsed,
		Messages: m.Stats().Messages(),
		Extra:    fmt.Sprintf("updates %d", m.Stats().MsgUpdate),
	}, nil
}

// swdsmSVMRow runs the identical trace on the page-grain software
// shared-virtual-memory comparator.
func swdsmSVMRow(iters int) (AblationRow, error) {
	sw := swdsm.New(swdsm.DefaultConfig(4, 2))
	sw.Alloc(0, 0)
	base := memory.VPage(0).Base()
	// Round-robin the same per-node iterations: the interleaving
	// approximates concurrent execution; each node's clock accumulates
	// its own costs and the makespan is the slowest node.
	for i := 0; i < iters; i++ {
		for p := 0; p < swdsmProcs; p++ {
			node := mesh.NodeID(p)
			if p != 0 {
				sw.Write(node, base+memory.VAddr(p), memory.Word(uint32(i)))
			}
			sw.Read(node, base+memory.VAddr((p+1)%swdsmProcs))
			sw.Compute(node, 200)
		}
	}
	return AblationRow{
		Label:    "software SVM (page grain)",
		Elapsed:  sw.Elapsed(),
		Messages: sw.ReadFaults + sw.WriteFaults,
		Extra: fmt.Sprintf("%d faults, %d page transfers, %d invalidations (messages column = faults)",
			sw.ReadFaults+sw.WriteFaults, sw.PageTransfers, sw.Invalidations),
	}, nil
}

// swdsmPoints runs the two systems as two independent sweep points.
func swdsmPoints(o Options) []Point[AblationRow] {
	iters := 60
	if o.Quick {
		iters = 20
	}
	return []Point[AblationRow]{
		{
			Name: "ext swdsm PLUS",
			Tags: map[string]string{"system": "plus"},
			Run:  func() (AblationRow, error) { return swdsmPlusRow(iters, o.Observe, "ext swdsm PLUS") },
		},
		{
			Name: "ext swdsm software SVM",
			Tags: map[string]string{"system": "svm"},
			Run:  func() (AblationRow, error) { return swdsmSVMRow(iters) },
		},
	}
}

// ExtensionSoftwareDSM runs the PLUS vs software-SVM comparison.
func ExtensionSoftwareDSM(o Options) ([]AblationRow, error) {
	return RunPoints(swdsmPoints(o), o.Workers)
}
