package experiments

import (
	"fmt"

	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// LinkbufRow is one router-buffer depth of the backpressure sweep:
// SSSP on the full 8x8 mesh with link contention on, bounded per-link
// buffers bouncing overflow back to senders as NACKs, and the
// reliability sublayer absorbing the stalls. Sweeping the depth down
// from unlimited locates the knee where bounded buffering starts to
// cost real time.
type LinkbufRow struct {
	BufFlits    int        `json:"buf_flits"` // 0 = unlimited buffering
	Elapsed     sim.Cycles `json:"elapsed_cycles"`
	Messages    uint64     `json:"messages"`
	Nacked      uint64     `json:"nacked"`
	TransStalls uint64     `json:"trans_stalls"`
	QueueWait   sim.Cycles `json:"queue_wait"`
	// Slowdown is Elapsed / Elapsed(unlimited).
	Slowdown float64 `json:"slowdown"`
}

// linkbufPoints sweeps the per-link buffer bound under contention.
func linkbufPoints(o Options) []Point[LinkbufRow] {
	vertices := 2048
	depths := []int{0, 64, 32, 16, 8, 4, 2}
	if o.Quick {
		vertices = 256
		depths = []int{0, 16, 4}
	}
	var pts []Point[LinkbufRow]
	for _, d := range depths {
		d := d
		pts = append(pts, Point[LinkbufRow]{
			Name: fmt.Sprintf("linkbuf flits=%d", d),
			Tags: map[string]string{"buf_flits": fmt.Sprint(d)},
			Run: func() (LinkbufRow, error) {
				mcfg := core.DefaultConfig(8, 8)
				mcfg.Faults = mesh.FaultConfig{LinkBufFlits: d}
				res, err := sssp.Run(sssp.Config{
					MeshW: 8, MeshH: 8, Procs: 64,
					Vertices: vertices, Degree: 4, Seed: 42,
					Copies: 4, Validate: true,
					Contention: true,
					Machine:    &mcfg,
				})
				if err != nil {
					return LinkbufRow{}, err
				}
				return LinkbufRow{
					BufFlits:    d,
					Elapsed:     res.Elapsed,
					Messages:    res.Messages,
					Nacked:      res.Net.Nacked,
					TransStalls: res.Reliability.TransStalls,
					QueueWait:   res.Net.QueueWait,
				}, nil
			},
		})
	}
	return pts
}

// fillLinkbufSlowdown normalizes elapsed time against the unlimited-
// buffer row of the same sweep.
func fillLinkbufSlowdown(rows []LinkbufRow) []LinkbufRow {
	var base sim.Cycles
	for _, r := range rows {
		if r.BufFlits == 0 {
			base = r.Elapsed
		}
	}
	if base == 0 {
		return rows
	}
	for i := range rows {
		rows[i].Slowdown = float64(rows[i].Elapsed) / float64(base)
	}
	return rows
}

// FormatLinkbuf renders the backpressure sweep.
func FormatLinkbuf(rows []LinkbufRow) string {
	return renderTable(
		"Link-buffer depth vs backpressure: SSSP, 8x8 mesh, contention on (0 = unlimited)",
		[]col{{"BufFlits", -9}, {"Elapsed", 12}, {"Messages", 10}, {"NACKs", 9},
			{"Stalls", 9}, {"QueueWait", 11}, {"Slowdown", 9}},
		cells(rows, func(r LinkbufRow) []string {
			return []string{
				fmt.Sprint(r.BufFlits),
				fmt.Sprint(r.Elapsed),
				fmt.Sprint(r.Messages),
				fmt.Sprint(r.Nacked),
				fmt.Sprint(r.TransStalls),
				fmt.Sprint(r.QueueWait),
				fmt.Sprintf("%.3f", r.Slowdown),
			}
		}))
}
