package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options are the uniform knobs every experiment understands. The zero
// value is a full-size serial-defaulted run.
type Options struct {
	// Quick shrinks problem sizes for fast test runs.
	Quick bool
	// MaxProcs caps processor sweeps (0 = experiment default).
	MaxProcs int
	// Workers bounds the sweep worker pool (<=0 = GOMAXPROCS). Results
	// are byte-identical for any value: every point is an independent
	// simulation and rows always come back in point order.
	Workers int
	// DropRates overrides the fault sweep's loss rates (fault sweep
	// only; nil = its default 0, 0.001, 0.01, 0.05).
	DropRates []float64
	// Shards runs each point's machine on that many shard engines where
	// the workload supports it: the SSSP sweeps — contention-on and
	// observed points included, both shard-aware since the serial-only
	// gates were lifted — and the scale experiment, which then sweeps
	// {1, Shards} instead of its default shard list. Results are
	// byte-identical to serial runs; the knob trades wall-clock time
	// inside one point, orthogonally to Workers, which runs independent
	// points concurrently. 0 or 1 = serial points; points whose mesh the
	// count does not tile fall back to serial individually.
	Shards int
	// Observe, when non-nil, instruments every sweep point with a
	// structured-event observer (one per point; see observe.go). Nil
	// keeps all simulation hot paths allocation-free.
	Observe *Observation
}

// WorkerCount resolves Workers to the pool size actually used.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveShards resolves Shards to the per-point engine count
// recorded in every Result (1 = serial).
func (o Options) EffectiveShards() int {
	if o.Shards > 1 {
		return o.Shards
	}
	return 1
}

// Point is one independent simulation of a sweep: a name for error
// reporting, optional tags describing the configuration, and a closure
// that builds a fresh machine (its own sim.Engine), runs it, and
// returns one result. Run must not share mutable state with any other
// point — RunPoints executes points concurrently.
type Point[T any] struct {
	Name string
	Tags map[string]string
	Run  func() (T, error)
}

// RunPoints executes the points on a bounded worker pool and returns
// their results in point order. Each worker goroutine pulls the next
// unclaimed point, so every point runs exactly once on exactly one
// goroutine; because points are independent single-threaded
// simulations, serial (workers=1) and parallel runs produce identical
// results. The first error in point order wins (also deterministic —
// every point runs to completion regardless of other points' errors).
func RunPoints[T any](pts []Point[T], workers int) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	results := make([]T, len(pts))
	errs := make([]error, len(pts))
	if workers <= 1 {
		for i := range pts {
			results[i], errs[i] = pts[i].Run()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pts) {
						return
					}
					results[i], errs[i] = pts[i].Run()
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pts[i].Name, err)
		}
	}
	return results, nil
}
