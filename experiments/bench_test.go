package experiments

import "testing"

// BenchmarkFigure21Quick times the Figure 2-1 quick regeneration — the
// end-to-end hot path of the whole simulator (engine, mesh, coherence,
// kernel, workload) — with allocation reporting. This is the benchmark
// the event/message-plumbing refactor is measured against.
func BenchmarkFigure21Quick(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Figure21(Options{Quick: true, MaxProcs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable21Quick times the Table 2-1 quick regeneration (the
// replication sweep used by the golden and determinism tests).
func BenchmarkTable21Quick(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Table21(Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}
