package experiments

import (
	"fmt"
	"strings"
)

// Result is the uniform outcome of one registered experiment: the
// typed rows (marshaled verbatim by `plusbench -json`), the rendered
// table, the optional ASCII chart, and the number of sweep points the
// runner executed. Everything in it is deterministic — wall-clock
// timing lives in the separate self-timing Report.
type Result struct {
	Name   string `json:"experiment"`
	Title  string `json:"title"`
	Points int    `json:"points"`
	// Shards is the effective shard count the sweep's points ran with
	// (1 = serial engines), so archived JSON rows record which engine
	// mode produced them. Points whose mesh the count does not tile
	// fall back to serial individually; the scale experiment sweeps
	// shard counts per-row (see ScaleRow.Shards).
	Shards int    `json:"shards"`
	Rows   any    `json:"rows"`
	Table  string `json:"-"`
	Chart  string `json:"-"`
}

// Experiment is one registered sweep: a stable name for -exp, a title
// for listings, and the uniform entry point every experiment shares.
type Experiment struct {
	Name  string
	Title string
	Run   func(Options) (*Result, error)
}

// newExperiment wires a typed point-sweep experiment into the uniform
// registry shape: build points, run them on the worker pool, post-
// process rows (nil post = identity), render through the shared
// renderer. This one constructor replaces the five bespoke
// loop/error-wrap/Format implementations the experiments used to carry.
func newExperiment[T any](name, title string,
	points func(Options) []Point[T],
	post func([]T) []T,
	format func([]T) string,
	chart func([]T) string) Experiment {
	return Experiment{
		Name:  name,
		Title: title,
		Run: func(o Options) (*Result, error) {
			pts := points(o)
			rows, err := RunPoints(pts, o.Workers)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			if post != nil {
				rows = post(rows)
			}
			res := &Result{Name: name, Title: title, Points: len(pts),
				Shards: o.EffectiveShards(), Rows: rows, Table: format(rows)}
			if chart != nil {
				res.Chart = chart(rows)
			}
			return res, nil
		},
	}
}

// registry lists every experiment in `-exp all` order. It is built
// once at init and never mutated, so concurrent Runs are safe.
var registry = []Experiment{
	newExperiment("table2-1", "Table 2-1: effect of replication on messages",
		table21Points, nil, FormatTable21, nil),
	newExperiment("figure2-1", "Figure 2-1: SSSP efficiency & utilization vs processors",
		func(o Options) []Point[Fig21Point] { return figure21Points(o, false) },
		fillFig21Efficiency, FormatFigure21, ChartFigure21),
	newExperiment("figure2-1-contention", "Figure 2-1 under link contention (8x8 mesh, 64 procs)",
		func(o Options) []Point[Fig21Point] { return figure21Points(o, true) },
		fillFig21Efficiency, FormatFigure21Contention, ChartFigure21),
	newExperiment("table3-1", "Table 3-1: delayed-operation execution cycles",
		table31Points, nil, FormatTable31, nil),
	newExperiment("figure3-1", "Figure 3-1: beam-search efficiency by synchronization style",
		figure31Points, fillFig31Efficiency, FormatFigure31, ChartFigure31),
	newExperiment("costs", "Section 3.1 cost anatomy vs hop distance",
		costsPoints, nil, FormatCosts, nil),
	ablationExperiment("ablation-fence", "Ablation: explicit fence vs fence-at-every-sync", fencePoints),
	ablationExperiment("ablation-invalidate", "Ablation: write-update vs write-invalidate", invalidatePoints),
	ablationExperiment("ablation-pending-writes", "Ablation: pending-writes cache depth", pendingWritesPoints),
	ablationExperiment("ablation-delayed-slots", "Ablation: delayed-operations cache depth", delayedSlotsPoints),
	ablationExperiment("ablation-contention", "Ablation: network contention model", contentionPoints),
	ablationExperiment("ablation-competitive", "Ablation: competitive replication threshold", competitivePoints),
	ablationExperiment("ablation-batching", "Ablation: write-combining depth (MaxBatchWrites)", batchingPoints),
	ablationExperiment("ext-swdsm", "Extension: PLUS vs software shared virtual memory (§4)", swdsmPoints),
	placementExperiment("ext-placement", "Extension: profile-guided placement (§2.4 second mode)"),
	newExperiment("faults", "Fault sweep: SSSP under message loss, duplication & delay",
		faultPoints, fillFaultSlowdown, FormatFaultSweep, nil),
	newExperiment("fault-crash", "Fault-crash sweep: node crashes with replicated-master failover",
		crashPoints, fillCrashSlowdown, FormatFaultCrash, nil),
	scaleExperiment(),
	newExperiment("ext-linkbuf", "Extension: link-buffer depth vs backpressure (8x8, contention)",
		linkbufPoints, fillLinkbufSlowdown, FormatLinkbuf, nil),
	newExperiment("kvserve-sweep", "Serving workload: Zipfian record store tail latency (skew x mesh x placement)",
		kvservePoints, nil, FormatKvserve, nil),
}

// ablationExperiment builds a registry entry for a sweep whose rows
// are AblationRows rendered under the experiment's title.
func ablationExperiment(name, title string, points func(Options) []Point[AblationRow]) Experiment {
	return newExperiment(name, title, points, nil,
		func(rows []AblationRow) string { return FormatAblation(title, rows) }, nil)
}

// placementExperiment wires the profile-guided placement pipeline in
// as a single sweep point: run 2 consumes run 1's reference counters,
// so its two rows cannot be independent points.
func placementExperiment(name, title string) Experiment {
	return Experiment{
		Name:  name,
		Title: title,
		Run: func(o Options) (*Result, error) {
			rows, err := ExtensionProfilePlacement(o)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			return &Result{Name: name, Title: title, Points: 1,
				Shards: o.EffectiveShards(), Rows: rows,
				Table: FormatAblation(title, rows)}, nil
		},
	}
}

// ablationGroup is the `-exp ablations` alias: the six design-decision
// sweeps plus the two extension experiments, as the old plusbench ran.
var ablationGroup = []string{
	"ablation-fence", "ablation-invalidate", "ablation-pending-writes",
	"ablation-delayed-slots", "ablation-contention", "ablation-competitive",
	"ablation-batching", "ext-swdsm", "ext-placement",
}

// Registered returns every experiment in `-exp all` order.
func Registered() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Select resolves a -exp spec — "all", the "ablations" group, a single
// name, or a comma-separated list — to experiments in registry order
// for "all"/"ablations" and spec order otherwise.
func Select(spec string) ([]Experiment, error) {
	var out []Experiment
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
			continue
		case "all":
			out = append(out, Registered()...)
		case "ablations":
			for _, n := range ablationGroup {
				e, _ := Lookup(n)
				out = append(out, e)
			}
		default:
			e, ok := Lookup(name)
			if !ok {
				return nil, fmt.Errorf("unknown experiment %q (run -list for the registry)", name)
			}
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty experiment selection %q", spec)
	}
	return out, nil
}

// Timing is one experiment's wall-clock sample in the self-timing
// report plusbench writes with -timing.
type Timing struct {
	Experiment string  `json:"experiment"`
	Points     int     `json:"points"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
}

// Report is the BENCH_<date>.json self-timing report: per-experiment
// wall-clock, point counts and pool size, so the ~#cores speedup of
// the parallel runner stays visible and trackable over time.
type Report struct {
	Date  string `json:"date"`
	Quick bool   `json:"quick"`
	// Workers is the sweep-point pool size; Shards the per-machine
	// engine count the run was invoked with (1 = serial points).
	Workers     int      `json:"workers"`
	Shards      int      `json:"shards"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"num_cpu"`
	Experiments []Timing `json:"experiments"`
	TotalWallMS float64  `json:"total_wall_ms"`
}
