package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests pin the deterministic simulation down to the cycle:
// any change to the timing model, protocol state machines, scheduling
// order or workload generation shows up as a golden diff. Regenerate
// intentionally with:
//
//	go test ./experiments -run TestGolden -update
var update = os.Getenv("UPDATE_GOLDEN") == "1"

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("golden mismatch for %s.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func TestGoldenTable21(t *testing.T) {
	rows, err := Table21(Table21Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2-1.quick", FormatTable21(rows))
}

func TestGoldenTable31(t *testing.T) {
	rows, err := Table31()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3-1", FormatTable31(rows))
}

func TestGoldenCosts(t *testing.T) {
	rows, err := Section31Costs()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "costs", FormatCosts(rows))
}

func TestGoldenFigure21(t *testing.T) {
	pts, err := Figure21(Fig21Config{Quick: true, MaxProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2-1.quick", FormatFigure21(pts))
}
