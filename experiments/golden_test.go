package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests pin the deterministic simulation down to the cycle:
// any change to the timing model, protocol state machines, scheduling
// order or workload generation shows up as a golden diff. They run
// through the registry, so they also pin the shared table renderer
// every experiment now formats with. Regenerate intentionally with:
//
//	UPDATE_GOLDEN=1 go test ./experiments -run TestGolden
var update = os.Getenv("UPDATE_GOLDEN") == "1"

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("golden mismatch for %s.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// goldenRun executes a registered experiment and returns its rendered
// table.
func goldenRun(t *testing.T, name string, o Options) string {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table
}

func TestGoldenTable21(t *testing.T) {
	checkGolden(t, "table2-1.quick", goldenRun(t, "table2-1", Options{Quick: true}))
}

func TestGoldenTable31(t *testing.T) {
	checkGolden(t, "table3-1", goldenRun(t, "table3-1", Options{}))
}

func TestGoldenCosts(t *testing.T) {
	checkGolden(t, "costs", goldenRun(t, "costs", Options{}))
}

func TestGoldenFigure21(t *testing.T) {
	checkGolden(t, "figure2-1.quick", goldenRun(t, "figure2-1", Options{Quick: true, MaxProcs: 8}))
}

func TestGoldenFigure21Contention(t *testing.T) {
	checkGolden(t, "figure2-1-contention.quick",
		goldenRun(t, "figure2-1-contention", Options{Quick: true, MaxProcs: 8}))
}

func TestGoldenFaultCrash(t *testing.T) {
	checkGolden(t, "fault-crash.quick", goldenRun(t, "fault-crash", Options{Quick: true}))
}

func TestGoldenKvserve(t *testing.T) {
	checkGolden(t, "kvserve-sweep.quick", goldenRun(t, "kvserve-sweep", Options{Quick: true}))
}
