package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"plus/apps/sssp"
)

// TestRunPointsOrder pins the runner's determinism contract: results
// come back in point order for any pool size, including pools larger
// than the point count.
func TestRunPointsOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 100} {
		pts := make([]Point[int], 37)
		for i := range pts {
			i := i
			pts[i] = Point[int]{Name: fmt.Sprintf("p%d", i), Run: func() (int, error) { return i * i, nil }}
		}
		got, err := RunPoints(pts, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: point %d returned %d", workers, i, v)
			}
		}
	}
}

// TestRunPointsFirstErrorWins pins deterministic error reporting: no
// matter which worker hits its error first in wall-clock time, the
// error returned is the failing point earliest in point order, wrapped
// with that point's name.
func TestRunPointsFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var pts []Point[int]
		for i := 0; i < 8; i++ {
			i := i
			pts = append(pts, Point[int]{
				Name: fmt.Sprintf("point-%d", i),
				Run: func() (int, error) {
					if i == 3 || i == 6 {
						return 0, sentinel
					}
					return i, nil
				},
			})
		}
		_, err := RunPoints(pts, workers)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if want := "point-3: boom"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err.Error(), want)
		}
	}
}

// TestSerialParallelEquivalence is the framework's core guarantee:
// for a quick sweep, a serial run (-parallel 1) and a parallel run
// produce byte-identical formatted tables and byte-identical JSON
// rows.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, name := range []string{"table2-1", "figure2-1", "faults"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		o := Options{Quick: true, MaxProcs: 8, DropRates: []float64{0, 0.01}}
		o.Workers = 1
		serial, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		o.Workers = 4
		parallel, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Table != parallel.Table {
			t.Errorf("%s: tables diverge between -parallel 1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, serial.Table, parallel.Table)
		}
		js, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		jp, err := json.Marshal(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if string(js) != string(jp) {
			t.Errorf("%s: JSON diverges between -parallel 1 and 4:\n%s\nvs\n%s", name, js, jp)
		}
	}
}

// TestParallelEnginesRace runs 8 full simulations (a fresh sim.Engine
// and machine per point) on 8 workers. Under `go test -race` this
// pins that no package-level mutable state — message pools, event
// heaps, stats, RNGs — is shared across concurrently running engines.
func TestParallelEnginesRace(t *testing.T) {
	pts := make([]Point[uint64], 8)
	for i := range pts {
		i := i
		pts[i] = Point[uint64]{
			Name: fmt.Sprintf("race sssp %d", i),
			Run: func() (uint64, error) {
				res, err := sssp.Run(sssp.Config{
					MeshW: 4, MeshH: 2, Procs: 8,
					Vertices: 128, Degree: 4, Seed: int64(42 + i%2),
					Copies: 1 + i%4, Validate: true,
				})
				if err != nil {
					return 0, err
				}
				return res.Messages, nil
			},
		}
	}
	first, err := RunPoints(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	// And the parallel results must equal a serial re-run point for
	// point.
	second, err := RunPoints(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("point %d: parallel %d != serial %d", i, first[i], second[i])
		}
	}
}

// TestSelect covers the -exp spec grammar.
func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Registered()) {
		t.Fatalf("all selected %d of %d", len(all), len(Registered()))
	}
	abl, err := Select("ablations")
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 9 {
		t.Fatalf("ablations selected %d experiments", len(abl))
	}
	pair, err := Select("costs,table3-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 || pair[0].Name != "costs" || pair[1].Name != "table3-1" {
		t.Fatalf("comma list wrong: %+v", pair)
	}
	if _, err := Select("no-such-experiment"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Select(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}
