package experiments

import (
	"fmt"

	"plus/apps/synth"
	"plus/internal/core"
)

// batchingPoints sweeps the write-combining depth (Timing.MaxBatchWrites,
// 1 = combining off) on a write-heavy mostly-local load, where runs of
// consecutive same-page writes are common and each coalesced word saves
// a write request, an update per copy, and an ack. The interesting
// outputs are the update-message count falling with depth and the
// coalesced-word counter rising, at identical final memory contents
// (pinned by the core-level equivalence fuzzer).
func batchingPoints(o Options) []Point[AblationRow] {
	ops := 1500
	if o.Quick {
		ops = 400
	}
	var pts []Point[AblationRow]
	for _, depth := range []int{1, 2, 4, 8, 16} {
		depth := depth
		label := fmt.Sprintf("combine depth %d", depth)
		if depth == 1 {
			label = "combining off"
		}
		name := fmt.Sprintf("ablation batching depth=%d", depth)
		pts = append(pts, Point[AblationRow]{
			Name: name,
			Tags: map[string]string{"depth": fmt.Sprint(depth)},
			Run: func() (AblationRow, error) {
				cfg := core.DefaultConfig(4, 2)
				cfg.Timing.MaxBatchWrites = depth
				o.Observe.Attach(&cfg, name)
				res, err := synth.Run(synth.Config{
					MeshW: 4, MeshH: 2, Procs: 8, OpsPerProc: ops,
					WriteFrac: 85, RMWFrac: 2, LocalFrac: 80,
					PagesPerProc: 1, Copies: 4, ThinkTime: 5,
					FencePeriod: 64, Seed: 41,
					Timing: &cfg,
				})
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label: label, Elapsed: res.Elapsed, Messages: res.Messages,
					Extra: fmt.Sprintf("updates %d, coalesced %d",
						res.Updates, res.Totals.CoalescedWrites),
				}, nil
			},
		})
	}
	return pts
}

// AblationBatching runs the write-combining depth sweep.
func AblationBatching(o Options) ([]AblationRow, error) {
	return RunPoints(batchingPoints(o), o.Workers)
}
