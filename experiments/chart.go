package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// chartSeries is one curve of an ASCII chart.
type chartSeries struct {
	name   string
	marker byte
	ys     map[int]float64 // x (processors) → y
}

// renderChart draws curves over a shared x-axis of processor counts
// (log-spaced by index, as the paper's figures are) on a text canvas.
func renderChart(title, yLabel string, xs []int, series []chartSeries, height int) string {
	if height < 4 {
		height = 12
	}
	var ymax float64
	for _, s := range series {
		for _, y := range s.ys {
			if y > ymax {
				ymax = y
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	const colsPerX = 8
	width := colsPerX * len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for xi, x := range xs {
			y, ok := s.ys[x]
			if !ok {
				continue
			}
			row := height - 1 - int(y/ymax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := xi*colsPerX + colsPerX/2
			if grid[row][col] == ' ' {
				grid[row][col] = s.marker
			} else {
				grid[row][col] = '*' // overlapping points
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := range grid {
		yval := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%6.2f |%s\n", yval, grid[r])
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        ")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*d", colsPerX, x)
	}
	fmt.Fprintf(&b, "  (%s vs processors)\n", yLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "        %c = %s\n", s.marker, s.name)
	}
	return b.String()
}

// ChartFigure21 renders Figure 2-1 as an ASCII efficiency chart.
func ChartFigure21(pts []Fig21Point) string {
	none := chartSeries{name: "no replication", marker: 'o', ys: map[int]float64{}}
	repl := chartSeries{name: "replicated", marker: '#', ys: map[int]float64{}}
	xset := map[int]bool{}
	for _, p := range pts {
		xset[p.Procs] = true
		if p.Replicated {
			repl.ys[p.Procs] = p.Efficiency
		} else {
			none.ys[p.Procs] = p.Efficiency
		}
	}
	return renderChart("Figure 2-1 (rendered): SSSP efficiency", "efficiency",
		sortedKeys(xset), []chartSeries{none, repl}, 14)
}

// ChartFigure31 renders Figure 3-1 as an ASCII efficiency chart.
func ChartFigure31(pts []Fig31Point) string {
	markers := map[string]byte{
		"blocking": 'b', "delayed": 'd', "cs-16": '1', "cs-40": '4', "cs-140": 'x',
	}
	byLabel := map[string]*chartSeries{}
	order := []string{"blocking", "delayed", "cs-16", "cs-40", "cs-140"}
	for _, l := range order {
		byLabel[l] = &chartSeries{name: l, marker: markers[l], ys: map[int]float64{}}
	}
	xset := map[int]bool{}
	for _, p := range pts {
		xset[p.Procs] = true
		if s := byLabel[p.Label]; s != nil {
			s.ys[p.Procs] = p.Efficiency
		}
	}
	var series []chartSeries
	for _, l := range order {
		series = append(series, *byLabel[l])
	}
	return renderChart("Figure 3-1 (rendered): beam-search efficiency by sync style",
		"efficiency", sortedKeys(xset), series, 14)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
