package experiments

import (
	"fmt"
	"strings"
)

// A col is one column of a rendered table: header text and a printf
// width applied to every cell (negative width left-aligns, as in fmt).
type col struct {
	head  string
	width int
}

// renderTable lays out pre-formatted cells under a title line, padding
// each cell to its column width with single-space separators. Every
// experiment table renders through this one helper, so stdout, the
// golden files and the JSON rows can never disagree on content.
func renderTable(title string, cols []col, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	heads := make([]string, len(cols))
	for i, c := range cols {
		heads[i] = c.head
	}
	writeCells(&b, cols, heads)
	for _, r := range rows {
		writeCells(&b, cols, r)
	}
	return b.String()
}

func writeCells(b *strings.Builder, cols []col, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%*s", cols[i].width, cell)
	}
	b.WriteByte('\n')
}

// cells converts typed rows to pre-formatted cells with one mapping
// function — the per-experiment replacement for the old hand-rolled
// Fprintf loops.
func cells[T any](rows []T, f func(T) []string) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = f(r)
	}
	return out
}
