package experiments

import (
	"testing"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
)

// TestCrossRunDeterminism runs Table 2-1 quick twice in one process
// and requires bit-identical formatted results: the message pool, the
// typed event heap, and every reusable completion hook must carry no
// state from one run into the next.
func TestCrossRunDeterminism(t *testing.T) {
	run := func() string {
		rows, err := Table21(Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable21(rows)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("Table 2-1 quick diverged between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestCrossRunTraceDeterminism runs a small traced machine twice and
// compares the full protocol trace byte for byte: the (time, seq)
// total order of writes, updates, acks, RMWs and reads must be
// reproduced exactly run to run.
func TestCrossRunTraceDeterminism(t *testing.T) {
	run := func() string {
		m, err := core.NewMachine(core.DefaultConfig(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		tr := m.EnableTrace(1 << 16)
		shared := m.Alloc(0, 1)
		m.Replicate(shared, 1, 2, 3)
		for n := 0; n < m.Nodes(); n++ {
			n := n
			m.Spawn(mesh.NodeID(n), func(th *proc.Thread) {
				slot := shared + memory.VAddr(16+n)
				for i := 0; i < 8; i++ {
					th.FaddSync(shared, 1)
					th.Write(slot, memory.Word(i))
					_ = th.Read(shared)
				}
				th.Fence()
			})
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.Dump()
	}
	first, second := run(), run()
	if first == "" {
		t.Fatal("empty trace")
	}
	if first != second {
		t.Fatal("protocol trace diverged between identical runs")
	}
}
