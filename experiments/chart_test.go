package experiments

import (
	"strings"
	"testing"
)

func TestChartFigure21Renders(t *testing.T) {
	pts := []Fig21Point{
		{Procs: 1, Replicated: false, Efficiency: 1.0},
		{Procs: 2, Replicated: false, Efficiency: 0.8},
		{Procs: 2, Replicated: true, Efficiency: 0.95},
		{Procs: 4, Replicated: false, Efficiency: 0.7},
		{Procs: 4, Replicated: true, Efficiency: 0.82},
	}
	out := ChartFigure21(pts)
	for _, want := range []string{"Figure 2-1", "o = no replication", "# = replicated", "efficiency vs processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The single-processor point (efficiency 1.0) must sit on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "o") {
		t.Errorf("top row missing the 1.0 point:\n%s", out)
	}
}

func TestChartFigure31Renders(t *testing.T) {
	pts := []Fig31Point{
		{Procs: 1, Label: "blocking", Efficiency: 1.0},
		{Procs: 1, Label: "delayed", Efficiency: 1.1},
		{Procs: 8, Label: "cs-140", Efficiency: 0.4},
		{Procs: 8, Label: "cs-16", Efficiency: 0.9},
	}
	out := ChartFigure31(pts)
	for _, want := range []string{"Figure 3-1", "b = blocking", "d = delayed", "x = cs-140"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestChartOverlapMarker(t *testing.T) {
	// Two series at the same grid cell collapse to '*'.
	pts := []Fig21Point{
		{Procs: 4, Replicated: false, Efficiency: 0.5},
		{Procs: 4, Replicated: true, Efficiency: 0.5},
	}
	out := ChartFigure21(pts)
	if !strings.Contains(out, "*") {
		t.Errorf("overlap not marked:\n%s", out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	out := renderChart("t", "y", []int{1, 2}, []chartSeries{{name: "empty", marker: 'e', ys: map[int]float64{}}}, 6)
	if !strings.Contains(out, "e = empty") {
		t.Error("legend missing for empty series")
	}
}
