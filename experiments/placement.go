package experiments

import (
	"fmt"

	"plus/internal/core"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/placement"
)

// placementWorkload builds a deterministic machine with deliberately
// poor initial placement: every page homed on the far corner, each
// used intensely by two near-corner nodes with a light write mix.
func placementWorkload(ops int, ob *Observation, name string) (*core.Machine, error) {
	mcfg := core.DefaultConfig(4, 2)
	ob.Attach(&mcfg, name)
	m, err := core.NewMachine(mcfg)
	if err != nil {
		return nil, err
	}
	const pages = 4
	bases := make([]memory.VAddr, pages)
	for i := range bases {
		bases[i] = m.Alloc(7, 1) // all homed on node 7
	}
	for n := 0; n < 6; n++ {
		n := n
		pg := bases[n%pages]
		m.Spawn(mesh.NodeID(n), func(t *proc.Thread) {
			for i := 0; i < ops; i++ {
				t.Read(pg + memory.VAddr((n*31+i)%256))
				if i%8 == 0 {
					t.Write(pg+memory.VAddr(uint32(n)), memory.Word(uint32(i)))
				}
				t.Compute(60)
			}
			t.Fence()
		})
	}
	return m, nil
}

// ExtensionProfilePlacement measures §2.4's second placement mode:
// "If the access pattern is not data dependent, it can be measured
// during one run of the application and the results of the
// measurement used to optimally allocate memory in subsequent runs."
// Run 1 executes with every page mis-homed and leaves the hardware
// reference counters populated; the placement package turns them into
// a migrate+replicate plan; run 2 executes the identical workload
// under the plan.
//
// Unlike every other experiment this one is a two-stage pipeline —
// run 2 consumes run 1's counters — so it registers as a single sweep
// point rather than a parallel point set.
func ExtensionProfilePlacement(o Options) ([]AblationRow, error) {
	ops := 400
	if o.Quick {
		ops = 120
	}
	m1, err := placementWorkload(ops, o.Observe, "ext placement run 1 naive")
	if err != nil {
		return nil, err
	}
	e1, err := m1.Run()
	if err != nil {
		return nil, err
	}
	plan := placement.Compute(m1, placement.Options{})

	m2, err := placementWorkload(ops, o.Observe, "ext placement run 2 profiled")
	if err != nil {
		return nil, err
	}
	if err := placement.Apply(m2, plan); err != nil {
		return nil, err
	}
	e2, err := m2.Run()
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{
			Label: "run 1: naive placement", Elapsed: e1, Messages: m1.Stats().Messages(),
			Extra: fmt.Sprintf("remote reads %d", m1.Stats().Totals().RemoteReads),
		},
		{
			Label: "run 2: profile-guided", Elapsed: e2, Messages: m2.Stats().Messages(),
			Extra: fmt.Sprintf("remote reads %d, plan touched %d page(s)",
				m2.Stats().Totals().RemoteReads, plan.Pages()),
		},
	}, nil
}
