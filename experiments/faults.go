package experiments

import (
	"fmt"
	"strings"

	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// --- Fault sweep: protocol robustness under an unreliable network ------

// FaultRow is one drop-rate sample of the fault sweep: the Figure 2-1
// workload (replicated SSSP on 16 processors) re-run with the
// deterministic fault injector losing a fraction of all network
// messages, every loss repaired by the reliability sublayer.
type FaultRow struct {
	// DropPct is the message loss rate in percent.
	DropPct float64 `json:"drop_pct"`
	// Elapsed is the run time in cycles; Slowdown normalizes it to the
	// fault-free run.
	Elapsed  sim.Cycles `json:"elapsed_cycles"`
	Slowdown float64    `json:"slowdown"`
	// Messages counts protocol messages (transport acks included);
	// Dropped, Retransmits and TransportAcks are the fault/repair
	// tallies behind the slowdown.
	Messages      uint64 `json:"messages"`
	Dropped       uint64 `json:"dropped"`
	Retransmits   uint64 `json:"retransmits"`
	TransportAcks uint64 `json:"transport_acks"`
}

// FaultSweepConfig scales the experiment.
type FaultSweepConfig struct {
	Quick bool
	// DropRates overrides the swept loss rates (default 0, 0.001, 0.01,
	// 0.05).
	DropRates []float64
}

// FaultSweep runs SSSP (16 processors, 4 copies — the replicated
// Figure 2-1 point) across message drop rates, with the runtime
// invariant checker verifying the protocol's coherence structures
// throughout. Each run validates its distances against Dijkstra, so a
// row in the output is end-to-end evidence the protocol survived that
// loss rate.
func FaultSweep(cfg FaultSweepConfig) ([]FaultRow, error) {
	vertices := 1024
	if cfg.Quick {
		vertices = 256
	}
	rates := cfg.DropRates
	if rates == nil {
		rates = []float64{0, 0.001, 0.01, 0.05}
	}
	var rows []FaultRow
	var base sim.Cycles
	for _, rate := range rates {
		mcfg := core.DefaultConfig(4, 4)
		if rate > 0 {
			mcfg.Faults = mesh.FaultConfig{Seed: 7, DropRate: rate}
			mcfg.CheckInvariants = true
		}
		res, err := sssp.Run(sssp.Config{
			MeshW: 4, MeshH: 4, Procs: 16,
			Vertices: vertices, Degree: 4, Seed: 42,
			Copies: 4, Validate: true,
			Machine: &mcfg,
		})
		if err != nil {
			return nil, fmt.Errorf("fault sweep drop=%g: %w", rate, err)
		}
		if rate == 0 {
			base = res.Elapsed
		}
		slow := 1.0
		if base > 0 {
			slow = float64(res.Elapsed) / float64(base)
		}
		rows = append(rows, FaultRow{
			DropPct:       rate * 100,
			Elapsed:       res.Elapsed,
			Slowdown:      slow,
			Messages:      res.Messages,
			Dropped:       res.Net.Dropped,
			Retransmits:   res.Retransmits,
			TransportAcks: res.TransportAcks,
		})
	}
	return rows, nil
}

// FormatFaultSweep renders the sweep as a table.
func FormatFaultSweep(rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: SSSP (16 procs, 4 copies) under message loss\n")
	fmt.Fprintf(&b, "%-8s %12s %10s %10s %9s %12s %10s\n",
		"Drop%", "Elapsed", "Slowdown", "Messages", "Dropped", "Retransmits", "TAcks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f %12d %10.2f %10d %9d %12d %10d\n",
			r.DropPct, r.Elapsed, r.Slowdown, r.Messages, r.Dropped, r.Retransmits, r.TransportAcks)
	}
	return b.String()
}
