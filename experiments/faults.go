package experiments

import (
	"fmt"

	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// --- Fault sweep: protocol robustness under an unreliable network ------

// FaultRow is one fault-mix sample of the fault sweep: the Figure 2-1
// workload (replicated SSSP) re-run with the deterministic fault
// injector losing, duplicating or delaying a fraction of all network
// messages, every fault repaired by the reliability sublayer. The
// sweep covers the 4x4/16-processor machine across drop rates and the
// 8x8/64-processor machine across drop/dup/delay mixes.
type FaultRow struct {
	// Mesh labels the machine ("4x4" or "8x8").
	Mesh string `json:"mesh"`
	// DropPct, DupPct and DelayPct are the loss, duplication and delay
	// rates in percent.
	DropPct  float64 `json:"drop_pct"`
	DupPct   float64 `json:"dup_pct"`
	DelayPct float64 `json:"delay_pct"`
	// Elapsed is the run time in cycles; Slowdown normalizes it to the
	// fault-free run on the same mesh.
	Elapsed  sim.Cycles `json:"elapsed_cycles"`
	Slowdown float64    `json:"slowdown"`
	// Messages counts protocol messages (transport acks included);
	// Dropped, Retransmits and TransportAcks are the fault/repair
	// tallies behind the slowdown.
	Messages      uint64 `json:"messages"`
	Dropped       uint64 `json:"dropped"`
	Retransmits   uint64 `json:"retransmits"`
	TransportAcks uint64 `json:"transport_acks"`
	// TransDups, TransGaps and TransStalls detail the reliability
	// sublayer's duplicate-drop, gap-drop and back-pressure activity
	// (JSON rows only; the rendered table keeps its shape).
	TransDups   uint64 `json:"trans_dups"`
	TransGaps   uint64 `json:"trans_gaps"`
	TransStalls uint64 `json:"trans_stalls"`
}

// faultMix is one injector configuration of the sweep: a mesh size and
// a drop/dup/delay mix.
type faultMix struct {
	w, h  int
	procs int
	f     mesh.FaultConfig
}

// faultPoints runs SSSP across fault mixes, with the runtime invariant
// checker verifying the protocol's coherence structures throughout:
// the 4x4/16-processor replicated Figure 2-1 point across message drop
// rates (overridable via Options.DropRates), then the 8x8/64-processor
// machine under drop/dup/delay mixes, where four times the nodes and
// longer paths give every fault class more protocol state to corrupt.
// Each run validates its distances against Dijkstra, so a row in the
// output is end-to-end evidence the protocol survived that mix.
// Slowdown is normalized afterwards by fillFaultSlowdown against the
// sweep's own fault-free point on the same mesh.
func faultPoints(o Options) []Point[FaultRow] {
	vertices := 1024
	if o.Quick {
		vertices = 256
	}
	rates := o.DropRates
	if rates == nil {
		rates = []float64{0, 0.001, 0.01, 0.05}
	}
	var mixes []faultMix
	for _, rate := range rates {
		mixes = append(mixes, faultMix{4, 4, 16, mesh.FaultConfig{Seed: 7, DropRate: rate}})
	}
	for _, f := range []mesh.FaultConfig{
		{},
		{Seed: 7, DropRate: 0.01},
		{Seed: 7, DupRate: 0.05, DelayRate: 0.10, DelayMax: 300},
		{Seed: 7, DropRate: 0.01, DupRate: 0.02, DelayRate: 0.05, DelayMax: 300},
	} {
		mixes = append(mixes, faultMix{8, 8, 64, f})
	}
	var pts []Point[FaultRow]
	for _, mx := range mixes {
		mx := mx
		meshLabel := fmt.Sprintf("%dx%d", mx.w, mx.h)
		name := fmt.Sprintf("fault sweep %s drop=%g dup=%g delay=%g",
			meshLabel, mx.f.DropRate, mx.f.DupRate, mx.f.DelayRate)
		pts = append(pts, Point[FaultRow]{
			Name: name,
			Tags: map[string]string{
				"mesh":       meshLabel,
				"drop_rate":  fmt.Sprint(mx.f.DropRate),
				"dup_rate":   fmt.Sprint(mx.f.DupRate),
				"delay_rate": fmt.Sprint(mx.f.DelayRate),
			},
			Run: func() (FaultRow, error) {
				mcfg := core.DefaultConfig(mx.w, mx.h)
				if mx.f.Enabled() {
					mcfg.Faults = mx.f
					mcfg.CheckInvariants = true
				}
				o.Observe.Attach(&mcfg, name)
				res, err := sssp.Run(sssp.Config{
					MeshW: mx.w, MeshH: mx.h, Procs: mx.procs,
					Vertices: vertices, Degree: 4, Seed: 42,
					Copies: 4, Validate: true,
					Machine: &mcfg,
				})
				if err != nil {
					return FaultRow{}, err
				}
				return FaultRow{
					Mesh:          meshLabel,
					DropPct:       mx.f.DropRate * 100,
					DupPct:        mx.f.DupRate * 100,
					DelayPct:      mx.f.DelayRate * 100,
					Elapsed:       res.Elapsed,
					Messages:      res.Messages,
					Dropped:       res.Net.Dropped,
					Retransmits:   res.Retransmits,
					TransportAcks: res.TransportAcks,
					TransDups:     res.Reliability.TransDups,
					TransGaps:     res.Reliability.TransGaps,
					TransStalls:   res.Reliability.TransStalls,
				}, nil
			},
		})
	}
	return pts
}

// fillFaultSlowdown normalizes every row to the sweep's fault-free row
// on the same mesh (slowdown 1.0 when no fault-free row was requested
// for that mesh).
func fillFaultSlowdown(rows []FaultRow) []FaultRow {
	base := map[string]sim.Cycles{}
	for _, r := range rows {
		if r.DropPct == 0 && r.DupPct == 0 && r.DelayPct == 0 {
			base[r.Mesh] = r.Elapsed
		}
	}
	for i := range rows {
		rows[i].Slowdown = 1.0
		if b := base[rows[i].Mesh]; b > 0 {
			rows[i].Slowdown = float64(rows[i].Elapsed) / float64(b)
		}
	}
	return rows
}

// FaultSweep runs the unreliable-network sweep.
func FaultSweep(o Options) ([]FaultRow, error) {
	rows, err := RunPoints(faultPoints(o), o.Workers)
	if err != nil {
		return nil, err
	}
	return fillFaultSlowdown(rows), nil
}

// FormatFaultSweep renders the sweep as a table.
func FormatFaultSweep(rows []FaultRow) string {
	return renderTable("Fault sweep: SSSP (4 copies) under message loss, duplication & delay",
		[]col{{"Mesh", -6}, {"Drop%", 7}, {"Dup%", 6}, {"Delay%", 7}, {"Elapsed", 12},
			{"Slowdown", 10}, {"Messages", 10}, {"Dropped", 9}, {"Retransmits", 12}, {"TAcks", 10}},
		cells(rows, func(r FaultRow) []string {
			return []string{
				r.Mesh,
				fmt.Sprintf("%.2f", r.DropPct),
				fmt.Sprintf("%.2f", r.DupPct),
				fmt.Sprintf("%.2f", r.DelayPct),
				fmt.Sprint(r.Elapsed),
				fmt.Sprintf("%.2f", r.Slowdown),
				fmt.Sprint(r.Messages),
				fmt.Sprint(r.Dropped),
				fmt.Sprint(r.Retransmits),
				fmt.Sprint(r.TransportAcks),
			}
		}))
}
