package experiments

import (
	"fmt"

	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/sim"
)

// --- Fault sweep: protocol robustness under an unreliable network ------

// FaultRow is one drop-rate sample of the fault sweep: the Figure 2-1
// workload (replicated SSSP on 16 processors) re-run with the
// deterministic fault injector losing a fraction of all network
// messages, every loss repaired by the reliability sublayer.
type FaultRow struct {
	// DropPct is the message loss rate in percent.
	DropPct float64 `json:"drop_pct"`
	// Elapsed is the run time in cycles; Slowdown normalizes it to the
	// fault-free run.
	Elapsed  sim.Cycles `json:"elapsed_cycles"`
	Slowdown float64    `json:"slowdown"`
	// Messages counts protocol messages (transport acks included);
	// Dropped, Retransmits and TransportAcks are the fault/repair
	// tallies behind the slowdown.
	Messages      uint64 `json:"messages"`
	Dropped       uint64 `json:"dropped"`
	Retransmits   uint64 `json:"retransmits"`
	TransportAcks uint64 `json:"transport_acks"`
	// TransDups, TransGaps and TransStalls detail the reliability
	// sublayer's duplicate-drop, gap-drop and back-pressure activity
	// (JSON rows only; the rendered table keeps its shape).
	TransDups   uint64 `json:"trans_dups"`
	TransGaps   uint64 `json:"trans_gaps"`
	TransStalls uint64 `json:"trans_stalls"`
}

// faultPoints runs SSSP (16 processors, 4 copies — the replicated
// Figure 2-1 point) across message drop rates, with the runtime
// invariant checker verifying the protocol's coherence structures
// throughout. Each run validates its distances against Dijkstra, so a
// row in the output is end-to-end evidence the protocol survived that
// loss rate. Slowdown is normalized afterwards by fillFaultSlowdown
// against the sweep's own fault-free point.
func faultPoints(o Options) []Point[FaultRow] {
	vertices := 1024
	if o.Quick {
		vertices = 256
	}
	rates := o.DropRates
	if rates == nil {
		rates = []float64{0, 0.001, 0.01, 0.05}
	}
	var pts []Point[FaultRow]
	for _, rate := range rates {
		rate := rate
		name := fmt.Sprintf("fault sweep drop=%g", rate)
		pts = append(pts, Point[FaultRow]{
			Name: name,
			Tags: map[string]string{"drop_rate": fmt.Sprint(rate)},
			Run: func() (FaultRow, error) {
				mcfg := core.DefaultConfig(4, 4)
				if rate > 0 {
					mcfg.Faults = mesh.FaultConfig{Seed: 7, DropRate: rate}
					mcfg.CheckInvariants = true
				}
				o.Observe.Attach(&mcfg, name)
				res, err := sssp.Run(sssp.Config{
					MeshW: 4, MeshH: 4, Procs: 16,
					Vertices: vertices, Degree: 4, Seed: 42,
					Copies: 4, Validate: true,
					Machine: &mcfg,
				})
				if err != nil {
					return FaultRow{}, err
				}
				return FaultRow{
					DropPct:       rate * 100,
					Elapsed:       res.Elapsed,
					Messages:      res.Messages,
					Dropped:       res.Net.Dropped,
					Retransmits:   res.Retransmits,
					TransportAcks: res.TransportAcks,
					TransDups:     res.Reliability.TransDups,
					TransGaps:     res.Reliability.TransGaps,
					TransStalls:   res.Reliability.TransStalls,
				}, nil
			},
		})
	}
	return pts
}

// fillFaultSlowdown normalizes every row to the sweep's fault-free
// row (slowdown 1.0 when no zero-rate row was requested).
func fillFaultSlowdown(rows []FaultRow) []FaultRow {
	var base sim.Cycles
	for _, r := range rows {
		if r.DropPct == 0 {
			base = r.Elapsed
			break
		}
	}
	for i := range rows {
		rows[i].Slowdown = 1.0
		if base > 0 {
			rows[i].Slowdown = float64(rows[i].Elapsed) / float64(base)
		}
	}
	return rows
}

// FaultSweep runs the unreliable-network sweep.
func FaultSweep(o Options) ([]FaultRow, error) {
	rows, err := RunPoints(faultPoints(o), o.Workers)
	if err != nil {
		return nil, err
	}
	return fillFaultSlowdown(rows), nil
}

// FormatFaultSweep renders the sweep as a table.
func FormatFaultSweep(rows []FaultRow) string {
	return renderTable("Fault sweep: SSSP (16 procs, 4 copies) under message loss",
		[]col{{"Drop%", -8}, {"Elapsed", 12}, {"Slowdown", 10}, {"Messages", 10},
			{"Dropped", 9}, {"Retransmits", 12}, {"TAcks", 10}},
		cells(rows, func(r FaultRow) []string {
			return []string{
				fmt.Sprintf("%.2f", r.DropPct),
				fmt.Sprint(r.Elapsed),
				fmt.Sprintf("%.2f", r.Slowdown),
				fmt.Sprint(r.Messages),
				fmt.Sprint(r.Dropped),
				fmt.Sprint(r.Retransmits),
				fmt.Sprint(r.TransportAcks),
			}
		}))
}
