package experiments

import (
	"fmt"
	"time"

	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/sim"
)

// ScaleRow is one (mesh, shard count) sample of the sharded-engine
// scale experiment: the Figure 2-1 replicated SSSP workload grown to
// large meshes, run on K shard engines. Every shard count executes the
// byte-identical simulation — Elapsed, Messages and Relaxations are
// required to match the K=1 row of the same mesh, and the sweep fails
// loudly if they do not — so WallMS isolates pure wall-clock speedup
// from parallelizing the event loop.
type ScaleRow struct {
	MeshW       int        `json:"mesh_w"`
	MeshH       int        `json:"mesh_h"`
	Procs       int        `json:"procs"`
	Vertices    int        `json:"vertices"`
	Shards      int        `json:"shards"`
	Elapsed     sim.Cycles `json:"elapsed_cycles"`
	Messages    uint64     `json:"messages"`
	Relaxations uint64     `json:"relaxations"`
	WallMS      float64    `json:"wall_ms"`
	// Speedup is wall(shards=1) / wall(this row) for the same mesh.
	Speedup float64 `json:"speedup"`
}

// scaleMeshes returns the swept (mesh, vertices, shard counts) tuples.
// Quick keeps one mesh small enough for make check; the full sweep
// runs the 32x32 (1024-processor) mesh the serial engine cannot touch
// in reasonable time on one core.
func scaleMeshes(o Options) []struct {
	w, h, vertices int
	shards         []int
} {
	type m = struct {
		w, h, vertices int
		shards         []int
	}
	shards := []int{1, 2, 4, 8, 16}
	if o.Shards > 1 {
		shards = []int{1, o.Shards}
	}
	if o.Quick {
		return []m{{8, 8, 512, shards}}
	}
	return []m{
		{8, 8, 2048, shards},
		{16, 16, 4096, shards},
		{32, 32, 8192, shards},
	}
}

// scalePoints builds the sweep. Each point measures its own wall time.
func scalePoints(o Options) []Point[ScaleRow] {
	var pts []Point[ScaleRow]
	for _, mesh := range scaleMeshes(o) {
		for _, k := range mesh.shards {
			mesh, k := mesh, k
			procs := mesh.w * mesh.h
			if k > procs || procs%k != 0 {
				continue
			}
			name := fmt.Sprintf("scale %dx%d shards=%d", mesh.w, mesh.h, k)
			pts = append(pts, Point[ScaleRow]{
				Name: name,
				Tags: map[string]string{"mesh": fmt.Sprintf("%dx%d", mesh.w, mesh.h), "shards": fmt.Sprint(k)},
				Run: func() (ScaleRow, error) {
					mc := core.DefaultConfig(mesh.w, mesh.h)
					mc.Shards = k
					// An instrumented sweep runs the full-featured
					// machine — link contention on, a per-point observer
					// attached — so the serial-vs-sharded equivalence
					// check below also pins the contention and observer
					// gate lifts at SSSP scale (make check runs this
					// quick at -shards 4 with tracing).
					o.Observe.Attach(&mc, name)
					start := time.Now()
					res, err := sssp.Run(sssp.Config{
						MeshW: mesh.w, MeshH: mesh.h, Procs: procs,
						Vertices: mesh.vertices, Degree: 4, Seed: 42,
						Copies: 4, Validate: true,
						Contention: o.Observe != nil,
						Machine:    &mc,
					})
					if err != nil {
						return ScaleRow{}, err
					}
					return ScaleRow{
						MeshW: mesh.w, MeshH: mesh.h, Procs: procs,
						Vertices:    mesh.vertices,
						Shards:      k,
						Elapsed:     res.Elapsed,
						Messages:    res.Messages,
						Relaxations: res.Relaxations,
						WallMS:      float64(time.Since(start).Microseconds()) / 1000,
					}, nil
				},
			})
		}
	}
	return pts
}

// checkScaleEquivalence verifies that every shard count of a mesh
// reproduced the serial row exactly, and fills Speedup from the serial
// row's wall time.
func checkScaleEquivalence(rows []ScaleRow) ([]ScaleRow, error) {
	type key struct{ w, h int }
	base := map[key]ScaleRow{}
	for _, r := range rows {
		if r.Shards == 1 {
			base[key{r.MeshW, r.MeshH}] = r
		}
	}
	for i, r := range rows {
		b, ok := base[key{r.MeshW, r.MeshH}]
		if !ok {
			continue
		}
		if r.Elapsed != b.Elapsed || r.Messages != b.Messages || r.Relaxations != b.Relaxations {
			return nil, fmt.Errorf("scale: %dx%d shards=%d diverged from serial: elapsed %d/%d messages %d/%d relaxations %d/%d",
				r.MeshW, r.MeshH, r.Shards, r.Elapsed, b.Elapsed, r.Messages, b.Messages, r.Relaxations, b.Relaxations)
		}
		if r.WallMS > 0 {
			rows[i].Speedup = b.WallMS / r.WallMS
		}
	}
	return rows, nil
}

// scaleExperiment wires the sweep in bespoke rather than through
// newExperiment: the points must run sequentially — each sharded point
// already uses one OS thread per shard, and wall-clock speedup is
// meaningless with other points co-running — and the post step can
// fail (serial/sharded divergence is an error, not a row).
func scaleExperiment() Experiment {
	const name = "figure2-1-scale"
	const title = "Sharded engine scale: SSSP wall-clock speedup vs shards (identical simulations)"
	return Experiment{
		Name:  name,
		Title: title,
		Run: func(o Options) (*Result, error) {
			pts := scalePoints(o)
			rows, err := RunPoints(pts, 1)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			rows, err = checkScaleEquivalence(rows)
			if err != nil {
				return nil, err
			}
			return &Result{Name: name, Title: title, Points: len(pts),
				Shards: o.EffectiveShards(), Rows: rows,
				Table: FormatScale(rows)}, nil
		},
	}
}

// FormatScale renders the scale sweep. The printed table carries only
// the deterministic simulation columns — stdout must stay
// byte-identical run to run, the repo's hard invariant — so the
// wall-clock measurements (wall_ms, speedup) live in the -json rows
// and the -timing report, like every other wall-clock number.
func FormatScale(rows []ScaleRow) string {
	return renderTable(
		"Sharded engine scale: identical simulations per shard count (wall-clock in -json)",
		[]col{{"Mesh", -7}, {"Procs", 6}, {"Vertices", 9}, {"Shards", 7},
			{"Elapsed", 12}, {"Messages", 10}, {"Relaxations", 12}},
		cells(rows, func(r ScaleRow) []string {
			return []string{
				fmt.Sprintf("%dx%d", r.MeshW, r.MeshH),
				fmt.Sprint(r.Procs),
				fmt.Sprint(r.Vertices),
				fmt.Sprint(r.Shards),
				fmt.Sprint(r.Elapsed),
				fmt.Sprint(r.Messages),
				fmt.Sprint(r.Relaxations),
			}
		}))
}
