// Package experiments regenerates every table and figure of the PLUS
// paper's evaluation, plus the ablations called out in DESIGN.md. Each
// experiment returns structured rows and renders the same table the
// paper prints; cmd/plusbench and the repository-root benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"

	"plus/apps/beam"
	"plus/apps/sssp"
	"plus/internal/sim"
)

// meshFor returns a near-square mesh holding at least p nodes.
func meshFor(p int) (w, h int) {
	switch {
	case p <= 1:
		return 1, 1
	case p <= 2:
		return 2, 1
	case p <= 4:
		return 2, 2
	case p <= 8:
		return 4, 2
	case p <= 16:
		return 4, 4
	case p <= 32:
		return 8, 4
	default:
		return 8, 8
	}
}

// --- Table 2-1: Effect of Replication on Messages ----------------------

// Table21Row is one replication level of Table 2-1.
type Table21Row struct {
	Copies      int
	ReadRatio   float64 // reads local/remote
	WriteRatio  float64 // writes local/remote
	UpdateRatio float64 // total messages / update messages
	Messages    uint64
	Updates     uint64
	Elapsed     sim.Cycles
}

// Table21Config scales the experiment. Quick shrinks the graph for
// fast test runs.
type Table21Config struct {
	Quick bool
}

// Table21 runs SSSP on 16 processors at replication levels 1..5
// (the paper's Table 2-1 setup: "the 16-processor case of Figure
// 2-1").
func Table21(cfg Table21Config) ([]Table21Row, error) {
	vertices := 1024
	if cfg.Quick {
		vertices = 256
	}
	var rows []Table21Row
	for copies := 1; copies <= 5; copies++ {
		res, err := sssp.Run(sssp.Config{
			MeshW: 4, MeshH: 4, Procs: 16,
			Vertices: vertices, Degree: 4, Seed: 42,
			Copies: copies, Validate: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table 2-1 copies=%d: %w", copies, err)
		}
		rows = append(rows, Table21Row{
			Copies:      copies,
			ReadRatio:   res.ReadRatio,
			WriteRatio:  res.WriteRatio,
			UpdateRatio: res.UpdateRatio,
			Messages:    res.Messages,
			Updates:     res.Updates,
			Elapsed:     res.Elapsed,
		})
	}
	return rows, nil
}

// FormatTable21 renders rows like the paper's Table 2-1.
func FormatTable21(rows []Table21Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2-1: Effect of Replication on Messages (SSSP, 16 procs)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %10s %10s\n",
		"Copies", "Reads L/R", "Writes L/R", "Total/Upd", "Messages", "Elapsed")
	for _, r := range rows {
		upd := "-"
		if r.Updates > 0 {
			upd = fmt.Sprintf("%.2f", r.UpdateRatio)
		}
		fmt.Fprintf(&b, "%-8d %12.2f %12.2f %12s %10d %10d\n",
			r.Copies, r.ReadRatio, r.WriteRatio, upd, r.Messages, r.Elapsed)
	}
	return b.String()
}

// --- Figure 2-1: SSSP efficiency & utilization vs processors -----------

// Fig21Point is one (processors, replication) sample.
type Fig21Point struct {
	Procs       int
	Replicated  bool
	Copies      int
	Elapsed     sim.Cycles
	Efficiency  float64
	Utilization float64
}

// Fig21Config scales the experiment.
type Fig21Config struct {
	Quick bool
	// MaxProcs truncates the sweep (default 64; quick default 16).
	MaxProcs int
}

// Figure21 sweeps processors with and without replication. Efficiency
// is T(1)/(P·T(P)) with T(1) measured on the same simulator.
func Figure21(cfg Fig21Config) ([]Fig21Point, error) {
	vertices := 1024
	maxP := cfg.MaxProcs
	if maxP == 0 {
		maxP = 64
	}
	if cfg.Quick {
		vertices = 256
		if cfg.MaxProcs == 0 {
			maxP = 16
		}
	}
	run := func(p, copies int) (sssp.Result, error) {
		w, h := meshFor(p)
		return sssp.Run(sssp.Config{
			MeshW: w, MeshH: h, Procs: p,
			Vertices: vertices, Degree: 4, Seed: 42,
			Copies: copies, Validate: true,
		})
	}
	base, err := run(1, 1)
	if err != nil {
		return nil, fmt.Errorf("figure 2-1 baseline: %w", err)
	}
	t1 := float64(base.Elapsed)

	var pts []Fig21Point
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if p > maxP {
			break
		}
		for _, repl := range []bool{false, true} {
			copies := 1
			if repl {
				copies = p
				if copies > 4 {
					copies = 4
				}
			}
			if p == 1 && repl {
				continue // replication is meaningless on one node
			}
			res, err := run(p, copies)
			if err != nil {
				return nil, fmt.Errorf("figure 2-1 p=%d copies=%d: %w", p, copies, err)
			}
			pts = append(pts, Fig21Point{
				Procs:       p,
				Replicated:  repl,
				Copies:      copies,
				Elapsed:     res.Elapsed,
				Efficiency:  t1 / (float64(p) * float64(res.Elapsed)),
				Utilization: res.Utilization,
			})
		}
	}
	return pts, nil
}

// FormatFigure21 renders the two curves of Figure 2-1 as a table.
func FormatFigure21(pts []Fig21Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2-1: SSSP efficiency and utilization vs processors\n")
	fmt.Fprintf(&b, "%-6s %-12s %-7s %12s %12s %12s\n",
		"Procs", "Replication", "Copies", "Elapsed", "Efficiency", "Utilization")
	for _, p := range pts {
		mode := "none"
		if p.Replicated {
			mode = "replicated"
		}
		fmt.Fprintf(&b, "%-6d %-12s %-7d %12d %12.3f %12.3f\n",
			p.Procs, mode, p.Copies, p.Elapsed, p.Efficiency, p.Utilization)
	}
	return b.String()
}

// --- Figure 3-1: beam search efficiency by synchronization style -------

// Fig31Point is one (processors, style) sample.
type Fig31Point struct {
	Procs      int
	Label      string
	Elapsed    sim.Cycles
	Efficiency float64
}

// Fig31Config scales the experiment.
type Fig31Config struct {
	Quick    bool
	MaxProcs int
}

type fig31Style struct {
	label string
	style beam.Style
	cost  sim.Cycles
}

func fig31Styles() []fig31Style {
	return []fig31Style{
		{"blocking", beam.Blocking, 0},
		{"delayed", beam.Delayed, 0},
		{"cs-16", beam.ContextSwitch, 16},
		{"cs-40", beam.ContextSwitch, 40},
		{"cs-140", beam.ContextSwitch, 140},
	}
}

// Figure31 sweeps beam search over processors for the five curves of
// Figure 3-1: blocking synchronization, delayed operations, and
// context switching at 16/40/140 cycles. Efficiency for each curve is
// normalized to the blocking single-processor run, as the paper
// normalizes to the sequential execution.
func Figure31(cfg Fig31Config) ([]Fig31Point, error) {
	layers, states := 32, 96
	maxP := cfg.MaxProcs
	if maxP == 0 {
		maxP = 64
	}
	if cfg.Quick {
		layers, states = 16, 48
		if cfg.MaxProcs == 0 {
			maxP = 8
		}
	}
	run := func(p int, st fig31Style) (beam.Result, error) {
		w, h := meshFor(p)
		return beam.Run(beam.Config{
			MeshW: w, MeshH: h, Procs: p,
			Layers: layers, States: states, Branch: 3,
			Style: st.style, SwitchCost: st.cost,
			Validate: true,
		})
	}
	base, err := run(1, fig31Styles()[0])
	if err != nil {
		return nil, fmt.Errorf("figure 3-1 baseline: %w", err)
	}
	t1 := float64(base.Elapsed)

	var pts []Fig31Point
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if p > maxP {
			break
		}
		for _, st := range fig31Styles() {
			res, err := run(p, st)
			if err != nil {
				return nil, fmt.Errorf("figure 3-1 p=%d %s: %w", p, st.label, err)
			}
			pts = append(pts, Fig31Point{
				Procs:      p,
				Label:      st.label,
				Elapsed:    res.Elapsed,
				Efficiency: t1 / (float64(p) * float64(res.Elapsed)),
			})
		}
	}
	return pts, nil
}

// FormatFigure31 renders the five curves of Figure 3-1.
func FormatFigure31(pts []Fig31Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3-1: Beam search efficiency vs processors by sync style\n")
	fmt.Fprintf(&b, "%-6s %-10s %12s %12s\n", "Procs", "Style", "Elapsed", "Efficiency")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6d %-10s %12d %12.3f\n", p.Procs, p.Label, p.Elapsed, p.Efficiency)
	}
	return b.String()
}

// --- Ablations ----------------------------------------------------------

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label    string
	Elapsed  sim.Cycles
	Messages uint64
	Extra    string
}

// FormatAblation renders a sweep.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-28s %12s %10s  %s\n", title, "Config", "Elapsed", "Messages", "Notes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12d %10d  %s\n", r.Label, r.Elapsed, r.Messages, r.Extra)
	}
	return b.String()
}
