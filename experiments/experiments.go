// Package experiments regenerates every table and figure of the PLUS
// paper's evaluation, plus the ablations called out in DESIGN.md.
//
// Every experiment is expressed as a sweep of Points — independent
// single-threaded simulations — executed by RunPoints on a bounded
// worker pool and rendered through one shared table renderer; the
// registry in registry.go gives cmd/plusbench a uniform way to run
// any of them and emit rows as JSON. Serial and parallel executions
// are byte-identical by construction: each point builds a private
// machine (its own sim.Engine) and results return in point order.
package experiments

import (
	"fmt"

	"plus/apps/beam"
	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/sim"
)

// shardedMachine resolves an SSSP point's machine override: the
// observation's instrumented config when observing, otherwise a
// default config — either way carrying Options.Shards when the knob
// is set and tiles the point's mesh. Contention and observation are
// shard-aware (deferred replay and shard-local observers, see
// internal/core.Config.Shards), so neither forces a point serial
// anymore.
func shardedMachine(o Options, name string, w, h int) *core.Config {
	mc := o.Observe.MachineFor(name, w, h)
	if o.Shards > 1 && o.Shards <= w*h && (w*h)%o.Shards == 0 {
		if mc == nil {
			c := core.DefaultConfig(w, h)
			mc = &c
		}
		mc.Shards = o.Shards
	}
	return mc
}

// meshFor returns a near-square mesh holding at least p nodes.
func meshFor(p int) (w, h int) {
	switch {
	case p <= 1:
		return 1, 1
	case p <= 2:
		return 2, 1
	case p <= 4:
		return 2, 2
	case p <= 8:
		return 4, 2
	case p <= 16:
		return 4, 4
	case p <= 32:
		return 8, 4
	default:
		return 8, 8
	}
}

// --- Table 2-1: Effect of Replication on Messages ----------------------

// Table21Row is one replication level of Table 2-1.
type Table21Row struct {
	Copies      int        `json:"copies"`
	ReadRatio   float64    `json:"read_ratio"`   // reads local/remote
	WriteRatio  float64    `json:"write_ratio"`  // writes local/remote
	UpdateRatio float64    `json:"update_ratio"` // total messages / update messages
	Messages    uint64     `json:"messages"`
	Updates     uint64     `json:"updates"`
	Elapsed     sim.Cycles `json:"elapsed_cycles"`
}

// table21Points builds the five replication levels of Table 2-1 (the
// paper's "the 16-processor case of Figure 2-1"): SSSP on 16
// processors at copies 1..5.
func table21Points(o Options) []Point[Table21Row] {
	vertices := 1024
	if o.Quick {
		vertices = 256
	}
	var pts []Point[Table21Row]
	for copies := 1; copies <= 5; copies++ {
		copies := copies
		name := fmt.Sprintf("table 2-1 copies=%d", copies)
		pts = append(pts, Point[Table21Row]{
			Name: name,
			Tags: map[string]string{"copies": fmt.Sprint(copies)},
			Run: func() (Table21Row, error) {
				res, err := sssp.Run(sssp.Config{
					MeshW: 4, MeshH: 4, Procs: 16,
					Vertices: vertices, Degree: 4, Seed: 42,
					Copies: copies, Validate: true,
					Machine: shardedMachine(o, name, 4, 4),
				})
				if err != nil {
					return Table21Row{}, err
				}
				return Table21Row{
					Copies:      copies,
					ReadRatio:   res.ReadRatio,
					WriteRatio:  res.WriteRatio,
					UpdateRatio: res.UpdateRatio,
					Messages:    res.Messages,
					Updates:     res.Updates,
					Elapsed:     res.Elapsed,
				}, nil
			},
		})
	}
	return pts
}

// Table21 runs the replication sweep (exported for tests and the
// repository-root benchmarks; plusbench goes through the registry).
func Table21(o Options) ([]Table21Row, error) {
	return RunPoints(table21Points(o), o.Workers)
}

// FormatTable21 renders rows like the paper's Table 2-1.
func FormatTable21(rows []Table21Row) string {
	return renderTable("Table 2-1: Effect of Replication on Messages (SSSP, 16 procs)",
		[]col{{"Copies", -8}, {"Reads L/R", 12}, {"Writes L/R", 12},
			{"Total/Upd", 12}, {"Messages", 10}, {"Elapsed", 10}},
		cells(rows, func(r Table21Row) []string {
			upd := "-"
			if r.Updates > 0 {
				upd = fmt.Sprintf("%.2f", r.UpdateRatio)
			}
			return []string{
				fmt.Sprint(r.Copies),
				fmt.Sprintf("%.2f", r.ReadRatio),
				fmt.Sprintf("%.2f", r.WriteRatio),
				upd,
				fmt.Sprint(r.Messages),
				fmt.Sprint(r.Elapsed),
			}
		}))
}

// --- Figure 2-1: SSSP efficiency & utilization vs processors -----------

// Fig21Point is one (processors, replication) sample.
type Fig21Point struct {
	Procs       int        `json:"procs"`
	Replicated  bool       `json:"replicated"`
	Copies      int        `json:"copies"`
	Elapsed     sim.Cycles `json:"elapsed_cycles"`
	Efficiency  float64    `json:"efficiency"`
	Utilization float64    `json:"utilization"`
}

// figure21Points sweeps processors with and without replication; with
// contention it is the ROADMAP's Figure 2-1-style contention-on sweep
// (NetContention, 8x8 mesh at the full 64 processors). Efficiency is
// filled in afterwards by fillFig21Efficiency from the p=1 point of
// the same sweep, so the normalization base shares the contention
// setting.
func figure21Points(o Options, contention bool) []Point[Fig21Point] {
	vertices := 1024
	maxP := o.MaxProcs
	if maxP == 0 {
		maxP = 64
	}
	if o.Quick {
		vertices = 256
		if o.MaxProcs == 0 {
			maxP = 16
		}
	}
	var pts []Point[Fig21Point]
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if p > maxP {
			break
		}
		for _, repl := range []bool{false, true} {
			p, repl := p, repl
			copies := 1
			if repl {
				copies = p
				if copies > 4 {
					copies = 4
				}
			}
			if p == 1 && repl {
				continue // replication is meaningless on one node
			}
			name := fmt.Sprintf("figure 2-1 p=%d copies=%d contention=%v", p, copies, contention)
			pts = append(pts, Point[Fig21Point]{
				Name: name,
				Tags: map[string]string{"procs": fmt.Sprint(p), "copies": fmt.Sprint(copies)},
				Run: func() (Fig21Point, error) {
					w, h := meshFor(p)
					res, err := sssp.Run(sssp.Config{
						MeshW: w, MeshH: h, Procs: p,
						Vertices: vertices, Degree: 4, Seed: 42,
						Copies: copies, Validate: true,
						Contention: contention,
						Machine:    shardedMachine(o, name, w, h),
					})
					if err != nil {
						return Fig21Point{}, err
					}
					return Fig21Point{
						Procs:       p,
						Replicated:  repl,
						Copies:      copies,
						Elapsed:     res.Elapsed,
						Utilization: res.Utilization,
					}, nil
				},
			})
		}
	}
	return pts
}

// fillFig21Efficiency computes T(1)/(P·T(P)) against the sweep's own
// unreplicated single-processor point, exactly as the serial driver
// measured its baseline with a separate identical run.
func fillFig21Efficiency(pts []Fig21Point) []Fig21Point {
	var t1 float64
	for _, p := range pts {
		if p.Procs == 1 && !p.Replicated {
			t1 = float64(p.Elapsed)
			break
		}
	}
	for i := range pts {
		pts[i].Efficiency = t1 / (float64(pts[i].Procs) * float64(pts[i].Elapsed))
	}
	return pts
}

// Figure21 sweeps processors with and without replication. Efficiency
// is T(1)/(P·T(P)) with T(1) measured on the same simulator.
func Figure21(o Options) ([]Fig21Point, error) {
	pts, err := RunPoints(figure21Points(o, false), o.Workers)
	if err != nil {
		return nil, err
	}
	return fillFig21Efficiency(pts), nil
}

// Figure21Contention is the ROADMAP's contention-on variant: the same
// sweep with the mesh link-contention model enabled, quantifying the
// queueing effects the paper's lightly loaded runs ignored.
func Figure21Contention(o Options) ([]Fig21Point, error) {
	pts, err := RunPoints(figure21Points(o, true), o.Workers)
	if err != nil {
		return nil, err
	}
	return fillFig21Efficiency(pts), nil
}

func formatFig21(title string, pts []Fig21Point) string {
	return renderTable(title,
		[]col{{"Procs", -6}, {"Replication", -12}, {"Copies", -7},
			{"Elapsed", 12}, {"Efficiency", 12}, {"Utilization", 12}},
		cells(pts, func(p Fig21Point) []string {
			mode := "none"
			if p.Replicated {
				mode = "replicated"
			}
			return []string{
				fmt.Sprint(p.Procs), mode, fmt.Sprint(p.Copies),
				fmt.Sprint(p.Elapsed),
				fmt.Sprintf("%.3f", p.Efficiency),
				fmt.Sprintf("%.3f", p.Utilization),
			}
		}))
}

// FormatFigure21 renders the two curves of Figure 2-1 as a table.
func FormatFigure21(pts []Fig21Point) string {
	return formatFig21("Figure 2-1: SSSP efficiency and utilization vs processors", pts)
}

// FormatFigure21Contention renders the contention-on sweep.
func FormatFigure21Contention(pts []Fig21Point) string {
	return formatFig21("Figure 2-1 under link contention: SSSP efficiency and utilization vs processors", pts)
}

// --- Figure 3-1: beam search efficiency by synchronization style -------

// Fig31Point is one (processors, style) sample.
type Fig31Point struct {
	Procs      int        `json:"procs"`
	Label      string     `json:"style"`
	Elapsed    sim.Cycles `json:"elapsed_cycles"`
	Efficiency float64    `json:"efficiency"`
}

type fig31Style struct {
	label string
	style beam.Style
	cost  sim.Cycles
}

func fig31Styles() []fig31Style {
	return []fig31Style{
		{"blocking", beam.Blocking, 0},
		{"delayed", beam.Delayed, 0},
		{"cs-16", beam.ContextSwitch, 16},
		{"cs-40", beam.ContextSwitch, 40},
		{"cs-140", beam.ContextSwitch, 140},
	}
}

// figure31Points sweeps beam search over processors for the five
// curves of Figure 3-1: blocking synchronization, delayed operations,
// and context switching at 16/40/140 cycles.
func figure31Points(o Options) []Point[Fig31Point] {
	layers, states := 32, 96
	maxP := o.MaxProcs
	if maxP == 0 {
		maxP = 64
	}
	if o.Quick {
		layers, states = 16, 48
		if o.MaxProcs == 0 {
			maxP = 8
		}
	}
	var pts []Point[Fig31Point]
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if p > maxP {
			break
		}
		for _, st := range fig31Styles() {
			p, st := p, st
			name := fmt.Sprintf("figure 3-1 p=%d %s", p, st.label)
			pts = append(pts, Point[Fig31Point]{
				Name: name,
				Tags: map[string]string{"procs": fmt.Sprint(p), "style": st.label},
				Run: func() (Fig31Point, error) {
					w, h := meshFor(p)
					res, err := beam.Run(beam.Config{
						MeshW: w, MeshH: h, Procs: p,
						Layers: layers, States: states, Branch: 3,
						Style: st.style, SwitchCost: st.cost,
						Validate: true,
						Machine:  o.Observe.MachineFor(name, w, h),
					})
					if err != nil {
						return Fig31Point{}, err
					}
					return Fig31Point{Procs: p, Label: st.label, Elapsed: res.Elapsed}, nil
				},
			})
		}
	}
	return pts
}

// fillFig31Efficiency normalizes every curve to the blocking
// single-processor point, as the paper normalizes to the sequential
// execution.
func fillFig31Efficiency(pts []Fig31Point) []Fig31Point {
	var t1 float64
	for _, p := range pts {
		if p.Procs == 1 && p.Label == "blocking" {
			t1 = float64(p.Elapsed)
			break
		}
	}
	for i := range pts {
		pts[i].Efficiency = t1 / (float64(pts[i].Procs) * float64(pts[i].Elapsed))
	}
	return pts
}

// Figure31 sweeps beam search over processors for the five curves of
// Figure 3-1.
func Figure31(o Options) ([]Fig31Point, error) {
	pts, err := RunPoints(figure31Points(o), o.Workers)
	if err != nil {
		return nil, err
	}
	return fillFig31Efficiency(pts), nil
}

// FormatFigure31 renders the five curves of Figure 3-1.
func FormatFigure31(pts []Fig31Point) string {
	return renderTable("Figure 3-1: Beam search efficiency vs processors by sync style",
		[]col{{"Procs", -6}, {"Style", -10}, {"Elapsed", 12}, {"Efficiency", 12}},
		cells(pts, func(p Fig31Point) []string {
			return []string{
				fmt.Sprint(p.Procs), p.Label,
				fmt.Sprint(p.Elapsed), fmt.Sprintf("%.3f", p.Efficiency),
			}
		}))
}

// --- Ablations ----------------------------------------------------------

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label    string     `json:"label"`
	Elapsed  sim.Cycles `json:"elapsed_cycles"`
	Messages uint64     `json:"messages"`
	Extra    string     `json:"notes,omitempty"`
}

// FormatAblation renders a sweep.
func FormatAblation(title string, rows []AblationRow) string {
	return renderTable(title,
		[]col{{"Config", -28}, {"Elapsed", 12}, {"Messages", 10}, {"Notes", -1}},
		cells(rows, func(r AblationRow) []string {
			return []string{r.Label, fmt.Sprint(r.Elapsed), fmt.Sprint(r.Messages), r.Extra}
		}))
}
