// Observation plumbs the structured-event layer (internal/stats)
// through the sweep runner: one fresh Observer per sweep point,
// collected under the point's name so exports are ordered by name —
// independent of worker scheduling — and serial and parallel sweeps
// emit byte-identical traces.
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"plus/internal/core"
	"plus/internal/stats"
)

// Observation instruments a sweep: every point that consults it gets a
// private stats.Observer built from Config, registered under the
// point's name. A nil *Observation is valid everywhere and means
// "observation off" — the sweep runs exactly as before, with every hot
// path allocation-free.
type Observation struct {
	// Config is the per-point observer template (ring size, trace
	// window, sample interval, engine events).
	Config stats.ObserveConfig

	mu   sync.Mutex
	runs map[string]*stats.Observer
}

// NewObservation returns an empty collector building observers from
// cfg.
func NewObservation(cfg stats.ObserveConfig) *Observation {
	return &Observation{Config: cfg}
}

// ObserverFor creates, registers and returns a fresh observer for the
// named sweep point (nil when observation is off). Safe for concurrent
// use by the worker pool; point names must be unique, which the sweep
// builders guarantee.
func (ob *Observation) ObserverFor(name string) *stats.Observer {
	if ob == nil {
		return nil
	}
	o := stats.NewObserver(ob.Config)
	ob.mu.Lock()
	if ob.runs == nil {
		ob.runs = make(map[string]*stats.Observer)
	}
	ob.runs[name] = o
	ob.mu.Unlock()
	return o
}

// Attach instruments a machine config in place with a fresh observer
// for the named point; a nil Observation is a no-op.
func (ob *Observation) Attach(cfg *core.Config, name string) {
	if ob == nil {
		return
	}
	cfg.Observe = ob.ObserverFor(name)
}

// MachineFor returns a default machine config on a w x h mesh carrying
// a fresh observer for the named point, or nil when observation is off
// — directly usable as the apps' Machine/Timing override field.
func (ob *Observation) MachineFor(name string, w, h int) *core.Config {
	if ob == nil {
		return nil
	}
	cfg := core.DefaultConfig(w, h)
	ob.Attach(&cfg, name)
	return &cfg
}

// Runs returns one ObservedRun per instrumented point, sorted by point
// name: the order depends only on the sweep's point set, never on
// worker scheduling, so -parallel 1 and -parallel N export identical
// traces. Call after the sweep completes.
func (ob *Observation) Runs() []stats.ObservedRun {
	if ob == nil {
		return nil
	}
	ob.mu.Lock()
	names := make([]string, 0, len(ob.runs))
	for name := range ob.runs {
		names = append(names, name)
	}
	ob.mu.Unlock()
	sort.Strings(names)
	out := make([]stats.ObservedRun, 0, len(names))
	for _, name := range names {
		out = append(out, stats.ObservedRunFrom(name, ob.runs[name]))
	}
	return out
}

// Metrics merges every instrumented point's latency histograms.
func (ob *Observation) Metrics() stats.Metrics {
	var m stats.Metrics
	for _, r := range ob.Runs() {
		m.Add(&r.Metrics)
	}
	return m
}

// EventDump renders every run's event stream in name order — the
// byte-comparable form behind the serial-vs-parallel determinism test.
func (ob *Observation) EventDump() string {
	var b strings.Builder
	for _, r := range ob.Runs() {
		fmt.Fprintf(&b, "== %s (%d events)\n", r.Name, len(r.Events))
		for i := range r.Events {
			b.WriteString(r.Events[i].String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CompareReports diffs two plusbench self-timing reports (the
// BENCH_<date>.json shape written by -timing): experiments present in
// both are compared on wall-clock, and any slower by more than
// threshold (a fraction; 0.10 = 10%) is flagged as a regression. It
// returns the rendered comparison and whether any regression was
// found.
func CompareReports(oldJSON, newJSON []byte, threshold float64) (string, bool, error) {
	var oldRep, newRep Report
	if err := json.Unmarshal(oldJSON, &oldRep); err != nil {
		return "", false, fmt.Errorf("old report: %w", err)
	}
	if err := json.Unmarshal(newJSON, &newRep); err != nil {
		return "", false, fmt.Errorf("new report: %w", err)
	}
	oldBy := make(map[string]Timing, len(oldRep.Experiments))
	for _, t := range oldRep.Experiments {
		oldBy[t.Experiment] = t
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %12s %8s\n", "experiment", "old ms", "new ms", "delta")
	regressed := false
	for _, nw := range newRep.Experiments {
		od, ok := oldBy[nw.Experiment]
		if !ok {
			fmt.Fprintf(&b, "%-26s %12s %12.1f %8s\n", nw.Experiment, "-", nw.WallMS, "new")
			continue
		}
		delta := 0.0
		if od.WallMS > 0 {
			delta = (nw.WallMS - od.WallMS) / od.WallMS
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&b, "%-26s %12.1f %12.1f %+7.1f%%%s\n",
			nw.Experiment, od.WallMS, nw.WallMS, delta*100, mark)
	}
	if od, nw := oldRep.TotalWallMS, newRep.TotalWallMS; od > 0 {
		fmt.Fprintf(&b, "%-26s %12.1f %12.1f %+7.1f%%\n", "total", od, nw, (nw-od)/od*100)
	}
	return b.String(), regressed, nil
}
