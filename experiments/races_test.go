package experiments

import (
	"testing"
)

// TestRaceCorpus is the directed-corpus pin: the racy pair is flagged
// (both sites, right threads, right words), and the fenced pair, SOR
// and SSSP come out clean — no false negatives, no false positives.
func TestRaceCorpus(t *testing.T) {
	outcomes, ok, err := RunRaceCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("corpus verdict: not ok")
	}
	byName := map[string]RaceOutcome{}
	for _, o := range outcomes {
		byName[o.Program] = o
		if !o.Pass {
			t.Errorf("%s: expected %s, got %d race(s) (dropped %d)",
				o.Program, o.Expect, len(o.Report.Races), o.Report.Dropped)
		}
	}
	racy := byName["racy-pair"].Report
	if racy == nil || len(racy.Races) != 2 {
		t.Fatalf("racy-pair: got %+v, want exactly 2 races (one per word)", racy)
	}
	for _, r := range racy.Races {
		if r.First.Kind != "write" || r.Second.Kind != "read" {
			t.Errorf("racy-pair: kinds %s/%s, want write/read", r.First.Kind, r.Second.Kind)
		}
		if r.First.Tid == r.Second.Tid {
			t.Errorf("racy-pair: both sites on t%d", r.First.Tid)
		}
		if r.Missing == "" {
			t.Error("racy-pair: no missing-sync diagnosis")
		}
	}
	// The two races are the two consecutive words of the data page.
	if racy.Races[0].Page != racy.Races[1].Page ||
		racy.Races[0].Off+1 != racy.Races[1].Off {
		t.Errorf("racy-pair: sites at page/off %d/%d and %d/%d, want consecutive words",
			racy.Races[0].Page, racy.Races[0].Off, racy.Races[1].Page, racy.Races[1].Off)
	}
}

// TestRaceKvserveUnsyncCounters is the serving-workload directed pin:
// the clean variant aggregates per-tenant op counters with
// fetch-and-add and must come out silent, while the unsynchronized
// read-modify-write variant must be flagged at both sites of the lost
// update — the torn write→read pair and the overwriting write→write
// pair, on the counter page, between distinct frontends.
func TestRaceKvserveUnsyncCounters(t *testing.T) {
	byName := map[string]RaceProgram{}
	for _, p := range RacePrograms() {
		byName[p.Name] = p
	}
	clean, err := RaceReportFor(byName["kvserve"], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Races) != 0 || clean.Dropped != 0 {
		t.Fatalf("kvserve (synchronized): %d race(s), dropped %d — want silence", len(clean.Races), clean.Dropped)
	}
	rep, err := RaceReportFor(byName["kvserve-unsync"], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("kvserve-unsync: lost-update race undetected")
	}
	// Layout: 8 one-page tenants on pages 0..7, counters on page 8.
	const counterPage = 8
	var writeRead, writeWrite bool
	for _, r := range rep.Races {
		if r.Page != counterPage {
			t.Errorf("race at page %d offset %d — records are synchronized, only counter words (page %d) may race",
				r.Page, r.Off, counterPage)
		}
		if r.First.Tid == r.Second.Tid {
			t.Errorf("race pair on one thread t%d", r.First.Tid)
		}
		if r.First.Kind != "write" {
			t.Errorf("first site is a %s, want the unreleased write", r.First.Kind)
		}
		if r.Missing == "" {
			t.Error("race missing the missing-sync diagnosis")
		}
		switch r.Second.Kind {
		case "read":
			writeRead = true
		case "write":
			writeWrite = true
		}
	}
	if !writeRead || !writeWrite {
		t.Fatalf("lost update flagged at one site only: write→read=%v write→write=%v", writeRead, writeWrite)
	}
}

// TestRaceReportShardEquivalence pins that race reports are
// byte-identical between the serial engine and sharded runs at every
// supported tiling: the merged event stream preserves serial emission
// order, so the detector — a pure function of the stream — cannot
// tell the difference. (All corpus programs avoid cross-shard Wake,
// which is the one documented sharding divergence.)
func TestRaceReportShardEquivalence(t *testing.T) {
	for _, p := range RacePrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			serial, err := RaceReportFor(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Format()
			wantJSON, err := serial.JSON()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				rep, err := RaceReportFor(p, k)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if got := rep.Format(); got != want {
					t.Errorf("shards=%d: report differs from serial\nserial:\n%s\nsharded:\n%s", k, want, got)
				}
				gotJSON, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("shards=%d: JSON differs from serial", k)
				}
			}
		})
	}
}
