package experiments

import (
	"testing"
)

// TestRaceCorpus is the directed-corpus pin: the racy pair is flagged
// (both sites, right threads, right words), and the fenced pair, SOR
// and SSSP come out clean — no false negatives, no false positives.
func TestRaceCorpus(t *testing.T) {
	outcomes, ok, err := RunRaceCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("corpus verdict: not ok")
	}
	byName := map[string]RaceOutcome{}
	for _, o := range outcomes {
		byName[o.Program] = o
		if !o.Pass {
			t.Errorf("%s: expected %s, got %d race(s) (dropped %d)",
				o.Program, o.Expect, len(o.Report.Races), o.Report.Dropped)
		}
	}
	racy := byName["racy-pair"].Report
	if racy == nil || len(racy.Races) != 2 {
		t.Fatalf("racy-pair: got %+v, want exactly 2 races (one per word)", racy)
	}
	for _, r := range racy.Races {
		if r.First.Kind != "write" || r.Second.Kind != "read" {
			t.Errorf("racy-pair: kinds %s/%s, want write/read", r.First.Kind, r.Second.Kind)
		}
		if r.First.Tid == r.Second.Tid {
			t.Errorf("racy-pair: both sites on t%d", r.First.Tid)
		}
		if r.Missing == "" {
			t.Error("racy-pair: no missing-sync diagnosis")
		}
	}
	// The two races are the two consecutive words of the data page.
	if racy.Races[0].Page != racy.Races[1].Page ||
		racy.Races[0].Off+1 != racy.Races[1].Off {
		t.Errorf("racy-pair: sites at page/off %d/%d and %d/%d, want consecutive words",
			racy.Races[0].Page, racy.Races[0].Off, racy.Races[1].Page, racy.Races[1].Off)
	}
}

// TestRaceReportShardEquivalence pins that race reports are
// byte-identical between the serial engine and sharded runs at every
// supported tiling: the merged event stream preserves serial emission
// order, so the detector — a pure function of the stream — cannot
// tell the difference. (All corpus programs avoid cross-shard Wake,
// which is the one documented sharding divergence.)
func TestRaceReportShardEquivalence(t *testing.T) {
	for _, p := range RacePrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			serial, err := RaceReportFor(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Format()
			wantJSON, err := serial.JSON()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				rep, err := RaceReportFor(p, k)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if got := rep.Format(); got != want {
					t.Errorf("shards=%d: report differs from serial\nserial:\n%s\nsharded:\n%s", k, want, got)
				}
				gotJSON, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("shards=%d: JSON differs from serial", k)
				}
			}
		})
	}
}
