// Race-detection corpus: the registered programs `plusbench -races`
// runs under the data-access event layer and feeds to the
// happens-before detector (internal/trace). Each program declares its
// expected verdict — the directed pair demonstrates a real race and
// its fence/RMW-synchronized repair, and the two applications pin that
// the detector stays quiet on correctly synchronized real workloads.
package experiments

import (
	"fmt"

	"plus/apps/kvserve"
	"plus/apps/sor"
	"plus/apps/sssp"
	"plus/internal/core"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/stats"
	"plus/internal/trace"
)

// RaceProgram is one entry of the race-detection corpus.
type RaceProgram struct {
	Name string
	// Racy is the expected verdict: true means the detector must flag
	// at least one race, false that it must stay silent.
	Racy bool
	// Run executes the program on a machine built from mcfg (which
	// carries the observer and any shard setting). The mesh is fixed
	// at raceMeshW x raceMeshH so every program accepts the shard
	// counts the equivalence leg sweeps.
	Run func(mcfg *core.Config) error
}

// The corpus mesh: 8 nodes, tileable into 2, 4 or 8 shards.
const (
	raceMeshW = 4
	raceMeshH = 2
)

// RacePrograms returns the corpus in name order (the order -races runs
// and reports them).
func RacePrograms() []RaceProgram {
	return []RaceProgram{
		{Name: "fenced-pair", Racy: false, Run: runFencedPair},
		{Name: "kvserve", Racy: false, Run: runKvserveRace},
		{Name: "kvserve-unsync", Racy: true, Run: runKvserveUnsyncRace},
		{Name: "racy-pair", Racy: true, Run: runRacyPair},
		{Name: "sor", Racy: false, Run: runSORRace},
		{Name: "sssp", Racy: false, Run: runSSSPRace},
	}
}

// raceObserve runs one corpus program with the data-access layer on
// and returns its observer. shards 0 or 1 runs serially.
func raceObserve(p RaceProgram, shards int) (*stats.Observer, error) {
	mcfg := core.DefaultConfig(raceMeshW, raceMeshH)
	if shards > 1 {
		mcfg.Shards = shards
	}
	o := stats.NewObserver(stats.ObserveConfig{Events: 1 << 20, DataAccess: true})
	mcfg.Observe = o
	if err := p.Run(&mcfg); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return o, nil
}

// RaceReportFor runs one corpus program and analyzes its stream. The
// stream — and therefore the report — is byte-identical for any shard
// count.
func RaceReportFor(p RaceProgram, shards int) (*trace.Report, error) {
	o, err := raceObserve(p, shards)
	if err != nil {
		return nil, err
	}
	return trace.Analyze(p.Name, o.Events(), o.Overwritten()), nil
}

// RaceOutcome is one -races row: the report plus the pass/fail verdict
// against the program's declared expectation. Trace carries the run's
// full observation with the races attached as annotation marks, ready
// for the Perfetto exporter.
type RaceOutcome struct {
	Program string            `json:"program"`
	Expect  string            `json:"expect"` // "racy" or "clean"
	Pass    bool              `json:"pass"`
	Report  *trace.Report     `json:"report"`
	Trace   stats.ObservedRun `json:"-"`
}

// RunRaceCorpus runs every registered program serially and checks each
// verdict. ok is false when any program missed its expectation (a racy
// program undetected, or a clean one misflagged).
func RunRaceCorpus() (outcomes []RaceOutcome, ok bool, err error) {
	ok = true
	for _, p := range RacePrograms() {
		o, rerr := raceObserve(p, 0)
		if rerr != nil {
			return nil, false, rerr
		}
		rep := trace.Analyze(p.Name, o.Events(), o.Overwritten())
		expect := "clean"
		if p.Racy {
			expect = "racy"
		}
		pass := (len(rep.Races) > 0) == p.Racy && rep.Dropped == 0
		if !pass {
			ok = false
		}
		run := stats.ObservedRunFrom(p.Name, o)
		run.Marks = rep.Marks()
		outcomes = append(outcomes, RaceOutcome{
			Program: p.Name, Expect: expect, Pass: pass, Report: rep, Trace: run,
		})
	}
	return outcomes, ok, nil
}

// pairNodes places the directed pair's two threads at the mesh's
// opposite corners — always in different shards for any tiling.
const (
	pairWriterNode = mesh.NodeID(0)
	pairReaderNode = mesh.NodeID(raceMeshW*raceMeshH - 1)
)

// runRacyPair is the directed positive: the writer stores two words
// and the reader loads them with no synchronization whatsoever — the
// exact pattern §2.3's fence discipline exists to repair.
func runRacyPair(mcfg *core.Config) error {
	m, err := core.NewMachine(*mcfg)
	if err != nil {
		return err
	}
	data := m.Alloc(pairWriterNode, 1)
	m.SpawnNamed(pairWriterNode, "writer", func(t *proc.Thread) {
		t.Write(data, 7)
		t.Write(data+1, 9)
	})
	m.SpawnNamed(pairReaderNode, "reader", func(t *proc.Thread) {
		t.Compute(500) // overlap the writer without synchronizing
		t.Read(data)
		t.Read(data + 1)
	})
	_, err = m.Run()
	return err
}

// runFencedPair is the directed negative: the same communication
// pattern, correctly synchronized with the §3.1 release idiom — write,
// fence, then advertise through a delayed fetch-and-add whose
// execution at the master serializes against the reader's polling
// fadd. The reader's Verify of a fadd that observed the increment
// acquires everything the writer's fence published.
func runFencedPair(mcfg *core.Config) error {
	m, err := core.NewMachine(*mcfg)
	if err != nil {
		return err
	}
	data := m.Alloc(pairWriterNode, 1)
	flag := m.Alloc(pairWriterNode, 1)
	m.SpawnNamed(pairWriterNode, "writer", func(t *proc.Thread) {
		t.Write(data, 7)
		t.Write(data+1, 9)
		t.Fence()
		t.FaddSync(flag, 1)
	})
	m.SpawnNamed(pairReaderNode, "reader", func(t *proc.Thread) {
		for t.FaddSync(flag, 0) != 1 {
			t.Compute(100)
		}
		if v := t.Read(data); v != 7 {
			panic(fmt.Sprintf("fenced-pair: read %d, want 7", v))
		}
		if v := t.Read(data + 1); v != 9 {
			panic(fmt.Sprintf("fenced-pair: read %d, want 9", v))
		}
	})
	_, err = m.Run()
	return err
}

// runSORRace runs the barrier-synchronized SOR kernel small enough for
// an untruncated stream: under its fence + sense-reversing-barrier
// discipline every cross-thread neighbour read is ordered, so the
// detector must report nothing.
func runSORRace(mcfg *core.Config) error {
	_, err := sor.Run(sor.Config{
		MeshW: raceMeshW, MeshH: raceMeshH, Procs: 4,
		N: 32, Iters: 2,
		ReplicateBoundaries: true,
		Validate:            true,
		Machine:             mcfg,
	})
	return err
}

// raceKvserveConfig is the corpus-sized serving workload: every
// record write is a delayed exchange executed at the master, so the
// record words are synchronization words and the frontends' plain
// reads of them are ordered — the detector must report nothing.
func raceKvserveConfig(mcfg *core.Config) kvserve.Config {
	return kvserve.Config{
		MeshW: raceMeshW, MeshH: raceMeshH,
		RecordsPerTenant: 256, // records on pages 0..7, counters on page 8
		OpsPerNode:       24,
		Skew:             0.9,
		Machine:          mcfg,
	}
}

// runKvserveRace is the clean serving workload (fetch-and-add counter
// aggregation).
func runKvserveRace(mcfg *core.Config) error {
	cfg := raceKvserveConfig(mcfg)
	cfg.Validate = true
	_, err := kvserve.Run(cfg)
	return err
}

// runKvserveUnsyncRace is the directed positive: identical traffic,
// but the end-of-run per-tenant counter aggregation is a plain
// read-modify-write — the textbook lost-update race, every counter
// word torn between frontends with no fence or RMW ordering them.
func runKvserveUnsyncRace(mcfg *core.Config) error {
	cfg := raceKvserveConfig(mcfg)
	cfg.UnsyncCounters = true
	_, err := kvserve.Run(cfg)
	return err
}

// runSSSPRace runs the paper's irregular queue-driven workload: all
// shared mutable state (distances, work flags, the active counter,
// hardware queues) is touched through delayed operations, so every
// word of it is synchronization and the data — the graph arrays — is
// read-only. The detector must report nothing.
func runSSSPRace(mcfg *core.Config) error {
	_, err := sssp.Run(sssp.Config{
		MeshW: raceMeshW, MeshH: raceMeshH, Procs: 8,
		Vertices: 96, Degree: 3, MaxWeight: 16, Seed: 7,
		Copies:   2,
		Validate: true,
		Machine:  mcfg,
	})
	return err
}
