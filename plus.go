// Package plus is a simulator and library reproduction of PLUS, the
// distributed shared-memory multiprocessor of Bisiani and Ravishankar
// (ISCA 1990).
//
// PLUS accelerates a single multithreaded, CPU-bound process on a mesh
// of processor+memory nodes. Its two signature mechanisms, both
// implemented here in full, are:
//
//   - Non-demand, software-controlled replication of 4 KB pages, kept
//     coherent at word grain by a hardware write-update protocol: every
//     write is performed at the page's master copy and propagated down
//     an ordered copy-list; the last copy acknowledges the writer.
//   - Delayed operations: split-transaction read-modify-writes (xchng,
//     fetch-and-add, queue, dequeue, min-xchng, ...) whose issue and
//     result retrieval are separate instructions, letting the processor
//     overlap synchronization latency with computation.
//
// The machine model is a deterministic discrete-event simulation with
// the paper's cycle costs (40 ns cycles, 24-cycle adjacent round trip,
// 39/52-cycle delayed-op execution, 8 outstanding writes and delayed
// ops per node). Application code is ordinary Go driven through
// *plus.Thread, mirroring the paper's execution-driven methodology.
//
// A minimal program:
//
//	cfg := plus.DefaultConfig(4, 4) // 16 nodes
//	m, _ := plus.New(cfg)
//	data := m.Alloc(0, 1)           // one page homed on node 0
//	m.Replicate(data, 5, 10)        // copies on nodes 5 and 10
//	m.Spawn(5, func(t *plus.Thread) {
//		t.Write(data, 42)       // propagates master-first to all copies
//		t.Fence()               // wait for global visibility
//		old := t.Verify(t.Fadd(data, 1))
//		_ = old
//	})
//	elapsed, err := m.Run()
//
// Subpackages: plus/sync provides the paper's synchronization
// constructs (the Table 3-2 queue lock, spin locks, barriers,
// semaphores); plus/apps provides the evaluation workloads (shortest
// path, beam search, a production system, synthetic loads) used to
// regenerate every table and figure of the paper.
package plus

import (
	"plus/internal/cache"
	"plus/internal/coherence"
	"plus/internal/core"
	"plus/internal/kernel"
	"plus/internal/memory"
	"plus/internal/mesh"
	"plus/internal/proc"
	"plus/internal/sim"
	"plus/internal/stats"
	"plus/internal/timing"
)

// Core machine types.
type (
	// Machine is a complete simulated PLUS multiprocessor.
	Machine = core.Machine
	// Config describes a machine; start from DefaultConfig.
	Config = core.Config
	// Thread is one application thread running on a simulated
	// processor; all shared-memory operations go through it.
	Thread = proc.Thread
	// Handle identifies an in-flight delayed operation.
	Handle = proc.Handle
	// Kernel exposes page placement, replication and migration.
	Kernel = kernel.Kernel
)

// Value and address types.
type (
	// Word is the 32-bit memory word, the unit of access and coherence.
	Word = memory.Word
	// VAddr is a word-grained virtual address in the single shared
	// address space.
	VAddr = memory.VAddr
	// VPage is a virtual page number (4 KB / 1024-word pages).
	VPage = memory.VPage
	// NodeID identifies a mesh node (row-major).
	NodeID = mesh.NodeID
	// Cycles measures virtual time in 40 ns processor cycles.
	Cycles = sim.Cycles
	// Timing is the machine's cycle-cost table.
	Timing = timing.Timing
	// Op identifies a delayed operation (Table 3-1).
	Op = coherence.Op
	// MachineStats aggregates the instrumentation counters.
	MachineStats = stats.Machine
	// NodeStats holds one node's counters.
	NodeStats = stats.Node
	// Tracer records timestamped protocol events when enabled with
	// Machine.EnableTrace.
	Tracer = stats.Tracer
	// TraceEvent is one recorded protocol event.
	TraceEvent = stats.TraceEvent
	// CacheConfig sizes the per-processor cache.
	CacheConfig = cache.Config
	// Mode selects the processor's latency reaction (run-to-block or
	// context switching).
	Mode = proc.Mode
)

// Page geometry and hardware flag bit.
const (
	// PageWords is the page size in words (4 KB pages of 32-bit words).
	PageWords = memory.PageWords
	// TopBit is the hardware flag bit used by queue, dequeue,
	// fetch-and-set and cond-xchng.
	TopBit = memory.TopBit
)

// Processor modes.
const (
	// ModeRunToBlock is the PLUS design point: delayed operations hide
	// latency; blocking operations stall the processor.
	ModeRunToBlock = proc.RunToBlock
	// ModeSwitchOnSync is the context-switching alternative of §3.4:
	// switch threads at every synchronization issue, paying
	// Config.SwitchCost cycles.
	ModeSwitchOnSync = proc.SwitchOnSync
)

// Delayed operations (Table 3-1).
const (
	OpXchng       = coherence.OpXchng
	OpCondXchng   = coherence.OpCondXchng
	OpFadd        = coherence.OpFadd
	OpFetchSet    = coherence.OpFetchSet
	OpQueue       = coherence.OpQueue
	OpDequeue     = coherence.OpDequeue
	OpMinXchng    = coherence.OpMinXchng
	OpDelayedRead = coherence.OpDelayedRead
)

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// DefaultConfig returns a paper-calibrated machine on a w x h mesh.
func DefaultConfig(w, h int) Config { return core.DefaultConfig(w, h) }

// DefaultTiming returns the paper's cycle-cost table (§3.1, §5,
// Table 3-1), with documented choices where the paper is silent.
func DefaultTiming() Timing { return timing.Default() }

// AllOps lists the eight delayed operations in Table 3-1 order.
func AllOps() []Op { return coherence.Ops() }
