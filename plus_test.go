package plus_test

import (
	"testing"

	"plus"
)

// These tests exercise the exported API exactly as a downstream user
// would; the protocol internals are covered in internal/*.

func TestPublicAPISmoke(t *testing.T) {
	m, err := plus.New(plus.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 16 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	data := m.Alloc(0, 2)
	m.Replicate(data, 5)
	m.ReplicateRange(data, 2, 10)
	m.Poke(data+7, 42)
	if m.Peek(data+7) != 42 {
		t.Fatal("poke/peek")
	}
	var readBack plus.Word
	m.Spawn(5, func(th *plus.Thread) {
		readBack = th.Read(data + 7)
		th.Write(data+8, readBack+1)
		th.Fence()
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if readBack != 42 || m.Peek(data+8) != 43 {
		t.Fatalf("readBack=%d data[8]=%d", readBack, m.Peek(data+8))
	}
	if err := m.Kernel().CheckCoherent(); err != nil {
		t.Fatal(err)
	}
}

func TestAllDelayedOpWrappers(t *testing.T) {
	m, err := plus.New(plus.DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	page := m.Alloc(1, 1)
	qsz := plus.VAddr(plus.DefaultTiming().MaxQueueSize)
	tailCtl, headCtl := page+qsz, page+qsz+1
	scratch := m.Alloc(1, 1)

	m.Spawn(0, func(th *plus.Thread) {
		if old := th.XchngSync(scratch, 5); old != 0 {
			t.Errorf("xchng old = %d", old)
		}
		if old := th.Verify(th.CondXchng(scratch, 9)); old != 5 {
			t.Errorf("cond-xchng old = %d", old)
		} // top bit clear: no write
		if old := th.FaddSync(scratch, 3); old != 5 {
			t.Errorf("fadd old = %d", old)
		}
		if old := th.FetchSetSync(scratch); old != 8 {
			t.Errorf("fetch-set old = %d", old)
		}
		// Now the top bit is set, cond-xchng writes.
		if old := th.Verify(th.CondXchng(scratch, 2)); old&plus.TopBit == 0 {
			t.Errorf("cond-xchng old = %#x", old)
		}
		if old := th.MinXchngSync(scratch, 1); old != 2 {
			t.Errorf("min-xchng old = %d", old)
		}
		if got := th.Verify(th.DelayedRead(scratch)); got != 1 {
			t.Errorf("delayed-read = %d", got)
		}
		// Hardware queue round trip.
		if w := th.EnqueueSync(tailCtl, 77); w&plus.TopBit != 0 {
			t.Errorf("enqueue into empty queue full: %#x", w)
		}
		if w := th.DequeueSync(headCtl); w != plus.TopBit|77 {
			t.Errorf("dequeue = %#x", w)
		}
		// Non-blocking result polling.
		h := th.Fadd(scratch, 1)
		for {
			if _, ok := th.TryVerify(h); ok {
				break
			}
			th.Compute(10)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllOpsAndModes(t *testing.T) {
	if len(plus.AllOps()) != 8 {
		t.Fatalf("AllOps = %d entries", len(plus.AllOps()))
	}
	if plus.ModeRunToBlock == plus.ModeSwitchOnSync {
		t.Fatal("modes not distinct")
	}
	tm := plus.DefaultTiming()
	if tm.CycleNs != 40 || tm.MaxDelayedOps != 8 {
		t.Fatalf("timing = %+v", tm)
	}
	if plus.PageWords != 1024 {
		t.Fatalf("PageWords = %d", plus.PageWords)
	}
}

func TestMachineStatsAccessors(t *testing.T) {
	m, err := plus.New(plus.DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(3, 1)
	m.Spawn(0, func(th *plus.Thread) {
		for i := 0; i < 10; i++ {
			th.Read(data)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Nodes[0].RemoteReads != 10 {
		t.Fatalf("remote reads = %d", st.Nodes[0].RemoteReads)
	}
	if st.Messages() == 0 || m.Mesh().Stats().Messages == 0 {
		t.Fatal("no network traffic recorded")
	}
	if m.Utilization() <= 0 {
		t.Fatal("utilization not computed")
	}
}

func TestKernelMigrationThroughPublicAPI(t *testing.T) {
	m, err := plus.New(plus.DefaultConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(0, 1)
	m.Poke(data, 11)
	m.Kernel().Migrate(data.Page(), 0, 3)
	if m.Peek(data) != 11 {
		t.Fatal("migration lost data")
	}
	var got plus.Word
	m.Spawn(3, func(th *plus.Thread) {
		got = th.Read(data)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("read after migration = %d", got)
	}
	// The read was local: the page now lives on node 3.
	if m.Stats().Nodes[3].LocalReads != 1 {
		t.Fatal("post-migration read was not local")
	}
}

func TestTraceEndToEnd(t *testing.T) {
	m, err := plus.New(plus.DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTrace(128)
	data := m.Alloc(1, 1)
	m.Spawn(0, func(th *plus.Thread) {
		th.Write(data, 1)
		th.Fence()
		th.Verify(th.Fadd(data, 2))
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range tr.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"write", "fence", "rmw", "ack"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events; got %v", want, kinds)
		}
	}
	if tr.Dump() == "" {
		t.Error("empty trace dump")
	}
	// Timestamps are nondecreasing.
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("trace timestamps not monotone")
		}
	}
}
